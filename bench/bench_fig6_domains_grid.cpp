// Figure 6: effect of the per-cluster domain count on TSQR performance on
// all four sites. One subfigure per N; one series per matrix height M.
//
// Expected shape (paper §V-D): performance globally increases with the
// domain count; for very tall matrices the impact is limited (Property 3);
// for N = 64 the optimum is 64 domains/cluster (one per processor), while
// for N = 512 it is 32 (one per node) — trading flops for intra-node
// communication stops paying off for wide panels.
#include <iostream>

#include "bench_util.hpp"

using namespace qrgrid;
using namespace qrgrid::bench;

int main() {
  std::cout << "Fig. 6 reproduction: effect of #domains per cluster (4 "
               "sites)\n";
  const model::Roofline roof = model::paper_calibration();
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(4);

  struct Sub {
    double n;
    std::vector<double> ms;
  };
  // The per-subfigure M values of the paper.
  const std::vector<Sub> subs = {
      {64, {33554432, 4194304, 524288, 131072}},
      {128, {33554432, 4194304, 524288, 262144}},
      {256, {8388608, 2097152, 524288, 262144}},
      {512, {8388608, 2097152, 524288, 262144}},
  };
  for (const Sub& sub : subs) {
    print_series_header("Fig. 6, N = " + format_number(sub.n),
                        "#domains per cluster", "Gflop/s");
    for (double m : sub.ms) {
      const std::string series = "M" + format_number(m);
      int best_d = 0;
      double best_g = -1.0;
      for (int d : domain_counts()) {
        core::DesRunResult r = core::run_des_tsqr(topo, roof, d, m, sub.n);
        print_point(series, d, r.gflops);
        if (r.gflops > best_g) {
          best_g = r.gflops;
          best_d = d;
        }
      }
      std::cout << "# optimum for M=" << format_number(m) << ", N="
                << format_number(sub.n) << ": " << best_d
                << " domains/cluster\n";
    }
  }
  return 0;
}

// Figure 3(a): the Grid'5000 communication characteristics, re-measured on
// the simulated grid with ping-pong experiments (1-byte messages for
// latency, 8 MB messages for throughput) between one process of each pair
// of sites. The printed matrices should reproduce the paper's table.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "simgrid/des.hpp"

using namespace qrgrid;

int main() {
  std::cout << "Fig. 3(a) reproduction: communications performance on the "
               "simulated Grid'5000\n";
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000();
  const model::Roofline roof = model::paper_calibration();

  const int sites = topo.num_clusters();
  auto probe_rank = [&](int cluster) {
    // Second node of the cluster so intra-cluster probes cross the switch.
    return topo.cluster_rank_base(cluster) +
           topo.cluster(cluster).procs_per_node;
  };

  TextTable latency;
  {
    std::vector<std::string> header = {"Latency (ms)"};
    for (int c = 0; c < sites; ++c) header.push_back(topo.cluster(c).name);
    latency.set_header(header);
  }
  for (int a = 0; a < sites; ++a) {
    std::vector<std::string> row = {topo.cluster(a).name};
    for (int b = 0; b < sites; ++b) {
      if (b < a) {
        row.push_back("");
        continue;
      }
      simgrid::DesEngine engine(&topo, roof);
      const int ra = probe_rank(a);
      // Same-cluster probe uses another node of the same site.
      const int rb = (a == b) ? topo.cluster_rank_base(b)
                              : probe_rank(b);
      engine.p2p(ra, rb, 1);
      row.push_back(format_number(engine.makespan() * 1e3, 3));
    }
    latency.add_row(row);
  }
  latency.print(std::cout);

  TextTable throughput;
  {
    std::vector<std::string> header = {"Throughput (Mb/s)"};
    for (int c = 0; c < sites; ++c) header.push_back(topo.cluster(c).name);
    throughput.set_header(header);
  }
  const std::size_t big = 8u << 20;  // 8 MB payload
  for (int a = 0; a < sites; ++a) {
    std::vector<std::string> row = {topo.cluster(a).name};
    for (int b = 0; b < sites; ++b) {
      if (b < a) {
        row.push_back("");
        continue;
      }
      simgrid::DesEngine engine(&topo, roof);
      const int ra = probe_rank(a);
      const int rb = (a == b) ? topo.cluster_rank_base(b) : probe_rank(b);
      engine.p2p(ra, rb, big);
      const double mbps =
          static_cast<double>(big) * 8.0 / engine.makespan() / 1e6;
      row.push_back(format_number(mbps, 3));
    }
    throughput.add_row(row);
  }
  std::cout << '\n';
  throughput.print(std::cout);

  std::cout << "\nIntra-node (shared memory): "
            << format_number(
                   topo.intra_node_link().latency_s * 1e6, 3)
            << " us latency, "
            << format_number(
                   topo.intra_node_link().bandwidth_Bps * 8.0 / 1e9, 3)
            << " Gb/s\n";
  std::cout << "paper: 17 us latency, 5 Gb/s (OpenMPI sm driver, Section "
               "V-A)\n";
  return 0;
}

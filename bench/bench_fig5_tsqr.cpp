// Figure 5: QCG-TSQR performance at the optimal per-cluster domain count.
// One subfigure per N; three series (1, 2, 4 sites) of useful Gflop/s
// against M.
//
// Expected shape (paper §V-D): markedly higher than ScaLAPACK (Fig. 4);
// for M >= ~5e5 the 4-site run is fastest, and for very tall matrices the
// speedup over one site approaches 4 — the paper's central result.
#include <iostream>

#include "bench_util.hpp"

using namespace qrgrid;
using namespace qrgrid::bench;

int main() {
  std::cout << "Fig. 5 reproduction: TSQR performance (best #domains, "
               "grid-hierarchical tree)\n";
  const model::Roofline roof = model::paper_calibration();
  for (double n : n_values()) {
    print_series_header("Fig. 5, N = " + format_number(n),
                        "number of rows (M)", "Gflop/s");
    for (int sites : site_counts()) {
      simgrid::GridTopology topo = simgrid::GridTopology::grid5000(sites);
      const std::string series = std::to_string(sites) + "sites_N" +
                                 format_number(n);
      for (double m : m_sweep(n)) {
        core::DesRunResult r = best_tsqr(topo, roof, m, n);
        print_point(series, m, r.gflops);
      }
    }
  }

  // The headline numbers quoted in the text.
  {
    simgrid::GridTopology four = simgrid::GridTopology::grid5000(4);
    simgrid::GridTopology one = simgrid::GridTopology::grid5000(1);
    core::DesRunResult r512 = best_tsqr(four, roof, 8388608, 512);
    std::cout << "\n8,388,608 x 512 on 4 sites: "
              << format_number(r512.gflops, 4)
              << " Gflop/s (paper: 256 Gflop/s)\n";
    core::DesRunResult f4 = best_tsqr(four, roof, 33554432, 64);
    core::DesRunResult f1 = best_tsqr(one, roof, 33554432, 64);
    std::cout << "33,554,432 x 64 speedup of 4 sites over 1: "
              << format_number(f4.gflops / f1.gflops, 3)
              << " (paper: almost 4.0)\n";
  }
  return 0;
}

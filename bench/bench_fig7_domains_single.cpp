// Figure 7: effect of the domain count on TSQR performance on a *single*
// site. Two subfigures: N = 64 and N = 512.
//
// Expected shape (paper §V-D): for N = 64 the optimum is 64 domains (one
// per processor); for N = 512 it is 32 (one per node).
#include <iostream>

#include "bench_util.hpp"

using namespace qrgrid;
using namespace qrgrid::bench;

int main() {
  std::cout << "Fig. 7 reproduction: effect of #domains (single site)\n";
  const model::Roofline roof = model::paper_calibration();
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(1);

  struct Sub {
    double n;
    std::vector<double> ms;
  };
  const std::vector<Sub> subs = {
      {64, {8388608, 1048576, 131072, 65536}},
      {512, {2097152, 1048576, 131072, 65536}},
  };
  for (const Sub& sub : subs) {
    print_series_header("Fig. 7, N = " + format_number(sub.n), "#domains",
                        "Gflop/s");
    for (double m : sub.ms) {
      const std::string series = "M" + format_number(m);
      int best_d = 0;
      double best_g = -1.0;
      for (int d : domain_counts()) {
        core::DesRunResult r = core::run_des_tsqr(topo, roof, d, m, sub.n);
        print_point(series, d, r.gflops);
        if (r.gflops > best_g) {
          best_g = r.gflops;
          best_d = d;
        }
      }
      std::cout << "# optimum for M=" << format_number(m) << ", N="
                << format_number(sub.n) << ": " << best_d << " domains\n";
    }
  }
  return 0;
}

// Table I: communication and computation breakdown when only the R-factor
// is needed. Three evidence columns per algorithm:
//  - the paper's closed form,
//  - the measured critical path of the real threaded implementation
//    (virtual clocks under unit-cost models), and
//  - the DES replay's counters at paper scale.
#include <cmath>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/des_algos.hpp"
#include "core/pdgeqr2.hpp"
#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "model/costs.hpp"

using namespace qrgrid;

namespace {

class UnitLatencyModel final : public msg::CostModel {
 public:
  double transfer_seconds(int src, int dst, std::size_t) const override {
    return src == dst ? 0.0 : 1.0;
  }
  double flop_seconds(int, double, int) const override { return 0.0; }
  msg::LinkClass link_class(int src, int dst) const override {
    return src == dst ? msg::LinkClass::kSelf : msg::LinkClass::kIntraCluster;
  }
};

class BytesModel final : public msg::CostModel {
 public:
  double transfer_seconds(int src, int dst, std::size_t bytes) const override {
    return src == dst ? 0.0 : static_cast<double>(bytes) / 8.0;  // doubles
  }
  double flop_seconds(int, double, int) const override { return 0.0; }
  msg::LinkClass link_class(int src, int dst) const override {
    return src == dst ? msg::LinkClass::kSelf : msg::LinkClass::kIntraCluster;
  }
};

class FlopModel final : public msg::CostModel {
 public:
  double transfer_seconds(int, int, std::size_t) const override { return 0.0; }
  double flop_seconds(int, double flops, int) const override { return flops; }
  msg::LinkClass link_class(int src, int dst) const override {
    return src == dst ? msg::LinkClass::kSelf : msg::LinkClass::kIntraCluster;
  }
};

struct Measured {
  double msgs, vol, flops;
};

Measured measure(bool tsqr, int p, Index m_loc, Index n) {
  Measured out{};
  for (int which = 0; which < 3; ++which) {
    std::shared_ptr<msg::CostModel> cost;
    if (which == 0) cost = std::make_shared<UnitLatencyModel>();
    if (which == 1) cost = std::make_shared<BytesModel>();
    if (which == 2) cost = std::make_shared<FlopModel>();
    msg::Runtime rt(p, cost);
    msg::RunStats stats = rt.run([&](msg::Comm& comm) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 3131);
      if (tsqr) {
        (void)core::tsqr_factor(comm, local.view(), core::TsqrOptions{});
      } else {
        (void)core::pdgeqr2_factor(comm, local.view(), comm.rank() * m_loc);
      }
    });
    if (which == 0) out.msgs = stats.max_vtime;
    if (which == 1) out.vol = stats.max_vtime;
    if (which == 2) out.flops = stats.max_vtime;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Table I reproduction: #msg / volume / #FLOPs, R-factor "
               "only\n"
            << "(measured = critical path of the threaded runtime under "
               "unit-cost models)\n\n";
  const int p = 16;
  const Index m_loc = 512, n = 32;
  const double m = static_cast<double>(m_loc) * p;

  const model::CostBreakdown want_qr2 =
      model::scalapack_qr2_costs(m, n, p, model::Outputs::kROnly);
  const model::CostBreakdown want_tsqr =
      model::tsqr_costs(m, n, p, model::Outputs::kROnly);
  const Measured got_qr2 = measure(false, p, m_loc, n);
  const Measured got_tsqr = measure(true, p, m_loc, n);

  TextTable t;
  t.set_header({"algorithm", "quantity", "Table I formula", "measured"});
  auto add = [&](const char* alg, const char* q, double want, double got) {
    t.add_row({alg, q, format_number(want, 6), format_number(got, 6)});
  };
  add("ScaLAPACK QR2", "# msg (2N log2 P)", want_qr2.messages, got_qr2.msgs);
  add("ScaLAPACK QR2", "volume (log2(P) N^2/2)", want_qr2.volume_doubles,
      got_qr2.vol);
  add("ScaLAPACK QR2", "# FLOPs ((2MN^2-2/3N^3)/P)", want_qr2.flops,
      got_qr2.flops);
  add("TSQR", "# msg (log2 P)", want_tsqr.messages, got_tsqr.msgs);
  add("TSQR", "volume (log2(P) N^2/2)", want_tsqr.volume_doubles,
      got_tsqr.vol);
  add("TSQR", "# FLOPs (+2/3 log2(P) N^3)", want_tsqr.flops, got_tsqr.flops);
  t.print(std::cout);

  std::cout << "\nmessage ratio QR2/TSQR: "
            << format_number(got_qr2.msgs / got_tsqr.msgs, 4)
            << " (model: 2N = " << format_number(2.0 * n) << ")\n";

  // Paper-scale evidence from the DES replay: M = 2^25, N = 64, 4 sites.
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(4);
  core::DesRunResult tsqr = core::run_des_tsqr(
      topo, model::paper_calibration(), 64, 1 << 25, 64);
  std::cout << "\nDES at paper scale (M=2^25, N=64, 256 procs, 4 sites): "
            << "TSQR inter-cluster messages = " << tsqr.inter_cluster_messages
            << " (tuned tree: sites-1 = 3)\n";
  return 0;
}

// Shared plumbing for the figure/table benches: the paper's matrix-size
// sweeps, site configurations, and gnuplot-friendly series printing.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/des_algos.hpp"
#include "model/roofline.hpp"
#include "simgrid/topology.hpp"

namespace qrgrid::bench {

/// The paper's row-count sweep (x axis of Figs. 4, 5, 8): powers of two
/// from 2^17 = 131,072 up to a per-N memory cap mirroring the 16 GB limit
/// of the original testbed (N = 64/128 reach 33.5M rows; N = 256/512 stop
/// at 8.4M).
inline std::vector<double> m_sweep(double n) {
  const double cap = n <= 128 ? (1 << 25) : (1 << 23);
  std::vector<double> ms;
  for (double m = 1 << 17; m <= cap; m *= 2) ms.push_back(m);
  return ms;
}

/// Column counts of the paper's four subfigures.
inline std::vector<double> n_values() { return {64, 128, 256, 512}; }

/// Site counts of each figure's three curves.
inline std::vector<int> site_counts() { return {1, 2, 4}; }

/// Per-cluster domain counts explored by the paper (Figs. 6-7).
inline std::vector<int> domain_counts() { return {1, 2, 4, 8, 16, 32, 64}; }

/// TSQR at the best per-cluster domain count (what Fig. 5 reports).
inline core::DesRunResult best_tsqr(const simgrid::GridTopology& topo,
                                    const model::Roofline& roof, double m,
                                    double n) {
  core::DesRunResult best;
  best.seconds = -1.0;
  for (int d : domain_counts()) {
    core::DesRunResult r = core::run_des_tsqr(topo, roof, d, m, n);
    if (best.seconds < 0.0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

inline void print_series_header(const std::string& title,
                                const std::string& xlabel,
                                const std::string& ylabel) {
  std::cout << "\n## " << title << "\n"
            << "# x = " << xlabel << ", y = " << ylabel << "\n";
}

/// One gnuplot-ready line: "series: <name> <x> <y>".
inline void print_point(const std::string& series, double x, double y) {
  std::cout << "series: " << series << ' ' << format_number(x) << ' '
            << format_number(y, 4) << '\n';
}

}  // namespace qrgrid::bench

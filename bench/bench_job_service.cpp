// Job-service policy shoot-out: 1000 queued TSQR factorizations on the
// paper's 4-site Grid'5000 slice (256 processes, 128 nodes), identical
// seeded Poisson workload under FCFS, shortest-predicted-job-first, and
// EASY backfilling. The DES replay cache is what keeps this in seconds of
// wall time: the 1000 jobs share a few hundred (shape x placement)
// combinations.
//
// Expected shape of the result: EASY strictly beats FCFS on makespan and
// mean wait (holes in front of blocked whole-grid jobs get filled), SPJF
// minimizes mean wait further but can starve large jobs (watch max wait).
#include <iostream>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "sched/service.hpp"
#include "sched/workload.hpp"

using namespace qrgrid;

int main() {
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(4, 32, 2);
  const model::Roofline roof = model::paper_calibration();

  sched::WorkloadSpec spec;
  spec.jobs = 1000;
  spec.mean_interarrival_s = 0.25;
  spec.procs_choices = {16, 32, 64, 128, 256};  // up to whole-grid jobs
  spec.seed = 2026;
  const std::vector<sched::Job> jobs = sched::generate_workload(spec);

  std::cout << "Grid job service: " << spec.jobs
            << " queued TSQR jobs on " << topo.num_clusters() << " sites / "
            << topo.total_procs() << " processes (seed " << spec.seed
            << ", mean inter-arrival "
            << format_number(spec.mean_interarrival_s, 3) << " s)\n\n";

  TextTable table;
  table.set_header(sched::summary_header());
  double fcfs_makespan = 0.0, easy_makespan = 0.0;
  double wall_total = 0.0;
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSpjf,
        sched::Policy::kEasyBackfill}) {
    sched::ServiceOptions options;
    options.policy = policy;
    sched::GridJobService service(topo, roof, options);
    Stopwatch watch;
    const sched::ServiceReport report = service.run(jobs);
    const double wall = watch.seconds();
    wall_total += wall;
    table.add_row(sched::summary_row(report));
    if (policy == sched::Policy::kFcfs) fcfs_makespan = report.makespan_s;
    if (policy == sched::Policy::kEasyBackfill) {
      easy_makespan = report.makespan_s;
    }
  }
  table.print(std::cout);
  std::cout << "\nsimulated " << 3 * spec.jobs << " job executions in "
            << format_number(wall_total, 3) << " s of wall time\n";

  if (easy_makespan >= fcfs_makespan) {
    std::cerr << "REGRESSION: EASY backfilling did not beat FCFS makespan ("
              << easy_makespan << " vs " << fcfs_makespan << ")\n";
    return 1;
  }
  std::cout << "EASY backfilling beats FCFS makespan by "
            << format_number(
                   100.0 * (1.0 - easy_makespan / fcfs_makespan), 3)
            << " %\n";
  return 0;
}

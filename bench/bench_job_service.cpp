// Job-service policy shoot-out: queued TSQR factorizations on the
// paper's 4-site Grid'5000 slice (256 processes, 128 nodes), identical
// seeded Poisson workload under FCFS, shortest-predicted-job-first, and
// EASY backfilling — first on a healthy grid, then under CHURN: seeded
// whole-cluster outages (per-site MTBF adapted to the healthy FCFS
// makespan) plus user walltimes over-asked by the classic U[1, 5)
// multiplier. The DES replay cache is what keeps this in seconds of wall
// time: the jobs share a few hundred (shape x placement) combinations.
//
// Expected shape of the result: on the healthy grid EASY strictly beats
// FCFS on makespan and mean wait; under churn every policy loses jobs to
// walltime kills and requeues outage victims, and the table answers
// whether EASY's win survives failures and over-ask. A third, WAN-heavy
// scenario (wide flat-tree jobs on a thin 20 Mb/s-per-site WAN, shared
// through the sched::GridWanModel contention engine) pits naive
// placement against --wan-aware placement: steering wide jobs onto
// currently-idle uplinks must win on makespan, and every completed job's
// contended runtime must be >= its isolated replay (the monotonicity
// gate). A fourth scenario drives one small workload through BOTH
// execution backends — cached DES replay vs real threaded msg::Runtime —
// and gates identical scheduling, <= 2% finish-time drift, and per-job
// numerics. A fifth, mixed-priority two-user scenario pits the pluggable
// policy objects against each other: priority-aware EASY must beat plain
// (priority-blind) EASY on the high-priority class's mean wait, and
// weighted fair-share (2:1) must hold the light user's personal makespan
// between the heavy user's and the configured weight ratio.
//
// Every default-mode run carries the full observability stack (tracer,
// wait-blame, phase profiler): the per-row "crit.run%" column is the
// critical chain's running fraction of the makespan (the rest is wait /
// outage / pre-arrival), each run gates that the chain tiles the
// makespan exactly, and the aggregated per-phase wall times land in the
// BENCH JSON's "profile" object for tools/check_bench.py to diff
// against bench/BENCH_baseline.json. Usage: bench_job_service [jobs]
// (default 1000; CI smoke-runs 60).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/des_algos.hpp"
#include "sched/critpath.hpp"
#include "sched/profiler.hpp"
#include "sched/service.hpp"
#include "sched/telemetry.hpp"
#include "sched/workload.hpp"

using namespace qrgrid;

namespace {

constexpr sched::Policy kPolicies[] = {sched::Policy::kFcfs,
                                       sched::Policy::kSpjf,
                                       sched::Policy::kEasyBackfill};

/// One row of the perf-trajectory artifact: a (scenario, configuration)
/// cell with its virtual-time outcome and the wall time it cost.
struct BenchRow {
  std::string scenario;
  std::string config;
  double makespan_s = 0.0;
  double mean_wait_s = 0.0;
  double wall_s = 0.0;
  /// Fraction of the makespan the critical chain spent actually running
  /// (vs waiting / outage / pre-arrival); -1 in --scale mode (untraced).
  double crit_run_frac = -1.0;
};

/// One benchmark cell with the full observability stack armed: tracer
/// (for the critical-path column), wait-blame, and the shared phase
/// profiler. The zero-cost contract (tested in telemetry_test) makes the
/// traced outcome identical to the untraced one, so the scenario gates
/// below stay meaningful; the wall-time column now prices tracing in,
/// which is exactly what the regression gate should watch.
struct TracedRun {
  sched::ServiceReport report;
  double wall_s = 0.0;
  double crit_run_frac = 0.0;
  bool crit_ok = false;
};

TracedRun run_traced(const simgrid::GridTopology& topo,
                     const model::Roofline& roof,
                     sched::ServiceOptions options,
                     const std::vector<sched::Job>& jobs,
                     sched::PhaseProfiler& profiler) {
  sched::ServiceTracer tracer;
  options.tracer = &tracer;
  options.wait_blame = true;
  options.profiler = &profiler;
  sched::GridJobService service(topo, roof, options);
  TracedRun out;
  Stopwatch watch;
  out.report = service.run(jobs);
  out.wall_s = watch.seconds();
  const sched::CriticalPathReport cp =
      sched::analyze_critical_path(tracer.events());
  // The analyzer's self-check: the chain tiles [0, makespan] exactly.
  // Tile boundaries are exact doubles; only the SUM of tile lengths may
  // round, hence the relative epsilon.
  out.crit_ok = cp.makespan_s == out.report.makespan_s &&
                std::abs(cp.path_length_s() - cp.makespan_s) <=
                    1e-9 * std::max(1.0, cp.makespan_s);
  out.crit_run_frac =
      cp.makespan_s > 0.0 ? cp.run_s / cp.makespan_s : 0.0;
  return out;
}

std::vector<std::string> bench_header() {
  std::vector<std::string> header = sched::summary_header();
  header.push_back("crit.run%");
  return header;
}

std::vector<std::string> bench_row(const TracedRun& traced) {
  std::vector<std::string> row = sched::summary_row(traced.report);
  row.push_back(format_number(100.0 * traced.crit_run_frac, 4));
  return row;
}

long long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // bytes on macOS
#else
    return usage.ru_maxrss;  // kilobytes on Linux
#endif
  }
#endif
  return -1;
}

/// BENCH_job_service.json: the machine-readable perf trajectory CI
/// archives per commit. Written BEFORE the regression gates run, so a
/// failing gate still leaves the artifact to diagnose with.
void write_bench_json(const std::string& path, int jobs,
                      const std::vector<BenchRow>& rows,
                      long long executions, double wall_total,
                      const sched::PhaseProfiler* profiler) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out.precision(17);
  out << "{\n  \"bench\": \"job_service\",\n  \"jobs\": " << jobs
      << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\"scenario\": \"" << row.scenario << "\", \"config\": \""
        << row.config << "\", \"makespan_s\": " << row.makespan_s
        << ", \"mean_wait_s\": " << row.mean_wait_s
        << ", \"wall_s\": " << row.wall_s
        << ", \"crit_run_frac\": " << row.crit_run_frac << '}'
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  if (profiler != nullptr) {
    // Where the wall time went, by service phase (self-profiled across
    // every run above). check_bench.py gates the per-phase SHARE of the
    // summed phase wall, so a phase that silently grows relative to its
    // siblings trips the gate even when total wall still fits.
    out << "  \"profile\": {";
    for (int p = 0; p < sched::kProfilePhaseCount; ++p) {
      const auto phase = static_cast<sched::ProfilePhase>(p);
      out << (p > 0 ? ", " : "") << '"'
          << sched::profile_phase_name(phase)
          << "\": {\"wall_s\": " << profiler->total_s(phase)
          << ", \"calls\": " << profiler->calls(phase) << '}';
    }
    out << "},\n";
  }
  out << "  \"totals\": {\"executions\": " << executions
      << ", \"wall_s\": " << wall_total << ", \"jobs_per_sec\": "
      << (wall_total > 0.0 ? static_cast<double>(executions) / wall_total
                           : 0.0)
      << ", \"peak_rss_kb\": " << peak_rss_kb() << "}\n}\n";
  std::cout << "perf trajectory written to " << path << '\n';
}

/// Million-job steady state: the indexed-dispatch acceptance gate. One
/// long Poisson stream (default 1e6 jobs from 1e5 users) on the paper
/// grid under the three policy classes the dispatch rewrite must keep
/// cheap: static-key FCFS (zero resorts), dynamic fair-share
/// (incremental per-user resync across a 100k-user service map), and
/// EASY with a bounded backfill scan (SLURM's bf_max_job_test analogue —
/// unbounded EASY over a million-deep backlog is O(n) per dispatch BY
/// DESIGN and would drown any data-structure win). Gates: job
/// conservation per config, total wall time, and peak RSS. Budgets hold
/// on a cold CI runner at full scale; measured locally the full run is
/// ~110 s / ~560 MB, so the 600 s / 8 GB gates carry ~5x wall and ~14x
/// memory headroom — they catch a complexity-class regression (the
/// quadratic they guard against costs hours), not runner jitter.
///
/// --wan-contention turns the same steady-state arrival process into
/// the CONTENDED acceptance gate: 256 processes spread over 8 sites,
/// wide flat-tree jobs straddling the 32-proc site boundaries, every
/// multi-site attempt a flow on thin shared uplinks under max-min
/// fairness — the incremental rate engine absorbs millions of
/// structural events while flows overlap persistently. Extra gates,
/// metrics-read per config: contention actually present, events > 0,
/// and full_refills << events (a component recompute that spans every
/// busy link should be the exception — that is the whole point of the
/// incremental engine), under the SAME wall/RSS budgets as the
/// uncontended lane.
/// Synthetic many-site extension of the measured Grid'5000 subset:
/// site s is a twin of measured site s mod 4 (same nodes, same
/// processor peaks), and every inter-site link borrows the measured
/// Fig. 3(a) parameters of its endpoint site classes (a same-class pair
/// reuses its class's link to the next class over). Only the contended
/// scale lane uses this — it needs wide jobs straddling MANY site
/// boundaries so the rate graph holds several independent bottleneck
/// components at once; everywhere the paper's numbers are quoted the
/// measured 4-site grid stays in force.
simgrid::GridTopology tiled_grid(int sites, int nodes_per_cluster,
                                 int procs_per_node) {
  const simgrid::GridTopology measured =
      simgrid::GridTopology::grid5000(4, nodes_per_cluster, procs_per_node);
  std::vector<simgrid::ClusterSpec> clusters;
  for (int s = 0; s < sites; ++s) {
    simgrid::ClusterSpec spec = measured.cluster(s % 4);
    if (s >= 4) spec.name += "-" + std::to_string(s / 4);
    clusters.push_back(std::move(spec));
  }
  std::vector<std::vector<simgrid::LinkParams>> inter(
      static_cast<std::size_t>(sites),
      std::vector<simgrid::LinkParams>(static_cast<std::size_t>(sites)));
  for (int a = 0; a < sites; ++a) {
    for (int b = 0; b < sites; ++b) {
      const int ca = a % 4, cb = b % 4;
      if (a == b) {
        inter[a][b] = measured.inter_cluster_link(ca, ca);
      } else if (ca == cb) {  // same-class pair: the neighbor-class link
        inter[a][b] = measured.inter_cluster_link(ca, (ca + 1) % 4);
      } else {
        inter[a][b] = measured.inter_cluster_link(ca, cb);
      }
    }
  }
  return simgrid::GridTopology(std::move(clusters),
                               measured.intra_node_link(),
                               measured.intra_cluster_link(),
                               std::move(inter));
}

int run_scale(int jobs, int users, bool wan_contention) {
  // The contended lane spreads the same 256 processes over 16 sites
  // with an overprovisioned core: each wide job straddles ONE site
  // boundary (a 2-link flow), a dozen such flows co-run on a 32-link
  // access graph, and the bottleneck components they chain stay local —
  // the state the component-local rebalance exists for. On 4 fat sites
  // every co-running flow transitively couples (measured: comp_busy ==
  // busy_links on ~45% of recomputes), and with a finite trunk every
  // uplink demand crosses the one shared backbone link, so the whole
  // graph would be one component and each repair a full refill no
  // matter how the rates are maintained.
  const simgrid::GridTopology topo =
      wan_contention ? tiled_grid(16, 8, 2)
                     : simgrid::GridTopology::grid5000(4, 32, 2);
  const model::Roofline roof = model::paper_calibration();

  sched::WorkloadSpec spec;
  spec.jobs = jobs;
  spec.users = users;
  // Arrival rate a shade under drain capacity: the backlog stays bounded
  // (steady state) instead of growing linearly, so the run exercises the
  // dispatch hot path at a persistent queue depth rather than degenerating
  // into one giant terminal drain.
  spec.mean_interarrival_s = 0.33;
  spec.procs_choices = {16, 32, 64, 128, 256};
  spec.seed = 2026;
  if (wan_contention) {
    // Shapes that can actually contend. The uncontended stream's wide
    // jobs (128/256 procs) own whole clusters, so co-running jobs sit on
    // DISJOINT uplinks and never share a link; 20-proc jobs straddle one
    // 16-proc site boundary each (a two-link flow: remote uplink, master
    // downlink), so concurrent wide jobs overlap pairwise on shared
    // links while 6/12-proc fillers fragment the node pool. Flat trees
    // make every remote domain ship its R factor, so the shared links
    // carry transfers that last seconds instead of flashes.
    spec.m_choices = {1 << 17, 1 << 18};
    spec.n_choices = {256, 512};
    spec.procs_choices = {6, 12, 20};
    spec.tree_choices = {core::TreeKind::kFlat};
    // WAN stretch eats into drain capacity, so the contended lane needs
    // its own shade-under-saturation arrival rate: at 0.33 s the backlog
    // grows without bound (mean wait ~1600 s at 100k jobs) and the
    // dispatch scan pays for the ever-deeper queue.
    spec.mean_interarrival_s = 0.35;
  }
  const std::vector<sched::Job> stream = sched::generate_workload(spec);

  std::cout << "Scale steady state"
            << (wan_contention ? " (max-min WAN contention, flat trees)"
                               : "")
            << ": "
            << jobs << " jobs / " << users << " users on "
            << topo.num_clusters() << " sites / " << topo.total_procs()
            << " processes (mean inter-arrival "
            << format_number(spec.mean_interarrival_s, 3) << " s)\n\n";

  struct ScaleConfig {
    const char* name;
    sched::Policy policy;
    int backfill_depth;
  };
  // The contended lane runs two configs, not three: the rate engine
  // sees the same flow stream whichever policy orders the queue
  // (measured at 1M jobs, the per-config wan.rebalance counters agree
  // within 0.1%), so fair-share would re-pay the whole contended wall
  // for zero added WAN coverage. FCFS covers the ordered-queue path;
  // EASY — at depth 4, because at 96% utilization on the fragmented
  // 16-site node pool the depth-64 scan almost never finds a hole (42
  // backfills in 30k jobs) yet costs 8x the FCFS wall — uniquely
  // drives shadow pricing through the generation-keyed estimate basis.
  std::vector<ScaleConfig> configs;
  configs.push_back({"fcfs", sched::Policy::kFcfs, 0});
  if (!wan_contention) {
    configs.push_back({"fair", sched::Policy::kFairShare, 0});
  }
  configs.push_back({wan_contention ? "easy+depth4" : "easy+depth64",
                     sched::Policy::kEasyBackfill, wan_contention ? 4 : 64});
  const std::string scenario = wan_contention ? "scale-wan-contended" : "scale";

  TextTable table;
  table.set_header(sched::summary_header());
  std::vector<BenchRow> rows;
  bool ok = true;
  double wall_total = 0.0;
  long long executions = 0;
  sched::PhaseProfiler profiler;  // aggregated across the configs
  for (const ScaleConfig& config : configs) {
    sched::ServiceOptions options;
    options.policy = config.policy;
    options.backfill_depth = config.backfill_depth;
    options.profiler = &profiler;
    sched::MetricsRegistry metrics;
    if (wan_contention) {
      options.wan_contention = true;
      options.wan_aware = true;  // spread flows across idle uplinks
      options.wan_fairness = sched::WanFairness::kMaxMin;
      options.wan_link_Bps = 0.05e9 / 8.0;  // thin: transfers last seconds
      // Overprovisioned core: the site access links bind, the trunk
      // imposes no constraint and so does not chain every co-running
      // flow into one graph-wide component (which would make each
      // repair a full refill by construction, regardless of topology).
      options.wan_backbone_Bps = std::numeric_limits<double>::infinity();
      options.metrics = &metrics;        // the wan.rebalance.* gauges
    }
    sched::GridJobService service(topo, roof, options);
    Stopwatch watch;
    const sched::ServiceReport report = service.run(stream);
    const double wall_s = watch.seconds();
    wall_total += wall_s;
    executions += jobs + report.requeued_jobs;
    rows.push_back({scenario, config.name, report.makespan_s,
                    report.mean_wait_s, wall_s});
    std::vector<std::string> row = sched::summary_row(report);
    row[0] = config.name;
    table.add_row(row);
    std::cout << "  " << config.name << ": " << format_number(wall_s, 3)
              << " s wall, "
              << format_number(static_cast<double>(jobs) / wall_s, 0)
              << " jobs/s\n";
    if (report.completed_jobs + report.failed_jobs != jobs) {
      std::cerr << "REGRESSION: " << config.name << " lost jobs at scale ("
                << report.completed_jobs << " + " << report.failed_jobs
                << " != " << jobs << ")\n";
      ok = false;
    }
    if (wan_contention) {
      const double events = metrics.gauge("wan.rebalance.events");
      const double recomputes = metrics.gauge("wan.rebalance.recomputes");
      const double full = metrics.gauge("wan.rebalance.full_refills");
      std::cout << "    wan.rebalance: events "
                << format_number(events, 0) << ", recomputes "
                << format_number(recomputes, 0) << ", links_touched "
                << format_number(metrics.gauge("wan.rebalance.links_touched"),
                                 0)
                << ", full_refills " << format_number(full, 0) << '\n';
      // Gates bind above smoke size; tiny tuning sweeps may not overlap.
      if (jobs >= 1000 && report.max_wan_slowdown <= 1.0) {
        std::cerr << "REGRESSION: " << config.name
                  << " saw no WAN contention at scale (max slowdown "
                  << report.max_wan_slowdown << ")\n";
        ok = false;
      }
      if (jobs >= 1000 && events <= 0.0) {
        std::cerr << "REGRESSION: " << config.name
                  << " recorded no wan.rebalance.events under contention\n";
        ok = false;
      }
      // The incremental-engine claim, counter-gated: recomputes that fall
      // back to refilling every busy link must be rare next to the
      // structural events absorbed (8x is a floor; measured runs sit far
      // above it).
      if (jobs >= 1000 && 8.0 * full > events) {
        std::cerr << "REGRESSION: " << config.name
                  << " full_refills not << events (" << full << " vs "
                  << events << ")\n";
        ok = false;
      }
    }
  }
  table.print(std::cout);
  const long long rss_kb = peak_rss_kb();
  std::cout << "total " << format_number(wall_total, 3)
            << " s wall, peak RSS " << rss_kb / 1024 << " MB\n";
  write_bench_json("BENCH_job_service.json", jobs, rows, executions,
                   wall_total, &profiler);

  // Budgets bind only at full scale — smaller sweeps are for tuning.
  if (jobs >= 1000000) {
    constexpr double kWallBudgetS = 600.0;
    constexpr long long kRssBudgetKb = 8LL * 1024 * 1024;
    if (wall_total > kWallBudgetS) {
      std::cerr << "REGRESSION: scale scenario took "
                << format_number(wall_total, 3) << " s wall (budget "
                << kWallBudgetS << " s)\n";
      ok = false;
    }
    if (rss_kb > kRssBudgetKb) {
      std::cerr << "REGRESSION: scale scenario peaked at " << rss_kb
                << " kB RSS (budget " << kRssBudgetKb << " kB)\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--scale") {
    bool wan_contention = false;
    std::vector<std::string> positional;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--wan-contention") {
        wan_contention = true;
      } else {
        positional.push_back(arg);
      }
    }
    const int jobs = positional.size() > 0 ? std::atoi(positional[0].c_str())
                                           : 1000000;
    const int users = positional.size() > 1 ? std::atoi(positional[1].c_str())
                                            : 100000;
    if (jobs <= 0 || users <= 0) {
      std::cerr << "usage: bench_job_service --scale [jobs > 0] [users > 0] "
                   "[--wan-contention]\n";
      return 1;
    }
    return run_scale(jobs, users, wan_contention);
  }
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(4, 32, 2);
  const model::Roofline roof = model::paper_calibration();

  sched::WorkloadSpec spec;
  spec.jobs = argc > 1 ? std::atoi(argv[1]) : 1000;
  if (spec.jobs <= 0) {
    std::cerr << "usage: bench_job_service [jobs > 0]\n";
    return 1;
  }
  spec.mean_interarrival_s = 0.25;
  spec.procs_choices = {16, 32, 64, 128, 256};  // up to whole-grid jobs
  spec.seed = 2026;
  const std::vector<sched::Job> jobs = sched::generate_workload(spec);

  std::cout << "Grid job service: " << spec.jobs
            << " queued TSQR jobs on " << topo.num_clusters() << " sites / "
            << topo.total_procs() << " processes (seed " << spec.seed
            << ", mean inter-arrival "
            << format_number(spec.mean_interarrival_s, 3) << " s)\n\n"
            << "Healthy grid:\n";

  TextTable healthy;
  healthy.set_header(bench_header());
  double fcfs_makespan = 0.0, easy_makespan = 0.0;
  double wall_total = 0.0;
  long long executions = 0;  // attempts, including requeued restarts
  std::vector<BenchRow> bench_rows;
  sched::PhaseProfiler profiler;  // aggregated across every traced run
  bool crit_ok = true;
  const auto gate_critpath = [&crit_ok](const TracedRun& traced,
                                        const std::string& where) {
    if (!traced.crit_ok) {
      std::cerr << "REGRESSION: critical path does not tile the makespan ("
                << where << ")\n";
      crit_ok = false;
    }
  };
  for (sched::Policy policy : kPolicies) {
    sched::ServiceOptions options;
    options.policy = policy;
    const TracedRun traced = run_traced(topo, roof, options, jobs, profiler);
    const sched::ServiceReport& report = traced.report;
    const double wall_s = traced.wall_s;
    gate_critpath(traced, "healthy " + std::string(policy_name(policy)));
    wall_total += wall_s;
    executions += spec.jobs + report.requeued_jobs;
    bench_rows.push_back({"healthy", std::string(policy_name(policy)),
                          report.makespan_s, report.mean_wait_s, wall_s,
                          traced.crit_run_frac});
    healthy.add_row(bench_row(traced));
    if (policy == sched::Policy::kFcfs) fcfs_makespan = report.makespan_s;
    if (policy == sched::Policy::kEasyBackfill) {
      easy_makespan = report.makespan_s;
    }
  }
  healthy.print(std::cout);

  // Churn: MTBF scaled to the healthy makespan so roughly 8 outages hit
  // each site during the run regardless of the job count, and walltimes
  // over-asked so EASY must plan with estimates (and honest users whose
  // WAN placements outrun Equation (1) get walltime-killed).
  sched::OutageSpec outage_spec;
  outage_spec.mtbf_s = fcfs_makespan / 8.0;
  outage_spec.mean_outage_s = outage_spec.mtbf_s / 8.0;
  outage_spec.seed = spec.seed + 1;

  std::vector<sched::Job> churn_jobs = jobs;
  {
    const sched::GridJobService predictor(topo, roof);
    sched::assign_walltimes(churn_jobs, 5.0, spec.seed, [&](const sched::Job& j) {
      return predictor.predicted_seconds(j);
    });
  }

  std::cout << "\nChurn (per-site MTBF "
            << format_number(outage_spec.mtbf_s, 4) << " s, mean repair "
            << format_number(outage_spec.mean_outage_s, 4)
            << " s, walltime over-ask U[1, 5), 3 retries, restart "
               "credit):\n";
  TextTable churn;
  churn.set_header(bench_header());
  bool churn_ok = true;
  double churn_fcfs = 0.0, churn_easy = 0.0;
  for (sched::Policy policy : kPolicies) {
    sched::ServiceOptions options;
    options.policy = policy;
    options.outages = sched::OutageTrace(outage_spec, topo.num_clusters());
    options.max_retries = 3;
    options.restart_credit = true;
    const TracedRun traced =
        run_traced(topo, roof, options, churn_jobs, profiler);
    const sched::ServiceReport& report = traced.report;
    const double wall_s = traced.wall_s;
    gate_critpath(traced, "churn " + std::string(policy_name(policy)));
    wall_total += wall_s;
    executions += spec.jobs + report.requeued_jobs;
    bench_rows.push_back({"churn", std::string(policy_name(policy)),
                          report.makespan_s, report.mean_wait_s, wall_s,
                          traced.crit_run_frac});
    churn.add_row(bench_row(traced));
    if (policy == sched::Policy::kFcfs) churn_fcfs = report.makespan_s;
    if (policy == sched::Policy::kEasyBackfill) {
      churn_easy = report.makespan_s;
    }
    // The acceptance gate: real churn (kills AND requeues) under every
    // policy, with no job lost or double-counted by the event loop.
    if (report.killed_jobs <= 0 || report.requeued_jobs <= 0) {
      std::cerr << "REGRESSION: " << policy_name(policy)
                << " saw no churn (killed " << report.killed_jobs
                << ", requeued " << report.requeued_jobs << ")\n";
      churn_ok = false;
    }
    if (report.completed_jobs + report.failed_jobs != spec.jobs ||
        report.outcomes.size() != static_cast<std::size_t>(spec.jobs)) {
      std::cerr << "REGRESSION: " << policy_name(policy)
                << " lost jobs (completed " << report.completed_jobs
                << " + failed " << report.failed_jobs << " != "
                << spec.jobs << ")\n";
      churn_ok = false;
    }
  }
  churn.print(std::cout);
  // WAN-heavy shoot-out: make the paper's scarce resource scarce again.
  // Wide flat-tree jobs (the original TSQR: every domain's R factor
  // crosses to one root) on a 20 Mb/s-per-site WAN, mixed with
  // single-cluster fillers that fragment the grid so the meta-scheduler
  // actually has placement choices. Naive dispatch first-fits from site
  // 0 regardless of in-flight flows; network-aware dispatch orders
  // candidate sites idlest-uplink-first.
  sched::WorkloadSpec wan_spec;
  wan_spec.jobs = std::max(spec.jobs / 2, 12);
  wan_spec.mean_interarrival_s = 0.4;
  wan_spec.m_choices = {1 << 17, 1 << 18};
  wan_spec.n_choices = {256, 512};
  // 24/48 procs: 12/24-node single-cluster fillers (no WAN bytes).
  // 68 procs: 2 x 17 nodes; 132 procs: 3 x 22 nodes — the WAN jobs.
  wan_spec.procs_choices = {24, 48, 68, 132};
  wan_spec.tree_choices = {core::TreeKind::kFlat};
  wan_spec.seed = spec.seed + 2;
  const std::vector<sched::Job> wan_jobs = sched::generate_workload(wan_spec);

  std::cout << "\nWAN-heavy (" << wan_spec.jobs
            << " flat-tree jobs, 0.02 Gb/s per site uplink, shared-WAN "
               "contention, EASY):\n";
  TextTable wan_table;
  wan_table.set_header(bench_header());
  double naive_makespan = 0.0, aware_makespan = 0.0;
  bool wan_ok = true;
  for (const bool aware : {false, true}) {
    sched::ServiceOptions options;
    options.policy = sched::Policy::kEasyBackfill;
    options.wan_contention = true;
    options.wan_aware = aware;
    options.wan_link_Bps = 0.02e9 / 8.0;
    const TracedRun traced =
        run_traced(topo, roof, options, wan_jobs, profiler);
    const sched::ServiceReport& report = traced.report;
    const double wall_s = traced.wall_s;
    gate_critpath(traced,
                  aware ? "wan-heavy easy+aware" : "wan-heavy easy+naive");
    wall_total += wall_s;
    executions += wan_spec.jobs + report.requeued_jobs;
    bench_rows.push_back({"wan-heavy",
                          aware ? "easy+aware" : "easy+naive",
                          report.makespan_s, report.mean_wait_s, wall_s,
                          traced.crit_run_frac});
    std::vector<std::string> row = bench_row(traced);
    row[0] = aware ? "easy+aware" : "easy+naive";
    wan_table.add_row(row);
    (aware ? aware_makespan : naive_makespan) = report.makespan_s;
    // Monotonicity gate: a shared WAN can only ever stretch a job.
    for (const sched::JobOutcome& o : report.outcomes) {
      if (o.completed() && o.wan_slowdown < 1.0 - 1e-9) {
        std::cerr << "REGRESSION: job " << o.job.id << " ran FASTER under "
                  << "contention (slowdown " << o.wan_slowdown << ")\n";
        wan_ok = false;
      }
    }
    if (sched::max_wan_busy_fraction(report) <= 0.0 ||
        report.max_wan_slowdown <= 1.0) {
      std::cerr << "REGRESSION: WAN-heavy scenario saw no contention "
                << "(busy " << sched::max_wan_busy_fraction(report)
                << ", max slowdown " << report.max_wan_slowdown << ")\n";
      wan_ok = false;
    }
  }
  wan_table.print(std::cout);
  std::cout << "network-aware placement moves makespan "
            << format_number(
                   100.0 * (1.0 - aware_makespan / naive_makespan), 3)
            << " % vs naive under shared-WAN contention\n";

  // WAN-contended, max-min fairness: the same thin-uplink workload through
  // the incremental rate engine. Beyond the physics gates (monotonicity,
  // contention present) this scenario reads the wan.rebalance.* gauges and
  // asserts counter coherence: structural events were absorbed, and
  // whole-graph refills stayed a subset of component recomputes which
  // stayed a subset of events (coalescing can only merge, never invent).
  std::cout << "\nWAN-contended (" << wan_spec.jobs
            << " flat-tree jobs, 0.02 Gb/s per site uplink, max-min "
               "fairness, EASY+aware):\n";
  TextTable contended_table;
  contended_table.set_header(bench_header());
  {
    sched::ServiceOptions options;
    options.policy = sched::Policy::kEasyBackfill;
    options.wan_contention = true;
    options.wan_aware = true;
    options.wan_fairness = sched::WanFairness::kMaxMin;
    options.wan_link_Bps = 0.02e9 / 8.0;
    sched::MetricsRegistry metrics;
    options.metrics = &metrics;
    const TracedRun traced =
        run_traced(topo, roof, options, wan_jobs, profiler);
    const sched::ServiceReport& report = traced.report;
    gate_critpath(traced, "wan-contended easy+maxmin");
    wall_total += traced.wall_s;
    executions += wan_spec.jobs + report.requeued_jobs;
    bench_rows.push_back({"wan-contended", "easy+maxmin", report.makespan_s,
                          report.mean_wait_s, traced.wall_s,
                          traced.crit_run_frac});
    std::vector<std::string> row = bench_row(traced);
    row[0] = "easy+maxmin";
    contended_table.add_row(row);
    for (const sched::JobOutcome& o : report.outcomes) {
      if (o.completed() && o.wan_slowdown < 1.0 - 1e-9) {
        std::cerr << "REGRESSION: job " << o.job.id << " ran FASTER under "
                  << "max-min contention (slowdown " << o.wan_slowdown
                  << ")\n";
        wan_ok = false;
      }
    }
    if (sched::max_wan_busy_fraction(report) <= 0.0 ||
        report.max_wan_slowdown <= 1.0) {
      std::cerr << "REGRESSION: WAN-contended scenario saw no contention "
                << "(busy " << sched::max_wan_busy_fraction(report)
                << ", max slowdown " << report.max_wan_slowdown << ")\n";
      wan_ok = false;
    }
    const double events = metrics.gauge("wan.rebalance.events");
    const double recomputes = metrics.gauge("wan.rebalance.recomputes");
    const double full = metrics.gauge("wan.rebalance.full_refills");
    if (events <= 0.0) {
      std::cerr << "REGRESSION: WAN-contended scenario recorded no "
                << "wan.rebalance.events\n";
      wan_ok = false;
    }
    if (full > recomputes || recomputes > events) {
      std::cerr << "REGRESSION: wan.rebalance counters incoherent "
                << "(full_refills " << full << ", recomputes " << recomputes
                << ", events " << events << ")\n";
      wan_ok = false;
    }
    contended_table.print(std::cout);
    std::cout << "wan.rebalance: " << format_number(events, 0)
              << " events coalesced into " << format_number(recomputes, 0)
              << " recomputes ("
              << format_number(metrics.gauge("wan.rebalance.links_touched"),
                               0)
              << " links touched, " << format_number(full, 0)
              << " whole-graph refills)\n";
  }

  // Backend equivalence: a small EASY workload through the cached-DES
  // replay and through REAL threaded execution (msg::Runtime, one domain
  // per process). The replay is a validated predictor only if the two
  // agree — identical scheduling decisions, measured finish times within
  // tolerance, and every executed factorization numerically correct.
  sched::WorkloadSpec eq_spec;
  eq_spec.jobs = 24;
  eq_spec.mean_interarrival_s = 0.004;
  eq_spec.m_choices = {512, 1024, 2048};
  eq_spec.n_choices = {16, 32};
  eq_spec.procs_choices = {2, 4, 8};
  eq_spec.seed = spec.seed + 3;
  const std::vector<sched::Job> eq_jobs = sched::generate_workload(eq_spec);
  const simgrid::GridTopology eq_topo =
      simgrid::GridTopology::grid5000(2, 2, 2);

  std::cout << "\nBackend equivalence (" << eq_spec.jobs
            << " small jobs, 2 sites x 4 procs, EASY, one domain per "
               "process):\n";
  TextTable eq_table;
  eq_table.set_header(bench_header());
  bool eq_ok = true;
  sched::ServiceReport eq_reports[2];
  for (const bool real : {false, true}) {
    sched::ServiceOptions options;
    options.policy = sched::Policy::kEasyBackfill;
    options.domains_per_cluster = core::kOneDomainPerProcess;
    options.backend = real ? sched::BackendKind::kMsgRuntime
                           : sched::BackendKind::kDesReplay;
    const TracedRun traced =
        run_traced(eq_topo, roof, options, eq_jobs, profiler);
    const double wall_s = traced.wall_s;
    gate_critpath(traced, real ? "backend-equivalence easy+msg"
                               : "backend-equivalence easy+des");
    wall_total += wall_s;
    executions += eq_spec.jobs;
    bench_rows.push_back({"backend-equivalence",
                          real ? "easy+msg" : "easy+des",
                          traced.report.makespan_s,
                          traced.report.mean_wait_s, wall_s,
                          traced.crit_run_frac});
    std::vector<std::string> row = bench_row(traced);
    row[0] = real ? "easy+msg" : "easy+des";
    eq_table.add_row(row);
    eq_reports[real ? 1 : 0] = traced.report;
  }
  eq_table.print(std::cout);
  const sched::ServiceReport& des_run = eq_reports[0];
  const sched::ServiceReport& msg_run = eq_reports[1];
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < msg_run.outcomes.size(); ++i) {
    const sched::JobOutcome& d = des_run.outcomes[i];
    const sched::JobOutcome& m = msg_run.outcomes[i];
    if (d.start_s != m.start_s || d.finish_s != m.finish_s ||
        d.clusters != m.clusters || d.backfilled != m.backfilled) {
      std::cerr << "REGRESSION: backends disagree on the scheduling of "
                << "job " << m.job.id << '\n';
      eq_ok = false;
    }
    if (m.completed() && m.service_s > 0.0) {
      worst_rel = std::max(
          worst_rel, std::abs(m.measured_s - m.service_s) / m.service_s);
    }
  }
  if (worst_rel > 0.02) {
    std::cerr << "REGRESSION: measured msg-runtime finish times drifted "
              << worst_rel << " relative from the DES replay (> 2%)\n";
    eq_ok = false;
  }
  if (msg_run.executed_attempts != msg_run.completed_jobs ||
      msg_run.max_residual <= 0.0 || msg_run.max_residual > 1e-10 ||
      msg_run.max_orthogonality > 1e-10) {
    std::cerr << "REGRESSION: msg-backend numerics gate failed (executed "
              << msg_run.executed_attempts << ", max resid "
              << msg_run.max_residual << ", max ortho "
              << msg_run.max_orthogonality << ")\n";
    eq_ok = false;
  }
  std::cout << "msg-runtime vs DES-replay: identical scheduling, worst "
               "finish-time drift "
            << format_number(100.0 * worst_rel, 3) << " %, max residual "
            << msg_run.max_residual << '\n';

  // Mixed-priority, two-user shoot-out for the policy objects: a heavy
  // flood (queues build) where half the jobs are priority-1 and users 0/1
  // submit alternately with fair-share weights 2:1. Priority-aware EASY
  // must serve the top class faster than priority-blind classic EASY;
  // weighted fair-share must serve the heavy user ahead without starving
  // the light one past the configured ratio.
  sched::WorkloadSpec mix_spec;
  mix_spec.jobs = std::max(spec.jobs / 2, 24);
  mix_spec.mean_interarrival_s = 0.05;
  mix_spec.procs_choices = {16, 32, 64, 128};
  mix_spec.priority_levels = 2;
  mix_spec.seed = spec.seed + 4;
  std::vector<sched::Job> mix_jobs = sched::generate_workload(mix_spec);
  // Alternating user assignment (not a random draw): both users carry
  // statistically equal demand, which is what makes the makespan-ratio
  // gate below meaningful — with ideal 2:1 deficit-round-robin on equal
  // backlogs, the heavy user drains at 2/3 capacity until exhausted and
  // the light user finishes last at about 4/3 of the heavy makespan.
  for (sched::Job& job : mix_jobs) {
    job.user = job.id % 2;
    job.weight = job.user == 0 ? 2.0 : 1.0;
  }

  std::cout << "\nMixed-priority, two-user (" << mix_spec.jobs
            << " jobs, 2 priority classes, users weighted 2:1):\n";
  TextTable mix_table;
  mix_table.set_header(bench_header());
  bool mix_ok = true;
  double top_wait_easy = 0.0, top_wait_prio = 0.0;
  double user_makespan[2] = {0.0, 0.0};
  for (const sched::Policy policy :
       {sched::Policy::kEasyBackfill, sched::Policy::kPriorityEasy,
        sched::Policy::kFairShare}) {
    sched::ServiceOptions options;
    options.policy = policy;
    const TracedRun traced =
        run_traced(topo, roof, options, mix_jobs, profiler);
    const sched::ServiceReport& report = traced.report;
    const double wall_s = traced.wall_s;
    gate_critpath(traced,
                  "mixed-priority " + std::string(policy_name(policy)));
    wall_total += wall_s;
    executions += mix_spec.jobs + report.requeued_jobs;
    bench_rows.push_back({"mixed-priority",
                          std::string(policy_name(policy)),
                          report.makespan_s, report.mean_wait_s, wall_s,
                          traced.crit_run_frac});
    mix_table.add_row(bench_row(traced));
    double top_wait = 0.0;
    int top_count = 0;
    for (const sched::JobOutcome& o : report.outcomes) {
      if (o.job.priority == 1) {
        top_wait += o.wait_s();
        ++top_count;
      }
      if (policy == sched::Policy::kFairShare) {
        user_makespan[static_cast<std::size_t>(o.job.user)] = std::max(
            user_makespan[static_cast<std::size_t>(o.job.user)],
            o.finish_s);
      }
    }
    top_wait /= std::max(top_count, 1);
    if (policy == sched::Policy::kEasyBackfill) top_wait_easy = top_wait;
    if (policy == sched::Policy::kPriorityEasy) top_wait_prio = top_wait;
    if (report.completed_jobs + report.failed_jobs != mix_spec.jobs) {
      std::cerr << "REGRESSION: " << policy_name(policy)
                << " lost jobs in the mixed scenario\n";
      mix_ok = false;
    }
  }
  mix_table.print(std::cout);
  const double makespan_ratio = user_makespan[1] / user_makespan[0];
  std::cout << "priority-1 mean wait: easy "
            << format_number(top_wait_easy, 4) << " s, prio-easy "
            << format_number(top_wait_prio, 4)
            << " s; fair-share user makespans (weights 2:1): heavy "
            << format_number(user_makespan[0], 5) << " s, light "
            << format_number(user_makespan[1], 5) << " s (ratio "
            << format_number(makespan_ratio, 4) << ")\n";
  // Ordering gates at full scale only, like every scenario above: tiny
  // smoke runs have too little queueing for stable gaps.
  if (spec.jobs >= 500) {
    if (top_wait_prio >= top_wait_easy) {
      std::cerr << "REGRESSION: priority-EASY did not beat plain EASY on "
                << "high-priority mean wait (" << top_wait_prio << " vs "
                << top_wait_easy << ")\n";
      mix_ok = false;
    }
    // The weighted-fairness gate: the heavy (weight-2) user finishes
    // first, and the light user's makespan stays within the configured
    // 2:1 ratio (plus slack for discrete job granularity) — fair-share
    // prioritizes without starving.
    if (makespan_ratio <= 1.0 || makespan_ratio > 2.0 * 1.15) {
      std::cerr << "REGRESSION: fair-share user makespan ratio "
                << makespan_ratio << " outside (1, 2.3] for weights 2:1\n";
      mix_ok = false;
    }
  }

  std::cout << "\nsimulated " << executions
            << " job executions (requeued restarts included) in "
            << format_number(wall_total, 3) << " s of wall time\n"
            << "self-profile (all runs):";
  for (int p = 0; p < sched::kProfilePhaseCount; ++p) {
    const auto phase = static_cast<sched::ProfilePhase>(p);
    std::cout << ' ' << sched::profile_phase_name(phase) << ' '
              << format_number(1e3 * profiler.total_s(phase), 4) << " ms/"
              << profiler.calls(phase);
  }
  std::cout << '\n';
  write_bench_json("BENCH_job_service.json", spec.jobs, bench_rows,
                   executions, wall_total, &profiler);
  if (!churn_ok || !wan_ok || !eq_ok || !mix_ok || !crit_ok) return 1;
  // The WAN-placement ordering, like the EASY-vs-FCFS gate below, is
  // only asserted at full scale; tiny smoke runs barely overlap.
  if (spec.jobs >= 500 && aware_makespan >= naive_makespan) {
    std::cerr << "REGRESSION: network-aware placement did not beat naive "
              << "placement on the WAN-heavy makespan (" << aware_makespan
              << " vs " << naive_makespan << ")\n";
    return 1;
  }

  std::cout << "churn stretches FCFS makespan by "
            << format_number(100.0 * (churn_fcfs / fcfs_makespan - 1.0), 3)
            << " %; EASY's healthy-grid edge over FCFS is "
            << format_number(100.0 * (1.0 - easy_makespan / fcfs_makespan),
                             3)
            << " %, under churn "
            << format_number(100.0 * (1.0 - churn_easy / churn_fcfs), 3)
            << " %\n";

  // The headline healthy-grid ordering is only asserted at full scale;
  // tiny smoke runs (CI's 60-job lane) have too little queueing for a
  // stable gap.
  if (spec.jobs >= 500 && easy_makespan >= fcfs_makespan) {
    std::cerr << "REGRESSION: EASY backfilling did not beat FCFS makespan ("
              << easy_makespan << " vs " << fcfs_makespan << ")\n";
    return 1;
  }
  return 0;
}

// Figure 8: TSQR vs ScaLAPACK, each at its best configuration (the best
// of 1, 2 or 4 sites; TSQR additionally at its best domain count — the
// convex hull of the Fig. 4/5 curves).
//
// Expected shape (paper §V-E): TSQR consistently above ScaLAPACK across
// the full range; the gap narrows for not-so-tall, not-so-skinny shapes
// (left end of the N = 512 subfigure, Property 5).
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

using namespace qrgrid;
using namespace qrgrid::bench;

int main() {
  std::cout << "Fig. 8 reproduction: TSQR (best) vs ScaLAPACK (best)\n";
  const model::Roofline roof = model::paper_calibration();
  std::vector<simgrid::GridTopology> topos;
  for (int sites : site_counts()) {
    topos.push_back(simgrid::GridTopology::grid5000(sites));
  }
  for (double n : n_values()) {
    print_series_header("Fig. 8, N = " + format_number(n),
                        "number of rows (M)", "Gflop/s");
    for (double m : m_sweep(n)) {
      double tsqr_best = 0.0;
      double scal_best = 0.0;
      for (const auto& topo : topos) {
        tsqr_best = std::max(tsqr_best, best_tsqr(topo, roof, m, n).gflops);
        scal_best = std::max(
            scal_best, core::run_des_scalapack(topo, roof, m, n).gflops);
      }
      print_point("TSQR_best_N" + format_number(n), m, tsqr_best);
      print_point("ScaLAPACK_best_N" + format_number(n), m, scal_best);
      if (tsqr_best <= scal_best) {
        std::cout << "# WARNING: ScaLAPACK ahead at M=" << format_number(m)
                  << ", N=" << format_number(n)
                  << " (paper expects TSQR consistently higher)\n";
      }
    }
  }
  return 0;
}

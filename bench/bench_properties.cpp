// Section IV's Properties 1-5, demonstrated on the simulated grid (DES at
// paper scale) and on the closed-form model.
#include <iostream>

#include "bench_util.hpp"
#include "model/properties.hpp"

using namespace qrgrid;
using namespace qrgrid::bench;

int main() {
  std::cout << "Properties 1-5 (Section IV) on the simulated Grid'5000\n";
  const model::Roofline roof = model::paper_calibration();
  simgrid::GridTopology four = simgrid::GridTopology::grid5000(4);
  simgrid::GridTopology one = simgrid::GridTopology::grid5000(1);

  // Property 1: Q+R costs about twice R only.
  {
    core::DesRunResult r = core::run_des_tsqr(four, roof, 32, 1 << 22, 64,
                                              core::TreeKind::kGridHierarchical,
                                              false);
    core::DesRunResult qr = core::run_des_tsqr(four, roof, 32, 1 << 22, 64,
                                               core::TreeKind::kGridHierarchical,
                                               true);
    std::cout << "\nProperty 1 — time(Q+R)/time(R): "
              << format_number(qr.seconds / r.seconds, 3)
              << " (model: 2.0)\n";
  }

  // Property 2: performance bounded by the domanial kernel rate.
  {
    core::DesRunResult r = best_tsqr(four, roof, 1 << 25, 64);
    const double practical_bound = 256 * roof.dgemm_gflops;
    std::cout << "Property 2 — best TSQR at M=2^25, N=64: "
              << format_number(r.gflops, 4) << " Gflop/s of "
              << format_number(practical_bound, 4)
              << " practical bound (paper: 940); kernel-rate ceiling: "
              << format_number(256 * roof.rate_gflops(64), 4) << "\n";
  }

  // Property 3: performance increases with M.
  {
    std::cout << "Property 3 — TSQR Gflop/s vs M (N=64, 4 sites):\n";
    for (double m = 1 << 17; m <= (1 << 25); m *= 4) {
      core::DesRunResult r = best_tsqr(four, roof, m, 64);
      print_point("prop3", m, r.gflops);
    }
  }

  // Property 4: performance increases with N.
  {
    std::cout << "Property 4 — TSQR Gflop/s vs N (M=2^22, 4 sites):\n";
    for (double n : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
      core::DesRunResult r = best_tsqr(four, roof, 1 << 22, n);
      print_point("prop4", n, r.gflops);
    }
  }

  // Property 5: TSQR wins in the mid-range of N; crossover exists.
  {
    std::cout << "Property 5 — TSQR vs ScaLAPACK vs N (M=2^22, 4 sites):\n";
    for (double n : {16.0, 64.0, 256.0, 512.0}) {
      core::DesRunResult t = best_tsqr(four, roof, 1 << 22, n);
      core::DesRunResult s = core::run_des_scalapack(four, roof, 1 << 22, n);
      std::cout << "  N=" << format_number(n) << ": TSQR "
                << format_number(t.gflops, 4) << " vs ScaLAPACK "
                << format_number(s.gflops, 4) << " Gflop/s\n";
    }
    model::MachineParams mp;
    mp.latency_s = 7e-3;
    mp.inv_bandwidth_s_per_double = 8.0 / 90e6;
    mp.domain_gflops = roof.rate_gflops(512);
    const double n_star =
        model::property5_crossover_n(1 << 22, 256, mp, 8.0, 1e7);
    std::cout << "  model crossover N* (beyond which QR2 wins): "
              << format_number(n_star, 5)
              << " — switch to CAQR before this point\n";
  }

  // Single-site sanity: ScaLAPACK on one site stays under the paper's
  // observed ~70 Gflop/s ceiling.
  {
    core::DesRunResult s = core::run_des_scalapack(one, roof, 1 << 23, 512);
    std::cout << "\nSingle-site ScaLAPACK at N=512 tops out at "
              << format_number(s.gflops, 4)
              << " Gflop/s (paper: < 70 of 235 practical)\n";
  }
  return 0;
}

// Ablation 1 (DESIGN.md §5): reduction-tree shape. The paper's Figs. 1-2
// argue the grid-hierarchical tree pays exactly sites-1 inter-cluster
// messages while flat/blind-binary trees pay more; this bench quantifies
// messages and makespan for all three shapes across site counts, including
// the adversarial interleaved placement.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "model/costs.hpp"

using namespace qrgrid;
using namespace qrgrid::bench;

namespace {

core::DomainLayout interleave(const core::DomainLayout& layout, int sites) {
  core::DomainLayout out;
  const int per_site = static_cast<int>(layout.groups.size()) / sites;
  for (int i = 0; i < per_site; ++i) {
    for (int s = 0; s < sites; ++s) {
      const auto d = static_cast<std::size_t>(s * per_site + i);
      out.groups.push_back(layout.groups[d]);
      out.domain_cluster.push_back(layout.domain_cluster[d]);
    }
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Ablation: reduction-tree shape (M=2^22, N=64, 16 "
               "domains/cluster)\n\n";
  const model::Roofline roof = model::paper_calibration();
  const double m = 1 << 22, n = 64;

  TextTable t;
  t.set_header({"sites", "tree", "placement", "factors", "inter msgs",
                "total msgs", "time (s)", "Gflop/s"});
  for (int sites : {2, 4}) {
    // Equal-power sites (the paper's JobProfile constraint): without the
    // compute skew of heterogeneous clusters, WAN latency lands on the
    // critical path and the tree shapes separate cleanly.
    simgrid::GridTopology topo =
        simgrid::GridTopology::grid5000(sites, 32, 2, /*equal_power=*/true);
    core::DomainLayout contiguous = core::make_domain_layout(topo, 16);
    core::DomainLayout scattered = interleave(contiguous, sites);

    struct Config {
      const char* tree_name;
      core::TreeKind kind;
      const char* placement;
      const core::DomainLayout* layout;
    };
    const Config configs[] = {
        {"grid-hier", core::TreeKind::kGridHierarchical, "contiguous",
         &contiguous},
        {"binary", core::TreeKind::kBinary, "contiguous", &contiguous},
        {"binary", core::TreeKind::kBinary, "interleaved", &scattered},
        {"grid-hier", core::TreeKind::kGridHierarchical, "interleaved",
         &scattered},
        {"flat", core::TreeKind::kFlat, "contiguous", &contiguous},
    };
    for (bool form_q : {false, true}) {
      for (const Config& cfg : configs) {
        simgrid::DesEngine engine(&topo, roof);
        core::des_tsqr(engine, cfg.layout->groups,
                       cfg.layout->domain_cluster, m, n, cfg.kind, form_q);
        const double secs = engine.makespan();
        const double useful =
            (form_q ? 2.0 : 1.0) * model::useful_flops(m, n);
        t.add_row({std::to_string(sites), cfg.tree_name, cfg.placement,
                   form_q ? "Q+R" : "R",
                   std::to_string(
                       engine.messages_of(msg::LinkClass::kInterCluster)),
                   std::to_string(engine.messages()),
                   format_number(secs, 4),
                   format_number(useful / secs / 1e9, 4)});
      }
    }
  }
  t.print(std::cout);
  std::cout
      << "\nExpected: grid-hier pays sites-1 inter-cluster messages per "
         "phase regardless of\nplacement; blind binary over interleaved "
         "placement pays ~log2(D) per level (the\nFig. 1 pathology). In "
         "R-only mode the makespans tie — the WAN latency hides\nbehind "
         "the compute skew of the slowest cluster — but the Q down-sweep "
         "chains the\nlatencies and the tuned tree wins outright.\n";
  return 0;
}

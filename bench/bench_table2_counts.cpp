// Table II: the same breakdown when both Q and R are requested. The
// paper's Property 1 states every entry exactly doubles; we measure the
// real implementations and report the ratios.
#include <cmath>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/pdgeqr2.hpp"
#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "model/costs.hpp"

using namespace qrgrid;

namespace {

class UnitLatencyModel final : public msg::CostModel {
 public:
  double transfer_seconds(int src, int dst, std::size_t) const override {
    return src == dst ? 0.0 : 1.0;
  }
  double flop_seconds(int, double, int) const override { return 0.0; }
  msg::LinkClass link_class(int src, int dst) const override {
    return src == dst ? msg::LinkClass::kSelf : msg::LinkClass::kIntraCluster;
  }
};

class FlopModel final : public msg::CostModel {
 public:
  double transfer_seconds(int, int, std::size_t) const override { return 0.0; }
  double flop_seconds(int, double flops, int) const override { return flops; }
  msg::LinkClass link_class(int src, int dst) const override {
    return src == dst ? msg::LinkClass::kSelf : msg::LinkClass::kIntraCluster;
  }
};

double measure(bool tsqr, bool form_q, int p, Index m_loc, Index n,
               bool flops) {
  std::shared_ptr<msg::CostModel> cost;
  if (flops) {
    cost = std::make_shared<FlopModel>();
  } else {
    cost = std::make_shared<UnitLatencyModel>();
  }
  msg::Runtime rt(p, cost);
  msg::RunStats stats = rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 3232);
    if (tsqr) {
      core::TsqrFactors f =
          core::tsqr_factor(comm, local.view(), core::TsqrOptions{});
      if (form_q) (void)core::tsqr_form_explicit_q(comm, f);
    } else {
      core::Pdgeqr2Factors f =
          core::pdgeqr2_factor(comm, local.view(), comm.rank() * m_loc);
      if (form_q) (void)core::pdgeqr2_form_explicit_q(comm, f);
    }
  });
  return stats.max_vtime;
}

}  // namespace

int main() {
  std::cout << "Table II reproduction: costs with both Q and R "
               "(Property 1: everything doubles vs Table I)\n\n";
  const int p = 16;
  const Index m_loc = 512, n = 32;
  const double m = static_cast<double>(m_loc) * p;

  TextTable t;
  t.set_header({"algorithm", "quantity", "R only", "Q and R", "ratio",
                "model ratio"});
  auto add = [&](const char* alg, const char* q, double r_only, double qr,
                 double model_ratio) {
    t.add_row({alg, q, format_number(r_only, 6), format_number(qr, 6),
               format_number(qr / r_only, 3), format_number(model_ratio, 3)});
  };

  {
    const double r_only = measure(true, false, p, m_loc, n, false);
    const double qr = measure(true, true, p, m_loc, n, false);
    add("TSQR", "# msg", r_only, qr, 2.0);
  }
  {
    const double r_only = measure(true, false, p, m_loc, n, true);
    const double qr = measure(true, true, p, m_loc, n, true);
    add("TSQR", "# FLOPs", r_only, qr, 2.0);
  }
  {
    const double r_only = measure(false, false, p, m_loc, n, false);
    const double qr = measure(false, true, p, m_loc, n, false);
    // Our distributed dorg2r adds N log2(P) messages (the paper's model
    // bounds it by 2N log2(P) more, total ratio 2.0).
    add("ScaLAPACK QR2", "# msg", r_only, qr, 1.5);
  }
  {
    const double r_only = measure(false, false, p, m_loc, n, true);
    const double qr = measure(false, true, p, m_loc, n, true);
    add("ScaLAPACK QR2", "# FLOPs", r_only, qr, 2.0);
  }
  t.print(std::cout);

  const model::CostBreakdown m1 =
      model::tsqr_costs(m, n, p, model::Outputs::kROnly);
  const model::CostBreakdown m2 =
      model::tsqr_costs(m, n, p, model::Outputs::kQAndR);
  std::cout << "\nclosed forms (TSQR): msgs " << format_number(m1.messages)
            << " -> " << format_number(m2.messages) << ", flops "
            << format_number(m1.flops, 6) << " -> "
            << format_number(m2.flops, 6) << '\n';
  return 0;
}

// Ablation 2: the paper-§VI extensions against TSQR itself — CholeskyQR
// (same single-reduction communication profile, weaker stability) and the
// TSLU tournament panel. Real threaded runs with real data: wall-clock
// time, orthogonality loss, and communication counters side by side.
#include <iostream>

#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/extensions/tscholesky.hpp"
#include "core/extensions/tslu.hpp"
#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"

using namespace qrgrid;

namespace {

struct Outcome {
  double wall_s = 0.0;
  double ortho_loss = 0.0;
  long long messages = 0;
  bool ok = true;
};

Outcome run_tsqr(const Matrix& global, int procs) {
  const Index m_loc = global.rows() / procs;
  const Index n = global.cols();
  Outcome out;
  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(static_cast<std::size_t>(procs));
  Stopwatch watch;
  msg::RunStats stats = rt.run([&](msg::Comm& comm) {
    Matrix local = Matrix::copy_of(
        global.block(comm.rank() * m_loc, 0, m_loc, n));
    core::TsqrFactors f =
        core::tsqr_factor(comm, local.view(), core::TsqrOptions{});
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        core::tsqr_form_explicit_q(comm, f);
  });
  out.wall_s = watch.seconds();
  out.messages = stats.messages;
  Matrix q(global.rows(), n);
  for (int r = 0; r < procs; ++r) {
    copy(q_blocks[static_cast<std::size_t>(r)].view(),
         q.block(r * m_loc, 0, m_loc, n));
  }
  out.ortho_loss = orthogonality_error(q.view());
  return out;
}

Outcome run_cholqr(const Matrix& global, int procs, int iterations) {
  const Index m_loc = global.rows() / procs;
  const Index n = global.cols();
  Outcome out;
  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(static_cast<std::size_t>(procs));
  std::atomic<bool> ok{true};
  Stopwatch watch;
  msg::RunStats stats = rt.run([&](msg::Comm& comm) {
    core::TsCholeskyResult res = core::tscholesky_qr(
        comm, global.block(comm.rank() * m_loc, 0, m_loc, n), iterations);
    if (!res.ok) ok.store(false);
    q_blocks[static_cast<std::size_t>(comm.rank())] = std::move(res.q_local);
  });
  out.wall_s = watch.seconds();
  out.messages = stats.messages;
  out.ok = ok.load();
  if (out.ok) {
    Matrix q(global.rows(), n);
    for (int r = 0; r < procs; ++r) {
      copy(q_blocks[static_cast<std::size_t>(r)].view(),
           q.block(r * m_loc, 0, m_loc, n));
    }
    out.ortho_loss = orthogonality_error(q.view());
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Ablation: TSQR vs CholeskyQR/CholeskyQR2 (8 ranks, real "
               "payloads)\n\n";
  const int procs = 8;
  const Index m = 4096, n = 32;

  TextTable t;
  t.set_header({"cond(A)", "algorithm", "||QtQ-I||", "messages", "wall (ms)",
                "status"});
  for (double cond : {1e1, 1e5, 1e10}) {
    Matrix a = random_with_condition(m, n, cond, 6161);
    struct Algo {
      const char* name;
      int iters;  // 0 = TSQR
    };
    for (const Algo& algo :
         {Algo{"TSQR", 0}, Algo{"CholeskyQR", 1}, Algo{"CholeskyQR2", 2}}) {
      Outcome o = algo.iters == 0 ? run_tsqr(a, procs)
                                  : run_cholqr(a, procs, algo.iters);
      t.add_row({format_number(cond, 2), algo.name,
                 o.ok ? format_number(o.ortho_loss, 3) : "-",
                 std::to_string(o.messages),
                 format_number(o.wall_s * 1e3, 3),
                 o.ok ? "ok" : "Gram breakdown"});
    }
  }
  t.print(std::cout);

  // TSLU tournament: same reduction structure applied to LU pivoting.
  std::cout << "\nTSLU tournament pivoting (16 ranks, 64x8 blocks):\n";
  {
    const Index m_loc = 64, np = 8;
    msg::Runtime rt(16);
    msg::RunStats stats = rt.run([&](msg::Comm& comm) {
      Matrix local(m_loc, np);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 6262);
      core::TsluResult res =
          core::tslu_panel(comm, local.view(), comm.rank() * m_loc);
      if (comm.rank() == 0) {
        std::cout << "  pivot rows:";
        for (Index r : res.pivot_rows) std::cout << ' ' << r;
        std::cout << "\n  |U(0,0)| = " << std::abs(res.u(0, 0))
                  << (res.ok ? " (ok)" : " (zero pivot)") << '\n';
      }
    });
    std::cout << "  messages: " << stats.messages
              << " (15 merges, one per non-root rank — the TSQR profile)\n";
  }
  return 0;
}

// Kernel microbenchmarks (google-benchmark): the building blocks whose
// rates calibrate the roofline model — DGEMM-analog, blocked Householder
// QR at the paper's panel widths, the TSQR combine, and the threaded
// runtime's allreduce.
#include <benchmark/benchmark.h>

#include "core/tsqr.hpp"
#include "linalg/blas.hpp"
#include "linalg/generators.hpp"
#include "linalg/qr.hpp"
#include "linalg/tpqrt.hpp"
#include "msg/comm.hpp"

namespace {

using namespace qrgrid;

void BM_Gemm(benchmark::State& state) {
  const Index n = state.range(0);
  Matrix a = random_gaussian(n, n, 1);
  Matrix b = random_gaussian(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Geqrf(benchmark::State& state) {
  const Index m = 4096;
  const Index n = state.range(0);
  Matrix a = random_gaussian(m, n, 3);
  std::vector<double> tau;
  for (auto _ : state) {
    state.PauseTiming();
    Matrix work = Matrix::copy_of(a.view());
    state.ResumeTiming();
    geqrf(work.view(), tau);
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      (2.0 * m * n * n - 2.0 / 3.0 * n * n * n) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Geqrf)->Arg(16)->Arg(64)->Arg(128);

void BM_TpqrtCombine(benchmark::State& state) {
  const Index n = state.range(0);
  Matrix r1 = random_gaussian(n, n, 4);
  Matrix r2 = random_gaussian(n, n, 5);
  zero_below_diagonal(r1.view());
  zero_below_diagonal(r2.view());
  std::vector<double> tau;
  for (auto _ : state) {
    state.PauseTiming();
    Matrix t1 = Matrix::copy_of(r1.view());
    Matrix t2 = Matrix::copy_of(r2.view());
    state.ResumeTiming();
    tpqrt_tt(t1.view(), t2.view(), tau);
    benchmark::DoNotOptimize(t1.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      2.0 / 3.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TpqrtCombine)->Arg(64)->Arg(128)->Arg(512);

void BM_RuntimeAllreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  msg::Runtime rt(p);
  for (auto _ : state) {
    rt.run([](msg::Comm& comm) {
      std::vector<double> data(64, 1.0);
      comm.allreduce_sum(data);
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_RuntimeAllreduce)->Arg(4)->Arg(16);

void BM_ThreadedTsqr(benchmark::State& state) {
  const int p = 8;
  const Index m_loc = 2048, n = static_cast<Index>(state.range(0));
  msg::Runtime rt(p);
  for (auto _ : state) {
    rt.run([&](msg::Comm& comm) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 6363);
      core::TsqrFactors f =
          core::tsqr_factor(comm, local.view(), core::TsqrOptions{});
      benchmark::DoNotOptimize(f.r.data());
    });
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      (2.0 * m_loc * p * n * n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ThreadedTsqr)->Arg(16)->Arg(64);

}  // namespace

// Figure 4: ScaLAPACK (PDGEQRF analog, NB = 64) performance on the
// simulated grid. One subfigure per N in {64, 128, 256, 512}; each prints
// three series (1, 2, 4 sites) of useful Gflop/s against the row count M.
//
// Expected shape (paper §V-C): overall performance low relative to the
// 940 Gflop/s practical upper bound; for M <= ~5e6 the single site wins
// (the grid *slows ScaLAPACK down*); only for very tall matrices does the
// 4-site configuration pull ahead, and even then with speedup ~2, far
// from linear.
#include <iostream>

#include "bench_util.hpp"

using namespace qrgrid;
using namespace qrgrid::bench;

int main() {
  std::cout << "Fig. 4 reproduction: ScaLAPACK performance (simulated "
               "Grid'5000, NB=64)\n";
  const model::Roofline roof = model::paper_calibration();
  for (double n : n_values()) {
    print_series_header("Fig. 4, N = " + format_number(n),
                        "number of rows (M)", "Gflop/s");
    for (int sites : site_counts()) {
      simgrid::GridTopology topo = simgrid::GridTopology::grid5000(sites);
      const std::string series = std::to_string(sites) + "sites_N" +
                                 format_number(n);
      for (double m : m_sweep(n)) {
        core::DesRunResult r = core::run_des_scalapack(topo, roof, m, n);
        print_point(series, m, r.gflops);
      }
    }
  }
  return 0;
}

// The QCG-OMPI workflow of the paper's §III, end to end:
//
//   1. the application declares a JobProfile (groups of equal computing
//      power, good intra-group connectivity, weaker between groups);
//   2. the meta-scheduler allocates physical resources that match;
//   3. at "MPI_Init" the application reads its group attribute and builds
//      one communicator per geographical site (MPI_Comm_split);
//   4. QCG-TSQR runs with the grid-hierarchical reduction tree and the
//      intensive communication stays confined within the sites.
//
// The example prints the allocation, the per-link-class message counts,
// and contrasts them with a topology-blind run.
#include <iostream>

#include "common/table.hpp"
#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "model/roofline.hpp"
#include "simgrid/cost.hpp"
#include "simgrid/jobprofile.hpp"

using namespace qrgrid;

int main() {
  // Four-site Grid'5000 slice: 4 x 4 nodes x 2 processors = 32 processes.
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(
      /*sites=*/4, /*nodes_per_cluster=*/4, /*procs_per_node=*/2);
  simgrid::MetaScheduler scheduler(topo);

  // Step 1: the JobProfile. Equal computing power across groups — the
  // constraint that made the paper book only 2 of 4 cores on some nodes.
  simgrid::JobProfile profile;
  profile.name = "qcg-tsqr-4x8";
  profile.equal_group_power = true;
  profile.power_tolerance = 0.35;
  for (int g = 0; g < 4; ++g) {
    simgrid::GroupRequirement req;
    req.processes = 8;
    req.max_intra_latency_s = 1e-3;          // rules out wide-area links
    req.min_intra_bandwidth_Bps = 100e6 / 8;  // at least fast Ethernet
    profile.groups.push_back(req);
  }

  // Step 2: allocation.
  auto alloc = scheduler.allocate(profile);
  if (!alloc.has_value()) {
    std::cerr << "scheduler could not satisfy the JobProfile\n";
    return 1;
  }
  simgrid::ProcessGroupAttributes attrs = attributes_from(*alloc);
  std::cout << "JobProfile '" << profile.name << "' allocated "
            << alloc->size() << " processes:\n";
  TextTable placement;
  placement.set_header({"group", "processes", "site"});
  for (int g = 0; g < 4; ++g) {
    int count = 0;
    int site = -1;
    for (int r = 0; r < alloc->size(); ++r) {
      if (alloc->group_of(r) == g) {
        ++count;
        site = topo.location_of(
            alloc->placement[static_cast<std::size_t>(r)]).cluster;
      }
    }
    placement.add_row({std::to_string(g), std::to_string(count),
                       topo.cluster(site).name});
  }
  placement.print(std::cout);

  // Steps 3-4: run TSQR twice — topology-aware vs topology-blind — and
  // compare where the messages went.
  auto cost = std::make_shared<simgrid::TopologyCostModel>(
      topo, model::paper_calibration());
  const int p = alloc->size();
  const Index m_loc = 1024, n = 64;

  // Step 3: topology discovery + per-site communicators (demonstrated
  // once, outside the measured runs, so the bookkeeping traffic does not
  // pollute the tree comparison).
  {
    msg::Runtime rt(p, cost);
    rt.run([&](msg::Comm& world) {
      const int group =
          attrs.group_of_rank[static_cast<std::size_t>(world.rank())];
      msg::Comm site = world.split(group, world.rank());
      QRGRID_CHECK(site.size() == 8);  // one group per geographical site
    });
    std::cout << "\nPer-site communicators built via comm split on the QCG "
                 "group attribute (8 ranks each).\n";
  }

  // Step 4: the factorization itself, tuned tree vs blind flat tree.
  TextTable outcome;
  outcome.set_header({"tree", "intra-node msgs", "intra-site msgs",
                      "inter-site msgs", "simulated time (s)"});
  for (core::TreeKind kind :
       {core::TreeKind::kGridHierarchical, core::TreeKind::kFlat}) {
    msg::Runtime rt(p, cost);
    msg::RunStats stats = rt.run([&](msg::Comm& world) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), world.rank() * m_loc, 777);
      core::TsqrOptions options;
      options.tree = kind;
      options.rank_cluster = attrs.group_of_rank;
      core::TsqrFactors f = tsqr_factor(world, local.view(), options);
      if (world.rank() == 0) {
        QRGRID_CHECK(is_upper_triangular(f.r.view()));
      }
    });
    outcome.add_row(
        {kind == core::TreeKind::kGridHierarchical ? "grid-hierarchical"
                                                   : "flat (blind)",
         std::to_string(stats.messages_by_class[1]),
         std::to_string(stats.messages_by_class[2]),
         std::to_string(stats.messages_by_class[3]),
         format_number(stats.max_vtime, 4)});
  }
  std::cout << '\n';
  outcome.print(std::cout);
  std::cout << "\nThe tuned tree crosses the wide-area links exactly "
               "sites-1 = 3 times; the blind\nflat tree drags every "
               "remote R factor to the root across the grid.\n";
  return 0;
}

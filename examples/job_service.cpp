// The grid job service end to end, small enough to read every number:
//
//   1. generate a seeded 12-job Poisson workload of tall-skinny
//      factorizations (mixed shapes and process counts);
//   2. serve it on a 2-site Grid'5000 slice under EASY backfilling —
//      every placement goes through the paper's JobProfile/MetaScheduler
//      contract, every runtime is the exact DES replay of the TSQR
//      schedule on the granted nodes;
//   3. print the per-job timeline (who waited, who backfilled, where each
//      job ran) and the grid-wide accounting, then contrast the three
//      policies on the same stream.
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sched/service.hpp"
#include "sched/workload.hpp"

using namespace qrgrid;

int main() {
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(2, 4, 2);
  const model::Roofline roof = model::paper_calibration();

  sched::WorkloadSpec spec;
  spec.jobs = 12;
  spec.mean_interarrival_s = 0.4;
  spec.m_choices = {1 << 18, 1 << 20, 1 << 22};
  spec.n_choices = {64, 256};
  spec.procs_choices = {4, 8, 16};
  spec.seed = 4242;
  const std::vector<sched::Job> jobs = sched::generate_workload(spec);

  std::cout << "Workload: " << spec.jobs << " TSQR jobs over "
            << topo.num_clusters() << " sites, " << topo.total_procs()
            << " processes (" << "seed " << spec.seed << ")\n\n";

  sched::ServiceOptions options;
  options.policy = sched::Policy::kEasyBackfill;
  sched::GridJobService service(topo, roof, options);
  const sched::ServiceReport report = service.run(jobs);

  TextTable timeline;
  timeline.set_header({"job", "arrival", "start", "finish", "wait", "m",
                       "n", "procs", "sites", "backfilled"});
  for (const sched::JobOutcome& o : report.outcomes) {
    std::string sites;
    for (std::size_t i = 0; i < o.clusters.size(); ++i) {
      if (i > 0) sites += '+';
      sites += topo.cluster(o.clusters[i]).name;
    }
    timeline.add_row({std::to_string(o.job.id),
                      format_number(o.job.arrival_s, 4),
                      format_number(o.start_s, 4),
                      format_number(o.finish_s, 4),
                      format_number(o.wait_s(), 4),
                      format_number(o.job.m),
                      std::to_string(o.job.n),
                      std::to_string(o.job.procs), sites,
                      o.backfilled ? "yes" : ""});
  }
  timeline.print(std::cout);

  std::cout << "\nEASY backfilling: makespan "
            << format_number(report.makespan_s, 4) << " s, mean wait "
            << format_number(report.mean_wait_s, 4) << " s, utilization "
            << format_number(100.0 * report.utilization, 3) << " %, "
            << report.backfilled_jobs << " backfilled job(s)\n";
  for (int c = 0; c < topo.num_clusters(); ++c) {
    std::cout << "  " << topo.cluster(c).name << ": WAN egress "
              << format_number(
                     static_cast<double>(report.wan_egress_bytes
                                             [static_cast<std::size_t>(c)]) /
                         1e6,
                     4)
              << " MB, ingress "
              << format_number(
                     static_cast<double>(
                         report.wan_ingress_bytes
                             [static_cast<std::size_t>(c)]) /
                         1e6,
                     4)
              << " MB\n";
  }

  std::cout << "\nSame stream under all three policies:\n";
  TextTable compare;
  compare.set_header({"policy", "makespan (s)", "mean wait (s)",
                      "utilization %"});
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSpjf,
        sched::Policy::kEasyBackfill}) {
    sched::ServiceOptions o;
    o.policy = policy;
    sched::GridJobService s(topo, roof, o);
    const sched::ServiceReport r = s.run(jobs);
    compare.add_row({policy_name(policy), format_number(r.makespan_s, 4),
                     format_number(r.mean_wait_s, 4),
                     format_number(100.0 * r.utilization, 3)});
  }
  compare.print(std::cout);
  std::cout << "\nThe head-of-line blocking FCFS pays on every whole-grid "
               "job is what EASY's\nreservation-protected holes recover; "
               "SPJF trades max wait for mean wait.\n";
  return 0;
}

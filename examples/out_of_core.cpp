// Out-of-core TSQR (paper §II-C lineage): orthogonalize a matrix far too
// tall to hold in memory by streaming row panels through a constant-size
// accumulator. Here a virtual 8,388,608 x 64 matrix (4 GB as doubles) is
// processed in 8 MB panels while the resident state stays at one 64 x 64
// triangle — then the computed R is spot-verified against an in-memory
// factorization of a subsampled projection.
#include <iostream>

#include "common/stopwatch.hpp"
#include "core/ooc.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

using namespace qrgrid;

int main() {
  const Index m_total = 1'048'576;
  const Index n = 64;
  const Index panel_rows = 16'384;  // 8 MB per panel
  const std::uint64_t seed = 77;

  std::cout << "Streaming QR of a virtual " << m_total << " x " << n
            << " matrix (" << (m_total * n * 8 >> 20)
            << " MB) through " << (panel_rows * n * 8 >> 20)
            << " MB panels\n";

  core::OocTsqr ooc(n);
  Stopwatch watch;
  for (Index r0 = 0; r0 < m_total; r0 += panel_rows) {
    // Panels are regenerated deterministically — the "disk read".
    Matrix panel(panel_rows, n);
    fill_gaussian_rows(panel.view(), r0, seed);
    ooc.absorb(panel.view());
  }
  const double elapsed = watch.seconds();
  Matrix r = ooc.r();

  std::cout << "  panels absorbed     " << ooc.panels_seen() << '\n'
            << "  resident state      " << (n * n * 8) << " bytes\n"
            << "  wall time           " << elapsed << " s  ("
            << ooc.flops() / elapsed / 1e9 << " Gflop/s)\n";

  {
    // Verification on a prefix small enough to factor in memory: stream
    // the same rows and compare the two Rs.
    const Index m_check = 131'072;
    Matrix prefix(m_check, n);
    fill_gaussian_rows(prefix.view(), 0, seed);
    Matrix f = Matrix::copy_of(prefix.view());
    std::vector<double> tau;
    geqrf(f.view(), tau);
    Matrix want = extract_r(f.view());
    normalize_r_sign(want.view());

    core::OocTsqr check(n);
    for (Index r0 = 0; r0 < m_check; r0 += panel_rows) {
      check.absorb(prefix.block(r0, 0, panel_rows, n));
    }
    Matrix got = check.r();
    normalize_r_sign(got.view());
    const double err = max_abs_diff(got.view(), want.view()) /
                       frobenius_norm(want.view());
    std::cout << "  prefix verification |R_stream - R_memory| / |R| = "
              << err << (err < 1e-10 ? "  (ok)" : "  (FAILED)") << '\n';
    if (err >= 1e-10) return 2;
  }
  std::cout << "\nThe distributed TSQR reduction and this streaming fold "
               "are the same associative\ncombine — flat tree in time "
               "instead of binary tree in space (paper §II-C).\n";
  return 0;
}

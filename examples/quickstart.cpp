// Quickstart: factor a tall-and-skinny matrix with TSQR on a simulated
// two-site grid, recover the explicit Q, and verify the factorization.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface: topology -> cost model ->
// runtime -> tsqr_factor / tsqr_form_explicit_q -> quality metrics.
#include <iostream>

#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "model/roofline.hpp"
#include "simgrid/cost.hpp"

using namespace qrgrid;

int main() {
  // A grid of 2 sites x 2 nodes x 2 processors = 8 processes, with the
  // Grid'5000 link parameters of the paper's Fig. 3(a).
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(
      /*sites=*/2, /*nodes_per_cluster=*/2, /*procs_per_node=*/2);
  auto cost = std::make_shared<simgrid::TopologyCostModel>(
      topo, model::paper_calibration());
  const int p = topo.total_procs();

  // Global matrix: 16,384 x 32, distributed as contiguous row blocks.
  const Index m_loc = 2048, n = 32;
  std::cout << "TSQR of a " << m_loc * p << " x " << n << " matrix over "
            << p << " simulated grid processes\n";

  msg::Runtime runtime(p, cost);
  std::vector<Matrix> q_blocks(static_cast<std::size_t>(p));
  Matrix r;
  double simulated_seconds = 0.0;

  msg::RunStats stats = runtime.run([&](msg::Comm& comm) {
    // Each rank generates its rows of a reproducible global matrix.
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, /*seed=*/2026);

    // Factor: one reduction over R factors along the topology-aware tree.
    core::TsqrOptions options;
    options.tree = core::TreeKind::kGridHierarchical;
    for (int rank = 0; rank < p; ++rank) {
      options.rank_cluster.push_back(topo.location_of(rank).cluster);
    }
    core::TsqrFactors factors = tsqr_factor(comm, local.view(), options);

    // Recover this rank's block of the explicit orthogonal factor.
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        tsqr_form_explicit_q(comm, factors);
    if (comm.rank() == 0) {
      r = std::move(factors.r);
      simulated_seconds = comm.vtime();
    }
  });

  // Assemble Q and verify against the regenerated input.
  Matrix a(m_loc * p, n), q(m_loc * p, n);
  fill_gaussian_rows(a.view(), 0, 2026);
  for (int rank = 0; rank < p; ++rank) {
    copy(q_blocks[static_cast<std::size_t>(rank)].view(),
         q.block(rank * m_loc, 0, m_loc, n));
  }

  std::cout << "  ||A - QR|| / ||A||  = "
            << factorization_residual(a.view(), q.view(), r.view()) << '\n'
            << "  ||Q^T Q - I||       = " << orthogonality_error(q.view())
            << '\n'
            << "  messages            = " << stats.messages
            << " (inter-site: "
            << stats.messages_by_class[static_cast<int>(
                   msg::LinkClass::kInterCluster)]
            << ", the tuned tree pays sites-1 per phase)\n"
            << "  simulated grid time = " << simulated_seconds << " s\n";
  return 0;
}

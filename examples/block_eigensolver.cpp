// The paper's motivating application (§II-E): block eigensolvers (BLOPEX,
// SLEPc, PRIMME) must repeatedly orthonormalize a block of vectors and
// "currently rely on unstable orthogonalization schemes to avoid too many
// communications". This example runs distributed subspace iteration on a
// synthetic operator and compares three orthonormalization back-ends:
//
//   - classical Gram-Schmidt (the cheap-but-unstable incumbent),
//   - CholeskyQR (one reduction, squares the condition number),
//   - TSQR (one reduction, Householder-stable — the paper's point).
//
// As the iteration converges the block becomes ill-conditioned; CGS and
// CholeskyQR lose the invariant subspace while TSQR tracks the exact
// eigenvalues.
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/extensions/tscholesky.hpp"
#include "core/tsqr.hpp"
#include "linalg/blas.hpp"
#include "linalg/generators.hpp"
#include "linalg/gram_schmidt.hpp"
#include "linalg/norms.hpp"

using namespace qrgrid;

namespace {

constexpr int kProcs = 4;
constexpr Index kMLoc = 500;     // rows per rank
constexpr Index kBlock = 6;      // subspace dimension
constexpr int kIterations = 30;

/// Synthetic SPD operator with known spectrum: diagonal decay plus a mild
/// coupling so the problem is not trivially diagonal. Apply y = A x on a
/// local row block.
void apply_operator(Index row0, ConstMatrixView x, MatrixView y) {
  const Index m_total = kMLoc * kProcs;
  for (Index j = 0; j < x.cols(); ++j) {
    for (Index i = 0; i < x.rows(); ++i) {
      const Index gi = row0 + i;
      // Eigenvalue-like diagonal: lambda_k = 2 - k/m (top eigenvalues
      // cluster near 2), plus nearest-neighbour coupling within the block.
      const double diag =
          2.0 - static_cast<double>(gi) / static_cast<double>(m_total);
      double acc = diag * x(i, j);
      if (i > 0) acc += 1e-3 * x(i - 1, j);
      if (i + 1 < x.rows()) acc += 1e-3 * x(i + 1, j);
      y(i, j) = acc;
    }
  }
}

enum class Ortho { kCgs, kCholQr, kTsqr };

const char* name_of(Ortho o) {
  switch (o) {
    case Ortho::kCgs: return "CGS";
    case Ortho::kCholQr: return "CholeskyQR";
    case Ortho::kTsqr: return "TSQR";
  }
  return "?";
}

struct SolveResult {
  double ortho_loss = 0.0;       // ||Q^T Q - I|| of the final basis
  double top_eigenvalue = 0.0;   // Rayleigh estimate of lambda_max
  bool broke_down = false;
};

SolveResult subspace_iteration(Ortho scheme) {
  msg::Runtime rt(kProcs);
  std::vector<Matrix> basis(static_cast<std::size_t>(kProcs));
  SolveResult result;

  rt.run([&](msg::Comm& comm) {
    const Index row0 = comm.rank() * kMLoc;
    Matrix v(kMLoc, kBlock);
    fill_gaussian_rows(v.view(), row0, 31337);

    for (int it = 0; it < kIterations; ++it) {
      // Power step: V := A V (purely local for this operator).
      Matrix av(kMLoc, kBlock);
      apply_operator(row0, v.view(), av.view());
      v = std::move(av);

      // Orthonormalize the distributed block.
      switch (scheme) {
        case Ortho::kCgs: {
          // Distributed CGS: every projection coefficient needs its own
          // reduction — the communication-hungry incumbent. We emulate the
          // arithmetic by gathering the Gram products via allreduce, one
          // column at a time (the instability is identical).
          for (Index j = 0; j < kBlock; ++j) {
            std::vector<double> coeffs(static_cast<std::size_t>(j + 1), 0.0);
            for (Index i = 0; i < j; ++i) {
              coeffs[static_cast<std::size_t>(i)] =
                  dot(kMLoc, &v(0, i), &v(0, j));
            }
            coeffs[static_cast<std::size_t>(j)] = 0.0;
            comm.allreduce_sum(coeffs);
            for (Index i = 0; i < j; ++i) {
              axpy(kMLoc, -coeffs[static_cast<std::size_t>(i)], &v(0, i),
                   &v(0, j));
            }
            std::vector<double> nrm = {dot(kMLoc, &v(0, j), &v(0, j))};
            comm.allreduce_sum(nrm);
            const double norm = std::sqrt(nrm[0]);
            if (norm > 0.0) scal(kMLoc, 1.0 / norm, &v(0, j));
          }
          break;
        }
        case Ortho::kCholQr: {
          core::TsCholeskyResult res = core::tscholesky_qr(comm, v.view(), 1);
          if (!res.ok) {
            result.broke_down = true;
            return;
          }
          v = std::move(res.q_local);
          break;
        }
        case Ortho::kTsqr: {
          Matrix work = Matrix::copy_of(v.view());
          core::TsqrFactors f =
              core::tsqr_factor(comm, work.view(), core::TsqrOptions{});
          v = core::tsqr_form_explicit_q(comm, f);
          break;
        }
      }
    }

    // Rayleigh quotient for the leading vector: lambda ~ v1^T A v1.
    Matrix av(kMLoc, kBlock);
    apply_operator(row0, v.view(), av.view());
    std::vector<double> rq = {dot(kMLoc, &v(0, 0), &av(0, 0))};
    comm.allreduce_sum(rq);
    if (comm.rank() == 0) result.top_eigenvalue = rq[0];
    basis[static_cast<std::size_t>(comm.rank())] = std::move(v);
  });

  if (!result.broke_down) {
    Matrix q(kMLoc * kProcs, kBlock);
    for (int r = 0; r < kProcs; ++r) {
      copy(basis[static_cast<std::size_t>(r)].view(),
           q.block(r * kMLoc, 0, kMLoc, kBlock));
    }
    result.ortho_loss = orthogonality_error(q.view());
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "Block subspace iteration (" << kMLoc * kProcs << " dofs, "
            << kBlock << "-dim block, " << kIterations
            << " iterations) with three orthogonalization back-ends\n\n";
  // Exact top eigenvalue of the operator is ~2 (plus tiny coupling shift).
  TextTable t;
  t.set_header({"orthogonalization", "||QtQ - I||", "lambda_max estimate",
                "status"});
  for (Ortho scheme : {Ortho::kCgs, Ortho::kCholQr, Ortho::kTsqr}) {
    SolveResult res = subspace_iteration(scheme);
    t.add_row({name_of(scheme),
               res.broke_down ? "-" : format_number(res.ortho_loss, 3),
               res.broke_down ? "-" : format_number(res.top_eigenvalue, 6),
               res.broke_down ? "Cholesky breakdown" : "ok"});
  }
  t.print(std::cout);
  std::cout << "\nTSQR keeps the basis orthogonal to machine precision with "
               "the same number of reductions\nper iteration as CholeskyQR "
               "— the paper's §II-E argument for block eigensolvers.\n";
  return 0;
}

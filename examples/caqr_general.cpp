// CAQR on a general (wider than one panel) matrix — the paper's stated
// next step (§VI: "We plan to extend this work to the QR factorization of
// general matrices"). Factors a 12,288 x 256 matrix over 8 simulated grid
// processes with TSQR panels of varying width and reports accuracy plus
// the simulated time, illustrating the panel-width trade-off.
#include <iostream>

#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/caqr.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "model/roofline.hpp"
#include "simgrid/cost.hpp"

using namespace qrgrid;

int main() {
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(
      /*sites=*/2, /*nodes_per_cluster=*/2, /*procs_per_node=*/2);
  auto cost = std::make_shared<simgrid::TopologyCostModel>(
      topo, model::paper_calibration());
  const int p = topo.total_procs();
  const Index m_loc = 1536, n = 256;
  std::cout << "CAQR of a " << m_loc * p << " x " << n << " matrix over "
            << p << " simulated grid processes\n\n";

  std::vector<int> rank_cluster;
  for (int r = 0; r < p; ++r) {
    rank_cluster.push_back(topo.location_of(r).cluster);
  }

  TextTable t;
  t.set_header({"panel width", "||A-QR||/||A||", "||QtQ-I||",
                "simulated time (s)", "wall (s)"});
  for (Index panel : {Index{16}, Index{64}, Index{256}}) {
    msg::Runtime rt(p, cost);
    std::vector<Matrix> q_blocks(static_cast<std::size_t>(p));
    Matrix r;
    double sim_time = 0.0;
    Stopwatch watch;
    rt.run([&](msg::Comm& comm) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 424242);
      core::CaqrOptions options;
      options.panel_width = panel;
      options.tsqr.tree = core::TreeKind::kGridHierarchical;
      options.tsqr.rank_cluster = rank_cluster;
      core::CaqrFactors f =
          caqr_factor(comm, local.view(), comm.rank() * m_loc, options);
      q_blocks[static_cast<std::size_t>(comm.rank())] =
          caqr_form_explicit_q(comm, f);
      if (comm.rank() == 0) {
        r = std::move(f.r);
        sim_time = comm.vtime();
      }
    });
    const double wall = watch.seconds();

    Matrix a(m_loc * p, n), q(m_loc * p, n);
    fill_gaussian_rows(a.view(), 0, 424242);
    for (int rank = 0; rank < p; ++rank) {
      copy(q_blocks[static_cast<std::size_t>(rank)].view(),
           q.block(rank * m_loc, 0, m_loc, n));
    }
    t.add_row({std::to_string(panel),
               format_number(
                   factorization_residual(a.view(), q.view(), r.view()), 3),
               format_number(orthogonality_error(q.view()), 3),
               format_number(sim_time, 4), format_number(wall, 3)});
  }
  t.print(std::cout);
  std::cout << "\nWith panel width == N, CAQR degenerates to a single TSQR "
               "(one reduction);\nnarrow panels pay one reduction per panel "
               "but expose the update parallelism\nCAQR needs for general "
               "matrices (paper §II-C).\n";
  return 0;
}

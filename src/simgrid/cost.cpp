// TopologyCostModel is header-only; this translation unit anchors the
// vtable so the library has a home for it.
#include "simgrid/cost.hpp"

namespace qrgrid::simgrid {}

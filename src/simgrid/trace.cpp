#include "simgrid/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace qrgrid::simgrid {

double TraceLog::busy_seconds(int rank) const {
  double acc = 0.0;
  for (const auto& e : events_) {
    if (e.rank == rank) acc += e.end - e.start;
  }
  return acc;
}

double TraceLog::busy_seconds(int rank, ActivityKind kind) const {
  double acc = 0.0;
  for (const auto& e : events_) {
    if (e.rank == rank && e.kind == kind) acc += e.end - e.start;
  }
  return acc;
}

std::string render_timeline(const TraceLog& log, int num_ranks,
                            double horizon, int width) {
  QRGRID_CHECK(num_ranks >= 1 && width >= 1 && horizon > 0.0);
  std::vector<std::string> rows(static_cast<std::size_t>(num_ranks),
                                std::string(static_cast<std::size_t>(width),
                                            '.'));
  for (const auto& e : log.events()) {
    if (e.rank < 0 || e.rank >= num_ranks) continue;
    const int lo = std::clamp(
        static_cast<int>(e.start / horizon * width), 0, width - 1);
    const int hi = std::clamp(
        static_cast<int>(e.end / horizon * width), lo, width - 1);
    auto& row = rows[static_cast<std::size_t>(e.rank)];
    for (int c = lo; c <= hi; ++c) {
      auto& cell = row[static_cast<std::size_t>(c)];
      // Compute paints over transfer paints over idle.
      if (e.kind == ActivityKind::kCompute || cell == '.') {
        cell = static_cast<char>(e.kind);
      }
    }
  }
  std::ostringstream oss;
  for (int r = 0; r < num_ranks; ++r) {
    oss << "rank ";
    const std::string label = std::to_string(r);
    oss << std::string(4 - std::min<std::size_t>(4, label.size()), ' ')
        << label << " |" << rows[static_cast<std::size_t>(r)] << "|\n";
  }
  oss << "          0" << std::string(static_cast<std::size_t>(width) - 1, ' ')
      << "t=" << horizon << "s  (C compute, R receive, . idle)\n";
  return oss.str();
}

}  // namespace qrgrid::simgrid

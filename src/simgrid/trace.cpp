#include "simgrid/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace qrgrid::simgrid {

double TraceLog::busy_seconds(int rank) const {
  double acc = 0.0;
  for (const auto& e : events_) {
    if (e.rank == rank) acc += e.end - e.start;
  }
  return acc;
}

double TraceLog::busy_seconds(int rank, ActivityKind kind) const {
  double acc = 0.0;
  for (const auto& e : events_) {
    if (e.rank == rank && e.kind == kind) acc += e.end - e.start;
  }
  return acc;
}

std::string render_timeline(const TraceLog& log, int num_ranks,
                            double horizon, int width) {
  QRGRID_CHECK(num_ranks >= 1);
  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    const std::string num = std::to_string(r);
    labels.push_back(
        "rank " +
        std::string(4 - std::min<std::size_t>(4, num.size()), ' ') + num);
  }
  return render_timeline(log, labels, horizon, width);
}

std::string render_timeline(const TraceLog& log,
                            const std::vector<std::string>& labels,
                            double horizon, int width,
                            const std::string& legend) {
  const int num_ranks = static_cast<int>(labels.size());
  QRGRID_CHECK(num_ranks >= 1 && width >= 1 && horizon > 0.0);
  std::vector<std::string> rows(static_cast<std::size_t>(num_ranks),
                                std::string(static_cast<std::size_t>(width),
                                            '.'));
  for (const auto& e : log.events()) {
    if (e.rank < 0 || e.rank >= num_ranks) continue;
    const int lo = std::clamp(
        static_cast<int>(e.start / horizon * width), 0, width - 1);
    const int hi = std::clamp(
        static_cast<int>(e.end / horizon * width), lo, width - 1);
    auto& row = rows[static_cast<std::size_t>(e.rank)];
    for (int c = lo; c <= hi; ++c) {
      auto& cell = row[static_cast<std::size_t>(c)];
      // Compute paints over transfer paints over idle.
      if (e.kind == ActivityKind::kCompute || cell == '.') {
        cell = static_cast<char>(e.kind);
      }
    }
  }
  std::size_t label_width = 0;
  for (const auto& label : labels) {
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream oss;
  for (int r = 0; r < num_ranks; ++r) {
    const auto& label = labels[static_cast<std::size_t>(r)];
    oss << std::string(label_width - label.size(), ' ') << label << " |"
        << rows[static_cast<std::size_t>(r)] << "|\n";
  }
  oss << std::string(label_width + 1, ' ') << "0"
      << std::string(static_cast<std::size_t>(width) - 1, ' ')
      << "t=" << horizon << "s  (" << legend << ")\n";
  return oss.str();
}

}  // namespace qrgrid::simgrid

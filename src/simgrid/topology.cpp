#include "simgrid/topology.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qrgrid::simgrid {

GridTopology::GridTopology(std::vector<ClusterSpec> clusters,
                           LinkParams intra_node, LinkParams intra_cluster,
                           std::vector<std::vector<LinkParams>> inter_cluster)
    : clusters_(std::move(clusters)),
      intra_node_(intra_node),
      intra_cluster_(intra_cluster),
      inter_cluster_(std::move(inter_cluster)) {
  QRGRID_CHECK(!clusters_.empty());
  QRGRID_CHECK(inter_cluster_.size() == clusters_.size());
  for (const auto& row : inter_cluster_) {
    QRGRID_CHECK(row.size() == clusters_.size());
  }
  base_.resize(clusters_.size());
  int acc = 0;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    base_[c] = acc;
    acc += clusters_[c].procs();
  }
  total_procs_ = acc;
}

ProcLocation GridTopology::location_of(int rank) const {
  QRGRID_CHECK_MSG(rank >= 0 && rank < total_procs_, "rank=" << rank);
  ProcLocation loc;
  for (int c = num_clusters() - 1; c >= 0; --c) {
    if (rank >= base_[static_cast<std::size_t>(c)]) {
      loc.cluster = c;
      const int within = rank - base_[static_cast<std::size_t>(c)];
      const int ppn = clusters_[static_cast<std::size_t>(c)].procs_per_node;
      loc.node = within / ppn;
      loc.proc = within % ppn;
      return loc;
    }
  }
  return loc;  // unreachable
}

std::vector<int> GridTopology::rank_clusters() const {
  std::vector<int> clusters;
  clusters.reserve(static_cast<std::size_t>(total_procs_));
  for (int c = 0; c < num_clusters(); ++c) {
    for (int p = 0; p < clusters_[static_cast<std::size_t>(c)].procs(); ++p) {
      clusters.push_back(c);
    }
  }
  return clusters;
}

LinkParams GridTopology::link(int rank_a, int rank_b) const {
  if (rank_a == rank_b) return LinkParams{0.0, 1e300};
  const ProcLocation a = location_of(rank_a);
  const ProcLocation b = location_of(rank_b);
  if (a.cluster != b.cluster) {
    return inter_cluster_link(a.cluster, b.cluster);
  }
  if (a.node != b.node) return intra_cluster_;
  return intra_node_;
}

msg::LinkClass GridTopology::link_class(int rank_a, int rank_b) const {
  if (rank_a == rank_b) return msg::LinkClass::kSelf;
  const ProcLocation a = location_of(rank_a);
  const ProcLocation b = location_of(rank_b);
  if (a.cluster != b.cluster) return msg::LinkClass::kInterCluster;
  if (a.node != b.node) return msg::LinkClass::kIntraCluster;
  return msg::LinkClass::kIntraNode;
}

const LinkParams& GridTopology::inter_cluster_link(int ca, int cb) const {
  return inter_cluster_[static_cast<std::size_t>(ca)]
                       [static_cast<std::size_t>(cb)];
}

double GridTopology::theoretical_peak_gflops() const {
  double slowest = clusters_.front().proc_peak_gflops;
  for (const auto& c : clusters_) {
    slowest = std::min(slowest, c.proc_peak_gflops);
  }
  return slowest * total_procs_;
}

GridTopology GridTopology::grid5000(int sites, int nodes_per_cluster,
                                    int procs_per_node, bool equal_power) {
  QRGRID_CHECK(sites >= 1 && sites <= 4);
  // Fig. 3(a): measured latency (ms) and throughput (Mb/s) between the four
  // sites; per-processor theoretical peaks from §V-A (Opteron 246 -> 2218,
  // 4.0 to 5.2 Gflop/s per processor).
  struct SiteDef {
    const char* name;
    double proc_peak;
  };
  static constexpr SiteDef kSites[4] = {
      {"Orsay", 4.0},
      {"Toulouse", 4.4},
      {"Bordeaux", 4.8},
      {"Sophia", 5.2},
  };
  // Symmetric latency matrix in ms (diagonal = intra-cluster latency).
  static constexpr double kLatencyMs[4][4] = {
      {0.07, 7.97, 6.98, 6.12},
      {7.97, 0.03, 9.03, 8.18},
      {6.98, 9.03, 0.05, 7.18},
      {6.12, 8.18, 7.18, 0.06},
  };
  // Symmetric throughput matrix in Mb/s (diagonal = intra-cluster GigE).
  static constexpr double kThroughputMbps[4][4] = {
      {890.0, 78.0, 90.0, 102.0},
      {78.0, 890.0, 77.0, 90.0},
      {90.0, 77.0, 890.0, 83.0},
      {102.0, 90.0, 83.0, 890.0},
  };
  auto mbps_to_Bps = [](double mbps) { return mbps * 1e6 / 8.0; };

  std::vector<ClusterSpec> clusters;
  for (int s = 0; s < sites; ++s) {
    const double peak = equal_power ? kSites[0].proc_peak
                                    : kSites[s].proc_peak;
    clusters.push_back(ClusterSpec{kSites[s].name, nodes_per_cluster,
                                   procs_per_node, peak});
  }
  // §V-A: shared-memory transfers between two processes of a node show
  // 17 us latency and 5 Gb/s throughput under the OpenMPI sm driver.
  const LinkParams intra_node{17e-6, 5e9 / 8.0};
  // Intra-cluster GigE: use the worst measured intra-site latency (0.07 ms)
  // as the common value; throughput 890 Mb/s.
  const LinkParams intra_cluster{0.07e-3, mbps_to_Bps(890.0)};

  std::vector<std::vector<LinkParams>> inter(
      static_cast<std::size_t>(sites),
      std::vector<LinkParams>(static_cast<std::size_t>(sites)));
  for (int a = 0; a < sites; ++a) {
    for (int b = 0; b < sites; ++b) {
      if (a == b) {
        inter[a][b] = intra_cluster;
      } else {
        inter[a][b] = LinkParams{kLatencyMs[a][b] * 1e-3,
                                 mbps_to_Bps(kThroughputMbps[a][b])};
      }
    }
  }
  return GridTopology(std::move(clusters), intra_node, intra_cluster,
                      std::move(inter));
}

}  // namespace qrgrid::simgrid

#include "simgrid/jobprofile.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace qrgrid::simgrid {

namespace {

/// Can the given group live inside one cluster under its latency and
/// bandwidth bounds? (Intra-cluster links are the binding constraint; a
/// group spanning clusters would additionally see wide-area links.)
bool cluster_satisfies(const GridTopology& topo,
                       const GroupRequirement& req) {
  const LinkParams& l = topo.intra_cluster_link();
  return l.latency_s <= req.max_intra_latency_s &&
         l.bandwidth_Bps >= req.min_intra_bandwidth_Bps;
}

}  // namespace

std::optional<Allocation> MetaScheduler::allocate(
    const JobProfile& profile) const {
  const int nclusters = topology_.num_clusters();
  std::vector<int> free_procs(static_cast<std::size_t>(nclusters));
  for (int c = 0; c < nclusters; ++c) {
    free_procs[static_cast<std::size_t>(c)] = topology_.cluster(c).procs();
  }

  // With equal_group_power we emulate the paper's reservation trick: every
  // group gets the same process count, but on clusters whose processors
  // are faster than the slowest requested cluster we cap the processes per
  // node ("book 2 of 4 cores") so aggregate powers stay within tolerance.
  // Here processor counts per group are fixed by the profile, so we only
  // verify the resulting imbalance and reject if out of tolerance.
  Allocation alloc;
  std::vector<double> group_power;
  int next_cluster = 0;
  for (std::size_t g = 0; g < profile.groups.size(); ++g) {
    const GroupRequirement& req = profile.groups[g];
    QRGRID_CHECK(req.processes > 0);
    // First-fit: find a cluster with enough free processes meeting the
    // connectivity bounds. Groups are placed on distinct clusters first
    // (round-robin start) to reflect the clusters-of-clusters intent.
    int chosen = -1;
    for (int step = 0; step < nclusters; ++step) {
      const int c = (next_cluster + step) % nclusters;
      if (free_procs[static_cast<std::size_t>(c)] >= req.processes &&
          cluster_satisfies(topology_, req)) {
        chosen = c;
        break;
      }
    }
    if (chosen < 0) return std::nullopt;
    next_cluster = (chosen + 1) % nclusters;

    const int base = topology_.cluster_rank_base(chosen) +
                     (topology_.cluster(chosen).procs() -
                      free_procs[static_cast<std::size_t>(chosen)]);
    for (int i = 0; i < req.processes; ++i) {
      alloc.rank_to_group.push_back(static_cast<int>(g));
      alloc.placement.push_back(base + i);
    }
    free_procs[static_cast<std::size_t>(chosen)] -= req.processes;
    group_power.push_back(req.processes *
                          topology_.cluster(chosen).proc_peak_gflops);
  }

  if (profile.equal_group_power && group_power.size() > 1) {
    const double lo = *std::min_element(group_power.begin(),
                                        group_power.end());
    const double hi = *std::max_element(group_power.begin(),
                                        group_power.end());
    if (lo <= 0.0 || (hi - lo) / hi > profile.power_tolerance) {
      return std::nullopt;
    }
  }
  return alloc;
}

ProcessGroupAttributes attributes_from(const Allocation& alloc) {
  return ProcessGroupAttributes{alloc.rank_to_group};
}

}  // namespace qrgrid::simgrid

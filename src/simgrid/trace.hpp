// Execution tracing for the DES engine: per-rank activity records and a
// text Gantt renderer, the observability tool for understanding where a
// schedule's time goes (compute vs communication, which ranks idle).
#pragma once

#include <string>
#include <vector>

namespace qrgrid::simgrid {

enum class ActivityKind : char {
  kCompute = 'C',
  kTransfer = 'R',  ///< receive/serialization occupancy at the receiver
};

struct TraceEvent {
  int rank = 0;
  double start = 0.0;
  double end = 0.0;
  ActivityKind kind = ActivityKind::kCompute;
};

/// Append-only activity log filled by DesEngine when tracing is enabled.
class TraceLog {
 public:
  void record(int rank, double start, double end, ActivityKind kind) {
    if (end > start) events_.push_back(TraceEvent{rank, start, end, kind});
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Total busy seconds of one rank, optionally filtered by kind.
  double busy_seconds(int rank) const;
  double busy_seconds(int rank, ActivityKind kind) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Renders the log as a text Gantt chart: one row per rank, `width`
/// character cells spanning [0, horizon]; 'C' = computing, 'R' =
/// receiving, '.' = idle. When both kinds overlap a cell, compute wins
/// (it is the useful work).
std::string render_timeline(const TraceLog& log, int num_ranks,
                            double horizon, int width = 80);

}  // namespace qrgrid::simgrid

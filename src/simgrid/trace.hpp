// Execution tracing for the DES engine: per-rank activity records and a
// text Gantt renderer, the observability tool for understanding where a
// schedule's time goes (compute vs communication, which ranks idle).
#pragma once

#include <string>
#include <vector>

namespace qrgrid::simgrid {

enum class ActivityKind : char {
  kCompute = 'C',
  kTransfer = 'R',  ///< receive/serialization occupancy at the receiver
};

struct TraceEvent {
  int rank = 0;
  double start = 0.0;
  double end = 0.0;
  ActivityKind kind = ActivityKind::kCompute;
};

/// Append-only activity log filled by DesEngine when tracing is enabled.
class TraceLog {
 public:
  void record(int rank, double start, double end, ActivityKind kind) {
    if (end > start) events_.push_back(TraceEvent{rank, start, end, kind});
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Total busy seconds of one rank, optionally filtered by kind.
  double busy_seconds(int rank) const;
  double busy_seconds(int rank, ActivityKind kind) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Renders the log as a text Gantt chart: one row per rank, `width`
/// character cells spanning [0, horizon]; 'C' = computing, 'R' =
/// receiving, '.' = idle. When both kinds overlap a cell, compute wins
/// (it is the useful work).
std::string render_timeline(const TraceLog& log, int num_ranks,
                            double horizon, int width = 80);

/// Same rendering with caller-supplied row labels (one per rank, row r
/// shows events with rank == r) and legend text — lets other layers
/// (the job-service per-cluster Gantt) reuse the renderer with their
/// own row semantics. Labels are right-aligned to the widest one.
std::string render_timeline(const TraceLog& log,
                            const std::vector<std::string>& labels,
                            double horizon, int width = 80,
                            const std::string& legend =
                                "C compute, R receive, . idle");

}  // namespace qrgrid::simgrid

#include "simgrid/des.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qrgrid::simgrid {

DesEngine::DesEngine(const GridTopology* topology, model::Roofline roofline)
    : topology_(topology), roofline_(roofline) {
  QRGRID_CHECK(topology != nullptr);
  clock_.assign(static_cast<std::size_t>(topology->total_procs()), 0.0);
  compute_seconds_.assign(static_cast<std::size_t>(topology->total_procs()),
                          0.0);
  egress_free_.assign(static_cast<std::size_t>(topology->num_clusters()),
                      0.0);
  ingress_free_.assign(static_cast<std::size_t>(topology->num_clusters()),
                       0.0);
  wan_egress_bytes_.assign(static_cast<std::size_t>(topology->num_clusters()),
                           0);
  wan_ingress_bytes_.assign(
      static_cast<std::size_t>(topology->num_clusters()), 0);
}

void DesEngine::compute(int rank, double flops, int ncols) {
  const auto loc = topology_->location_of(rank);
  const double scale = topology_->cluster(loc.cluster).proc_peak_gflops /
                       topology_->cluster(0).proc_peak_gflops;
  const double seconds =
      flops / (roofline_.rate_gflops(ncols) * scale * 1e9);
  auto& clock = clock_[static_cast<std::size_t>(rank)];
  if (trace_ != nullptr) {
    trace_->record(rank, clock, clock + seconds, ActivityKind::kCompute);
  }
  clock += seconds;
  compute_seconds_[static_cast<std::size_t>(rank)] += seconds;
  total_flops_ += flops;
}

double DesEngine::compute_utilization() const {
  const double span = makespan();
  if (span <= 0.0) return 0.0;
  double acc = 0.0;
  for (double c : compute_seconds_) acc += c;
  return acc / (span * static_cast<double>(compute_seconds_.size()));
}

double DesEngine::transfer(int src, int dst, std::size_t bytes) {
  // Latency overlaps across concurrent messages; the per-flow byte time is
  // paid by the receiver and serializes back-to-back arrivals (LogGP
  // receiver occupancy) — mirrors msg::Comm::recv. Inter-cluster flows
  // additionally contend for their sites' aggregate WAN uplink/downlink.
  const LinkParams link = topology_->link(src, dst);
  const msg::LinkClass cls = topology_->link_class(src, dst);
  double start = clock_[static_cast<std::size_t>(src)];
  if (cls == msg::LinkClass::kInterCluster) {
    const auto sc =
        static_cast<std::size_t>(topology_->location_of(src).cluster);
    const auto dc =
        static_cast<std::size_t>(topology_->location_of(dst).cluster);
    start = std::max({start, egress_free_[sc], ingress_free_[dc]});
    const double channel_done =
        start + static_cast<double>(bytes) / wan_aggregate_Bps_;
    egress_free_[sc] = channel_done;
    ingress_free_[dc] = channel_done;
    wan_egress_bytes_[sc] += static_cast<long long>(bytes);
    wan_ingress_bytes_[dc] += static_cast<long long>(bytes);
    if (record_wan_) {
      wan_transfers_.push_back({start, static_cast<int>(sc),
                                static_cast<int>(dc),
                                static_cast<long long>(bytes)});
    }
  }
  messages_ += 1;
  messages_by_class_[static_cast<std::size_t>(cls)] += 1;
  bytes_by_class_[static_cast<std::size_t>(cls)] +=
      static_cast<long long>(bytes);
  // Wire arrival: the receiver additionally pays the per-flow byte time
  // (receiver serialization), added by the caller.
  return start + link.latency_s;
}

void DesEngine::p2p(int src, int dst, std::size_t bytes) {
  if (src == dst) return;
  const double flow_time =
      static_cast<double>(bytes) / topology_->link(src, dst).bandwidth_Bps;
  const double arrival = transfer(src, dst, bytes);
  auto& dst_clock = clock_[static_cast<std::size_t>(dst)];
  const double recv_start = std::max(dst_clock, arrival);
  if (trace_ != nullptr) {
    trace_->record(dst, recv_start, recv_start + flow_time,
                   ActivityKind::kTransfer);
  }
  dst_clock = recv_start + flow_time;
}

void DesEngine::allreduce(std::span<const int> ranks, std::size_t bytes,
                          double combine_flops, int ncols) {
  const auto p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;

  // Fold phase for non-power-of-two participant counts.
  for (int i = 0; i < rem; ++i) {
    p2p(ranks[static_cast<std::size_t>(2 * i)],
        ranks[static_cast<std::size_t>(2 * i + 1)], bytes);
    compute(ranks[static_cast<std::size_t>(2 * i + 1)], combine_flops, ncols);
  }
  auto vrank_to_rank = [&](int vr) {
    return ranks[static_cast<std::size_t>(vr < rem ? 2 * vr + 1 : vr + rem)];
  };
  // Butterfly: each round pairs vr with vr^mask; both directions transfer.
  for (int mask = 1; mask < p2; mask <<= 1) {
    for (int vr = 0; vr < p2; ++vr) {
      const int partner = vr ^ mask;
      if (partner > vr) {
        const int a = vrank_to_rank(vr);
        const int b = vrank_to_rank(partner);
        // Exchange is concurrent: both wire arrivals computed from
        // pre-round clocks (transfer reads the sender clock before either
        // side advances); each side then pays the receive serialization.
        const double byte_time = static_cast<double>(bytes) /
                                 topology_->link(a, b).bandwidth_Bps;
        const double t_ab = transfer(a, b, bytes);
        const double t_ba = transfer(b, a, bytes);
        auto& ca = clock_[static_cast<std::size_t>(a)];
        auto& cb = clock_[static_cast<std::size_t>(b)];
        const double a_start = std::max(ca, t_ba);
        const double b_start = std::max(cb, t_ab);
        if (trace_ != nullptr) {
          trace_->record(a, a_start, a_start + byte_time,
                         ActivityKind::kTransfer);
          trace_->record(b, b_start, b_start + byte_time,
                         ActivityKind::kTransfer);
        }
        ca = a_start + byte_time;
        cb = b_start + byte_time;
      }
    }
    for (int vr = 0; vr < p2; ++vr) {
      compute(vrank_to_rank(vr), combine_flops, ncols);
    }
  }
  // Unfold to the folded-out ranks.
  for (int i = 0; i < rem; ++i) {
    p2p(ranks[static_cast<std::size_t>(2 * i + 1)],
        ranks[static_cast<std::size_t>(2 * i)], bytes);
  }
}

void DesEngine::reduce_bcast(std::span<const int> ranks, std::size_t bytes,
                             double combine_flops, int ncols) {
  const auto p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  // Binomial reduce: at step `mask`, ranks whose lowest set bit is `mask`
  // send to (vr ^ mask); the receiver folds the contribution in.
  for (int mask = 1; mask < p; mask <<= 1) {
    for (int vr = mask; vr < p; vr += 2 * mask) {
      const int dst = vr ^ mask;
      p2p(ranks[static_cast<std::size_t>(vr)],
          ranks[static_cast<std::size_t>(dst)], bytes);
      compute(ranks[static_cast<std::size_t>(dst)], combine_flops, ncols);
    }
  }
  bcast(ranks, bytes);
}

void DesEngine::bcast(std::span<const int> ranks, std::size_t bytes) {
  const auto p = static_cast<int>(ranks.size());
  // Binomial: at round k, ranks with vr < 2^k forward to vr + 2^k.
  for (int mask = 1; mask < p; mask <<= 1) {
    for (int vr = 0; vr < mask && vr + mask < p; ++vr) {
      p2p(ranks[static_cast<std::size_t>(vr)],
          ranks[static_cast<std::size_t>(vr + mask)], bytes);
    }
  }
}

void DesEngine::synchronize(std::span<const int> ranks) {
  double latest = 0.0;
  for (int r : ranks) {
    latest = std::max(latest, clock_[static_cast<std::size_t>(r)]);
  }
  for (int r : ranks) clock_[static_cast<std::size_t>(r)] = latest;
}

double DesEngine::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

}  // namespace qrgrid::simgrid

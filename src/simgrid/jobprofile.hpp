// QCG-OMPI substitute: JobProfile resource requests, the meta-scheduler
// that allocates matching process groups on a grid, and the runtime
// attribute the application reads to discover its topology (paper §II-D
// and §III).
//
// The contract mirrors the paper's description: the application declares
// groups of equivalent computing power with good intra-group connectivity
// and accepts weaker inter-group links; the scheduler allocates physical
// resources satisfying the request (capping processes per node when needed
// to equalize group power — §III notes that in some experiments only half
// the cores of a machine were allocated for this reason); the application
// then retrieves group identifiers and builds one communicator per group.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "simgrid/topology.hpp"

namespace qrgrid::simgrid {

/// Requirements for one process group of the application.
struct GroupRequirement {
  int processes = 0;              ///< how many ranks this group needs
  double max_intra_latency_s = 1.0;   ///< upper bound on in-group latency
  double min_intra_bandwidth_Bps = 0; ///< lower bound on in-group bandwidth
};

/// The application's declared communication structure.
struct JobProfile {
  std::string name;
  std::vector<GroupRequirement> groups;
  /// Require all groups to have (approximately) equal aggregate compute
  /// power; the scheduler may then allocate fewer processes per node on
  /// faster clusters.
  bool equal_group_power = false;
  /// Allowed relative power imbalance between groups when
  /// equal_group_power is set.
  double power_tolerance = 0.35;
};

/// The scheduler's answer: which global ranks belong to which group.
struct Allocation {
  /// group id (index into JobProfile::groups) for every allocated rank;
  /// allocation.rank_to_group.size() == total allocated processes.
  std::vector<int> rank_to_group;
  /// global topology ranks backing each allocated rank (the "machine
  /// file"): allocated rank i runs on topology rank placement[i].
  std::vector<int> placement;

  int group_of(int rank) const {
    return rank_to_group[static_cast<std::size_t>(rank)];
  }
  int size() const { return static_cast<int>(rank_to_group.size()); }
};

/// Resource-aware meta-scheduler (the QosCosGrid analog). Groups are
/// placed cluster by cluster: a group whose latency bound excludes
/// wide-area links is confined to a single cluster.
class MetaScheduler {
 public:
  explicit MetaScheduler(GridTopology topology)
      : topology_(std::move(topology)) {}

  /// Attempts to place every group; returns std::nullopt if the grid
  /// cannot satisfy the profile (not enough processes, or power
  /// equalization impossible within tolerance).
  std::optional<Allocation> allocate(const JobProfile& profile) const;

  const GridTopology& topology() const { return topology_; }

 private:
  GridTopology topology_;
};

/// What QCG-OMPI exposes to the application at MPI_Init time: the group
/// identifier of each rank (retrieved in the paper through an MPI
/// attribute, then fed to MPI_Comm_split).
struct ProcessGroupAttributes {
  std::vector<int> group_of_rank;
};

/// Builds the runtime-visible attributes from a scheduler allocation.
ProcessGroupAttributes attributes_from(const Allocation& alloc);

}  // namespace qrgrid::simgrid

// Sequential discrete-event engine for grid-scale performance replay.
//
// The threaded msg::Runtime executes real payloads and is the library's
// production path; this engine replays the *schedule* of an algorithm
// (who computes what, who sends to whom) without payloads, advancing one
// virtual clock per rank. It is what lets the benchmark harness sweep the
// paper's full matrix range (up to 33,554,432 rows — 16 GB of data on the
// original testbed) in milliseconds. Costs use exactly the same
// GridTopology links and Roofline rates as the threaded runtime, and the
// engine-equivalence test pins the two to identical critical paths.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/roofline.hpp"
#include "msg/cost_model.hpp"
#include "simgrid/topology.hpp"
#include "simgrid/trace.hpp"

namespace qrgrid::simgrid {

class DesEngine {
 public:
  DesEngine(const GridTopology* topology, model::Roofline roofline);

  int nprocs() const { return static_cast<int>(clock_.size()); }

  /// Advances `rank`'s clock by the time to execute `flops` on
  /// ncols-column blocks at the rank's roofline rate.
  void compute(int rank, double flops, int ncols);

  /// Point-to-point transfer: dst cannot proceed before the message
  /// arrives. Also accrues the message/byte counters by link class.
  void p2p(int src, int dst, std::size_t bytes);

  /// Recursive-doubling allreduce over the given ranks; every rank
  /// exchanges `bytes` per round and pays `combine_flops` per round.
  void allreduce(std::span<const int> ranks, std::size_t bytes,
                 double combine_flops, int ncols);

  /// Binomial-tree broadcast from ranks[0].
  void bcast(std::span<const int> ranks, std::size_t bytes);

  /// BLACS-style combine (DGSUM2D): binomial-tree reduce to ranks[0]
  /// followed by a binomial broadcast — 2 log2(P) rounds on the critical
  /// path, versus the butterfly allreduce's log2(P). ScaLAPACK's
  /// collectives behave like this; the paper's Section-IV model idealizes
  /// them as log2(P).
  void reduce_bcast(std::span<const int> ranks, std::size_t bytes,
                    double combine_flops, int ncols);

  /// All ranks wait for the latest of them (e.g. after a collective whose
  /// result synchronizes everyone).
  void synchronize(std::span<const int> ranks);

  double clock(int rank) const {
    return clock_[static_cast<std::size_t>(rank)];
  }
  double makespan() const;

  /// Seconds rank spent computing (as opposed to waiting on transfers).
  double compute_seconds(int rank) const {
    return compute_seconds_[static_cast<std::size_t>(rank)];
  }

  /// Mean over ranks of compute_time / makespan — how much of the grid
  /// the algorithm actually kept busy. Property 3's mechanism: this
  /// fraction rises toward 1 as M grows because the communication terms
  /// are independent of M.
  double compute_utilization() const;

  long long messages() const { return messages_; }
  long long messages_of(msg::LinkClass c) const {
    return messages_by_class_[static_cast<std::size_t>(c)];
  }
  long long bytes_of(msg::LinkClass c) const {
    return bytes_by_class_[static_cast<std::size_t>(c)];
  }

  /// Bytes this cluster pushed onto (pulled off) its wide-area uplink
  /// (downlink). Intra-cluster traffic never touches these counters; the
  /// two sums over clusters are equal — every WAN byte leaves one site and
  /// enters another. The job service uses them for per-site accounting.
  long long wan_egress_bytes(int cluster) const {
    return wan_egress_bytes_[static_cast<std::size_t>(cluster)];
  }
  long long wan_ingress_bytes(int cluster) const {
    return wan_ingress_bytes_[static_cast<std::size_t>(cluster)];
  }
  double total_flops() const { return total_flops_; }

  const GridTopology& topology() const { return *topology_; }
  const model::Roofline& roofline() const { return roofline_; }

  /// Attaches an activity log; every subsequent compute/transfer records
  /// a TraceEvent. Pass nullptr to stop tracing. The log must outlive the
  /// engine's use of it.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  /// Aggregate capacity of each site's wide-area uplink. The measured
  /// Fig. 3(a) throughputs (78-102 Mb/s) are per TCP flow; the dark fiber
  /// backbone carries ~10 Gb/s, so concurrent inter-site flows contend
  /// only once their sum saturates the site uplink. Set to infinity to
  /// disable contention modeling.
  void set_wan_aggregate_Bps(double bps) { wan_aggregate_Bps_ = bps; }

  /// One inter-cluster transfer the engine booked: when it claimed the
  /// channel, between which clusters, how many bytes. This is the
  /// replay's WAN demand decomposed in time (per phase, per cluster
  /// pair) — what the job service's shared-WAN contention engine feeds
  /// on. Recording is opt-in so figure-scale ScaLAPACK sweeps do not
  /// accumulate event vectors they never read.
  struct WanTransfer {
    double start_s = 0.0;
    int src_cluster = 0;
    int dst_cluster = 0;
    long long bytes = 0;
  };
  void record_wan_transfers(bool on) { record_wan_ = on; }
  const std::vector<WanTransfer>& wan_transfers() const {
    return wan_transfers_;
  }

 private:
  /// Books the (possibly contended) channel for a transfer and returns
  /// the arrival time at the receiver; updates counters.
  double transfer(int src, int dst, std::size_t bytes);

  const GridTopology* topology_;
  model::Roofline roofline_;
  std::vector<double> clock_;
  std::vector<double> compute_seconds_;
  TraceLog* trace_ = nullptr;
  std::vector<double> egress_free_;   ///< per-cluster WAN uplink horizon
  std::vector<double> ingress_free_;  ///< per-cluster WAN downlink horizon
  std::vector<long long> wan_egress_bytes_;   ///< per-cluster WAN bytes out
  std::vector<long long> wan_ingress_bytes_;  ///< per-cluster WAN bytes in
  double wan_aggregate_Bps_ = 10e9 / 8.0;  ///< Grid'5000 dark fiber
  bool record_wan_ = false;
  std::vector<WanTransfer> wan_transfers_;
  long long messages_ = 0;
  long long messages_by_class_[msg::kNumLinkClasses] = {0, 0, 0, 0};
  long long bytes_by_class_[msg::kNumLinkClasses] = {0, 0, 0, 0};
  double total_flops_ = 0.0;
};

}  // namespace qrgrid::simgrid

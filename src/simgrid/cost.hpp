// Bridges the grid topology into the message-passing runtime's virtual
// clocks: transfers cost latency + bytes/bandwidth on the link between the
// two ranks' locations, compute costs flops at the roofline rate of the
// rank's cluster.
#pragma once

#include <memory>

#include "model/roofline.hpp"
#include "msg/cost_model.hpp"
#include "simgrid/topology.hpp"

namespace qrgrid::simgrid {

class TopologyCostModel final : public msg::CostModel {
 public:
  TopologyCostModel(GridTopology topology, model::Roofline roofline)
      : topology_(std::move(topology)), roofline_(roofline) {}

  double transfer_seconds(int src, int dst, std::size_t) const override {
    // Wire part: the latency, overlappable across concurrent messages.
    if (src == dst) return 0.0;
    return topology_.link(src, dst).latency_s;
  }

  double serialization_seconds(int src, int dst,
                               std::size_t bytes) const override {
    // Byte part, charged at the receiver: back-to-back arrivals queue.
    if (src == dst) return 0.0;
    return static_cast<double>(bytes) / topology_.link(src, dst).bandwidth_Bps;
  }

  double flop_seconds(int rank, double flops, int ncols) const override {
    // Rate scaled by the cluster's peak relative to the calibration
    // baseline (the slowest cluster), so faster sites finish sooner.
    const auto loc = topology_.location_of(rank);
    const double scale = topology_.cluster(loc.cluster).proc_peak_gflops /
                         topology_.cluster(0).proc_peak_gflops;
    return flops / (roofline_.rate_gflops(ncols) * scale * 1e9);
  }

  msg::LinkClass link_class(int src, int dst) const override {
    return topology_.link_class(src, dst);
  }

  const GridTopology& topology() const { return topology_; }
  const model::Roofline& roofline() const { return roofline_; }

 private:
  GridTopology topology_;
  model::Roofline roofline_;
};

}  // namespace qrgrid::simgrid

// Description of a cluster-of-clusters grid: the Grid'5000 substitute.
//
// A topology is a list of clusters (geographical sites), each with a number
// of nodes and processes per node. Ranks are laid out cluster-major,
// node-major (rank 0..procs_per_cluster-1 on cluster 0, etc.) — the natural
// contiguous placement the paper assumes for ScaLAPACK (Fig. 1 notes that
// random rank placement would only be worse). Three link classes carry the
// measured Grid'5000 parameters of Fig. 3(a): shared-memory intra-node,
// GigE intra-cluster, and per-pair wide-area inter-cluster links.
#pragma once

#include <string>
#include <vector>

#include "msg/cost_model.hpp"

namespace qrgrid::simgrid {

/// A point-to-point link: latency in seconds, bandwidth in bytes/second.
struct LinkParams {
  double latency_s = 0.0;
  double bandwidth_Bps = 1.0;

  double transfer_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

/// One geographical site.
struct ClusterSpec {
  std::string name;
  int nodes = 0;
  int procs_per_node = 0;
  double proc_peak_gflops = 4.0;  ///< theoretical peak per processor

  int procs() const { return nodes * procs_per_node; }
};

/// Where a global rank lives.
struct ProcLocation {
  int cluster = 0;
  int node = 0;  ///< node index within the cluster
  int proc = 0;  ///< processor index within the node
};

class GridTopology {
 public:
  GridTopology(std::vector<ClusterSpec> clusters, LinkParams intra_node,
               LinkParams intra_cluster,
               std::vector<std::vector<LinkParams>> inter_cluster);

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const ClusterSpec& cluster(int c) const {
    return clusters_[static_cast<std::size_t>(c)];
  }
  int total_procs() const { return total_procs_; }

  /// Decomposes a global rank (cluster-major, node-major layout).
  ProcLocation location_of(int rank) const;

  /// Cluster id of every global rank, in rank order — the
  /// TsqrOptions::rank_cluster / DomainLayout::domain_cluster vector for
  /// one-rank-per-domain runs over this topology.
  std::vector<int> rank_clusters() const;

  /// First global rank of cluster c.
  int cluster_rank_base(int c) const {
    return base_[static_cast<std::size_t>(c)];
  }

  /// Link parameters between two ranks (self links are free).
  LinkParams link(int rank_a, int rank_b) const;

  msg::LinkClass link_class(int rank_a, int rank_b) const;

  const LinkParams& intra_node_link() const { return intra_node_; }
  const LinkParams& intra_cluster_link() const { return intra_cluster_; }
  const LinkParams& inter_cluster_link(int ca, int cb) const;

  /// Theoretical grid peak in Gflop/s. The paper evaluates efficiency
  /// against the *slowest* component, so this is procs * min(proc peak).
  double theoretical_peak_gflops() const;

  /// The Grid'5000 subset used in the paper: `sites` clusters out of
  /// {Orsay, Toulouse, Bordeaux, Sophia}, each with `nodes_per_cluster`
  /// dual-processor nodes and the measured Fig. 3(a) link parameters.
  /// With `equal_power` every site gets the slowest site's processor peak
  /// — the configuration the paper's JobProfile requested ("groups of
  /// equivalent computing power", §III), which it achieved by booking
  /// only part of the faster machines.
  static GridTopology grid5000(int sites = 4, int nodes_per_cluster = 32,
                               int procs_per_node = 2,
                               bool equal_power = false);

 private:
  std::vector<ClusterSpec> clusters_;
  LinkParams intra_node_;
  LinkParams intra_cluster_;
  std::vector<std::vector<LinkParams>> inter_cluster_;
  std::vector<int> base_;  ///< first rank of each cluster
  int total_procs_ = 0;
};

}  // namespace qrgrid::simgrid

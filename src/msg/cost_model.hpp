// Cost-model interface decoupling the message-passing runtime from the
// grid topology. The runtime advances each rank's *virtual clock* by the
// costs this interface reports; simgrid::TopologyCostModel implements it
// with the Grid'5000 link parameters, while ZeroCostModel turns the
// accounting off for plain correctness tests.
#pragma once

#include <cstddef>

namespace qrgrid::msg {

/// Classification of the link a message crosses, for the paper's
/// locality analysis (Fig. 1 vs Fig. 2 count inter-cluster messages).
enum class LinkClass : int {
  kSelf = 0,          ///< same process (loopback)
  kIntraNode = 1,     ///< shared-memory transfer between co-located ranks
  kIntraCluster = 2,  ///< within one cluster/site (e.g. GigE)
  kInterCluster = 3,  ///< between geographical sites (wide-area)
};
inline constexpr int kNumLinkClasses = 4;

class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Virtual seconds for the *wire* part of a transfer from `src` to
  /// `dst` — the portion concurrent transfers can overlap (link latency;
  /// may include a byte term for models that lump everything here).
  virtual double transfer_seconds(int src, int dst,
                                  std::size_t bytes) const = 0;

  /// Virtual seconds the *receiver* is occupied absorbing the message
  /// (bytes / bandwidth in the LogGP sense). Serializes concurrent
  /// arrivals at one rank: a flat reduction tree pays this D-1 times at
  /// its root while a binary tree spreads it. Default: 0 (models that
  /// fold everything into transfer_seconds).
  virtual double serialization_seconds(int /*src*/, int /*dst*/,
                                       std::size_t /*bytes*/) const {
    return 0.0;
  }

  /// Virtual seconds for `rank` to execute `flops` floating-point
  /// operations in a kernel that processes n-column blocks (the column
  /// count selects the roofline efficiency; pass 0 for "peak").
  virtual double flop_seconds(int rank, double flops, int ncols) const = 0;

  /// Which class of link connects the two ranks.
  virtual LinkClass link_class(int src, int dst) const = 0;
};

/// No-cost model: virtual clocks stay at zero; only counters move.
class ZeroCostModel final : public CostModel {
 public:
  double transfer_seconds(int, int, std::size_t) const override { return 0.0; }
  double flop_seconds(int, double, int) const override { return 0.0; }
  LinkClass link_class(int src, int dst) const override {
    return src == dst ? LinkClass::kSelf : LinkClass::kIntraCluster;
  }
};

}  // namespace qrgrid::msg

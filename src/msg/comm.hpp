// SPMD message-passing runtime: the MPI substitute of the reproduction.
//
// Runtime::run(P, fn) spawns P rank threads that communicate through typed
// mailboxes with MPI-like semantics: point-to-point messages are matched by
// (source, communicator context, tag) in FIFO order, communicators can be
// split collectively (MPI_Comm_split), and every transfer advances the
// receiver's virtual clock according to a pluggable CostModel — so a run on
// a laptop yields both *real* numerical results and *simulated* grid
// timings, plus exact message/byte/flop counters for the paper's Table I/II
// validation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "msg/cost_model.hpp"

namespace qrgrid::msg {

/// Counters aggregated across one Runtime::run invocation. "Messages" are
/// point-to-point transfers between *distinct* ranks (self-sends used by
/// collective implementations are not counted, matching the paper's model).
struct RunStats {
  long long messages = 0;
  long long bytes = 0;
  long long messages_by_class[kNumLinkClasses] = {0, 0, 0, 0};
  long long bytes_by_class[kNumLinkClasses] = {0, 0, 0, 0};
  double total_flops = 0.0;
  double max_rank_flops = 0.0;  ///< max over ranks: critical-path proxy
  double max_vtime = 0.0;       ///< simulated makespan (max final clock)
};

namespace detail {
struct RuntimeState;
}

/// Thrown by a rank whose virtual clock crosses the runtime's vtime
/// limit (Runtime::set_vtime_limit) — the simulated analog of a batch
/// system's walltime SIGKILL or of a site outage hitting an in-flight
/// job. Distinct from generic Error so callers can tell an injected
/// mid-run kill from a real failure; the abort still propagates to every
/// peer through the same machinery as any other rank death.
class VtimeLimitError : public qrgrid::Error {
 public:
  using qrgrid::Error::Error;
};

/// Rank-local handle to a communicator (a subgroup of the runtime's ranks
/// with a private tag space). Cheap to copy; not thread-safe across ranks
/// (each rank uses only its own handles, as in MPI).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }

  /// Blocking typed send of a double payload to `dst` (rank in this comm).
  void send(int dst, int tag, std::span<const double> payload);

  /// Blocking receive from `src` matching `tag`; returns the payload.
  std::vector<double> recv(int src, int tag);

  /// Advances this rank's virtual clock by the cost of `flops` floating
  /// point operations on n-column blocks, and accrues flop counters.
  void compute(double flops, int ncols = 0);

  /// Current virtual time of this rank.
  double vtime() const;

  /// Explicitly advances this rank's virtual clock (e.g. modeled I/O).
  void advance_vtime(double seconds);

  /// Collectively splits this communicator: ranks supplying the same
  /// `color` end up in the same child comm, ordered by (key, parent rank).
  /// Every rank of the parent must call split (MPI_Comm_split semantics).
  Comm split(int color, int key);

  /// Global rank in the underlying runtime (for topology queries).
  int global_rank() const { return group_[static_cast<std::size_t>(rank_)]; }

  /// Translates a rank of this comm to the runtime's global rank.
  int to_global(int r) const { return group_[static_cast<std::size_t>(r)]; }

  // ---- Collectives (implemented in collectives.cpp) ----

  /// Synchronizes all ranks (dissemination barrier).
  void barrier();

  /// Broadcasts `data` from `root` to every rank (binomial tree).
  void bcast(std::vector<double>& data, int root);

  /// Element-wise reduction to `root`; `op` combines (accumulator, input).
  using ReduceOp = std::function<void(std::span<double>, std::span<const double>)>;
  void reduce(std::vector<double>& data, int root, const ReduceOp& op);

  /// Reduction whose result every rank receives (reduce + bcast over a
  /// binomial tree: 2·log2(P) message steps, the paper's allreduce model).
  void allreduce(std::vector<double>& data, const ReduceOp& op);

  /// Element-wise sum allreduce (the common case).
  void allreduce_sum(std::vector<double>& data);

  /// Gathers each rank's vector to `root` (concatenated in rank order).
  std::vector<double> gather(std::span<const double> data, int root);

  /// Gathers and delivers the concatenation to every rank.
  std::vector<double> allgather(std::span<const double> data);

 private:
  friend class Runtime;
  Comm(detail::RuntimeState* state, std::uint64_t context, int rank,
       std::vector<int> group)
      : state_(state), context_(context), rank_(rank),
        group_(std::move(group)) {}

  detail::RuntimeState* state_ = nullptr;
  std::uint64_t context_ = 0;   ///< private tag space of this communicator
  int rank_ = 0;                ///< rank within this communicator
  std::vector<int> group_;      ///< comm rank -> global rank
};

/// Owns the rank threads, mailboxes, virtual clocks, and counters.
class Runtime {
 public:
  /// `cost` may be null, meaning ZeroCostModel.
  explicit Runtime(int nprocs, std::shared_ptr<const CostModel> cost = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int size() const { return nprocs_; }

  /// Runs `fn(comm)` on every rank (spawning size()-1 threads plus the
  /// caller) over COMM_WORLD, and returns the aggregated statistics.
  /// Exceptions thrown by any rank are rethrown on the caller after all
  /// threads join.
  RunStats run(const std::function<void(Comm&)>& fn);

  /// Virtual-walltime enforcement: any operation that advances a rank's
  /// clock past `limit_s` throws VtimeLimitError on that rank, aborting
  /// the whole run (peers blocked in receives or collectives are released
  /// with an error, whatever phase the kill hits). Infinity (the default)
  /// disables it. Set between runs, never while one is in flight.
  void set_vtime_limit(double limit_s);

  /// Statistics of the most recent run, aborted or not — unlike run()'s
  /// return value these survive a thrown abort, so callers can read how
  /// far the virtual clocks actually got before a mid-run kill.
  RunStats last_run_stats() const { return last_stats_; }

 private:
  int nprocs_;
  std::unique_ptr<detail::RuntimeState> state_;
  RunStats last_stats_;
};

}  // namespace qrgrid::msg

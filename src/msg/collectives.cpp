// Collective operations built on the point-to-point layer. Algorithm
// choices mirror the cost model of the paper's Section IV:
//  - bcast / reduce: binomial trees (log2(P) rounds),
//  - allreduce: recursive doubling butterfly (log2(P) rounds — the paper
//    charges an allreduce exactly log2(P) messages on the critical path),
//  - barrier: dissemination (ceil(log2(P)) rounds).
#include <cmath>

#include "common/check.hpp"
#include "msg/comm.hpp"

namespace qrgrid::msg {

namespace {

// Tags reserved for collective plumbing; user point-to-point traffic on the
// same communicator must stay below this range.
constexpr int kTagBcast = (1 << 28) + 1;
constexpr int kTagReduce = (1 << 28) + 2;
constexpr int kTagAllreduceFold = (1 << 28) + 3;
constexpr int kTagAllreduceUnfold = (1 << 28) + 4;
constexpr int kTagGather = (1 << 28) + 5;
// Per-step tag families (step/mask added to the base): keep them in
// disjoint high ranges so a slow rank still inside one collective can never
// match a fast peer's message from the next collective call.
constexpr int kTagBarrier = 1 << 29;
constexpr int kTagAllreduceFly = (1 << 29) + (1 << 27);

int floor_pow2(int p) {
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

}  // namespace

void Comm::barrier() {
  const int p = size();
  for (int step = 1; step < p; step *= 2) {
    const int to = (rank_ + step) % p;
    const int from = (rank_ - step % p + p) % p;
    send(to, kTagBarrier + step, {});
    (void)recv(from, kTagBarrier + step);
  }
}

void Comm::bcast(std::vector<double>& data, int root) {
  const int p = size();
  QRGRID_CHECK(root >= 0 && root < p);
  if (p == 1) return;
  const int vr = (rank_ - root % p + p) % p;
  // Receive phase: find the bit at which we hang off the binomial tree.
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      const int src = (vr ^ mask) + root;
      data = recv(src % p, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to our subtree.
  mask >>= 1;
  while (mask > 0) {
    if ((vr | mask) < p && !(vr & mask)) {
      const int dst = (vr | mask) + root;
      send(dst % p, kTagBcast, data);
    }
    mask >>= 1;
  }
}

void Comm::reduce(std::vector<double>& data, int root, const ReduceOp& op) {
  const int p = size();
  QRGRID_CHECK(root >= 0 && root < p);
  const int vr = (rank_ - root % p + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      const int dst = (vr ^ mask) + root;
      send(dst % p, kTagReduce, data);
      return;  // contributed; done
    }
    if ((vr | mask) < p) {
      const int src = (vr | mask) + root;
      std::vector<double> incoming = recv(src % p, kTagReduce);
      QRGRID_CHECK(incoming.size() == data.size());
      op(std::span<double>(data), std::span<const double>(incoming));
    }
    mask <<= 1;
  }
}

void Comm::allreduce(std::vector<double>& data, const ReduceOp& op) {
  const int p = size();
  if (p == 1) return;
  const int p2 = floor_pow2(p);
  const int rem = p - p2;

  // Fold the extra ranks into the power-of-two core: ranks [0, 2*rem) pair
  // up (even sends to odd); ranks >= 2*rem participate directly.
  int vrank;  // rank within the butterfly, or -1 if folded out
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      send(rank_ + 1, kTagAllreduceFold, data);
      vrank = -1;
    } else {
      std::vector<double> incoming = recv(rank_ - 1, kTagAllreduceFold);
      QRGRID_CHECK(incoming.size() == data.size());
      op(std::span<double>(data), std::span<const double>(incoming));
      vrank = rank_ / 2;
    }
  } else {
    vrank = rank_ - rem;
  }

  auto to_rank = [&](int vr) { return vr < rem ? 2 * vr + 1 : vr + rem; };

  if (vrank >= 0) {
    // Recursive doubling: log2(p2) rounds of pairwise exchange+combine.
    for (int mask = 1; mask < p2; mask <<= 1) {
      const int partner = to_rank(vrank ^ mask);
      send(partner, kTagAllreduceFly + mask, data);
      std::vector<double> incoming = recv(partner, kTagAllreduceFly + mask);
      QRGRID_CHECK(incoming.size() == data.size());
      op(std::span<double>(data), std::span<const double>(incoming));
    }
  }

  // Unfold: odd partners return the final value to the folded-out evens.
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      send(rank_ - 1, kTagAllreduceUnfold, data);
    } else {
      data = recv(rank_ + 1, kTagAllreduceUnfold);
    }
  }
}

void Comm::allreduce_sum(std::vector<double>& data) {
  allreduce(data, [](std::span<double> acc, std::span<const double> in) {
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
  });
}

std::vector<double> Comm::gather(std::span<const double> data, int root) {
  const int p = size();
  if (rank_ != root) {
    send(root, kTagGather, data);
    return {};
  }
  std::vector<double> out;
  for (int r = 0; r < p; ++r) {
    if (r == root) {
      out.insert(out.end(), data.begin(), data.end());
    } else {
      std::vector<double> part = recv(r, kTagGather);
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  return out;
}

std::vector<double> Comm::allgather(std::span<const double> data) {
  // Gather to rank 0, then broadcast. Requires equal contribution sizes to
  // reconstruct boundaries; qrgrid callers only allgather fixed-size items.
  std::vector<double> all = gather(data, 0);
  bcast(all, 0);
  return all;
}

}  // namespace qrgrid::msg

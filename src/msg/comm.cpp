#include "msg/comm.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/check.hpp"

namespace qrgrid::msg {

namespace detail {

namespace {

struct MailKey {
  int src;
  std::uint64_t context;
  int tag;
  bool operator<(const MailKey& o) const {
    return std::tie(src, context, tag) < std::tie(o.src, o.context, o.tag);
  }
};

struct Mail {
  std::vector<double> payload;
  double arrival_vtime = 0.0;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::map<MailKey, std::deque<Mail>> queues;
};

/// Per-rank accounting, cache-line padded: each rank thread writes only its
/// own slot, so no synchronization is needed until aggregation.
struct alignas(64) PerRank {
  double clock = 0.0;
  long long sends = 0;
  long long recvs = 0;
  long long bytes_sent = 0;
  long long messages_by_class[kNumLinkClasses] = {0, 0, 0, 0};
  long long bytes_by_class[kNumLinkClasses] = {0, 0, 0, 0};
  double flops = 0.0;
};

}  // namespace

struct RuntimeState {
  int nprocs = 0;
  std::shared_ptr<const CostModel> cost;
  std::vector<Mailbox> mailboxes;
  std::vector<PerRank> per_rank;
  std::atomic<std::uint64_t> next_context{1};
  std::atomic<bool> aborted{false};
  /// Virtual-walltime bound; constant while rank threads run (set before
  /// spawn, read-only after — the thread launch is the synchronization).
  double vtime_limit = std::numeric_limits<double>::infinity();

  /// Call after advancing `rank`'s clock: an injected kill fires the
  /// moment the simulated timeline crosses the limit. The clock is
  /// clamped AT the limit — a SIGKILL interrupts the operation in
  /// progress, it does not let it finish — so the aborted run's
  /// max_vtime reports exactly how far the simulated execution got.
  void enforce_vtime_limit(int rank) {
    double& clock = per_rank[static_cast<std::size_t>(rank)].clock;
    if (clock > vtime_limit) {
      clock = vtime_limit;
      std::ostringstream oss;
      oss << "rank " << rank << " exceeded the virtual walltime limit of "
          << vtime_limit << " s";
      throw VtimeLimitError(oss.str());
    }
  }

  explicit RuntimeState(int p, std::shared_ptr<const CostModel> c)
      : nprocs(p), cost(std::move(c)), mailboxes(p), per_rank(p) {
    if (!cost) cost = std::make_shared<ZeroCostModel>();
  }

  void reset() {
    for (auto& mb : mailboxes) {
      std::lock_guard<std::mutex> lk(mb.mu);
      mb.queues.clear();
    }
    for (auto& pr : per_rank) pr = PerRank{};
    aborted.store(false, std::memory_order_relaxed);
  }

  void abort_all() {
    aborted.store(true, std::memory_order_seq_cst);
    for (auto& mb : mailboxes) {
      std::lock_guard<std::mutex> lk(mb.mu);
      mb.cv.notify_all();
    }
  }

  void put(int src_global, int dst_global, std::uint64_t context, int tag,
           std::vector<double> payload, double depart_vtime) {
    const std::size_t bytes = payload.size() * sizeof(double);
    const double arrival =
        depart_vtime + cost->transfer_seconds(src_global, dst_global, bytes);
    PerRank& pr = per_rank[static_cast<std::size_t>(src_global)];
    if (src_global != dst_global) {
      pr.sends += 1;
      pr.bytes_sent += static_cast<long long>(bytes);
      const auto cls =
          static_cast<std::size_t>(cost->link_class(src_global, dst_global));
      pr.messages_by_class[cls] += 1;
      pr.bytes_by_class[cls] += static_cast<long long>(bytes);
    }
    Mailbox& mb = mailboxes[static_cast<std::size_t>(dst_global)];
    {
      std::lock_guard<std::mutex> lk(mb.mu);
      mb.queues[MailKey{src_global, context, tag}].push_back(
          Mail{std::move(payload), arrival});
    }
    mb.cv.notify_all();
  }

  Mail take(int dst_global, int src_global, std::uint64_t context, int tag) {
    Mailbox& mb = mailboxes[static_cast<std::size_t>(dst_global)];
    std::unique_lock<std::mutex> lk(mb.mu);
    const MailKey key{src_global, context, tag};
    mb.cv.wait(lk, [&] {
      if (aborted.load(std::memory_order_relaxed)) return true;
      auto it = mb.queues.find(key);
      return it != mb.queues.end() && !it->second.empty();
    });
    if (aborted.load(std::memory_order_relaxed)) {
      throw Error("msg::Runtime aborted: a peer rank threw an exception");
    }
    auto it = mb.queues.find(key);
    Mail m = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) mb.queues.erase(it);
    return m;
  }
};

}  // namespace detail

void Comm::send(int dst, int tag, std::span<const double> payload) {
  QRGRID_CHECK_MSG(dst >= 0 && dst < size(), "send dst=" << dst);
  const int src_g = global_rank();
  const int dst_g = to_global(dst);
  state_->put(src_g, dst_g, context_, tag,
              std::vector<double>(payload.begin(), payload.end()),
              state_->per_rank[static_cast<std::size_t>(src_g)].clock);
}

std::vector<double> Comm::recv(int src, int tag) {
  QRGRID_CHECK_MSG(src >= 0 && src < size(), "recv src=" << src);
  const int me_g = global_rank();
  const int src_g = to_global(src);
  auto mail = state_->take(me_g, src_g, context_, tag);
  auto& pr = state_->per_rank[static_cast<std::size_t>(me_g)];
  pr.recvs += 1;
  pr.clock = std::max(pr.clock, mail.arrival_vtime) +
             state_->cost->serialization_seconds(
                 src_g, me_g, mail.payload.size() * sizeof(double));
  state_->enforce_vtime_limit(me_g);
  return std::move(mail.payload);
}

void Comm::compute(double flops, int ncols) {
  auto& pr = state_->per_rank[static_cast<std::size_t>(global_rank())];
  pr.clock += state_->cost->flop_seconds(global_rank(), flops, ncols);
  pr.flops += flops;
  state_->enforce_vtime_limit(global_rank());
}

double Comm::vtime() const {
  return state_->per_rank[static_cast<std::size_t>(global_rank())].clock;
}

void Comm::advance_vtime(double seconds) {
  state_->per_rank[static_cast<std::size_t>(global_rank())].clock += seconds;
  state_->enforce_vtime_limit(global_rank());
}

Comm Comm::split(int color, int key) {
  QRGRID_CHECK(color >= 0);
  // Exchange (color, key) pairs; every rank derives the same grouping.
  std::vector<double> mine = {static_cast<double>(color),
                              static_cast<double>(key)};
  std::vector<double> all = allgather(mine);

  // Distinct colors in ascending order determine child-context offsets.
  std::vector<int> colors;
  for (int r = 0; r < size(); ++r)
    colors.push_back(static_cast<int>(all[static_cast<std::size_t>(2 * r)]));
  std::vector<int> distinct = colors;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  // Rank 0 of the parent allocates a contiguous context block and shares
  // it, so sibling groups get unique, agreed-upon contexts.
  std::vector<double> base(1);
  if (rank_ == 0) {
    base[0] = static_cast<double>(
        state_->next_context.fetch_add(distinct.size()));
  }
  bcast(base, 0);
  const auto ctx_base = static_cast<std::uint64_t>(base[0]);

  // Build my group ordered by (key, parent rank).
  std::vector<std::pair<int, int>> members;  // (key, parent rank)
  for (int r = 0; r < size(); ++r) {
    if (colors[static_cast<std::size_t>(r)] == color) {
      members.emplace_back(
          static_cast<int>(all[static_cast<std::size_t>(2 * r + 1)]), r);
    }
  }
  std::sort(members.begin(), members.end());
  std::vector<int> group;
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].second == rank_) my_new_rank = static_cast<int>(i);
    group.push_back(to_global(members[i].second));
  }
  QRGRID_CHECK(my_new_rank >= 0);
  const auto color_idx = static_cast<std::uint64_t>(
      std::lower_bound(distinct.begin(), distinct.end(), color) -
      distinct.begin());
  return Comm(state_, ctx_base + color_idx, my_new_rank, std::move(group));
}

Runtime::Runtime(int nprocs, std::shared_ptr<const CostModel> cost)
    : nprocs_(nprocs),
      state_(std::make_unique<detail::RuntimeState>(nprocs, std::move(cost))) {
  QRGRID_CHECK(nprocs >= 1);
}

Runtime::~Runtime() = default;

RunStats Runtime::run(const std::function<void(Comm&)>& fn) {
  state_->reset();
  std::vector<int> world(static_cast<std::size_t>(nprocs_));
  for (int r = 0; r < nprocs_; ++r) world[static_cast<std::size_t>(r)] = r;

  std::mutex err_mu;
  std::exception_ptr first_error;
  auto body = [&](int rank) {
    try {
      Comm comm(state_.get(), /*context=*/0, rank, world);
      fn(comm);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      state_->abort_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_ - 1));
  for (int r = 1; r < nprocs_; ++r) threads.emplace_back(body, r);
  body(0);
  for (auto& t : threads) t.join();

  // Aggregate BEFORE rethrowing: an aborted run's partial clocks and
  // counters stay readable through last_run_stats() — how the service
  // layer measures where an injected mid-run kill really landed.
  RunStats stats;
  for (const auto& pr : state_->per_rank) {
    stats.messages += pr.sends;
    stats.bytes += pr.bytes_sent;
    for (int c = 0; c < kNumLinkClasses; ++c) {
      stats.messages_by_class[c] += pr.messages_by_class[c];
      stats.bytes_by_class[c] += pr.bytes_by_class[c];
    }
    stats.total_flops += pr.flops;
    stats.max_rank_flops = std::max(stats.max_rank_flops, pr.flops);
    stats.max_vtime = std::max(stats.max_vtime, pr.clock);
  }
  last_stats_ = stats;
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

void Runtime::set_vtime_limit(double limit_s) {
  QRGRID_CHECK_MSG(limit_s >= 0.0, "vtime limit must be >= 0, got "
                                       << limit_s);
  state_->vtime_limit = limit_s;
}

}  // namespace qrgrid::msg

// Householder QR factorization kernels (LAPACK geqr2/geqrf family).
//
// Factored form: A = Q R with Q = H_0 H_1 ... H_{k-1}. After a call, the
// upper triangle of A holds R and the strict lower triangle holds the
// reflector tails V (unit diagonal implicit), exactly as LAPACK stores them.
#pragma once

#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace qrgrid {

/// Unblocked Householder QR (dgeqr2). `tau` is resized to min(m, n).
void geqr2(MatrixView a, std::vector<double>& tau);

/// Forms the upper triangular block reflector T (k x k) for the compact
/// WY representation Q = I - V T V^T, from the k reflectors stored in the
/// columns of V (m x k, unit lower trapezoidal) with scalars tau (dlarft,
/// forward/columnwise).
void larft(ConstMatrixView v, const std::vector<double>& tau, MatrixView t);

/// Applies the block reflector to C from the left (dlarfb):
/// C := (I - V T V^T) C   if trans == Trans::No  (apply Q)
/// C := (I - V T^T V^T) C if trans == Trans::Yes (apply Q^T)
/// V is m x k unit lower trapezoidal, T k x k upper triangular.
void larfb_left(Trans trans, ConstMatrixView v, ConstMatrixView t,
                MatrixView c);

/// Blocked Householder QR (dgeqrf) with panel width `nb`.
void geqrf(MatrixView a, std::vector<double>& tau, Index nb = 32);

/// Overwrites the leading n columns of Q (m x n, n <= m) with the
/// orthonormal factor defined by the k = tau.size() reflectors stored in
/// `a` (as left by geqr2/geqrf). Equivalent to dorgqr.
Matrix orgqr(ConstMatrixView a, const std::vector<double>& tau, Index n_cols);

/// Applies Q or Q^T (from reflectors in `a`, scalars tau) to C from the
/// left, unblocked (dorm2r).
void ormqr_left(Trans trans, ConstMatrixView a, const std::vector<double>& tau,
                MatrixView c);

/// Extracts the upper-triangular R factor (k x n) from a factored matrix.
Matrix extract_r(ConstMatrixView a);

}  // namespace qrgrid

#include "linalg/generators.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace qrgrid {

Matrix random_gaussian(Index m, Index n, std::uint64_t seed) {
  Matrix a(m, n);
  fill_gaussian_rows(a.view(), 0, seed);
  return a;
}

void fill_gaussian_rows(MatrixView block, Index row0, std::uint64_t seed) {
  // Per-row counter-based generation: the RNG for global row i is seeded by
  // (seed, i) so any partition of rows yields the same global matrix.
  for (Index i = 0; i < block.rows(); ++i) {
    const auto global_row = static_cast<std::uint64_t>(row0 + i);
    Rng rng(seed * 0x9e3779b97f4a7c15ull + global_row * 0xd1b54a32d192ed03ull +
            0x2545f4914f6cdd1dull);
    for (Index j = 0; j < block.cols(); ++j) block(i, j) = rng.gaussian();
  }
}

Matrix random_with_condition(Index m, Index n, double cond,
                             std::uint64_t seed) {
  QRGRID_CHECK(m >= n && n >= 1 && cond >= 1.0);
  // Orthonormal U (m x n) and V (n x n) from QR of Gaussian matrices.
  Matrix gu = random_gaussian(m, n, seed);
  std::vector<double> tau;
  geqrf(gu.view(), tau);
  Matrix u = orgqr(gu.view(), tau, n);

  Matrix gv = random_gaussian(n, n, seed ^ 0xabcdef1234567890ull);
  geqrf(gv.view(), tau);
  Matrix v = orgqr(gv.view(), tau, n);

  // Geometric singular-value spacing 1 ... 1/cond.
  Matrix us = Matrix::copy_of(u.view());
  for (Index j = 0; j < n; ++j) {
    const double t = (n == 1) ? 0.0 : static_cast<double>(j) / (n - 1);
    const double sigma = std::pow(cond, -t);
    scal(m, sigma, &us(0, j));
  }
  Matrix a(m, n);
  gemm(Trans::No, Trans::Yes, 1.0, us.view(), v.view(), 0.0, a.view());
  return a;
}

Matrix near_parallel_columns(Index m, Index n, double epsilon,
                             std::uint64_t seed) {
  QRGRID_CHECK(m >= n && n >= 1);
  Matrix a(m, n);
  Rng rng(seed);
  // Base direction shared by every column, plus an epsilon-scaled
  // independent perturbation: cond(A) grows like 1/epsilon.
  std::vector<double> base(static_cast<std::size_t>(m));
  for (auto& v : base) v = rng.gaussian();
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      a(i, j) = base[static_cast<std::size_t>(i)] + epsilon * rng.gaussian();
    }
  }
  return a;
}

}  // namespace qrgrid

#include <cmath>

#include "linalg/blas.hpp"

namespace qrgrid {

double nrm2(Index n, const double* x) {
  // Scaled sum of squares as in LAPACK dlassq: avoids overflow/underflow
  // for entries near the extremes of the double range.
  double scale = 0.0;
  double ssq = 1.0;
  for (Index i = 0; i < n; ++i) {
    const double absxi = std::fabs(x[i]);
    if (absxi == 0.0) continue;
    if (scale < absxi) {
      const double r = scale / absxi;
      ssq = 1.0 + ssq * r * r;
      scale = absxi;
    } else {
      const double r = absxi / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double dot(Index n, const double* x, const double* y) {
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(Index n, double alpha, const double* x, double* y) {
  if (alpha == 0.0) return;
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(Index n, double alpha, double* x) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

}  // namespace qrgrid

#include "linalg/norms.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace qrgrid {

double frobenius_norm(ConstMatrixView a) {
  double scale = 0.0;
  double ssq = 1.0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      const double v = std::fabs(a(i, j));
      if (v == 0.0) continue;
      if (scale < v) {
        const double r = scale / v;
        ssq = 1.0 + ssq * r * r;
        scale = v;
      } else {
        const double r = v / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double max_abs(ConstMatrixView a) {
  double best = 0.0;
  for (Index j = 0; j < a.cols(); ++j)
    for (Index i = 0; i < a.rows(); ++i)
      best = std::max(best, std::fabs(a(i, j)));
  return best;
}

double orthogonality_error(ConstMatrixView q) {
  const Index n = q.cols();
  Matrix g(n, n);
  syrk_upper_at_a(1.0, q, 0.0, g.view());
  double acc = 0.0;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      const double d = g(i, j) - target;
      // Off-diagonal entries appear twice in the full Gram matrix.
      acc += (i == j ? 1.0 : 2.0) * d * d;
    }
  }
  return std::sqrt(acc);
}

double factorization_residual(ConstMatrixView a, ConstMatrixView q,
                              ConstMatrixView r) {
  Matrix qr = Matrix::copy_of(a);
  gemm(Trans::No, Trans::No, -1.0, q, r, 1.0, qr.view());
  const double denom = frobenius_norm(a);
  return denom == 0.0 ? frobenius_norm(qr.view())
                      : frobenius_norm(qr.view()) / denom;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  QRGRID_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (Index j = 0; j < a.cols(); ++j)
    for (Index i = 0; i < a.rows(); ++i)
      best = std::max(best, std::fabs(a(i, j) - b(i, j)));
  return best;
}

void normalize_r_sign(MatrixView r, MatrixView* q) {
  const Index k = std::min(r.rows(), r.cols());
  for (Index i = 0; i < k; ++i) {
    if (r(i, i) < 0.0) {
      for (Index j = i; j < r.cols(); ++j) r(i, j) = -r(i, j);
      if (q != nullptr) {
        for (Index row = 0; row < q->rows(); ++row)
          (*q)(row, i) = -(*q)(row, i);
      }
    }
  }
}

bool is_upper_triangular(ConstMatrixView a) {
  for (Index j = 0; j < a.cols(); ++j)
    for (Index i = j + 1; i < a.rows(); ++i)
      if (a(i, j) != 0.0) return false;
  return true;
}

}  // namespace qrgrid

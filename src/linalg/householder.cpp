#include "linalg/householder.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace qrgrid {

Reflector larfg(double alpha, Index n, double* x) {
  Reflector r;
  const double xnorm = nrm2(n, x);
  if (xnorm == 0.0) {
    // Already in the target form; H = I.
    r.beta = alpha;
    r.tau = 0.0;
    return r;
  }
  // Overflow-safe hypot of alpha against the tail norm.
  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  r.tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  scal(n, inv, x);
  r.beta = beta;
  return r;
}

void larf_left(double tau, const double* v_tail, MatrixView c, double* work) {
  if (tau == 0.0 || c.empty()) return;
  const Index m = c.rows();
  const Index n = c.cols();
  // work := C^T v  (v = [1; v_tail])
  for (Index j = 0; j < n; ++j) {
    work[j] = c(0, j) + dot(m - 1, v_tail, &c(1, j));
  }
  // C -= tau * v * work^T
  for (Index j = 0; j < n; ++j) {
    const double w = tau * work[j];
    c(0, j) -= w;
    axpy(m - 1, -w, v_tail, &c(1, j));
  }
}

}  // namespace qrgrid

#include "linalg/cholesky.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace qrgrid {

bool potrf_upper(MatrixView a) {
  const Index n = a.rows();
  QRGRID_CHECK(a.cols() == n);
  for (Index j = 0; j < n; ++j) {
    double d = a(j, j) - dot(j, &a(0, j), &a(0, j));
    if (!(d > 0.0)) return false;
    d = std::sqrt(d);
    a(j, j) = d;
    for (Index k = j + 1; k < n; ++k) {
      const double s = a(j, k) - dot(j, &a(0, j), &a(0, k));
      a(j, k) = s / d;
    }
  }
  return true;
}

}  // namespace qrgrid

// Norms and factorization-quality metrics used throughout the test and
// benchmark suites.
#pragma once

#include "linalg/matrix.hpp"

namespace qrgrid {

/// Frobenius norm with overflow-safe accumulation.
double frobenius_norm(ConstMatrixView a);

/// max_{i,j} |a(i,j)|.
double max_abs(ConstMatrixView a);

/// ||Q^T Q - I||_F — orthogonality loss of a column-orthonormal factor.
double orthogonality_error(ConstMatrixView q);

/// ||A - Q R||_F / ||A||_F — relative factorization residual.
double factorization_residual(ConstMatrixView a, ConstMatrixView q,
                              ConstMatrixView r);

/// Max elementwise |a - b| (same shapes).
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// Rescales R (and the matching columns of Q if non-null) so every diagonal
/// entry of R is non-negative. The QR factorization is unique under this
/// convention, which lets tests compare R factors across algorithms.
void normalize_r_sign(MatrixView r, MatrixView* q = nullptr);

/// True iff all entries strictly below the diagonal are exactly zero.
bool is_upper_triangular(ConstMatrixView a);

}  // namespace qrgrid

#include "linalg/blas.hpp"

namespace qrgrid {

namespace {

// Cache-blocking tile sizes for the reference gemm: one panel of A
// (MC x KC doubles) should fit comfortably in L2.
constexpr Index kMC = 128;
constexpr Index kKC = 128;

double elem(ConstMatrixView v, Trans t, Index i, Index j) {
  return t == Trans::No ? v(i, j) : v(j, i);
}

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const Index m = c.rows();
  const Index n = c.cols();
  const Index k = (ta == Trans::No) ? a.cols() : a.rows();
  QRGRID_CHECK_MSG(((ta == Trans::No) ? a.rows() : a.cols()) == m &&
                       ((tb == Trans::No) ? b.rows() : b.cols()) == k &&
                       ((tb == Trans::No) ? b.cols() : b.rows()) == n,
                   "gemm shape mismatch: C " << m << "x" << n << ", k=" << k);

  if (beta != 1.0) {
    for (Index j = 0; j < n; ++j) {
      double* cj = &c(0, j);
      if (beta == 0.0) {
        for (Index i = 0; i < m; ++i) cj[i] = 0.0;
      } else {
        scal(m, beta, cj);
      }
    }
  }
  if (alpha == 0.0 || k == 0) return;

  if (ta == Trans::No && tb == Trans::No) {
    // Blocked axpy formulation: C(:,j) += (alpha*B(k,j)) * A(:,k), with A
    // traversed panel by panel so its columns stay cache-resident.
    for (Index k0 = 0; k0 < k; k0 += kKC) {
      const Index kb = std::min(kKC, k - k0);
      for (Index i0 = 0; i0 < m; i0 += kMC) {
        const Index ib = std::min(kMC, m - i0);
        for (Index j = 0; j < n; ++j) {
          double* cj = &c(i0, j);
          for (Index kk = 0; kk < kb; ++kk) {
            const double w = alpha * b(k0 + kk, j);
            if (w != 0.0) axpy(ib, w, &a(i0, k0 + kk), cj);
          }
        }
      }
    }
    return;
  }
  if (ta == Trans::Yes && tb == Trans::No) {
    // C(i,j) += alpha * dot(A(:,i), B(:,j)): both operands stream down
    // contiguous columns.
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < m; ++i) {
        c(i, j) += alpha * dot(k, &a(0, i), &b(0, j));
      }
    }
    return;
  }
  // Remaining transpose combinations are used rarely (small blocks); a
  // straightforward triple loop is sufficient.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      double acc = 0.0;
      for (Index kk = 0; kk < k; ++kk) {
        acc += elem(a, ta, i, kk) * elem(b, tb, kk, j);
      }
      c(i, j) += alpha * acc;
    }
  }
}

void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  const Index n = t.rows();
  QRGRID_CHECK(t.cols() == n);
  const bool unit = diag == Diag::Unit;
  auto tij = [&](Index i, Index j) {
    return trans == Trans::No ? t(i, j) : t(j, i);
  };
  const bool effective_upper = (uplo == UpLo::Upper) == (trans == Trans::No);

  if (side == Side::Left) {
    QRGRID_CHECK(b.rows() == n);
    for (Index col = 0; col < b.cols(); ++col) {
      double* x = &b(0, col);
      if (effective_upper) {
        for (Index i = 0; i < n; ++i) {
          double acc = unit ? x[i] : tij(i, i) * x[i];
          for (Index j = i + 1; j < n; ++j) acc += tij(i, j) * x[j];
          x[i] = alpha * acc;
        }
      } else {
        for (Index i = n - 1; i >= 0; --i) {
          double acc = unit ? x[i] : tij(i, i) * x[i];
          for (Index j = 0; j < i; ++j) acc += tij(i, j) * x[j];
          x[i] = alpha * acc;
        }
      }
    }
  } else {
    QRGRID_CHECK(b.cols() == n);
    // Row-side triangular multiply: process result columns in the order
    // that lets us update in place.
    const Index m = b.rows();
    if (effective_upper) {
      for (Index j = n - 1; j >= 0; --j) {
        double* bj = &b(0, j);
        if (!unit) scal(m, tij(j, j), bj);
        for (Index i = 0; i < j; ++i) axpy(m, tij(i, j), &b(0, i), bj);
        if (alpha != 1.0) scal(m, alpha, bj);
      }
    } else {
      for (Index j = 0; j < n; ++j) {
        double* bj = &b(0, j);
        if (!unit) scal(m, tij(j, j), bj);
        for (Index i = j + 1; i < n; ++i) axpy(m, tij(i, j), &b(0, i), bj);
        if (alpha != 1.0) scal(m, alpha, bj);
      }
    }
  }
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  const Index n = t.rows();
  QRGRID_CHECK(t.cols() == n);
  if (side == Side::Left) {
    QRGRID_CHECK(b.rows() == n);
    for (Index col = 0; col < b.cols(); ++col) {
      double* x = &b(0, col);
      if (alpha != 1.0) scal(n, alpha, x);
      trsv(uplo, trans, diag, t, x);
    }
    return;
  }
  // Right side: solve X * op(T) = alpha * B column-block-wise. Writing
  // X = B * op(T)^{-1}, column j of X depends on previously solved columns.
  QRGRID_CHECK(b.cols() == n);
  const bool unit = diag == Diag::Unit;
  auto tij = [&](Index i, Index j) {
    return trans == Trans::No ? t(i, j) : t(j, i);
  };
  const bool effective_upper = (uplo == UpLo::Upper) == (trans == Trans::No);
  const Index m = b.rows();
  if (effective_upper) {
    for (Index j = 0; j < n; ++j) {
      double* bj = &b(0, j);
      if (alpha != 1.0) scal(m, alpha, bj);
      for (Index i = 0; i < j; ++i) axpy(m, -tij(i, j), &b(0, i), bj);
      if (!unit) scal(m, 1.0 / tij(j, j), bj);
    }
  } else {
    for (Index j = n - 1; j >= 0; --j) {
      double* bj = &b(0, j);
      if (alpha != 1.0) scal(m, alpha, bj);
      for (Index i = j + 1; i < n; ++i) axpy(m, -tij(i, j), &b(0, i), bj);
      if (!unit) scal(m, 1.0 / tij(j, j), bj);
    }
  }
}

void syrk_upper_at_a(double alpha, ConstMatrixView a, double beta,
                     MatrixView c) {
  const Index n = a.cols();
  const Index m = a.rows();
  QRGRID_CHECK(c.rows() == n && c.cols() == n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) {
      c(i, j) = beta * c(i, j) + alpha * dot(m, &a(0, i), &a(0, j));
    }
  }
}

}  // namespace qrgrid

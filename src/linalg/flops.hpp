// Closed-form flop counts for the kernels, used both by the virtual-time
// simulator (to advance clocks) and by the Table I/II verification tests.
// Counts follow the standard LAPACK conventions (leading-order terms kept,
// matching the paper's Section IV model).
#pragma once

#include "linalg/matrix.hpp"

namespace qrgrid::flops {

/// Householder QR of an m x n matrix (R only): 2 m n^2 - (2/3) n^3.
constexpr double geqrf(double m, double n) {
  return 2.0 * m * n * n - (2.0 / 3.0) * n * n * n;
}

/// TSQR combine of two stacked n x n triangles: (2/3) n^3.
constexpr double tpqrt_tt(double n) { return (2.0 / 3.0) * n * n * n; }

/// QR of [R (n x n); B (m x n dense)] (tpqrt_td): 2 m n^2.
constexpr double tpqrt_td(double m, double n) { return 2.0 * m * n * n; }

/// Applying the combine Q (or Q^T) of a tt node to a stacked pair of
/// n x p blocks: 4 * (n^2 / 2) * p = 2 n^2 p.
constexpr double tpmqrt_tt(double n, double p) { return 2.0 * n * n * p; }

/// Applying a td node's Q to [n x p; m x p]: 4 m n p.
constexpr double tpmqrt_td(double m, double n, double p) {
  return 4.0 * m * n * p;
}

/// Forming/applying Q from an m x n factorization to n columns: same
/// leading term as the factorization itself (paper Property 1: Q+R costs
/// twice R alone).
constexpr double orgqr(double m, double n) {
  return 2.0 * m * n * n - (2.0 / 3.0) * n * n * n;
}

/// Applying Q^T (from m x k reflectors) to an m x p block: 4 m k p.
constexpr double ormqr(double m, double k, double p) {
  return 4.0 * m * k * p;
}

/// Matrix multiply C(m x n) += A(m x k) B(k x n).
constexpr double gemm(double m, double n, double k) { return 2.0 * m * n * k; }

/// Cholesky of n x n: n^3 / 3.
constexpr double potrf(double n) { return n * n * n / 3.0; }

/// Gram matrix A^T A for m x n (upper half): m n^2.
constexpr double syrk(double m, double n) { return m * n * n; }

/// Triangular solve with n x n triangle against m right-hand sides: m n^2.
constexpr double trsm(double m, double n) { return m * n * n; }

}  // namespace qrgrid::flops

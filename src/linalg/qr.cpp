#include "linalg/qr.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"

namespace qrgrid {

void geqr2(MatrixView a, std::vector<double>& tau) {
  const Index m = a.rows();
  const Index n = a.cols();
  const Index k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), 0.0);
  std::vector<double> work(static_cast<std::size_t>(n));
  for (Index j = 0; j < k; ++j) {
    // Generate the reflector for column j from A(j:m, j).
    Reflector r = larfg(a(j, j), m - j - 1, &a(j + 1, j));
    tau[static_cast<std::size_t>(j)] = r.tau;
    a(j, j) = r.beta;
    if (j + 1 < n) {
      // Apply H_j to the trailing columns A(j:m, j+1:n).
      larf_left(r.tau, &a(j + 1, j), a.block(j, j + 1, m - j, n - j - 1),
                work.data());
    }
  }
}

void larft(ConstMatrixView v, const std::vector<double>& tau, MatrixView t) {
  const Index m = v.rows();
  const Index k = v.cols();
  QRGRID_CHECK(t.rows() == k && t.cols() == k);
  QRGRID_CHECK(static_cast<Index>(tau.size()) == k);
  set_zero(t);
  for (Index i = 0; i < k; ++i) {
    const double taui = tau[static_cast<std::size_t>(i)];
    t(i, i) = taui;
    if (i == 0 || taui == 0.0) continue;
    // t(0:i, i) := -tau_i * V(:, 0:i)^T * V(:, i), exploiting the implicit
    // unit diagonal of V: V(j, j) = 1, V(above j, j) = 0.
    for (Index j = 0; j < i; ++j) {
      // Column j of V overlaps column i of V on rows i..m (v(i,i)=1 at row i).
      double acc = v(i, j);  // j-th column times the implicit 1 at row i
      acc += dot(m - i - 1, &v(i + 1, j), &v(i + 1, i));
      t(j, i) = -taui * acc;
    }
    // t(0:i, i) := T(0:i, 0:i) * t(0:i, i)
    trmm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0,
         t.block(0, 0, i, i), t.block(0, i, i, 1));
  }
}

void larfb_left(Trans trans, ConstMatrixView v, ConstMatrixView t,
                MatrixView c) {
  const Index m = v.rows();
  const Index k = v.cols();
  const Index n = c.cols();
  QRGRID_CHECK(c.rows() == m);
  if (n == 0 || k == 0) return;

  // W := C^T V  (n x k), exploiting V's unit lower-trapezoidal structure:
  // V = [V1 (k x k, unit lower tri); V2 ((m-k) x k dense)].
  Matrix w(n, k);
  // W := C1^T (top k rows of C), then W := W * V1 (unit lower tri).
  for (Index j = 0; j < k; ++j)
    for (Index i = 0; i < n; ++i) w(i, j) = c(j, i);
  trmm(Side::Right, UpLo::Lower, Trans::No, Diag::Unit, 1.0,
       v.block(0, 0, k, k), w.view());
  if (m > k) {
    gemm(Trans::Yes, Trans::No, 1.0, c.block(k, 0, m - k, n),
         v.block(k, 0, m - k, k), 1.0, w.view());
  }
  // Update is C -= V * (W * T^op)^T. Applying Q (= I - V T V^T) needs
  // V T W^T = V (W T^T)^T, i.e. W := W * T^T; applying Q^T needs W := W*T.
  trmm(Side::Right, UpLo::Upper, trans == Trans::No ? Trans::Yes : Trans::No,
       Diag::NonUnit, 1.0, t, w.view());
  // C := C - V W^T: first the dense part, then the triangular top.
  if (m > k) {
    gemm(Trans::No, Trans::Yes, -1.0, v.block(k, 0, m - k, k), w.view(), 1.0,
         c.block(k, 0, m - k, n));
  }
  // C1 -= V1 * W^T with V1 unit lower triangular: compute U := W * V1^T
  // (n x k), then C1 -= U^T.
  trmm(Side::Right, UpLo::Lower, Trans::Yes, Diag::Unit, 1.0,
       v.block(0, 0, k, k), w.view());
  for (Index j = 0; j < k; ++j)
    for (Index i = 0; i < n; ++i) c(j, i) -= w(i, j);
}

void geqrf(MatrixView a, std::vector<double>& tau, Index nb) {
  const Index m = a.rows();
  const Index n = a.cols();
  const Index k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), 0.0);
  QRGRID_CHECK(nb >= 1);
  std::vector<double> panel_tau;
  for (Index j = 0; j < k; j += nb) {
    const Index jb = std::min(nb, k - j);
    // Factor the current panel with the unblocked kernel.
    geqr2(a.block(j, j, m - j, jb), panel_tau);
    std::copy(panel_tau.begin(), panel_tau.end(),
              tau.begin() + static_cast<std::ptrdiff_t>(j));
    if (j + jb < n) {
      // Accumulate T and apply the block reflector to the trailing matrix.
      Matrix t(jb, jb);
      larft(a.block(j, j, m - j, jb), panel_tau, t.view());
      larfb_left(Trans::Yes, a.block(j, j, m - j, jb), t.view(),
                 a.block(j, j + jb, m - j, n - j - jb));
    }
  }
}

Matrix orgqr(ConstMatrixView a, const std::vector<double>& tau, Index n_cols) {
  const Index m = a.rows();
  const Index k = static_cast<Index>(tau.size());
  QRGRID_CHECK(n_cols >= k && n_cols <= m);
  Matrix q(m, n_cols);
  for (Index j = 0; j < n_cols; ++j) q(j, j) = 1.0;
  // Apply H_0 ... H_{k-1} to I from the left in reverse (dorg2r).
  std::vector<double> work(static_cast<std::size_t>(n_cols));
  for (Index i = k - 1; i >= 0; --i) {
    const double taui = tau[static_cast<std::size_t>(i)];
    if (taui == 0.0) continue;
    // Reflector i tail lives in a(i+1:m, i).
    MatrixView c = q.block(i, i, m - i, n_cols - i);
    // larf_left expects the tail contiguous; column of a is contiguous.
    larf_left(taui, &a(i + 1, i), c, work.data());
  }
  return q;
}

void ormqr_left(Trans trans, ConstMatrixView a, const std::vector<double>& tau,
                MatrixView c) {
  const Index m = a.rows();
  const Index k = static_cast<Index>(tau.size());
  QRGRID_CHECK(c.rows() == m);
  std::vector<double> work(static_cast<std::size_t>(c.cols()));
  // Q = H_0 H_1 ... H_{k-1}; Q^T C applies H_0 first, Q C applies H_{k-1}
  // first.
  if (trans == Trans::Yes) {
    for (Index i = 0; i < k; ++i) {
      larf_left(tau[static_cast<std::size_t>(i)], &a(i + 1, i),
                c.block(i, 0, m - i, c.cols()), work.data());
    }
  } else {
    for (Index i = k - 1; i >= 0; --i) {
      larf_left(tau[static_cast<std::size_t>(i)], &a(i + 1, i),
                c.block(i, 0, m - i, c.cols()), work.data());
    }
  }
}

Matrix extract_r(ConstMatrixView a) {
  const Index k = std::min(a.rows(), a.cols());
  Matrix r(k, a.cols());
  for (Index j = 0; j < a.cols(); ++j)
    for (Index i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = a(i, j);
  return r;
}

}  // namespace qrgrid

#include "linalg/blas.hpp"

namespace qrgrid {

void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (trans == Trans::No) {
    // y (m) := alpha * A x + beta * y, axpy over columns for locality.
    if (beta != 1.0) scal(m, beta, y);
    for (Index j = 0; j < n; ++j) axpy(m, alpha * x[j], &a(0, j), y);
  } else {
    // y (n) := alpha * A^T x + beta * y; each entry is a column dot.
    for (Index j = 0; j < n; ++j) {
      y[j] = beta * y[j] + alpha * dot(m, &a(0, j), x);
    }
  }
}

void ger(double alpha, const double* x, const double* y, MatrixView a) {
  const Index m = a.rows();
  const Index n = a.cols();
  for (Index j = 0; j < n; ++j) axpy(m, alpha * y[j], x, &a(0, j));
}

void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t, double* x) {
  const Index n = t.rows();
  QRGRID_CHECK(t.cols() == n);
  const bool unit = diag == Diag::Unit;
  // Effective orientation: solving with Upper^T behaves like Lower, etc.
  const bool effective_upper =
      (uplo == UpLo::Upper) == (trans == Trans::No);
  auto elem = [&](Index i, Index j) {
    return trans == Trans::No ? t(i, j) : t(j, i);
  };
  if (effective_upper) {
    for (Index i = n - 1; i >= 0; --i) {
      double acc = x[i];
      for (Index j = i + 1; j < n; ++j) acc -= elem(i, j) * x[j];
      x[i] = unit ? acc : acc / elem(i, i);
    }
  } else {
    for (Index i = 0; i < n; ++i) {
      double acc = x[i];
      for (Index j = 0; j < i; ++j) acc -= elem(i, j) * x[j];
      x[i] = unit ? acc : acc / elem(i, i);
    }
  }
}

}  // namespace qrgrid

// Elementary Householder reflector generation and application, following
// LAPACK dlarfg/dlarf semantics. A reflector H = I - tau * v v^T with
// v(0) == 1 (stored implicitly) maps a vector onto a multiple of e_1.
#pragma once

#include "linalg/matrix.hpp"

namespace qrgrid {

/// Result of reflector generation: `beta` is the value the annihilated
/// vector's head takes (the R diagonal entry) and `tau` the scaling factor.
struct Reflector {
  double beta = 0.0;
  double tau = 0.0;
};

/// Generates a Householder reflector for the (n+1)-vector [alpha; x]:
/// on return x holds v(1..n) (v(0) = 1 implicit) and H * [alpha; x] =
/// [beta; 0]. With tau == 0 the reflector is the identity (x already zero).
/// The sign convention matches LAPACK: beta = -sign(alpha) * ||[alpha;x]||.
Reflector larfg(double alpha, Index n, double* x);

/// Applies H = I - tau * v v^T from the left to C (rows(C) == len(v)),
/// where v has an implicit leading 1 followed by `v_tail` of length
/// rows(C) - 1. `work` must hold cols(C) doubles.
void larf_left(double tau, const double* v_tail, MatrixView c, double* work);

}  // namespace qrgrid

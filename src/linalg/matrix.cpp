#include "linalg/matrix.hpp"

#include <algorithm>

namespace qrgrid {

Matrix Matrix::copy_of(ConstMatrixView v) {
  Matrix out(v.rows(), v.cols());
  copy(v, out.view());
  return out;
}

Matrix Matrix::identity(Index n) {
  Matrix out(n, n);
  for (Index i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

void copy(ConstMatrixView src, MatrixView dst) {
  QRGRID_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (Index j = 0; j < src.cols(); ++j) {
    const double* s = &src(0, j);
    double* d = &dst(0, j);
    std::copy(s, s + src.rows(), d);
  }
}

void set_zero(MatrixView dst) {
  for (Index j = 0; j < dst.cols(); ++j) {
    double* d = &dst(0, j);
    std::fill(d, d + dst.rows(), 0.0);
  }
}

void zero_below_diagonal(MatrixView a) {
  for (Index j = 0; j < a.cols(); ++j)
    for (Index i = j + 1; i < a.rows(); ++i) a(i, j) = 0.0;
}

}  // namespace qrgrid

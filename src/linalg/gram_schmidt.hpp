// Classical and modified Gram-Schmidt orthogonalization.
//
// These are the "unstable orthogonalization schemes" the paper's §II-E says
// block eigensolvers fall back on to limit communication; they exist here
// as stability baselines for TSQR (see tests/stability_test.cpp and
// examples/block_eigensolver.cpp).
#pragma once

#include "linalg/matrix.hpp"

namespace qrgrid {

struct GramSchmidtResult {
  Matrix q;  ///< m x n with orthonormal columns (in exact arithmetic).
  Matrix r;  ///< n x n upper triangular.
};

/// Classical Gram-Schmidt: projections against the *original* basis are
/// computed from a single pass, losing orthogonality like cond(A)^2 * eps.
GramSchmidtResult classical_gram_schmidt(ConstMatrixView a);

/// Modified Gram-Schmidt: sequential reprojection, orthogonality loss
/// proportional to cond(A) * eps.
GramSchmidtResult modified_gram_schmidt(ConstMatrixView a);

/// CholeskyQR: R from the Cholesky factor of A^T A, Q = A R^{-1}. One
/// reduction like TSQR but squares the condition number; fails outright
/// (returns ok=false) when the Gram matrix is not numerically SPD.
struct CholeskyQrResult {
  Matrix q;
  Matrix r;
  bool ok = true;
};
CholeskyQrResult cholesky_qr(ConstMatrixView a);

}  // namespace qrgrid

#include "linalg/gram_schmidt.hpp"

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace qrgrid {

GramSchmidtResult classical_gram_schmidt(ConstMatrixView a) {
  const Index m = a.rows();
  const Index n = a.cols();
  GramSchmidtResult out{Matrix(m, n), Matrix(n, n)};
  Matrix& q = out.q;
  Matrix& r = out.r;
  copy(a, q.view());
  for (Index j = 0; j < n; ++j) {
    // All projection coefficients from the original column j at once.
    for (Index i = 0; i < j; ++i) r(i, j) = dot(m, &q(0, i), &a(0, j));
    for (Index i = 0; i < j; ++i) axpy(m, -r(i, j), &q(0, i), &q(0, j));
    r(j, j) = nrm2(m, &q(0, j));
    if (r(j, j) > 0.0) scal(m, 1.0 / r(j, j), &q(0, j));
  }
  return out;
}

GramSchmidtResult modified_gram_schmidt(ConstMatrixView a) {
  const Index m = a.rows();
  const Index n = a.cols();
  GramSchmidtResult out{Matrix(m, n), Matrix(n, n)};
  Matrix& q = out.q;
  Matrix& r = out.r;
  copy(a, q.view());
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      // Project against the *current* (already deflated) column.
      r(i, j) = dot(m, &q(0, i), &q(0, j));
      axpy(m, -r(i, j), &q(0, i), &q(0, j));
    }
    r(j, j) = nrm2(m, &q(0, j));
    if (r(j, j) > 0.0) scal(m, 1.0 / r(j, j), &q(0, j));
  }
  return out;
}

CholeskyQrResult cholesky_qr(ConstMatrixView a) {
  const Index n = a.cols();
  CholeskyQrResult out;
  Matrix gram(n, n);
  syrk_upper_at_a(1.0, a, 0.0, gram.view());
  // Mirror to the lower triangle not needed: potrf_upper reads upper only.
  out.ok = potrf_upper(gram.view());
  if (!out.ok) return out;
  zero_below_diagonal(gram.view());
  out.r = std::move(gram);
  out.q = Matrix::copy_of(a);
  trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, out.r.view(),
       out.q.view());
  return out;
}

}  // namespace qrgrid

// Reproducible test-matrix generators. Every generator is deterministic in
// (shape, seed) so distributed algorithms can build identical global
// matrices from independently generated row blocks.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace qrgrid {

/// i.i.d. standard Gaussian entries.
Matrix random_gaussian(Index m, Index n, std::uint64_t seed);

/// Fills a view with the rows [row0, row0+rows) of the same virtual
/// Gaussian matrix random_gaussian(M, n, seed) would produce, so distributed
/// ranks can generate disjoint row blocks of one global matrix without
/// materializing it. Deterministic per (seed, global row index, column).
void fill_gaussian_rows(MatrixView block, Index row0, std::uint64_t seed);

/// Matrix with prescribed 2-norm condition number: A = U diag(s) V^T with
/// U, V random orthonormal and singular values geometrically spaced from 1
/// down to 1/cond. Requires m >= n >= 1.
Matrix random_with_condition(Index m, Index n, double cond,
                             std::uint64_t seed);

/// The classic "almost rank-deficient" stability stress case: columns are
/// near-parallel (a shifted Krylov-like family), driving Gram-Schmidt
/// variants to lose orthogonality while Householder-based methods stay
/// accurate. `epsilon` controls the near-degeneracy.
Matrix near_parallel_columns(Index m, Index n, double epsilon,
                             std::uint64_t seed);

}  // namespace qrgrid

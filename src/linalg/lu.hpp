// Unblocked LU with partial pivoting (LAPACK dgetf2 analog) — the kernel
// behind the TSLU tournament-pivoting extension (paper §VI points at
// TSLU/CALU as the direct transposition of the TSQR idea to LU).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qrgrid {

/// Factors A (m x n, m >= n) as P A = L U in place: L unit lower
/// trapezoidal below the diagonal, U upper triangular on/above it.
/// ipiv[k] = row swapped with row k at step k (LAPACK convention,
/// 0-based). Returns false if an exact zero pivot is met.
[[nodiscard]] bool getrf(MatrixView a, std::vector<Index>& ipiv);

/// Applies the row swaps recorded by getrf to the index list `rows`
/// (tracking which original rows ended up on top).
void apply_pivots(const std::vector<Index>& ipiv, std::vector<Index>& rows);

}  // namespace qrgrid

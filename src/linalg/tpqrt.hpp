// Structured QR of two stacked R-factors — the TSQR combine kernel.
//
// Given two n x n upper triangular matrices R1 and R2, computes the QR
// factorization of the 2n x n stacked matrix [R1; R2]:
//
//     [R1]   =  Q  [R]
//     [R2]         [0]
//
// exploiting the triangular structure of both blocks (LAPACK dtpqrt2 with a
// fully triangular pentagonal block). Reflector j touches only row j of the
// top block and rows 0..j of the bottom block, so V2 (the stored reflector
// tails) is n x n upper triangular and the cost is (2/3) n^3 flops — the
// extra-flop term of the TSQR performance model (Table I of the paper).
#pragma once

#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace qrgrid {

/// Factored combine node: R1 is overwritten with the merged R factor and
/// r2 with the reflector tails V2 (upper triangular, column j has j+1
/// entries). `tau` receives the n reflector scalars.
void tpqrt_tt(MatrixView r1, MatrixView r2, std::vector<double>& tau);

/// Applies the orthogonal factor of a tpqrt_tt combine (or its transpose)
/// to a stacked pair [C1; C2] (each n x p) from the left:
///   trans == Trans::Yes : [C1; C2] := Q^T [C1; C2]
///   trans == Trans::No  : [C1; C2] := Q   [C1; C2]
/// where v2/tau are the outputs of tpqrt_tt.
void tpmqrt_tt(Trans trans, ConstMatrixView v2, const std::vector<double>& tau,
               MatrixView c1, MatrixView c2);

/// Variant for a dense (non-triangular) bottom block: QR of [R1; B] where
/// R1 is n x n upper triangular and B is m x n dense (LAPACK dtpqrt with
/// L = 0). Used by the flat-tree/out-of-core TSQR variant. B is overwritten
/// with the dense reflector block V2 (m x n).
void tpqrt_td(MatrixView r1, MatrixView b, std::vector<double>& tau);

/// Applies the orthogonal factor of a tpqrt_td node to [C1; C2] with C1
/// n x p and C2 m x p.
void tpmqrt_td(Trans trans, ConstMatrixView v2, const std::vector<double>& tau,
               MatrixView c1, MatrixView c2);

}  // namespace qrgrid

// Reference BLAS subset used by the QR kernels.
//
// Only the operations the factorization algorithms need are provided; all
// operate on column-major views. Loop orders are chosen for column-major
// locality (axpy-style inner loops over contiguous columns). These are the
// "GotoBLAS substitute" of the reproduction: correctness-first, with enough
// blocking that benchmark shapes run at a consistent (measurable) rate.
#pragma once

#include "linalg/matrix.hpp"

namespace qrgrid {

enum class Trans { No, Yes };

// ---- Level 1 -------------------------------------------------------------

/// Euclidean norm of the n-vector x (stride 1) with overflow-safe scaling,
/// following the LAPACK dnrm2 algorithm.
double nrm2(Index n, const double* x);

/// Dot product of stride-1 n-vectors.
double dot(Index n, const double* x, const double* y);

/// y += alpha * x for stride-1 n-vectors.
void axpy(Index n, double alpha, const double* x, double* y);

/// x *= alpha for a stride-1 n-vector.
void scal(Index n, double alpha, double* x);

// ---- Level 2 -------------------------------------------------------------

/// y := alpha * op(A) * x + beta * y.
void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y);

/// A += alpha * x * y^T (rank-1 update).
void ger(double alpha, const double* x, const double* y, MatrixView a);

/// Solves op(T) * x = b in place for upper or lower triangular T.
enum class UpLo { Upper, Lower };
enum class Diag { NonUnit, Unit };
void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t, double* x);

// ---- Level 3 -------------------------------------------------------------

/// C := alpha * op(A) * op(B) + beta * C.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// B := alpha * op(T) * B (Side::Left) or alpha * B * op(T) (Side::Right)
/// for triangular T.
enum class Side { Left, Right };
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

/// Solves op(T) * X = alpha * B (Left) or X * op(T) = alpha * B (Right),
/// overwriting B with X.
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

/// C := alpha * A^T * A + beta * C (upper triangle only), the Gram-matrix
/// kernel used by CholeskyQR. C must be n x n where A is m x n.
void syrk_upper_at_a(double alpha, ConstMatrixView a, double beta,
                     MatrixView c);

}  // namespace qrgrid

#include "linalg/lu.hpp"

#include <cmath>
#include <utility>

#include "linalg/blas.hpp"

namespace qrgrid {

bool getrf(MatrixView a, std::vector<Index>& ipiv) {
  const Index m = a.rows();
  const Index n = a.cols();
  const Index k = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(k), 0);
  for (Index j = 0; j < k; ++j) {
    // Partial pivoting: largest magnitude in column j at/below the diagonal.
    Index piv = j;
    double best = std::fabs(a(j, j));
    for (Index i = j + 1; i < m; ++i) {
      const double v = std::fabs(a(i, j));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    ipiv[static_cast<std::size_t>(j)] = piv;
    if (best == 0.0) return false;
    if (piv != j) {
      for (Index c = 0; c < n; ++c) std::swap(a(j, c), a(piv, c));
    }
    const double inv = 1.0 / a(j, j);
    for (Index i = j + 1; i < m; ++i) a(i, j) *= inv;
    // Trailing rank-1 update.
    for (Index c = j + 1; c < n; ++c) {
      const double ajc = a(j, c);
      if (ajc == 0.0) continue;
      axpy(m - j - 1, -ajc, &a(j + 1, j), &a(j + 1, c));
    }
  }
  return true;
}

void apply_pivots(const std::vector<Index>& ipiv, std::vector<Index>& rows) {
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    const auto piv = static_cast<std::size_t>(ipiv[k]);
    if (piv != k) std::swap(rows[k], rows[piv]);
  }
}

}  // namespace qrgrid

// Column-major dense matrix container and lightweight strided views.
//
// Storage convention follows LAPACK: element (i, j) of a view with leading
// dimension `ld` lives at data[i + j*ld]. All qrgrid kernels operate on
// views so that submatrices (panels, trailing blocks, triangles) can be
// addressed without copies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace qrgrid {

using Index = std::int64_t;

/// Non-owning mutable view of a column-major matrix block.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, Index rows, Index cols, Index ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    QRGRID_CHECK(rows >= 0 && cols >= 0 && ld >= rows);
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index ld() const { return ld_; }
  double* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(Index i, Index j) const {
    return data_[i + j * ld_];
  }

  /// Sub-block of `nr` x `nc` starting at (r0, c0).
  MatrixView block(Index r0, Index c0, Index nr, Index nc) const {
    QRGRID_CHECK_MSG(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_,
                     "block(" << r0 << "," << c0 << "," << nr << "," << nc
                              << ") of " << rows_ << "x" << cols_);
    return MatrixView(data_ + r0 + c0 * ld_, nr, nc, ld_);
  }

  /// Column j as an (rows x 1) view.
  MatrixView col(Index j) const { return block(0, j, rows_, 1); }

 private:
  double* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
  Index ld_ = 0;
};

/// Non-owning read-only view; implicitly constructible from MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, Index rows, Index cols, Index ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    QRGRID_CHECK(rows >= 0 && cols >= 0 && ld >= rows);
  }
  ConstMatrixView(const MatrixView& v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index ld() const { return ld_; }
  const double* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const double& operator()(Index i, Index j) const {
    return data_[i + j * ld_];
  }

  ConstMatrixView block(Index r0, Index c0, Index nr, Index nc) const {
    QRGRID_CHECK_MSG(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_,
                     "block(" << r0 << "," << c0 << "," << nr << "," << nc
                              << ") of " << rows_ << "x" << cols_);
    return ConstMatrixView(data_ + r0 + c0 * ld_, nr, nc, ld_);
  }

  ConstMatrixView col(Index j) const { return block(0, j, rows_, 1); }

 private:
  const double* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
  Index ld_ = 0;
};

/// Owning column-major matrix (contiguous, ld == rows).
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    QRGRID_CHECK(rows >= 0 && cols >= 0);
  }

  /// Deep copy of an arbitrary view into a fresh contiguous matrix.
  static Matrix copy_of(ConstMatrixView v);

  /// n x n identity.
  static Matrix identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index ld() const { return rows_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(Index i, Index j) {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  const double& operator()(Index i, Index j) const {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  MatrixView view() { return MatrixView(data(), rows_, cols_, rows_); }
  ConstMatrixView view() const {
    return ConstMatrixView(data(), rows_, cols_, rows_);
  }
  MatrixView block(Index r0, Index c0, Index nr, Index nc) {
    return view().block(r0, c0, nr, nc);
  }
  ConstMatrixView block(Index r0, Index c0, Index nr, Index nc) const {
    return view().block(r0, c0, nr, nc);
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

/// Copies src into dst element-wise; shapes must match.
void copy(ConstMatrixView src, MatrixView dst);

/// dst := 0 everywhere.
void set_zero(MatrixView dst);

/// Keeps the upper triangle (including diagonal) of `a`, zeroing below.
void zero_below_diagonal(MatrixView a);

}  // namespace qrgrid

#include "linalg/tpqrt.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"

namespace qrgrid {

void tpqrt_tt(MatrixView r1, MatrixView r2, std::vector<double>& tau) {
  const Index n = r1.rows();
  QRGRID_CHECK(r1.cols() == n && r2.rows() == n && r2.cols() == n);
  tau.assign(static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    // Build the reflector annihilating R2(0:j+1, j) against pivot R1(j, j).
    // The reflector vector is [1 (at R1 row j); 0...0; v2(0:j+1)].
    const Index len = j + 1;  // nonzero rows of column j of R2
    // Gather x = R2(0:len, j) is already contiguous (column storage).
    double* x = &r2(0, j);
    Reflector refl = larfg(r1(j, j), len, x);
    tau[static_cast<std::size_t>(j)] = refl.tau;
    r1(j, j) = refl.beta;
    if (refl.tau == 0.0) continue;
    // Update trailing columns k > j: only row j of R1 and rows 0..j of R2.
    for (Index k = j + 1; k < n; ++k) {
      double w = r1(j, k) + dot(len, x, &r2(0, k));
      w *= refl.tau;
      r1(j, k) -= w;
      axpy(len, -w, x, &r2(0, k));
    }
  }
}

void tpmqrt_tt(Trans trans, ConstMatrixView v2, const std::vector<double>& tau,
               MatrixView c1, MatrixView c2) {
  const Index n = v2.rows();
  const Index p = c1.cols();
  QRGRID_CHECK(v2.cols() == n && c1.rows() == n && c2.rows() == n &&
               c2.cols() == p);
  // Q = H_0 H_1 ... H_{n-1}. Q^T C applies H_0 first; Q C applies H_{n-1}
  // first. Reflector j: rows {top j} U {bottom 0..j}.
  auto apply_one = [&](Index j) {
    const double tj = tau[static_cast<std::size_t>(j)];
    if (tj == 0.0) return;
    const Index len = j + 1;
    const double* v = &v2(0, j);
    for (Index k = 0; k < p; ++k) {
      double w = c1(j, k) + dot(len, v, &c2(0, k));
      w *= tj;
      c1(j, k) -= w;
      axpy(len, -w, v, &c2(0, k));
    }
  };
  if (trans == Trans::Yes) {
    for (Index j = 0; j < n; ++j) apply_one(j);
  } else {
    for (Index j = n - 1; j >= 0; --j) apply_one(j);
  }
}

void tpqrt_td(MatrixView r1, MatrixView b, std::vector<double>& tau) {
  const Index n = r1.rows();
  const Index m = b.rows();
  QRGRID_CHECK(r1.cols() == n && b.cols() == n);
  tau.assign(static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    // Reflector annihilates the whole column j of B against R1(j, j).
    double* x = &b(0, j);
    Reflector refl = larfg(r1(j, j), m, x);
    tau[static_cast<std::size_t>(j)] = refl.tau;
    r1(j, j) = refl.beta;
    if (refl.tau == 0.0) continue;
    for (Index k = j + 1; k < n; ++k) {
      double w = r1(j, k) + dot(m, x, &b(0, k));
      w *= refl.tau;
      r1(j, k) -= w;
      axpy(m, -w, x, &b(0, k));
    }
  }
}

void tpmqrt_td(Trans trans, ConstMatrixView v2, const std::vector<double>& tau,
               MatrixView c1, MatrixView c2) {
  const Index n = v2.cols();
  const Index m = v2.rows();
  const Index p = c1.cols();
  QRGRID_CHECK(c1.rows() == n && c2.rows() == m && c2.cols() == p);
  auto apply_one = [&](Index j) {
    const double tj = tau[static_cast<std::size_t>(j)];
    if (tj == 0.0) return;
    const double* v = &v2(0, j);
    for (Index k = 0; k < p; ++k) {
      double w = c1(j, k) + dot(m, v, &c2(0, k));
      w *= tj;
      c1(j, k) -= w;
      axpy(m, -w, v, &c2(0, k));
    }
  };
  if (trans == Trans::Yes) {
    for (Index j = 0; j < n; ++j) apply_one(j);
  } else {
    for (Index j = n - 1; j >= 0; --j) apply_one(j);
  }
}

}  // namespace qrgrid

// Cholesky factorization, the substrate for the CholeskyQR baseline and the
// communication-avoiding Cholesky extension (paper §VI).
#pragma once

#include "linalg/matrix.hpp"

namespace qrgrid {

/// Factors the symmetric positive definite matrix stored in the upper
/// triangle of `a` as A = R^T R, overwriting the upper triangle with R.
/// Returns false (leaving `a` partially overwritten) if a non-positive
/// pivot is met, i.e. A is not numerically positive definite.
[[nodiscard]] bool potrf_upper(MatrixView a);

}  // namespace qrgrid

#include "sched/wan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "sched/profiler.hpp"
#include "sched/snapshot.hpp"
#include "sched/telemetry.hpp"

namespace qrgrid::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Residual below this fraction of the pool's ADMISSION size is FP dust
/// from progressive filling, not demand: repeated partial drains of a
/// huge pool can leave a remainder bigger than any fixed byte slack yet
/// meaningless relative to the bytes already moved, and such a pool used
/// to stay "live" through extra near-zero-length advance steps.
constexpr double kRetireRelEps = 1e-12;

/// Does an interval that moves `moved` bytes empty a pool holding
/// `bytes` (of `initial` bytes at admission)? Slack is half a BYTE,
/// deliberately byte- not time-scale:
/// (a) when the caller's advance target is this pool's own drain event
/// the two sides differ only by rounding of the same bytes/rate
/// division; (b) an unrelated event landing a hair earlier over-credits
/// at most half a byte rather than rate x clock-epsilon; and (c) no
/// sub-half-byte remainder can survive and stall the event loop with a
/// drain step too small to advance a large virtual clock. For pools
/// above 5e11 bytes the relative term takes over, retiring residuals
/// below 1e-12 of the original pool that the absolute slack would keep
/// alive.
bool covers(double moved, double bytes, double initial) {
  return moved >= bytes - std::max(0.5, kRetireRelEps * initial);
}

/// Min-heap order over pending pool activations; ties break by (flow,
/// pool) so heap mutations are fully deterministic.
struct ActivationAfter {
  template <typename A>
  bool operator()(const A& a, const A& b) const {
    if (a.t_s != b.t_s) return a.t_s > b.t_s;
    if (a.flow != b.flow) return a.flow > b.flow;
    return a.pool > b.pool;
  }
};

}  // namespace

WanFairness wan_fairness_of(const std::string& name) {
  if (name == "equal") return WanFairness::kEqualSplit;
  if (name == "maxmin") return WanFairness::kMaxMin;
  throw Error("unknown WAN fairness '" + name + "' (equal|maxmin)");
}

std::string wan_fairness_name(WanFairness fairness) {
  switch (fairness) {
    case WanFairness::kEqualSplit: return "equal";
    case WanFairness::kMaxMin: return "maxmin";
  }
  return "?";
}

void EqualSplitAllocator::assign_rates(const std::vector<WanDemand>& demands,
                                       const std::vector<double>& capacity_Bps,
                                       std::vector<double>& rate_Bps) const {
  // Flow-weighted user counts: fracs sum to 1 per flow per link, so a
  // split flow still counts once. Unsplit demands contribute exactly
  // 1.0 each, making the sum the same integer-valued double the PR-3
  // kernel divided by.
  std::vector<double> users(capacity_Bps.size(), 0.0);
  for (const WanDemand& d : demands) {
    for (int k = 0; k < d.nlinks; ++k) {
      users[static_cast<std::size_t>(d.links[k])] += d.frac[k];
    }
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const WanDemand& d = demands[i];
    double rate = kInf;
    for (int k = 0; k < d.nlinks; ++k) {
      const auto l = static_cast<std::size_t>(d.links[k]);
      rate = std::min(rate, capacity_Bps[l] / users[l] * d.frac[k]);
    }
    rate_Bps[i] = rate;
  }
}

void MaxMinAllocator::assign_rates(const std::vector<WanDemand>& demands,
                                   const std::vector<double>& capacity_Bps,
                                   std::vector<double>& rate_Bps) const {
  const std::size_t n = demands.size();
  std::vector<double> remaining = capacity_Bps;
  // Flow-weighted: W[l] sums the fracs, so a flow split across several
  // pools of one link fills as one session, not several.
  std::vector<double> users(capacity_Bps.size(), 0.0);
  for (const WanDemand& d : demands) {
    for (int k = 0; k < d.nlinks; ++k) {
      users[static_cast<std::size_t>(d.links[k])] += d.frac[k];
    }
  }
  // Progressive filling: the tightest link's per-flow share freezes every
  // demand crossing it (at share x its frac); the frozen bandwidth
  // leaves every link those demands touch, and the next-tightest link
  // fills with what is left. Shares are non-decreasing across rounds
  // (the frozen share was the minimum), which is the max-min property;
  // the clamp guards the corner where a demand's fracs differ across
  // its links and FP dust would drive a remainder negative.
  constexpr double kUserEps = 1e-12;
  std::vector<char> frozen(n, 0);
  std::size_t left = n;
  while (left > 0) {
    double share = kInf;
    std::size_t bottleneck = 0;
    bool found = false;
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      if (users[l] <= kUserEps) continue;
      const double s = remaining[l] / users[l];
      if (!found || s < share) {
        share = s;
        bottleneck = l;
        found = true;
      }
    }
    QRGRID_CHECK_MSG(found, "max-min filling lost its demands");
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      const WanDemand& d = demands[i];
      double bottleneck_frac = -1.0;
      for (int k = 0; k < d.nlinks; ++k) {
        if (static_cast<std::size_t>(d.links[k]) == bottleneck) {
          bottleneck_frac = d.frac[k];
        }
      }
      if (bottleneck_frac < 0.0) continue;
      const double rate = share * bottleneck_frac;
      rate_Bps[i] = rate;
      frozen[i] = 1;
      --left;
      for (int k = 0; k < d.nlinks; ++k) {
        const auto l = static_cast<std::size_t>(d.links[k]);
        remaining[l] = std::max(0.0, remaining[l] - rate);
        users[l] = std::max(0.0, users[l] - d.frac[k]);
      }
    }
  }
}

std::unique_ptr<WanAllocator> make_wan_allocator(WanFairness fairness) {
  switch (fairness) {
    case WanFairness::kEqualSplit:
      return std::make_unique<EqualSplitAllocator>();
    case WanFairness::kMaxMin: return std::make_unique<MaxMinAllocator>();
  }
  throw Error("make_wan_allocator: unknown fairness value");
}

GridWanModel::GridWanModel(int num_clusters, double link_Bps,
                           double backbone_Bps, WanFairness fairness,
                           std::vector<double> pair_Bps)
    : num_clusters_(num_clusters),
      link_Bps_(link_Bps),
      backbone_Bps_(backbone_Bps),
      trunk_constrained_(std::isfinite(backbone_Bps)),
      fairness_(fairness),
      pair_Bps_(std::move(pair_Bps)),
      allocator_(make_wan_allocator(fairness)),
      up_busy_s_(static_cast<std::size_t>(num_clusters), 0.0),
      down_busy_s_(static_cast<std::size_t>(num_clusters), 0.0) {
  QRGRID_CHECK(num_clusters >= 1 && link_Bps > 0.0 && backbone_Bps > 0.0);
  const auto nc = static_cast<std::size_t>(num_clusters);
  QRGRID_CHECK_MSG(pair_Bps_.empty() || pair_Bps_.size() == nc * nc,
                   "pair horizon matrix must be sites x sites ("
                       << pair_Bps_.size() << " != " << nc * nc << ")");
  for (double b : pair_Bps_) QRGRID_CHECK(b >= 0.0);
  capacity_.assign(2 * nc + 1 + (pair_Bps_.empty() ? 0 : nc * nc), 0.0);
  for (std::size_t c = 0; c < nc; ++c) {
    capacity_[c] = link_Bps_;
    capacity_[nc + c] = link_Bps_;
  }
  capacity_[2 * nc] = backbone_Bps_;
  for (std::size_t p = 0; p < pair_Bps_.size(); ++p) {
    capacity_[2 * nc + 1 + p] = pair_Bps_[p];
  }
  link_users_.assign(capacity_.size(), 0);
  dirty_mark_.assign(capacity_.size(), 0);
  comp_mark_.assign(capacity_.size(), 0);
  cluster_load_.assign(nc, 0);
}

int GridWanModel::link_id(const Pool& pool) const {
  switch (pool.link) {
    case Pool::Link::kUplink: return pool.cluster;
    case Pool::Link::kDownlink: return num_clusters_ + pool.cluster;
    case Pool::Link::kBackbone: break;
  }
  return 2 * num_clusters_;
}

int GridWanModel::links_of(const Pool& pool, int out[3]) const {
  int n = 0;
  out[n++] = link_id(pool);
  if (pool.link == Pool::Link::kUplink) {
    if (pair_aware() && pool.peer >= 0) {
      const auto p = static_cast<std::size_t>(pool.cluster) *
                         static_cast<std::size_t>(num_clusters_) +
                     static_cast<std::size_t>(pool.peer);
      if (pair_Bps_[p] > 0.0) {  // 0 = unconstrained pair
        out[n++] = 2 * num_clusters_ + 1 + static_cast<int>(p);
      }
    }
    // Under max-min the trunk is a link the uplink demand crosses, not a
    // parallel pool: a flow bottlenecked at its site link stops charging
    // the backbone for capacity it cannot use. An infinite backbone is
    // never that bottleneck, so it drops out of the constraint graph
    // entirely (allocation-equivalent, and it keeps rebalance components
    // from chaining every flow through one shared link).
    if (fairness_ == WanFairness::kMaxMin && trunk_constrained_) {
      out[n++] = 2 * num_clusters_;
    }
  }
  return n;
}

void GridWanModel::mark_dirty(int link) {
  const auto l = static_cast<std::size_t>(link);
  if (dirty_mark_[l] == 0) {
    dirty_mark_[l] = 1;
    dirty_links_.push_back(link);
  }
}

void GridWanModel::activate_pool(Flow& flow, int pool) {
  flow.active[static_cast<std::size_t>(pool)] = 1;
  ++active_pools_;
  int links[3];
  const int nlinks = links_of(flow.pools[static_cast<std::size_t>(pool)], links);
  for (int k = 0; k < nlinks; ++k) {
    if (link_users_[static_cast<std::size_t>(links[k])]++ == 0) ++busy_links_;
    mark_dirty(links[k]);
  }
}

void GridWanModel::deactivate_pool(Flow& flow, int pool) {
  flow.active[static_cast<std::size_t>(pool)] = 0;
  --active_pools_;
  int links[3];
  const int nlinks = links_of(flow.pools[static_cast<std::size_t>(pool)], links);
  for (int k = 0; k < nlinks; ++k) {
    if (--link_users_[static_cast<std::size_t>(links[k])] == 0) --busy_links_;
    mark_dirty(links[k]);
  }
}

bool GridWanModel::compute_frac_sensitive(const Flow& flow) const {
  int links_a[3];
  int links_b[3];
  for (std::size_t a = 0; a < flow.pools.size(); ++a) {
    if (flow.pools[a].bytes <= 0.0) continue;
    const int na = links_of(flow.pools[a], links_a);
    for (std::size_t b = a + 1; b < flow.pools.size(); ++b) {
      if (flow.pools[b].bytes <= 0.0) continue;
      const int nb = links_of(flow.pools[b], links_b);
      for (int i = 0; i < na; ++i) {
        for (int k = 0; k < nb; ++k) {
          if (links_a[i] == links_b[k]) return true;
        }
      }
    }
  }
  return false;
}

void GridWanModel::count_load(Flow& flow) {
  flow.counted_clusters.clear();
  flow.counted_trunk = false;
  for (const Pool& pool : flow.pools) {
    if (pool.bytes <= 0.0) continue;
    if (pool.link != Pool::Link::kBackbone) {
      bool seen = false;
      for (const int c : flow.counted_clusters) {
        if (c == pool.cluster) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        flow.counted_clusters.push_back(pool.cluster);
        ++cluster_load_[static_cast<std::size_t>(pool.cluster)];
      }
    }
    if (pool.link != Pool::Link::kDownlink && !flow.counted_trunk) {
      flow.counted_trunk = true;  // uplink bytes cross the trunk once
      ++trunk_load_;
    }
  }
}

void GridWanModel::uncount_load(Flow& flow) {
  for (const int c : flow.counted_clusters) {
    --cluster_load_[static_cast<std::size_t>(c)];
  }
  flow.counted_clusters.clear();
  if (flow.counted_trunk) {
    --trunk_load_;
    flow.counted_trunk = false;
  }
}

void GridWanModel::refresh(double now_s) {
  // Pop every activation due by now_s into the active set. The calendar
  // is a min-heap on t_s, so once the top is in the future, every entry
  // is — popping dead future entries later can never uncover a due one.
  while (!activations_.empty() && activations_.front().t_s <= now_s) {
    const Activation top = activations_.front();
    std::pop_heap(activations_.begin(), activations_.end(),
                  ActivationAfter{});
    activations_.pop_back();
    const auto it = slot_of_.find(top.flow);
    if (it == slot_of_.end()) continue;  // retired before activating
    Flow& flow = flows_[static_cast<std::size_t>(it->second)];
    const auto j = static_cast<std::size_t>(top.pool);
    if (flow.pools[j].bytes <= 0.0 || flow.active[j] != 0) continue;
    activate_pool(flow, top.pool);
    ++rebalance_events_;
  }
  if (!dirty_links_.empty()) rebalance(now_s);
}

void GridWanModel::rebalance(double now_s) {
  // Seed the component from the dirty links; the marks move to
  // comp_mark_ so the dirty list can restart empty.
  comp_links_.clear();
  for (const int l : dirty_links_) {
    const auto li = static_cast<std::size_t>(l);
    dirty_mark_[li] = 0;
    if (comp_mark_[li] == 0) {
      comp_mark_[li] = 1;
      comp_links_.push_back(l);
    }
  }
  dirty_links_.clear();
  if (active_pools_ == 0) {
    // Nothing left to rate: the last active pool drained or retired.
    for (const int l : comp_links_) comp_mark_[static_cast<std::size_t>(l)] = 0;
    comp_links_.clear();
    return;
  }
  PhaseScope prof(profiler_, ProfilePhase::kWanRebalance);
  // Close over flows transitively sharing links: a pool with ANY link in
  // the component drags all its links in (under max-min every uplink
  // pool crosses the trunk, so uplink-side events close over the
  // backbone component quickly; downlink pools stay their own islands).
  bool grew = true;
  while (grew) {
    grew = false;
    for (const int slot : live_) {
      const Flow& flow = flows_[static_cast<std::size_t>(slot)];
      if (flow.undrained == 0) continue;
      for (std::size_t j = 0; j < flow.pools.size(); ++j) {
        if (flow.active[j] == 0) continue;
        int links[3];
        const int nlinks = links_of(flow.pools[j], links);
        bool any = false;
        bool all = true;
        for (int k = 0; k < nlinks; ++k) {
          if (comp_mark_[static_cast<std::size_t>(links[k])] != 0) {
            any = true;
          } else {
            all = false;
          }
        }
        if (any && !all) {
          for (int k = 0; k < nlinks; ++k) {
            const auto li = static_cast<std::size_t>(links[k]);
            if (comp_mark_[li] == 0) {
              comp_mark_[li] = 1;
              comp_links_.push_back(links[k]);
            }
          }
          grew = true;
        }
      }
    }
  }
  // Collect the component's demands in live (admission) order — the
  // identical subsequence, frac arithmetic, and accumulation order the
  // global demand view would hand the allocator, so the restricted fill
  // below reproduces the global fill's rates bit-for-bit on them.
  comp_refs_.clear();
  comp_demands_.clear();
  if (flow_link_scratch_.size() != capacity_.size()) {
    flow_link_scratch_.assign(capacity_.size(), 0.0);
  }
  std::vector<double>& flow_link_bytes = flow_link_scratch_;
  std::vector<int>& touched = touched_scratch_;
  for (const int slot : live_) {
    const Flow& flow = flows_[static_cast<std::size_t>(slot)];
    if (flow.undrained == 0) continue;
    touched.clear();
    bool flow_in = false;
    for (std::size_t j = 0; j < flow.pools.size(); ++j) {
      if (flow.active[j] == 0) continue;
      int links[3];
      const int nlinks = links_of(flow.pools[j], links);
      // Closure invariant: any marked link on a pool means all marked.
      if (comp_mark_[static_cast<std::size_t>(links[0])] == 0) continue;
      flow_in = true;
      for (int k = 0; k < nlinks; ++k) {
        const auto li = static_cast<std::size_t>(links[k]);
        if (flow_link_bytes[li] == 0.0) touched.push_back(links[k]);
        flow_link_bytes[li] += flow.pools[j].bytes;
      }
    }
    if (!flow_in) continue;
    for (std::size_t j = 0; j < flow.pools.size(); ++j) {
      if (flow.active[j] == 0) continue;
      const Pool& pool = flow.pools[j];
      WanDemand d;
      d.nlinks = links_of(pool, d.links);
      if (comp_mark_[static_cast<std::size_t>(d.links[0])] == 0) continue;
      d.bytes = pool.bytes;
      d.flow = flow.id;
      for (int k = 0; k < d.nlinks; ++k) {
        d.frac[k] =
            pool.bytes / flow_link_bytes[static_cast<std::size_t>(d.links[k])];
      }
      comp_refs_.push_back({slot, static_cast<int>(j)});
      comp_demands_.push_back(d);
    }
    for (const int l : touched) {
      flow_link_bytes[static_cast<std::size_t>(l)] = 0.0;
    }
  }
  ++rebalance_recomputes_;
  rebalance_links_touched_ += static_cast<std::uint64_t>(comp_links_.size());
  if (!comp_refs_.empty()) {
    comp_rates_.assign(comp_demands_.size(), 0.0);
    allocator_->assign_rates(comp_demands_, capacity_, comp_rates_);
    for (std::size_t k = 0; k < comp_refs_.size(); ++k) {
      Flow& flow = flows_[static_cast<std::size_t>(comp_refs_[k].flow)];
      flow.rate_Bps[static_cast<std::size_t>(comp_refs_[k].pool)] =
          comp_rates_[k];
    }
    int comp_busy = 0;
    for (const int l : comp_links_) {
      if (link_users_[static_cast<std::size_t>(l)] > 0) ++comp_busy;
    }
    if (busy_links_ > 0 && comp_busy == busy_links_) ++rebalance_full_refills_;
  }
  if (oracle_check_) {
    // Differential oracle: the historical global fill over the full
    // activated view must agree with every cached rate — the component
    // argument says exactly, not approximately.
    demand_view(now_s, /*include_pending=*/false, refs_scratch_,
                demands_scratch_, rates_scratch_);
    QRGRID_CHECK_MSG(
        refs_scratch_.size() == static_cast<std::size_t>(active_pools_),
        "incremental active set diverged from the time-based view");
    for (std::size_t k = 0; k < refs_scratch_.size(); ++k) {
      const Flow& flow = flows_[static_cast<std::size_t>(refs_scratch_[k].flow)];
      const double cached =
          flow.rate_Bps[static_cast<std::size_t>(refs_scratch_[k].pool)];
      max_oracle_error_ = std::max(
          max_oracle_error_, std::abs(cached - rates_scratch_[k]));
    }
  }
  for (const int l : comp_links_) comp_mark_[static_cast<std::size_t>(l)] = 0;
  comp_links_.clear();
}

void GridWanModel::demand_view(double now_s, bool include_pending,
                               std::vector<PoolRef>& refs,
                               std::vector<WanDemand>& demands,
                               std::vector<double>& rates) const {
  refs.clear();
  demands.clear();
  // Per-flow per-link byte totals of the included pools, so each
  // demand's frac makes the flow count as ONE user per link however its
  // pools are split. Reset via the touched list — capacity_ can be
  // sites^2-sized and most flows touch a handful of links.
  if (flow_link_scratch_.size() != capacity_.size()) {
    flow_link_scratch_.assign(capacity_.size(), 0.0);
  }
  std::vector<double>& flow_link_bytes = flow_link_scratch_;
  std::vector<int>& touched = touched_scratch_;
  auto included = [&](const Pool& pool) {
    return pool.bytes > 0.0 &&
           (include_pending || pool.activation_s <= now_s);
  };
  // live_ holds alive slots in admission (id) order — the same flow
  // order the historical all-flows walk produced, so the allocators'
  // floating-point accumulation order (and thus every rate) is
  // byte-identical while the cost drops to O(live).
  for (const int slot : live_) {
    const Flow& flow = flows_[static_cast<std::size_t>(slot)];
    if (flow.undrained == 0) continue;
    touched.clear();
    for (const Pool& pool : flow.pools) {
      if (!included(pool)) continue;
      int links[3];
      const int nlinks = links_of(pool, links);
      for (int k = 0; k < nlinks; ++k) {
        // Exact-zero here is a MEMBERSHIP marker, not drain arithmetic:
        // the touched list resets entries to literal 0.0 below, so the
        // comparison is exact by construction. Near-empty pools are
        // retired by the relative epsilon in covers(), never by this
        // check.
        if (flow_link_bytes[static_cast<std::size_t>(links[k])] == 0.0) {
          touched.push_back(links[k]);
        }
        flow_link_bytes[static_cast<std::size_t>(links[k])] += pool.bytes;
      }
    }
    for (std::size_t j = 0; j < flow.pools.size(); ++j) {
      const Pool& pool = flow.pools[j];
      if (!included(pool)) continue;
      WanDemand d;
      d.bytes = pool.bytes;
      d.flow = flow.id;
      d.nlinks = links_of(pool, d.links);
      for (int k = 0; k < d.nlinks; ++k) {
        // x / x == 1.0 exactly for an unsplit pool, which is what keeps
        // the default equal-split path bit-identical to PR-3.
        d.frac[k] =
            pool.bytes /
            flow_link_bytes[static_cast<std::size_t>(d.links[k])];
      }
      refs.push_back({slot, static_cast<int>(j)});
      demands.push_back(d);
    }
    for (const int l : touched) {
      flow_link_bytes[static_cast<std::size_t>(l)] = 0.0;
    }
  }
  rates.assign(demands.size(), 0.0);
  allocator_->assign_rates(demands, capacity_, rates);
}

int GridWanModel::admit(double now_s, std::vector<Pool> pools) {
  Flow flow;
  flow.alive = true;
  for (Pool& pool : pools) {
    QRGRID_CHECK(pool.bytes >= 0.0);
    QRGRID_CHECK(pool.link == Pool::Link::kBackbone ||
                 (pool.cluster >= 0 && pool.cluster < num_clusters_));
    QRGRID_CHECK(pool.peer < num_clusters_);
    // Max-min carries the trunk constraint on the uplink demands that
    // cross it; a parallel backbone pool would double-count them.
    if (fairness_ == WanFairness::kMaxMin &&
        pool.link == Pool::Link::kBackbone) {
      pool.bytes = 0.0;
      continue;
    }
    if (pool.bytes > 0.0) ++flow.undrained;
    flow.pools.push_back(pool);
  }
  flow.moved_bytes.assign(flow.pools.size(), 0.0);
  flow.initial_bytes.reserve(flow.pools.size());
  for (const Pool& pool : flow.pools) flow.initial_bytes.push_back(pool.bytes);
  flow.drained_at_s = now_s;  // stands until a pool actually drains later
  const int id = next_flow_id_++;
  flow.id = id;
  int slot;
  if (free_slots_.empty()) {
    slot = static_cast<int>(flows_.size());
    flows_.push_back(std::move(flow));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    flows_[static_cast<std::size_t>(slot)] = std::move(flow);
  }
  slot_of_.emplace(id, slot);
  // Monotone ids keep live_ sorted by id: admission order, which
  // demand_view depends on for byte-identical allocator arithmetic.
  live_.push_back(slot);
  peak_live_ = std::max(peak_live_, static_cast<int>(live_.size()));
  Flow& admitted = flows_[static_cast<std::size_t>(slot)];
  for (std::size_t j = 0; j < admitted.pools.size(); ++j) {
    if (admitted.pools[j].bytes > 0.0 &&
        admitted.pools[j].activation_s > now_s) {
      activations_.push_back(
          {admitted.pools[j].activation_s, id, static_cast<int>(j)});
      std::push_heap(activations_.begin(), activations_.end(),
                     ActivationAfter{});
    }
  }
  admitted.frac_sensitive = compute_frac_sensitive(admitted);
  count_load(admitted);
  if (fairness_ == WanFairness::kMaxMin) {
    admitted.rate_Bps.assign(admitted.pools.size(), 0.0);
    admitted.active.assign(admitted.pools.size(), 0);
    for (std::size_t j = 0; j < admitted.pools.size(); ++j) {
      if (admitted.pools[j].bytes > 0.0 &&
          admitted.pools[j].activation_s <= now_s) {
        activate_pool(admitted, static_cast<int>(j));
      }
    }
    if (admitted.undrained > 0) ++rebalance_events_;
  }
  if (admitted.undrained > 0) bump_generation();
  if (tracer_ != nullptr) {
    ServiceTraceEvent ev;
    ev.t_s = now_s;
    ev.kind = TraceKind::kWanFlowOpen;
    ev.flow = id;
    for (const Pool& pool : admitted.pools) ev.value += pool.bytes;
    ev.value2 = static_cast<double>(admitted.pools.size());
    tracer_->record(std::move(ev));
  }
  return id;
}

void GridWanModel::advance(double from_s, double to_s) {
  const double dt = to_s - from_s;
  if (dt <= 0.0) return;

  int pools_drained = 0;
  bool fracs_moved = false;
  if (fairness_ == WanFairness::kMaxMin) {
    // Incremental path: pull due activations in, repair rates if any
    // link is dirty, then drain against the CACHED per-pool rates —
    // bit-identical to the historical recompute-at-every-step values.
    refresh(from_s);
    const auto nc = static_cast<std::size_t>(num_clusters_);
    for (std::size_t c = 0; c < nc; ++c) {
      if (link_users_[c] > 0) up_busy_s_[c] += dt;
      if (link_users_[nc + c] > 0) down_busy_s_[c] += dt;
    }
    // With an unconstrained trunk no demand maps onto the backbone link,
    // so fall back to the trunk-load counter for the busy statistic.
    if (link_users_[2 * nc] > 0 ||
        (!trunk_constrained_ && trunk_load_ > 0)) {
      backbone_busy_s_ += dt;
    }

    for (const int slot : live_) {
      Flow& flow = flows_[static_cast<std::size_t>(slot)];
      if (flow.undrained == 0) continue;
      bool flow_active = false;
      int flow_drained = 0;
      for (std::size_t j = 0; j < flow.pools.size(); ++j) {
        if (flow.active[j] == 0) continue;
        flow_active = true;
        Pool& pool = flow.pools[j];
        const double moved = flow.rate_Bps[j] * dt;
        if (covers(moved, pool.bytes, flow.initial_bytes[j])) {
          flow.moved_bytes[j] += pool.bytes;
          pool.bytes = 0.0;
          if (--flow.undrained == 0) flow.drained_at_s = to_s;
          deactivate_pool(flow, static_cast<int>(j));
          ++rebalance_events_;
          ++flow_drained;
        } else {
          flow.moved_bytes[j] += moved;
          pool.bytes -= moved;
        }
      }
      if (flow_drained > 0) {
        uncount_load(flow);
        count_load(flow);
        pools_drained += flow_drained;
      }
      if (flow.frac_sensitive) {
        if (flow_active) {
          // Link-sharing pools: this flow's byte movement shifted its
          // per-link fracs, so its remaining active links must re-fill
          // even though no pool drained or activated.
          fracs_moved = true;
          for (std::size_t j = 0; j < flow.pools.size(); ++j) {
            if (flow.active[j] == 0) continue;
            int links[3];
            const int nlinks = links_of(flow.pools[j], links);
            for (int k = 0; k < nlinks; ++k) mark_dirty(links[k]);
          }
        }
        if (flow_drained > 0) {
          flow.frac_sensitive = compute_frac_sensitive(flow);
        }
      }
    }
  } else {
    demand_view(from_s, /*include_pending=*/false, refs_scratch_,
                demands_scratch_, rates_scratch_);

    // A link is busy while at least one activated, undrained demand
    // crosses it.
    std::vector<char> up_busy(static_cast<std::size_t>(num_clusters_), 0);
    std::vector<char> down_busy(static_cast<std::size_t>(num_clusters_), 0);
    bool backbone_busy = false;
    for (const WanDemand& d : demands_scratch_) {
      for (int k = 0; k < d.nlinks; ++k) {
        const int l = d.links[k];
        if (l < num_clusters_) {
          up_busy[static_cast<std::size_t>(l)] = 1;
        } else if (l < 2 * num_clusters_) {
          down_busy[static_cast<std::size_t>(l - num_clusters_)] = 1;
        } else if (l == 2 * num_clusters_) {
          backbone_busy = true;
        }
      }
    }
    for (int c = 0; c < num_clusters_; ++c) {
      if (up_busy[static_cast<std::size_t>(c)]) {
        up_busy_s_[static_cast<std::size_t>(c)] += dt;
      }
      if (down_busy[static_cast<std::size_t>(c)]) {
        down_busy_s_[static_cast<std::size_t>(c)] += dt;
      }
    }
    if (backbone_busy) backbone_busy_s_ += dt;

    for (std::size_t k = 0; k < refs_scratch_.size(); ++k) {
      Flow& flow = flows_[static_cast<std::size_t>(refs_scratch_[k].flow)];
      Pool& pool = flow.pools[static_cast<std::size_t>(refs_scratch_[k].pool)];
      const auto j = static_cast<std::size_t>(refs_scratch_[k].pool);
      const double moved = rates_scratch_[k] * dt;
      if (flow.frac_sensitive) fracs_moved = true;
      if (covers(moved, pool.bytes, flow.initial_bytes[j])) {
        flow.moved_bytes[j] += pool.bytes;
        pool.bytes = 0.0;
        if (--flow.undrained == 0) flow.drained_at_s = to_s;
        uncount_load(flow);
        count_load(flow);
        if (flow.frac_sensitive) {
          flow.frac_sensitive = compute_frac_sensitive(flow);
        }
        ++pools_drained;
      } else {
        flow.moved_bytes[j] += moved;
        pool.bytes -= moved;
      }
    }
  }
  // Structural changes (and sensitive byte movement) invalidate the
  // drain-estimate basis; plain byte drains of frac-insensitive flows
  // leave it exact.
  if (pools_drained > 0 || fracs_moved) bump_generation();
  if (tracer_ != nullptr) {
    // The share structure changes when a pool runs dry or a pending pool
    // activates inside the step — the allocator re-splits either way.
    int pools_activated = 0;
    for (const int slot : live_) {
      const Flow& flow = flows_[static_cast<std::size_t>(slot)];
      for (const Pool& pool : flow.pools) {
        if (pool.bytes > 0.0 && pool.activation_s > from_s &&
            pool.activation_s <= to_s) {
          ++pools_activated;
        }
      }
    }
    if (pools_drained > 0 || pools_activated > 0) {
      ServiceTraceEvent ev;
      ev.t_s = to_s;
      ev.kind = TraceKind::kWanRebalance;
      ev.value = pools_drained;
      ev.value2 = pools_activated;
      tracer_->record(std::move(ev));
    }
  }
}

double GridWanModel::next_event_s(double now_s) const {
  double next = kInf;
  if (fairness_ == WanFairness::kMaxMin) {
    // Lazy maintenance from a const query: activations due by now_s and
    // any pending rebalance are absorbed here, which is also what
    // coalesces a same-instant burst of opens/retires/drains into ONE
    // recompute — the service consults the horizon once per step.
    const_cast<GridWanModel*>(this)->refresh(now_s);
    for (const int slot : live_) {
      const Flow& flow = flows_[static_cast<std::size_t>(slot)];
      if (flow.undrained == 0) continue;
      for (std::size_t j = 0; j < flow.pools.size(); ++j) {
        if (flow.active[j] == 0) continue;
        if (flow.rate_Bps[j] > 0.0) {
          next = std::min(next, now_s + flow.pools[j].bytes / flow.rate_Bps[j]);
        }
      }
    }
  } else {
    demand_view(now_s, /*include_pending=*/false, refs_scratch_,
                demands_scratch_, rates_scratch_);
    for (std::size_t k = 0; k < refs_scratch_.size(); ++k) {
      const Flow& flow =
          flows_[static_cast<std::size_t>(refs_scratch_[k].flow)];
      const Pool& pool =
          flow.pools[static_cast<std::size_t>(refs_scratch_[k].pool)];
      if (rates_scratch_[k] > 0.0) {
        next = std::min(next, now_s + pool.bytes / rates_scratch_[k]);
      }
    }
  }
  // Pending activations change the share structure too: the calendar's
  // top, after lazily shedding entries of retired flows and instants
  // already reached (the virtual clock only moves forward, so a shed
  // entry can never be needed again).
  while (!activations_.empty()) {
    const Activation& top = activations_.front();
    if (top.t_s > now_s && slot_of_.count(top.flow) != 0) break;
    std::pop_heap(activations_.begin(), activations_.end(),
                  ActivationAfter{});
    activations_.pop_back();
  }
  if (!activations_.empty()) next = std::min(next, activations_.front().t_s);
  return next;
}

bool GridWanModel::drained(int flow) const {
  const auto it = slot_of_.find(flow);
  QRGRID_CHECK(it != slot_of_.end());
  return flows_[static_cast<std::size_t>(it->second)].undrained == 0;
}

double GridWanModel::drained_at_s(int flow) const {
  const auto it = slot_of_.find(flow);
  QRGRID_CHECK(it != slot_of_.end());
  const Flow& f = flows_[static_cast<std::size_t>(it->second)];
  QRGRID_CHECK(f.undrained == 0);
  return f.drained_at_s;
}

void GridWanModel::drain_estimates_s(double now_s,
                                     const std::vector<int>& flows,
                                     std::vector<double>& out) const {
  // One shared pessimistic view, estimates gathered per live SLOT, then
  // projected onto the requested ids — the math per flow is exactly the
  // single-flow estimate's.
  if (estimates_scratch_.size() < flows_.size()) {
    estimates_scratch_.resize(flows_.size(), 0.0);
  }
  for (const int slot : live_) {
    const Flow& f = flows_[static_cast<std::size_t>(slot)];
    estimates_scratch_[static_cast<std::size_t>(slot)] =
        f.undrained == 0 ? f.drained_at_s : now_s;
  }
  // The pessimistic view's membership (bytes > 0, activation ignored)
  // and rates (fracs x capacities, never bytes) depend only on the
  // structural generation: between structural changes the basis is
  // reused verbatim — shadow pricing stops re-deriving shares per call.
  // Only each pool's CURRENT bytes and max(now, activation) enter per
  // call below, which is exactly what a fresh view would use.
  if (!est_basis_valid_ || est_basis_generation_ != generation_) {
    demand_view(now_s, /*include_pending=*/true, est_refs_, est_demands_,
                est_rates_);
    est_basis_valid_ = true;
    est_basis_generation_ = generation_;
  }
  for (std::size_t k = 0; k < est_refs_.size(); ++k) {
    const auto slot = static_cast<std::size_t>(est_refs_[k].flow);
    const Pool& pool =
        flows_[slot].pools[static_cast<std::size_t>(est_refs_[k].pool)];
    double& est = estimates_scratch_[slot];
    if (est_rates_[k] <= 0.0) {
      est = kInf;
      continue;
    }
    est = std::max(est, std::max(now_s, pool.activation_s) +
                            pool.bytes / est_rates_[k]);
  }
  out.assign(flows.size(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto it = slot_of_.find(flows[i]);
    if (it == slot_of_.end()) continue;  // retired: report 0
    out[i] = estimates_scratch_[static_cast<std::size_t>(it->second)];
  }
}

double GridWanModel::drain_estimate_s(int flow, double now_s) const {
  QRGRID_CHECK(slot_of_.count(flow) != 0);
  std::vector<double> estimates;
  drain_estimates_s(now_s, {flow}, estimates);
  return estimates.front();
}

void GridWanModel::retire(int flow, std::vector<long long>& egress_bytes,
                          std::vector<long long>& ingress_bytes) {
  const auto slot_it = slot_of_.find(flow);
  QRGRID_CHECK(slot_it != slot_of_.end());  // alive exactly once
  const int slot = slot_it->second;
  Flow& f = flows_[static_cast<std::size_t>(slot)];
  if (tracer_ != nullptr) {
    ServiceTraceEvent ev;
    ev.t_s = tracer_->now_s();
    ev.kind = TraceKind::kWanFlowRetire;
    ev.flow = flow;
    for (const double moved : f.moved_bytes) ev.value += moved;
    ev.value2 = f.undrained == 0 ? 1.0 : 0.0;
    tracer_->record(std::move(ev));
  }
  for (std::size_t i = 0; i < f.pools.size(); ++i) {
    const Pool& pool = f.pools[i];
    const auto moved = static_cast<long long>(f.moved_bytes[i] + 0.5);
    switch (pool.link) {
      case Pool::Link::kUplink:
        egress_bytes[static_cast<std::size_t>(pool.cluster)] += moved;
        break;
      case Pool::Link::kDownlink:
        ingress_bytes[static_cast<std::size_t>(pool.cluster)] += moved;
        break;
      case Pool::Link::kBackbone:
        break;  // the trunk is shared accounting, not a byte sink
    }
  }
  uncount_load(f);
  if (fairness_ == WanFairness::kMaxMin) {
    if (f.undrained > 0) ++rebalance_events_;
    for (std::size_t j = 0; j < f.active.size(); ++j) {
      if (f.active[j] != 0) deactivate_pool(f, static_cast<int>(j));
    }
  }
  if (f.undrained > 0) bump_generation();
  f.alive = false;
  f.pools.clear();
  f.moved_bytes.clear();
  f.initial_bytes.clear();
  f.rate_Bps.clear();
  f.active.clear();
  f.frac_sensitive = false;
  // Reclaim: drop the slot from the live order (binary search — live_ is
  // id-sorted) and recycle it. Calendar entries die lazily via slot_of_.
  const auto live_it = std::lower_bound(
      live_.begin(), live_.end(), flow, [this](int s, int id) {
        return flows_[static_cast<std::size_t>(s)].id < id;
      });
  QRGRID_CHECK(live_it != live_.end() && *live_it == slot);
  live_.erase(live_it);
  slot_of_.erase(slot_it);
  free_slots_.push_back(slot);
}

// Both load signals are now O(1) reads of counters maintained at
// admit / pool-drain / retire (count_load / uncount_load) — the per-step
// metrics sampling used to pay an O(live x pools) scan per cluster.
int GridWanModel::backbone_load() const { return trunk_load_; }

int GridWanModel::load_score(int cluster) const {
  return cluster_load_[static_cast<std::size_t>(cluster)];
}

void GridWanModel::save_state(SnapshotWriter& w) const {
  // Construction-time configuration travels as a sanity tag only; the
  // restored model must already be built from the same config.
  w.i32(num_clusters_);
  w.u8(static_cast<std::uint8_t>(fairness_));
  w.u64(flows_.size());
  for (const Flow& f : flows_) {
    w.boolean(f.alive);
    w.i32(f.id);
    w.u64(f.pools.size());
    for (const Pool& pool : f.pools) {
      w.u8(static_cast<std::uint8_t>(pool.link));
      w.i32(pool.cluster);
      w.i32(pool.peer);
      w.f64(pool.bytes);
      w.f64(pool.activation_s);
    }
    w.f64_vec(f.moved_bytes);
    w.f64_vec(f.initial_bytes);
    w.i32(f.undrained);
    w.f64(f.drained_at_s);
    w.f64_vec(f.rate_Bps);
    w.u64(f.active.size());
    for (const char a : f.active) w.u8(static_cast<std::uint8_t>(a));
    w.boolean(f.frac_sensitive);
    w.i32_vec(f.counted_clusters);
    w.boolean(f.counted_trunk);
  }
  w.i32_vec(free_slots_);
  w.i32_vec(live_);
  w.i32(next_flow_id_);
  w.i32(peak_live_);
  // The activation heap array verbatim: lazy pruning makes its exact
  // contents depend on when next_event_s was called, and later heap
  // mutations (push/pop order) depend on the array layout — rebuilding
  // a pruned heap would fork the byte stream of future mutations.
  w.u64(activations_.size());
  for (const Activation& a : activations_) {
    w.f64(a.t_s);
    w.i32(a.flow);
    w.i32(a.pool);
  }
  w.f64_vec(up_busy_s_);
  w.f64_vec(down_busy_s_);
  w.f64(backbone_busy_s_);
  // Incremental engine: the dirty list travels verbatim (a pending
  // rebalance must fire on resume exactly as it would have), the
  // generation and counters so resumed gauges match an unbroken run.
  // Link user counts, load counters, and the estimate basis are derived
  // from the flows on load.
  w.i32_vec(dirty_links_);
  w.u64(generation_);
  w.u64(rebalance_events_);
  w.u64(rebalance_recomputes_);
  w.u64(rebalance_links_touched_);
  w.u64(rebalance_full_refills_);
}

void GridWanModel::load_state(SnapshotReader& r) {
  QRGRID_CHECK_MSG(r.i32() == num_clusters_,
                   "WAN snapshot cluster count mismatch");
  QRGRID_CHECK_MSG(static_cast<WanFairness>(r.u8()) == fairness_,
                   "WAN snapshot fairness mismatch");
  flows_.assign(static_cast<std::size_t>(r.u64()), Flow{});
  for (Flow& f : flows_) {
    f.alive = r.boolean();
    f.id = r.i32();
    f.pools.resize(static_cast<std::size_t>(r.u64()));
    for (Pool& pool : f.pools) {
      pool.link = static_cast<Pool::Link>(r.u8());
      pool.cluster = r.i32();
      pool.peer = r.i32();
      pool.bytes = r.f64();
      pool.activation_s = r.f64();
    }
    f.moved_bytes = r.f64_vec();
    f.initial_bytes = r.f64_vec();
    f.undrained = r.i32();
    f.drained_at_s = r.f64();
    f.rate_Bps = r.f64_vec();
    f.active.resize(static_cast<std::size_t>(r.u64()));
    for (char& a : f.active) a = static_cast<char>(r.u8());
    f.frac_sensitive = r.boolean();
    f.counted_clusters = r.i32_vec();
    f.counted_trunk = r.boolean();
  }
  free_slots_ = r.i32_vec();
  live_ = r.i32_vec();
  next_flow_id_ = r.i32();
  peak_live_ = r.i32();
  activations_.resize(static_cast<std::size_t>(r.u64()));
  for (Activation& a : activations_) {
    a.t_s = r.f64();
    a.flow = r.i32();
    a.pool = r.i32();
  }
  up_busy_s_ = r.f64_vec();
  down_busy_s_ = r.f64_vec();
  backbone_busy_s_ = r.f64();
  dirty_links_ = r.i32_vec();
  generation_ = r.u64();
  rebalance_events_ = r.u64();
  rebalance_recomputes_ = r.u64();
  rebalance_links_touched_ = r.u64();
  rebalance_full_refills_ = r.u64();
  slot_of_.clear();
  for (const int slot : live_) {
    slot_of_.emplace(flows_[static_cast<std::size_t>(slot)].id, slot);
  }
  // Derive the per-link user counts and load counters from the restored
  // flows; the estimate basis is rebuilt (bit-identically) on the next
  // drain_estimates_s call.
  link_users_.assign(capacity_.size(), 0);
  busy_links_ = 0;
  active_pools_ = 0;
  cluster_load_.assign(static_cast<std::size_t>(num_clusters_), 0);
  trunk_load_ = 0;
  for (const int slot : live_) {
    Flow& f = flows_[static_cast<std::size_t>(slot)];
    for (const int c : f.counted_clusters) {
      ++cluster_load_[static_cast<std::size_t>(c)];
    }
    if (f.counted_trunk) ++trunk_load_;
    for (std::size_t j = 0; j < f.active.size(); ++j) {
      if (f.active[j] == 0) continue;
      ++active_pools_;
      int links[3];
      const int nlinks = links_of(f.pools[j], links);
      for (int k = 0; k < nlinks; ++k) {
        if (link_users_[static_cast<std::size_t>(links[k])]++ == 0) {
          ++busy_links_;
        }
      }
    }
  }
  dirty_mark_.assign(capacity_.size(), 0);
  for (const int l : dirty_links_) dirty_mark_[static_cast<std::size_t>(l)] = 1;
  est_basis_valid_ = false;
}

}  // namespace qrgrid::sched

#include "sched/wan.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace qrgrid::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Does an interval that moves `moved` bytes empty a pool holding
/// `bytes`? Slack is half a BYTE, deliberately byte- not time-scale:
/// (a) when the caller's advance target is this pool's own drain event
/// the two sides differ only by rounding of the same bytes/rate
/// division; (b) an unrelated event landing a hair earlier over-credits
/// at most half a byte rather than rate x clock-epsilon; and (c) no
/// sub-half-byte remainder can survive and stall the event loop with a
/// drain step too small to advance a large virtual clock.
bool covers(double moved, double bytes) {
  return moved >= bytes - 0.5;
}

}  // namespace

GridWanModel::GridWanModel(int num_clusters, double link_Bps,
                           double backbone_Bps)
    : num_clusters_(num_clusters),
      link_Bps_(link_Bps),
      backbone_Bps_(backbone_Bps),
      up_busy_s_(static_cast<std::size_t>(num_clusters), 0.0),
      down_busy_s_(static_cast<std::size_t>(num_clusters), 0.0) {
  QRGRID_CHECK(num_clusters >= 1 && link_Bps > 0.0 && backbone_Bps > 0.0);
}

double GridWanModel::capacity_of(const Pool& pool) const {
  return pool.link == Pool::Link::kBackbone ? backbone_Bps_ : link_Bps_;
}

int GridWanModel::users_for(const Pool& pool, int backbone_users) const {
  switch (pool.link) {
    case Pool::Link::kUplink:
      return up_users_[static_cast<std::size_t>(pool.cluster)];
    case Pool::Link::kDownlink:
      return down_users_[static_cast<std::size_t>(pool.cluster)];
    case Pool::Link::kBackbone:
      break;
  }
  return backbone_users;
}

int GridWanModel::count_users(double now_s) const {
  up_users_.assign(static_cast<std::size_t>(num_clusters_), 0);
  down_users_.assign(static_cast<std::size_t>(num_clusters_), 0);
  int backbone = 0;
  for (const Flow& flow : flows_) {
    if (!flow.alive) continue;
    for (const Pool& pool : flow.pools) {
      if (pool.bytes <= 0.0 || pool.activation_s > now_s) continue;
      switch (pool.link) {
        case Pool::Link::kUplink:
          ++up_users_[static_cast<std::size_t>(pool.cluster)];
          break;
        case Pool::Link::kDownlink:
          ++down_users_[static_cast<std::size_t>(pool.cluster)];
          break;
        case Pool::Link::kBackbone:
          ++backbone;
          break;
      }
    }
  }
  return backbone;
}

int GridWanModel::admit(double now_s, std::vector<Pool> pools) {
  Flow flow;
  flow.alive = true;
  for (const Pool& pool : pools) {
    QRGRID_CHECK(pool.bytes >= 0.0);
    QRGRID_CHECK(pool.link == Pool::Link::kBackbone ||
                 (pool.cluster >= 0 && pool.cluster < num_clusters_));
    if (pool.bytes > 0.0) ++flow.undrained;
  }
  flow.pools = std::move(pools);
  flow.moved_bytes.assign(flow.pools.size(), 0.0);
  flow.drained_at_s = now_s;  // stands until a pool actually drains later
  flows_.push_back(std::move(flow));
  return static_cast<int>(flows_.size()) - 1;
}

void GridWanModel::advance(double from_s, double to_s) {
  const double dt = to_s - from_s;
  if (dt <= 0.0) return;

  const int backbone_users = count_users(from_s);
  for (int c = 0; c < num_clusters_; ++c) {
    if (up_users_[static_cast<std::size_t>(c)] > 0) {
      up_busy_s_[static_cast<std::size_t>(c)] += dt;
    }
    if (down_users_[static_cast<std::size_t>(c)] > 0) {
      down_busy_s_[static_cast<std::size_t>(c)] += dt;
    }
  }
  if (backbone_users > 0) backbone_busy_s_ += dt;

  for (Flow& flow : flows_) {
    if (!flow.alive || flow.undrained == 0) continue;
    for (std::size_t i = 0; i < flow.pools.size(); ++i) {
      Pool& pool = flow.pools[i];
      if (pool.bytes <= 0.0 || pool.activation_s > from_s) continue;
      const double rate = capacity_of(pool) /
                          static_cast<double>(users_for(pool, backbone_users));
      const double moved = rate * dt;
      if (covers(moved, pool.bytes)) {
        flow.moved_bytes[i] += pool.bytes;
        pool.bytes = 0.0;
        if (--flow.undrained == 0) flow.drained_at_s = to_s;
      } else {
        flow.moved_bytes[i] += moved;
        pool.bytes -= moved;
      }
    }
  }
}

double GridWanModel::next_event_s(double now_s) const {
  const int backbone_users = count_users(now_s);
  double next = kInf;
  for (const Flow& flow : flows_) {
    if (!flow.alive || flow.undrained == 0) continue;
    for (const Pool& pool : flow.pools) {
      if (pool.bytes <= 0.0) continue;
      if (pool.activation_s > now_s) {
        next = std::min(next, pool.activation_s);
        continue;
      }
      const double rate = capacity_of(pool) /
                          static_cast<double>(users_for(pool, backbone_users));
      next = std::min(next, now_s + pool.bytes / rate);
    }
  }
  return next;
}

bool GridWanModel::drained(int flow) const {
  const Flow& f = flows_[static_cast<std::size_t>(flow)];
  QRGRID_CHECK(f.alive);
  return f.undrained == 0;
}

double GridWanModel::drained_at_s(int flow) const {
  const Flow& f = flows_[static_cast<std::size_t>(flow)];
  QRGRID_CHECK(f.alive && f.undrained == 0);
  return f.drained_at_s;
}

void GridWanModel::retire(int flow, std::vector<long long>& egress_bytes,
                          std::vector<long long>& ingress_bytes) {
  Flow& f = flows_[static_cast<std::size_t>(flow)];
  QRGRID_CHECK(f.alive);
  for (std::size_t i = 0; i < f.pools.size(); ++i) {
    const Pool& pool = f.pools[i];
    const auto moved = static_cast<long long>(f.moved_bytes[i] + 0.5);
    switch (pool.link) {
      case Pool::Link::kUplink:
        egress_bytes[static_cast<std::size_t>(pool.cluster)] += moved;
        break;
      case Pool::Link::kDownlink:
        ingress_bytes[static_cast<std::size_t>(pool.cluster)] += moved;
        break;
      case Pool::Link::kBackbone:
        break;  // the trunk is shared accounting, not a byte sink
    }
  }
  f.alive = false;
  f.pools.clear();
  f.moved_bytes.clear();
}

int GridWanModel::load_score(int cluster) const {
  int score = 0;
  for (const Flow& flow : flows_) {
    if (!flow.alive || flow.undrained == 0) continue;
    bool touches = false;
    for (const Pool& pool : flow.pools) {
      if (pool.bytes > 0.0 && pool.link != Pool::Link::kBackbone &&
          pool.cluster == cluster) {
        touches = true;
        break;
      }
    }
    if (touches) ++score;
  }
  return score;
}

}  // namespace qrgrid::sched

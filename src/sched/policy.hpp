// Pluggable scheduling policies for the grid job service.
//
// GridJobService used to dispatch on a closed Policy enum: queue ordering
// lived in JobQueue::before, the backfill decision was an `if (easy)`
// inside run(), and placement scoring was hard-wired into try_place. This
// interface is that seam made explicit — a SchedulingPolicy owns
//
//   queue ordering        before():        which pending job is owed next
//   reservation/backfill  backfills():     may later jobs jump a blocked
//                                          head, bounded by its shadow time
//   shadow pricing        wan_priced_shadow(): price running jobs' WAN
//                                          drain estimates into the shadow
//   placement scoring     cluster_order(): the order candidate clusters
//                                          are offered to the first-fit
//   service accounting    on_attempt_start()/reset(): accrued state for
//                                          deficit-based orderings
//
// so later PRs add policies without reopening service.cpp: implement the
// interface and hand ServiceOptions::policy_factory a constructor.
//
// Five built-ins (make_policy):
//
//   fcfs       strict (priority desc, arrival, id); the head blocks all.
//   spjf       shortest predicted job first (Section-IV Equation (1)).
//   easy       classic EASY: ARRIVAL-ordered FCFS head holding a shadow
//              reservation; later jobs backfill iff their estimate ends
//              before it. Priority-blind, as Lifka's original — byte-
//              identical to the PR-4 enum dispatch on uniform priority.
//   prio-easy  priority-aware EASY: the queue orders (priority desc,
//              arrival, id), so a higher-priority pending job CLAIMS the
//              shadow reservation from a lower-priority blocked head the
//              moment it arrives; under shared-WAN contention the shadow
//              additionally prices every running attempt's drain estimate
//              (GridWanModel::drain_estimate_s), restoring the no-delay
//              property the plain-EASY reservation loses under contention.
//   fair       weighted fair-share: deficit-round-robin over accumulated
//              service. Every started attempt charges its expected
//              node-seconds to Job::user, normalized by Job::weight; the
//              queue orders by (normalized service deficit, arrival, id),
//              so the least-served-per-weight user always owns the head.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/job.hpp"

namespace qrgrid::sched {

class GridWanModel;
class MetricsRegistry;
class SnapshotWriter;
class SnapshotReader;

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Stable identifier, also the summary-table row label ("fcfs", ...).
  virtual std::string name() const = 0;

  /// Strict weak ordering of the pending queue; the front is the next
  /// job the policy owes the grid.
  virtual bool before(const PendingEntry& a, const PendingEntry& b) const = 0;

  /// Reservation/backfill: when true, a blocked head holds an EASY
  /// reservation at its shadow time and any later pending job may start
  /// now iff its estimated completion does not outlast that promise.
  virtual bool backfills() const { return false; }

  /// When true (and shared-WAN contention is on), the shadow time prices
  /// each running attempt's WAN drain estimate into its estimated finish
  /// instead of trusting walltime/replay bounds the drains can outlast.
  virtual bool wan_priced_shadow() const { return false; }

  /// When true, ordering keys change as service accrues (fair-share):
  /// the queue must re-establish policy order before ordered access.
  virtual bool dynamic_order() const { return false; }

  /// --- Incremental order maintenance (the JobQueue sync protocol) ---
  /// A dynamic-order policy's keys move only at well-defined instants
  /// (fair-share: on_attempt_start). Instead of a full re-sort per
  /// dispatch, the queue asks the policy WHICH keys moved and reinserts
  /// only those entries. Static-key policies (FCFS/SPJF/EASY) report
  /// clean always and pay zero resort cost. The dirty state is queue
  /// bookkeeping, not scheduling state, hence const (mutable inside).

  /// Any ordering keys changed since the last clear_dirty()? The default
  /// is conservative: a dynamic-order policy without finer tracking is
  /// dirty whenever asked (every ordered access re-sorts, the pre-PR-7
  /// behavior); a static-key policy is never dirty.
  virtual bool keys_dirty() const { return dynamic_order(); }
  /// Did THIS job's ordering key change since the last clear_dirty()?
  /// Only consulted for entries of a dirty class (or all entries when
  /// dirty_classes() is null).
  virtual bool touch(const Job&) const { return true; }
  /// Equivalence class of entries whose keys move together (fair-share:
  /// the user id — one charge moves every queued job of that user). The
  /// queue buckets entries by class so a dirty class extracts without
  /// scanning the rest.
  virtual int order_class(const Job&) const { return 0; }
  /// Classes whose keys changed since the last clear_dirty(); null means
  /// "unknown — treat every entry as dirty" (the conservative default).
  virtual const std::vector<int>* dirty_classes() const { return nullptr; }
  /// The queue consumed the dirty set (it just reinserted every touched
  /// entry); forget it.
  virtual void clear_dirty() const {}

  /// Placement scoring: the order in which candidate master clusters are
  /// presented to the meta-scheduler's first-fit. The default is master-id
  /// order, or idlest-WAN-link-first when a model is supplied (the
  /// wan_aware dispatch path); ties keep master-id order, which makes the
  /// naive path exactly the PR-2 behavior.
  virtual std::vector<int> cluster_order(int num_clusters,
                                         const GridWanModel* wan) const;

  /// Wait-blame attribution hook (ServiceOptions::wait_blame): is the
  /// queue holding `behind` back for a PRIORITY-class reason — `ahead`
  /// ordered first because it outranks `behind`, not merely because it
  /// arrived earlier? Distinguishes BlameCategory::kPriorityDisplaced
  /// from kHeldBehindReservation; never consulted by a scheduling
  /// decision. Default: a strictly higher job priority displaces.
  virtual bool displaces(const Job& ahead, const Job& behind) const {
    return ahead.priority > behind.priority;
  }

  /// Accounting hook: one attempt of `job` started and is expected to
  /// hold `node_seconds` node-seconds (requeued attempts charge again).
  virtual void on_attempt_start(const Job& job, double node_seconds);

  /// Forgets accrued state (fair-share deficits). run() calls it first,
  /// so one service can serve several workloads byte-identically.
  virtual void reset() {}

  /// Snapshot seam: serialize/restore policy-private scheduling state
  /// (fair-share deficits; nothing for the static-key policies). The
  /// service snapshots only between steps, when the queue has synced any
  /// dirty keys, so implementations need not serialize dirty-tracking
  /// bookkeeping — load_state() restores a clean-synced policy. Defaults
  /// are no-ops: a stateless policy round-trips for free.
  virtual void save_state(SnapshotWriter&) const {}
  virtual void load_state(SnapshotReader&) {}

  /// Observability seam: the service binds its (optional) metrics
  /// registry before a run so policies can report their own decision
  /// costs and accrued state. Null (the default) disables recording;
  /// metrics never influence a scheduling decision.
  void bind_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 protected:
  MetricsRegistry* metrics_ = nullptr;
};

/// The PR-1 FCFS dispatch as a policy object: (priority desc, arrival,
/// id), no backfilling.
class FcfsPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "fcfs"; }
  bool before(const PendingEntry& a, const PendingEntry& b) const override;
};

/// Shortest predicted job first: (predicted seconds, id).
class SpjfPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "spjf"; }
  bool before(const PendingEntry& a, const PendingEntry& b) const override;
};

/// Classic EASY backfilling: arrival-ordered head with a shadow
/// reservation. Priority-blind (see prio-easy for the priority-aware
/// variant); identical to the PR-4 dispatch whenever priorities are
/// uniform — which the legacy-equivalence suites pin byte-for-byte.
class EasyBackfillPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "easy"; }
  bool before(const PendingEntry& a, const PendingEntry& b) const override;
  bool backfills() const override { return true; }
};

/// Priority-aware EASY: (priority desc, arrival, id) ordering means a
/// higher-priority pending job claims the head slot — and with it the
/// shadow reservation — from a lower-priority blocked head; plus
/// WAN-priced shadow times under contention.
class PriorityEasyPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "prio-easy"; }
  bool before(const PendingEntry& a, const PendingEntry& b) const override;
  bool backfills() const override { return true; }
  bool wan_priced_shadow() const override { return true; }
};

/// Weighted fair-share: deficit-round-robin over accumulated service.
/// Orders by (service[user]/weight ascending, arrival, id); started
/// attempts charge expected node-seconds to their user.
class FairSharePolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "fair"; }
  bool before(const PendingEntry& a, const PendingEntry& b) const override;
  bool dynamic_order() const override { return true; }
  /// Fair-share displacement is a deficit story, not a priority one: the
  /// head displaces a placeable later job when its user is strictly less
  /// served per weight.
  bool displaces(const Job& ahead, const Job& behind) const override;
  void on_attempt_start(const Job& job, double node_seconds) override;
  void reset() override {
    service_.clear();
    clear_dirty();
  }

  /// Incremental order maintenance: a started attempt moves the deficit
  /// key of exactly one user, so only that user's queued jobs need
  /// reinsertion — the queue leaves everyone else's entries in place.
  bool keys_dirty() const override { return !dirty_users_.empty(); }
  bool touch(const Job& job) const override {
    return dirty_set_.count(job.user) != 0;
  }
  int order_class(const Job& job) const override { return job.user; }
  const std::vector<int>* dirty_classes() const override {
    return &dirty_users_;
  }
  void clear_dirty() const override {
    dirty_users_.clear();
    dirty_set_.clear();
  }

  /// Normalized service a user has accumulated (node-seconds / weight);
  /// 0 for users never charged. Exposed for the fairness test suite.
  double normalized_service(int user) const;

  /// Deficit map, serialized in sorted-user order (the map itself is
  /// unordered; raw f64 bits keep restored ordering keys bit-exact).
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  std::unordered_map<int, double> service_;
  /// Users charged since the queue last synced (vector for deterministic
  /// extraction order, set for O(1) touch checks).
  mutable std::vector<int> dirty_users_;
  mutable std::unordered_set<int> dirty_set_;
};

/// Policy object for one enum value (the CLI's fcfs|spjf|easy|prio-easy|
/// fair). Custom policies bypass this via ServiceOptions::policy_factory.
std::unique_ptr<SchedulingPolicy> make_policy(Policy policy);

}  // namespace qrgrid::sched

#include "sched/outage.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "sched/snapshot.hpp"

namespace qrgrid::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Recovery (up) boundaries sort before failures at the same instant so a
/// back-to-back repair/re-failure leaves the cluster down, never up.
bool event_before(const OutageEvent& a, const OutageEvent& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.down != b.down) return !a.down;
  return a.cluster < b.cluster;
}
}  // namespace

OutageTrace::OutageTrace(std::vector<Outage> outages) {
  events_.reserve(2 * outages.size());
  for (const Outage& o : outages) {
    QRGRID_CHECK_MSG(o.cluster >= 0 && o.start_s >= 0.0 &&
                         o.end_s > o.start_s,
                     "malformed outage on cluster " << o.cluster << ": ["
                         << o.start_s << ", " << o.end_s << ")");
    events_.push_back(OutageEvent{o.start_s, o.cluster, /*down=*/true});
    events_.push_back(OutageEvent{o.end_s, o.cluster, /*down=*/false});
  }
  std::sort(events_.begin(), events_.end(), event_before);
}

OutageTrace::OutageTrace(const OutageSpec& spec, int num_clusters) {
  QRGRID_CHECK(num_clusters >= 1);
  if (spec.mtbf_s <= 0.0) return;  // disabled: empty trace
  QRGRID_CHECK_MSG(spec.mean_outage_s > 0.0,
                   "outage mean_outage_s must be positive");
  mean_up_s_ = spec.mtbf_s;
  mean_down_s_ = spec.mean_outage_s;
  streams_.reserve(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    // Independent per-cluster streams: splitmix64 inside Rng's constructor
    // decorrelates the additively-derived seeds.
    Stream s{Rng(spec.seed +
                 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(c + 1)),
             0.0, /*down=*/false};
    s.next_s = draw_exp(s.rng, mean_up_s_);
    streams_.push_back(std::move(s));
  }
}

double OutageTrace::draw_exp(Rng& rng, double mean) const {
  // Exponential inter-event time, floored away from zero so a down/up
  // pair can never collapse onto the same instant.
  return std::max(-mean * std::log1p(-rng.uniform01()), 1e-9);
}

double OutageTrace::peek_s() const {
  if (cursor_ < events_.size()) return events_[cursor_].time_s;
  double t = kInf;
  for (const Stream& s : streams_) t = std::min(t, s.next_s);
  return t;
}

OutageEvent OutageTrace::pop() {
  if (cursor_ < events_.size()) return events_[cursor_++];
  QRGRID_CHECK_MSG(!streams_.empty(), "pop() on an exhausted outage trace");
  std::size_t best = 0;
  for (std::size_t i = 1; i < streams_.size(); ++i) {
    const Stream& a = streams_[i];
    const Stream& b = streams_[best];
    // The next event of an up stream is a failure, of a down stream a
    // recovery; apply the same (time, up-first, cluster) precedence as
    // the explicit path.
    const OutageEvent ea{a.next_s, static_cast<int>(i), !a.down};
    const OutageEvent eb{b.next_s, static_cast<int>(best), !b.down};
    if (event_before(ea, eb)) best = i;
  }
  Stream& s = streams_[best];
  OutageEvent ev{s.next_s, static_cast<int>(best), /*down=*/!s.down};
  s.down = !s.down;
  s.next_s += draw_exp(s.rng, s.down ? mean_down_s_ : mean_up_s_);
  return ev;
}

void OutageTrace::save_state(SnapshotWriter& w) const {
  w.u64(cursor_);
  w.u64(streams_.size());
  for (const Stream& s : streams_) {
    const Rng::State rs = s.rng.state();
    for (int i = 0; i < 4; ++i) w.u64(rs.s[i]);
    w.f64(rs.spare);
    w.boolean(rs.has_spare);
    w.f64(s.next_s);
    w.boolean(s.down);
  }
}

std::string OutageTrace::config_key() const {
  // FNV-1a over the defining configuration, not the consumable position:
  // cursor_ and already-consumed generator draws are restored by
  // load_state(), whose precondition (same construction inputs) is
  // exactly what this key pins.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  const auto mix_f64 = [&mix](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(events_.size());
  for (const OutageEvent& e : events_) {
    mix_f64(e.time_s);
    mix(static_cast<std::uint64_t>(e.cluster));
    mix(e.down ? 1u : 0u);
  }
  mix_f64(mean_up_s_);
  mix_f64(mean_down_s_);
  mix(streams_.size());
  for (const Stream& s : streams_) {
    // A pristine trace's stream states are a pure function of the seed,
    // so hashing them keys the generator configuration without retaining
    // the spec.
    const Rng::State rs = s.rng.state();
    for (int i = 0; i < 4; ++i) mix(rs.s[i]);
  }
  std::ostringstream out;
  out << std::hex << h;
  return out.str();
}

void OutageTrace::load_state(SnapshotReader& r) {
  cursor_ = static_cast<std::size_t>(r.u64());
  QRGRID_CHECK_MSG(cursor_ <= events_.size(),
                   "snapshot outage cursor " << cursor_ << " beyond "
                       << events_.size() << " explicit events");
  const std::uint64_t n = r.u64();
  QRGRID_CHECK_MSG(n == streams_.size(),
                   "snapshot outage stream count " << n << " != configured "
                       << streams_.size());
  for (Stream& s : streams_) {
    Rng::State rs;
    for (int i = 0; i < 4; ++i) rs.s[i] = r.u64();
    rs.spare = r.f64();
    rs.has_spare = r.boolean();
    s.rng.set_state(rs);
    s.next_s = r.f64();
    s.down = r.boolean();
  }
}

}  // namespace qrgrid::sched

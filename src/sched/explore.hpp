// Exhaustive same-instant interleaving explorer for the grid job service.
//
// The service resolves every event due at one virtual instant in a
// pinned order: finishes, then outage recoveries, then failures, then
// arrivals — and WITHIN each class by a deterministic tie-break (seq,
// pop order, job id). Those within-class tie-breaks are scheduling
// choices, not physics: any order is legal, and a correctness property
// that only holds under the canonical one is a bug waiting for a
// different clock. This harness drives a service through its event loop
// one step at a time, snapshots the full state before every step
// (GridJobService::snapshot — the rollback token), and exhaustively
// enumerates every alternative order a TieOracle could impose at every
// same-instant tie, validating the full TraceValidator invariant set
// plus report-level conservation on every leaf. Bounded instances only
// (a handful of jobs, 2-3 clusters): the tree is exponential in the
// number of ties by design.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/service.hpp"
#include "sched/telemetry.hpp"

namespace qrgrid::sched {

/// Tie oracle that replays a fixed prescription of choices — decision i
/// picks prescription[i] — and falls back to 0 (the canonical order)
/// past its end, logging every decision it is consulted on. The log is
/// both the branch discovery input of the explorer and the reproduction
/// recipe of a violating leaf: re-running a fresh service with the
/// logged choices as the prescription replays the exact interleaving.
class PrescribedOracle : public TieOracle {
 public:
  struct Decision {
    TieOracle::Kind kind = TieOracle::Kind::kCompletion;
    double t_s = 0.0;  ///< virtual instant of the tie
    int k = 0;         ///< candidates tied (always >= 2 when consulted)
    int chosen = 0;
  };

  PrescribedOracle() = default;
  explicit PrescribedOracle(std::vector<int> prescription)
      : prescription_(std::move(prescription)) {}

  int choose(Kind kind, double t_s, int k) override;

  const std::vector<Decision>& log() const { return log_; }

 private:
  std::vector<int> prescription_;
  std::vector<Decision> log_;
};

/// Builds one fresh service per enumerated interleaving, identically
/// configured every time (the snapshot fingerprint enforces this), with
/// the explorer's tracer/metrics bound through ServiceOptions. The
/// tracer must be bound (leaf validation reads it); metrics may be
/// ignored by the factory.
using ServiceFactory = std::function<std::unique_ptr<GridJobService>(
    ServiceTracer* tracer, MetricsRegistry* metrics)>;

struct ExploreLimits {
  /// Hard cap on fully-enumerated interleavings; hitting it sets
  /// ExploreResult::truncated instead of running forever on an instance
  /// with too many ties.
  long long max_leaves = 20000;
};

/// One invariant violation found on one leaf, with the absolute choice
/// sequence that reproduces it from a fresh run: install
/// PrescribedOracle(prescription) on a factory-built service, run the
/// same workload, and the violating interleaving replays exactly.
struct ExploreViolation {
  std::string what;
  std::vector<int> prescription;
};

struct ExploreResult {
  long long leaves = 0;           ///< interleavings fully enumerated
  long long decision_points = 0;  ///< distinct k>1 ties branched on
  int max_fanout = 0;             ///< widest tie encountered
  bool truncated = false;         ///< max_leaves stopped the enumeration
  std::vector<ExploreViolation> violations;
  /// The canonical (all-zeros) leaf: its report, and its recorded event
  /// stream serialized via ServiceTracer::save_state — byte-comparable
  /// against an oracle-free plain run of the same factory/workload.
  ServiceReport canonical_report;
  std::string canonical_trace_bytes;

  bool ok() const { return violations.empty(); }
};

/// Depth-first enumeration of every legal same-instant ordering of
/// `jobs` on factory-built services. The first leaf is the canonical
/// order; every subsequent leaf deviates from an earlier one at exactly
/// one decision (first-deviation enumeration — each interleaving is
/// visited once), resuming from the pre-decision snapshot rather than
/// replaying from the start. Every leaf is validated with the full
/// TraceValidator invariant set plus report-level conservation (one
/// outcome per job, fate counts consistent with the report tallies);
/// violations — including a qrgrid::Error thrown mid-leaf — are
/// collected with their reproduction prescriptions, never rethrown.
ExploreResult explore_interleavings(const ServiceFactory& factory,
                                    const std::vector<Job>& jobs,
                                    const ExploreLimits& limits = {});

/// Attempt start/finish instants of the canonical (oracle-free) run —
/// the collision points an outage-kill timing sweep aims failure
/// boundaries at, so kills land exactly ON a start or completion
/// instant instead of strictly between events.
std::vector<double> harvest_attempt_instants(const ServiceFactory& factory,
                                             const std::vector<Job>& jobs);

}  // namespace qrgrid::sched

// Shared-WAN contention engine for the grid job service.
//
// The paper's scarce resource is the wide-area network: TSQR wins over
// ScaLAPACK precisely because it sends almost nothing across the slow
// inter-site links. A job service that replays every job against a
// PRIVATE DesEngine hands each of ten concurrent jobs the full dark
// fiber, which quietly deletes the scarcity the paper is about. This
// model restores it: one grid-wide object owns three kinds of WAN
// horizon —
//
//   uplink(c)    what cluster c can push onto the wide area per second
//   downlink(c)  what cluster c can pull off the wide area per second
//   backbone     the shared trunk every inter-site byte crosses once
//
// and every in-flight attempt registers a *flow*: per-link byte pools
// pro-rated from its cached replay (per-cluster WAN counters plus the
// per-phase first-transfer instants the DesEngine records), each pool
// activating at the point of the replay timeline where the schedule
// first touches that link. TSQR's WAN phase sits at the END of the run
// (local factorizations first, R-factor reduction last), and the pools
// reproduce that: a freshly started job does not contend yet.
//
// Fair share: a link with capacity C and k flows holding undrained,
// activated pools gives each pool C/k bytes per second — per-flow
// max-min within one link, the same progress-horizon idiom DesEngine
// uses for its intra-replay WAN serialization, lifted to whole jobs.
// Rates are piecewise constant between events (a pool activating or
// running dry), so the service can advance its virtual clock to the
// next event exactly — no time-stepping, no tolerance drift.
//
// An attempt may complete only when every one of its pools has drained;
// its finish time becomes max(replay end, last drain). In isolation a
// flow's pools drain no later than the replay end (the replay already
// booked those bytes on a full-capacity horizon), so an uncontended run
// reproduces the cached replay times byte-for-byte; under contention
// finish times stretch, monotonically in the load.
#pragma once

#include <vector>

namespace qrgrid::sched {

class GridWanModel {
 public:
  /// One link-level component of an attempt's WAN demand.
  struct Pool {
    enum class Link { kUplink, kDownlink, kBackbone };
    Link link = Link::kBackbone;
    int cluster = -1;           ///< master cluster id; -1 for the backbone
    double bytes = 0.0;         ///< remaining demand on this link
    double activation_s = 0.0;  ///< absolute instant the demand appears
  };

  GridWanModel(int num_clusters, double link_Bps, double backbone_Bps);

  /// Admits one attempt's demand and returns its flow id. A flow with no
  /// pools (a single-cluster job) is born drained at `now_s`.
  int admit(double now_s, std::vector<Pool> pools);

  /// Drains every activated pool from `from_s` to `to_s` under the
  /// current fair shares. The caller must not step across an event:
  /// `to_s` may not exceed next_event_s(from_s).
  void advance(double from_s, double to_s);

  /// Earliest future instant the share structure changes — a pending
  /// pool activates or an activated pool runs dry at current rates.
  /// +infinity when nothing undrained is in flight.
  double next_event_s(double now_s) const;

  bool drained(int flow) const;
  /// Instant the flow's last pool ran dry (its admit time when it was
  /// born drained). Requires drained(flow).
  double drained_at_s(int flow) const;

  /// Retires the flow (completion or kill) and adds the bytes it
  /// actually moved to the per-cluster accumulators. Backbone pools are
  /// pure contention accounting and charge nothing.
  void retire(int flow, std::vector<long long>& egress_bytes,
              std::vector<long long>& ingress_bytes);

  /// Placement preference signal: live flows with undrained demand on
  /// this cluster's uplink or downlink, pending activations included —
  /// they will contend before a job placed now reaches its own WAN
  /// phase.
  int load_score(int cluster) const;

  /// Seconds the link carried at least one activated, undrained pool.
  double uplink_busy_s(int cluster) const {
    return up_busy_s_[static_cast<std::size_t>(cluster)];
  }
  double downlink_busy_s(int cluster) const {
    return down_busy_s_[static_cast<std::size_t>(cluster)];
  }
  double backbone_busy_s() const { return backbone_busy_s_; }

 private:
  struct Flow {
    bool alive = false;
    std::vector<Pool> pools;
    std::vector<double> moved_bytes;  ///< parallel to pools
    int undrained = 0;
    double drained_at_s = 0.0;
  };

  double capacity_of(const Pool& pool) const;
  /// Users sharing this pool's link, read from the scratch the latest
  /// count_users filled.
  int users_for(const Pool& pool, int backbone_users) const;
  /// Users per link among activated (activation_s <= now) undrained
  /// pools: fills the up_users_/down_users_ per-cluster scratch and
  /// returns the backbone count.
  int count_users(double now_s) const;

  int num_clusters_;
  double link_Bps_;
  double backbone_Bps_;
  std::vector<Flow> flows_;
  std::vector<double> up_busy_s_;
  std::vector<double> down_busy_s_;
  double backbone_busy_s_ = 0.0;
  /// count_users scratch, reused across the event loop's many calls.
  mutable std::vector<int> up_users_;
  mutable std::vector<int> down_users_;
};

}  // namespace qrgrid::sched

// Shared-WAN contention engine for the grid job service.
//
// The paper's scarce resource is the wide-area network: TSQR wins over
// ScaLAPACK precisely because it sends almost nothing across the slow
// inter-site links. A job service that replays every job against a
// PRIVATE DesEngine hands each of ten concurrent jobs the full dark
// fiber, which quietly deletes the scarcity the paper is about. This
// model restores it: one grid-wide object owns the WAN horizons —
//
//   uplink(c)    what cluster c can push onto the wide area per second
//   downlink(c)  what cluster c can pull off the wide area per second
//   backbone     the shared trunk every inter-site byte crosses once
//   pair(s,d)    optional per-(src,dst) horizons for asymmetric
//                backbones (set_pair capacities; 0 = unconstrained)
//
// and every in-flight attempt registers a *flow*: per-link byte pools
// pro-rated from its cached replay (per-cluster WAN counters plus the
// per-phase first-transfer instants the DesEngine records), each pool
// activating at the point of the replay timeline where the schedule
// first touches that link. TSQR's WAN phase sits at the END of the run
// (local factorizations first, R-factor reduction last), and the pools
// reproduce that: a freshly started job does not contend yet.
//
// HOW the activated pools share the links is a WanAllocator strategy:
//
//   equal-split (WanFairness::kEqualSplit, the regression baseline) —
//     every pool is a demand on exactly one link; a link with capacity C
//     and k activated pools gives each C/k. The trunk is modeled as one
//     extra pool per flow carrying its aggregate egress once. This is
//     the PR-3 kernel, byte-identical.
//
//   max-min (WanFairness::kMaxMin) — progressive filling over multi-link
//     demands: an uplink pool crosses {uplink(c), backbone} (plus its
//     pair(s,d) horizon when configured), so the trunk is a real shared
//     constraint instead of a parallel pool, and a flow bottlenecked on
//     one link returns its unused share on every other link it crosses —
//     the classic water-filling allocation. Separate backbone pools are
//     not admitted in this mode (the trunk constraint lives on the
//     uplink demands that actually cross it).
//
// Rates are piecewise constant between events (a pool activating or
// running dry) under either allocator, so the service can advance its
// virtual clock to the next event exactly — no time-stepping, no
// tolerance drift.
//
// An attempt may complete only when every one of its pools has drained;
// its finish time becomes max(replay end, last drain). In isolation a
// flow's pools drain no later than the replay end (the replay already
// booked those bytes on a full-capacity horizon), so an uncontended run
// reproduces the cached replay times byte-for-byte; under contention
// finish times stretch, monotonically in the load.
//
// INCREMENTAL MAX-MIN MAINTENANCE. Under max-min the model no longer
// runs a progressive-filling pass over every live flow at every
// consultation. Instead it keeps the allocation cached per pool and
// repairs it lazily: admissions, retirements, drains, and activations
// mark the links whose flow set changed dirty; the next consultation
// (advance / next_event_s) closes the dirty set over flows that share
// links with it — the *bottleneck component* — and re-runs the SAME
// progressive filling restricted to that component's demands. Because a
// component link's users and residuals receive exactly the terms they
// receive in the global fill (all demands crossing a component link are
// component demands, in the same live-order), the component-local fill
// is bit-identical to the global one, so fixed-seed max-min runs
// reproduce the historical full-recompute traces byte-for-byte. Rates
// read only fracs and capacities — never pool bytes — so cached rates
// stay exact across byte drains; flows whose pools can share a link
// (frac_sensitive) are the one exception and re-dirty their links as
// their bytes move. Deferring the repair to the next consultation also
// coalesces same-instant open/retire/drain bursts into ONE rebalance.
// The wan.rebalance.{events,recomputes,links_touched,full_refills}
// counters and the wan-rebalance profiler phase expose the machinery;
// set_rate_oracle_check() keeps the global fill as a differential
// oracle the cached rates are checked against after every recompute.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace qrgrid::sched {

class ServiceTracer;
class SnapshotWriter;
class SnapshotReader;
class PhaseProfiler;

/// Which WanAllocator a GridWanModel (or ServiceOptions) asks for.
enum class WanFairness {
  kEqualSplit,  ///< per-link C/k fair share (PR-3 baseline)
  kMaxMin,      ///< progressive-filling max-min over multi-link demands
};
/// Parses "equal" | "maxmin"; throws qrgrid::Error otherwise.
WanFairness wan_fairness_of(const std::string& name);
std::string wan_fairness_name(WanFairness fairness);

/// One activated, undrained pool as an allocator sees it: the links it
/// crosses (indices into the model's capacity table), the bytes left,
/// and its per-link share of the owning flow's bytes there. Fairness is
/// per FLOW, not per pool: a flow split across several pools on one
/// link (per-destination pair splits; multi-cluster uplinks crossing
/// the trunk) contributes its fracs — which sum to 1 — instead of one
/// full user per pool, so splitting never multiplies a flow's share.
/// Unsplit pools carry frac exactly 1.0, which keeps the equal-split
/// arithmetic bit-identical to the PR-3 kernel.
struct WanDemand {
  double bytes = 0.0;
  int flow = -1;  ///< owning flow id (what the fracs group by)
  int links[3] = {-1, -1, -1};
  double frac[3] = {1.0, 1.0, 1.0};  ///< flow-share per crossed link
  int nlinks = 0;
};

/// Rate-assignment strategy: fills `rate_Bps` (pre-sized, parallel to
/// `demands`) with every demand's drain rate given per-link capacities.
/// Stateless and deterministic — the event loop calls it at every
/// horizon event and the service relies on byte-identical replays.
class WanAllocator {
 public:
  virtual ~WanAllocator() = default;
  virtual std::string name() const = 0;
  virtual void assign_rates(const std::vector<WanDemand>& demands,
                            const std::vector<double>& capacity_Bps,
                            std::vector<double>& rate_Bps) const = 0;
};

/// Per-link C/k over FLOWS: a demand's rate is the minimum over its
/// links of (capacity / flow-users) x its frac of the flow there. With
/// the single-link, frac-1 demands the equal-split model builds by
/// default, this is exactly the PR-3 drain kernel.
class EqualSplitAllocator final : public WanAllocator {
 public:
  std::string name() const override { return "equal"; }
  void assign_rates(const std::vector<WanDemand>& demands,
                    const std::vector<double>& capacity_Bps,
                    std::vector<double>& rate_Bps) const override;
};

/// Progressive filling: repeatedly find the tightest link (smallest
/// remaining-capacity / unfrozen-demands), grant that share to every
/// demand crossing it, freeze them, and subtract the granted bandwidth
/// from every link they cross. Yields the max-min fair allocation.
class MaxMinAllocator final : public WanAllocator {
 public:
  std::string name() const override { return "maxmin"; }
  void assign_rates(const std::vector<WanDemand>& demands,
                    const std::vector<double>& capacity_Bps,
                    std::vector<double>& rate_Bps) const override;
};

std::unique_ptr<WanAllocator> make_wan_allocator(WanFairness fairness);

class GridWanModel {
 public:
  /// One link-level component of an attempt's WAN demand.
  struct Pool {
    enum class Link { kUplink, kDownlink, kBackbone };
    Link link = Link::kBackbone;
    int cluster = -1;           ///< master cluster id; -1 for the backbone
    /// Destination (uplink) / source (downlink) cluster of a per-pair
    /// split pool; -1 for aggregate pools and the backbone.
    int peer = -1;
    double bytes = 0.0;         ///< remaining demand on this link
    double activation_s = 0.0;  ///< absolute instant the demand appears
  };

  /// `pair_Bps` is an optional row-major num_clusters x num_clusters
  /// matrix of per-(src,dst) horizons in bytes/second (0 entries are
  /// unconstrained); empty disables pair horizons. When set, callers
  /// should admit per-peer split uplink pools (pair_aware()).
  GridWanModel(int num_clusters, double link_Bps, double backbone_Bps,
               WanFairness fairness = WanFairness::kEqualSplit,
               std::vector<double> pair_Bps = {});

  WanFairness fairness() const { return fairness_; }
  /// True when per-(src,dst) horizons are configured — the signal for
  /// callers to split uplink demand per destination pair.
  bool pair_aware() const { return !pair_Bps_.empty(); }

  /// Admits one attempt's demand and returns its flow id. A flow with no
  /// pools (a single-cluster job) is born drained at `now_s`. Under
  /// max-min fairness, kBackbone pools are dropped (the trunk constraint
  /// lives on the uplink demands crossing it).
  int admit(double now_s, std::vector<Pool> pools);

  /// Drains every activated pool from `from_s` to `to_s` under the
  /// allocator's current rates. The caller must not step across an
  /// event: `to_s` may not exceed next_event_s(from_s).
  void advance(double from_s, double to_s);

  /// Earliest future instant the share structure changes — a pending
  /// pool activates or an activated pool runs dry at current rates.
  /// +infinity when nothing undrained is in flight.
  double next_event_s(double now_s) const;

  bool drained(int flow) const;
  /// Instant the flow's last pool ran dry (its admit time when it was
  /// born drained). Requires drained(flow).
  double drained_at_s(int flow) const;

  /// Planning estimate of when the flow's last pool will run dry,
  /// assuming pessimistic shares: every undrained pool in the model
  /// (activated or not) is counted a user on its links, and each of the
  /// flow's pools then drains from max(now, activation) at that rate.
  /// Not a proof — admissions after `now_s` can still stretch it — but
  /// what a WAN-priced EASY shadow plans with. Returns drained_at_s for
  /// drained flows.
  double drain_estimate_s(int flow, double now_s) const;
  /// Batched drain_estimate_s over the requested flows at once: ONE
  /// shared pessimistic demand view instead of one per flow — what
  /// shadow_time calls, since it prices all running flows at the same
  /// instant. `out` is filled parallel to `flows`; retired flows report
  /// 0. Callers pass the flows they hold, so the cost scales with
  /// in-flight attempts, never with flows ever admitted.
  void drain_estimates_s(double now_s, const std::vector<int>& flows,
                         std::vector<double>& out) const;

  /// Retires the flow (completion or kill) and adds the bytes it
  /// actually moved to the per-cluster accumulators. Backbone pools are
  /// pure contention accounting and charge nothing.
  void retire(int flow, std::vector<long long>& egress_bytes,
              std::vector<long long>& ingress_bytes);

  /// Placement preference signal: live flows with undrained demand on
  /// this cluster's uplink or downlink, pending activations included —
  /// they will contend before a job placed now reaches its own WAN
  /// phase.
  int load_score(int cluster) const;
  /// Live flows with undrained demand that crosses the trunk (uplink or
  /// explicit backbone pools, pending activations included) — the
  /// admission-pricing analogue of load_score for the shared backbone.
  int backbone_load() const;
  double backbone_Bps() const { return backbone_Bps_; }

  /// Observability seam: when set, the model emits kWanFlowOpen /
  /// kWanFlowRetire / kWanRebalance events (sched/telemetry.hpp) as
  /// flows are admitted, retired, and as the share structure changes.
  /// Null (the default) records nothing and costs nothing.
  void set_tracer(ServiceTracer* tracer) { tracer_ = tracer; }
  /// When set, component recomputes of the incremental max-min engine
  /// are timed under ProfilePhase::kWanRebalance. Null costs nothing.
  void set_profiler(PhaseProfiler* profiler) { profiler_ = profiler; }

  /// Incremental max-min engine telemetry (equal-split runs report 0):
  /// structural events absorbed (admissions/retirements with undrained
  /// demand, pool activations, pool drains), component recomputes those
  /// events coalesced into, links touched summed over recomputes, and
  /// recomputes whose component spanned every busy link (the global-
  /// fill fallback). full_refills << events is the scaling claim.
  std::uint64_t rebalance_events() const { return rebalance_events_; }
  std::uint64_t rebalance_recomputes() const { return rebalance_recomputes_; }
  std::uint64_t rebalance_links_touched() const {
    return rebalance_links_touched_;
  }
  std::uint64_t rebalance_full_refills() const {
    return rebalance_full_refills_;
  }
  /// Monotone counter bumped on every structural change (admission /
  /// retirement with undrained demand, pool drain, frac-sensitive byte
  /// movement) — the key the drain-estimate basis cache is valid under.
  std::uint64_t rebalance_generation() const { return generation_; }

  /// Differential-oracle mode (tests): after every component recompute,
  /// re-run the GLOBAL progressive fill over the full demand view and
  /// accumulate the worst |cached - oracle| rate divergence. The
  /// component argument says the divergence is exactly 0.0; the suite
  /// gates at 1e-12.
  void set_rate_oracle_check(bool on) { oracle_check_ = on; }
  double max_oracle_rate_error() const { return max_oracle_error_; }

  /// Seconds the link carried at least one activated, undrained pool.
  double uplink_busy_s(int cluster) const {
    return up_busy_s_[static_cast<std::size_t>(cluster)];
  }
  double downlink_busy_s(int cluster) const {
    return down_busy_s_[static_cast<std::size_t>(cluster)];
  }
  double backbone_busy_s() const { return backbone_busy_s_; }

  /// Flows admitted and not yet retired — what every per-step walk
  /// scales with (the `wan.live_flows` gauge). Bounded by in-flight
  /// attempts however many flows the run ever admits.
  int live_flows() const { return static_cast<int>(live_.size()); }
  int peak_live_flows() const { return peak_live_; }

  /// Snapshot seam: serializes the full mutable drain state — flows with
  /// their pools/moved/initial bytes, slot free-list, live order, id
  /// counter, the pending-activation heap array VERBATIM (its pruning is
  /// call-timing-dependent, so rebuilding it would change later heap
  /// mutations), the busy-second accumulators, and the incremental
  /// engine's per-pool rates/active flags, dirty-link list, generation,
  /// and counters (so resumed runs reproduce the wan.rebalance.* gauges
  /// byte-identically). Per-link user counts, load counters, and the
  /// estimate basis are derived on load. load_state() must be applied
  /// to a model freshly constructed with the same topology/capacity
  /// configuration; scratch buffers are rebuilt lazily.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  struct Flow {
    bool alive = false;
    int id = -1;  ///< public flow id; slots are reused, ids never are
    std::vector<Pool> pools;
    std::vector<double> moved_bytes;  ///< parallel to pools
    /// Admission-time pool sizes (parallel to pools): the denominator of
    /// the relative drain-retirement epsilon — FP dust left by
    /// progressive filling below 1e-12 of the original pool retires
    /// instead of keeping the flow live through degenerate steps.
    std::vector<double> initial_bytes;
    int undrained = 0;
    double drained_at_s = 0.0;
    /// Incremental max-min engine state, parallel to pools (empty under
    /// equal-split): the cached drain rate from the last component
    /// recompute, and whether the pool is in the activated-undrained set
    /// those rates cover.
    std::vector<double> rate_Bps;
    std::vector<char> active;
    /// True when two undrained pools of this flow can share a link, so
    /// byte drains move the flow's per-link fracs: cached rates and the
    /// estimate basis must be refreshed as its bytes move, not only on
    /// structural changes. (A plain 2-site TSQR flow — one uplink, one
    /// downlink pool — is NOT sensitive; its fracs are exactly 1.0.)
    bool frac_sensitive = false;
    /// Load-counter membership: the clusters this flow currently counts
    /// toward in cluster_load_, and whether it counts in trunk_load_.
    std::vector<int> counted_clusters;
    bool counted_trunk = false;
  };
  /// One entry of the demand view handed to the allocator: which SLOT's
  /// which pool each rate belongs to.
  struct PoolRef {
    int flow = 0;
    int pool = 0;
  };
  /// Calendar entry: the instant a pending pool's demand appears. Keyed
  /// by public flow id so retirement invalidates entries lazily (slot
  /// reuse cannot resurrect them).
  struct Activation {
    double t_s = 0.0;
    int flow = -1;
    int pool = -1;
  };

  /// Link ids in the allocator's capacity table: [0, C) uplinks,
  /// [C, 2C) downlinks, 2C the backbone, then (when pair horizons are
  /// configured) 2C + 1 + src * C + dst per pair.
  int link_id(const Pool& pool) const;
  /// Links the pool crosses under the active fairness mode.
  int links_of(const Pool& pool, int out[3]) const;
  /// Builds the activated-undrained demand view at `now_s` (or, when
  /// `include_pending`, every undrained pool regardless of activation —
  /// the pessimistic planning view) and the allocator's rates for it.
  void demand_view(double now_s, bool include_pending,
                   std::vector<PoolRef>& refs,
                   std::vector<WanDemand>& demands,
                   std::vector<double>& rates) const;

  /// --- incremental max-min engine (no-ops under equal-split) ---
  /// Pops every pending activation at or before `now_s` into the active
  /// set, then repairs the cached rates if any link is dirty. Invoked
  /// from const queries via const_cast: lazy maintenance, logically
  /// const.
  void refresh(double now_s);
  /// Closes the dirty links over flows sharing links with them (the
  /// bottleneck component) and re-runs progressive filling restricted
  /// to that component's demands — bit-identical to the global fill.
  void rebalance(double now_s);
  void activate_pool(Flow& flow, int pool);
  void deactivate_pool(Flow& flow, int pool);
  void mark_dirty(int link);
  bool compute_frac_sensitive(const Flow& flow) const;
  /// Incremental load_score/backbone_load maintenance (both modes).
  void count_load(Flow& flow);
  void uncount_load(Flow& flow);
  void bump_generation() { ++generation_; }

  int num_clusters_;
  double link_Bps_;
  double backbone_Bps_;
  /// False when backbone_Bps_ is infinite: an unconstrained core can
  /// never bind, so the trunk drops out of the constraint graph and
  /// max-min components stay per-site islands instead of chaining
  /// through the shared link (same idiom as a 0-capacity pair entry).
  bool trunk_constrained_ = true;
  WanFairness fairness_;
  std::vector<double> pair_Bps_;   ///< row-major src x dst; empty = off
  std::vector<double> capacity_;   ///< per link id
  std::unique_ptr<WanAllocator> allocator_;
  ServiceTracer* tracer_ = nullptr;
  /// Slot-indexed flow storage. retire() recycles slots through
  /// free_slots_, so memory scales with PEAK in-flight flows, not flows
  /// ever admitted; public ids stay monotone for the tracer.
  std::vector<Flow> flows_;
  std::vector<int> free_slots_;
  /// Slots of alive flows in admission (id) order — every walk
  /// (demand_view, load scores, rebalance counting) iterates THIS, so
  /// per-step cost scales with live flows and the floating-point
  /// accumulation order the allocators see matches the historical
  /// all-flows-skipping-dead order exactly (dead flows contributed no
  /// terms).
  std::vector<int> live_;
  std::unordered_map<int, int> slot_of_;  ///< public flow id -> slot
  int next_flow_id_ = 0;
  int peak_live_ = 0;
  /// Pending pool activations as a lazy min-heap over t_s: next_event_s
  /// consults the top instead of rescanning every pool; entries of
  /// retired flows or past instants are discarded on sight.
  mutable std::vector<Activation> activations_;
  std::vector<double> up_busy_s_;
  std::vector<double> down_busy_s_;
  double backbone_busy_s_ = 0.0;
  /// demand_view scratch, reused across the event loop's many calls.
  mutable std::vector<PoolRef> refs_scratch_;
  mutable std::vector<WanDemand> demands_scratch_;
  mutable std::vector<double> rates_scratch_;
  mutable std::vector<double> estimates_scratch_;  ///< per slot
  /// Per-flow per-link byte totals (frac computation); zeroed via the
  /// touched list, so its sites^2-with-pairs size is paid once.
  mutable std::vector<double> flow_link_scratch_;
  mutable std::vector<int> touched_scratch_;

  /// --- incremental max-min engine state (idle under equal-split) ---
  PhaseProfiler* profiler_ = nullptr;
  /// Activated-undrained demands per link; busy_links_ counts links with
  /// a nonzero entry (what the full-refill classification compares
  /// against), active_pools_ the total activated-undrained pool count.
  std::vector<int> link_users_;
  int busy_links_ = 0;
  int active_pools_ = 0;
  /// Links whose activated flow set (or a sensitive flow's fracs)
  /// changed since the last recompute; dirty_mark_ dedupes the list.
  std::vector<int> dirty_links_;
  std::vector<char> dirty_mark_;
  std::uint64_t generation_ = 0;
  std::uint64_t rebalance_events_ = 0;
  std::uint64_t rebalance_recomputes_ = 0;
  std::uint64_t rebalance_links_touched_ = 0;
  std::uint64_t rebalance_full_refills_ = 0;
  bool oracle_check_ = false;
  mutable double max_oracle_error_ = 0.0;
  /// Component-closure scratch: marked links and the list to unmark.
  mutable std::vector<char> comp_mark_;
  mutable std::vector<int> comp_links_;
  mutable std::vector<PoolRef> comp_refs_;
  mutable std::vector<WanDemand> comp_demands_;
  mutable std::vector<double> comp_rates_;

  /// Drain-estimate basis cache: the pessimistic demand view's refs and
  /// rates depend only on the structural generation (never on now_s or
  /// the bytes of frac-insensitive flows), so shadow pricing between
  /// structural changes reuses them instead of re-filling.
  mutable bool est_basis_valid_ = false;
  mutable std::uint64_t est_basis_generation_ = 0;
  mutable std::vector<PoolRef> est_refs_;
  mutable std::vector<WanDemand> est_demands_;
  mutable std::vector<double> est_rates_;

  /// Incremental load_score/backbone_load counters (both modes),
  /// mirrored by each flow's counted_clusters/counted_trunk membership.
  std::vector<int> cluster_load_;
  int trunk_load_ = 0;
};

}  // namespace qrgrid::sched

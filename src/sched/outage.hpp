// Cluster outage model for the grid job service.
//
// Grid'5000 sites drop out: a reservation ends, a chilled-water loop
// trips, an admin reboots the frontend — and every node of the site is
// gone at once. The service consumes outages as a sorted stream of
// down/up boundaries in virtual time, either from an explicit interval
// list (tests, replayed operator logs) or from a seeded per-cluster
// alternating-renewal generator (up-time ~ Exp(mtbf), down-time ~
// Exp(mean_outage)) that lazily extends to any horizon, so callers never
// have to guess the makespan in advance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace qrgrid::sched {

class SnapshotWriter;
class SnapshotReader;

/// One whole-cluster outage interval: the site is unusable in
/// [start_s, end_s) and every job holding nodes there at start_s dies.
struct Outage {
  int cluster = 0;
  double start_s = 0.0;
  double end_s = 0.0;  ///< recovery instant; must be > start_s
};

/// Knobs of the seeded outage generator. mtbf_s == 0 disables faults.
struct OutageSpec {
  double mtbf_s = 0.0;         ///< mean up-time per cluster between failures
  double mean_outage_s = 30.0; ///< mean repair time once a cluster is down
  std::uint64_t seed = 1;
};

/// One boundary of an outage interval, as the service consumes them.
struct OutageEvent {
  double time_s = 0.0;
  int cluster = 0;
  bool down = false;  ///< true: cluster fails; false: cluster recovers
};

/// Sorted stream of outage boundaries. Value semantics: copying a trace
/// copies its cursor/generator state, so the service can replay one
/// ServiceOptions trace per run() without consuming the original.
///
/// Event precedence at equal virtual times: recovery before failure,
/// then lower cluster id — matching the service's global rule that
/// completions are processed before outages, and outages before arrivals.
class OutageTrace {
 public:
  OutageTrace() = default;  ///< no outages, ever

  /// Explicit interval list; throws qrgrid::Error on malformed intervals.
  /// Intervals may overlap (the service nests them with a depth count).
  explicit OutageTrace(std::vector<Outage> outages);

  /// Seeded alternating-renewal generator, one independent stream per
  /// cluster (per-cluster seeds derived by splitmix64 diffusion).
  OutageTrace(const OutageSpec& spec, int num_clusters);

  /// False iff the trace can never emit an event.
  bool enabled() const { return cursor_ < events_.size() || !streams_.empty(); }

  /// Virtual time of the next boundary; +infinity when exhausted.
  double peek_s() const;

  /// Consumes and returns the next boundary. Requires peek_s() < inf.
  OutageEvent pop();

  /// Serializes only the consumable position — the explicit-mode cursor
  /// and the generated-mode per-cluster RNG/next-boundary/phase — so a
  /// restored service replays the exact same outage future, including
  /// generator draws that haven't happened yet. The interval list and
  /// spec are NOT written; load_state() must be applied to a trace
  /// freshly constructed from the same configuration.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

  /// Configuration digest for the service snapshot fingerprint: a hash
  /// over the defining boundary list (explicit mode) or the generator
  /// means and initial per-cluster stream states (generated mode).
  /// Consumable position (cursor, consumed draws) is excluded — the key
  /// guards that load_state() lands on a trace built from the same
  /// configuration, which is its documented precondition.
  std::string config_key() const;

 private:
  struct Stream {  ///< lazy generator state for one cluster
    Rng rng;
    double next_s = 0.0;
    bool down = false;  ///< current state; the next event flips it
  };
  double draw_exp(Rng& rng, double mean) const;

  // Explicit mode: pre-sorted boundaries consumed through cursor_.
  std::vector<OutageEvent> events_;
  std::size_t cursor_ = 0;
  // Generated mode: per-cluster renewal processes.
  double mean_up_s_ = 0.0;
  double mean_down_s_ = 0.0;
  std::vector<Stream> streams_;
};

}  // namespace qrgrid::sched

#include "sched/backend.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "core/caqr.hpp"
#include "core/des_algos.hpp"
#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "model/costs.hpp"
#include "msg/comm.hpp"
#include "sched/telemetry.hpp"
#include "simgrid/cost.hpp"
#include "simgrid/des.hpp"

namespace qrgrid::sched {

BackendKind backend_of(const std::string& name) {
  if (name == "des") return BackendKind::kDesReplay;
  if (name == "msg") return BackendKind::kMsgRuntime;
  throw Error("unknown --backend '" + name + "' (des|msg)");
}

std::string backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kDesReplay:
      return "des-replay";
    case BackendKind::kMsgRuntime:
      return "msg-runtime";
  }
  throw Error("unreachable backend kind");
}

SubTopology make_sub_topology(const simgrid::GridTopology& master,
                              const std::vector<int>& nodes_per_cluster,
                              const std::vector<int>& order) {
  std::vector<simgrid::ClusterSpec> clusters;
  std::vector<int> to_master;
  for (const int c : order) {
    const int nodes = nodes_per_cluster[static_cast<std::size_t>(c)];
    if (nodes <= 0) continue;
    simgrid::ClusterSpec spec = master.cluster(c);
    spec.nodes = nodes;
    clusters.push_back(spec);
    to_master.push_back(c);
  }
  QRGRID_CHECK(!clusters.empty());
  const std::size_t k = clusters.size();
  std::vector<std::vector<simgrid::LinkParams>> inter(
      k, std::vector<simgrid::LinkParams>(k));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      inter[i][j] = i == j ? master.intra_cluster_link()
                           : master.inter_cluster_link(
                                 to_master[i], to_master[j]);
    }
  }
  return SubTopology{
      simgrid::GridTopology(std::move(clusters), master.intra_node_link(),
                            master.intra_cluster_link(), std::move(inter)),
      std::move(to_master)};
}

std::vector<int> identity_order(int num_clusters) {
  std::vector<int> order(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    order[static_cast<std::size_t>(c)] = c;
  }
  return order;
}

namespace {

/// Sub-topology of the granted nodes in canonical (identity) order —
/// shared by the replay and the real execution so both run the job on the
/// SAME simulated hardware.
SubTopology placement_topology(const simgrid::GridTopology& master,
                               const Placement& placement) {
  std::vector<int> nodes_per_cluster(
      static_cast<std::size_t>(master.num_clusters()), 0);
  for (std::size_t i = 0; i < placement.clusters.size(); ++i) {
    nodes_per_cluster[static_cast<std::size_t>(placement.clusters[i])] =
        placement.nodes[i];
  }
  return make_sub_topology(master, nodes_per_cluster,
                           identity_order(master.num_clusters()));
}

}  // namespace

const std::vector<ProfileExemplar>& ExecutionBackend::profile_exemplars()
    const {
  static const std::vector<ProfileExemplar> kEmpty;
  return kEmpty;
}

DesReplayBackend::DesReplayBackend(const simgrid::GridTopology* topology,
                                   model::Roofline roofline,
                                   BackendOptions options)
    : topology_(topology), roofline_(roofline), options_(options) {
  QRGRID_CHECK(topology != nullptr);
  QRGRID_CHECK(options_.domains_per_cluster >= 0 ||
               options_.domains_per_cluster == core::kOneDomainPerProcess);
  QRGRID_CHECK_MSG(options_.wan_link_Bps > 0.0,
                   "wan_link_Bps must be positive (got "
                       << options_.wan_link_Bps << ")");
}

const ExecutionProfile& DesReplayBackend::profile(const Job& job,
                                                  const Placement& placement) {
  std::ostringstream key;
  key.precision(17);  // round-trip doubles: distinct m must not collide
  key << job.m << ':' << job.n << ':' << static_cast<int>(job.tree) << ':'
      << options_.domains_per_cluster << ':' << options_.wan_link_Bps;
  for (std::size_t i = 0; i < placement.clusters.size(); ++i) {
    key << (i == 0 ? ';' : ',') << placement.clusters[i] << 'x'
        << placement.nodes[i];
  }
  const auto cached = profile_cache_.find(key.str());
  if (cached != profile_cache_.end()) {
    if (metrics_ != nullptr) metrics_->add("backend.profile_hits");
    return cached->second;
  }
  if (metrics_ != nullptr) metrics_->add("backend.profile_misses");

  SubTopology sub = placement_topology(*topology_, placement);

  int domains = options_.domains_per_cluster;
  if (domains == 0) {
    // Auto: one domain per process while panels are narrow (Fig. 6's
    // regime), at most 16 for N > 128 where the combine flops stop paying
    // for themselves (Fig. 7b).
    int min_procs = sub.topology.cluster(0).procs();
    for (int c = 1; c < sub.topology.num_clusters(); ++c) {
      min_procs = std::min(min_procs, sub.topology.cluster(c).procs());
    }
    domains = std::min(min_procs, job.n <= 128 ? 64 : 16);
  }

  simgrid::DesEngine engine(&sub.topology, roofline_);
  engine.set_wan_aggregate_Bps(options_.wan_link_Bps);
  engine.record_wan_transfers(options_.record_wan_transfers);
  const core::DomainLayout layout =
      core::make_domain_layout(sub.topology, domains);
  core::des_tsqr(engine, layout.groups, layout.domain_cluster, job.m, job.n,
                 job.tree, /*form_q=*/false);

  ExecutionProfile profile;
  profile.seconds = engine.makespan();
  profile.gflops =
      model::useful_flops(job.m, job.n) / profile.seconds / 1e9;
  profile.compute_utilization = engine.compute_utilization();
  const auto k = static_cast<std::size_t>(sub.topology.num_clusters());
  profile.egress_first_fraction.assign(k, 1.0);
  profile.ingress_first_fraction.assign(k, 1.0);
  for (int c = 0; c < sub.topology.num_clusters(); ++c) {
    profile.egress_bytes.push_back(engine.wan_egress_bytes(c));
    profile.ingress_bytes.push_back(engine.wan_ingress_bytes(c));
  }
  // Per-phase WAN demand: the first instant each cluster's uplink or
  // downlink carries a byte, as a fraction of the replay — the compute
  // prefix the shared-WAN model lets pass contention-free. Transfers
  // start strictly before the makespan, so the clamp only guards
  // degenerate zero-length replays.
  for (const simgrid::DesEngine::WanTransfer& t : engine.wan_transfers()) {
    const double frac =
        profile.seconds > 0.0
            ? std::min(t.start_s / profile.seconds, 1.0 - 1e-12)
            : 0.0;
    auto& first_out = profile.egress_first_fraction[
        static_cast<std::size_t>(t.src_cluster)];
    auto& first_in = profile.ingress_first_fraction[
        static_cast<std::size_t>(t.dst_cluster)];
    first_out = std::min(first_out, frac);
    first_in = std::min(first_in, frac);
  }
  const ExecutionProfile& entry =
      profile_cache_.emplace(key.str(), std::move(profile)).first->second;
  // Exemplar for snapshot pre-warm: the key above is a pure function of
  // (job shape, placement, backend options), so replaying this pair
  // recomputes exactly this cache entry.
  exemplars_.push_back(ProfileExemplar{job, placement});
  if (tracer_ != nullptr) {
    ServiceTraceEvent ev;
    ev.t_s = tracer_->now_s();
    ev.kind = TraceKind::kProfileCompute;
    ev.job = job.id;
    ev.value = entry.seconds;
    tracer_->record(std::move(ev));
  }
  return entry;
}

ExecutionResult MsgRuntimeBackend::execute(const Job& job,
                                           const Placement& placement,
                                           double abort_vtime_s) {
  const auto m_total = static_cast<std::int64_t>(std::llround(job.m));
  const auto n = static_cast<Index>(job.n);
  QRGRID_CHECK_MSG(static_cast<double>(m_total) * job.n <=
                       options_.max_execute_elements,
                   "job " << job.id << " (" << job.m << " x " << job.n
                          << ") is too large for the msg-runtime backend "
                             "(max_execute_elements = "
                          << options_.max_execute_elements
                          << "); run it on the des-replay backend");

  SubTopology sub = placement_topology(*topology_, placement);
  const int procs = sub.topology.total_procs();
  QRGRID_CHECK_MSG(m_total / procs >= n,
                   "job " << job.id << ": " << m_total << " rows over "
                          << procs
                          << " granted processes leaves local blocks "
                             "shorter than n = "
                          << n);
  const std::vector<int> rank_cluster = sub.topology.rank_clusters();
  const auto blocks = core::partition_rows(m_total, procs);

  auto cost = std::make_shared<simgrid::TopologyCostModel>(sub.topology,
                                                           roofline_);
  msg::Runtime runtime(procs, std::move(cost));
  runtime.set_vtime_limit(abort_vtime_s);

  // Every job factors a genuinely distinct matrix: the payload seed is a
  // per-job-id diffusion of the backend seed (same idiom as the outage
  // generator's per-cluster streams).
  const std::uint64_t seed =
      options_.matrix_seed +
      0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(job.id + 1);
  const bool use_caqr =
      options_.caqr_panel_width > 0 && job.n > options_.caqr_panel_width;

  std::vector<Matrix> q_blocks(static_cast<std::size_t>(procs));
  std::vector<double> factor_vtime(static_cast<std::size_t>(procs), 0.0);
  Matrix r;

  ExecutionResult result;
  result.executed = true;
  try {
    runtime.run([&](msg::Comm& comm) {
      const auto me = static_cast<std::size_t>(comm.rank());
      Matrix local(static_cast<Index>(blocks[me].count), n);
      fill_gaussian_rows(local.view(), static_cast<Index>(blocks[me].offset),
                         seed);
      if (use_caqr) {
        core::CaqrOptions opts;
        opts.panel_width = options_.caqr_panel_width;
        opts.tsqr.tree = job.tree;
        opts.tsqr.rank_cluster = rank_cluster;
        core::CaqrFactors f = core::caqr_factor(
            comm, local.view(), static_cast<Index>(blocks[me].offset), opts);
        factor_vtime[me] = comm.vtime();
        q_blocks[me] = core::caqr_form_explicit_q(comm, f);
        if (comm.rank() == 0) r = std::move(f.r);
      } else {
        core::TsqrOptions opts;
        opts.tree = job.tree;
        opts.rank_cluster = rank_cluster;
        core::TsqrFactors f = core::tsqr_factor(comm, local.view(), opts);
        factor_vtime[me] = comm.vtime();
        q_blocks[me] = core::tsqr_form_explicit_q(comm, f);
        if (comm.rank() == 0) r = std::move(f.r);  // the tree root
      }
    });
  } catch (const msg::VtimeLimitError&) {
    // The injected kill landed: a genuine partial execution, aborted
    // through the same propagation machinery as any rank death. How far
    // the clocks really got is the run's measured truncation point.
    result.aborted = true;
  }
  auto note_execution = [&](const ExecutionResult& r) {
    if (metrics_ != nullptr) {
      metrics_->add("backend.executions");
      if (r.aborted) metrics_->add("backend.aborted_executions");
    }
    if (tracer_ != nullptr) {
      ServiceTraceEvent ev;
      ev.t_s = tracer_->now_s();
      ev.kind = TraceKind::kExecute;
      ev.job = job.id;
      ev.value = r.measured_s;
      ev.value2 = r.aborted ? 1.0 : 0.0;
      tracer_->record(std::move(ev));
    }
  };
  if (result.aborted) {
    // run() rethrew before returning stats; the partial clocks survive.
    result.measured_s = runtime.last_run_stats().max_vtime;
    note_execution(result);
    return result;
  }

  // Completed: the measured makespan is the factorization's critical path
  // (clocks snapshotted before Q formation, matching the form_q=false
  // replay), and the numerics gate runs on the fully materialized Q.
  result.measured_s =
      *std::max_element(factor_vtime.begin(), factor_vtime.end());
  Matrix a(static_cast<Index>(m_total), n);
  fill_gaussian_rows(a.view(), 0, seed);
  Matrix q(static_cast<Index>(m_total), n);
  for (int rank = 0; rank < procs; ++rank) {
    const auto& blk = blocks[static_cast<std::size_t>(rank)];
    copy(q_blocks[static_cast<std::size_t>(rank)].view(),
         q.block(static_cast<Index>(blk.offset), 0,
                 static_cast<Index>(blk.count), n));
  }
  result.residual = factorization_residual(a.view(), q.view(), r.view());
  result.orthogonality = orthogonality_error(q.view());
  note_execution(result);
  return result;
}

std::unique_ptr<ExecutionBackend> make_backend(
    BackendKind kind, const simgrid::GridTopology* topology,
    model::Roofline roofline, const BackendOptions& options) {
  switch (kind) {
    case BackendKind::kDesReplay:
      return std::make_unique<DesReplayBackend>(topology, roofline, options);
    case BackendKind::kMsgRuntime:
      return std::make_unique<MsgRuntimeBackend>(topology, roofline, options);
  }
  throw Error("unreachable backend kind");
}

}  // namespace qrgrid::sched

// Job model and policy-ordered pending queue of the grid job service.
//
// The paper factors ONE tall-skinny matrix across the grid; the service
// layer queues STREAMS of such factorizations. A Job is the request (when
// it arrives, the matrix shape, how many processes it wants, which
// reduction tree); the JobQueue holds not-yet-started jobs in the order
// mandated by the active scheduling policy.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "core/tree.hpp"

namespace qrgrid::sched {

/// How the pending queue is ordered and whether holes may be backfilled.
enum class Policy {
  kFcfs,          ///< strict arrival order; the head blocks everything
  kSpjf,          ///< shortest predicted job first (Section-IV cost model)
  kEasyBackfill,  ///< FCFS head + EASY backfilling behind its reservation
};

/// Parses "fcfs" | "spjf" | "easy"; throws qrgrid::Error otherwise.
Policy policy_of(const std::string& name);
std::string policy_name(Policy policy);

/// One queued TSQR factorization request.
struct Job {
  int id = 0;
  double arrival_s = 0.0;  ///< virtual submission time
  double m = 0.0;          ///< matrix rows
  int n = 0;               ///< matrix columns (tall-skinny: m >> n)
  int procs = 0;           ///< processes requested (rounded up to nodes)
  int priority = 0;        ///< larger runs earlier among FCFS/EASY equals
  core::TreeKind tree = core::TreeKind::kGridHierarchical;
  /// User-supplied walltime estimate (the batch system's -l walltime=…).
  /// 0 = unlimited. When set, EASY's reservation and backfill decisions
  /// use THIS number while execution uses the exact replay — and the job
  /// is killed (finally, no requeue) if an attempt runs past it.
  double walltime_s = 0.0;
};

/// How a job left the service.
enum class JobFate {
  kCompleted,       ///< factorization finished
  kWalltimeKilled,  ///< attempt exceeded the user walltime (final)
  kOutageFailed,    ///< outage-killed with no retries left (final)
};
std::string fate_name(JobFate fate);

/// What the service records when a job leaves it — by completing or by
/// being killed for the last time. Exactly one outcome per submitted job.
struct JobOutcome {
  Job job;
  double start_s = 0.0;        ///< start of the final attempt
  double finish_s = 0.0;       ///< completion or final kill instant
  double service_s = 0.0;      ///< virtual seconds held by the final attempt
  double gflops = 0.0;         ///< useful rate inside the allocation
  std::vector<int> clusters;   ///< master cluster ids the job ran on
  std::vector<int> nodes_per_cluster;  ///< parallel to `clusters`
  int nodes = 0;               ///< total nodes held for service_s
  bool backfilled = false;     ///< started ahead of an EASY reservation
  JobFate fate = JobFate::kCompleted;
  int attempts = 1;            ///< 1 + number of outage requeues
  double wasted_node_s = 0.0;  ///< node-seconds burnt by killed attempts
  double credited_s = 0.0;     ///< replay seconds banked by restart credit
  /// Tightest shadow time EASY ever promised while this job was the
  /// blocked head (+inf when it never was); the service guarantees
  /// start_s <= reserved_start_s in fault-free, contention-free runs.
  double reserved_start_s = std::numeric_limits<double>::infinity();
  /// Shared-WAN stretch of the final attempt: service_s over what the
  /// attempt would have taken on an idle grid (its cached replay
  /// remainder plus checkpoint overhead). Exactly 1 when contention
  /// modeling is off; >= 1 for completed jobs when it is on (< 1 can
  /// only appear on killed attempts, whose service_s was truncated).
  double wan_slowdown = 1.0;

  /// --- Real-execution record of the FINAL attempt (msg-runtime backend
  /// only; all neutral under the des-replay backend). ---
  bool executed = false;      ///< the attempt actually ran on msg::Runtime
  bool exec_aborted = false;  ///< and was killed mid-run (outage/walltime)
  /// Measured virtual makespan of the real factorization (to the abort
  /// point for killed attempts); 0 when not executed.
  double measured_s = 0.0;
  /// Real numerics of the completed execution; NaN when not executed or
  /// aborted before the factorization finished.
  double residual = std::numeric_limits<double>::quiet_NaN();
  double orthogonality = std::numeric_limits<double>::quiet_NaN();

  bool completed() const { return fate == JobFate::kCompleted; }
  double wait_s() const { return start_s - job.arrival_s; }
  double turnaround_s() const { return finish_s - job.arrival_s; }
};

/// Pending jobs in policy order. FCFS and EASY order by (priority desc,
/// arrival, id); SPJF by (predicted runtime, id). Insertion keeps the
/// sequence sorted so `front()` is always the next job the policy owes.
class JobQueue {
 public:
  explicit JobQueue(Policy policy) : policy_(policy) {}

  /// `predicted_s` is the Section-IV runtime estimate (SPJF's sort key;
  /// stored for reporting under the other policies).
  void push(Job job, double predicted_s);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  const Job& front() const { return entries_.front().job; }
  Job pop_front() { return remove(0); }

  /// Positional access for the backfilling scan.
  const Job& at(std::size_t i) const { return entries_[i].job; }
  double predicted_at(std::size_t i) const {
    return entries_[i].predicted_s;
  }
  Job remove(std::size_t i);

 private:
  struct Entry {
    Job job;
    double predicted_s = 0.0;
  };
  bool before(const Entry& a, const Entry& b) const;

  Policy policy_;
  std::vector<Entry> entries_;
};

}  // namespace qrgrid::sched

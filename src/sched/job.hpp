// Job model and policy-ordered pending queue of the grid job service.
//
// The paper factors ONE tall-skinny matrix across the grid; the service
// layer queues STREAMS of such factorizations. A Job is the request (when
// it arrives, the matrix shape, how many processes it wants, which
// reduction tree); the JobQueue holds not-yet-started jobs in the order
// mandated by the active SchedulingPolicy (sched/policy.hpp), which owns
// the comparator the queue keeps itself sorted by.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/tree.hpp"

namespace qrgrid::sched {

class MetricsRegistry;
class SchedulingPolicy;
class SnapshotWriter;
class SnapshotReader;

/// Names for the built-in policy objects (sched/policy.hpp). The service
/// dispatches through the SchedulingPolicy interface, never on this enum;
/// it survives as the CLI/options spelling and make_policy's factory key.
enum class Policy {
  kFcfs,          ///< (priority desc, arrival); the head blocks everything
  kSpjf,          ///< shortest predicted job first (Section-IV cost model)
  kEasyBackfill,  ///< classic arrival-ordered EASY backfilling
  kPriorityEasy,  ///< EASY where higher priority claims the reservation
  kFairShare,     ///< weighted fair-share, deficit-round-robin per user
};

/// Parses "fcfs" | "spjf" | "easy" | "prio-easy" | "fair"; throws
/// qrgrid::Error otherwise.
Policy policy_of(const std::string& name);
std::string policy_name(Policy policy);

/// One queued TSQR factorization request.
struct Job {
  int id = 0;
  double arrival_s = 0.0;  ///< virtual submission time
  double m = 0.0;          ///< matrix rows
  int n = 0;               ///< matrix columns (tall-skinny: m >> n)
  int procs = 0;           ///< processes requested (rounded up to nodes)
  /// Larger runs earlier among FCFS equals; plain EASY is priority-blind
  /// (classic Lifka), prio-easy orders the whole queue by it and lets it
  /// claim the shadow reservation.
  int priority = 0;
  /// Submitting user id: the fair-share policy's accounting key. Jobs of
  /// one user share the accumulated-service deficit.
  int user = 0;
  /// The user's fair-share weight (> 0): accrued service is divided by it,
  /// so a weight-2 user is owed twice the node-seconds of a weight-1 user
  /// before falling behind in the deficit order.
  double weight = 1.0;
  core::TreeKind tree = core::TreeKind::kGridHierarchical;
  /// User-supplied walltime estimate (the batch system's -l walltime=…).
  /// 0 = unlimited. When set, EASY's reservation and backfill decisions
  /// use THIS number while execution uses the exact replay — and the job
  /// is killed (finally, no requeue) if an attempt runs past it.
  double walltime_s = 0.0;
};

/// Snapshot encoding of one Job, field by field with raw double bits —
/// the shared building block of the service's pending/running/outcome
/// serialization (sched/snapshot.hpp).
void save_job(SnapshotWriter& w, const Job& job);
Job load_job(SnapshotReader& r);

/// How a job left the service.
enum class JobFate {
  kCompleted,       ///< factorization finished
  kWalltimeKilled,  ///< attempt exceeded the user walltime (final)
  kOutageFailed,    ///< outage-killed with no retries left (final)
};
std::string fate_name(JobFate fate);

/// What the service records when a job leaves it — by completing or by
/// being killed for the last time. Exactly one outcome per submitted job.
struct JobOutcome {
  Job job;
  double start_s = 0.0;        ///< start of the final attempt
  double finish_s = 0.0;       ///< completion or final kill instant
  double service_s = 0.0;      ///< virtual seconds held by the final attempt
  double gflops = 0.0;         ///< useful rate inside the allocation
  std::vector<int> clusters;   ///< master cluster ids the job ran on
  std::vector<int> nodes_per_cluster;  ///< parallel to `clusters`
  int nodes = 0;               ///< total nodes held for service_s
  bool backfilled = false;     ///< started ahead of an EASY reservation
  JobFate fate = JobFate::kCompleted;
  int attempts = 1;            ///< 1 + number of outage requeues
  double wasted_node_s = 0.0;  ///< node-seconds burnt by killed attempts
  double credited_s = 0.0;     ///< replay seconds banked by restart credit
  /// Tightest shadow time EASY ever promised while this job was the
  /// blocked head (+inf when it never was); the service guarantees
  /// start_s <= reserved_start_s in fault-free, contention-free runs.
  double reserved_start_s = std::numeric_limits<double>::infinity();
  /// Shared-WAN stretch of the final attempt: service_s over what the
  /// attempt would have taken on an idle grid (its cached replay
  /// remainder plus checkpoint overhead). Exactly 1 when contention
  /// modeling is off; >= 1 for completed jobs when it is on (< 1 can
  /// only appear on killed attempts, whose service_s was truncated).
  double wan_slowdown = 1.0;

  /// --- Real-execution record of the FINAL attempt (msg-runtime backend
  /// only; all neutral under the des-replay backend). ---
  bool executed = false;      ///< the attempt actually ran on msg::Runtime
  bool exec_aborted = false;  ///< and was killed mid-run (outage/walltime)
  /// Measured virtual makespan of the real factorization (to the abort
  /// point for killed attempts); 0 when not executed.
  double measured_s = 0.0;
  /// Real numerics of the completed execution; NaN when not executed or
  /// aborted before the factorization finished.
  double residual = std::numeric_limits<double>::quiet_NaN();
  double orthogonality = std::numeric_limits<double>::quiet_NaN();

  /// Wait-blame attribution (ServiceOptions::wait_blame): seconds of
  /// this job's wait per BlameCategory, indexed by the category's int
  /// value (kBlameCategoryCount entries). The entries sum to wait_s()
  /// exactly. Empty when attribution was off.
  std::vector<double> blame_s;

  bool completed() const { return fate == JobFate::kCompleted; }
  double wait_s() const { return start_s - job.arrival_s; }
  double turnaround_s() const { return finish_s - job.arrival_s; }
};

/// What a SchedulingPolicy's queue comparator sees: the job plus the
/// Section-IV runtime estimate (SPJF's sort key; stored for reporting
/// under the other policies).
struct PendingEntry {
  Job job;
  double predicted_s = 0.0;
};

/// The comparator object an ordered pending-queue structure sorts by;
/// defined out of line so job.hpp needs only the policy declaration.
struct PendingOrder {
  const SchedulingPolicy* policy = nullptr;
  bool operator()(const PendingEntry& a, const PendingEntry& b) const;
};

/// Pending jobs kept in the active policy's order, so `front()` is
/// always the next job the policy owes — an ordered multiset, O(log n)
/// per push/pop instead of the old sorted vector's O(n) shifts.
///
/// Dynamic-order policies (fair-share) mutate their keys as attempts
/// start; the queue re-establishes order INCREMENTALLY through the
/// policy's keys_dirty()/touch()/dirty_classes() protocol: entries are
/// bucketed by order_class() (fair-share: the user), and a sync
/// extracts and reinserts only the dirty classes' entries. Every
/// ordered accessor (front/pop_front/push/begin) syncs first, so a
/// stale order — or a comparison under a mutated key, the pre-PR-7
/// upper_bound UB — is never observable. Static-key policies are never
/// dirty and pay nothing.
class JobQueue {
 public:
  /// Borrows the policy; the caller keeps it alive and in sync with any
  /// state its comparator reads.
  explicit JobQueue(const SchedulingPolicy* policy);
  /// Convenience: owns a fresh make_policy(policy) instance.
  explicit JobQueue(Policy policy);
  ~JobQueue();  // out of line: owned_ deletes an incomplete type here

  /// Optional counter sink: each sync with work records one
  /// `policy.resorts` plus the entries reinserted
  /// (`policy.resort_reinserts`). Null disables recording.
  void bind_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  void push(Job job, double predicted_s);
  /// Re-establishes policy order after the comparator's inputs changed.
  /// Called implicitly by every ordered accessor; public for callers
  /// that mutate policy state directly (tests) and want the order now.
  void resort() { sync(); }

  bool empty() const { return set_.empty(); }
  std::size_t size() const { return set_.size(); }

  const Job& front();
  Job pop_front();

  using Set = std::multiset<PendingEntry, PendingOrder>;
  using const_iterator = Set::const_iterator;
  /// Ordered scan for the backfilling pass. begin() syncs; a scan must
  /// not interleave with push() (take() mid-scan is fine — erasure never
  /// compares, so it cannot trip over keys dirtied by started attempts).
  const_iterator begin();
  const_iterator end() const { return set_.end(); }
  /// Erases the entry at `it`, moving its job into `out`; returns the
  /// following position.
  const_iterator take(const_iterator it, Job& out);

 private:
  void sync();
  void index_insert(Set::iterator it);
  void index_erase(Set::const_iterator it);

  const SchedulingPolicy* policy_;
  std::unique_ptr<SchedulingPolicy> owned_;  ///< enum-ctor convenience only
  Set set_;
  /// Class-indexed entry positions (dynamic-order policies only):
  /// order_class -> job id -> multiset position. Lets a sync extract a
  /// dirty class without scanning the queue, deterministically (id
  /// order). Erasing by stored iterator never invokes the comparator,
  /// which is what makes extraction safe while keys are already dirty.
  bool track_classes_ = false;
  std::map<int, std::map<int, Set::iterator>> buckets_;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace qrgrid::sched

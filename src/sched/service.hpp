// Grid job service: queued multi-job scheduling over the DES engine.
//
// The service co-executes a stream of TSQR factorization jobs on one
// shared grid in virtual time. Placement goes through the paper's
// QCG-OMPI contract: for each job a JobProfile (g groups confined to
// single clusters by their latency bound) is handed to a MetaScheduler
// built over the *residual* topology of currently-free nodes; the job's
// runtime on the granted nodes is the exact des_tsqr replay of its
// schedule (cached per shape x placement, which is what lets a 1000-job
// bench finish in seconds). Nodes are held exclusively for the job's
// duration and returned at completion — space sharing, the way Grid'5000's
// OAR batch scheduler actually hands out the paper's testbed.
//
// Scheduling is pluggable (sched/policy.hpp): every queue-order,
// reservation/backfill, and placement-scoring decision goes through a
// SchedulingPolicy object. Built-ins: FCFS (head blocks), shortest-
// predicted-job-first (Section-IV Equation (1) as the sort key), EASY
// backfilling (arrival-ordered head keeps a reservation at the earliest
// time enough nodes free up; later jobs may jump ahead only if they
// provably finish before it), priority-aware EASY (a higher-priority
// pending job claims the reservation; shadow times price WAN drain
// estimates under contention), and weighted fair-share (deficit-round-
// robin over per-user accumulated service / weight).
//
// Fault model: ServiceOptions carries an OutageTrace of whole-cluster
// down/up boundaries. A failing cluster kills every job holding nodes on
// it; the lost node-seconds are charged as waste and the job is requeued
// (up to max_retries times; optionally with restart credit for completed
// row-block panels of its replay). Jobs carry user walltime estimates:
// EASY plans with the ESTIMATES, execution uses exact replay seconds, and
// an attempt running past its walltime is killed for good. Event
// precedence at one virtual instant: completions (and walltime kills),
// then outage boundaries (recoveries before failures), then arrivals.
//
// Shared WAN (sched/wan.hpp): with wan_contention on, the replays stop
// being private — every in-flight attempt's inter-site byte demand
// drains against grid-wide per-cluster uplink/downlink horizons and one
// aggregate backbone at fair share, and the attempt cannot complete
// before its demand has drained. Finish times become load-dependent:
// max(cached replay end, WAN drain end), which is >= the isolated replay
// always and == it when nothing overlaps. wan_aware additionally biases
// placement toward clusters whose WAN links carry the fewest in-flight
// flows. Note EASY's no-delay guarantee is proved against replay-exact
// (or walltime-bounded) completions; under contention running jobs can
// outlast their estimates, so the reservation becomes best-effort.
// Execution backends (sched/backend.hpp): the virtual-time bookkeeping
// above is always driven by the backend's DES profile, so WHICH backend
// runs the attempts never changes a scheduling decision. The default
// DesReplayBackend stops there; the MsgRuntimeBackend additionally
// executes every attempt for real on a threaded msg::Runtime — completed
// jobs carry measured makespans and numerics (residual/orthogonality),
// and injected kills abort the communicator mid-factorization, so the
// fault accounting is exercised against genuine partial executions. The
// equivalence suite pins the two backends to identical decisions and to
// finish-time agreement within a stated tolerance.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/roofline.hpp"
#include "sched/backend.hpp"
#include "sched/job.hpp"
#include "sched/outage.hpp"
#include "sched/policy.hpp"
#include "sched/wan.hpp"
#include "simgrid/topology.hpp"

namespace qrgrid::sched {

class MetricsRegistry;
class PhaseProfiler;
class ServiceTracer;
class SnapshotReader;
class SnapshotWriter;

/// Deterministic seam over every same-instant ordering choice the service
/// makes. The event loop's precedence (completions, then outage
/// recoveries, then outage failures, then arrivals) is fixed; WITHIN one
/// precedence class at one virtual instant the canonical order is a pure
/// tie-break (seq for completions and outage victims, trace order for
/// outage boundaries, id for arrivals). An installed oracle is consulted
/// at exactly those ties: `choose` picks which of the k tied candidates
/// goes next, where the candidates are presented in canonical order —
/// index 0 always reproduces the un-oracled service exactly. The
/// interleaving explorer (sched/explore.hpp) drives this seam to
/// enumerate ALL legal event orderings; a null oracle (the default) costs
/// nothing and changes nothing.
class TieOracle {
 public:
  enum class Kind : int {
    kCompletion = 0,   ///< completions/walltime kills tied on event time
    kOutageUp,         ///< cluster recoveries tied at one instant
    kOutageDown,       ///< cluster failures tied at one instant
    kArrival,          ///< submissions tied on arrival_s
    kOutageVictim,     ///< kill order among one failure's running victims
  };
  virtual ~TieOracle() = default;
  /// Which of the k (>= 2) tied candidates goes next at virtual time
  /// t_s. Must return a value in [0, k); the canonical choice is 0.
  virtual int choose(Kind kind, double t_s, int k) = 0;
};

struct ServiceOptions {
  /// Which built-in SchedulingPolicy make_policy constructs
  /// (fcfs|spjf|easy|prio-easy|fair). Ignored when policy_factory is set.
  Policy policy = Policy::kFcfs;
  /// Custom-policy seam: when set, the service schedules with THIS
  /// policy object instead of make_policy(policy) — new policies plug in
  /// without reopening service.cpp. The factory is invoked once per
  /// service; run() resets the instance before every workload.
  std::function<std::unique_ptr<SchedulingPolicy>()> policy_factory;
  /// Domains per cluster for each job's TSQR replay; 0 = auto (one domain
  /// per process for N <= 128, at most 16 for wider panels — the Fig. 6/7
  /// trade-off).
  int domains_per_cluster = 0;
  /// Largest number of process groups a job may be split into when the
  /// meta-scheduler cannot place it on fewer clusters.
  int max_groups = 8;
  /// Bound on how many pending candidates one backfill pass examines
  /// behind the blocked head (SLURM's bf_max_job_test). 0 = unlimited,
  /// byte-identical to the historical unbounded scan; production-scale
  /// runs cap it so a deep backlog cannot make one dispatch O(queue).
  int backfill_depth = 0;
  /// Whole-cluster failure/recovery boundaries (default: no faults).
  OutageTrace outages;
  /// Outage-killed jobs are requeued at most this many times; the next
  /// kill is final. Walltime kills are always final.
  int max_retries = 3;
  /// When true, an outage-killed job restarts from its last completed
  /// row-block panel instead of from scratch: the kept prefix of the
  /// replay is banked as useful work and only the remainder re-runs.
  bool restart_credit = false;
  /// Restart-credit granularity: the replay is checkpointable at
  /// `checkpoint_panels` equally-spaced points (domains are equal-sized,
  /// so panels are uniform in replay time).
  int checkpoint_panels = 8;
  /// Checkpoints are not free: with restart_credit on, every interior
  /// panel boundary an attempt crosses writes its state over the
  /// intra-cluster link, charged as this many seconds appended to the
  /// attempt (and to EASY's estimate of it). 0 keeps PR-2's free credit;
  /// large values flip the credit/overhead trade-off against
  /// checkpointing.
  double checkpoint_cost_s = 0.0;

  /// --- Shared-WAN contention (sched/wan.hpp) ---
  /// Thread one grid-wide WAN model through the run: concurrent jobs'
  /// inter-site byte demands share per-cluster uplink/downlink horizons
  /// and an aggregate backbone at fair share, and job finish times
  /// stretch accordingly. Off (default) reproduces PR-2 exactly.
  bool wan_contention = false;
  /// Network-aware placement: order candidate clusters by how many
  /// in-flight flows currently touch their WAN links, so new placements
  /// land on idle uplinks when the meta-scheduler has a choice. Implies
  /// wan_contention.
  bool wan_aware = false;
  /// Aggregate capacity of each site's WAN uplink (and downlink), in
  /// bytes/second. Also forwarded to every replay's DesEngine
  /// (set_wan_aggregate_Bps), so one knob governs both the intra-replay
  /// horizon and the cross-job contention model.
  double wan_link_Bps = 10e9 / 8.0;
  /// Shared backbone capacity; 0 = auto, wan_link_Bps x max(1, sites/2).
  /// +infinity = unconstrained core: the site access links bind and the
  /// trunk imposes no rate constraint (Grid'5000's overprovisioned
  /// RENATER core), so max-min components stay per-site islands.
  /// — a trunk that can carry about half the sites at full tilt.
  double wan_backbone_Bps = 0.0;
  /// How concurrent flows share the WAN links (the WanAllocator
  /// strategy): equal-split per link is the PR-3 regression baseline;
  /// max-min runs progressive filling over multi-link demands, so flows
  /// bottlenecked on one link return their unused share everywhere else.
  WanFairness wan_fairness = WanFairness::kEqualSplit;
  /// Optional per-(src_site, dst_site) WAN horizons for asymmetric
  /// backbones: row-major sites x sites matrix in bytes/second (0
  /// entries unconstrained), empty = off. When set, each attempt's
  /// uplink demand is split per destination pair (pro-rated to the
  /// placement's ingress bytes) so the pair links can bind.
  std::vector<double> wan_pair_Bps;

  /// --- Execution backend (sched/backend.hpp) ---
  /// How granted attempts run: kDesReplay (cached replay, the default)
  /// or kMsgRuntime (real threaded execution per attempt, small
  /// workloads only). Scheduling decisions are backend-independent.
  BackendKind backend = BackendKind::kDesReplay;
  /// Matrix payload seed for real executions (per-job-id diffused).
  std::uint64_t backend_seed = 2026;
  /// Real executions refuse jobs with more than this many m x n entries.
  double backend_max_elements = 8e6;
  /// When > 0, msg-executed jobs wider than this run full CAQR with
  /// panels of this width instead of single-panel TSQR.
  int backend_caqr_panel_width = 0;

  /// --- Observability (sched/telemetry.hpp) ---
  /// Caller-owned structured-event stream and metrics store, threaded
  /// through the service, policy, WAN model, and backend for the run.
  /// Null (the default) disables recording entirely: every emit site is
  /// one pointer test, and a disabled run is byte-identical to a build
  /// without the telemetry layer. Telemetry never influences a
  /// scheduling decision.
  ServiceTracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Wait-blame attribution: classify, per pending job per vtime
  /// interval, why it did not start (the BlameCategory taxonomy in
  /// sched/telemetry.hpp), emitted as kWaitBlame events (tracer), rolled
  /// up per job/user/priority class (metrics), and copied into each
  /// JobOutcome::blame_s. The categories partition each job's reported
  /// wait exactly. Off (the default) skips the classification pass
  /// entirely: traces and metrics are byte-identical to a build without
  /// it, and service outcomes are identical either way.
  bool wait_blame = false;
  /// Scoped wall-clock phase timers around the loop's hot phases
  /// (sched/profiler.hpp). Null (the default) never reads a clock. Wall
  /// times land in `profiler.*` gauges only — never in the virtual-time
  /// trace — so trace byte-determinism is unaffected.
  PhaseProfiler* profiler = nullptr;
};

/// Grid-wide accounting of one service run.
///
/// Conservation invariants (checked by the fault test suite):
///   completed_jobs + failed_jobs == submitted jobs == outcomes.size()
///   killed_jobs == walltime_kills + outage_kills
///   useful_node_seconds + wasted_node_seconds <= capacity x makespan
struct ServiceReport {
  Policy policy = Policy::kFcfs;
  /// The scheduling policy's own name() — what the summary row shows.
  /// Matches policy_name(policy) for the built-ins; custom policies
  /// (policy_factory) report whatever they call themselves.
  std::string policy_label;
  std::vector<JobOutcome> outcomes;  ///< ALL jobs, sorted by job id

  double makespan_s = 0.0;           ///< last completion-or-final-kill time
  double mean_wait_s = 0.0;
  double max_wait_s = 0.0;
  double mean_turnaround_s = 0.0;
  double throughput_jobs_per_hour = 0.0;
  double aggregate_gflops = 0.0;     ///< sum of useful flops / makespan
  double utilization = 0.0;          ///< useful node-seconds / capacity
  long long backfilled_jobs = 0;

  long long completed_jobs = 0;
  long long failed_jobs = 0;      ///< walltime-killed or out of retries
  long long killed_jobs = 0;      ///< kill EVENTS (one job may die twice)
  long long walltime_kills = 0;
  long long outage_kills = 0;
  long long requeued_jobs = 0;    ///< requeue events after outage kills
  double useful_node_seconds = 0.0;  ///< completed attempts + banked panels
  double wasted_node_seconds = 0.0;  ///< held but thrown away by kills

  /// Per-master-cluster WAN byte totals summed over every job's replay
  /// (the DesEngine per-cluster counters, mapped back to grid sites).
  std::vector<long long> wan_egress_bytes;
  std::vector<long long> wan_ingress_bytes;

  /// Shared-WAN accounting (all neutral when wan_contention is off).
  /// Slowdowns are over COMPLETED jobs: contended service time over the
  /// isolated replay remainder of the final attempt.
  double mean_wan_slowdown = 1.0;
  double max_wan_slowdown = 1.0;
  /// Fraction of the makespan each link carried at least one in-flight
  /// job's undrained WAN demand.
  std::vector<double> wan_uplink_busy;
  std::vector<double> wan_downlink_busy;
  double wan_backbone_busy = 0.0;

  /// Real-execution accounting (all zero on the des-replay backend).
  long long executed_attempts = 0;  ///< attempts run on the msg runtime
  long long aborted_attempts = 0;   ///< of those, killed mid-factorization
  double max_residual = 0.0;        ///< worst ||A-QR||/||A|| over executions
  double max_orthogonality = 0.0;   ///< worst ||Q^T Q - I|| over executions
  /// Per killed-and-executed attempt: where on the replay timeline the
  /// service injected the kill, vs the furthest virtual time the real
  /// aborted run actually reached — summed, so the suite can pin the
  /// synthetic truncation against genuine partial executions.
  double injected_abort_vtime_s = 0.0;
  double measured_abort_vtime_s = 0.0;
};

/// WAN bytes the run pushed across site uplinks (egress summed over
/// clusters; equals the ingress sum — every byte leaves one site and
/// enters another).
long long total_wan_bytes(const ServiceReport& report);

/// Busiest WAN link of the run: max busy fraction over every uplink,
/// downlink, and the backbone (0 when contention modeling is off).
double max_wan_busy_fraction(const ServiceReport& report);

/// Canonical policy-comparison table columns, shared by the CLI `serve`
/// subcommand and bench_job_service so the two never drift apart.
std::vector<std::string> summary_header();
std::vector<std::string> summary_row(const ServiceReport& report);

/// Fraction of an attempt's span [0, span] that `elapsed` seconds cover,
/// clamped to [0, 1]. The guarded form of the kill paths' former raw
/// `elapsed / span`: a zero-length span (floating-point absorption can
/// collapse start + tiny attempt onto start even though the attempt
/// seconds are positive) counts as fully covered when any time elapsed
/// and as nothing otherwise — never NaN, never infinity.
double covered_span_fraction(double elapsed, double span);

class GridJobService {
 public:
  GridJobService(simgrid::GridTopology topology, model::Roofline roofline,
                 ServiceOptions options = {});
  ~GridJobService();  // out of line: engine_ deletes an incomplete type

  /// Runs the whole workload until every job has completed or been killed
  /// for the last time, and reports. Throws qrgrid::Error if some job
  /// cannot fit even an empty, fully-up grid. Exactly
  /// start(); while (active()) step(); return finish();
  ServiceReport run(std::vector<Job> jobs);

  /// --- Stepping API: run(), one event-loop iteration at a time. ---
  /// Validates and admits the workload and stands up the run's state
  /// (outage cursor, WAN model, telemetry preamble) without advancing
  /// virtual time. One run may be in flight per service.
  void start(std::vector<Job> jobs);
  /// True while undispatched arrivals, pending jobs, or running attempts
  /// remain — run()'s loop condition.
  bool active() const;
  /// One iteration of the event loop: advance to the next event time,
  /// resolve completions/kills, outage boundaries, arrivals, then a
  /// dispatch pass. Requires active().
  void step();
  /// Final accounting over the finished run; clears the in-flight state
  /// so the service can start() again. Requires !active().
  ServiceReport finish();
  /// Virtual clock of the in-flight run (0 before the first step).
  double now_s() const;

  /// --- Snapshot / restore (sched/snapshot.hpp) ---
  /// Byte-faithful capture of the FULL mid-run state between steps:
  /// pending queue (policy-private state included), running attempts,
  /// free-node accounting, WAN flows and horizons, outage cursors and RNG
  /// streams, restart-credit progress, and telemetry high-water marks.
  /// Restoring into a service built with the SAME configuration (guarded
  /// by an embedded fingerprint) and stepping to completion reproduces
  /// the uninterrupted run's trace, metrics, and report byte-for-byte.
  std::string snapshot();
  void restore(const std::string& bytes);

  /// Installs (or clears, with nullptr) the same-instant tie oracle.
  /// Borrowed, not owned; consulted only when two or more candidates of
  /// one precedence class tie at one virtual instant.
  void set_tie_oracle(TieOracle* oracle) { oracle_ = oracle; }

  /// Section-IV Equation (1) estimate used by SPJF ordering (and reported
  /// alongside the exact replay times).
  double predicted_seconds(const Job& job) const;

  const simgrid::GridTopology& topology() const { return topology_; }

 private:
  struct Running {
    double finish_s = 0.0;     ///< natural completion (exact replay)
    double kill_s = 0.0;       ///< walltime bound; +inf when unlimited
    double est_finish_s = 0.0; ///< what EASY believes: start + walltime
                               ///  (or the exact finish when unlimited)
    int seq = 0;  ///< start order, tie-break for simultaneous events
    Job job;
    Placement placement;
    double start_s = 0.0;
    /// Credited fraction banked BEFORE this attempt: the attempt covers
    /// [start_fraction, 1] of the factorization, which is what WAN bytes
    /// are pro-rated against.
    double start_fraction = 0.0;
    const ExecutionProfile* replay = nullptr;
    bool backfilled = false;
    /// Flow id in the shared-WAN model; -1 when contention is off.
    /// finish_s stays the ISOLATED replay end — the actual completion is
    /// max(finish_s, drain end), resolved inside run()'s event loop.
    int flow = -1;
  };

  /// Per-job state carried across outage kills and requeues.
  struct Progress {
    int attempts = 0;            ///< attempts started so far
    /// Fraction of the factorization banked by restart credit, in whole
    /// panels (k / checkpoint_panels). A FRACTION, not seconds: panels
    /// are row blocks of the matrix, so the credit survives a retry that
    /// lands on a different placement with a different replay time.
    double credited_fraction = 0.0;
    double wasted_node_s = 0.0;  ///< node-seconds lost to kills
    /// Tightest EASY reservation promised while this job was the blocked
    /// head; +inf until it first blocks as head.
    double reserved_start_s = std::numeric_limits<double>::infinity();
  };

  /// Builds the residual topology of `free_nodes` and asks a
  /// MetaScheduler to place the job as 1, 2, ... max_groups single-cluster
  /// groups (fewest groups first: WAN crossings cost the most). With a
  /// WAN model (wan_aware dispatch), candidate clusters are presented to
  /// the scheduler idlest-uplink-first, so equally feasible placements
  /// land away from in-flight WAN traffic; feasibility is unaffected.
  std::optional<Placement> try_place(const Job& job,
                                     const std::vector<int>& free_nodes,
                                     const GridWanModel* wan = nullptr) const;

  /// Performance profile of the job on its granted nodes (memoized by
  /// the backend; identical across backends by contract).
  const ExecutionProfile& replay_for(const Job& job,
                                     const Placement& placement) {
    return backend_->profile(job, placement);
  }

  /// Seconds one attempt holds its nodes on an idle grid: the uncredited
  /// replay remainder plus checkpoint I/O for every interior panel
  /// boundary the attempt will cross (checkpoint_cost_s).
  double attempt_seconds(const ExecutionProfile& replay,
                         double credited_fraction) const;

  /// EASY reservation: earliest virtual time at which accumulated
  /// ESTIMATED completions (walltime bounds when set, exact replays when
  /// not) free enough nodes for `head`. Actual events never come later
  /// than the estimates, so the reservation is safe either way — except
  /// under shared-WAN contention, where drains can outlast both bounds;
  /// a policy with wan_priced_shadow() additionally prices each running
  /// attempt's drain estimate (`wan`, `now_s`) into its finish.
  double shadow_time(const Job& head, const std::vector<Running>& running,
                     const std::vector<int>& free_nodes,
                     const GridWanModel* wan, double now_s) const;

  /// One in-flight workload: every former run() local hoisted into a
  /// struct (defined in service.cpp) so the loop can pause between steps
  /// and serialize itself. Null when no run is in flight.
  struct Engine;

  /// Everything that must match for a snapshot to be restorable here:
  /// policy, backend, per-cluster topology, and every ServiceOptions
  /// field that shapes decisions or telemetry. Embedded in snapshots and
  /// compared on restore().
  std::string config_fingerprint() const;

  simgrid::GridTopology topology_;
  model::Roofline roofline_;
  ServiceOptions options_;
  /// The scheduling-policy object every queue-order / backfill /
  /// placement-scoring decision goes through (never the enum). Stateful
  /// policies (fair-share) are reset at the top of every run().
  std::unique_ptr<SchedulingPolicy> policy_;
  /// Owned after topology_ (it holds a pointer into it); profiles it
  /// caches stay valid for the service's lifetime.
  std::unique_ptr<ExecutionBackend> backend_;
  std::unique_ptr<Engine> engine_;
  TieOracle* oracle_ = nullptr;
};

}  // namespace qrgrid::sched

#include "sched/workload.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace qrgrid::sched {

std::vector<Job> generate_workload(const WorkloadSpec& spec) {
  QRGRID_CHECK(spec.jobs >= 0);
  QRGRID_CHECK(spec.mean_interarrival_s > 0.0);
  QRGRID_CHECK(!spec.m_choices.empty());
  QRGRID_CHECK(!spec.n_choices.empty());
  QRGRID_CHECK(!spec.procs_choices.empty());
  QRGRID_CHECK(!spec.tree_choices.empty());
  QRGRID_CHECK(spec.priority_levels >= 1);

  Rng rng(spec.seed);
  auto pick = [&rng](const auto& choices) {
    return choices[static_cast<std::size_t>(
        rng.uniform_index(choices.size()))];
  };

  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(spec.jobs));
  double arrival = 0.0;
  for (int id = 0; id < spec.jobs; ++id) {
    // Exponential inter-arrival: -mean * ln(1 - U), U in [0, 1).
    arrival += -spec.mean_interarrival_s * std::log1p(-rng.uniform01());
    Job job;
    job.id = id;
    job.arrival_s = arrival;
    job.m = pick(spec.m_choices);
    job.n = pick(spec.n_choices);
    job.procs = pick(spec.procs_choices);
    job.tree = pick(spec.tree_choices);
    job.priority = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(spec.priority_levels)));
    QRGRID_CHECK_MSG(job.m >= job.n, "workload job is not tall-skinny: m="
                                         << job.m << " n=" << job.n);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace qrgrid::sched

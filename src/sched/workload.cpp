#include "sched/workload.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace qrgrid::sched {

std::vector<Job> generate_workload(const WorkloadSpec& spec) {
  QRGRID_CHECK(spec.jobs >= 0);
  QRGRID_CHECK(spec.mean_interarrival_s > 0.0);
  QRGRID_CHECK(!spec.m_choices.empty());
  QRGRID_CHECK(!spec.n_choices.empty());
  QRGRID_CHECK(!spec.procs_choices.empty());
  QRGRID_CHECK(!spec.tree_choices.empty());
  QRGRID_CHECK(spec.priority_levels >= 1);
  QRGRID_CHECK(spec.users >= 1);
  for (double w : spec.user_weights) QRGRID_CHECK(w > 0.0);

  Rng rng(spec.seed);
  auto pick = [&rng](const auto& choices) {
    return choices[static_cast<std::size_t>(
        rng.uniform_index(choices.size()))];
  };

  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(spec.jobs));
  double arrival = 0.0;
  for (int id = 0; id < spec.jobs; ++id) {
    // Exponential inter-arrival: -mean * ln(1 - U), U in [0, 1).
    arrival += -spec.mean_interarrival_s * std::log1p(-rng.uniform01());
    Job job;
    job.id = id;
    job.arrival_s = arrival;
    job.m = pick(spec.m_choices);
    job.n = pick(spec.n_choices);
    job.procs = pick(spec.procs_choices);
    job.tree = pick(spec.tree_choices);
    job.priority = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(spec.priority_levels)));
    // Guarded so single-user specs consume no draw: the stream (and every
    // arrival after it) stays byte-identical to the pre-fair-share
    // generator — the legacy-equivalence suites depend on that.
    if (spec.users > 1) {
      job.user = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(spec.users)));
    }
    if (!spec.user_weights.empty()) {
      job.weight = spec.user_weights[static_cast<std::size_t>(job.user) %
                                     spec.user_weights.size()];
    }
    QRGRID_CHECK_MSG(job.m >= job.n, "workload job is not tall-skinny: m="
                                         << job.m << " n=" << job.n);
    jobs.push_back(job);
  }
  return jobs;
}

void assign_walltimes(std::vector<Job>& jobs, double max_overask_factor,
                      std::uint64_t seed,
                      const std::function<double(const Job&)>& predicted_s) {
  QRGRID_CHECK(predicted_s != nullptr);
  for (Job& job : jobs) {
    const double predicted = predicted_s(job);
    QRGRID_CHECK_MSG(predicted > 0.0,
                     "non-positive prediction for job " << job.id);
    double factor = 1.0;
    if (max_overask_factor > 1.0) {
      // Per-job stream: splitmix64 seeding inside Rng decorrelates the
      // additively-derived (seed, id) pairs, so walltimes are stable under
      // workload reordering or truncation.
      Rng rng(seed +
              0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(job.id + 1));
      factor = rng.uniform(1.0, max_overask_factor);
    }
    job.walltime_s = predicted * factor;
  }
}

}  // namespace qrgrid::sched

// Structured observability for the grid job service.
//
// The paper's claims are all about where time goes — compute vs
// communication vs idle across clusters of clusters — yet the service's
// only lens used to be the post-hoc ServiceReport aggregate. This layer
// makes the run itself observable, deterministically:
//
//   ServiceTracer    an append-only stream of structured events (arrival,
//                    dispatch, backfill admission, reservation claim and
//                    withdrawal, outage boundaries, kills, requeues, WAN
//                    flow open/retire/rebalance, completions) emitted from
//                    GridJobService, the SchedulingPolicy hooks, the
//                    GridWanModel, and both ExecutionBackends. Timestamps
//                    are VIRTUAL time only — no wall clock ever leaks in,
//                    so two runs with one seed produce byte-identical
//                    streams.
//   MetricsRegistry  counters, gauges, fixed-bucket histograms, and
//                    vtime-indexed series (queue depth, per-link WAN
//                    load): the per-dispatch policy costs (resort/scan
//                    counts — the direct input for the O(log n)
//                    rearchitecture), backfill hit rate, and wait /
//                    slowdown distributions per user and priority class.
//   TraceValidator   a streaming consumer that replays the event stream
//                    and asserts the service's pinned invariants — event
//                    precedence (finish > outage(up > down) > arrival),
//                    per-job lifecycle legality, EASY's no-delay promise
//                    (where it is provable: no faults, no contention),
//                    and per-flow WAN byte conservation — turning the
//                    trace from a debugging aid into correctness tooling.
//
// Exports: write_chrome_trace renders per-job lifecycle spans (wait +
// every attempt), per-cluster occupancy, and queue-depth counters as
// Chrome-trace JSON that Perfetto loads directly; render_cluster_gantt
// reuses simgrid::render_timeline for a text Gantt of the busiest
// clusters; MetricsRegistry::write_json is the machine-readable side.
//
// Cost contract: everything hangs off two nullable pointers in
// ServiceOptions. A null tracer/metrics (the default) means every emit
// site is one pointer test and nothing else — the hot path never builds
// an event it will not record, and a disabled run is byte-identical to
// the pre-telemetry service.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "simgrid/topology.hpp"

namespace qrgrid::sched {

class SnapshotWriter;
class SnapshotReader;

/// What happened. The four kinds the event-precedence invariant orders
/// at one instant are kCompletion/kWalltimeKill (finishes), kOutageUp,
/// kOutageDown, and kArrival; every other kind is free to interleave.
enum class TraceKind : int {
  kRunConfig = 0,        ///< one per run: policy name + invariant flags
  kArrival,              ///< job submitted (t = arrival instant)
  kDispatch,             ///< head-path start of one attempt
  kBackfillStart,        ///< backfill-path start of one attempt
  kReservationClaim,     ///< blocked head promised a start (value)
  kReservationWithdraw,  ///< a displaced holder's stale promise revoked
  kOutageDown,           ///< cluster failed
  kOutageUp,             ///< cluster recovered
  kOutageKill,           ///< attempt killed by a cluster failure
  kWalltimeKill,         ///< attempt ran past its user walltime (final)
  kRequeue,              ///< outage-killed job went back to pending
  kCompletion,           ///< factorization finished
  kWanFlowOpen,          ///< WAN model admitted a flow (value = bytes)
  kWanFlowRetire,        ///< flow retired (value = bytes actually moved)
  kWanRebalance,         ///< share structure changed (pools drained)
  kProfileCompute,       ///< backend computed (not cache-hit) a profile
  kExecute,              ///< msg backend ran an attempt for real
  kWaitBlame,            ///< why a pending job did not start (value =
                         ///  interval seconds, value2 = BlameCategory)
};
std::string trace_kind_name(TraceKind kind);

/// Why a pending job did NOT start during one vtime interval — the
/// wait-blame taxonomy the service's attribution pass (ServiceOptions::
/// wait_blame) classifies every pending job into at every dispatch
/// decision. The categories PARTITION each job's reported wait exactly:
/// summed over a job's kWaitBlame events they equal wait_s (start of the
/// final attempt minus arrival), which the TraceValidator enforces on
/// every dispatch when the kRunConfig stream says blame is on.
enum class BlameCategory : int {
  /// Not enough free nodes anywhere (the generic saturated-grid reason).
  kResourceBusy = 0,
  /// Placeable right now, but starting it could delay the blocked head's
  /// reservation (EASY shadow test failed even on the exact replay
  /// remainder) — or, under a non-backfilling policy, the queue
  /// discipline holds it behind the blocked head.
  kHeldBehindReservation,
  /// Placeable right now, held back behind a STRICTLY higher-priority
  /// (or, under fair-share, more-owed) head the policy ordered first.
  kPriorityDisplaced,
  /// Placeable and its exact/walltime estimate fits the reservation, but
  /// the WAN-priced estimate (drain shares alongside in-flight flows)
  /// does not — contention on the shared links is what blocks it.
  kWanContendedPlacement,
  /// Placement fails on the up clusters but would succeed were every
  /// down cluster recovered: an outage, not load, blocks it.
  kOutageBlocked,
  /// Behind the backfill-depth bound (ServiceOptions::backfill_depth):
  /// the dispatch pass never even examined it.
  kBackfillDepthTruncated,
  /// Placeable, and the exact replay remainder would fit the
  /// reservation, but the user's over-asked walltime estimate does not —
  /// the over-ask, not the work, blocks the backfill.
  kWalltimeEstimateBlocked,
  /// Not pending at all: wait clock consumed re-running attempts an
  /// outage killed (requeued jobs only). Closes the partition so blame
  /// sums to wait_s even across retries.
  kRequeuedRerun,
};
inline constexpr int kBlameCategoryCount = 8;
/// Stable kebab-case labels ("resource-busy", ...) — metric key suffixes
/// and the plot_sweep.py --blame legend.
std::string blame_category_name(BlameCategory category);

/// One structured event. Fixed, kind-specific payload slots: `value` /
/// `value2` carry the promised start, byte totals, or measured seconds;
/// `clusters`/`nodes` are filled on dispatch events only (the granted
/// placement); `note` is the policy label on kRunConfig.
struct ServiceTraceEvent {
  double t_s = 0.0;
  TraceKind kind = TraceKind::kRunConfig;
  int job = -1;
  int cluster = -1;
  int flow = -1;
  double value = 0.0;
  double value2 = 0.0;
  std::vector<int> clusters;
  std::vector<int> nodes;
  std::string note;
};

/// kRunConfig `value` bits: which invariants the run's configuration
/// lets a validator enforce.
inline constexpr int kTraceConfigWanContention = 1;
inline constexpr int kTraceConfigHasOutages = 2;
inline constexpr int kTraceConfigBackfills = 4;
inline constexpr int kTraceConfigWaitBlame = 8;

/// Streaming consumer of the event stream (the validator; tests plug in
/// their own). Registered sinks see every event as it is recorded.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const ServiceTraceEvent& event) = 0;
};

/// Append-only event stream. The emitting code holds a possibly-null
/// pointer and tests it before building an event — record() itself is
/// never the guard.
class ServiceTracer {
 public:
  void record(ServiceTraceEvent event) {
    for (TraceSink* sink : sinks_) sink->consume(event);
    events_.push_back(std::move(event));
  }

  /// Emitters without a timestamp of their own (backend profile misses,
  /// WAN flow retirement) stamp events at the service clock, which the
  /// event loop pushes forward here. Monotone by construction.
  void advance_to(double t_s) {
    if (t_s > now_s_) now_s_ = t_s;
  }
  double now_s() const { return now_s_; }

  void add_sink(TraceSink* sink) { sinks_.push_back(sink); }

  const std::vector<ServiceTraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  void clear() {
    events_.clear();
    now_s_ = 0.0;
  }

  /// Snapshot seam: serializes the recorded events and the advanced
  /// clock. load_state() REPLACES events_ without consulting sinks —
  /// restored events were already consumed when first recorded, so a
  /// streaming sink attached across a restore must be prepared to see
  /// only post-restore events (the service validates restored runs
  /// post-hoc via validate_trace() for exactly this reason).
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  std::vector<ServiceTraceEvent> events_;
  std::vector<TraceSink*> sinks_;
  double now_s_ = 0.0;
};

/// Frozen view of one fixed-bucket histogram: counts[i] holds
/// observations with value <= bounds[i] (first matching bucket), the
/// last slot is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<long long> counts;
  double sum = 0.0;
  long long count = 0;
};

/// Deterministic metrics store: names map to counters, gauges,
/// fixed-bucket histograms, or (vtime, value) series. Every input is
/// virtual-time or count data — no wall-clock reads — so write_json is
/// byte-identical across runs with one seed. Ordered maps keep the JSON
/// key order stable without a sort at export time.
class MetricsRegistry {
 public:
  void add(const std::string& name, long long delta = 1) {
    counters_[name] += delta;
  }
  void set(const std::string& name, double value) { gauges_[name] = value; }
  /// Observes into the histogram `name`, creating it with `bounds` (or
  /// the default log-spaced seconds scale) on first touch. Bounds are
  /// fixed at creation; later explicit bounds must match.
  void observe(const std::string& name, double value);
  void observe(const std::string& name, double value,
               const std::vector<double>& bounds);
  /// Appends one (t, value) point to the series `name`. Consecutive
  /// samples with an unchanged value are dropped (the curve is a step
  /// function); a repeated timestamp overwrites (latest wins).
  void sample(const std::string& name, double t_s, double value);

  long long counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
  const std::vector<std::pair<double, double>>* series(
      const std::string& name) const;

  /// Default histogram bounds: log-spaced 0.01 s .. 3000 s (plus the
  /// implicit overflow bucket) — wide enough for waits and service
  /// times at every bench scale.
  static const std::vector<double>& default_bounds();

  void clear();
  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "series": {...}} with round-trip double formatting.
  void write_json(std::ostream& out) const;

  /// Snapshot seam: all four stores, keys in map order, values as raw
  /// double bits — a restored registry's write_json is byte-identical
  /// to the uninterrupted run's at the same virtual instant.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  std::map<std::string, long long> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
  std::map<std::string, std::vector<std::pair<double, double>>> series_;
};

/// One attempt's occupancy span, reconstructed from the stream: the
/// closing kind distinguishes useful occupancy (kCompletion) from work
/// a kill threw away. Shared by the Chrome-trace and Gantt writers.
struct AttemptSpan {
  int job = -1;
  double start_s = 0.0;
  double end_s = 0.0;
  bool backfilled = false;
  TraceKind end_kind = TraceKind::kCompletion;
  std::vector<int> clusters;
  std::vector<int> nodes;
};
std::vector<AttemptSpan> attempt_spans(
    const std::vector<ServiceTraceEvent>& events);

/// Chrome-trace JSON (Perfetto loads it directly): per-job lifecycle
/// spans (wait + one span per attempt) on the "jobs" process, per-site
/// occupancy spans on the "clusters" process, WAN flow spans on the
/// "wan" process, kill instants, and pending/running counter tracks.
/// Virtual seconds map to trace microseconds.
void write_chrome_trace(const std::vector<ServiceTraceEvent>& events,
                        std::ostream& out);

/// Text Gantt of the busiest `max_clusters` sites (by occupied seconds;
/// ties prefer lower ids), one row per site via the labeled
/// simgrid::render_timeline: 'C' = completed-attempt occupancy, 'R' =
/// occupancy a kill threw away, '.' = idle. Empty string when the
/// stream holds no attempts.
std::string render_cluster_gantt(const std::vector<ServiceTraceEvent>& events,
                                 const simgrid::GridTopology& topology,
                                 int max_clusters, int width = 72);

/// Streaming self-check of the service's pinned invariants:
///   - virtual timestamps never decrease;
///   - event precedence at one instant: finishes (completions and
///     walltime kills), then recoveries, then failures, then arrivals;
///   - per-job lifecycle legality: arrive once, run only while pending,
///     die or complete only while running, requeue only after an outage
///     kill, exactly one terminal transition;
///   - EASY's no-delay promise — an unwithdrawn reservation claim bounds
///     the holder's actual start — enforced when the kRunConfig flags
///     say it is provable (no outages, no WAN contention);
///   - WAN byte conservation per flow: moved bytes never exceed the
///     admitted demand, and a fully drained flow moved exactly what it
///     admitted (half-byte rounding slack per pool);
///   - wait-blame partition (when the kRunConfig flags carry
///     kTraceConfigWaitBlame): kWaitBlame intervals are non-negative,
///     carry a valid category, attach only to jobs that are pending (or
///     in the killed-limbo between an outage kill and its requeue), and
///     at every dispatch the job's accumulated blame equals its elapsed
///     wait since arrival exactly — the categories partition the wait.
/// Violations accumulate as human-readable strings; finish() adds the
/// end-of-stream checks (no job left running, every flow retired).
class TraceValidator : public TraceSink {
 public:
  void consume(const ServiceTraceEvent& event) override;
  void finish();

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  long long events_seen() const { return events_seen_; }

 private:
  enum class JobState { kPending, kRunning, kKilledLimbo, kTerminal };
  struct FlowState {
    double admitted_bytes = 0.0;
    bool retired = false;
  };

  void fail(const ServiceTraceEvent& event, const std::string& what);

  std::vector<std::string> violations_;
  long long events_seen_ = 0;
  double last_t_s_ = 0.0;
  int last_class_ = 0;  ///< precedence class at last_t_s_
  bool enforce_no_delay_ = false;
  bool check_blame_ = false;
  bool saw_config_ = false;
  std::map<int, JobState> jobs_;
  std::map<int, double> promises_;  ///< job -> tightest unwithdrawn claim
  std::map<int, FlowState> flows_;
  std::map<int, double> arrival_s_;   ///< job -> submission instant
  std::map<int, double> blame_sum_s_; ///< job -> accumulated blame
};

/// Convenience wrapper: replays a recorded stream through a fresh
/// TraceValidator and returns its violations (empty = all invariants
/// hold).
std::vector<std::string> validate_trace(
    const std::vector<ServiceTraceEvent>& events);

}  // namespace qrgrid::sched

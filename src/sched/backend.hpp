// Pluggable execution backends for the grid job service.
//
// GridJobService turns a queue of factorization requests into virtual-time
// scheduling decisions; HOW one granted attempt actually runs is this
// interface. Two implementations:
//
//   DesReplayBackend — the cached des_tsqr replay (the PR-1..3 behavior,
//     byte-identical): one DES pass per (shape x placement), memoized, no
//     payload data ever touched. This is what lets a 1000-job bench finish
//     in seconds and is the production path for figure-scale matrices.
//
//   MsgRuntimeBackend — actually executes tsqr_factor / caqr_factor on a
//     threaded msg::Runtime sized to the placement, with the placement's
//     sub-topology mapped through msg::cost_model (TopologyCostModel), and
//     reports real numerics (residual, orthogonality) per job. Injected
//     kills become REAL mid-run failures: a virtual-walltime limit on the
//     runtime aborts the communicator mid-factorization through the abort
//     propagation machinery (tests/failure_test.cpp), instead of
//     synthetically truncating a replay.
//
// The contract that makes the service's decisions backend-INDEPENDENT:
// both backends derive their performance profile from the same DES replay
// code (MsgRuntimeBackend inherits DesReplayBackend::profile), so
// placement, start order, and backfill choices are identical under either
// backend by construction — and the equivalence suite pins exactly that,
// plus the measured-vs-replayed finish-time agreement that turns the
// simulator into a validated predictor.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/roofline.hpp"
#include "sched/job.hpp"
#include "simgrid/topology.hpp"

namespace qrgrid::sched {

class MetricsRegistry;
class ServiceTracer;

/// Nodes granted to one job, parallel arrays over the clusters used
/// (ascending master cluster id — the canonical form the profile cache
/// key and the report's parallel arrays rely on).
struct Placement {
  std::vector<int> clusters;
  std::vector<int> nodes;
  int total_nodes = 0;
};

/// Cached performance profile of one (shape x placement) combination —
/// everything the service needs to advance virtual time, account WAN
/// bytes, and feed the shared-WAN contention model.
struct ExecutionProfile {
  double seconds = 0.0;
  double gflops = 0.0;
  double compute_utilization = 0.0;
  std::vector<long long> egress_bytes;   ///< per placement cluster
  std::vector<long long> ingress_bytes;  ///< per placement cluster
  /// Fraction of the replay timeline before the first byte leaves
  /// (reaches) each placement cluster's WAN link — TSQR's compute
  /// prefix, during which the job does not contend. 1.0 when the
  /// cluster moves no WAN bytes at all.
  std::vector<double> egress_first_fraction;
  std::vector<double> ingress_first_fraction;
};

/// What one real execution measured. Default-constructed (executed ==
/// false) for replay-only backends: nothing ran, nothing was measured.
struct ExecutionResult {
  bool executed = false;  ///< an actual factorization ran on msg::Runtime
  bool aborted = false;   ///< the virtual-walltime limit killed it mid-run
  /// Simulated makespan of the real run: max final rank clock after the
  /// factorization (Q formation and verification are not metered). For
  /// aborted runs, the furthest virtual time any rank reached before the
  /// abort propagated — the REAL truncation point the service's synthetic
  /// fault accounting is validated against.
  double measured_s = 0.0;
  double residual = std::numeric_limits<double>::quiet_NaN();
  double orthogonality = std::numeric_limits<double>::quiet_NaN();
};

/// Which backend a ServiceOptions asks for.
enum class BackendKind {
  kDesReplay,   ///< cached DES replay (default, figure-scale)
  kMsgRuntime,  ///< threaded msg::Runtime execution (small workloads)
};
/// Parses "des" | "msg"; throws qrgrid::Error otherwise.
BackendKind backend_of(const std::string& name);
std::string backend_name(BackendKind kind);

/// Knobs shared by every backend (split out of ServiceOptions so backends
/// do not depend on scheduling policy).
struct BackendOptions {
  /// Domains per cluster for the TSQR replay; 0 = auto (one domain per
  /// process for N <= 128, at most 16 for wider panels),
  /// core::kOneDomainPerProcess = exactly one single-rank domain per
  /// process — the layout under which the msg runtime's execution is
  /// structurally identical to the replay schedule.
  int domains_per_cluster = 0;
  /// Aggregate per-site WAN uplink capacity forwarded to every replay's
  /// DesEngine (part of the profile cache key).
  double wan_link_Bps = 10e9 / 8.0;
  /// Record per-transfer WAN events in the replay (the shared-WAN
  /// contention model's activation windows). Off for contention-free
  /// services so figure-scale replays never grow vectors nothing reads.
  bool record_wan_transfers = false;
  /// Matrix data seed for real executions; each job's payload is drawn
  /// from a per-job-id diffusion of this, so distinct jobs factor
  /// genuinely different matrices.
  std::uint64_t matrix_seed = 2026;
  /// Real executions refuse jobs with more than this many matrix entries
  /// (m x n): the msg backend is for SMALL workloads; figure-scale jobs
  /// belong on the replay backend.
  double max_execute_elements = 8e6;
  /// When > 0, jobs wider than this run the full CAQR panel algorithm
  /// (caqr_factor, panels of this width) instead of single-panel TSQR.
  int caqr_panel_width = 0;
};

/// Topology over a per-cluster node subset of `master`, plus the mapping
/// from its cluster indices back to master cluster ids. Shared by the
/// service's placement path (free nodes) and the backends' replay /
/// execution paths (granted nodes). `order` lists master cluster ids in
/// the sequence the MetaScheduler's first-fit should consider them
/// (identity = naive; the wan-aware path passes idlest-uplink-first).
struct SubTopology {
  simgrid::GridTopology topology;
  std::vector<int> to_master;
};
SubTopology make_sub_topology(const simgrid::GridTopology& master,
                              const std::vector<int>& nodes_per_cluster,
                              const std::vector<int>& order);
std::vector<int> identity_order(int num_clusters);

/// One profile-cache MISS, recorded in computation order: the (job
/// shape, placement) pair whose profile the backend had to compute. A
/// restored service replays these through profile() with telemetry
/// unbound, silently pre-warming the cache so every FUTURE hit/miss
/// counter and kProfileCompute event matches the uninterrupted run's
/// byte-for-byte.
struct ProfileExemplar {
  Job job;
  Placement placement;
};

/// How granted attempts run. profile() is what the service schedules and
/// accounts with — it MUST be backend-independent (see the header
/// comment); execute() is the optional real run.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual std::string name() const = 0;

  /// True when execute() actually runs factorizations (the service skips
  /// the call entirely otherwise — no result plumbing on the hot path).
  virtual bool executes() const = 0;

  /// Memoized performance profile of the job on its granted nodes.
  /// The reference stays valid for the backend's lifetime.
  virtual const ExecutionProfile& profile(const Job& job,
                                          const Placement& placement) = 0;

  /// Runs the attempt for real. `abort_vtime_s` is where an injected kill
  /// (outage or walltime) lands on the factorization's virtual timeline:
  /// any rank whose clock crosses it aborts the communicator, releasing
  /// every peer — +infinity runs to completion and verifies numerics.
  virtual ExecutionResult execute(const Job& job, const Placement& placement,
                                  double abort_vtime_s) = 0;

  /// Observability seam: the service binds its (optional) tracer and
  /// metrics before a run so backends can report profile-cache traffic
  /// and real executions. Nulls (the default) disable recording; nothing
  /// here may influence a profile or an execution.
  void bind_telemetry(ServiceTracer* tracer, MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Snapshot seam: every cache miss this backend ever computed, in
  /// order. The base backend has no cache and returns an empty list.
  virtual const std::vector<ProfileExemplar>& profile_exemplars() const;

 protected:
  ServiceTracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

/// The cached-DES-replay backend (refactored out of GridJobService,
/// byte-identical behavior). execute() never runs anything.
class DesReplayBackend : public ExecutionBackend {
 public:
  DesReplayBackend(const simgrid::GridTopology* topology,
                   model::Roofline roofline, BackendOptions options);

  std::string name() const override { return "des-replay"; }
  bool executes() const override { return false; }
  const ExecutionProfile& profile(const Job& job,
                                  const Placement& placement) override;
  ExecutionResult execute(const Job&, const Placement&, double) override {
    return {};
  }

  const std::vector<ProfileExemplar>& profile_exemplars() const override {
    return exemplars_;
  }

 protected:
  const simgrid::GridTopology* topology_;
  model::Roofline roofline_;
  BackendOptions options_;

 private:
  std::unordered_map<std::string, ExecutionProfile> profile_cache_;
  std::vector<ProfileExemplar> exemplars_;  ///< cache misses, in order
};

/// Threaded-runtime backend: schedules with the inherited DES profile
/// (identical decisions by construction) and additionally executes every
/// attempt on a msg::Runtime over the placement's sub-topology.
class MsgRuntimeBackend final : public DesReplayBackend {
 public:
  using DesReplayBackend::DesReplayBackend;

  std::string name() const override { return "msg-runtime"; }
  bool executes() const override { return true; }
  ExecutionResult execute(const Job& job, const Placement& placement,
                          double abort_vtime_s) override;
};

std::unique_ptr<ExecutionBackend> make_backend(
    BackendKind kind, const simgrid::GridTopology* topology,
    model::Roofline roofline, const BackendOptions& options);

}  // namespace qrgrid::sched

// Critical-path analysis over a recorded service trace.
//
// The wait-blame taxonomy (sched/telemetry.hpp) says why each job
// waited; this answers the sharper question the paper's scheduling
// sections keep returning to: which of those waits actually MOVED the
// makespan? The analyzer rebuilds the dependency structure of one run
// from its event stream — each attempt's start is enabled by whatever
// event happened at exactly that instant (a completion or kill
// releasing nodes, an outage recovery, the job's own requeue or
// arrival) — and walks it backward from the makespan-defining attempt.
// The result is a chain of segments that tile [0, makespan] exactly:
//
//   run          an attempt on the critical chain held its nodes
//   outage       the chain's next attempt sat behind a down cluster
//   wait         the chain's next attempt sat in the queue (attributed
//                by BlameCategory when the run carried kWaitBlame)
//   pre-arrival  the virtual time before the chain's first job existed
//
// Exact double equality is sound here: the service is byte-
// deterministic and every enabling event carries the SAME double the
// dependent start was stamped with, so "at exactly that instant" is a
// == comparison, not a tolerance.
//
// Beyond the chain, the same enabling edges give per-attempt slack —
// how far an attempt's finish could slip before it joins the critical
// chain (0 for attempts on it) — reported per job as the minimum over
// its attempts.
#pragma once

#include <array>
#include <map>
#include <ostream>
#include <vector>

#include "sched/telemetry.hpp"

namespace qrgrid::sched {

/// One tile of the critical chain (chronological in the report).
struct CritSegment {
  enum class Kind : int { kRun = 0, kOutage, kWait, kPreArrival };
  Kind kind = Kind::kRun;
  /// The job whose attempt ran (kRun) or whose pending wait this tile
  /// explains (kWait/kOutage/kPreArrival); always >= 0 except for a
  /// kPreArrival of an empty run.
  int job = -1;
  /// The recovered cluster (kOutage only), -1 otherwise.
  int cluster = -1;
  double t0_s = 0.0;
  double t1_s = 0.0;
  /// Dominant BlameCategory of a kWait tile (largest blamed overlap),
  /// -1 when the trace carried no kWaitBlame events for the window.
  int blame = -1;
};
std::string crit_segment_kind_name(CritSegment::Kind kind);

struct CriticalPathReport {
  double makespan_s = 0.0;
  /// The chain, chronological; tiles [0, makespan_s] exactly, so
  /// path_length_s() == makespan_s is the analyzer's self-check.
  std::vector<CritSegment> chain;
  int chain_attempts = 0;  ///< kRun tiles on the chain
  /// Chain composition by tile kind.
  double run_s = 0.0;
  double outage_s = 0.0;
  double wait_s = 0.0;
  double pre_arrival_s = 0.0;
  /// kWait composition by BlameCategory (zeros when blame was off).
  std::array<double, kBlameCategoryCount> wait_blame_s{};
  /// Per-job slack: how far the job's tightest attempt could slip
  /// before the makespan moves; 0 for jobs on the critical chain.
  std::map<int, double> job_slack_s;

  double path_length_s() const {
    double total = 0.0;
    for (const CritSegment& seg : chain) total += seg.t1_s - seg.t0_s;
    return total;
  }
};

/// Rebuilds the run's dependency structure from a recorded stream and
/// extracts the makespan-critical chain. The stream must be a complete
/// run (every attempt closed), as produced by GridJobService::run with
/// a tracer armed; an empty or attempt-free stream yields an empty
/// report.
CriticalPathReport analyze_critical_path(
    const std::vector<ServiceTraceEvent>& events);

/// Deterministic JSON rendering (round-trip doubles, stable key order):
/// totals, the chain, and the per-job slack map.
void write_critpath_json(const CriticalPathReport& report,
                         std::ostream& out);

/// TraceSink adapter: buffers the stream during a run; finish() runs
/// the analysis once. Lets a caller attach critical-path extraction the
/// same way it attaches the TraceValidator.
class CriticalPathAnalyzer : public TraceSink {
 public:
  void consume(const ServiceTraceEvent& event) override {
    events_.push_back(event);
  }
  const CriticalPathReport& finish() {
    report_ = analyze_critical_path(events_);
    return report_;
  }
  const CriticalPathReport& report() const { return report_; }

 private:
  std::vector<ServiceTraceEvent> events_;
  CriticalPathReport report_;
};

}  // namespace qrgrid::sched

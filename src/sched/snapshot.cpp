#include "sched/snapshot.hpp"

#include <cstring>

#include "common/check.hpp"

namespace qrgrid::sched {

namespace {

template <typename T>
void append_raw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

}  // namespace

void SnapshotWriter::u8(std::uint8_t v) { append_raw(out_, v); }
void SnapshotWriter::u32(std::uint32_t v) { append_raw(out_, v); }
void SnapshotWriter::u64(std::uint64_t v) { append_raw(out_, v); }
void SnapshotWriter::i32(std::int32_t v) { append_raw(out_, v); }
void SnapshotWriter::i64(std::int64_t v) { append_raw(out_, v); }
void SnapshotWriter::f64(double v) { append_raw(out_, v); }
void SnapshotWriter::boolean(bool v) { u8(v ? 1 : 0); }

void SnapshotWriter::str(const std::string& v) {
  u64(v.size());
  out_.append(v);
}

void SnapshotWriter::i32_vec(const std::vector<int>& v) {
  u64(v.size());
  for (int x : v) i32(x);
}

void SnapshotWriter::i64_vec(const std::vector<long long>& v) {
  u64(v.size());
  for (long long x : v) i64(x);
}

void SnapshotWriter::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void SnapshotReader::take(void* out, std::size_t n) {
  QRGRID_CHECK_MSG(pos_ + n <= bytes_.size(),
                   "truncated snapshot: need " << n << " bytes at offset "
                       << pos_ << " of " << bytes_.size());
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
}

std::uint8_t SnapshotReader::u8() {
  std::uint8_t v;
  take(&v, sizeof(v));
  return v;
}
std::uint32_t SnapshotReader::u32() {
  std::uint32_t v;
  take(&v, sizeof(v));
  return v;
}
std::uint64_t SnapshotReader::u64() {
  std::uint64_t v;
  take(&v, sizeof(v));
  return v;
}
std::int32_t SnapshotReader::i32() {
  std::int32_t v;
  take(&v, sizeof(v));
  return v;
}
std::int64_t SnapshotReader::i64() {
  std::int64_t v;
  take(&v, sizeof(v));
  return v;
}
double SnapshotReader::f64() {
  double v;
  take(&v, sizeof(v));
  return v;
}
bool SnapshotReader::boolean() { return u8() != 0; }

std::string SnapshotReader::str() {
  const std::uint64_t n = u64();
  QRGRID_CHECK_MSG(pos_ + n <= bytes_.size(),
                   "truncated snapshot string of " << n << " bytes");
  std::string v(bytes_.data() + pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return v;
}

std::vector<int> SnapshotReader::i32_vec() {
  const std::uint64_t n = u64();
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = i32();
  return v;
}

std::vector<long long> SnapshotReader::i64_vec() {
  const std::uint64_t n = u64();
  std::vector<long long> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = i64();
  return v;
}

std::vector<double> SnapshotReader::f64_vec() {
  const std::uint64_t n = u64();
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = f64();
  return v;
}

}  // namespace qrgrid::sched

#include "sched/service.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "common/table.hpp"
#include "core/des_algos.hpp"
#include "model/costs.hpp"
#include "sched/profiler.hpp"
#include "sched/snapshot.hpp"
#include "sched/telemetry.hpp"
#include "sched/wan.hpp"
#include "simgrid/jobprofile.hpp"

namespace qrgrid::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Connectivity bounds that confine every group of a job profile to one
/// cluster: intra-cluster GigE passes, wide-area links (>= 6 ms) do not.
constexpr double kGroupMaxLatencyS = 1e-3;
constexpr double kGroupMinBandwidthBps = 100e6 / 8.0;

/// Snapshot framing (see GridJobService::snapshot). The version bumps on
/// ANY layout change — restore refuses mismatches instead of misreading.
const char kSnapshotMagic[] = "QRGS";
constexpr std::uint32_t kSnapshotVersion = 2;

void save_placement(SnapshotWriter& w, const Placement& placement) {
  w.i32_vec(placement.clusters);
  w.i32_vec(placement.nodes);
  w.i32(placement.total_nodes);
}

Placement load_placement(SnapshotReader& r) {
  Placement placement;
  placement.clusters = r.i32_vec();
  placement.nodes = r.i32_vec();
  placement.total_nodes = r.i32();
  return placement;
}

void save_outcome(SnapshotWriter& w, const JobOutcome& o) {
  save_job(w, o.job);
  w.f64(o.start_s);
  w.f64(o.finish_s);
  w.f64(o.service_s);
  w.f64(o.gflops);
  w.i32_vec(o.clusters);
  w.i32_vec(o.nodes_per_cluster);
  w.i32(o.nodes);
  w.boolean(o.backfilled);
  w.i32(static_cast<int>(o.fate));
  w.i32(o.attempts);
  w.f64(o.wasted_node_s);
  w.f64(o.credited_s);
  w.f64(o.reserved_start_s);
  w.f64(o.wan_slowdown);
  w.boolean(o.executed);
  w.boolean(o.exec_aborted);
  w.f64(o.measured_s);
  w.f64(o.residual);
  w.f64(o.orthogonality);
  w.f64_vec(o.blame_s);
}

JobOutcome load_outcome(SnapshotReader& r) {
  JobOutcome o;
  o.job = load_job(r);
  o.start_s = r.f64();
  o.finish_s = r.f64();
  o.service_s = r.f64();
  o.gflops = r.f64();
  o.clusters = r.i32_vec();
  o.nodes_per_cluster = r.i32_vec();
  o.nodes = r.i32();
  o.backfilled = r.boolean();
  o.fate = static_cast<JobFate>(r.i32());
  o.attempts = r.i32();
  o.wasted_node_s = r.f64();
  o.credited_s = r.f64();
  o.reserved_start_s = r.f64();
  o.wan_slowdown = r.f64();
  o.executed = r.boolean();
  o.exec_aborted = r.boolean();
  o.measured_s = r.f64();
  o.residual = r.f64();
  o.orthogonality = r.f64();
  o.blame_s = r.f64_vec();
  return o;
}

}  // namespace

double covered_span_fraction(double elapsed, double span) {
  // span <= 0 only through floating-point absorption (start + tiny
  // attempt_s == start); the old raw elapsed/span then produced +inf
  // (clamped to 1 below — preserved) or, for elapsed == 0, NaN that
  // poisoned the credit math. Zero elapsed over zero span is zero cover.
  if (span <= 0.0) return elapsed > 0.0 ? 1.0 : 0.0;
  if (elapsed <= 0.0) return 0.0;
  return std::min(elapsed / span, 1.0);
}

long long total_wan_bytes(const ServiceReport& report) {
  long long bytes = 0;
  for (long long b : report.wan_egress_bytes) bytes += b;
  return bytes;
}

std::vector<std::string> summary_header() {
  return {"policy",    "makespan (s)",   "mean wait (s)",
          "max wait (s)", "jobs/hour",   "useful Gflop/s",
          "utilization %", "backfilled", "killed", "requeued",
          "wasted node-s", "WAN GB", "wan slow x", "wan busy %",
          "executed", "max resid"};
}

double max_wan_busy_fraction(const ServiceReport& report) {
  double busy = report.wan_backbone_busy;
  for (double b : report.wan_uplink_busy) busy = std::max(busy, b);
  for (double b : report.wan_downlink_busy) busy = std::max(busy, b);
  return busy;
}

std::vector<std::string> summary_row(const ServiceReport& report) {
  // Residuals live around 1e-15; fixed-point formatting would flatten
  // them all to zero, so the numerics column is scientific.
  std::ostringstream resid;
  resid.precision(2);
  resid << std::scientific << report.max_residual;
  return {report.policy_label.empty() ? policy_name(report.policy)
                                      : report.policy_label,
          format_number(report.makespan_s, 5),
          format_number(report.mean_wait_s, 4),
          format_number(report.max_wait_s, 4),
          format_number(report.throughput_jobs_per_hour, 4),
          format_number(report.aggregate_gflops, 4),
          format_number(100.0 * report.utilization, 3),
          std::to_string(report.backfilled_jobs),
          std::to_string(report.killed_jobs),
          std::to_string(report.requeued_jobs),
          format_number(report.wasted_node_seconds, 4),
          format_number(static_cast<double>(total_wan_bytes(report)) / 1e9,
                        3),
          format_number(report.mean_wan_slowdown, 4),
          format_number(100.0 * max_wan_busy_fraction(report), 3),
          std::to_string(report.executed_attempts),
          resid.str()};
}

GridJobService::GridJobService(simgrid::GridTopology topology,
                               model::Roofline roofline,
                               ServiceOptions options)
    : topology_(std::move(topology)),
      roofline_(roofline),
      options_(options) {
  QRGRID_CHECK(options_.max_groups >= 1);
  QRGRID_CHECK(options_.domains_per_cluster >= 0 ||
               options_.domains_per_cluster == core::kOneDomainPerProcess);
  // The uplink capacity feeds every replay's WAN horizon (and, when
  // contention is on, the shared model's fair shares): zero would turn
  // transfer times infinite and deadlock the event loop.
  QRGRID_CHECK_MSG(options_.wan_link_Bps > 0.0,
                   "wan_link_Bps must be positive (got "
                       << options_.wan_link_Bps << ")");
  QRGRID_CHECK_MSG(options_.wan_backbone_Bps >= 0.0,
                   "wan_backbone_Bps must be >= 0 (0 = auto)");
  // The policy seam: one object owns queue order, backfill decisions,
  // and placement scoring. Built by enum or by the custom factory; run()
  // resets its accrued state (fair-share deficits) per workload.
  policy_ = options_.policy_factory ? options_.policy_factory()
                                    : make_policy(options_.policy);
  QRGRID_CHECK_MSG(policy_ != nullptr, "policy_factory returned null");
  BackendOptions backend_options;
  backend_options.domains_per_cluster = options_.domains_per_cluster;
  backend_options.wan_link_Bps = options_.wan_link_Bps;
  backend_options.record_wan_transfers =
      options_.wan_contention || options_.wan_aware;
  backend_options.matrix_seed = options_.backend_seed;
  backend_options.max_execute_elements = options_.backend_max_elements;
  backend_options.caqr_panel_width = options_.backend_caqr_panel_width;
  backend_ = make_backend(options_.backend, &topology_, roofline_,
                          backend_options);
  // Observability: the policy and backend report through the same
  // caller-owned sinks as the service itself (null = disabled).
  policy_->bind_metrics(options_.metrics);
  backend_->bind_telemetry(options_.tracer, options_.metrics);
}

GridJobService::~GridJobService() = default;

double GridJobService::predicted_seconds(const Job& job) const {
  // Equation (1) with intra-cluster link constants and one domain per
  // process — an ordering estimate, not the exact replay.
  model::MachineParams mp;
  mp.latency_s = topology_.intra_cluster_link().latency_s;
  mp.inv_bandwidth_s_per_double =
      sizeof(double) / topology_.intra_cluster_link().bandwidth_Bps;
  mp.domain_gflops = roofline_.rate_gflops(job.n);
  return model::predict_tsqr_seconds(job.m, job.n, job.procs, mp);
}

std::optional<Placement> GridJobService::try_place(
    const Job& job, const std::vector<int>& free_nodes,
    const GridWanModel* wan) const {
  // Necessary-condition prechecks before paying for a residual topology
  // and a MetaScheduler: any allocation needs job.procs free procs in
  // total, and every group (even at the max split) is confined to one
  // cluster, so SOME cluster must hold ceil(procs / max_groups) procs.
  // Pure rejections — a placement that passes is decided exactly as
  // before, so dispatch decisions are unchanged.
  long long free_procs = 0;
  long long max_cluster_procs = 0;
  for (int c = 0; c < topology_.num_clusters(); ++c) {
    const long long procs =
        static_cast<long long>(free_nodes[static_cast<std::size_t>(c)]) *
        topology_.cluster(c).procs_per_node;
    free_procs += procs;
    max_cluster_procs = std::max(max_cluster_procs, procs);
  }
  if (job.procs > free_procs) return std::nullopt;
  const int min_group_procs =
      (job.procs + options_.max_groups - 1) / options_.max_groups;
  if (min_group_procs > max_cluster_procs) return std::nullopt;

  // Placement scoring is the policy's: by default master-id order, or
  // idlest-WAN-first under wan_aware dispatch, so the meta-scheduler's
  // first-fit lands equally feasible groups away from in-flight flows
  // (ties keep master-id order — the naive path is exactly PR-2).
  const std::vector<int> order =
      policy_->cluster_order(topology_.num_clusters(), wan);
  SubTopology residual = make_sub_topology(topology_, free_nodes, order);
  const simgrid::MetaScheduler scheduler(residual.topology);

  // Fewest groups first: every extra group is another cluster boundary the
  // R-factor reduction must cross on a wide-area link.
  for (int g = 1; g <= options_.max_groups; ++g) {
    const int group_procs = (job.procs + g - 1) / g;
    simgrid::JobProfile profile;
    profile.name = "job-" + std::to_string(job.id);
    for (int i = 0; i < g; ++i) {
      simgrid::GroupRequirement req;
      req.processes = group_procs;
      req.max_intra_latency_s = kGroupMaxLatencyS;
      req.min_intra_bandwidth_Bps = kGroupMinBandwidthBps;
      profile.groups.push_back(req);
    }
    const auto alloc = scheduler.allocate(profile);
    if (!alloc.has_value()) continue;

    std::vector<int> procs_used(
        static_cast<std::size_t>(residual.topology.num_clusters()), 0);
    for (int rank : alloc->placement) {
      ++procs_used[static_cast<std::size_t>(
          residual.topology.location_of(rank).cluster)];
    }
    // Canonical form: ascending master cluster ids, whatever order the
    // (possibly wan-reordered) residual presented them in — the replay
    // cache key and the report's parallel arrays rely on it.
    std::vector<std::pair<int, int>> grants;
    for (int c = 0; c < residual.topology.num_clusters(); ++c) {
      const int procs = procs_used[static_cast<std::size_t>(c)];
      if (procs == 0) continue;
      const int ppn = residual.topology.cluster(c).procs_per_node;
      const int nodes = (procs + ppn - 1) / ppn;  // node-exclusive grant
      grants.emplace_back(residual.to_master[static_cast<std::size_t>(c)],
                          nodes);
    }
    std::sort(grants.begin(), grants.end());
    Placement placement;
    for (const auto& [cluster, nodes] : grants) {
      placement.clusters.push_back(cluster);
      placement.nodes.push_back(nodes);
      placement.total_nodes += nodes;
    }
    return placement;
  }
  return std::nullopt;
}

double GridJobService::attempt_seconds(const ExecutionProfile& replay,
                                       double credited_fraction) const {
  const double remaining = replay.seconds * (1.0 - credited_fraction);
  // Same gate as the outage path's credit banking (restart_credit &&
  // checkpoint_panels > 0): whenever a kill can BANK panels, this path
  // prices the checkpoints that protect them — and with
  // checkpoint_cost_s == 0 the priced overhead is exactly zero, the
  // documented "free credit" configuration (ServiceOptions), not an
  // accounting hole.
  if (!options_.restart_credit || options_.checkpoint_panels <= 0) {
    return remaining;
  }
  if (options_.checkpoint_cost_s <= 0.0) return remaining;
  // Every interior panel boundary still ahead of the attempt writes a
  // checkpoint over the intra-cluster link (the last panel completes the
  // job — nothing left to protect). Banked panels were written by the
  // killed attempt that earned them.
  const int panels = options_.checkpoint_panels;
  const int banked = static_cast<int>(
      std::floor(credited_fraction * panels + 1e-9));
  const int to_write = std::max(0, panels - 1 - banked);
  return remaining + to_write * options_.checkpoint_cost_s;
}

double GridJobService::shadow_time(const Job& head,
                                   const std::vector<Running>& running,
                                   const std::vector<int>& free_nodes,
                                   const GridWanModel* wan,
                                   double now_s) const {
  // Sort by ESTIMATED finish: the scheduler plans with walltimes, not with
  // the exact replays it could not know on a real machine. A WAN-priced
  // policy knows drains can outlast both bounds, so each running
  // attempt's finish is lifted to its pessimistic drain estimate.
  const bool priced = wan != nullptr && policy_->wan_priced_shadow();
  std::vector<double> drain_estimates;
  std::vector<int> flow_ids;
  if (priced) {
    flow_ids.reserve(running.size());
    for (const Running& r : running) {
      if (r.flow >= 0) flow_ids.push_back(r.flow);
    }
    wan->drain_estimates_s(now_s, flow_ids, drain_estimates);
  }
  std::vector<std::pair<double, const Running*>> by_finish;
  by_finish.reserve(running.size());
  std::size_t next_estimate = 0;
  for (const Running& r : running) {
    double est = r.est_finish_s;
    double drain = 0.0;
    if (priced && r.flow >= 0) {
      drain = drain_estimates[next_estimate++];  // parallel to flow_ids
    }
    // Walltime-bounded attempts release their nodes at kill_s no matter
    // how far the drains stretch (the kill caps wan_finish), so only
    // unlimited attempts need their drain estimate priced in.
    if (priced && r.flow >= 0 && r.job.walltime_s <= 0.0) {
      est = std::max(est, drain);
    }
    by_finish.emplace_back(est, &r);
  }
  std::sort(by_finish.begin(), by_finish.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second->seq < b.second->seq;
            });
  std::vector<int> free = free_nodes;
  for (const auto& [est, r] : by_finish) {
    for (std::size_t i = 0; i < r->placement.clusters.size(); ++i) {
      free[static_cast<std::size_t>(r->placement.clusters[i])] +=
          r->placement.nodes[i];
    }
    if (try_place(head, free).has_value()) return est;
  }
  // Reachable only when a cluster the head needs is down: the reservation
  // waits on a recovery, not on nodes.
  return kInf;
}

// ---------------------------------------------------------------------------
// Engine: one in-flight workload — every local of the former monolithic
// run() hoisted into a member of the same name, every lambda into a
// method, so the loop can pause between steps (the stepping API),
// serialize itself (save/load), and branch same-instant orderings
// through the tie oracle. A null-oracle run executes the exact
// statements the monolith ran, in the same order: the refactor is
// byte-identical by construction, and the determinism suites pin it.
struct GridJobService::Engine {
  GridJobService& svc;
  // References into the service so hoisted code reads exactly as it did
  // when it lived inside GridJobService::run().
  simgrid::GridTopology& topology_;
  ServiceOptions& options_;
  std::unique_ptr<SchedulingPolicy>& policy_;
  std::unique_ptr<ExecutionBackend>& backend_;

  std::vector<Job> jobs;
  int nclusters = 0;
  std::vector<int> total_nodes;
  int grid_nodes = 0;
  ServiceReport report;
  bool wan_on = false;
  std::optional<GridWanModel> wan_model;
  GridWanModel* wan = nullptr;
  double wan_clock = 0.0;  ///< how far the WAN horizons have been drained
  /// Replayed copy of the outage trace: the run never consumes options_'
  /// original, so the same service can serve several workloads
  /// identically.
  OutageTrace trace;
  ServiceTracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  PhaseProfiler* profiler = nullptr;
  bool blame_on = false;
  bool has_outages = false;
  std::vector<int> free_nodes;
  std::vector<int> down_depth;
  JobQueue pending;
  /// NOT in start order once completions swap-and-pop; every consumer
  /// either scans for a (key, seq) minimum or sorts explicitly.
  std::vector<Running> running;
  std::unordered_map<int, Progress> progress;
  /// Pending job currently holding the backfill reservation; -1 = none.
  /// A job that loses the head slot WITHOUT starting has its outstanding
  /// promise withdrawn along with the reservation.
  int reserved_job = -1;
  double clock = 0.0;
  double useful_node_seconds = 0.0;
  double useful_flops_total = 0.0;
  std::size_t next_arrival = 0;
  int seq = 0;
  /// Free nodes the scheduler may hand out NOW (down clusters masked
  /// out), maintained incrementally at every grant/release/outage
  /// boundary, with an ordered index over per-cluster free procs so the
  /// dispatch loop's feasibility prechecks are O(1) lookups.
  std::vector<int> placeable;
  std::vector<int> cluster_ppn;
  std::multiset<long long> placeable_procs_index;
  long long placeable_procs_total = 0;
  /// Wait-blame attribution (ServiceOptions::wait_blame): one OPEN
  /// interval per pending job, flushed into per-category totals when the
  /// classified reason changes or the job starts.
  struct BlameOpen {
    int category = 0;
    double since_s = 0.0;
  };
  std::unordered_map<int, BlameOpen> blame_open;
  std::unordered_map<int, std::array<double, kBlameCategoryCount>>
      blame_totals;
  /// The shadow the LAST dispatch pass promised its blocked head (+inf
  /// when none was computable) — what the blame classifier replays the
  /// backfill admission test against.
  double last_shadow = kInf;
  /// Placement preference: only wan_aware dispatch consults the WAN
  /// model; feasibility checks and shadow estimates stay naive.
  const GridWanModel* placement_wan = nullptr;

  /// quiet = the restore path: skip workload admission (validated by the
  /// original start()) and the preamble's telemetry emissions (the
  /// kRunConfig event, the metrics series skeleton) — the restored
  /// telemetry state already contains them.
  Engine(GridJobService& service, std::vector<Job> jobs_in, bool quiet);

  // Forwarding shims so hoisted code keeps its original spelling.
  std::optional<Placement> try_place(
      const Job& job, const std::vector<int>& nodes_free,
      const GridWanModel* wan_pref = nullptr) const {
    return svc.try_place(job, nodes_free, wan_pref);
  }
  const ExecutionProfile& replay_for(const Job& job,
                                     const Placement& placement) {
    return svc.replay_for(job, placement);
  }
  double attempt_seconds(const ExecutionProfile& replay,
                         double credited_fraction) const {
    return svc.attempt_seconds(replay, credited_fraction);
  }
  double shadow_time(const Job& head, const std::vector<Running>& r,
                     const std::vector<int>& nodes_free,
                     const GridWanModel* wan_model_ptr, double now_s) const {
    return svc.shadow_time(head, r, nodes_free, wan_model_ptr, now_s);
  }
  double predicted_seconds(const Job& job) const {
    return svc.predicted_seconds(job);
  }

  bool active() const {
    return next_arrival < jobs.size() || !pending.empty() ||
           !running.empty();
  }

  void set_placeable(int cluster, int nodes);
  void grant_nodes(const Placement& pl);
  void release_nodes(const Placement& pl);
  bool placeable_precheck(const Job& job) const;
  void blame_flush(int job_id, double upto_s);
  double wan_finish(const Running& r) const;
  double event_of(const Running& r) const;
  bool completes(const Running& r) const;
  void charge_wan(const Running& r, double fraction);
  ExecutionResult execute_attempt(const Running& r, bool killed,
                                  double through_fraction);
  void record_outcome(Running& r, double end_s, JobFate fate,
                      const ExecutionResult& exec);
  void start_job(Job job, const Placement& placement, bool backfilled);
  void dispatch();
  void classify_waits();
  void apply_outage(const OutageEvent& ev);
  /// Removes running[index] (swap-and-pop) and resolves it as the loop's
  /// next completion-class event — a completion or a walltime kill.
  void complete_one(std::size_t index);
  void resolve_completions();
  void drain_outages();
  void admit_one_arrival(Job job);
  void admit_arrivals();
  void step();
  ServiceReport finish();
  void save(SnapshotWriter& w);
  void load(SnapshotReader& r);
};

GridJobService::Engine::Engine(GridJobService& service,
                               std::vector<Job> jobs_in, bool quiet)
    : svc(service),
      topology_(service.topology_),
      options_(service.options_),
      policy_(service.policy_),
      backend_(service.backend_),
      jobs(std::move(jobs_in)),
      trace(service.options_.outages),
      pending(service.policy_.get()) {
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s
                                      : a.id < b.id;
  });

  nclusters = topology_.num_clusters();
  total_nodes.assign(static_cast<std::size_t>(nclusters), 0);
  for (int c = 0; c < nclusters; ++c) {
    total_nodes[static_cast<std::size_t>(c)] = topology_.cluster(c).nodes;
    grid_nodes += topology_.cluster(c).nodes;
  }
  if (!quiet) {
    // Admission preflight. Whether a job fits the EMPTY fully-up grid
    // depends only on its procs count (shape never constrains placement),
    // so a million-job workload pays one real placement per distinct size.
    std::unordered_set<int> feasible_procs;
    for (const Job& job : jobs) {
      QRGRID_CHECK_MSG(job.m >= job.n && job.n >= 1 && job.procs >= 1 &&
                           job.walltime_s >= 0.0 && job.weight > 0.0,
                       "malformed job " << job.id);
      if (!feasible_procs.insert(job.procs).second) continue;
      QRGRID_CHECK_MSG(try_place(job, total_nodes).has_value(),
                       "job " << job.id << " (" << job.procs
                              << " procs) cannot fit the grid at all");
    }
  }

  // Accrued policy state (fair-share deficits) must not leak between
  // workloads: the same service serving the same jobs twice reports
  // byte-identically. The restore path loads the saved deficits over
  // this clean slate.
  policy_->reset();

  report.policy = options_.policy;
  report.policy_label = policy_->name();
  report.wan_egress_bytes.assign(static_cast<std::size_t>(nclusters), 0);
  report.wan_ingress_bytes.assign(static_cast<std::size_t>(nclusters), 0);
  report.wan_uplink_busy.assign(static_cast<std::size_t>(nclusters), 0.0);
  report.wan_downlink_busy.assign(static_cast<std::size_t>(nclusters), 0.0);

  // Shared-WAN contention: one grid-wide model every in-flight attempt
  // registers its inter-site byte demand with. Per run, like the outage
  // trace, so serving several workloads from one service stays pure —
  // and only built when contention is on, so its capacity invariants
  // cannot reject runs that never consult it.
  wan_on = options_.wan_contention || options_.wan_aware;
  if (wan_on) {
    const double backbone_Bps =
        options_.wan_backbone_Bps > 0.0
            ? options_.wan_backbone_Bps
            : options_.wan_link_Bps * std::max(1, nclusters / 2);
    wan_model.emplace(nclusters, options_.wan_link_Bps, backbone_Bps,
                      options_.wan_fairness, options_.wan_pair_Bps);
  }
  wan = wan_model ? &*wan_model : nullptr;

  // Observability (sched/telemetry.hpp): both sinks are caller-owned and
  // usually null; every emit site guards on the pointer so a disabled
  // run never builds an event. Nothing recorded here feeds back into a
  // scheduling decision.
  tracer = options_.tracer;
  metrics = options_.metrics;
  profiler = options_.profiler;
  blame_on = options_.wait_blame;
  has_outages = trace.enabled();
  if (wan != nullptr) {
    wan->set_tracer(tracer);
    wan->set_profiler(profiler);
  }
  if (!quiet && tracer != nullptr) {
    ServiceTraceEvent ev;
    ev.kind = TraceKind::kRunConfig;
    ev.value = (wan_on ? kTraceConfigWanContention : 0) |
               (has_outages ? kTraceConfigHasOutages : 0) |
               (policy_->backfills() ? kTraceConfigBackfills : 0) |
               (blame_on ? kTraceConfigWaitBlame : 0);
    ev.note = policy_->name();
    tracer->record(std::move(ev));
  }
  if (!quiet && metrics != nullptr) {
    // Series skeleton at t=0: every step curve the loop samples exists
    // deterministically even when the loop never iterates (an empty
    // workload), so consumers can rely on the key set. The loop's own
    // first sample at the same instant overwrites these in place.
    metrics->sample("queue_depth", 0.0, 0.0);
    metrics->sample("running_jobs", 0.0, 0.0);
    if (wan_on) {
      for (int c = 0; c < nclusters; ++c) {
        metrics->sample("wan.uplink_load.c" + std::to_string(c), 0.0, 0.0);
      }
      metrics->sample("wan.backbone_load", 0.0, 0.0);
      metrics->sample("wan.live_flows", 0.0, 0.0);
    }
  }
  free_nodes = total_nodes;
  down_depth.assign(static_cast<std::size_t>(nclusters), 0);
  pending.bind_metrics(metrics);
  placeable = free_nodes;
  cluster_ppn.assign(static_cast<std::size_t>(nclusters), 0);
  for (int c = 0; c < nclusters; ++c) {
    cluster_ppn[static_cast<std::size_t>(c)] =
        topology_.cluster(c).procs_per_node;
  }
  for (int c = 0; c < nclusters; ++c) {
    const long long procs =
        static_cast<long long>(placeable[static_cast<std::size_t>(c)]) *
        cluster_ppn[static_cast<std::size_t>(c)];
    placeable_procs_index.insert(procs);
    placeable_procs_total += procs;
  }
  placement_wan = options_.wan_aware ? wan : nullptr;
}

// Every placeable[c] mutation goes through here to keep the index true.
void GridJobService::Engine::set_placeable(int cluster, int nodes) {
  const auto c = static_cast<std::size_t>(cluster);
  const long long before =
      static_cast<long long>(placeable[c]) * cluster_ppn[c];
  const long long after =
      static_cast<long long>(nodes) * cluster_ppn[c];
  placeable[c] = nodes;
  if (before == after) return;
  placeable_procs_index.erase(placeable_procs_index.find(before));
  placeable_procs_index.insert(after);
  placeable_procs_total += after - before;
}

void GridJobService::Engine::grant_nodes(const Placement& pl) {
  for (std::size_t i = 0; i < pl.clusters.size(); ++i) {
    const auto c = static_cast<std::size_t>(pl.clusters[i]);
    free_nodes[c] -= pl.nodes[i];
    QRGRID_CHECK(free_nodes[c] >= 0);
    if (down_depth[c] == 0) {
      set_placeable(pl.clusters[i], placeable[c] - pl.nodes[i]);
    }
  }
}

void GridJobService::Engine::release_nodes(const Placement& pl) {
  for (std::size_t i = 0; i < pl.clusters.size(); ++i) {
    const auto c = static_cast<std::size_t>(pl.clusters[i]);
    free_nodes[c] += pl.nodes[i];
    if (down_depth[c] == 0) {
      set_placeable(pl.clusters[i], placeable[c] + pl.nodes[i]);
    }
  }
}

// O(1) screen before a try_place on the CURRENT placeable state: the
// same two necessary conditions try_place itself checks, served from
// the maintained aggregates. False means try_place would return
// nullopt; true decides nothing.
bool GridJobService::Engine::placeable_precheck(const Job& job) const {
  if (job.procs > placeable_procs_total) return false;
  const int min_group_procs =
      (job.procs + options_.max_groups - 1) / options_.max_groups;
  return min_group_procs <= *placeable_procs_index.rbegin();
}

// Wait-blame attribution (opt-in via ServiceOptions::wait_blame): one
// OPEN interval per pending job — "held since when, for which reason"
// — re-classified after every dispatch pass. An interval flushes into
// per-category totals (and a kWaitBlame event) when the reason changes
// or the job starts, so the categories partition each job's wait
// exactly; requeued runtime flushes as kRequeuedRerun from the outage
// path, which closes the partition across retries. Pure observation:
// nothing here feeds back into a scheduling decision.
void GridJobService::Engine::blame_flush(int job_id, double upto_s) {
  const auto it = blame_open.find(job_id);
  if (it == blame_open.end()) return;
  const double dt = upto_s - it->second.since_s;
  if (dt > 0.0) {
    blame_totals[job_id][static_cast<std::size_t>(it->second.category)] +=
        dt;
    if (tracer != nullptr) {
      ServiceTraceEvent ev;
      ev.t_s = upto_s;
      ev.kind = TraceKind::kWaitBlame;
      ev.job = job_id;
      ev.value = dt;
      ev.value2 = static_cast<double>(it->second.category);
      tracer->record(std::move(ev));
    }
  }
  it->second.since_s = upto_s;
}

// Completion-class event geometry. finish_s is the ISOLATED replay
// end; with contention on, the attempt additionally cannot complete
// before its shared-WAN demand has drained — +inf while it has not,
// which correctly keeps undrained jobs out of the completion scan
// (their next state change is a WAN event, already a candidate).
double GridJobService::Engine::wan_finish(const Running& r) const {
  if (!wan_on) return r.finish_s;
  if (!wan->drained(r.flow)) return kInf;
  return std::max(r.finish_s, wan->drained_at_s(r.flow));
}

// The earlier of completing and being walltime-killed; ties resolve to
// "finished" (<=), so a job whose last byte drains exactly on its
// walltime completes.
double GridJobService::Engine::event_of(const Running& r) const {
  const double finish = wan_finish(r);
  return finish < r.kill_s ? finish : r.kill_s;
}

bool GridJobService::Engine::completes(const Running& r) const {
  return wan_finish(r) <= r.kill_s;
}

// Charge one attempt's WAN bytes pro-rata to the fraction of the FULL
// replay it actually covered, so a restart-credited job never pays for
// its banked prefix twice (an uncredited full attempt charges exactly
// the replay counters). With contention on, the WAN model knows the
// bytes each flow really moved, so attempts retire their flow instead.
void GridJobService::Engine::charge_wan(const Running& r, double fraction) {
  for (std::size_t i = 0; i < r.placement.clusters.size(); ++i) {
    const auto c = static_cast<std::size_t>(r.placement.clusters[i]);
    report.wan_egress_bytes[c] += static_cast<long long>(
        static_cast<double>(r.replay->egress_bytes[i]) * fraction);
    report.wan_ingress_bytes[c] += static_cast<long long>(
        static_cast<double>(r.replay->ingress_bytes[i]) * fraction);
  }
}

// Real execution of one resolved attempt (msg-runtime backend only; a
// no-op on the replay backend). `killed` is explicit rather than
// inferred from the fraction: a WAN-stretched attempt can be killed
// while waiting on drains with its whole replay timeline covered, and
// that must still count as a kill, never as a clean verified run.
// `through_fraction` is where the attempt ended on the FULL
// factorization timeline — mapped to a virtual-walltime limit so the
// run genuinely aborts mid-factorization through the communicator.
ExecutionResult GridJobService::Engine::execute_attempt(
    const Running& r, bool killed, double through_fraction) {
  ExecutionResult exec;
  if (!backend_->executes()) return exec;
  const double abort_vtime_s =
      killed ? std::clamp(through_fraction, 0.0, 1.0) * r.replay->seconds
             : kInf;
  {
    PhaseScope scope(profiler, ProfilePhase::kBackendExecute);
    exec = backend_->execute(r.job, r.placement, abort_vtime_s);
  }
  ++report.executed_attempts;
  if (exec.aborted) ++report.aborted_attempts;
  if (killed) {
    report.injected_abort_vtime_s += abort_vtime_s;
    report.measured_abort_vtime_s += exec.measured_s;
    // A kill landing at the very end of the timeline can let the real
    // factorization finish first; the attempt is dead either way, so
    // its numerics are never reported.
    exec.residual = std::numeric_limits<double>::quiet_NaN();
    exec.orthogonality = std::numeric_limits<double>::quiet_NaN();
  } else {
    if (std::isfinite(exec.residual)) {
      report.max_residual = std::max(report.max_residual, exec.residual);
    }
    if (std::isfinite(exec.orthogonality)) {
      report.max_orthogonality =
          std::max(report.max_orthogonality, exec.orthogonality);
    }
  }
  return exec;
}

void GridJobService::Engine::record_outcome(Running& r, double end_s,
                                            JobFate fate,
                                            const ExecutionResult& exec) {
  const Progress& p = progress[r.job.id];
  JobOutcome outcome;
  outcome.start_s = r.start_s;
  outcome.finish_s = end_s;
  outcome.service_s = end_s - r.start_s;
  const double isolated_s = r.finish_s - r.start_s;
  outcome.wan_slowdown = wan_on && isolated_s > 0.0
                             ? outcome.service_s / isolated_s
                             : 1.0;
  outcome.gflops = fate == JobFate::kCompleted ? r.replay->gflops : 0.0;
  outcome.clusters = r.placement.clusters;
  outcome.nodes_per_cluster = r.placement.nodes;
  outcome.nodes = r.placement.total_nodes;
  outcome.backfilled = r.backfilled;
  outcome.fate = fate;
  outcome.attempts = p.attempts;
  outcome.wasted_node_s = p.wasted_node_s;
  outcome.credited_s = p.credited_fraction * r.replay->seconds;
  outcome.reserved_start_s = p.reserved_start_s;
  outcome.executed = exec.executed;
  outcome.exec_aborted = exec.aborted;
  outcome.measured_s = exec.measured_s;
  outcome.residual = exec.residual;
  outcome.orthogonality = exec.orthogonality;
  if (blame_on) {
    const auto bt = blame_totals.find(r.job.id);
    if (bt != blame_totals.end()) {
      outcome.blame_s.assign(bt->second.begin(), bt->second.end());
    } else {
      outcome.blame_s.assign(
          static_cast<std::size_t>(kBlameCategoryCount), 0.0);
    }
  }
  outcome.job = std::move(r.job);
  if (metrics != nullptr) {
    // Wait and slowdown distributions per user and priority class —
    // the per-cohort fairness view the aggregate report flattens.
    const double wait = outcome.wait_s();
    metrics->observe("wait_s.user." + std::to_string(outcome.job.user),
                     wait);
    metrics->observe(
        "wait_s.prio." + std::to_string(outcome.job.priority), wait);
    if (fate == JobFate::kCompleted) {
      static const std::vector<double> kSlowdownBounds = {
          1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0};
      metrics->observe(
          "slowdown.user." + std::to_string(outcome.job.user),
          outcome.wan_slowdown, kSlowdownBounds);
    }
  }
  report.makespan_s = std::max(report.makespan_s, end_s);
  report.outcomes.push_back(std::move(outcome));
}

void GridJobService::Engine::start_job(Job job, const Placement& placement,
                                       bool backfilled) {
  if (blame_on) {
    // Close the job's open wait interval BEFORE the start event, so a
    // validator at the kDispatch/kBackfillStart sees the full
    // partition of [arrival, start) already blamed.
    blame_flush(job.id, clock);
    blame_open.erase(job.id);
  }
  if (job.id == reserved_job) {
    reserved_job = -1;  // promise honored
  } else if (!backfilled && reserved_job != -1) {
    // A different job overtook the reservation holder straight from
    // the head path (a priority claim, a deficit reorder, a requeued
    // earlier arrival) while the holder is still pending — it may now
    // be taking the very nodes the promise counted on, so the stale
    // promise is withdrawn. Backfills are exempt: they are sanctioned
    // BY the reservation. The next blocked-head pass re-promises.
    progress[reserved_job].reserved_start_s = kInf;
    if (tracer != nullptr) {
      ServiceTraceEvent ev;
      ev.t_s = clock;
      ev.kind = TraceKind::kReservationWithdraw;
      ev.job = reserved_job;
      tracer->record(std::move(ev));
    }
    reserved_job = -1;
  }
  const ExecutionProfile& replay = replay_for(job, placement);
  Progress& p = progress[job.id];
  ++p.attempts;
  // Restart credit: only the unfinished tail of the factorization
  // re-runs (at THIS placement's rate — the fraction is what carries),
  // plus checkpoint I/O for the panels this attempt will protect.
  const double attempt_s = attempt_seconds(replay, p.credited_fraction);
  QRGRID_CHECK(attempt_s > 0.0);
  // Deficit accounting (fair-share): the attempt is expected to hold
  // its grant for attempt_s — charged at start so the very next head
  // decision already sees this user served.
  policy_->on_attempt_start(
      job, attempt_s * static_cast<double>(placement.total_nodes));
  grant_nodes(placement);
  Running r;
  r.finish_s = clock + attempt_s;
  r.kill_s = job.walltime_s > 0.0 ? clock + job.walltime_s : kInf;
  // The scheduler's belief: walltimes are per-attempt and enforced, so
  // the attempt is over by start + walltime no matter what.
  r.est_finish_s =
      clock + (job.walltime_s > 0.0 ? job.walltime_s : attempt_s);
  r.seq = seq++;
  r.job = std::move(job);
  r.placement = placement;
  r.start_s = clock;
  r.start_fraction = p.credited_fraction;
  r.replay = &replay;
  r.backfilled = backfilled;
  if (wan_on) {
    // Register the attempt's WAN demand: per granted cluster one
    // uplink and one downlink pool (bytes pro-rated to the uncovered
    // [start_fraction, 1] tail, assuming the link's demand spreads
    // over its [first_fraction, 1] activity window), plus one backbone
    // pool carrying every byte once. Each pool activates where the
    // replay timeline first touches its link, mapped onto the
    // attempt's wall-clock span.
    const double f0 = p.credited_fraction;
    std::vector<GridWanModel::Pool> pools;
    double backbone_bytes = 0.0;
    double backbone_activation = kInf;
    auto add_pool = [&](GridWanModel::Pool::Link link, int cluster,
                        int peer, double full_bytes,
                        double first_fraction) {
      if (full_bytes <= 0.0) return;
      const double from = std::max(first_fraction, f0);
      const double window = 1.0 - first_fraction;
      if (window <= 0.0 || from >= 1.0) return;
      const double bytes = full_bytes * (1.0 - from) / window;
      const double activation_s =
          clock + (from - f0) / (1.0 - f0) * attempt_s;
      GridWanModel::Pool pool;
      pool.link = link;
      pool.cluster = cluster;
      pool.peer = peer;
      pool.bytes = bytes;
      pool.activation_s = activation_s;
      pools.push_back(pool);
      if (link == GridWanModel::Pool::Link::kUplink) {
        backbone_bytes += bytes;
        backbone_activation = std::min(backbone_activation, activation_s);
      }
    };
    for (std::size_t i = 0; i < placement.clusters.size(); ++i) {
      const double egress =
          static_cast<double>(replay.egress_bytes[i]);
      // With per-pair horizons configured, uplink demand is split per
      // destination (pro-rated to the peers' ingress shares — the
      // replay records per-cluster totals, not a src x dst matrix), so
      // an asymmetric pair link can bind exactly the bytes crossing it.
      double peer_total = 0.0;
      if (wan->pair_aware() && egress > 0.0) {
        for (std::size_t j = 0; j < placement.clusters.size(); ++j) {
          if (j != i) {
            peer_total +=
                static_cast<double>(replay.ingress_bytes[j]);
          }
        }
      }
      if (peer_total > 0.0) {
        for (std::size_t j = 0; j < placement.clusters.size(); ++j) {
          if (j == i || replay.ingress_bytes[j] <= 0) continue;
          add_pool(GridWanModel::Pool::Link::kUplink,
                   placement.clusters[i], placement.clusters[j],
                   egress *
                       static_cast<double>(replay.ingress_bytes[j]) /
                       peer_total,
                   replay.egress_first_fraction[i]);
        }
      } else {
        add_pool(GridWanModel::Pool::Link::kUplink,
                 placement.clusters[i], /*peer=*/-1, egress,
                 replay.egress_first_fraction[i]);
      }
      add_pool(GridWanModel::Pool::Link::kDownlink,
               placement.clusters[i], /*peer=*/-1,
               static_cast<double>(replay.ingress_bytes[i]),
               replay.ingress_first_fraction[i]);
    }
    if (backbone_bytes > 0.0) {
      GridWanModel::Pool trunk;
      trunk.link = GridWanModel::Pool::Link::kBackbone;
      trunk.bytes = backbone_bytes;
      trunk.activation_s = backbone_activation;
      pools.push_back(trunk);
    }
    r.flow = wan->admit(clock, std::move(pools));
  }
  if (tracer != nullptr) {
    ServiceTraceEvent ev;
    ev.t_s = clock;
    ev.kind = backfilled ? TraceKind::kBackfillStart : TraceKind::kDispatch;
    ev.job = r.job.id;
    ev.flow = r.flow;
    ev.value = r.finish_s;      // isolated replay end
    ev.value2 = r.est_finish_s; // what EASY plans with
    ev.clusters = r.placement.clusters;
    ev.nodes = r.placement.nodes;
    tracer->record(std::move(ev));
  }
  if (metrics != nullptr) {
    metrics->add(backfilled ? "dispatch.backfill_admits"
                            : "dispatch.head_starts");
  }
  running.push_back(std::move(r));
}

void GridJobService::Engine::dispatch() {
  last_shadow = kInf;
  // Policy order: start from the head while it fits the up clusters.
  // front() re-establishes policy order itself when keys moved
  // (fair-share deficits after each start) — the incremental sync that
  // replaced the per-dispatch full resort; static-key policies skip it
  // entirely.
  while (!pending.empty()) {
    if (metrics != nullptr) metrics->add("dispatch.head_place_scans");
    const Job& head = pending.front();
    std::optional<Placement> placement;
    if (placeable_precheck(head)) {
      placement = try_place(head, placeable, placement_wan);
    }
    if (!placement.has_value()) break;
    start_job(pending.pop_front(), *placement, /*backfilled=*/false);
  }
  if (!policy_->backfills() || pending.empty() || running.empty()) {
    return;
  }
  // EASY family: the blocked head holds a reservation at its shadow
  // time; any later job may start now iff its ESTIMATED completion
  // (walltime when set, exact replay when not) does not outlast the
  // reservation. Actual completions only ever come earlier than the
  // estimates, so the head is provably never delayed past the promise
  // (under WAN contention only wan_priced_shadow policies keep that
  // property, by lifting estimates to the drain bounds).
  // The reservation follows the CURRENT head: a previous holder that
  // was displaced while still pending (it did not start) had its
  // reservation claimed — the stale promise is withdrawn with it, so
  // the no-delay invariant binds exactly the job holding the shadow.
  if (reserved_job != -1 && reserved_job != pending.front().id) {
    progress[reserved_job].reserved_start_s = kInf;
    if (tracer != nullptr) {
      ServiceTraceEvent ev;
      ev.t_s = clock;
      ev.kind = TraceKind::kReservationWithdraw;
      ev.job = reserved_job;
      tracer->record(std::move(ev));
    }
  }
  reserved_job = pending.front().id;
  if (metrics != nullptr) metrics->add("dispatch.shadow_computations");
  double shadow;
  {
    PhaseScope scope(profiler, ProfilePhase::kShadow);
    shadow = shadow_time(pending.front(), running, placeable, wan, clock);
  }
  last_shadow = shadow;
  // No computable reservation (the head waits on an outage recovery,
  // not on nodes): backfilling would have no bound and could starve
  // the head indefinitely, so don't.
  if (shadow == kInf) return;
  Progress& head_progress = progress[pending.front().id];
  head_progress.reserved_start_s =
      std::min(head_progress.reserved_start_s, shadow);
  if (tracer != nullptr) {
    ServiceTraceEvent ev;
    ev.t_s = clock;
    ev.kind = TraceKind::kReservationClaim;
    ev.job = reserved_job;
    ev.value = shadow;  // the promised latest start
    tracer->record(std::move(ev));
  }
  const bool priced = wan != nullptr && policy_->wan_priced_shadow();
  // Ordered scan behind the head. Starts (on_attempt_start) dirty
  // fair-share keys mid-scan, but iteration and take() never compare
  // entries, so the frozen scan order is exactly the order the pass
  // began with — the historical positional-scan semantics.
  int examined = 0;
  auto it = pending.begin();
  ++it;  // the head holds the reservation, not a backfill candidacy
  while (it != pending.end()) {
    if (options_.backfill_depth > 0 &&
        ++examined > options_.backfill_depth) {
      break;
    }
    if (metrics != nullptr) metrics->add("dispatch.backfill_scans");
    std::optional<Placement> placement;
    if (placeable_precheck(it->job)) {
      placement = try_place(it->job, placeable, placement_wan);
    }
    if (placement.has_value()) {
      const ExecutionProfile& replay = replay_for(it->job, *placement);
      const Job& candidate = it->job;
      const double remaining = attempt_seconds(
          replay, progress[candidate.id].credited_fraction);
      double estimate =
          candidate.walltime_s > 0.0 ? candidate.walltime_s : remaining;
      // A priced policy must bound the CANDIDATE's own WAN demand too:
      // its flow does not exist yet, so neither the shadow nor the
      // drain estimates above can see it — and without a walltime the
      // drains, not the replay, decide when its nodes come back. Each
      // link's demand is priced at the share it would get alongside
      // the flows currently touching that link (load + itself),
      // starting where the replay timeline first reaches the link;
      // egress is additionally capped by the shared trunk, whose
      // aggregate term covers a backbone thinner than the uplinks.
      if (priced && candidate.walltime_s <= 0.0) {
        const double trunk_share =
            wan->backbone_Bps() / (1.0 + wan->backbone_load());
        double total_egress = 0.0;
        double earliest_egress_fraction = 1.0;
        for (std::size_t c = 0; c < placement->clusters.size(); ++c) {
          const double share =
              options_.wan_link_Bps /
              (1.0 + wan->load_score(placement->clusters[c]));
          if (replay.egress_bytes[c] > 0) {
            estimate = std::max(
                estimate,
                replay.egress_first_fraction[c] * remaining +
                    static_cast<double>(replay.egress_bytes[c]) /
                        std::min(share, trunk_share));
            total_egress += static_cast<double>(replay.egress_bytes[c]);
            earliest_egress_fraction =
                std::min(earliest_egress_fraction,
                         replay.egress_first_fraction[c]);
          }
          if (replay.ingress_bytes[c] > 0) {
            estimate = std::max(
                estimate,
                replay.ingress_first_fraction[c] * remaining +
                    static_cast<double>(replay.ingress_bytes[c]) /
                        share);
          }
        }
        if (total_egress > 0.0) {
          estimate = std::max(estimate,
                              earliest_egress_fraction * remaining +
                                  total_egress / trunk_share);
        }
      }
      if (clock + estimate <= shadow) {
        Job admitted;
        it = pending.take(it, admitted);
        start_job(std::move(admitted), *placement, /*backfilled=*/true);
        ++report.backfilled_jobs;
        continue;  // `it` already points at the next candidate
      }
    }
    ++it;
  }
}

// Blame classification pass: AFTER a dispatch pass settles, answer
// "why is each still-pending job not running RIGHT NOW" with one
// category, mirroring the decision the scheduler just made. Probed
// placements are never granted and replays come from the same cache
// dispatch fills, so a blame-on run makes identical scheduling
// decisions to a blame-off run.
void GridJobService::Engine::classify_waits() {
  if (pending.empty()) return;
  bool any_down = false;
  for (int c = 0; c < nclusters; ++c) {
    if (down_depth[static_cast<std::size_t>(c)] > 0) any_down = true;
  }
  const bool backfills = policy_->backfills();
  const bool priced = wan != nullptr && policy_->wan_priced_shadow();
  const Job* head = nullptr;
  int idx = 0;
  for (auto it = pending.begin(); it != pending.end(); ++it, ++idx) {
    const Job& job = it->job;
    if (idx == 0) head = &job;
    BlameCategory category = BlameCategory::kResourceBusy;
    if (idx > 0 && backfills && options_.backfill_depth > 0 &&
        idx > options_.backfill_depth) {
      // The bounded scan examines positions 1..depth only; beyond it
      // the scheduler never even looked.
      category = BlameCategory::kBackfillDepthTruncated;
    } else {
      std::optional<Placement> placement;
      if (placeable_precheck(job)) {
        placement = try_place(job, placeable, placement_wan);
      }
      if (!placement.has_value()) {
        // Would the job fit if every cluster were up? free_nodes still
        // counts down clusters' (outage-released) nodes, so it IS the
        // fully-up view that placeable masks out.
        category = any_down && try_place(job, free_nodes).has_value()
                       ? BlameCategory::kOutageBlocked
                       : BlameCategory::kResourceBusy;
      } else if (idx == 0) {
        // Unreachable — dispatch starts every placeable head — but a
        // defensive fallback beats asserting inside an observer.
        category = BlameCategory::kResourceBusy;
      } else if (!backfills || last_shadow == kInf) {
        // No reservation bound exists (strict policy, or the head
        // waits on an outage recovery): queue order alone holds the
        // job back — split by WHY the head outranks it.
        category = policy_->displaces(*head, job)
                       ? BlameCategory::kPriorityDisplaced
                       : BlameCategory::kHeldBehindReservation;
      } else {
        // The scan examined this placeable candidate and rejected it
        // on the admission test `clock + estimate <= shadow`;
        // re-derive which bound inside the estimate bit.
        const ExecutionProfile& replay = replay_for(job, *placement);
        const double remaining =
            attempt_seconds(replay, progress[job.id].credited_fraction);
        if (priced && job.walltime_s <= 0.0 &&
            clock + remaining <= last_shadow) {
          // The raw replay remainder fits the promise; only the
          // WAN-drain pricing pushed the estimate past it.
          category = BlameCategory::kWanContendedPlacement;
        } else if (job.walltime_s > 0.0 &&
                   clock + remaining <= last_shadow) {
          // The work fits the promise but the user's walltime ask
          // (what EASY must plan with) does not.
          category = BlameCategory::kWalltimeEstimateBlocked;
        } else {
          category = policy_->displaces(*head, job)
                         ? BlameCategory::kPriorityDisplaced
                         : BlameCategory::kHeldBehindReservation;
        }
      }
    }
    const int cat = static_cast<int>(category);
    const auto [state, inserted] =
        blame_open.emplace(job.id, BlameOpen{cat, clock});
    if (!inserted && state->second.category != cat) {
      blame_flush(job.id, clock);
      state->second.category = cat;
    }
  }
}

// Outage start: every job holding nodes on the failed cluster dies.
// Lost node-seconds are charged as waste (minus any banked panels) and
// the job is requeued until its retries run out.
void GridJobService::Engine::apply_outage(const OutageEvent& ev) {
  if (tracer != nullptr) {
    ServiceTraceEvent te;
    te.t_s = ev.time_s;
    te.kind = ev.down ? TraceKind::kOutageDown : TraceKind::kOutageUp;
    te.cluster = ev.cluster;
    tracer->record(std::move(te));
  }
  if (!ev.down) {
    QRGRID_CHECK(ev.cluster < nclusters &&
                 down_depth[static_cast<std::size_t>(ev.cluster)] > 0);
    --down_depth[static_cast<std::size_t>(ev.cluster)];
    if (down_depth[static_cast<std::size_t>(ev.cluster)] == 0) {
      set_placeable(ev.cluster,
                    free_nodes[static_cast<std::size_t>(ev.cluster)]);
    }
    return;
  }
  QRGRID_CHECK_MSG(ev.cluster < nclusters,
                   "outage on unknown cluster " << ev.cluster);
  ++down_depth[static_cast<std::size_t>(ev.cluster)];
  if (down_depth[static_cast<std::size_t>(ev.cluster)] == 1) {
    set_placeable(ev.cluster, 0);
  }
  // Extract every hit job first (swap-and-pop keeps the scan linear),
  // then process victims in start order — `running` itself is no longer
  // start-ordered, so determinism comes from sorting by seq.
  std::vector<Running> victims;
  for (std::size_t i = 0; i < running.size();) {
    Running& r = running[i];
    const bool hit =
        std::find(r.placement.clusters.begin(), r.placement.clusters.end(),
                  ev.cluster) != r.placement.clusters.end();
    if (!hit) {
      ++i;
      continue;
    }
    victims.push_back(std::move(r));
    if (i != running.size() - 1) running[i] = std::move(running.back());
    running.pop_back();
  }
  std::sort(victims.begin(), victims.end(),
            [](const Running& a, const Running& b) { return a.seq < b.seq; });
  TieOracle* const oracle = svc.oracle_;
  while (!victims.empty()) {
    // Kill order among one failure's victims: canonically start order
    // (seq — index 0 of the sorted vector), or whichever victim the
    // tie oracle picks. The order is observable: restart credit,
    // waste, and requeue positions all accrue victim by victim.
    std::size_t pick = 0;
    if (oracle != nullptr && victims.size() > 1) {
      const int chosen =
          oracle->choose(TieOracle::Kind::kOutageVictim, ev.time_s,
                         static_cast<int>(victims.size()));
      QRGRID_CHECK_MSG(
          chosen >= 0 && chosen < static_cast<int>(victims.size()),
          "tie oracle returned " << chosen << " of "
                                 << victims.size() << " victims");
      pick = static_cast<std::size_t>(chosen);
    }
    Running victim = std::move(victims[static_cast<std::size_t>(pick)]);
    victims.erase(victims.begin() + static_cast<std::ptrdiff_t>(pick));
    release_nodes(victim.placement);
    const double elapsed = ev.time_s - victim.start_s;
    Progress& p = progress[victim.job.id];
    // Fraction of the FULL factorization this attempt covered before
    // dying. Checkpoint overhead smears uniformly over the attempt,
    // and a WAN-stretched attempt can outlive its isolated span while
    // waiting on drains with all panels done — hence the cap at the
    // attempt's own share. covered_span_fraction guards the
    // kill-at-start edge: a span collapsed to zero by floating-point
    // absorption must not turn the credit arithmetic into NaN.
    const double attempt_span = victim.finish_s - victim.start_s;
    const double covered =
        covered_span_fraction(elapsed, attempt_span) *
        (1.0 - p.credited_fraction);
    double banked = 0.0;
    if (options_.restart_credit && options_.checkpoint_panels > 0) {
      // Bank whole panels: round the reached point down to a panel
      // boundary. The last panel is never banked — completing it IS
      // completing the job.
      const double panels =
          static_cast<double>(options_.checkpoint_panels);
      const double through = p.credited_fraction + covered;
      const double reached = std::min(std::floor(through * panels) / panels,
                                      (panels - 1.0) / panels);
      const double gained =
          std::clamp(reached - p.credited_fraction, 0.0, covered);
      banked = gained * victim.replay->seconds;
      p.credited_fraction += gained;
    }
    const double nodes =
        static_cast<double>(victim.placement.total_nodes);
    p.wasted_node_s += nodes * (elapsed - banked);
    report.wasted_node_seconds += nodes * (elapsed - banked);
    useful_node_seconds += nodes * banked;
    if (wan_on) {
      wan->retire(victim.flow, report.wan_egress_bytes,
                 report.wan_ingress_bytes);
    } else {
      // The attempt covered this share of the full replay timeline.
      charge_wan(victim, covered);
    }
    // The outage hits the in-flight attempt for REAL on the msg
    // backend: the factorization aborts mid-run at the reached point of
    // the timeline, requeued attempts included.
    if (tracer != nullptr) {
      ServiceTraceEvent te;
      te.t_s = ev.time_s;
      te.kind = TraceKind::kOutageKill;
      te.job = victim.job.id;
      te.cluster = ev.cluster;
      te.flow = victim.flow;
      te.value = elapsed;  // node-holding seconds the kill threw away
      te.value2 = banked;  // of which restart credit banked this much
      tracer->record(std::move(te));
    }
    const ExecutionResult exec = execute_attempt(
        victim, /*killed=*/true, victim.start_fraction + covered);
    ++report.killed_jobs;
    ++report.outage_kills;
    if (p.attempts <= options_.max_retries) {
      ++report.requeued_jobs;
      Job job = std::move(victim.job);
      if (blame_on) {
        // The killed attempt's runtime is wait the job must sit out
        // again — blamed as rerun time, which keeps the categories
        // summing to (final start - arrival) across retries.
        blame_totals[job.id][static_cast<std::size_t>(
            BlameCategory::kRequeuedRerun)] += elapsed;
        if (tracer != nullptr) {
          ServiceTraceEvent te;
          te.t_s = ev.time_s;
          te.kind = TraceKind::kWaitBlame;
          te.job = job.id;
          te.value = elapsed;
          te.value2 =
              static_cast<double>(BlameCategory::kRequeuedRerun);
          tracer->record(std::move(te));
        }
      }
      if (tracer != nullptr) {
        ServiceTraceEvent te;
        te.t_s = ev.time_s;
        te.kind = TraceKind::kRequeue;
        te.job = job.id;
        te.value = static_cast<double>(p.attempts);
        tracer->record(std::move(te));
      }
      // SPJF sort key: only the uncredited remainder still costs time.
      const double predicted =
          predicted_seconds(job) * (1.0 - p.credited_fraction);
      pending.push(std::move(job), predicted);
    } else {
      ++report.failed_jobs;
      record_outcome(victim, ev.time_s, JobFate::kOutageFailed, exec);
    }
  }
}

// One event-loop iteration: advance virtual time to the next event, then
// resolve everything due at that instant in precedence order —
// completions (and walltime kills) first, then outage boundaries
// (recoveries before failures), then arrivals — and run a dispatch pass.
void GridJobService::Engine::step() {
  double t = kInf;
  if (next_arrival < jobs.size()) t = jobs[next_arrival].arrival_s;
  for (const Running& r : running) t = std::min(t, event_of(r));
  t = std::min(t, trace.peek_s());
  // WAN horizon events (a pool activating or running dry) change the
  // fair shares — and may BE a job's completion when the last drain
  // lands past its replay end. Rates are constant up to this bound, so
  // advancing the model to t is exact.
  if (wan_on) t = std::min(t, wan->next_event_s(wan_clock));
  QRGRID_CHECK_MSG(t < kInf, "service deadlock: pending jobs but no "
                             "running work, WAN drains, outage "
                             "recoveries, or future arrivals");
  if (wan_on) {
    PhaseScope scope(profiler, ProfilePhase::kWanAdvance);
    wan->advance(wan_clock, t);
    wan_clock = std::max(wan_clock, t);
  }
  clock = std::max(clock, t);
  // Push the tracer's clock forward so emitters without a timestamp of
  // their own (WAN retirement, backend profile computes) stamp events
  // at the current virtual instant.
  if (tracer != nullptr) tracer->advance_to(clock);

  // Event precedence at one instant: completions (and walltime kills)
  // first, then outage boundaries, then arrivals — a job that finishes
  // exactly when its cluster fails has finished.
  {
    PhaseScope phase(profiler, ProfilePhase::kCompletionExtract);
    resolve_completions();
  }

  drain_outages();

  admit_arrivals();

  {
    PhaseScope phase(profiler, ProfilePhase::kDispatchScan);
    dispatch();
  }
  if (blame_on) classify_waits();

  if (metrics != nullptr) {
    // Step curves over virtual time, sampled once per event-loop
    // iteration (the registry drops unchanged consecutive values).
    metrics->sample("queue_depth", clock,
                    static_cast<double>(pending.size()));
    metrics->sample("running_jobs", clock,
                    static_cast<double>(running.size()));
    if (wan_on) {
      for (int c = 0; c < nclusters; ++c) {
        metrics->sample("wan.uplink_load.c" + std::to_string(c), clock,
                        static_cast<double>(wan->load_score(c)));
      }
      metrics->sample("wan.backbone_load", clock,
                      static_cast<double>(wan->backbone_load()));
      metrics->sample("wan.live_flows", clock,
                      static_cast<double>(wan->live_flows()));
    }
  }
}

// Resolves every completion-class event due at the current clock, one at
// a time in (event time, seq) order — or, under an installed oracle, in
// whatever order it picks among exact event-time ties.
void GridJobService::Engine::resolve_completions() {
  TieOracle* const oracle = svc.oracle_;
  if (oracle == nullptr) {
    // Canonical path, verbatim from the monolith: repeatedly select the
    // (event time, seq) minimum among due events.
    for (bool found = true; found;) {
      found = false;
      std::size_t best = 0;
      for (std::size_t i = 0; i < running.size(); ++i) {
        if (event_of(running[i]) > clock) continue;
        if (!found || event_of(running[i]) < event_of(running[best]) ||
            (event_of(running[i]) == event_of(running[best]) &&
             running[i].seq < running[best].seq)) {
          best = i;
          found = true;
        }
      }
      if (!found) break;
      complete_one(best);
    }
    return;
  }
  // Oracle path: resolve the earliest due event time; among attempts
  // TIED on it (seq-sorted, so index 0 is the canonical pick) the oracle
  // chooses which resolves first. Candidates are re-collected per pick:
  // each resolution can retire a WAN flow and move later finish times.
  for (;;) {
    double due = kInf;
    for (const Running& r : running) {
      const double e = event_of(r);
      if (e <= clock && e < due) due = e;
    }
    if (due == kInf) break;
    std::vector<std::size_t> tied;
    for (std::size_t i = 0; i < running.size(); ++i) {
      if (event_of(running[i]) == due) tied.push_back(i);
    }
    std::sort(tied.begin(), tied.end(), [&](std::size_t a, std::size_t b) {
      return running[a].seq < running[b].seq;
    });
    std::size_t pick = 0;
    if (tied.size() > 1) {
      const int chosen =
          oracle->choose(TieOracle::Kind::kCompletion, due,
                         static_cast<int>(tied.size()));
      QRGRID_CHECK_MSG(
          chosen >= 0 && chosen < static_cast<int>(tied.size()),
          "tie oracle returned " << chosen << " of " << tied.size()
                                 << " completions");
      pick = static_cast<std::size_t>(chosen);
    }
    complete_one(tied[pick]);
  }
}

void GridJobService::Engine::complete_one(std::size_t index) {
  // The caller's scan selects by (event time, seq), which no vector
  // order can change — so the erase is a swap-and-pop, O(1) instead of
  // shifting the running tail per completion.
  Running done = std::move(running[index]);
  if (index != running.size() - 1) {
    running[index] = std::move(running.back());
  }
  running.pop_back();
  release_nodes(done.placement);
  const double nodes = static_cast<double>(done.placement.total_nodes);
  if (completes(done)) {
    const double finish = wan_finish(done);
    const double held = finish - done.start_s;
    useful_node_seconds += nodes * held;
    useful_flops_total += model::useful_flops(done.job.m, done.job.n);
    if (wan_on) {
      wan->retire(done.flow, report.wan_egress_bytes,
                  report.wan_ingress_bytes);
    } else {
      charge_wan(done, 1.0 - done.start_fraction);
    }
    const ExecutionResult exec = execute_attempt(done, /*killed=*/false, 1.0);
    ++report.completed_jobs;
    if (tracer != nullptr) {
      ServiceTraceEvent ev;
      ev.t_s = finish;
      ev.kind = TraceKind::kCompletion;
      ev.job = done.job.id;
      ev.flow = done.flow;
      ev.value = held;                     // service seconds of the attempt
      ev.value2 = finish - done.finish_s;  // WAN drain stretch past replay
      tracer->record(std::move(ev));
    }
    record_outcome(done, finish, JobFate::kCompleted, exec);
  } else {
    // Ran past its user walltime: killed for good, everything wasted.
    const double held = done.kill_s - done.start_s;
    Progress& p = progress[done.job.id];
    p.wasted_node_s += nodes * held;
    report.wasted_node_seconds += nodes * held;
    // Capped coverage as in the outage path: the checkpoint tail
    // stretches the attempt beyond its replay share, and the share is
    // all the work (and WAN bytes) it can ever have done.
    // covered_span_fraction guards the zero-length-span edge exactly as
    // the outage kill site does.
    const double covered =
        covered_span_fraction(held, done.finish_s - done.start_s) *
        (1.0 - done.start_fraction);
    if (wan_on) {
      wan->retire(done.flow, report.wan_egress_bytes,
                  report.wan_ingress_bytes);
    } else {
      charge_wan(done, covered);
    }
    const ExecutionResult exec = execute_attempt(
        done, /*killed=*/true, done.start_fraction + covered);
    ++report.killed_jobs;
    ++report.walltime_kills;
    ++report.failed_jobs;
    if (tracer != nullptr) {
      ServiceTraceEvent ev;
      ev.t_s = done.kill_s;
      ev.kind = TraceKind::kWalltimeKill;
      ev.job = done.job.id;
      ev.flow = done.flow;
      ev.value = held;  // node-holding seconds the kill threw away
      tracer->record(std::move(ev));
    }
    record_outcome(done, done.kill_s, JobFate::kWalltimeKilled, exec);
  }
}

// Applies every outage boundary due at the current clock. Canonically
// the trace's pop order (time, recoveries before failures, cluster id);
// an installed oracle permutes WITHIN one (time, direction) group only,
// so the up-before-down precedence is never reordered.
void GridJobService::Engine::drain_outages() {
  TieOracle* const oracle = svc.oracle_;
  if (oracle == nullptr) {
    while (trace.peek_s() <= clock) apply_outage(trace.pop());
    return;
  }
  std::vector<OutageEvent> batch;
  while (trace.peek_s() <= clock) batch.push_back(trace.pop());
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i;
    while (j < batch.size() && batch[j].time_s == batch[i].time_s &&
           batch[j].down == batch[i].down) {
      ++j;
    }
    std::vector<OutageEvent> group(
        batch.begin() + static_cast<std::ptrdiff_t>(i),
        batch.begin() + static_cast<std::ptrdiff_t>(j));
    while (!group.empty()) {
      const TieOracle::Kind kind = group.front().down
                                       ? TieOracle::Kind::kOutageDown
                                       : TieOracle::Kind::kOutageUp;
      std::size_t pick = 0;
      if (group.size() > 1) {
        const int chosen = oracle->choose(kind, group.front().time_s,
                                          static_cast<int>(group.size()));
        QRGRID_CHECK_MSG(
            chosen >= 0 && chosen < static_cast<int>(group.size()),
            "tie oracle returned " << chosen << " of " << group.size()
                                   << " outage boundaries");
        pick = static_cast<std::size_t>(chosen);
      }
      apply_outage(group[pick]);
      group.erase(group.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    i = j;
  }
}

void GridJobService::Engine::admit_one_arrival(Job job) {
  if (tracer != nullptr) {
    ServiceTraceEvent ev;
    ev.t_s = job.arrival_s;
    ev.kind = TraceKind::kArrival;
    ev.job = job.id;
    ev.value = static_cast<double>(job.priority);
    ev.value2 = static_cast<double>(job.user);
    tracer->record(std::move(ev));
  }
  const double predicted = predicted_seconds(job);
  pending.push(std::move(job), predicted);
}

// Admits every arrival due at the current clock. Canonically in
// (arrival_s, id) order — the pre-sorted jobs vector; an installed
// oracle permutes jobs sharing one arrival instant (the order is
// observable through kArrival events and queue tie-breaks).
void GridJobService::Engine::admit_arrivals() {
  TieOracle* const oracle = svc.oracle_;
  if (oracle == nullptr) {
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival_s <= clock) {
      admit_one_arrival(jobs[next_arrival++]);
    }
    return;
  }
  while (next_arrival < jobs.size() &&
         jobs[next_arrival].arrival_s <= clock) {
    std::size_t j = next_arrival;
    while (j < jobs.size() &&
           jobs[j].arrival_s == jobs[next_arrival].arrival_s) {
      ++j;
    }
    std::vector<Job> group(
        jobs.begin() + static_cast<std::ptrdiff_t>(next_arrival),
        jobs.begin() + static_cast<std::ptrdiff_t>(j));
    next_arrival = j;
    while (!group.empty()) {
      std::size_t pick = 0;
      if (group.size() > 1) {
        const int chosen =
            oracle->choose(TieOracle::Kind::kArrival,
                           group.front().arrival_s,
                           static_cast<int>(group.size()));
        QRGRID_CHECK_MSG(
            chosen >= 0 && chosen < static_cast<int>(group.size()),
            "tie oracle returned " << chosen << " of " << group.size()
                                   << " arrivals");
        pick = static_cast<std::size_t>(chosen);
      }
      admit_one_arrival(std::move(group[pick]));
      group.erase(group.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

// Final accounting over the finished run — the monolith's post-loop tail.
ServiceReport GridJobService::Engine::finish() {
  QRGRID_CHECK_MSG(report.completed_jobs + report.failed_jobs ==
                       static_cast<long long>(jobs.size()),
                   "job conservation violated: " << report.completed_jobs
                       << " completed + " << report.failed_jobs
                       << " failed != " << jobs.size() << " submitted");
  report.useful_node_seconds = useful_node_seconds;
  if (wan_on && report.makespan_s > 0.0) {
    for (int c = 0; c < nclusters; ++c) {
      report.wan_uplink_busy[static_cast<std::size_t>(c)] =
          wan->uplink_busy_s(c) / report.makespan_s;
      report.wan_downlink_busy[static_cast<std::size_t>(c)] =
          wan->downlink_busy_s(c) / report.makespan_s;
    }
    report.wan_backbone_busy = wan->backbone_busy_s() / report.makespan_s;
  }
  double slowdown_sum = 0.0;
  long long slowdown_count = 0;
  for (const JobOutcome& o : report.outcomes) {
    if (!o.completed()) continue;
    slowdown_sum += o.wan_slowdown;
    report.max_wan_slowdown = std::max(report.max_wan_slowdown,
                                       o.wan_slowdown);
    ++slowdown_count;
  }
  if (slowdown_count > 0) {
    report.mean_wan_slowdown =
        slowdown_sum / static_cast<double>(slowdown_count);
  }
  if (!report.outcomes.empty() && report.makespan_s > 0.0) {
    double wait_sum = 0.0, turnaround_sum = 0.0;
    for (const JobOutcome& o : report.outcomes) {
      wait_sum += o.wait_s();
      turnaround_sum += o.turnaround_s();
      report.max_wait_s = std::max(report.max_wait_s, o.wait_s());
    }
    const auto count = static_cast<double>(report.outcomes.size());
    report.mean_wait_s = wait_sum / count;
    report.mean_turnaround_s = turnaround_sum / count;
    report.throughput_jobs_per_hour =
        static_cast<double>(report.completed_jobs) / report.makespan_s *
        3600.0;
    report.aggregate_gflops = useful_flops_total / report.makespan_s / 1e9;
    report.utilization =
        useful_node_seconds /
        (static_cast<double>(grid_nodes) * report.makespan_s);
  }
  std::sort(report.outcomes.begin(), report.outcomes.end(),
            [](const JobOutcome& a, const JobOutcome& b) {
              return a.job.id < b.job.id;
            });
  if (metrics != nullptr) {
    metrics->set("service.makespan_s", report.makespan_s);
    metrics->set("service.utilization", report.utilization);
    metrics->set("service.mean_wait_s", report.mean_wait_s);
    const double scans = metrics->counter("dispatch.backfill_scans");
    if (scans > 0.0) {
      metrics->set("dispatch.backfill_hit_rate",
                   static_cast<double>(report.backfilled_jobs) / scans);
    }
    if (wan_on) {
      for (int c = 0; c < nclusters; ++c) {
        const std::string suffix = ".c" + std::to_string(c);
        metrics->set("wan.uplink_busy_frac" + suffix,
                     report.wan_uplink_busy[static_cast<std::size_t>(c)]);
        metrics->set("wan.downlink_busy_frac" + suffix,
                     report.wan_downlink_busy[static_cast<std::size_t>(c)]);
      }
      metrics->set("wan.backbone_busy_frac", report.wan_backbone_busy);
      metrics->set("wan.live_flows.peak",
                   static_cast<double>(wan->peak_live_flows()));
      // Incremental max-min engine counters (zero under equal-split):
      // full_refills << events is the contended-scaling claim.
      metrics->set("wan.rebalance.events",
                   static_cast<double>(wan->rebalance_events()));
      metrics->set("wan.rebalance.recomputes",
                   static_cast<double>(wan->rebalance_recomputes()));
      metrics->set("wan.rebalance.links_touched",
                   static_cast<double>(wan->rebalance_links_touched()));
      metrics->set("wan.rebalance.full_refills",
                   static_cast<double>(wan->rebalance_full_refills()));
    }
    if (blame_on) {
      // Wait-blame rollups over the sorted outcomes: grid-wide totals
      // (all categories, zeros included — a stable key set), plus the
      // nonzero per-user and per-priority-class splits.
      std::array<double, kBlameCategoryCount> total{};
      std::map<int, std::array<double, kBlameCategoryCount>> by_user;
      std::map<int, std::array<double, kBlameCategoryCount>> by_prio;
      for (const JobOutcome& o : report.outcomes) {
        for (int k = 0; k < kBlameCategoryCount; ++k) {
          const double s = o.blame_s[static_cast<std::size_t>(k)];
          total[static_cast<std::size_t>(k)] += s;
          by_user[o.job.user][static_cast<std::size_t>(k)] += s;
          by_prio[o.job.priority][static_cast<std::size_t>(k)] += s;
        }
      }
      for (int k = 0; k < kBlameCategoryCount; ++k) {
        metrics->set(
            "blame.total." +
                blame_category_name(static_cast<BlameCategory>(k)) + "_s",
            total[static_cast<std::size_t>(k)]);
      }
      for (const auto& [user, per_cat] : by_user) {
        for (int k = 0; k < kBlameCategoryCount; ++k) {
          if (per_cat[static_cast<std::size_t>(k)] <= 0.0) continue;
          metrics->set(
              "blame.user." + std::to_string(user) + "." +
                  blame_category_name(static_cast<BlameCategory>(k)) + "_s",
              per_cat[static_cast<std::size_t>(k)]);
        }
      }
      for (const auto& [prio, per_cat] : by_prio) {
        for (int k = 0; k < kBlameCategoryCount; ++k) {
          if (per_cat[static_cast<std::size_t>(k)] <= 0.0) continue;
          metrics->set(
              "blame.prio." + std::to_string(prio) + "." +
                  blame_category_name(static_cast<BlameCategory>(k)) + "_s",
              per_cat[static_cast<std::size_t>(k)]);
        }
      }
    }
    if (profiler != nullptr) {
      // Wall times are nondeterministic by nature; they live here and in
      // BENCH totals only, never in the virtual-time event stream.
      for (int i = 0; i < kProfilePhaseCount; ++i) {
        const auto phase = static_cast<ProfilePhase>(i);
        const std::string base =
            std::string("profiler.") + profile_phase_name(phase);
        metrics->set(base + ".wall_s", profiler->total_s(phase));
        metrics->set(base + ".calls",
                     static_cast<double>(profiler->calls(phase)));
      }
    }
  }
  return std::move(report);
}

// ---------------------------------------------------------------------------
// Snapshot encoding of the full in-flight state. Field sequence is the
// format: save() and load() must mirror each other exactly, and any
// change bumps kSnapshotVersion. Unordered containers are written in
// sorted-id order so equal states always produce equal bytes.
void GridJobService::Engine::save(SnapshotWriter& w) {
  // Freeze the queue against CURRENT policy keys first: entry iteration
  // order is part of the snapshot, and a dynamic policy may have dirtied
  // keys since the last ordered access.
  pending.resort();
  w.u64(jobs.size());
  for (const Job& job : jobs) save_job(w, job);
  w.u64(next_arrival);
  w.f64(clock);
  w.f64(wan_clock);
  w.i32(seq);
  w.i32(reserved_job);
  w.f64(last_shadow);
  w.f64(useful_node_seconds);
  w.f64(useful_flops_total);
  // Report fields the event loop mutates; everything else is derived in
  // finish() or fixed by the constructor.
  w.u64(report.outcomes.size());
  for (const JobOutcome& o : report.outcomes) save_outcome(w, o);
  w.f64(report.makespan_s);
  w.i64(report.backfilled_jobs);
  w.i64(report.completed_jobs);
  w.i64(report.failed_jobs);
  w.i64(report.killed_jobs);
  w.i64(report.walltime_kills);
  w.i64(report.outage_kills);
  w.i64(report.requeued_jobs);
  w.f64(report.wasted_node_seconds);
  w.i64_vec(report.wan_egress_bytes);
  w.i64_vec(report.wan_ingress_bytes);
  w.i64(report.executed_attempts);
  w.i64(report.aborted_attempts);
  w.f64(report.max_residual);
  w.f64(report.max_orthogonality);
  w.f64(report.injected_abort_vtime_s);
  w.f64(report.measured_abort_vtime_s);
  w.i32_vec(free_nodes);
  w.i32_vec(down_depth);
  w.i32_vec(placeable);
  trace.save_state(w);
  // Policy state precedes the queue entries: load_state() must restore
  // the comparator's inputs BEFORE queue pushes compare against them.
  policy_->save_state(w);
  w.u64(pending.size());
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    save_job(w, it->job);
    w.f64(it->predicted_s);
  }
  w.u64(running.size());
  for (const Running& run : running) {
    save_job(w, run.job);
    w.f64(run.finish_s);
    w.f64(run.kill_s);
    w.f64(run.est_finish_s);
    w.i32(run.seq);
    save_placement(w, run.placement);
    w.f64(run.start_s);
    w.f64(run.start_fraction);
    w.boolean(run.backfilled);
    w.i32(run.flow);  // replay ptr re-resolved from the backend on load
  }
  {
    std::vector<int> ids;
    ids.reserve(progress.size());
    for (const auto& [id, p] : progress) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (int id : ids) {
      const Progress& p = progress.at(id);
      w.i32(id);
      w.i32(p.attempts);
      w.f64(p.credited_fraction);
      w.f64(p.wasted_node_s);
      w.f64(p.reserved_start_s);
    }
  }
  {
    std::vector<int> ids;
    ids.reserve(blame_open.size());
    for (const auto& [id, b] : blame_open) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (int id : ids) {
      const BlameOpen& b = blame_open.at(id);
      w.i32(id);
      w.i32(b.category);
      w.f64(b.since_s);
    }
  }
  {
    std::vector<int> ids;
    ids.reserve(blame_totals.size());
    for (const auto& [id, t] : blame_totals) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (int id : ids) {
      w.i32(id);
      for (double s : blame_totals.at(id)) w.f64(s);
    }
  }
  w.boolean(wan_on);
  if (wan_on) wan->save_state(w);
  // The backend's memo-cache warm set, as (job, placement) exemplars in
  // computation order: load() replays them through profile() so every
  // future hit/miss counter and compute event matches the uninterrupted
  // run's.
  const std::vector<ProfileExemplar>& exemplars =
      backend_->profile_exemplars();
  w.u64(exemplars.size());
  for (const ProfileExemplar& e : exemplars) {
    save_job(w, e.job);
    save_placement(w, e.placement);
  }
  w.boolean(tracer != nullptr);
  if (tracer != nullptr) tracer->save_state(w);
  w.boolean(metrics != nullptr);
  if (metrics != nullptr) metrics->save_state(w);
}

void GridJobService::Engine::load(SnapshotReader& r) {
  // The caller (GridJobService::restore) has already consumed the header
  // and the job list — this Engine was constructed from it.
  next_arrival = r.u64();
  clock = r.f64();
  wan_clock = r.f64();
  seq = r.i32();
  reserved_job = r.i32();
  last_shadow = r.f64();
  useful_node_seconds = r.f64();
  useful_flops_total = r.f64();
  const std::uint64_t noutcomes = r.u64();
  report.outcomes.clear();
  report.outcomes.reserve(noutcomes);
  for (std::uint64_t i = 0; i < noutcomes; ++i) {
    report.outcomes.push_back(load_outcome(r));
  }
  report.makespan_s = r.f64();
  report.backfilled_jobs = r.i64();
  report.completed_jobs = r.i64();
  report.failed_jobs = r.i64();
  report.killed_jobs = r.i64();
  report.walltime_kills = r.i64();
  report.outage_kills = r.i64();
  report.requeued_jobs = r.i64();
  report.wasted_node_seconds = r.f64();
  report.wan_egress_bytes = r.i64_vec();
  report.wan_ingress_bytes = r.i64_vec();
  report.executed_attempts = r.i64();
  report.aborted_attempts = r.i64();
  report.max_residual = r.f64();
  report.max_orthogonality = r.f64();
  report.injected_abort_vtime_s = r.f64();
  report.measured_abort_vtime_s = r.f64();
  free_nodes = r.i32_vec();
  down_depth = r.i32_vec();
  placeable = r.i32_vec();
  QRGRID_CHECK_MSG(static_cast<int>(free_nodes.size()) == nclusters &&
                       static_cast<int>(down_depth.size()) == nclusters &&
                       static_cast<int>(placeable.size()) == nclusters,
                   "snapshot cluster count mismatch");
  placeable_procs_index.clear();
  placeable_procs_total = 0;
  for (int c = 0; c < nclusters; ++c) {
    const long long procs =
        static_cast<long long>(placeable[static_cast<std::size_t>(c)]) *
        cluster_ppn[static_cast<std::size_t>(c)];
    placeable_procs_index.insert(procs);
    placeable_procs_total += procs;
  }
  trace.load_state(r);
  // Policy state BEFORE the queue rebuild: the pushes below compare
  // through the policy's comparator, which must already see the restored
  // keys (fair-share deficits).
  policy_->load_state(r);
  const std::uint64_t npending = r.u64();
  for (std::uint64_t i = 0; i < npending; ++i) {
    Job job = load_job(r);
    const double predicted = r.f64();
    pending.push(std::move(job), predicted);
  }
  const std::uint64_t nrunning = r.u64();
  running.clear();
  running.reserve(nrunning);
  for (std::uint64_t i = 0; i < nrunning; ++i) {
    Running run;
    run.job = load_job(r);
    run.finish_s = r.f64();
    run.kill_s = r.f64();
    run.est_finish_s = r.f64();
    run.seq = r.i32();
    run.placement = load_placement(r);
    run.start_s = r.f64();
    run.start_fraction = r.f64();
    run.backfilled = r.boolean();
    run.flow = r.i32();
    running.push_back(std::move(run));  // replay resolved below
  }
  progress.clear();
  const std::uint64_t nprogress = r.u64();
  for (std::uint64_t i = 0; i < nprogress; ++i) {
    const int id = r.i32();
    Progress p;
    p.attempts = r.i32();
    p.credited_fraction = r.f64();
    p.wasted_node_s = r.f64();
    p.reserved_start_s = r.f64();
    progress.emplace(id, p);
  }
  blame_open.clear();
  const std::uint64_t nopen = r.u64();
  for (std::uint64_t i = 0; i < nopen; ++i) {
    const int id = r.i32();
    BlameOpen b;
    b.category = r.i32();
    b.since_s = r.f64();
    blame_open.emplace(id, b);
  }
  blame_totals.clear();
  const std::uint64_t ntotals = r.u64();
  for (std::uint64_t i = 0; i < ntotals; ++i) {
    const int id = r.i32();
    std::array<double, kBlameCategoryCount> t{};
    for (double& s : t) s = r.f64();
    blame_totals.emplace(id, t);
  }
  const bool saved_wan = r.boolean();
  QRGRID_CHECK_MSG(saved_wan == wan_on,
                   "snapshot WAN-contention flag mismatches the service "
                   "configuration");
  if (wan_on) wan->load_state(r);
  // Re-warm the backend's memo cache with telemetry unbound: the
  // restored tracer/metrics already contain the original compute events
  // and counters, so the replays must stay silent — and every future
  // profile() call then hits or misses exactly as the uninterrupted run
  // would.
  const std::uint64_t nexemplars = r.u64();
  backend_->bind_telemetry(nullptr, nullptr);
  for (std::uint64_t i = 0; i < nexemplars; ++i) {
    const Job job = load_job(r);
    const Placement placement = load_placement(r);
    backend_->profile(job, placement);
  }
  for (Running& run : running) {
    run.replay = &svc.replay_for(run.job, run.placement);  // silent hit
  }
  const bool saved_tracer = r.boolean();
  QRGRID_CHECK_MSG(saved_tracer == (tracer != nullptr),
                   "snapshot tracer presence mismatches the service "
                   "configuration");
  if (tracer != nullptr) tracer->load_state(r);
  const bool saved_metrics = r.boolean();
  QRGRID_CHECK_MSG(saved_metrics == (metrics != nullptr),
                   "snapshot metrics presence mismatches the service "
                   "configuration");
  if (metrics != nullptr) metrics->load_state(r);
  backend_->bind_telemetry(options_.tracer, options_.metrics);
}

// ---------------------------------------------------------------------------
// Public surface: run() and the stepping/snapshot API over the Engine.

ServiceReport GridJobService::run(std::vector<Job> jobs) {
  start(std::move(jobs));
  while (active()) step();
  return finish();
}

void GridJobService::start(std::vector<Job> jobs) {
  QRGRID_CHECK_MSG(engine_ == nullptr,
                   "a run is already in flight; finish() it first");
  engine_ = std::make_unique<Engine>(*this, std::move(jobs),
                                     /*quiet=*/false);
}

bool GridJobService::active() const {
  QRGRID_CHECK_MSG(engine_ != nullptr, "no run in flight: start() first");
  return engine_->active();
}

void GridJobService::step() {
  QRGRID_CHECK_MSG(engine_ != nullptr, "no run in flight: start() first");
  QRGRID_CHECK_MSG(engine_->active(), "run already drained: finish() it");
  engine_->step();
}

ServiceReport GridJobService::finish() {
  QRGRID_CHECK_MSG(engine_ != nullptr, "no run in flight: start() first");
  QRGRID_CHECK_MSG(!engine_->active(),
                   "run still active: step() to completion first");
  ServiceReport report = engine_->finish();
  engine_.reset();
  return report;
}

double GridJobService::now_s() const {
  QRGRID_CHECK_MSG(engine_ != nullptr, "no run in flight: start() first");
  return engine_->clock;
}

std::string GridJobService::config_fingerprint() const {
  // Everything a snapshot's byte layout or replayed decisions depend on.
  // Deliberately excludes the profiler (wall clock only, no snapshot
  // bytes) and the oracle (a harness installs its own per branch).
  std::ostringstream out;
  out.precision(17);
  out << "policy=" << policy_->name() << ";backend=" << backend_->name()
      << ";grid=";
  for (int c = 0; c < topology_.num_clusters(); ++c) {
    if (c > 0) out << ',';
    out << topology_.cluster(c).nodes << 'x'
        << topology_.cluster(c).procs_per_node;
  }
  out << ";domains=" << options_.domains_per_cluster
      << ";max_groups=" << options_.max_groups
      << ";backfill_depth=" << options_.backfill_depth
      << ";max_retries=" << options_.max_retries
      << ";restart_credit=" << options_.restart_credit
      << ";checkpoint_panels=" << options_.checkpoint_panels
      << ";checkpoint_cost_s=" << options_.checkpoint_cost_s
      << ";outages=" << options_.outages.config_key()
      << ";wan_contention=" << options_.wan_contention
      << ";wan_aware=" << options_.wan_aware
      << ";wan_link_Bps=" << options_.wan_link_Bps
      << ";wan_backbone_Bps=" << options_.wan_backbone_Bps
      << ";wan_fairness=" << static_cast<int>(options_.wan_fairness)
      << ";wan_pairs=";
  for (double v : options_.wan_pair_Bps) out << v << ',';
  out << ";wait_blame=" << options_.wait_blame
      << ";backend_seed=" << options_.backend_seed
      << ";backend_max_elements=" << options_.backend_max_elements
      << ";caqr_width=" << options_.backend_caqr_panel_width
      << ";tracer=" << (options_.tracer != nullptr)
      << ";metrics=" << (options_.metrics != nullptr);
  return out.str();
}

std::string GridJobService::snapshot() {
  QRGRID_CHECK_MSG(engine_ != nullptr, "no run in flight: start() first");
  SnapshotWriter w;
  w.str(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.str(config_fingerprint());
  engine_->save(w);
  return w.bytes();
}

void GridJobService::restore(const std::string& bytes) {
  QRGRID_CHECK_MSG(engine_ == nullptr,
                   "a run is already in flight; finish() it first");
  SnapshotReader r(bytes);
  QRGRID_CHECK_MSG(r.str() == kSnapshotMagic,
                   "not a service snapshot (bad magic)");
  const std::uint32_t version = r.u32();
  QRGRID_CHECK_MSG(version == kSnapshotVersion,
                   "snapshot format version " << version
                       << " != supported " << kSnapshotVersion);
  const std::string saved = r.str();
  const std::string current = config_fingerprint();
  QRGRID_CHECK_MSG(saved == current,
                   "snapshot was taken under a different service "
                   "configuration\n  saved:   "
                       << saved << "\n  current: " << current);
  const std::uint64_t njobs = r.u64();
  std::vector<Job> jobs;
  jobs.reserve(njobs);
  for (std::uint64_t i = 0; i < njobs; ++i) jobs.push_back(load_job(r));
  engine_ = std::make_unique<Engine>(*this, std::move(jobs),
                                     /*quiet=*/true);
  engine_->load(r);
  QRGRID_CHECK_MSG(r.at_end(), "snapshot has trailing bytes");
}

}  // namespace qrgrid::sched

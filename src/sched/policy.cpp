#include "sched/policy.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sched/backend.hpp"
#include "sched/snapshot.hpp"
#include "sched/telemetry.hpp"
#include "sched/wan.hpp"

namespace qrgrid::sched {

namespace {

/// Shared tail of the FCFS-family orderings: earlier arrival first, then
/// smaller id — the final tie-break every policy ends in, which is what
/// pins byte-identical queue order on fully tied jobs.
bool arrival_then_id(const PendingEntry& a, const PendingEntry& b) {
  if (a.job.arrival_s != b.job.arrival_s) {
    return a.job.arrival_s < b.job.arrival_s;
  }
  return a.job.id < b.job.id;
}

bool priority_then_arrival(const PendingEntry& a, const PendingEntry& b) {
  if (a.job.priority != b.job.priority) {
    return a.job.priority > b.job.priority;
  }
  return arrival_then_id(a, b);
}

}  // namespace

std::vector<int> SchedulingPolicy::cluster_order(
    int num_clusters, const GridWanModel* wan) const {
  std::vector<int> order = identity_order(num_clusters);
  if (wan != nullptr) {
    if (metrics_ != nullptr) metrics_->add("policy.cluster_order_wan_sorts");
    // Idlest-WAN-link-first; stable sort keeps master-id order among
    // ties, so an idle WAN reproduces the naive order exactly.
    std::vector<int> score(order.size());
    for (int c = 0; c < num_clusters; ++c) {
      score[static_cast<std::size_t>(c)] = wan->load_score(c);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return score[static_cast<std::size_t>(a)] <
             score[static_cast<std::size_t>(b)];
    });
  }
  return order;
}

void SchedulingPolicy::on_attempt_start(const Job&, double) {
  if (metrics_ != nullptr) metrics_->add("policy.attempt_starts");
}

bool FcfsPolicy::before(const PendingEntry& a, const PendingEntry& b) const {
  return priority_then_arrival(a, b);
}

bool SpjfPolicy::before(const PendingEntry& a, const PendingEntry& b) const {
  if (a.predicted_s != b.predicted_s) return a.predicted_s < b.predicted_s;
  return a.job.id < b.job.id;
}

bool EasyBackfillPolicy::before(const PendingEntry& a,
                                const PendingEntry& b) const {
  return arrival_then_id(a, b);
}

bool PriorityEasyPolicy::before(const PendingEntry& a,
                                const PendingEntry& b) const {
  return priority_then_arrival(a, b);
}

bool FairSharePolicy::before(const PendingEntry& a,
                             const PendingEntry& b) const {
  const double da = normalized_service(a.job.user);
  const double db = normalized_service(b.job.user);
  if (da != db) return da < db;  // least-served-per-weight user first
  return arrival_then_id(a, b);
}

bool FairSharePolicy::displaces(const Job& ahead, const Job& behind) const {
  // Mirrors before(): the deficit key is the user's normalized service,
  // so the head genuinely outranks (rather than merely pre-dates) a
  // later job only when its user is strictly less served per weight.
  return normalized_service(ahead.user) < normalized_service(behind.user);
}

void FairSharePolicy::on_attempt_start(const Job& job, double node_seconds) {
  SchedulingPolicy::on_attempt_start(job, node_seconds);
  QRGRID_CHECK_MSG(job.weight > 0.0, "job " << job.id
                                            << " has non-positive weight "
                                            << job.weight);
  service_[job.user] += node_seconds / job.weight;
  if (dirty_set_.insert(job.user).second) dirty_users_.push_back(job.user);
  if (metrics_ != nullptr) {
    metrics_->set("policy.fair.normalized_service.user." +
                      std::to_string(job.user),
                  service_[job.user]);
  }
}

double FairSharePolicy::normalized_service(int user) const {
  const auto it = service_.find(user);
  return it == service_.end() ? 0.0 : it->second;
}

void FairSharePolicy::save_state(SnapshotWriter& w) const {
  std::vector<int> users;
  users.reserve(service_.size());
  for (const auto& [user, _] : service_) users.push_back(user);
  std::sort(users.begin(), users.end());
  w.u64(users.size());
  for (int user : users) {
    w.i32(user);
    w.f64(service_.at(user));
  }
}

void FairSharePolicy::load_state(SnapshotReader& r) {
  service_.clear();
  clear_dirty();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int user = r.i32();
    service_[user] = r.f64();
  }
}

std::unique_ptr<SchedulingPolicy> make_policy(Policy policy) {
  switch (policy) {
    case Policy::kFcfs: return std::make_unique<FcfsPolicy>();
    case Policy::kSpjf: return std::make_unique<SpjfPolicy>();
    case Policy::kEasyBackfill:
      return std::make_unique<EasyBackfillPolicy>();
    case Policy::kPriorityEasy:
      return std::make_unique<PriorityEasyPolicy>();
    case Policy::kFairShare: return std::make_unique<FairSharePolicy>();
  }
  throw Error("make_policy: unknown policy enum value");
}

}  // namespace qrgrid::sched

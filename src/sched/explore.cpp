#include "sched/explore.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "sched/snapshot.hpp"

namespace qrgrid::sched {

int PrescribedOracle::choose(Kind kind, double t_s, int k) {
  const std::size_t index = log_.size();
  int pick = 0;
  if (index < prescription_.size()) {
    pick = prescription_[index];
    QRGRID_CHECK_MSG(pick >= 0 && pick < k,
                     "prescription[" << index << "] = " << pick
                         << " out of range for a " << k << "-way tie");
  }
  log_.push_back(Decision{kind, t_s, k, pick});
  return pick;
}

namespace {

/// One branch of the enumeration tree waiting to be run: resume from
/// `snapshot` (empty = a fresh start), follow `prescription` relative to
/// the resume point, canonical after that. `abs_prefix` is the choice
/// sequence already baked into the snapshot, kept so violations can
/// report an absolute from-the-start reproduction recipe.
struct Branch {
  std::string snapshot;
  std::vector<int> abs_prefix;
  std::vector<int> prescription;
};

/// Report-level conservation: exactly one outcome per submitted job,
/// and the tallied fates agree with the report's counters. These hold
/// by construction under the canonical order; the explorer asserts them
/// under EVERY order.
void check_conservation(const ServiceReport& report,
                        const std::vector<Job>& jobs,
                        std::vector<std::string>& violations) {
  std::ostringstream out;
  if (report.outcomes.size() != jobs.size()) {
    out.str("");
    out << "conservation: " << report.outcomes.size() << " outcomes for "
        << jobs.size() << " submitted jobs";
    violations.push_back(out.str());
  }
  std::map<int, int> seen;
  long long completed = 0, walltime = 0, outage = 0;
  for (const JobOutcome& o : report.outcomes) {
    ++seen[o.job.id];
    switch (o.fate) {
      case JobFate::kCompleted: ++completed; break;
      case JobFate::kWalltimeKilled: ++walltime; break;
      case JobFate::kOutageFailed: ++outage; break;
    }
    if (o.wasted_node_s < 0.0 || o.service_s < 0.0) {
      out.str("");
      out << "conservation: job " << o.job.id << " has negative "
          << "accounting (wasted " << o.wasted_node_s << ", service "
          << o.service_s << ")";
      violations.push_back(out.str());
    }
  }
  for (const auto& [id, count] : seen) {
    if (count != 1) {
      out.str("");
      out << "conservation: job " << id << " has " << count << " outcomes";
      violations.push_back(out.str());
    }
  }
  if (completed != report.completed_jobs ||
      walltime + outage != report.failed_jobs) {
    out.str("");
    out << "conservation: outcome fates (" << completed << " completed, "
        << walltime << " walltime, " << outage
        << " outage) disagree with report counters ("
        << report.completed_jobs << " completed, " << report.failed_jobs
        << " failed)";
    violations.push_back(out.str());
  }
  if (report.wasted_node_seconds < 0.0 ||
      report.useful_node_seconds < 0.0) {
    out.str("");
    out << "conservation: negative node-second totals (useful "
        << report.useful_node_seconds << ", wasted "
        << report.wasted_node_seconds << ")";
    violations.push_back(out.str());
  }
}

}  // namespace

ExploreResult explore_interleavings(const ServiceFactory& factory,
                                    const std::vector<Job>& jobs,
                                    const ExploreLimits& limits) {
  ExploreResult result;
  std::vector<Branch> stack;
  stack.push_back(Branch{});  // the canonical leaf seeds the tree

  while (!stack.empty()) {
    if (result.leaves >= limits.max_leaves) {
      result.truncated = true;
      break;
    }
    // LIFO order: depth-first, so the pre-decision snapshots held on the
    // stack stay close to the active lineage.
    Branch branch = std::move(stack.back());
    stack.pop_back();

    ServiceTracer tracer;
    MetricsRegistry metrics;
    std::unique_ptr<GridJobService> service = factory(&tracer, &metrics);
    PrescribedOracle oracle(branch.prescription);
    service->set_tie_oracle(&oracle);

    const auto reproduction = [&]() {
      std::vector<int> abs = branch.abs_prefix;
      for (const PrescribedOracle::Decision& d : oracle.log()) {
        abs.push_back(d.chosen);
      }
      return abs;
    };

    try {
      if (branch.snapshot.empty()) {
        service->start(jobs);
      } else {
        service->restore(branch.snapshot);
      }
      while (service->active()) {
        const std::size_t before = oracle.log().size();
        // The rollback token: state just before this step's decisions.
        std::string snap = service->snapshot();
        service->step();
        const std::vector<PrescribedOracle::Decision>& log = oracle.log();
        // Branch only on decisions past the prescribed prefix — the
        // prescribed ones were enumerated by ancestors; deviating on
        // them again would visit interleavings twice.
        for (std::size_t i =
                 std::max(before, branch.prescription.size());
             i < log.size(); ++i) {
          if (log[i].k <= 1) continue;
          ++result.decision_points;
          result.max_fanout = std::max(result.max_fanout, log[i].k);
          for (int alt = 1; alt < log[i].k; ++alt) {
            Branch child;
            child.snapshot = snap;
            child.abs_prefix = branch.abs_prefix;
            for (std::size_t j = 0; j < before; ++j) {
              child.abs_prefix.push_back(log[j].chosen);
            }
            for (std::size_t j = before; j < i; ++j) {
              child.prescription.push_back(log[j].chosen);
            }
            child.prescription.push_back(alt);
            stack.push_back(std::move(child));
          }
        }
      }
      const ServiceReport report = service->finish();
      ++result.leaves;

      std::vector<std::string> found = validate_trace(tracer.events());
      check_conservation(report, jobs, found);
      if (!found.empty()) {
        const std::vector<int> repro = reproduction();
        for (std::string& what : found) {
          result.violations.push_back(
              ExploreViolation{std::move(what), repro});
        }
      }
      if (result.leaves == 1 && branch.snapshot.empty() &&
          branch.prescription.empty()) {
        // The canonical leaf: pin its artifacts for byte-comparison
        // against an oracle-free plain run.
        result.canonical_report = report;
        SnapshotWriter w;
        tracer.save_state(w);
        result.canonical_trace_bytes = w.bytes();
      }
    } catch (const Error& e) {
      // A mid-leaf contract violation (an engine QRGRID_CHECK firing
      // under a non-canonical order) is a finding, not a crash: record
      // it with its reproduction recipe and keep enumerating.
      ++result.leaves;
      result.violations.push_back(ExploreViolation{
          std::string("exception: ") + e.what(), reproduction()});
    }
  }
  return result;
}

std::vector<double> harvest_attempt_instants(const ServiceFactory& factory,
                                             const std::vector<Job>& jobs) {
  ServiceTracer tracer;
  MetricsRegistry metrics;
  std::unique_ptr<GridJobService> service = factory(&tracer, &metrics);
  service->run(jobs);
  std::vector<double> instants;
  for (const ServiceTraceEvent& ev : tracer.events()) {
    switch (ev.kind) {
      case TraceKind::kDispatch:
      case TraceKind::kBackfillStart:
      case TraceKind::kCompletion:
      case TraceKind::kWalltimeKill:
        instants.push_back(ev.t_s);
        break;
      default:
        break;
    }
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());
  return instants;
}

}  // namespace qrgrid::sched

#include "sched/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <utility>

namespace qrgrid::sched {

namespace {

/// Round-trip double formatting, same contract as the metrics writer.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream oss;
  oss.precision(17);
  oss << v;
  return oss.str();
}

/// One attempt reconstructed from its open/close event pair.
struct Attempt {
  int job = -1;
  double start_s = 0.0;
  double end_s = 0.0;
  /// When the job last became pending before this start (its arrival,
  /// or the requeue that put it back) — the left edge of the wait this
  /// attempt ended.
  double pending_since_s = 0.0;
  std::vector<int> clusters;
  bool closed = false;
  int close_index = -1;  ///< stream position of the closing event
};

struct BlameInterval {
  double t0_s = 0.0;
  double t1_s = 0.0;
  int category = 0;
};

struct Parsed {
  std::vector<Attempt> attempts;
  /// end instant -> attempts closing (and releasing nodes) exactly then.
  std::map<double, std::vector<int>> ends_at;
  /// job -> requeue instant -> the attempt whose kill caused it.
  std::map<int, std::map<double, int>> requeue_of;
  /// recovery instant -> (cluster, down-since) for clusters whose outage
  /// depth returned to zero exactly then (the placeable boundary).
  std::map<double, std::vector<std::pair<int, double>>> recovered_at;
  /// job -> closed kWaitBlame intervals, in stream order.
  std::map<int, std::vector<BlameInterval>> blame;
};

Parsed parse(const std::vector<ServiceTraceEvent>& events) {
  Parsed p;
  std::map<int, int> open;           ///< job -> open attempt index
  std::map<int, int> last_attempt;   ///< job -> latest attempt index
  std::map<int, double> pending_since;
  std::map<int, int> down_depth;
  std::map<int, double> down_since;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ServiceTraceEvent& ev = events[i];
    switch (ev.kind) {
      case TraceKind::kArrival:
        pending_since[ev.job] = ev.t_s;
        break;
      case TraceKind::kDispatch:
      case TraceKind::kBackfillStart: {
        Attempt a;
        a.job = ev.job;
        a.start_s = ev.t_s;
        a.clusters = ev.clusters;
        const auto ps = pending_since.find(ev.job);
        a.pending_since_s = ps != pending_since.end() ? ps->second : ev.t_s;
        const int idx = static_cast<int>(p.attempts.size());
        p.attempts.push_back(std::move(a));
        open[ev.job] = idx;
        last_attempt[ev.job] = idx;
        break;
      }
      case TraceKind::kCompletion:
      case TraceKind::kWalltimeKill:
      case TraceKind::kOutageKill: {
        const auto it = open.find(ev.job);
        if (it == open.end()) break;  // truncated stream: skip
        Attempt& a = p.attempts[static_cast<std::size_t>(it->second)];
        a.end_s = ev.t_s;
        a.close_index = static_cast<int>(i);
        a.closed = true;
        p.ends_at[ev.t_s].push_back(it->second);
        open.erase(it);
        break;
      }
      case TraceKind::kRequeue: {
        pending_since[ev.job] = ev.t_s;
        const auto la = last_attempt.find(ev.job);
        if (la != last_attempt.end()) {
          p.requeue_of[ev.job][ev.t_s] = la->second;
        }
        break;
      }
      case TraceKind::kOutageDown:
        if (down_depth[ev.cluster]++ == 0) down_since[ev.cluster] = ev.t_s;
        break;
      case TraceKind::kOutageUp: {
        int& depth = down_depth[ev.cluster];
        if (depth > 0 && --depth == 0) {
          p.recovered_at[ev.t_s].emplace_back(ev.cluster,
                                              down_since[ev.cluster]);
        }
        break;
      }
      case TraceKind::kWaitBlame: {
        const int category = static_cast<int>(ev.value2);
        if (category >= 0 && category < kBlameCategoryCount) {
          p.blame[ev.job].push_back(
              {ev.t_s - ev.value, ev.t_s, category});
        }
        break;
      }
      default:
        break;
    }
  }
  return p;
}

bool overlaps(const std::vector<int>& a, const std::vector<int>& b) {
  for (int x : a) {
    for (int y : b) {
      if (x == y) return true;  // placements hold a handful of clusters
    }
  }
  return false;
}

}  // namespace

std::string crit_segment_kind_name(CritSegment::Kind kind) {
  switch (kind) {
    case CritSegment::Kind::kRun: return "run";
    case CritSegment::Kind::kOutage: return "outage";
    case CritSegment::Kind::kWait: return "wait";
    case CritSegment::Kind::kPreArrival: return "pre-arrival";
  }
  return "unknown";
}

CriticalPathReport analyze_critical_path(
    const std::vector<ServiceTraceEvent>& events) {
  CriticalPathReport report;
  Parsed p = parse(events);

  // The makespan-defining attempt: latest end, ties to the latest close
  // in stream order (the service's own precedence at one instant).
  int tail = -1;
  for (std::size_t i = 0; i < p.attempts.size(); ++i) {
    const Attempt& a = p.attempts[i];
    if (!a.closed) continue;
    if (tail == -1 ||
        a.end_s > p.attempts[static_cast<std::size_t>(tail)].end_s ||
        (a.end_s == p.attempts[static_cast<std::size_t>(tail)].end_s &&
         a.close_index >
             p.attempts[static_cast<std::size_t>(tail)].close_index)) {
      tail = static_cast<int>(i);
    }
  }
  if (tail == -1) return report;
  report.makespan_s = p.attempts[static_cast<std::size_t>(tail)].end_s;

  // The latest-closing attempt releasing nodes at exactly `s` — the
  // enabling edge of a start at s. With require_overlap, only releases
  // that freed a cluster the dependent placement uses qualify (a node
  // dependency); without, any release qualifies (the release changed
  // the queue/shadow geometry instead).
  auto release_at = [&](double s, const std::vector<int>& clusters,
                        bool require_overlap) -> int {
    const auto it = p.ends_at.find(s);
    if (it == p.ends_at.end()) return -1;
    int best = -1;
    for (int idx : it->second) {
      const Attempt& b = p.attempts[static_cast<std::size_t>(idx)];
      if (require_overlap && !overlaps(b.clusters, clusters)) continue;
      if (best == -1 ||
          b.close_index >
              p.attempts[static_cast<std::size_t>(best)].close_index) {
        best = idx;
      }
    }
    return best;
  };
  auto own_requeue_at = [&](int job, double s) -> int {
    const auto rq = p.requeue_of.find(job);
    if (rq == p.requeue_of.end()) return -1;
    const auto it = rq->second.find(s);
    return it == rq->second.end() ? -1 : it->second;
  };
  auto recovery_at =
      [&](double s, const std::vector<int>& clusters)
      -> const std::pair<int, double>* {
    const auto it = p.recovered_at.find(s);
    if (it == p.recovered_at.end()) return nullptr;
    for (const auto& rec : it->second) {
      for (int c : clusters) {
        if (c == rec.first) return &rec;
      }
    }
    return nullptr;
  };

  std::vector<CritSegment> chain;  // built backward, reversed at the end
  std::vector<int> chain_attempts;
  auto push = [&](const CritSegment& seg) {
    if (seg.t1_s > seg.t0_s) chain.push_back(seg);
  };
  // Attribute a wait tile to the dominant BlameCategory of the job's
  // kWaitBlame intervals overlapping it (ties to the smaller category
  // ordinal), feeding the report's per-category totals as a side effect.
  auto attribute_wait = [&](int job, double t0, double t1,
                            CritSegment& seg) {
    std::array<double, kBlameCategoryCount> local{};
    const auto it = p.blame.find(job);
    if (it != p.blame.end()) {
      for (const BlameInterval& bi : it->second) {
        const double lo = std::max(t0, bi.t0_s);
        const double hi = std::min(t1, bi.t1_s);
        if (hi > lo) local[static_cast<std::size_t>(bi.category)] += hi - lo;
      }
    }
    int best = -1;
    double best_s = 0.0;
    for (int k = 0; k < kBlameCategoryCount; ++k) {
      const double s = local[static_cast<std::size_t>(k)];
      report.wait_blame_s[static_cast<std::size_t>(k)] += s;
      if (s > best_s) {
        best_s = s;
        best = k;
      }
    }
    seg.blame = best;
  };
  // Explain the pending boundary `w` of `job` (always an arrival or a
  // requeue instant): a requeue chains to the killed attempt that ends
  // at exactly w; an arrival closes the walk with a pre-arrival tile.
  auto boundary = [&](int job, double w) -> int {
    const int prev = own_requeue_at(job, w);
    if (prev != -1) return prev;
    CritSegment pre;
    pre.kind = CritSegment::Kind::kPreArrival;
    pre.job = job;
    pre.t0_s = 0.0;
    pre.t1_s = w;
    push(pre);
    return -1;
  };

  // Backward walk from the makespan attempt. Each step explains one
  // start instant by the event that happened at exactly that double —
  // sound because the service stamped both with the same value. The
  // frontier (the walked attempt's end) strictly decreases, so the walk
  // terminates and the emitted tiles cover [0, makespan] exactly.
  int current = tail;
  while (current != -1) {
    const Attempt& a = p.attempts[static_cast<std::size_t>(current)];
    chain_attempts.push_back(current);
    CritSegment run;
    run.kind = CritSegment::Kind::kRun;
    run.job = a.job;
    run.t0_s = a.start_s;
    run.t1_s = a.end_s;
    push(run);
    const double s = a.start_s;
    const double w = a.pending_since_s;
    // 1. A release freed nodes this placement uses.
    int next = release_at(s, a.clusters, /*require_overlap=*/true);
    if (next == -1) next = own_requeue_at(a.job, s);  // 2. own retry
    if (next != -1) {
      current = next;
      continue;
    }
    // 3. A cluster this placement uses recovered exactly now: the job
    // sat behind the outage since max(down, pending), and behind the
    // queue before the failure if it was already waiting then.
    if (const auto* rec = recovery_at(s, a.clusters)) {
      CritSegment outage;
      outage.kind = CritSegment::Kind::kOutage;
      outage.job = a.job;
      outage.cluster = rec->first;
      outage.t0_s = std::max(rec->second, w);
      outage.t1_s = s;
      push(outage);
      if (rec->second > w) {
        CritSegment wait;
        wait.kind = CritSegment::Kind::kWait;
        wait.job = a.job;
        wait.t0_s = w;
        wait.t1_s = rec->second;
        attribute_wait(a.job, w, rec->second, wait);
        push(wait);
      }
      current = boundary(a.job, w);
      continue;
    }
    // 4. A release with no cluster overlap still changed the decision
    // geometry (queue head, shadow bound, backfill depth window).
    next = release_at(s, a.clusters, /*require_overlap=*/false);
    if (next != -1) {
      current = next;
      continue;
    }
    // 5. Nothing released: the start rode an arrival, a requeue of
    // another job, or a WAN rebalance — queue wait start to finish.
    if (s > w) {
      CritSegment wait;
      wait.kind = CritSegment::Kind::kWait;
      wait.job = a.job;
      wait.t0_s = w;
      wait.t1_s = s;
      attribute_wait(a.job, w, s, wait);
      push(wait);
    }
    current = boundary(a.job, w);
  }
  std::reverse(chain.begin(), chain.end());
  for (const CritSegment& seg : chain) {
    const double dt = seg.t1_s - seg.t0_s;
    switch (seg.kind) {
      case CritSegment::Kind::kRun: report.run_s += dt; break;
      case CritSegment::Kind::kOutage: report.outage_s += dt; break;
      case CritSegment::Kind::kWait: report.wait_s += dt; break;
      case CritSegment::Kind::kPreArrival:
        report.pre_arrival_s += dt;
        break;
    }
    if (seg.kind == CritSegment::Kind::kRun) ++report.chain_attempts;
  }
  report.chain = std::move(chain);

  // Slack: rebuild the release-edge DAG over ALL closed attempts (the
  // same rules 1/2/4 the walker chains by), then propagate each
  // attempt's furthest downstream end backward. An attempt can slip by
  // makespan minus that reach before it delays the final completion;
  // attempts on the walked chain are pinned to zero.
  std::vector<int> order;
  std::vector<int> enabler(p.attempts.size(), -1);
  std::vector<double> crit_end(p.attempts.size(), 0.0);
  for (std::size_t i = 0; i < p.attempts.size(); ++i) {
    const Attempt& a = p.attempts[i];
    if (!a.closed) continue;
    order.push_back(static_cast<int>(i));
    crit_end[i] = a.end_s;
    int from = release_at(a.start_s, a.clusters, /*require_overlap=*/true);
    if (from == -1) from = own_requeue_at(a.job, a.start_s);
    if (from == -1) {
      from = release_at(a.start_s, a.clusters, /*require_overlap=*/false);
    }
    enabler[i] = from;
  }
  for (int idx : chain_attempts) {
    crit_end[static_cast<std::size_t>(idx)] = report.makespan_s;
  }
  // Descending start order: an attempt's dependents (start == its end >
  // its start) are finalized before it, so one pass suffices.
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    const Attempt& a = p.attempts[static_cast<std::size_t>(x)];
    const Attempt& b = p.attempts[static_cast<std::size_t>(y)];
    return a.start_s != b.start_s ? a.start_s > b.start_s : x > y;
  });
  for (int idx : order) {
    const int from = enabler[static_cast<std::size_t>(idx)];
    if (from != -1) {
      crit_end[static_cast<std::size_t>(from)] =
          std::max(crit_end[static_cast<std::size_t>(from)],
                   crit_end[static_cast<std::size_t>(idx)]);
    }
  }
  for (int idx : order) {
    const Attempt& a = p.attempts[static_cast<std::size_t>(idx)];
    const double slack =
        std::max(0.0, report.makespan_s - crit_end[static_cast<std::size_t>(idx)]);
    const auto it = report.job_slack_s.find(a.job);
    if (it == report.job_slack_s.end()) {
      report.job_slack_s.emplace(a.job, slack);
    } else {
      it->second = std::min(it->second, slack);
    }
  }
  return report;
}

void write_critpath_json(const CriticalPathReport& report,
                         std::ostream& out) {
  out << "{\n";
  out << "  \"makespan_s\": " << json_num(report.makespan_s) << ",\n";
  out << "  \"path_length_s\": " << json_num(report.path_length_s())
      << ",\n";
  out << "  \"chain_attempts\": " << report.chain_attempts << ",\n";
  out << "  \"run_s\": " << json_num(report.run_s) << ",\n";
  out << "  \"outage_s\": " << json_num(report.outage_s) << ",\n";
  out << "  \"wait_s\": " << json_num(report.wait_s) << ",\n";
  out << "  \"pre_arrival_s\": " << json_num(report.pre_arrival_s)
      << ",\n";
  out << "  \"wait_blame_s\": {";
  for (int k = 0; k < kBlameCategoryCount; ++k) {
    out << (k ? ", " : "") << "\""
        << blame_category_name(static_cast<BlameCategory>(k))
        << "\": " << json_num(report.wait_blame_s[static_cast<std::size_t>(k)]);
  }
  out << "},\n  \"chain\": [";
  for (std::size_t i = 0; i < report.chain.size(); ++i) {
    const CritSegment& seg = report.chain[i];
    out << (i ? ",\n" : "\n") << "    {\"kind\": \""
        << crit_segment_kind_name(seg.kind) << "\", \"job\": " << seg.job
        << ", \"cluster\": " << seg.cluster
        << ", \"t0_s\": " << json_num(seg.t0_s)
        << ", \"t1_s\": " << json_num(seg.t1_s) << ", \"blame\": ";
    if (seg.blame >= 0 && seg.blame < kBlameCategoryCount) {
      out << "\"" << blame_category_name(static_cast<BlameCategory>(seg.blame))
          << "\"";
    } else {
      out << "null";
    }
    out << "}";
  }
  out << (report.chain.empty() ? "" : "\n  ") << "],\n";
  out << "  \"job_slack_s\": {";
  bool first = true;
  for (const auto& [job, slack] : report.job_slack_s) {
    out << (first ? "\n" : ",\n") << "    \"" << job
        << "\": " << json_num(slack);
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace qrgrid::sched

#include "sched/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "sched/snapshot.hpp"
#include "simgrid/trace.hpp"

namespace qrgrid::sched {
namespace {

/// Round-trip double formatting shared by every JSON writer; non-finite
/// values (never produced by a healthy run) degrade to null rather than
/// emitting invalid JSON.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream oss;
  oss.precision(17);
  oss << v;
  return oss.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// The event-precedence invariant orders four kinds at one instant:
/// finishes (0) before recoveries (1) before failures (2) before
/// arrivals (3). Everything else interleaves freely (-1).
int precedence_class(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCompletion:
    case TraceKind::kWalltimeKill:
      return 0;
    case TraceKind::kOutageUp:
      return 1;
    case TraceKind::kOutageDown:
      return 2;
    case TraceKind::kArrival:
      return 3;
    default:
      return -1;
  }
}

}  // namespace

std::string trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRunConfig:
      return "run-config";
    case TraceKind::kArrival:
      return "arrival";
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kBackfillStart:
      return "backfill-start";
    case TraceKind::kReservationClaim:
      return "reservation-claim";
    case TraceKind::kReservationWithdraw:
      return "reservation-withdraw";
    case TraceKind::kOutageDown:
      return "outage-down";
    case TraceKind::kOutageUp:
      return "outage-up";
    case TraceKind::kOutageKill:
      return "outage-kill";
    case TraceKind::kWalltimeKill:
      return "walltime-kill";
    case TraceKind::kRequeue:
      return "requeue";
    case TraceKind::kCompletion:
      return "completion";
    case TraceKind::kWanFlowOpen:
      return "wan-flow-open";
    case TraceKind::kWanFlowRetire:
      return "wan-flow-retire";
    case TraceKind::kWanRebalance:
      return "wan-rebalance";
    case TraceKind::kProfileCompute:
      return "profile-compute";
    case TraceKind::kExecute:
      return "execute";
    case TraceKind::kWaitBlame:
      return "wait-blame";
  }
  return "unknown";
}

std::string blame_category_name(BlameCategory category) {
  switch (category) {
    case BlameCategory::kResourceBusy:
      return "resource-busy";
    case BlameCategory::kHeldBehindReservation:
      return "held-behind-reservation";
    case BlameCategory::kPriorityDisplaced:
      return "priority-displaced";
    case BlameCategory::kWanContendedPlacement:
      return "wan-contended-placement";
    case BlameCategory::kOutageBlocked:
      return "outage-blocked";
    case BlameCategory::kBackfillDepthTruncated:
      return "backfill-depth-truncated";
    case BlameCategory::kWalltimeEstimateBlocked:
      return "walltime-estimate-blocked";
    case BlameCategory::kRequeuedRerun:
      return "requeued-rerun";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// MetricsRegistry

const std::vector<double>& MetricsRegistry::default_bounds() {
  static const std::vector<double> kBounds = {
      0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0,
      3000.0};
  return kBounds;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    observe(name, value, default_bounds());
    return;
  }
  HistogramSnapshot& h = it->second;
  std::size_t bucket = 0;
  while (bucket < h.bounds.size() && value > h.bounds[bucket]) ++bucket;
  ++h.counts[bucket];
  h.sum += value;
  ++h.count;
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  QRGRID_CHECK(!bounds.empty());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSnapshot h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  } else {
    QRGRID_CHECK(it->second.bounds == bounds);
  }
  HistogramSnapshot& h = it->second;
  std::size_t bucket = 0;
  while (bucket < h.bounds.size() && value > h.bounds[bucket]) ++bucket;
  ++h.counts[bucket];
  h.sum += value;
  ++h.count;
}

void MetricsRegistry::sample(const std::string& name, double t_s,
                             double value) {
  auto& points = series_[name];
  if (!points.empty()) {
    if (points.back().first == t_s) {
      points.back().second = value;  // same instant: latest wins
      return;
    }
    if (points.back().second == value) return;  // step curve: no change
  }
  points.emplace_back(t_s, value);
}

long long MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const HistogramSnapshot* MetricsRegistry::histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const std::vector<std::pair<double, double>>* MetricsRegistry::series(
    const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_num(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out << (i ? ", " : "") << json_num(h.bounds[i]);
    }
    out << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out << (i ? ", " : "") << h.counts[i];
    }
    out << "], \"sum\": " << json_num(h.sum) << ", \"count\": " << h.count
        << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [name, points] : series_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      out << (i ? ", " : "") << "[" << json_num(points[i].first) << ", "
          << json_num(points[i].second) << "]";
    }
    out << "]";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::save_state(SnapshotWriter& w) const {
  w.u64(counters_.size());
  for (const auto& [name, value] : counters_) {
    w.str(name);
    w.i64(value);
  }
  w.u64(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    w.str(name);
    w.f64(value);
  }
  w.u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.str(name);
    w.f64_vec(h.bounds);
    w.i64_vec(h.counts);
    w.f64(h.sum);
    w.i64(h.count);
  }
  w.u64(series_.size());
  for (const auto& [name, points] : series_) {
    w.str(name);
    w.u64(points.size());
    for (const auto& [t, v] : points) {
      w.f64(t);
      w.f64(v);
    }
  }
}

void MetricsRegistry::load_state(SnapshotReader& r) {
  clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::string name = r.str();
    counters_[name] = r.i64();
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::string name = r.str();
    gauges_[name] = r.f64();
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::string name = r.str();
    HistogramSnapshot h;
    h.bounds = r.f64_vec();
    h.counts = r.i64_vec();
    h.sum = r.f64();
    h.count = r.i64();
    histograms_[name] = std::move(h);
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::string name = r.str();
    auto& points = series_[name];
    points.resize(static_cast<std::size_t>(r.u64()));
    for (auto& [t, v] : points) {
      t = r.f64();
      v = r.f64();
    }
  }
}

// ---------------------------------------------------------------------------
// ServiceTracer snapshots

void ServiceTracer::save_state(SnapshotWriter& w) const {
  w.f64(now_s_);
  w.u64(events_.size());
  for (const ServiceTraceEvent& ev : events_) {
    w.f64(ev.t_s);
    w.i32(static_cast<int>(ev.kind));
    w.i32(ev.job);
    w.i32(ev.cluster);
    w.i32(ev.flow);
    w.f64(ev.value);
    w.f64(ev.value2);
    w.i32_vec(ev.clusters);
    w.i32_vec(ev.nodes);
    w.str(ev.note);
  }
}

void ServiceTracer::load_state(SnapshotReader& r) {
  // Deliberately bypasses sinks_ (see the header contract): these events
  // were consumed when first recorded; replaying them into a streaming
  // sink would double-count.
  now_s_ = r.f64();
  events_.resize(static_cast<std::size_t>(r.u64()));
  for (ServiceTraceEvent& ev : events_) {
    ev.t_s = r.f64();
    ev.kind = static_cast<TraceKind>(r.i32());
    ev.job = r.i32();
    ev.cluster = r.i32();
    ev.flow = r.i32();
    ev.value = r.f64();
    ev.value2 = r.f64();
    ev.clusters = r.i32_vec();
    ev.nodes = r.i32_vec();
    ev.note = r.str();
  }
}

// ---------------------------------------------------------------------------
// Span reconstruction and exporters

std::vector<AttemptSpan> attempt_spans(
    const std::vector<ServiceTraceEvent>& events) {
  std::vector<AttemptSpan> spans;
  std::map<int, AttemptSpan> open;
  for (const auto& ev : events) {
    switch (ev.kind) {
      case TraceKind::kDispatch:
      case TraceKind::kBackfillStart: {
        AttemptSpan span;
        span.job = ev.job;
        span.start_s = ev.t_s;
        span.backfilled = ev.kind == TraceKind::kBackfillStart;
        span.clusters = ev.clusters;
        span.nodes = ev.nodes;
        open[ev.job] = std::move(span);
        break;
      }
      case TraceKind::kCompletion:
      case TraceKind::kOutageKill:
      case TraceKind::kWalltimeKill: {
        auto it = open.find(ev.job);
        if (it == open.end()) break;
        it->second.end_s = ev.t_s;
        it->second.end_kind = ev.kind;
        spans.push_back(std::move(it->second));
        open.erase(it);
        break;
      }
      default:
        break;
    }
  }
  return spans;
}

void write_chrome_trace(const std::vector<ServiceTraceEvent>& events,
                        std::ostream& out) {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    out << (first ? "" : ",\n") << line;
    first = false;
  };
  auto us = [](double t_s) { return json_num(t_s * 1e6); };

  emit("{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"jobs\"}}");
  emit("{\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"clusters\"}}");
  emit("{\"ph\": \"M\", \"pid\": 3, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"wan\"}}");

  // Thread names: one row per job, one per occupied cluster.
  std::vector<int> job_ids;
  std::vector<int> cluster_ids;
  for (const auto& ev : events) {
    if (ev.kind == TraceKind::kArrival) job_ids.push_back(ev.job);
    if (ev.kind == TraceKind::kDispatch ||
        ev.kind == TraceKind::kBackfillStart) {
      for (int c : ev.clusters) cluster_ids.push_back(c);
    }
  }
  std::sort(cluster_ids.begin(), cluster_ids.end());
  cluster_ids.erase(std::unique(cluster_ids.begin(), cluster_ids.end()),
                    cluster_ids.end());
  for (int job : job_ids) {
    emit("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(job) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"job " +
         std::to_string(job) + "\"}}");
  }
  for (int c : cluster_ids) {
    emit("{\"ph\": \"M\", \"pid\": 2, \"tid\": " + std::to_string(c) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"site " +
         std::to_string(c) + "\"}}");
  }

  // Lifecycle spans: wait (arrival/requeue -> dispatch) and one span per
  // attempt, plus per-site occupancy, counters, and kill instants.
  std::map<int, double> wait_since;
  std::map<int, double> flow_open_s;
  std::map<int, double> flow_bytes;
  long long pending = 0;
  long long running = 0;
  auto counter = [&](const char* name, double t_s, long long v) {
    emit(std::string("{\"ph\": \"C\", \"pid\": 1, \"name\": \"") + name +
         "\", \"ts\": " + us(t_s) + ", \"args\": {\"jobs\": " +
         std::to_string(v) + "}}");
  };
  std::map<int, AttemptSpan> open;
  for (const auto& ev : events) {
    switch (ev.kind) {
      case TraceKind::kArrival:
        wait_since[ev.job] = ev.t_s;
        counter("pending_jobs", ev.t_s, ++pending);
        break;
      case TraceKind::kRequeue:
        wait_since[ev.job] = ev.t_s;
        counter("pending_jobs", ev.t_s, ++pending);
        break;
      case TraceKind::kDispatch:
      case TraceKind::kBackfillStart: {
        auto since = wait_since.find(ev.job);
        if (since != wait_since.end() && ev.t_s > since->second) {
          emit("{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
               std::to_string(ev.job) + ", \"name\": \"wait\", \"cat\": "
               "\"wait\", \"ts\": " + us(since->second) +
               ", \"dur\": " + us(ev.t_s - since->second) + "}");
        }
        wait_since.erase(ev.job);
        AttemptSpan span;
        span.job = ev.job;
        span.start_s = ev.t_s;
        span.backfilled = ev.kind == TraceKind::kBackfillStart;
        span.clusters = ev.clusters;
        open[ev.job] = std::move(span);
        counter("pending_jobs", ev.t_s, --pending);
        counter("running_jobs", ev.t_s, ++running);
        break;
      }
      case TraceKind::kCompletion:
      case TraceKind::kOutageKill:
      case TraceKind::kWalltimeKill: {
        auto it = open.find(ev.job);
        if (it == open.end()) break;
        const AttemptSpan& span = it->second;
        std::string sites;
        for (std::size_t i = 0; i < span.clusters.size(); ++i) {
          sites += (i ? "," : "") + std::to_string(span.clusters[i]);
        }
        const std::string name =
            span.backfilled ? "run (backfill)" : "run";
        const std::string end_name = trace_kind_name(ev.kind);
        emit("{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
             std::to_string(ev.job) + ", \"name\": \"" + name +
             "\", \"cat\": \"run\", \"ts\": " + us(span.start_s) +
             ", \"dur\": " + us(ev.t_s - span.start_s) +
             ", \"args\": {\"end\": \"" + end_name + "\", \"sites\": \"" +
             sites + "\"}}");
        for (int c : span.clusters) {
          emit("{\"ph\": \"X\", \"pid\": 2, \"tid\": " + std::to_string(c) +
               ", \"name\": \"job " + std::to_string(ev.job) +
               "\", \"cat\": \"occupancy\", \"ts\": " + us(span.start_s) +
               ", \"dur\": " + us(ev.t_s - span.start_s) + "}");
        }
        if (ev.kind != TraceKind::kCompletion) {
          emit("{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": " +
               std::to_string(ev.job) + ", \"name\": \"" + end_name +
               "\", \"ts\": " + us(ev.t_s) + "}");
        }
        open.erase(it);
        counter("running_jobs", ev.t_s, --running);
        break;
      }
      case TraceKind::kWanFlowOpen:
        flow_open_s[ev.flow] = ev.t_s;
        flow_bytes[ev.flow] = ev.value;
        break;
      case TraceKind::kWanFlowRetire: {
        auto it = flow_open_s.find(ev.flow);
        if (it == flow_open_s.end()) break;
        emit("{\"ph\": \"X\", \"pid\": 3, \"tid\": " +
             std::to_string(ev.flow) + ", \"name\": \"flow\", \"cat\": "
             "\"wan\", \"ts\": " + us(it->second) + ", \"dur\": " +
             us(ev.t_s - it->second) + ", \"args\": {\"admitted_bytes\": " +
             json_num(flow_bytes[ev.flow]) + ", \"moved_bytes\": " +
             json_num(ev.value) + "}}");
        flow_open_s.erase(it);
        break;
      }
      default:
        break;
    }
  }
  out << "\n]}\n";
}

std::string render_cluster_gantt(const std::vector<ServiceTraceEvent>& events,
                                 const simgrid::GridTopology& topology,
                                 int max_clusters, int width) {
  QRGRID_CHECK(max_clusters >= 1);
  const std::vector<AttemptSpan> spans = attempt_spans(events);
  if (spans.empty()) return "";
  std::map<int, double> busy;
  double horizon = 0.0;
  for (const auto& span : spans) {
    horizon = std::max(horizon, span.end_s);
    for (int c : span.clusters) busy[c] += span.end_s - span.start_s;
  }
  if (horizon <= 0.0) return "";
  // Busiest sites first; ties prefer the lower id for stable output.
  std::vector<std::pair<double, int>> ranked;
  for (const auto& [c, seconds] : busy) ranked.emplace_back(-seconds, c);
  std::sort(ranked.begin(), ranked.end());
  if (static_cast<int>(ranked.size()) > max_clusters) {
    ranked.resize(static_cast<std::size_t>(max_clusters));
  }
  std::map<int, int> row_of;
  std::vector<std::string> labels;
  for (const auto& [neg_busy, c] : ranked) {
    row_of[c] = static_cast<int>(labels.size());
    std::string name = c < topology.num_clusters()
                           ? topology.cluster(c).name
                           : "site" + std::to_string(c);
    labels.push_back(name + " (c" + std::to_string(c) + ")");
  }
  simgrid::TraceLog log;
  for (const auto& span : spans) {
    const auto kind = span.end_kind == TraceKind::kCompletion
                          ? simgrid::ActivityKind::kCompute
                          : simgrid::ActivityKind::kTransfer;
    for (int c : span.clusters) {
      auto it = row_of.find(c);
      if (it != row_of.end()) {
        log.record(it->second, span.start_s, span.end_s, kind);
      }
    }
  }
  return simgrid::render_timeline(
      log, labels, horizon, width,
      "C completed-attempt occupancy, R killed-attempt, . idle");
}

// ---------------------------------------------------------------------------
// TraceValidator

void TraceValidator::fail(const ServiceTraceEvent& event,
                          const std::string& what) {
  std::ostringstream oss;
  oss.precision(17);
  oss << "t=" << event.t_s << " " << trace_kind_name(event.kind);
  if (event.job >= 0) oss << " job=" << event.job;
  if (event.flow >= 0) oss << " flow=" << event.flow;
  oss << ": " << what;
  violations_.push_back(oss.str());
}

void TraceValidator::consume(const ServiceTraceEvent& event) {
  ++events_seen_;
  if (event.t_s < last_t_s_) {
    fail(event, "timestamp went backwards (previous " +
                    std::to_string(last_t_s_) + ")");
  }
  if (event.t_s > last_t_s_) {
    last_t_s_ = event.t_s;
    last_class_ = -1;
  }
  const int cls = precedence_class(event.kind);
  if (cls >= 0) {
    if (cls < last_class_) {
      fail(event,
           "event precedence violated: class " + std::to_string(cls) +
               " after class " + std::to_string(last_class_) +
               " at the same instant");
    }
    last_class_ = std::max(last_class_, cls);
  }

  switch (event.kind) {
    case TraceKind::kRunConfig: {
      saw_config_ = true;
      const int bits = static_cast<int>(event.value);
      enforce_no_delay_ = (bits & kTraceConfigWanContention) == 0 &&
                          (bits & kTraceConfigHasOutages) == 0;
      check_blame_ = (bits & kTraceConfigWaitBlame) != 0;
      break;
    }
    case TraceKind::kArrival:
      if (jobs_.count(event.job) != 0) {
        fail(event, "job arrived twice");
      } else {
        jobs_[event.job] = JobState::kPending;
        arrival_s_[event.job] = event.t_s;
      }
      break;
    case TraceKind::kDispatch:
    case TraceKind::kBackfillStart: {
      auto it = jobs_.find(event.job);
      if (it == jobs_.end() || it->second != JobState::kPending) {
        fail(event, "dispatched while not pending");
        break;
      }
      it->second = JobState::kRunning;
      if (check_blame_) {
        // The partition invariant: everything between submission and this
        // start has been blamed on exactly one category per interval, so
        // the accumulated blame equals the elapsed wait. Tolerance covers
        // float accumulation over many telescoping intervals only.
        const double wait = event.t_s - arrival_s_[event.job];
        const double blamed = blame_sum_s_[event.job];
        const double tol = 1e-6 + 1e-9 * std::abs(wait);
        if (std::abs(blamed - wait) > tol) {
          fail(event, "wait-blame does not partition the wait: blamed " +
                          std::to_string(blamed) + " s of " +
                          std::to_string(wait) + " s waited");
        }
      }
      auto promise = promises_.find(event.job);
      if (promise != promises_.end()) {
        if (enforce_no_delay_ && event.t_s > promise->second + 1e-9) {
          fail(event, "no-delay promise broken: started at " +
                          std::to_string(event.t_s) + " but promised " +
                          std::to_string(promise->second));
        }
        promises_.erase(promise);
      }
      break;
    }
    case TraceKind::kReservationClaim: {
      auto it = jobs_.find(event.job);
      if (it == jobs_.end() || it->second != JobState::kPending) {
        fail(event, "reservation claimed for a job that is not pending");
        break;
      }
      auto [promise, inserted] = promises_.emplace(event.job, event.value);
      if (!inserted) {
        promise->second = std::min(promise->second, event.value);
      }
      break;
    }
    case TraceKind::kReservationWithdraw:
      // A holder can be displaced before any finite shadow time was ever
      // computed for it, so a withdrawal with no recorded claim is fine.
      promises_.erase(event.job);
      break;
    case TraceKind::kOutageKill: {
      auto it = jobs_.find(event.job);
      if (it == jobs_.end() || it->second != JobState::kRunning) {
        fail(event, "outage kill of a job that is not running");
        break;
      }
      it->second = JobState::kKilledLimbo;
      break;
    }
    case TraceKind::kWalltimeKill: {
      auto it = jobs_.find(event.job);
      if (it == jobs_.end() || it->second != JobState::kRunning) {
        fail(event, "walltime kill of a job that is not running");
        break;
      }
      it->second = JobState::kTerminal;
      break;
    }
    case TraceKind::kRequeue: {
      auto it = jobs_.find(event.job);
      if (it == jobs_.end() || it->second != JobState::kKilledLimbo) {
        fail(event, "requeue without a preceding outage kill");
        break;
      }
      it->second = JobState::kPending;
      break;
    }
    case TraceKind::kCompletion: {
      auto it = jobs_.find(event.job);
      if (it == jobs_.end() || it->second != JobState::kRunning) {
        fail(event, "completion of a job that is not running");
        break;
      }
      it->second = JobState::kTerminal;
      break;
    }
    case TraceKind::kWaitBlame: {
      if (event.value < 0.0) {
        fail(event, "negative blame interval");
        break;
      }
      const int category = static_cast<int>(event.value2);
      if (category < 0 || category >= kBlameCategoryCount ||
          static_cast<double>(category) != event.value2) {
        fail(event, "invalid blame category " + std::to_string(event.value2));
        break;
      }
      auto it = jobs_.find(event.job);
      // Waiting blame attaches to pending jobs; the requeued-rerun share
      // is stamped in the killed-limbo between an outage kill and its
      // requeue (the interval the job spent re-running, not queued).
      const bool rerun =
          category == static_cast<int>(BlameCategory::kRequeuedRerun);
      if (it == jobs_.end() ||
          (rerun ? it->second != JobState::kKilledLimbo
                 : it->second != JobState::kPending)) {
        fail(event, rerun ? "rerun blame outside an outage-kill limbo"
                          : "wait blame for a job that is not pending");
        break;
      }
      blame_sum_s_[event.job] += event.value;
      break;
    }
    case TraceKind::kWanFlowOpen: {
      auto [flow, inserted] =
          flows_.emplace(event.flow, FlowState{event.value, false});
      if (!inserted) fail(event, "flow id opened twice");
      break;
    }
    case TraceKind::kWanFlowRetire: {
      auto it = flows_.find(event.flow);
      if (it == flows_.end()) {
        fail(event, "retire of a flow that was never opened");
        break;
      }
      if (it->second.retired) {
        fail(event, "flow retired twice");
        break;
      }
      it->second.retired = true;
      const double admitted = it->second.admitted_bytes;
      const double moved = event.value;
      const bool drained = event.value2 != 0.0;
      // Half-byte rounding slack per pool (the drain test in the WAN
      // model), scaled by a relative epsilon for large transfers.
      const double tol = 8.0 + 1e-6 * admitted;
      if (moved > admitted + tol) {
        fail(event, "byte conservation violated: moved " +
                        std::to_string(moved) + " of admitted " +
                        std::to_string(admitted));
      }
      if (drained && moved < admitted - tol) {
        fail(event, "drained flow moved only " + std::to_string(moved) +
                        " of admitted " + std::to_string(admitted));
      }
      break;
    }
    default:
      break;
  }
}

void TraceValidator::finish() {
  for (const auto& [job, state] : jobs_) {
    if (state == JobState::kRunning || state == JobState::kPending) {
      ServiceTraceEvent ev;
      ev.t_s = last_t_s_;
      ev.kind = TraceKind::kRunConfig;
      ev.job = job;
      fail(ev, state == JobState::kRunning
                   ? "job still running at end of stream"
                   : "job still pending at end of stream");
    }
  }
  for (const auto& [flow, state] : flows_) {
    if (!state.retired) {
      ServiceTraceEvent ev;
      ev.t_s = last_t_s_;
      ev.kind = TraceKind::kRunConfig;
      ev.flow = flow;
      fail(ev, "flow never retired");
    }
  }
}

std::vector<std::string> validate_trace(
    const std::vector<ServiceTraceEvent>& events) {
  TraceValidator validator;
  for (const auto& ev : events) validator.consume(ev);
  validator.finish();
  return validator.violations();
}

}  // namespace qrgrid::sched

#include "sched/job.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sched/policy.hpp"

namespace qrgrid::sched {

Policy policy_of(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "spjf") return Policy::kSpjf;
  if (name == "easy") return Policy::kEasyBackfill;
  if (name == "prio-easy") return Policy::kPriorityEasy;
  if (name == "fair") return Policy::kFairShare;
  throw Error("unknown policy '" + name +
              "' (fcfs|spjf|easy|prio-easy|fair)");
}

std::string policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFcfs: return "fcfs";
    case Policy::kSpjf: return "spjf";
    case Policy::kEasyBackfill: return "easy";
    case Policy::kPriorityEasy: return "prio-easy";
    case Policy::kFairShare: return "fair";
  }
  return "?";
}

std::string fate_name(JobFate fate) {
  switch (fate) {
    case JobFate::kCompleted: return "completed";
    case JobFate::kWalltimeKilled: return "walltime";
    case JobFate::kOutageFailed: return "outage";
  }
  return "?";
}

JobQueue::JobQueue(const SchedulingPolicy* policy) : policy_(policy) {}

JobQueue::JobQueue(Policy policy) : owned_(make_policy(policy)) {
  policy_ = owned_.get();
}

JobQueue::~JobQueue() = default;

void JobQueue::push(Job job, double predicted_s) {
  PendingEntry e{std::move(job), predicted_s};
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), e,
      [this](const PendingEntry& a, const PendingEntry& b) {
        return policy_->before(a, b);
      });
  entries_.insert(pos, std::move(e));
}

void JobQueue::resort() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [this](const PendingEntry& a, const PendingEntry& b) {
                     return policy_->before(a, b);
                   });
}

Job JobQueue::remove(std::size_t i) {
  QRGRID_CHECK(i < entries_.size());
  Job job = std::move(entries_[i].job);
  entries_.erase(entries_.begin() +
                 static_cast<std::ptrdiff_t>(i));
  return job;
}

}  // namespace qrgrid::sched

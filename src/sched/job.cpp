#include "sched/job.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qrgrid::sched {

Policy policy_of(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "spjf") return Policy::kSpjf;
  if (name == "easy") return Policy::kEasyBackfill;
  throw Error("unknown policy '" + name + "' (fcfs|spjf|easy)");
}

std::string policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFcfs: return "fcfs";
    case Policy::kSpjf: return "spjf";
    case Policy::kEasyBackfill: return "easy";
  }
  return "?";
}

std::string fate_name(JobFate fate) {
  switch (fate) {
    case JobFate::kCompleted: return "completed";
    case JobFate::kWalltimeKilled: return "walltime";
    case JobFate::kOutageFailed: return "outage";
  }
  return "?";
}

bool JobQueue::before(const Entry& a, const Entry& b) const {
  if (policy_ == Policy::kSpjf) {
    if (a.predicted_s != b.predicted_s) return a.predicted_s < b.predicted_s;
    return a.job.id < b.job.id;
  }
  if (a.job.priority != b.job.priority) return a.job.priority > b.job.priority;
  if (a.job.arrival_s != b.job.arrival_s) {
    return a.job.arrival_s < b.job.arrival_s;
  }
  return a.job.id < b.job.id;
}

void JobQueue::push(Job job, double predicted_s) {
  Entry e{std::move(job), predicted_s};
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), e,
      [this](const Entry& a, const Entry& b) { return before(a, b); });
  entries_.insert(pos, std::move(e));
}

Job JobQueue::remove(std::size_t i) {
  QRGRID_CHECK(i < entries_.size());
  Job job = std::move(entries_[i].job);
  entries_.erase(entries_.begin() +
                 static_cast<std::ptrdiff_t>(i));
  return job;
}

}  // namespace qrgrid::sched

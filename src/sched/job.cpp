#include "sched/job.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sched/policy.hpp"
#include "sched/snapshot.hpp"
#include "sched/telemetry.hpp"

namespace qrgrid::sched {

Policy policy_of(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "spjf") return Policy::kSpjf;
  if (name == "easy") return Policy::kEasyBackfill;
  if (name == "prio-easy") return Policy::kPriorityEasy;
  if (name == "fair") return Policy::kFairShare;
  throw Error("unknown policy '" + name +
              "' (fcfs|spjf|easy|prio-easy|fair)");
}

std::string policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFcfs: return "fcfs";
    case Policy::kSpjf: return "spjf";
    case Policy::kEasyBackfill: return "easy";
    case Policy::kPriorityEasy: return "prio-easy";
    case Policy::kFairShare: return "fair";
  }
  return "?";
}

void save_job(SnapshotWriter& w, const Job& job) {
  w.i32(job.id);
  w.f64(job.arrival_s);
  w.f64(job.m);
  w.i32(job.n);
  w.i32(job.procs);
  w.i32(job.priority);
  w.i32(job.user);
  w.f64(job.weight);
  w.i32(static_cast<int>(job.tree));
  w.f64(job.walltime_s);
}

Job load_job(SnapshotReader& r) {
  Job job;
  job.id = r.i32();
  job.arrival_s = r.f64();
  job.m = r.f64();
  job.n = r.i32();
  job.procs = r.i32();
  job.priority = r.i32();
  job.user = r.i32();
  job.weight = r.f64();
  job.tree = static_cast<core::TreeKind>(r.i32());
  job.walltime_s = r.f64();
  return job;
}

std::string fate_name(JobFate fate) {
  switch (fate) {
    case JobFate::kCompleted: return "completed";
    case JobFate::kWalltimeKilled: return "walltime";
    case JobFate::kOutageFailed: return "outage";
  }
  return "?";
}

bool PendingOrder::operator()(const PendingEntry& a,
                              const PendingEntry& b) const {
  return policy->before(a, b);
}

JobQueue::JobQueue(const SchedulingPolicy* policy)
    : policy_(policy),
      set_(PendingOrder{policy}),
      track_classes_(policy->dynamic_order()) {}

JobQueue::JobQueue(Policy policy)
    : owned_(make_policy(policy)), set_(PendingOrder{owned_.get()}) {
  policy_ = owned_.get();
  track_classes_ = policy_->dynamic_order();
}

JobQueue::~JobQueue() = default;

void JobQueue::index_insert(Set::iterator it) {
  buckets_[policy_->order_class(it->job)].emplace(it->job.id, it);
}

void JobQueue::index_erase(Set::const_iterator it) {
  const auto b = buckets_.find(policy_->order_class(it->job));
  QRGRID_CHECK(b != buckets_.end());
  b->second.erase(it->job.id);
  if (b->second.empty()) buckets_.erase(b);
}

void JobQueue::sync() {
  if (!policy_->keys_dirty()) return;
  // Extraction by stored iterator is comparison-free, so it is safe even
  // though the tree's invariant no longer matches the mutated keys; the
  // remaining entries (whose keys did not move) stay mutually consistent,
  // and reinsertion compares fresh keys against them.
  std::vector<PendingEntry> moved;
  const std::vector<int>* classes =
      track_classes_ ? policy_->dirty_classes() : nullptr;
  if (classes != nullptr) {
    for (const int cls : *classes) {
      const auto b = buckets_.find(cls);
      if (b == buckets_.end()) continue;  // no queued jobs of this class
      for (auto& [id, it] : b->second) {
        if (!policy_->touch(it->job)) continue;
        moved.push_back(std::move(const_cast<PendingEntry&>(*it)));
        set_.erase(it);
      }
      buckets_.erase(b);
    }
  } else {
    // Conservative path (a dynamic policy without dirty tracking):
    // everything reinserts. Extracting in current order and reinserting
    // in that order keeps ties stable, matching the old stable_sort.
    moved.reserve(set_.size());
    for (const PendingEntry& e : set_) moved.push_back(e);
    set_.clear();
    buckets_.clear();
  }
  policy_->clear_dirty();
  for (PendingEntry& e : moved) {
    auto it = set_.insert(std::move(e));
    if (track_classes_) index_insert(it);
  }
  if (metrics_ != nullptr) {
    metrics_->add("policy.resorts");
    if (!moved.empty()) {
      metrics_->add("policy.resort_reinserts",
                    static_cast<long long>(moved.size()));
    }
  }
}

void JobQueue::push(Job job, double predicted_s) {
  sync();  // insertion compares; never against stale keys (the old
           // upper_bound-over-unsorted-range UB for dynamic policies)
  auto it = set_.emplace_hint(set_.end(),
                              PendingEntry{std::move(job), predicted_s});
  if (track_classes_) index_insert(it);
}

const Job& JobQueue::front() {
  sync();
  QRGRID_CHECK(!set_.empty());
  return set_.begin()->job;
}

Job JobQueue::pop_front() {
  sync();
  QRGRID_CHECK(!set_.empty());
  Job job;
  take(set_.begin(), job);
  return job;
}

JobQueue::const_iterator JobQueue::begin() {
  sync();
  return set_.begin();
}

JobQueue::const_iterator JobQueue::take(const_iterator it, Job& out) {
  if (track_classes_) index_erase(it);
  out = std::move(const_cast<PendingEntry&>(*it).job);
  return set_.erase(it);
}

}  // namespace qrgrid::sched

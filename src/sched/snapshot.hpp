// Byte-level serialization primitives for service snapshots.
//
// GridJobService::snapshot()/restore() capture the FULL mid-run state of
// a service — pending queue, running attempts, WAN flows, outage
// cursors, RNG streams, telemetry — as one opaque byte string, used two
// ways: as the rollback token of the interleaving explorer
// (sched/explore.hpp) and as the on-disk checkpoint of the CLI's
// `serve --checkpoint-out/--resume`. The writer/reader pair here is the
// shared low-level encoding every subsystem's save_state()/load_state()
// speaks.
//
// Encoding contract: fixed-width host-endian integers and raw IEEE-754
// bit patterns for doubles (byte-faithful by construction — restoring a
// double reproduces the exact bits, which is what makes a resumed run's
// trace byte-identical to the uninterrupted one). Snapshots are NOT
// portable across endianness or struct-layout changes; the service
// prepends a magic/version/config fingerprint and refuses mismatches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qrgrid::sched {

/// Appends fixed-width fields to a byte string. No framing per field —
/// reader and writer must agree on the exact sequence (the version tag
/// in the service header is what guards that agreement).
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  /// Raw IEEE-754 bit pattern: NaNs, infinities, and signed zeros all
  /// round-trip exactly.
  void f64(double v);
  void boolean(bool v);
  void str(const std::string& v);  ///< u64 length + bytes

  void i32_vec(const std::vector<int>& v);
  void i64_vec(const std::vector<long long>& v);
  void f64_vec(const std::vector<double>& v);

  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

/// Consumes the writer's byte sequence; throws qrgrid::Error on
/// truncation (a short read past the end of the buffer).
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();

  std::vector<int> i32_vec();
  std::vector<long long> i64_vec();
  std::vector<double> f64_vec();

  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  void take(void* out, std::size_t n);

  std::string bytes_;
  std::size_t pos_ = 0;
};

}  // namespace qrgrid::sched

// Scoped self-profiler for the grid job service's hot phases.
//
// The virtual-time trace (sched/telemetry.hpp) explains WHERE simulated
// time went; this answers where WALL time goes inside the event loop —
// the input the perf-regression gate (tools/check_bench.py) compares
// across commits as phase SHARES, so a complexity regression in one
// phase (dispatch suddenly rescanning the queue, the WAN walk going
// quadratic) shows up even when absolute walls jitter across machines.
//
// Six phases, chosen to cover the loop's real hot spots:
//
//   dispatch-scan        one dispatch() pass: head placements + the
//                        bounded backfill scan (includes shadow below)
//   shadow               shadow_time(): the EASY reservation estimate,
//                        including WAN drain pricing (nested inside
//                        dispatch-scan — totals overlap by design)
//   wan-advance          GridWanModel::advance: draining every activated
//                        pool to the next horizon event
//   wan-rebalance        the incremental max-min engine's component
//                        recompute: one progressive-filling pass over
//                        the links whose flow set changed (nested inside
//                        whichever phase consulted the WAN model —
//                        usually wan-advance; totals overlap by design)
//   completion-extract   the completion/walltime-kill extraction scan
//                        plus per-completion accounting
//   backend-execute      ExecutionBackend::execute (msg runtime only;
//                        zero calls on the replay backend)
//
// Cost contract, same shape as the tracer's: ServiceOptions::profiler is
// a nullable pointer, and a PhaseScope over a null profiler never reads
// a clock — the disabled run does not touch std::chrono at all. Wall
// times are inherently nondeterministic, so they live ONLY in gauges
// (metrics JSON `profiler.*`) and BENCH totals, never in the virtual-
// time event stream — byte-determinism of traces is untouched.
#pragma once

#include <array>
#include <chrono>

namespace qrgrid::sched {

class MetricsRegistry;

/// One hot phase of the service event loop (see the header comment).
enum class ProfilePhase : int {
  kDispatchScan = 0,
  kShadow,
  kWanAdvance,
  kWanRebalance,
  kCompletionExtract,
  kBackendExecute,
};
inline constexpr int kProfilePhaseCount = 6;

inline const char* profile_phase_name(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kDispatchScan:
      return "dispatch-scan";
    case ProfilePhase::kShadow:
      return "shadow";
    case ProfilePhase::kWanAdvance:
      return "wan-advance";
    case ProfilePhase::kWanRebalance:
      return "wan-rebalance";
    case ProfilePhase::kCompletionExtract:
      return "completion-extract";
    case ProfilePhase::kBackendExecute:
      return "backend-execute";
  }
  return "unknown";
}

/// Accumulated wall seconds and entry counts per phase. Plain arrays, no
/// locking: the event loop is single-threaded (the msg backend's rank
/// threads never touch the profiler).
class PhaseProfiler {
 public:
  void add(ProfilePhase phase, double seconds) {
    const auto i = static_cast<std::size_t>(phase);
    total_s_[i] += seconds;
    ++calls_[i];
  }

  double total_s(ProfilePhase phase) const {
    return total_s_[static_cast<std::size_t>(phase)];
  }
  long long calls(ProfilePhase phase) const {
    return calls_[static_cast<std::size_t>(phase)];
  }

  void clear() {
    total_s_.fill(0.0);
    calls_.fill(0);
  }

 private:
  std::array<double, kProfilePhaseCount> total_s_{};
  std::array<long long, kProfilePhaseCount> calls_{};
};

/// RAII timer around one phase entry. A null profiler costs exactly one
/// pointer test per end — no clock read, no accumulation.
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* profiler, ProfilePhase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~PhaseScope() {
    if (profiler_ == nullptr) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    profiler_->add(phase_,
                   std::chrono::duration<double>(dt).count());
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  ProfilePhase phase_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace qrgrid::sched

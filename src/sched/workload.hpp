// Reproducible synthetic workloads for the grid job service.
//
// Arrivals follow a Poisson process (exponential inter-arrival times);
// matrix shapes, process counts, trees, and priorities are drawn uniformly
// from the spec's choice lists. Everything is driven by common/rng's
// xoshiro256**, so a given spec always yields byte-identical job streams —
// the determinism the bench and tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/job.hpp"

namespace qrgrid::sched {

/// Knobs of the synthetic job stream. Defaults give the paper's matrix
/// range (tall-skinny, N in {64..512}) at a traffic level that keeps a
/// 4-site Grid'5000 slice contended but drainable.
struct WorkloadSpec {
  int jobs = 100;
  double mean_interarrival_s = 0.5;
  std::vector<double> m_choices = {1 << 17, 1 << 18, 1 << 19,
                                   1 << 20, 1 << 21, 1 << 22};
  std::vector<int> n_choices = {64, 128, 256, 512};
  std::vector<int> procs_choices = {8, 16, 32, 64};
  std::vector<core::TreeKind> tree_choices = {
      core::TreeKind::kGridHierarchical};
  int priority_levels = 1;  ///< priorities drawn uniformly from [0, levels)
  /// Submitting users, drawn uniformly from [0, users). 1 (the default)
  /// consumes NO random draw, so single-user specs generate streams
  /// byte-identical to the pre-fair-share generator.
  int users = 1;
  /// Fair-share weight of user u = user_weights[u % size]; empty = all
  /// 1.0. Must be positive.
  std::vector<double> user_weights;
  std::uint64_t seed = 2026;
};

/// Generates `spec.jobs` jobs with ids 0..jobs-1 in arrival order.
/// Deterministic in the spec (same spec, same stream).
std::vector<Job> generate_workload(const WorkloadSpec& spec);

/// The classic walltime-inaccuracy model: users over-ask, so each job's
/// requested walltime is its predicted runtime times a multiplier drawn
/// uniformly from [1, max_overask_factor). `predicted_s` is the cost-model
/// estimate (usually GridJobService::predicted_seconds); multipliers are
/// seeded PER JOB ID, so the walltime of job k does not depend on how many
/// jobs precede it in the vector. max_overask_factor <= 1 pins every
/// walltime to exactly the prediction (perfectly honest users — and,
/// where the model under-predicts WAN placements, a source of walltime
/// kills, which is precisely the churn EASY must survive).
void assign_walltimes(std::vector<Job>& jobs, double max_overask_factor,
                      std::uint64_t seed,
                      const std::function<double(const Job&)>& predicted_s);

}  // namespace qrgrid::sched

#include "core/ooc.hpp"

#include <algorithm>

#include "linalg/flops.hpp"
#include "linalg/qr.hpp"
#include "linalg/tpqrt.hpp"

namespace qrgrid::core {

OocTsqr::OocTsqr(Index n) : n_(n), r_(n, n) {
  QRGRID_CHECK(n >= 1);
}

void OocTsqr::absorb(ConstMatrixView panel) {
  QRGRID_CHECK_MSG(panel.cols() == n_,
                   "panel has " << panel.cols() << " columns, expected "
                                << n_);
  QRGRID_CHECK(panel.rows() >= 1);
  rows_seen_ += panel.rows();
  panels_seen_ += 1;

  if (!seeded_) {
    // First panel: factor it to seed the accumulator. Panels narrower
    // than n rows are padded implicitly by later folds.
    Matrix work = Matrix::copy_of(panel);
    if (work.rows() >= n_) {
      std::vector<double> tau;
      geqrf(work.view(), tau);
      flops_ += flops::geqrf(static_cast<double>(work.rows()),
                             static_cast<double>(n_));
      Matrix r = extract_r(work.view());
      copy(r.view(), r_.block(0, 0, n_, n_));
      seeded_ = true;
      return;
    }
    // Degenerate short first panel: fold it as a dense block onto the
    // (zero) accumulator; R stays rank-deficient until enough rows.
  }
  // Fold: QR of [R; panel] with the triangle-on-dense kernel.
  Matrix v2 = Matrix::copy_of(panel);
  std::vector<double> tau;
  tpqrt_td(r_.view(), v2.view(), tau);
  flops_ += flops::tpqrt_td(static_cast<double>(panel.rows()),
                            static_cast<double>(n_));
  seeded_ = true;
}

Matrix OocTsqr::r() const {
  QRGRID_CHECK_MSG(rows_seen_ >= n_, "need at least n rows for a full R");
  return Matrix::copy_of(r_.view());
}

}  // namespace qrgrid::core

#include "core/tree.hpp"

#include <algorithm>
#include <map>

namespace qrgrid::core {

ReductionTree ReductionTree::flat(int num_domains) {
  QRGRID_CHECK(num_domains >= 1);
  ReductionTree t;
  t.num_domains_ = num_domains;
  for (int d = 1; d < num_domains; ++d) {
    t.levels_.push_back(TreeLevel{{Merge{0, d}}});
  }
  return t;
}

ReductionTree ReductionTree::binary(int num_domains) {
  QRGRID_CHECK(num_domains >= 1);
  ReductionTree t;
  t.num_domains_ = num_domains;
  for (int stride = 1; stride < num_domains; stride *= 2) {
    TreeLevel level;
    for (int d = 0; d + stride < num_domains; d += 2 * stride) {
      level.merges.push_back(Merge{d, d + stride});
    }
    t.levels_.push_back(std::move(level));
  }
  return t;
}

namespace {

/// Binary tree over an arbitrary ordered set of domain ids; returns the
/// per-level merges and the surviving root (members[0]).
std::vector<TreeLevel> binary_over(const std::vector<int>& members) {
  std::vector<TreeLevel> levels;
  const int n = static_cast<int>(members.size());
  for (int stride = 1; stride < n; stride *= 2) {
    TreeLevel level;
    for (int i = 0; i + stride < n; i += 2 * stride) {
      level.merges.push_back(
          Merge{members[static_cast<std::size_t>(i)],
                members[static_cast<std::size_t>(i + stride)]});
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

}  // namespace

ReductionTree ReductionTree::grid_hierarchical(
    const std::vector<int>& domain_cluster) {
  const int d = static_cast<int>(domain_cluster.size());
  QRGRID_CHECK(d >= 1);
  ReductionTree t;
  t.num_domains_ = d;

  // Group domains by cluster, preserving domain order within a cluster.
  std::map<int, std::vector<int>> by_cluster;
  for (int i = 0; i < d; ++i) {
    by_cluster[domain_cluster[static_cast<std::size_t>(i)]].push_back(i);
  }
  QRGRID_CHECK_MSG(by_cluster.begin()->second.front() == 0,
                   "domain 0 must belong to the first cluster");

  // Phase 1: binary tree inside every cluster, levels aligned so all
  // clusters reduce concurrently.
  std::vector<std::vector<TreeLevel>> per_cluster;
  std::vector<int> roots;
  for (const auto& [cluster, members] : by_cluster) {
    (void)cluster;
    per_cluster.push_back(binary_over(members));
    roots.push_back(members.front());
  }
  std::size_t max_depth = 0;
  for (const auto& lv : per_cluster) max_depth = std::max(max_depth, lv.size());
  for (std::size_t k = 0; k < max_depth; ++k) {
    TreeLevel level;
    for (const auto& lv : per_cluster) {
      if (k < lv.size()) {
        level.merges.insert(level.merges.end(), lv[k].merges.begin(),
                            lv[k].merges.end());
      }
    }
    t.levels_.push_back(std::move(level));
  }

  // Phase 2: binary tree across the cluster roots.
  for (auto& level : binary_over(roots)) {
    t.levels_.push_back(std::move(level));
  }
  return t;
}

ReductionTree ReductionTree::make(TreeKind kind, int num_domains,
                                  const std::vector<int>& domain_cluster) {
  switch (kind) {
    case TreeKind::kFlat:
      return flat(num_domains);
    case TreeKind::kBinary:
      return binary(num_domains);
    case TreeKind::kGridHierarchical: {
      if (domain_cluster.empty()) {
        // No topology information: degenerate to one cluster == binary.
        return binary(num_domains);
      }
      QRGRID_CHECK(static_cast<int>(domain_cluster.size()) == num_domains);
      return grid_hierarchical(domain_cluster);
    }
  }
  QRGRID_CHECK(false);
  return {};
}

int ReductionTree::inter_cluster_merges(
    const std::vector<int>& domain_cluster) const {
  QRGRID_CHECK(static_cast<int>(domain_cluster.size()) == num_domains_);
  int count = 0;
  for (const auto& level : levels_) {
    for (const auto& m : level.merges) {
      if (domain_cluster[static_cast<std::size_t>(m.parent)] !=
          domain_cluster[static_cast<std::size_t>(m.child)]) {
        ++count;
      }
    }
  }
  return count;
}

std::vector<RowBlock> partition_rows(std::int64_t total_rows, int parts) {
  QRGRID_CHECK(parts >= 1 && total_rows >= 0);
  std::vector<RowBlock> out(static_cast<std::size_t>(parts));
  const std::int64_t base = total_rows / parts;
  const std::int64_t extra = total_rows % parts;
  std::int64_t offset = 0;
  for (int p = 0; p < parts; ++p) {
    const std::int64_t count = base + (p < extra ? 1 : 0);
    out[static_cast<std::size_t>(p)] = RowBlock{offset, count};
    offset += count;
  }
  return out;
}

}  // namespace qrgrid::core

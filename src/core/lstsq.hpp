// Distributed linear least squares on top of TSQR — the canonical
// application of a tall-skinny QR: solve  min_x ||A x - b||_2  for an
// M x N matrix distributed as row blocks (one per rank) and one or more
// right-hand sides distributed the same way.
//
// Method: factor A with one TSQR reduction, apply Q^T to b with the
// implicit factors (leaf ormqr + one tree sweep), solve the N x N
// triangular system on the root, and broadcast the solution. Compared to
// the normal equations (A^T A x = A^T b, the same communication volume),
// the conditioning is cond(A) instead of cond(A)^2 — the same stability
// argument the paper makes for orthogonalization schemes.
#pragma once

#include "core/tsqr.hpp"

namespace qrgrid::core {

struct LeastSquaresResult {
  /// The N x nrhs solution, replicated on every rank.
  Matrix x;
  /// ||A x - b||_2 per right-hand side, replicated on every rank.
  std::vector<double> residual_norms;
  /// False if R was exactly singular (rank-deficient A).
  bool ok = true;
};

/// Solves the distributed least-squares problem. `a_local` (m_local x n)
/// and `b_local` (m_local x nrhs) are overwritten (A with its reflectors,
/// b with Q^T b). Collective over `comm`.
LeastSquaresResult tsqr_least_squares(msg::Comm& comm, MatrixView a_local,
                                      MatrixView b_local,
                                      const TsqrOptions& options = {});

}  // namespace qrgrid::core

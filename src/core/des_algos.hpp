// Discrete-event replays of the factorization schedules at grid scale.
//
// These functions drive a simgrid::DesEngine through the exact
// communication/computation schedule of the SPMD algorithms (same trees,
// same collective shapes, same flop formulas) without touching payload
// data, which is what lets the benchmark harness reproduce the paper's
// figures over matrices up to 33.5M rows. The engine-equivalence test
// pins these schedules to the threaded implementations.
#pragma once

#include <span>
#include <vector>

#include "core/tree.hpp"
#include "model/roofline.hpp"
#include "simgrid/des.hpp"
#include "simgrid/topology.hpp"

namespace qrgrid::core {

/// ScaLAPACK PDGEQR2 analog: 2 allreduces per column over `ranks`.
/// `form_q` additionally replays the distributed Q accumulation.
void des_pdgeqr2(simgrid::DesEngine& engine, std::span<const int> ranks,
                 double m, double n, bool form_q);

/// ScaLAPACK PDGEQRF analog: per-column allreduces inside each width-nb
/// panel plus one blocked-update allreduce per panel (NB = 64 in the
/// paper's runs).
void des_pdgeqrf(simgrid::DesEngine& engine, std::span<const int> ranks,
                 double m, double n, int nb, bool form_q);

/// QCG-TSQR: each domain is factored by a ScaLAPACK call over its process
/// group (a single-process group degenerates to a LAPACK geqrf, the
/// original TSQR), then the R factors are reduced over `tree_kind`.
void des_tsqr(simgrid::DesEngine& engine,
              const std::vector<std::vector<int>>& domain_groups,
              const std::vector<int>& domain_cluster, double m, double n,
              TreeKind tree_kind, bool form_q);

/// Splits each cluster's contiguous ranks into `domains_per_cluster`
/// groups of (nearly) equal size. Pass kOneDomainPerProcess for exactly
/// one single-rank domain per process regardless of per-cluster process
/// counts — the layout under which the replayed schedule is structurally
/// identical to a threaded tsqr_factor run (every msg rank IS a domain),
/// which is what the service-layer engine-equivalence suite pins.
inline constexpr int kOneDomainPerProcess = -1;
struct DomainLayout {
  std::vector<std::vector<int>> groups;  ///< ranks per domain
  std::vector<int> domain_cluster;       ///< cluster of each domain
};
DomainLayout make_domain_layout(const simgrid::GridTopology& topology,
                                int domains_per_cluster);

/// Aggregate outcome of one simulated factorization.
struct DesRunResult {
  double seconds = 0.0;
  double gflops = 0.0;  ///< useful flops (2MN^2 - 2/3 N^3) per second
  long long total_messages = 0;
  long long inter_cluster_messages = 0;
  double compute_utilization = 0.0;  ///< busy fraction, mean over ranks
};

/// Simulates one ScaLAPACK factorization over all processes of `topology`.
DesRunResult run_des_scalapack(const simgrid::GridTopology& topology,
                               const model::Roofline& roofline, double m,
                               double n, int nb = 64, bool form_q = false);

/// Simulates one QCG-TSQR factorization with the given per-cluster domain
/// count and tree shape.
DesRunResult run_des_tsqr(const simgrid::GridTopology& topology,
                          const model::Roofline& roofline,
                          int domains_per_cluster, double m, double n,
                          TreeKind tree_kind = TreeKind::kGridHierarchical,
                          bool form_q = false);

}  // namespace qrgrid::core

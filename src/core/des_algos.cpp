#include "core/des_algos.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "linalg/flops.hpp"
#include "model/costs.hpp"

namespace qrgrid::core {

namespace {

constexpr double kDouble = sizeof(double);

/// Distributed Householder column step: local partial norms/updates plus
/// the two per-column reductions of the ScaLAPACK panel kernel.
/// `blacs_combines` selects ScaLAPACK's reduce+broadcast combine
/// (2 log2 P rounds, what DGSUM2D does) versus the ideal butterfly
/// allreduce (log2 P rounds, what the paper's Table I charges and what
/// our own pdgeqr2 implementation uses).
void des_column_step(simgrid::DesEngine& engine, std::span<const int> ranks,
                     double m_active, double trailing_cols, int ncols,
                     bool blacs_combines) {
  const double m_loc = m_active / static_cast<double>(ranks.size());
  auto combine = [&](std::size_t bytes, double flops) {
    if (blacs_combines) {
      engine.reduce_bcast(ranks, bytes, flops, ncols);
    } else {
      engine.allreduce(ranks, bytes, flops, ncols);
    }
  };
  for (int r : ranks) engine.compute(r, 2.0 * m_loc, ncols);
  combine(static_cast<std::size_t>(2 * kDouble), 2.0);
  if (trailing_cols > 0.0) {
    // w = v^T A_trail before the reduction, the rank-1 update after —
    // split to mirror the SPMD implementation's clock profile exactly.
    for (int r : ranks) {
      engine.compute(r, 2.0 * m_loc * trailing_cols, ncols);
    }
    combine(static_cast<std::size_t>(trailing_cols * kDouble),
            trailing_cols);
    for (int r : ranks) {
      engine.compute(r, 2.0 * m_loc * trailing_cols, ncols);
    }
  }
}

}  // namespace

void des_pdgeqr2(simgrid::DesEngine& engine, std::span<const int> ranks,
                 double m, double n, bool form_q) {
  const int ncols = static_cast<int>(n);
  for (double j = 0; j < n; j += 1.0) {
    des_column_step(engine, ranks, m - j, n - j - 1.0, ncols,
                    /*blacs_combines=*/false);
  }
  // R assembly: every non-root rank reports its (usually empty) slice of
  // the leading N rows to rank 0 — the SPMD implementation's final gather.
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    engine.p2p(ranks[r], ranks[0], 0);
  }
  if (form_q) {
    // Distributed dorg2r: one allreduce of width n-i per reflector.
    const double m_loc = m / static_cast<double>(ranks.size());
    for (double i = n; i-- > 0.0;) {
      const double width = n - i;
      for (int r : ranks) engine.compute(r, 4.0 * m_loc * width, ncols);
      engine.allreduce(ranks, static_cast<std::size_t>(width * kDouble),
                       width, ncols);
    }
  }
}

void des_pdgeqrf(simgrid::DesEngine& engine, std::span<const int> ranks,
                 double m, double n, int nb, bool form_q) {
  QRGRID_CHECK(nb >= 1);
  const int ncols = static_cast<int>(n);
  const double p = static_cast<double>(ranks.size());
  for (double j0 = 0; j0 < n; j0 += nb) {
    const double jb = std::min<double>(nb, n - j0);
    const double m_active = m - j0;
    // Panel: the per-column PDGEQR2 pattern restricted to jb columns,
    // with ScaLAPACK's reduce+broadcast combines.
    for (double jj = 0; jj < jb; jj += 1.0) {
      des_column_step(engine, ranks, m_active - jj, jb - jj - 1.0, ncols,
                      /*blacs_combines=*/true);
    }
    // Blocked trailing update: W = T^T V^T C assembled with one combine
    // of jb x width, then the local rank-jb update.
    const double width = n - j0 - jb;
    if (width > 0.0) {
      const double m_loc = m_active / p;
      for (int r : ranks) {
        engine.compute(r, 4.0 * m_loc * jb * width, ncols);
      }
      engine.reduce_bcast(ranks,
                          static_cast<std::size_t>(jb * width * kDouble),
                          jb * width, ncols);
    }
  }
  if (form_q) {
    // PDORGQR costs the same leading term as the factorization
    // (Property 1); replay the same schedule once more.
    des_pdgeqrf(engine, ranks, m, n, nb, false);
  }
}

void des_tsqr(simgrid::DesEngine& engine,
              const std::vector<std::vector<int>>& domain_groups,
              const std::vector<int>& domain_cluster, double m, double n,
              TreeKind tree_kind, bool form_q) {
  const int d = static_cast<int>(domain_groups.size());
  QRGRID_CHECK(d >= 1);
  const double m_d = m / static_cast<double>(d);
  const int ncols = static_cast<int>(n);

  // Leaves: one ScaLAPACK (or LAPACK, for singleton groups) call per
  // domain — the QCG-TSQR twist of Section III.
  for (const auto& group : domain_groups) {
    if (group.size() == 1) {
      engine.compute(group[0], flops::geqrf(m_d, n), ncols);
    } else {
      des_pdgeqrf(engine, group, m_d, n, 64, false);
    }
  }

  auto root_of = [&](int domain) {
    return domain_groups[static_cast<std::size_t>(domain)][0];
  };

  // Single reduction over R factors. Combine kernels work on n x n
  // triangle pairs whose internal blocking is narrow (dtpqrt-style
  // ib ~ 64), so they run at the narrow-panel roofline rate rather than
  // the wide-panel rate of the leaf factorizations — this is what makes
  // "trading flops for intra-node communication" stop paying off at
  // N = 512 (paper Fig. 7b: 32 domains beat 64).
  const int combine_ncols = std::min(ncols, 128);
  const ReductionTree tree = ReductionTree::make(tree_kind, d, domain_cluster);
  const auto r_bytes = static_cast<std::size_t>(n * (n + 1) / 2 * kDouble);
  for (const auto& level : tree.levels()) {
    for (const Merge& merge : level.merges) {
      engine.p2p(root_of(merge.child), root_of(merge.parent), r_bytes);
      engine.compute(root_of(merge.parent), flops::tpqrt_tt(n),
                     combine_ncols);
    }
  }

  if (form_q) {
    // Top-down sweep: each merge applies its combine Q and ships the
    // child's coefficient block down, then every leaf applies its local Q.
    const auto c_bytes = static_cast<std::size_t>(n * n * kDouble);
    for (std::size_t l = tree.levels().size(); l-- > 0;) {
      for (const Merge& merge : tree.levels()[l].merges) {
        engine.compute(root_of(merge.parent), 2.0 * flops::tpqrt_tt(n),
                       ncols);
        engine.p2p(root_of(merge.parent), root_of(merge.child), c_bytes);
      }
    }
    for (const auto& group : domain_groups) {
      const double share =
          flops::orgqr(m_d, n) / static_cast<double>(group.size());
      for (int r : group) engine.compute(r, share, ncols);
      if (group.size() > 1) {
        engine.allreduce(group, c_bytes, 0.0, ncols);
      }
    }
  }
}

DomainLayout make_domain_layout(const simgrid::GridTopology& topology,
                                int domains_per_cluster) {
  QRGRID_CHECK(domains_per_cluster >= 1 ||
               domains_per_cluster == kOneDomainPerProcess);
  DomainLayout layout;
  for (int c = 0; c < topology.num_clusters(); ++c) {
    const int base = topology.cluster_rank_base(c);
    const int procs = topology.cluster(c).procs();
    // One singleton domain per rank: clusters keep their own proc counts.
    const int domains =
        domains_per_cluster == kOneDomainPerProcess ? procs
                                                    : domains_per_cluster;
    QRGRID_CHECK_MSG(domains <= procs,
                     "more domains than processes in cluster " << c);
    const auto blocks = partition_rows(procs, domains);
    for (const auto& blk : blocks) {
      std::vector<int> group;
      for (std::int64_t i = 0; i < blk.count; ++i) {
        group.push_back(base + static_cast<int>(blk.offset + i));
      }
      layout.groups.push_back(std::move(group));
      layout.domain_cluster.push_back(c);
    }
  }
  return layout;
}

DesRunResult run_des_scalapack(const simgrid::GridTopology& topology,
                               const model::Roofline& roofline, double m,
                               double n, int nb, bool form_q) {
  simgrid::DesEngine engine(&topology, roofline);
  std::vector<int> ranks(static_cast<std::size_t>(topology.total_procs()));
  for (int r = 0; r < topology.total_procs(); ++r) {
    ranks[static_cast<std::size_t>(r)] = r;
  }
  des_pdgeqrf(engine, ranks, m, n, nb, form_q);
  DesRunResult res;
  res.seconds = engine.makespan();
  res.gflops = model::useful_flops(m, n) / res.seconds / 1e9;
  res.total_messages = engine.messages();
  res.inter_cluster_messages =
      engine.messages_of(msg::LinkClass::kInterCluster);
  res.compute_utilization = engine.compute_utilization();
  return res;
}

DesRunResult run_des_tsqr(const simgrid::GridTopology& topology,
                          const model::Roofline& roofline,
                          int domains_per_cluster, double m, double n,
                          TreeKind tree_kind, bool form_q) {
  simgrid::DesEngine engine(&topology, roofline);
  DomainLayout layout = make_domain_layout(topology, domains_per_cluster);
  des_tsqr(engine, layout.groups, layout.domain_cluster, m, n, tree_kind,
           form_q);
  DesRunResult res;
  res.seconds = engine.makespan();
  res.gflops = model::useful_flops(m, n) / res.seconds / 1e9;
  res.total_messages = engine.messages();
  res.inter_cluster_messages =
      engine.messages_of(msg::LinkClass::kInterCluster);
  res.compute_utilization = engine.compute_utilization();
  return res;
}

}  // namespace qrgrid::core

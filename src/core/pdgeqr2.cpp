#include "core/pdgeqr2.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/flops.hpp"

namespace qrgrid::core {

namespace {

/// Local row range [lo, m_local) participating in the reflector tail of
/// global column j (global rows > j).
Index tail_start(Index row_offset, Index m_local, Index j) {
  const Index lo = j + 1 - row_offset;
  if (lo <= 0) return 0;
  if (lo >= m_local) return m_local;
  return lo;
}

}  // namespace

void pdgeqr2_panel(msg::Comm& comm, MatrixView a_local, Index row_offset,
                   Index col0, Index panel_cols, std::vector<double>& tau) {
  const Index m_local = a_local.rows();
  const Index n = a_local.cols();
  QRGRID_CHECK(col0 >= 0 && col0 + panel_cols <= n);
  QRGRID_CHECK(static_cast<Index>(tau.size()) >= col0 + panel_cols);
  const Index col_end = col0 + panel_cols;

  for (Index j = col0; j < col_end; ++j) {
    const bool i_own_pivot =
        row_offset <= j && j < row_offset + m_local;
    const Index pivot_local = j - row_offset;
    const Index lo = tail_start(row_offset, m_local, j);

    // Allreduce #1 (the per-column "normalization" reduction of Fig. 1):
    // [sum of squares of the tail, pivot value].
    std::vector<double> norm_msg = {0.0, 0.0};
    for (Index i = lo; i < m_local; ++i) {
      norm_msg[0] += a_local(i, j) * a_local(i, j);
    }
    if (i_own_pivot) norm_msg[1] = a_local(pivot_local, j);
    comm.compute(2.0 * static_cast<double>(m_local - lo), static_cast<int>(n));
    comm.allreduce_sum(norm_msg);

    const double xnorm = std::sqrt(norm_msg[0]);
    const double alpha = norm_msg[1];
    double tau_j = 0.0;
    double inv = 0.0;
    double beta = alpha;
    if (xnorm != 0.0) {
      beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
      tau_j = (beta - alpha) / beta;
      inv = 1.0 / (alpha - beta);
    }
    tau[static_cast<std::size_t>(j)] = tau_j;
    // Scale the local tail into reflector entries; the pivot owner writes
    // the R diagonal.
    for (Index i = lo; i < m_local; ++i) a_local(i, j) *= inv;
    if (i_own_pivot) a_local(pivot_local, j) = beta;

    if (j + 1 < col_end) {
      // Allreduce #2 (the per-column "update" reduction): w = v^T A_trail.
      const Index width = col_end - j - 1;
      std::vector<double> w(static_cast<std::size_t>(width), 0.0);
      for (Index k = 0; k < width; ++k) {
        double acc = 0.0;
        for (Index i = lo; i < m_local; ++i) {
          acc += a_local(i, j) * a_local(i, j + 1 + k);
        }
        if (i_own_pivot) acc += a_local(pivot_local, j + 1 + k);
        w[static_cast<std::size_t>(k)] = acc;
      }
      comm.compute(2.0 * static_cast<double>(m_local - lo) *
                       static_cast<double>(width),
                   static_cast<int>(n));
      comm.allreduce_sum(w);
      for (Index k = 0; k < width; ++k) {
        const double tw = tau_j * w[static_cast<std::size_t>(k)];
        if (tw == 0.0) continue;
        for (Index i = lo; i < m_local; ++i) {
          a_local(i, j + 1 + k) -= tw * a_local(i, j);
        }
        if (i_own_pivot) a_local(pivot_local, j + 1 + k) -= tw;
      }
      comm.compute(2.0 * static_cast<double>(m_local - lo) *
                       static_cast<double>(width),
                   static_cast<int>(n));
    }
  }
}

/// Gathers the upper-triangular rows owned by each rank into the n x n R
/// factor on rank 0 (rows arrive ordered by rank == by global row index).
Matrix assemble_r_on_root(msg::Comm& comm, ConstMatrixView a_local,
                          Index row_offset, Index n) {
  std::vector<double> mine;
  for (Index i = 0; i < a_local.rows(); ++i) {
    const Index gi = row_offset + i;
    if (gi >= n) break;
    for (Index jj = gi; jj < n; ++jj) mine.push_back(a_local(i, jj));
  }
  std::vector<double> all = comm.gather(mine, 0);
  Matrix r;
  if (comm.rank() == 0) {
    r = Matrix(n, n);
    std::size_t idx = 0;
    for (Index gi = 0; gi < n && idx < all.size(); ++gi) {
      for (Index jj = gi; jj < n; ++jj) r(gi, jj) = all[idx++];
    }
    QRGRID_CHECK(idx == all.size());
  }
  return r;
}

Pdgeqr2Factors pdgeqr2_factor(msg::Comm& comm, MatrixView a_local,
                              Index row_offset) {
  Pdgeqr2Factors f;
  f.n = a_local.cols();
  f.m_local = a_local.rows();
  f.row_offset = row_offset;
  f.local = a_local;
  f.tau.assign(static_cast<std::size_t>(f.n), 0.0);
  pdgeqr2_panel(comm, a_local, row_offset, 0, f.n, f.tau);
  f.r = assemble_r_on_root(comm, a_local, row_offset, f.n);
  return f;
}

Matrix pdgeqr2_form_explicit_q(msg::Comm& comm, const Pdgeqr2Factors& f) {
  const Index n = f.n;
  const Index m_local = f.m_local;
  const Index row_offset = f.row_offset;
  Matrix q(m_local, n);
  for (Index i = 0; i < m_local; ++i) {
    const Index gi = row_offset + i;
    if (gi < n) q(i, gi) = 1.0;
  }
  // Distributed dorg2r: apply H_i to the trailing columns in reverse, one
  // allreduce of w per reflector.
  for (Index i = n - 1; i >= 0; --i) {
    const double tau = f.tau[static_cast<std::size_t>(i)];
    if (tau == 0.0) continue;
    const bool i_own_pivot = row_offset <= i && i < row_offset + m_local;
    const Index pivot_local = i - row_offset;
    const Index lo = tail_start(row_offset, m_local, i);
    const Index width = n - i;
    std::vector<double> w(static_cast<std::size_t>(width), 0.0);
    for (Index k = 0; k < width; ++k) {
      double acc = 0.0;
      for (Index r = lo; r < m_local; ++r) {
        acc += f.local(r, i) * q(r, i + k);
      }
      if (i_own_pivot) acc += q(pivot_local, i + k);
      w[static_cast<std::size_t>(k)] = acc;
    }
    comm.compute(2.0 * static_cast<double>(m_local - lo) *
                     static_cast<double>(width),
                 static_cast<int>(n));
    comm.allreduce_sum(w);
    for (Index k = 0; k < width; ++k) {
      const double tw = tau * w[static_cast<std::size_t>(k)];
      if (tw == 0.0) continue;
      for (Index r = lo; r < m_local; ++r) {
        q(r, i + k) -= tw * f.local(r, i);
      }
      if (i_own_pivot) q(pivot_local, i + k) -= tw;
    }
    comm.compute(2.0 * static_cast<double>(m_local - lo) *
                     static_cast<double>(width),
                 static_cast<int>(n));
  }
  return q;
}

}  // namespace qrgrid::core

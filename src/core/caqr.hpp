// Communication-Avoiding QR for general (not just single-panel) matrices.
//
// CAQR is the (factor panel) / (update trailing matrix) algorithm whose
// panel kernel is TSQR (paper §II-C): the M x N matrix is distributed as
// row blocks; each width-b panel is factored with one TSQR reduction, and
// the trailing matrix is updated by applying the panel's implicit Q^T —
// leaf ormqr on every rank plus one up-and-down tree sweep per panel.
// This is the "first step towards the factorization of general matrices
// on the grid" the paper's conclusion announces.
//
// Layout restriction (documented in DESIGN.md): rank 0's row block must
// contain all N pivot rows (m_local(rank 0) >= N), the natural regime for
// the tall-skinny matrices this library targets.
#pragma once

#include <vector>

#include "core/tsqr.hpp"

namespace qrgrid::core {

struct CaqrOptions {
  Index panel_width = 32;
  TsqrOptions tsqr;  ///< tree shape used by every panel reduction
};

struct CaqrFactors {
  Index n = 0;
  Index m_local = 0;
  Index row_offset = 0;
  /// Per-panel implicit factors; leaf views point into the factored
  /// matrix, which must outlive this object.
  std::vector<TsqrFactors> panels;
  std::vector<Index> panel_starts;
  Matrix r;  ///< N x N upper triangular, on rank 0 only
};

/// Factors the distributed matrix in place. Collective.
CaqrFactors caqr_factor(msg::Comm& comm, MatrixView a_local, Index row_offset,
                        const CaqrOptions& options);

/// Materializes this rank's m_local x N block of the explicit Q.
Matrix caqr_form_explicit_q(msg::Comm& comm, const CaqrFactors& factors);

}  // namespace qrgrid::core

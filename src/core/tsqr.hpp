// TSQR — Tall and Skinny QR over a message-passing communicator.
//
// The M x N input is distributed as contiguous row blocks, one *domain*
// per communicator rank. Each rank factors its local block with blocked
// Householder QR, then the R factors are reduced over a configurable tree
// (flat / binary / grid-hierarchical): at every merge the child ships its
// n x n triangle to the parent, which runs the structured stacked-R kernel
// (tpqrt_tt). One reduction — log2(P) messages on the critical path —
// replaces ScaLAPACK's per-column allreduces.
//
// The orthogonal factor is kept implicit (leaf reflectors + per-merge
// combine reflectors); tsqr_form_explicit_q materializes the local M x N
// block of Q, and tsqr_apply_q / tsqr_apply_qt apply Q or Q^T to a
// distributed block (the building block CAQR uses for trailing updates).
#pragma once

#include <optional>
#include <vector>

#include "core/tree.hpp"
#include "linalg/matrix.hpp"
#include "msg/comm.hpp"

namespace qrgrid::core {

struct TsqrOptions {
  TreeKind tree = TreeKind::kBinary;
  /// Cluster of each communicator rank (for kGridHierarchical). Empty
  /// means "single cluster".
  std::vector<int> rank_cluster;
  /// If true, broadcast the final R from the root to every rank.
  bool replicate_r = false;
};

/// Implicit factored form produced by tsqr_factor. The leaf reflectors
/// live in the caller's matrix (overwritten in place); combine reflectors
/// are owned here. Valid only while the factored matrix is alive.
struct TsqrFactors {
  Index n = 0;             ///< column count
  Index m_local = 0;       ///< local row count
  MatrixView leaf;         ///< local block, overwritten with V (and R pre-merge)
  std::vector<double> leaf_tau;

  /// One entry per merge where this rank was the parent, in level order.
  struct CombineNode {
    int level = 0;
    int child = 0;               ///< comm rank that sent its R
    Matrix v2;                   ///< n x n upper-triangular reflector tails
    std::vector<double> tau;
  };
  std::vector<CombineNode> combines;

  /// The level at which this rank sent its R upward (and stopped merging),
  /// plus the parent it sent to; nullopt for the root.
  std::optional<std::pair<int, int>> sent_at;  ///< (level, parent)

  /// Final R: n x n upper triangular, valid on the root (and everywhere if
  /// TsqrOptions::replicate_r was set).
  Matrix r;
};

/// Factors the distributed tall-skinny matrix. `a_local` (m_local x n,
/// m_local >= n on every rank) is overwritten with the leaf reflectors.
/// Collective over `comm`.
TsqrFactors tsqr_factor(msg::Comm& comm, MatrixView a_local,
                        const TsqrOptions& options);

/// Materializes this rank's m_local x n block of the explicit Q.
/// Collective over the same communicator used to factor.
Matrix tsqr_form_explicit_q(msg::Comm& comm, const TsqrFactors& factors);

/// Applies Q^T to a distributed block C (m_local x p per rank, same row
/// distribution as the factored matrix): on return, the leading n rows of
/// the root's block hold (Q^T C)(0:n, :), i.e. the projection onto the
/// Q basis; remaining rows hold the orthogonal complement part.
void tsqr_apply_qt(msg::Comm& comm, const TsqrFactors& factors,
                   MatrixView c_local);

/// Applies Q to a distributed block laid out like tsqr_apply_qt's output.
void tsqr_apply_q(msg::Comm& comm, const TsqrFactors& factors,
                  MatrixView c_local);

/// Packs/unpacks an n x n upper triangle into n(n+1)/2 doubles (the wire
/// format of the R reduction).
std::vector<double> pack_upper_triangle(ConstMatrixView r);
void unpack_upper_triangle(const std::vector<double>& packed, MatrixView r);

}  // namespace qrgrid::core

// ScaLAPACK-style panel factorization baseline (PDGEQR2 analog).
//
// The M x N matrix is distributed as contiguous row blocks. For every
// column the algorithm performs one allreduce to assemble the column norm
// (the "normalization" reduction of the paper's Fig. 1) and one allreduce
// of w = v^T A_trailing for the rank-1 update — 2N allreduces in total,
// i.e. 2 N log2(P) critical-path messages versus TSQR's log2(P). This is
// exactly the communication pattern the paper identifies as the
// grid-performance bottleneck; it is implemented here as the head-to-head
// baseline (and as the panel kernel of the blocked pdgeqrf baseline).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "msg/comm.hpp"

namespace qrgrid::core {

struct Pdgeqr2Factors {
  Index n = 0;
  Index m_local = 0;
  Index row_offset = 0;      ///< global index of this rank's first row
  MatrixView local;          ///< reflectors stored in place (R rows on owners)
  std::vector<double> tau;   ///< all N scalars, replicated on every rank
  Matrix r;                  ///< n x n upper triangular, on rank 0 only
};

/// Factors the distributed matrix; `a_local` is overwritten with the
/// reflector tails (and the R rows on the ranks owning global rows < N).
/// `row_offset` is the global index of this rank's first row; blocks must
/// be contiguous and ordered by rank. Collective.
Pdgeqr2Factors pdgeqr2_factor(msg::Comm& comm, MatrixView a_local,
                              Index row_offset);

/// Materializes this rank's m_local x n block of the explicit Q
/// (distributed Householder accumulation, one allreduce per column).
Matrix pdgeqr2_form_explicit_q(msg::Comm& comm, const Pdgeqr2Factors& f);

/// Panel kernel shared with the blocked pdgeqrf: factors the columns
/// [col0, col0 + panel_cols) of the distributed matrix in place (global
/// column c's reflector pivots on global row c), updating only within the
/// panel. tau[col0 .. col0+panel_cols) is filled; tau must already have
/// size >= col0 + panel_cols.
void pdgeqr2_panel(msg::Comm& comm, MatrixView a_local, Index row_offset,
                   Index col0, Index panel_cols, std::vector<double>& tau);

/// Gathers the upper-triangular rows of the factored distributed matrix
/// into the n x n R factor on rank 0 (empty elsewhere). Collective.
Matrix assemble_r_on_root(msg::Comm& comm, ConstMatrixView a_local,
                          Index row_offset, Index n);

}  // namespace qrgrid::core

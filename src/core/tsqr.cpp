#include "core/tsqr.hpp"

#include <algorithm>

#include "linalg/flops.hpp"
#include "linalg/qr.hpp"
#include "linalg/tpqrt.hpp"

namespace qrgrid::core {

namespace {

// Tag bases for the three collective phases (well below the runtime's
// reserved collective range). The level index is added so deep trees keep
// distinct matching keys.
constexpr int kTagReduce = 1000;
constexpr int kTagQDown = 2000;
constexpr int kTagApplyUp = 3000;
constexpr int kTagApplyBack = 4000;

}  // namespace

std::vector<double> pack_upper_triangle(ConstMatrixView r) {
  const Index n = r.rows();
  QRGRID_CHECK(r.cols() == n);
  std::vector<double> packed;
  packed.reserve(static_cast<std::size_t>(n * (n + 1) / 2));
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) packed.push_back(r(i, j));
  }
  return packed;
}

void unpack_upper_triangle(const std::vector<double>& packed, MatrixView r) {
  const Index n = r.rows();
  QRGRID_CHECK(r.cols() == n);
  QRGRID_CHECK(static_cast<Index>(packed.size()) == n * (n + 1) / 2);
  set_zero(r);
  std::size_t idx = 0;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) r(i, j) = packed[idx++];
  }
}

TsqrFactors tsqr_factor(msg::Comm& comm, MatrixView a_local,
                        const TsqrOptions& options) {
  const Index m = a_local.rows();
  const Index n = a_local.cols();
  QRGRID_CHECK_MSG(m >= n, "TSQR requires m_local >= n; got " << m << " x "
                                                              << n);
  TsqrFactors f;
  f.n = n;
  f.m_local = m;
  f.leaf = a_local;

  // Leaf factorization: blocked Householder QR of the local block.
  geqrf(a_local, f.leaf_tau);
  comm.compute(flops::geqrf(static_cast<double>(m), static_cast<double>(n)),
               static_cast<int>(n));

  // Working copy of my current R factor (the leaf's upper triangle).
  Matrix r_mine = extract_r(a_local);
  // extract_r returns k x n with k = min(m, n) = n here; make it square.
  QRGRID_CHECK(r_mine.rows() == n && r_mine.cols() == n);

  const ReductionTree tree =
      ReductionTree::make(options.tree, comm.size(), options.rank_cluster);

  const int me = comm.rank();
  for (int level = 0; level < tree.depth(); ++level) {
    for (const Merge& merge :
         tree.levels()[static_cast<std::size_t>(level)].merges) {
      if (merge.child == me) {
        comm.send(merge.parent, kTagReduce + level,
                  pack_upper_triangle(r_mine.view()));
        f.sent_at = std::make_pair(level, merge.parent);
      } else if (merge.parent == me) {
        std::vector<double> packed = comm.recv(merge.child, kTagReduce + level);
        TsqrFactors::CombineNode node;
        node.level = level;
        node.child = merge.child;
        node.v2 = Matrix(n, n);
        unpack_upper_triangle(packed, node.v2.view());
        // Stack [R_mine; R_child] and annihilate the lower triangle; on
        // return v2 holds the reflector tails.
        tpqrt_tt(r_mine.view(), node.v2.view(), node.tau);
        comm.compute(flops::tpqrt_tt(static_cast<double>(n)),
                     static_cast<int>(n));
        f.combines.push_back(std::move(node));
      }
    }
  }

  if (me == tree.root()) {
    f.r = std::move(r_mine);
  }
  if (options.replicate_r) {
    std::vector<double> packed;
    if (me == tree.root()) packed = pack_upper_triangle(f.r.view());
    comm.bcast(packed, tree.root());
    if (me != tree.root()) {
      f.r = Matrix(n, n);
      unpack_upper_triangle(packed, f.r.view());
    }
  }
  return f;
}

Matrix tsqr_form_explicit_q(msg::Comm& comm, const TsqrFactors& factors) {
  const Index n = factors.n;
  const Index m = factors.m_local;
  const int me = comm.rank();

  // Seed: the root's coefficient block is the identity; everyone else
  // receives theirs from their parent on the way down.
  Matrix c(n, n);
  if (!factors.sent_at.has_value() && me == 0) {
    for (Index i = 0; i < n; ++i) c(i, i) = 1.0;
  }

  // Walk the tree top-down (reverse level order). At each merge the parent
  // splits its coefficients into (top, bottom) through the combine Q and
  // ships the bottom half to the child.
  // Collect this rank's events ordered by descending level.
  struct Event {
    int level;
    bool is_parent;
    const TsqrFactors::CombineNode* node;  // when is_parent
    int parent;                            // when !is_parent
  };
  std::vector<Event> events;
  for (const auto& node : factors.combines) {
    events.push_back(Event{node.level, true, &node, -1});
  }
  if (factors.sent_at.has_value()) {
    events.push_back(
        Event{factors.sent_at->first, false, nullptr, factors.sent_at->second});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.level > b.level; });

  for (const Event& ev : events) {
    if (ev.is_parent) {
      Matrix c2(n, n);
      tpmqrt_tt(Trans::No, ev.node->v2.view(), ev.node->tau, c.view(),
                c2.view());
      // Charged at the structured cost (twice the combine, Table II's
      // 4/3 n^3 per merge): the bottom block starts zero, so a tuned
      // kernel touches only the triangular profiles.
      comm.compute(2.0 * flops::tpqrt_tt(static_cast<double>(n)),
                   static_cast<int>(n));
      comm.send(ev.node->child, kTagQDown + ev.level,
                std::span<const double>(c2.data(),
                                        static_cast<std::size_t>(n * n)));
    } else {
      std::vector<double> buf = comm.recv(ev.parent, kTagQDown + ev.level);
      QRGRID_CHECK(static_cast<Index>(buf.size()) == n * n);
      std::copy(buf.begin(), buf.end(), c.data());
    }
  }

  // Leaf: Q_local = Q_leaf * [C; 0].
  Matrix q_local(m, n);
  copy(c.view(), q_local.block(0, 0, n, n));
  ormqr_left(Trans::No, factors.leaf, factors.leaf_tau, q_local.view());
  // Charged at the dorgqr cost (2 m n^2 - 2/3 n^3): the bottom m-n rows of
  // the seed are zero, which a structured compact-WY application exploits;
  // this is what makes Q+R cost twice R alone (paper Property 1).
  comm.compute(flops::orgqr(static_cast<double>(m), static_cast<double>(n)),
               static_cast<int>(n));
  return q_local;
}

namespace {

/// Shared implementation of Q^T C (forward) and Q C (backward) on a
/// distributed block.
void tsqr_apply(msg::Comm& comm, const TsqrFactors& factors, MatrixView c,
                Trans trans) {
  const Index n = factors.n;
  const Index p = c.cols();
  QRGRID_CHECK(c.rows() == factors.m_local);
  QRGRID_CHECK_MSG(c.rows() >= n, "apply needs at least n local rows");
  const bool forward = trans == Trans::Yes;  // Q^T: leaf first, then up-tree

  auto leaf_stage = [&] {
    ormqr_left(trans, factors.leaf, factors.leaf_tau, c);
    comm.compute(flops::ormqr(static_cast<double>(factors.m_local),
                              static_cast<double>(n),
                              static_cast<double>(p)),
                 static_cast<int>(n));
  };

  // Tree events ordered by level (ascending for Q^T, descending for Q).
  struct Event {
    int level;
    bool is_parent;
    const TsqrFactors::CombineNode* node;
    int parent;
  };
  std::vector<Event> events;
  for (const auto& node : factors.combines) {
    events.push_back(Event{node.level, true, &node, -1});
  }
  if (factors.sent_at.has_value()) {
    events.push_back(
        Event{factors.sent_at->first, false, nullptr, factors.sent_at->second});
  }
  std::sort(events.begin(), events.end(),
            [&](const Event& a, const Event& b) {
              return forward ? a.level < b.level : a.level > b.level;
            });

  auto tree_stage = [&] {
    MatrixView c_top = c.block(0, 0, n, p);
    for (const Event& ev : events) {
      if (ev.is_parent) {
        std::vector<double> buf =
            comm.recv(ev.node->child, kTagApplyUp + ev.level);
        QRGRID_CHECK(static_cast<Index>(buf.size()) == n * p);
        Matrix c_child(n, p);
        std::copy(buf.begin(), buf.end(), c_child.data());
        tpmqrt_tt(trans, ev.node->v2.view(), ev.node->tau, c_top,
                  c_child.view());
        comm.compute(flops::tpmqrt_tt(static_cast<double>(n),
                                      static_cast<double>(p)),
                     static_cast<int>(n));
        comm.send(ev.node->child, kTagApplyBack + ev.level,
                  std::span<const double>(c_child.data(),
                                          static_cast<std::size_t>(n * p)));
      } else {
        // Ship my top rows to the parent, get the updated block back.
        Matrix mine = Matrix::copy_of(c_top);
        comm.send(ev.parent, kTagApplyUp + ev.level,
                  std::span<const double>(mine.data(),
                                          static_cast<std::size_t>(n * p)));
        std::vector<double> buf = comm.recv(ev.parent, kTagApplyBack + ev.level);
        QRGRID_CHECK(static_cast<Index>(buf.size()) == n * p);
        std::copy(buf.begin(), buf.end(), mine.data());
        copy(mine.view(), c_top);
      }
    }
  };

  if (forward) {
    leaf_stage();
    tree_stage();
  } else {
    tree_stage();
    leaf_stage();
  }
}

}  // namespace

void tsqr_apply_qt(msg::Comm& comm, const TsqrFactors& factors,
                   MatrixView c_local) {
  tsqr_apply(comm, factors, c_local, Trans::Yes);
}

void tsqr_apply_q(msg::Comm& comm, const TsqrFactors& factors,
                  MatrixView c_local) {
  tsqr_apply(comm, factors, c_local, Trans::No);
}

}  // namespace qrgrid::core

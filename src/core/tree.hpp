// Reduction trees for the TSQR allreduce over R factors.
//
// A ReductionTree describes, level by level, which domain merges into
// which: at each Merge the child sends its current R to the parent, which
// combines the two triangles (tpqrt_tt) and carries the result upward.
// Domain 0 is always the root.
//
// Three shapes matter in the paper:
//  - Flat: the sequential/out-of-core variant — domain 0 absorbs every
//    other domain one at a time (D-1 levels).
//  - Binary: the classic parallel tree of Demmel et al. (log2(D) levels).
//  - GridHierarchical: the paper's contribution — a binary tree *inside*
//    each cluster followed by a binary tree *across* clusters, so the
//    number of inter-cluster messages is sites-1 regardless of N or of
//    the per-cluster domain count (Fig. 2 vs Fig. 1).
#pragma once

#include <vector>

#include "common/check.hpp"

namespace qrgrid::core {

enum class TreeKind { kFlat, kBinary, kGridHierarchical };

struct Merge {
  int parent = 0;  ///< domain that receives and combines
  int child = 0;   ///< domain that sends its R and goes idle
};

struct TreeLevel {
  std::vector<Merge> merges;
};

class ReductionTree {
 public:
  int num_domains() const { return num_domains_; }
  int root() const { return 0; }
  const std::vector<TreeLevel>& levels() const { return levels_; }

  /// Flat (sequential) reduction: D-1 levels of one merge each.
  static ReductionTree flat(int num_domains);

  /// Binary reduction over domain indices (stride doubling).
  static ReductionTree binary(int num_domains);

  /// Binary within each cluster, then binary across cluster roots.
  /// `domain_cluster[d]` gives the cluster of domain d; domains of one
  /// cluster need not be contiguous. Cluster roots are the lowest-index
  /// domain of each cluster, and the grid root is domain 0's cluster root
  /// remapped to domain 0's position (we require domain 0 in the first
  /// non-empty cluster so the root is domain 0).
  static ReductionTree grid_hierarchical(const std::vector<int>& domain_cluster);

  /// Builds the requested shape. For kGridHierarchical, `domain_cluster`
  /// must be provided; the other shapes ignore it.
  static ReductionTree make(TreeKind kind, int num_domains,
                            const std::vector<int>& domain_cluster = {});

  /// Number of merges whose parent and child live in different clusters —
  /// the inter-cluster message count of the reduction (Figs. 1-2 argue
  /// the tuned tree minimizes exactly this quantity).
  int inter_cluster_merges(const std::vector<int>& domain_cluster) const;

  /// Depth (number of levels).
  int depth() const { return static_cast<int>(levels_.size()); }

 private:
  int num_domains_ = 0;
  std::vector<TreeLevel> levels_;
};

/// Splits `total_rows` into `parts` contiguous row blocks as evenly as
/// possible; returns each part's (offset, count).
struct RowBlock {
  std::int64_t offset = 0;
  std::int64_t count = 0;
};
std::vector<RowBlock> partition_rows(std::int64_t total_rows, int parts);

}  // namespace qrgrid::core

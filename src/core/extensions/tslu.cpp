#include "core/extensions/tslu.hpp"

#include <algorithm>

#include "linalg/lu.hpp"

namespace qrgrid::core {

namespace {

constexpr int kTagTslu = 5000;

/// A candidate set: n rows (with their global indices) competing to be
/// pivots. Wire format: [ids (n doubles) | rows column-major (n*n)].
struct Candidate {
  std::vector<Index> ids;
  Matrix rows;  // n x n
};

std::vector<double> pack(const Candidate& c) {
  const Index n = c.rows.rows();
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(n + n * n));
  for (Index i = 0; i < n; ++i) {
    buf.push_back(static_cast<double>(c.ids[static_cast<std::size_t>(i)]));
  }
  buf.insert(buf.end(), c.rows.data(),
             c.rows.data() + static_cast<std::size_t>(n * n));
  return buf;
}

Candidate unpack(const std::vector<double>& buf, Index n) {
  QRGRID_CHECK(static_cast<Index>(buf.size()) == n + n * n);
  Candidate c;
  c.ids.resize(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    c.ids[static_cast<std::size_t>(i)] =
        static_cast<Index>(buf[static_cast<std::size_t>(i)]);
  }
  c.rows = Matrix(n, n);
  std::copy(buf.begin() + static_cast<std::ptrdiff_t>(n), buf.end(),
            c.rows.data());
  return c;
}

/// Partial-pivoted LU on a copy of `block`; returns the indices (into
/// block's rows) of the n winning pivot rows, in pivot order.
std::vector<Index> select_pivot_rows(ConstMatrixView block, bool* ok) {
  Matrix work = Matrix::copy_of(block);
  std::vector<Index> ipiv;
  if (!getrf(work.view(), ipiv)) *ok = false;
  std::vector<Index> order(static_cast<std::size_t>(block.rows()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<Index>(i);
  }
  apply_pivots(ipiv, order);
  order.resize(static_cast<std::size_t>(block.cols()));
  return order;
}

}  // namespace

TsluResult tslu_panel(msg::Comm& comm, ConstMatrixView a_local,
                      Index row_offset, TreeKind tree,
                      const std::vector<int>& rank_cluster) {
  const Index m = a_local.rows();
  const Index n = a_local.cols();
  QRGRID_CHECK_MSG(m >= n, "TSLU requires m_local >= n");

  TsluResult result;

  // Leaf round: partial pivoting over the local block.
  Candidate mine;
  {
    std::vector<Index> winners = select_pivot_rows(a_local, &result.ok);
    mine.ids.resize(static_cast<std::size_t>(n));
    mine.rows = Matrix(n, n);
    for (Index i = 0; i < n; ++i) {
      const Index local_row = winners[static_cast<std::size_t>(i)];
      mine.ids[static_cast<std::size_t>(i)] = row_offset + local_row;
      for (Index j = 0; j < n; ++j) mine.rows(i, j) = a_local(local_row, j);
    }
  }

  // Tournament over the same reduction trees TSQR uses.
  const ReductionTree rtree =
      ReductionTree::make(tree, comm.size(), rank_cluster);
  const int me = comm.rank();
  for (int level = 0; level < rtree.depth(); ++level) {
    for (const Merge& merge :
         rtree.levels()[static_cast<std::size_t>(level)].merges) {
      if (merge.child == me) {
        comm.send(merge.parent, kTagTslu + level, pack(mine));
      } else if (merge.parent == me) {
        Candidate theirs =
            unpack(comm.recv(merge.child, kTagTslu + level), n);
        // Stack the two candidate sets and re-run the playoff.
        Matrix stacked(2 * n, n);
        copy(mine.rows.view(), stacked.block(0, 0, n, n));
        copy(theirs.rows.view(), stacked.block(n, 0, n, n));
        std::vector<Index> winners =
            select_pivot_rows(stacked.view(), &result.ok);
        Candidate next;
        next.ids.resize(static_cast<std::size_t>(n));
        next.rows = Matrix(n, n);
        for (Index i = 0; i < n; ++i) {
          const Index s = winners[static_cast<std::size_t>(i)];
          next.ids[static_cast<std::size_t>(i)] =
              s < n ? mine.ids[static_cast<std::size_t>(s)]
                    : theirs.ids[static_cast<std::size_t>(s - n)];
          for (Index j = 0; j < n; ++j) {
            next.rows(i, j) = s < n ? mine.rows(s, j) : theirs.rows(s - n, j);
          }
        }
        mine = std::move(next);
      }
    }
  }

  if (me == rtree.root()) {
    result.pivot_rows = mine.ids;
    // Final LU of the winning block yields the panel's U factor.
    Matrix work = Matrix::copy_of(mine.rows.view());
    std::vector<Index> ipiv;
    if (!getrf(work.view(), ipiv)) result.ok = false;
    result.u = Matrix(n, n);
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i <= j; ++i) result.u(i, j) = work(i, j);
    }
    // Track the final permutation so pivot_rows matches U's row order.
    apply_pivots(ipiv, result.pivot_rows);
  }
  return result;
}

}  // namespace qrgrid::core

// Communication-avoiding CholeskyQR on distributed row blocks.
//
// The paper's conclusion notes the TSQR construction "can be (trivially)
// extended to ... Cholesky factorization": like TSQR, CholeskyQR needs a
// single allreduce (of the Gram matrix) regardless of the column count,
// but it squares the condition number. CholeskyQR2 (iterations = 2) runs
// the process twice to recover orthogonality on moderately conditioned
// inputs. Both live here as the extension + as stability foils for TSQR.
#pragma once

#include "linalg/matrix.hpp"
#include "msg/comm.hpp"

namespace qrgrid::core {

struct TsCholeskyResult {
  Matrix q_local;  ///< this rank's m_local x n block of Q
  Matrix r;        ///< n x n upper triangular (replicated on all ranks)
  bool ok = true;  ///< false if a Gram matrix was not numerically SPD
};

/// Distributed CholeskyQR: one Gram allreduce + redundant Cholesky +
/// local triangular solve per iteration. Collective.
TsCholeskyResult tscholesky_qr(msg::Comm& comm, ConstMatrixView a_local,
                               int iterations = 1);

}  // namespace qrgrid::core

// TSLU — tournament-pivoting panel factorization (CALU's panel kernel).
//
// The paper's conclusion: "the work and conclusion we have reached here
// for TSQR/CAQR can be (trivially) extended to TSLU/CALU". TSLU selects N
// good pivot rows from a tall panel with a single reduction: each domain
// proposes its N partial-pivoting rows, and merges run partial-pivoted LU
// on stacked 2N x N candidate blocks, keeping the winners — same tree,
// same message count as TSQR.
#pragma once

#include <vector>

#include "core/tree.hpp"
#include "linalg/matrix.hpp"
#include "msg/comm.hpp"

namespace qrgrid::core {

struct TsluResult {
  /// Global indices of the N selected pivot rows (valid on the root).
  std::vector<Index> pivot_rows;
  /// U factor of the selected pivot block (n x n, valid on the root).
  Matrix u;
  bool ok = true;  ///< false if some LU met an exactly-zero pivot
};

/// Runs the tournament over the distributed panel (m_local x n row block
/// per rank, global row index of the first local row given by
/// `row_offset`). Collective.
TsluResult tslu_panel(msg::Comm& comm, ConstMatrixView a_local,
                      Index row_offset, TreeKind tree = TreeKind::kBinary,
                      const std::vector<int>& rank_cluster = {});

}  // namespace qrgrid::core

#include "core/extensions/tscholesky.hpp"

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/flops.hpp"

namespace qrgrid::core {

TsCholeskyResult tscholesky_qr(msg::Comm& comm, ConstMatrixView a_local,
                               int iterations) {
  QRGRID_CHECK(iterations >= 1);
  const Index m = a_local.rows();
  const Index n = a_local.cols();

  TsCholeskyResult out;
  out.q_local = Matrix::copy_of(a_local);
  out.r = Matrix::identity(n);

  for (int it = 0; it < iterations; ++it) {
    // Local Gram contribution, reduced across all ranks (packed upper).
    Matrix gram(n, n);
    syrk_upper_at_a(1.0, out.q_local.view(), 0.0, gram.view());
    comm.compute(flops::syrk(static_cast<double>(m), static_cast<double>(n)),
                 static_cast<int>(n));
    std::vector<double> packed;
    packed.reserve(static_cast<std::size_t>(n * (n + 1) / 2));
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i <= j; ++i) packed.push_back(gram(i, j));
    }
    comm.allreduce_sum(packed);
    std::size_t idx = 0;
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i <= j; ++i) gram(i, j) = packed[idx++];
    }

    // Redundant Cholesky on every rank (n x n is tiny next to m x n).
    if (!potrf_upper(gram.view())) {
      out.ok = false;
      return out;
    }
    zero_below_diagonal(gram.view());
    comm.compute(flops::potrf(static_cast<double>(n)), static_cast<int>(n));

    // Q := Q * R_it^{-1}; accumulate R := R_it * R.
    trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, gram.view(),
         out.q_local.view());
    comm.compute(flops::trsm(static_cast<double>(m), static_cast<double>(n)),
                 static_cast<int>(n));
    Matrix r_new(n, n);
    gemm(Trans::No, Trans::No, 1.0, gram.view(), out.r.view(), 0.0,
         r_new.view());
    out.r = std::move(r_new);
  }
  return out;
}

}  // namespace qrgrid::core

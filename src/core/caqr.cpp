#include "core/caqr.hpp"

#include <algorithm>

namespace qrgrid::core {

CaqrFactors caqr_factor(msg::Comm& comm, MatrixView a_local, Index row_offset,
                        const CaqrOptions& options) {
  const Index m_local = a_local.rows();
  const Index n = a_local.cols();
  const Index b = options.panel_width;
  QRGRID_CHECK(b >= 1);
  const bool am_root = comm.rank() == 0;
  if (am_root) {
    QRGRID_CHECK_MSG(row_offset == 0 && m_local >= n,
                     "rank 0 must own all pivot rows (m_local >= N)");
  }

  CaqrFactors f;
  f.n = n;
  f.m_local = m_local;
  f.row_offset = row_offset;
  if (am_root) f.r = Matrix(n, n);

  for (Index j0 = 0; j0 < n; j0 += b) {
    const Index jb = std::min(b, n - j0);
    // Active block: rank 0 drops the rows already frozen into R; other
    // ranks keep all their rows (they sit strictly below every pivot).
    const Index r0 = am_root ? j0 : 0;
    MatrixView panel = a_local.block(r0, j0, m_local - r0, jb);
    TsqrFactors pf = tsqr_factor(comm, panel, options.tsqr);
    if (am_root) {
      copy(pf.r.view(), f.r.block(j0, j0, jb, jb));
    }

    const Index width = n - j0 - jb;
    if (width > 0) {
      MatrixView trailing = a_local.block(r0, j0 + jb, m_local - r0, width);
      tsqr_apply_qt(comm, pf, trailing);
      if (am_root) {
        // The projected top rows are the finished R block for this panel.
        copy(trailing.block(0, 0, jb, width),
             f.r.block(j0, j0 + jb, jb, width));
      }
    }
    f.panel_starts.push_back(j0);
    f.panels.push_back(std::move(pf));
  }
  return f;
}

Matrix caqr_form_explicit_q(msg::Comm& comm, const CaqrFactors& factors) {
  const Index n = factors.n;
  const Index m_local = factors.m_local;
  const bool am_root = comm.rank() == 0;

  // Q = Q_0 Q_1 ... Q_{K-1} applied to the leading N columns of I.
  Matrix q(m_local, n);
  for (Index i = 0; i < m_local; ++i) {
    const Index gi = factors.row_offset + i;
    if (gi < n) q(i, gi) = 1.0;
  }
  for (std::size_t k = factors.panels.size(); k-- > 0;) {
    const Index j0 = factors.panel_starts[k];
    const Index r0 = am_root ? j0 : 0;
    MatrixView block = q.block(r0, 0, m_local - r0, n);
    tsqr_apply_q(comm, factors.panels[k], block);
  }
  return q;
}

}  // namespace qrgrid::core

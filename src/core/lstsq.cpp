#include "core/lstsq.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace qrgrid::core {

LeastSquaresResult tsqr_least_squares(msg::Comm& comm, MatrixView a_local,
                                      MatrixView b_local,
                                      const TsqrOptions& options) {
  const Index n = a_local.cols();
  const Index nrhs = b_local.cols();
  QRGRID_CHECK(b_local.rows() == a_local.rows());

  LeastSquaresResult out;

  // Factor A and rotate b into the Q basis. After apply_qt the root's
  // leading n rows of b hold Q^T b's coefficient block; everything else
  // (on every rank) belongs to the residual.
  TsqrFactors factors = tsqr_factor(comm, a_local, options);
  tsqr_apply_qt(comm, factors, b_local);

  // Residual: sum of squares of all rows of Q^T b except the root's
  // leading n — computed once, shared via an allreduce.
  std::vector<double> ss(static_cast<std::size_t>(nrhs), 0.0);
  const Index skip = comm.rank() == 0 ? n : 0;
  for (Index j = 0; j < nrhs; ++j) {
    double acc = 0.0;
    for (Index i = skip; i < b_local.rows(); ++i) {
      acc += b_local(i, j) * b_local(i, j);
    }
    ss[static_cast<std::size_t>(j)] = acc;
  }
  comm.allreduce_sum(ss);
  out.residual_norms.resize(static_cast<std::size_t>(nrhs));
  for (Index j = 0; j < nrhs; ++j) {
    out.residual_norms[static_cast<std::size_t>(j)] =
        std::sqrt(ss[static_cast<std::size_t>(j)]);
  }

  // Solve R x = (Q^T b)(0:n, :) on the root, then broadcast.
  std::vector<double> payload;
  if (comm.rank() == 0) {
    bool singular = false;
    for (Index i = 0; i < n; ++i) {
      if (factors.r(i, i) == 0.0) singular = true;
    }
    Matrix x(n, nrhs);
    if (!singular) {
      copy(b_local.block(0, 0, n, nrhs), x.view());
      trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0,
           factors.r.view(), x.view());
    }
    payload.assign(x.data(), x.data() + static_cast<std::size_t>(n * nrhs));
    payload.push_back(singular ? 0.0 : 1.0);
  }
  comm.bcast(payload, 0);
  QRGRID_CHECK(static_cast<Index>(payload.size()) == n * nrhs + 1);
  out.ok = payload.back() != 0.0;
  out.x = Matrix(n, nrhs);
  std::copy(payload.begin(), payload.end() - 1, out.x.data());
  return out;
}

}  // namespace qrgrid::core

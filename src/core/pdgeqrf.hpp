// Blocked ScaLAPACK-style QR (PDGEQRF analog, NB-wide panels).
//
// The production baseline of the paper's Fig. 4: panels are factored with
// the per-column PDGEQR2 kernel (two allreduces per column), then the
// trailing matrix is updated with the compact-WY block reflector, which
// costs two more allreduces per panel (the V^T V Gram block for T, and
// W = V^T C). The default NB = 64 matches the paper's tuning (§II-B);
// the blocking only pays off when there are trailing columns to update,
// i.e. for N > NB — on a single skinny panel PDGEQRF degenerates to
// PDGEQR2, which is exactly why ScaLAPACK struggles on TS matrices.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "msg/comm.hpp"

namespace qrgrid::core {

struct PdgeqrfFactors {
  Index n = 0;
  Index m_local = 0;
  Index row_offset = 0;
  Index nb = 64;
  MatrixView local;            ///< reflectors in place (R rows on owners)
  std::vector<double> tau;     ///< replicated on every rank
  std::vector<Matrix> panel_t; ///< per-panel T factors (replicated)
  Matrix r;                    ///< n x n upper triangular, rank 0 only
};

/// Factors the distributed matrix in place. Collective.
PdgeqrfFactors pdgeqrf_factor(msg::Comm& comm, MatrixView a_local,
                              Index row_offset, Index nb = 64);

/// Materializes this rank's m_local x n block of the explicit Q by
/// applying the block reflectors in reverse (two allreduces per panel).
Matrix pdgeqrf_form_explicit_q(msg::Comm& comm, const PdgeqrfFactors& f);

}  // namespace qrgrid::core

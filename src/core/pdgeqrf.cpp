#include "core/pdgeqrf.hpp"

#include <algorithm>

#include "core/pdgeqr2.hpp"
#include "linalg/blas.hpp"
#include "linalg/flops.hpp"

namespace qrgrid::core {

namespace {

/// Extracts this rank's slice of the panel's reflector block V in
/// canonical form: zero above the pivot row, implicit unit on it, tails
/// below (the factored matrix stores R values on/above the diagonal).
Matrix local_v(ConstMatrixView a_local, Index row_offset, Index col0,
               Index jb) {
  const Index m_local = a_local.rows();
  Matrix v(m_local, jb);
  for (Index jj = 0; jj < jb; ++jj) {
    const Index c = col0 + jj;  // global column == global pivot row
    for (Index i = 0; i < m_local; ++i) {
      const Index gi = row_offset + i;
      if (gi < c) continue;
      v(i, jj) = gi == c ? 1.0 : a_local(i, col0 + jj);
    }
  }
  return v;
}

/// Builds the panel's T factor from the replicated Gram block S = V^T V
/// and the reflector scalars (the dlarft recurrence with S precomputed).
Matrix build_t(const Matrix& s, const std::vector<double>& tau, Index col0,
               Index jb) {
  Matrix t(jb, jb);
  for (Index i = 0; i < jb; ++i) {
    const double taui = tau[static_cast<std::size_t>(col0 + i)];
    t(i, i) = taui;
    if (i == 0 || taui == 0.0) continue;
    for (Index j = 0; j < i; ++j) t(j, i) = -taui * s(j, i);
    trmm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0,
         t.block(0, 0, i, i), t.block(0, i, i, 1));
  }
  return t;
}

/// Applies the panel's block reflector to the local slice of C:
///   C := (I - V T^op V^T) C, with W assembled through one allreduce.
void apply_block_reflector(msg::Comm& comm, const Matrix& v, const Matrix& t,
                           Trans trans, MatrixView c, int ncols) {
  const Index jb = v.cols();
  const Index m_local = v.rows();
  const Index width = c.cols();
  if (width == 0) return;
  // W = V^T C (jb x width), summed across ranks.
  Matrix w(jb, width);
  gemm(Trans::Yes, Trans::No, 1.0, v.view(), c, 0.0, w.view());
  comm.compute(flops::gemm(static_cast<double>(jb),
                           static_cast<double>(width),
                           static_cast<double>(m_local)),
               ncols);
  std::vector<double> buf(w.data(),
                          w.data() + static_cast<std::size_t>(jb * width));
  comm.allreduce_sum(buf);
  std::copy(buf.begin(), buf.end(), w.data());
  // W := T^T W (Q^T) or T W (Q), then the rank-jb update C -= V W.
  trmm(Side::Left, UpLo::Upper, trans, Diag::NonUnit, 1.0, t.view(),
       w.view());
  gemm(Trans::No, Trans::No, -1.0, v.view(), w.view(), 1.0, c);
  comm.compute(flops::gemm(static_cast<double>(m_local),
                           static_cast<double>(width),
                           static_cast<double>(jb)),
               ncols);
}

}  // namespace

PdgeqrfFactors pdgeqrf_factor(msg::Comm& comm, MatrixView a_local,
                              Index row_offset, Index nb) {
  QRGRID_CHECK(nb >= 1);
  const Index m_local = a_local.rows();
  const Index n = a_local.cols();
  const int ncols = static_cast<int>(n);

  PdgeqrfFactors f;
  f.n = n;
  f.m_local = m_local;
  f.row_offset = row_offset;
  f.nb = nb;
  f.local = a_local;
  f.tau.assign(static_cast<std::size_t>(n), 0.0);

  for (Index j0 = 0; j0 < n; j0 += nb) {
    const Index jb = std::min(nb, n - j0);
    // Panel: the per-column PDGEQR2 kernel (2 allreduces per column).
    pdgeqr2_panel(comm, a_local, row_offset, j0, jb, f.tau);

    // Block reflector pieces, replicated: S = V^T V via one allreduce,
    // then the T recurrence locally (deterministic on every rank).
    Matrix v = local_v(a_local, row_offset, j0, jb);
    Matrix s(jb, jb);
    syrk_upper_at_a(1.0, v.view(), 0.0, s.view());
    comm.compute(flops::syrk(static_cast<double>(m_local),
                             static_cast<double>(jb)),
                 ncols);
    std::vector<double> sbuf(s.data(),
                             s.data() + static_cast<std::size_t>(jb * jb));
    comm.allreduce_sum(sbuf);
    std::copy(sbuf.begin(), sbuf.end(), s.data());
    Matrix t = build_t(s, f.tau, j0, jb);

    // Trailing update: C := Q_panel^T C with one W-allreduce.
    const Index width = n - j0 - jb;
    if (width > 0) {
      apply_block_reflector(comm, v, t, Trans::Yes,
                            a_local.block(0, j0 + jb, m_local, width),
                            ncols);
    }
    f.panel_t.push_back(std::move(t));
  }

  f.r = assemble_r_on_root(comm, a_local, row_offset, n);
  return f;
}

Matrix pdgeqrf_form_explicit_q(msg::Comm& comm, const PdgeqrfFactors& f) {
  const Index n = f.n;
  const Index m_local = f.m_local;
  const int ncols = static_cast<int>(n);
  Matrix q(m_local, n);
  for (Index i = 0; i < m_local; ++i) {
    const Index gi = f.row_offset + i;
    if (gi < n) q(i, gi) = 1.0;
  }
  // Blocked dorgqr: panels in reverse; panel k only touches columns
  // >= j0 (the earlier identity columns are invariant under reflectors
  // supported on rows >= j0).
  const Index num_panels = static_cast<Index>(f.panel_t.size());
  for (Index k = num_panels - 1; k >= 0; --k) {
    const Index j0 = k * f.nb;
    const Index jb = f.panel_t[static_cast<std::size_t>(k)].rows();
    Matrix v = local_v(f.local, f.row_offset, j0, jb);
    apply_block_reflector(comm, v, f.panel_t[static_cast<std::size_t>(k)],
                          Trans::No, q.block(0, j0, m_local, n - j0), ncols);
  }
  return q;
}

}  // namespace qrgrid::core

// Out-of-core (streaming) TSQR — the flat-tree variant of §II-C.
//
// "CAQR with a flat tree has been implemented in the context of
// out-of-core QR factorization [Gunter & van de Geijn]": when the matrix
// does not fit in memory, row panels are streamed through a single
// process and folded into a running R factor with the
// triangle-on-top-of-dense kernel (tpqrt_td). The accumulator needs only
// O(N^2) memory regardless of M — the sequential sibling of the
// distributed reduction, and the reason the combine operation's
// associativity matters (any streaming order gives the same R).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace qrgrid::core {

class OocTsqr {
 public:
  /// Starts a factorization of a (virtual) M x n matrix, M unbounded.
  explicit OocTsqr(Index n);

  /// Folds the next row panel (any row count >= 1) into the running R.
  /// Panels must arrive in row order only if the caller wants to relate
  /// reflectors to row indices; the R factor itself is order-independent.
  void absorb(ConstMatrixView panel);

  /// Rows absorbed so far.
  Index rows_seen() const { return rows_seen_; }

  /// Number of panels folded so far.
  Index panels_seen() const { return panels_seen_; }

  /// The n x n upper-triangular R of everything absorbed so far. Valid
  /// once rows_seen() >= n.
  Matrix r() const;

  /// Total flops spent in the folds (for harness accounting).
  double flops() const { return flops_; }

 private:
  Index n_;
  Index rows_seen_ = 0;
  Index panels_seen_ = 0;
  bool seeded_ = false;
  Matrix r_;  ///< running n x n upper triangle
  double flops_ = 0.0;
};

}  // namespace qrgrid::core

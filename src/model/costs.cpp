#include "model/costs.hpp"

#include <cmath>

namespace qrgrid::model {

namespace {
double log2p(double p) { return p <= 1.0 ? 0.0 : std::log2(p); }
}  // namespace

CostBreakdown scalapack_qr2_costs(double m, double n, double p, Outputs out) {
  const double lg = log2p(p);
  CostBreakdown c;
  c.messages = 2.0 * n * lg;
  c.volume_doubles = lg * n * n / 2.0;
  c.flops = (2.0 * m * n * n - (2.0 / 3.0) * n * n * n) / p;
  if (out == Outputs::kQAndR) {
    c.messages *= 2.0;
    c.volume_doubles *= 2.0;
    c.flops *= 2.0;
  }
  return c;
}

CostBreakdown tsqr_costs(double m, double n, double p, Outputs out) {
  const double lg = log2p(p);
  CostBreakdown c;
  c.messages = lg;
  c.volume_doubles = lg * n * n / 2.0;
  c.flops = (2.0 * m * n * n - (2.0 / 3.0) * n * n * n) / p +
            (2.0 / 3.0) * lg * n * n * n;
  if (out == Outputs::kQAndR) {
    c.messages *= 2.0;
    c.volume_doubles *= 2.0;
    c.flops *= 2.0;
  }
  return c;
}

double predict_time_s(const CostBreakdown& c, const MachineParams& mp) {
  return mp.latency_s * c.messages +
         mp.inv_bandwidth_s_per_double * c.volume_doubles +
         c.flops / (mp.domain_gflops * 1e9);
}

double predict_tsqr_seconds(double m, double n, double domains,
                            const MachineParams& mp, Outputs out) {
  return predict_time_s(tsqr_costs(m, n, domains, out), mp);
}

double useful_flops(double m, double n) {
  return 2.0 * m * n * n - (2.0 / 3.0) * n * n * n;
}

}  // namespace qrgrid::model

// Per-process compute-rate model (the GotoBLAS substitute's calibration).
//
// The paper's §V-B measures a practical per-process DGEMM rate of about
// 3.67 Gflop/s and observes (Properties 2 and 4) that the QR kernels reach
// only a fraction of it, growing with the column count N because wider
// panels admit more Level-3 BLAS. We model the domanial QR rate with a
// saturating-roofline curve
//
//     rate(N) = peak * (f_min + (f_max - f_min) * N / (N + N_half))
//
// which reproduces the paper's single-site envelope: ~30 Gflop/s at N=64
// and ~70 Gflop/s at N=512 for 64 ScaLAPACK processes (Fig. 4), with TSQR
// leaf kernels following the same curve.
#pragma once

namespace qrgrid::model {

struct Roofline {
  double dgemm_gflops = 3.67;  ///< practical per-process peak (paper §V-B)
  double f_min = 0.045;        ///< efficiency floor as N -> 1
  double f_max = 0.38;         ///< efficiency ceiling as N -> inf
  double n_half = 162.0;       ///< column count at half the f range
  // Calibrated against the paper's single-site ScaLAPACK plateaus:
  // eff(64) ~ 0.14 (32/235 practical Gflop/s) and eff(512) ~ 0.30
  // (70/235), Figs. 4(a)/4(d).

  /// Effective per-process rate in Gflop/s for kernels working on
  /// ncols-column blocks; ncols <= 0 means "peak" (pure DGEMM).
  double rate_gflops(int ncols) const;
};

/// The calibration used by all benches (kept in one place so EXPERIMENTS.md
/// can cite it).
Roofline paper_calibration();

}  // namespace qrgrid::model

// The five qualitative performance properties of Section IV, phrased as
// checkable predicates over the closed-form model. The test suite asserts
// them across wide parameter sweeps; bench_properties prints the evidence.
#pragma once

#include "model/costs.hpp"

namespace qrgrid::model {

/// Property 1: computing both Q and R costs about twice R alone.
/// Returns the Q+R / R-only predicted-time ratio.
double property1_qr_over_r_ratio(double m, double n, double p,
                                 const MachineParams& mp);

/// Property 3: performance (useful Gflop/s) increases with M.
/// Returns predicted Gflop/s for TSQR at the given shape.
double predicted_tsqr_gflops(double m, double n, double p,
                             const MachineParams& mp);

/// Property 4 companion: predicted Gflop/s for ScaLAPACK QR2.
double predicted_qr2_gflops(double m, double n, double p,
                            const MachineParams& mp);

/// Property 5: TSQR beats QR2 for mid-range N; for large enough N (with
/// everything else fixed) the extra 2/3 log2(P) N^3 flops flip the sign.
/// Returns the N at which the predicted times cross (or a negative value
/// if they do not cross within [n_lo, n_hi]).
double property5_crossover_n(double m, double p, const MachineParams& mp,
                             double n_lo = 1.0, double n_hi = 1.0e6);

}  // namespace qrgrid::model

#include "model/properties.hpp"

namespace qrgrid::model {

double property1_qr_over_r_ratio(double m, double n, double p,
                                 const MachineParams& mp) {
  const double t_r =
      predict_time_s(tsqr_costs(m, n, p, Outputs::kROnly), mp);
  const double t_qr =
      predict_time_s(tsqr_costs(m, n, p, Outputs::kQAndR), mp);
  return t_qr / t_r;
}

double predicted_tsqr_gflops(double m, double n, double p,
                             const MachineParams& mp) {
  const double t = predict_time_s(tsqr_costs(m, n, p, Outputs::kROnly), mp);
  return useful_flops(m, n) / t / 1e9;
}

double predicted_qr2_gflops(double m, double n, double p,
                            const MachineParams& mp) {
  const double t =
      predict_time_s(scalapack_qr2_costs(m, n, p, Outputs::kROnly), mp);
  return useful_flops(m, n) / t / 1e9;
}

double property5_crossover_n(double m, double p, const MachineParams& mp,
                             double n_lo, double n_hi) {
  auto tsqr_minus_qr2 = [&](double n) {
    return predict_time_s(tsqr_costs(m, n, p, Outputs::kROnly), mp) -
           predict_time_s(scalapack_qr2_costs(m, n, p, Outputs::kROnly), mp);
  };
  // TSQR should be faster (negative diff) at small N and slower at huge N.
  if (tsqr_minus_qr2(n_lo) >= 0.0 || tsqr_minus_qr2(n_hi) <= 0.0) return -1.0;
  double lo = n_lo, hi = n_hi;
  for (int iter = 0; iter < 200 && hi - lo > 1e-6 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (tsqr_minus_qr2(mid) < 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace qrgrid::model

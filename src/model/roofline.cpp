#include "model/roofline.hpp"

namespace qrgrid::model {

double Roofline::rate_gflops(int ncols) const {
  if (ncols <= 0) return dgemm_gflops;
  const double n = static_cast<double>(ncols);
  const double eff = f_min + (f_max - f_min) * (n / (n + n_half));
  return dgemm_gflops * eff;
}

Roofline paper_calibration() { return Roofline{}; }

}  // namespace qrgrid::model

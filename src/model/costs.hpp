// Closed-form communication/computation costs from Section IV of the
// paper (Tables I and II), and the time estimate of Equation (1):
//
//   time = beta * (#msg) + alpha * (vol. data exchanged) + gamma * (#FLOPs)
//
// where alpha is the inverse bandwidth, beta the latency, and gamma the
// inverse flop rate of one domain. Counts are *critical-path* quantities:
// an allreduce over P domains contributes log2(P) messages.
#pragma once

namespace qrgrid::model {

/// Critical-path communication/computation breakdown of one factorization.
struct CostBreakdown {
  double messages = 0.0;      ///< latency-bound message count
  double volume_doubles = 0.0;///< data exchanged along the critical path
  double flops = 0.0;         ///< flops on the critical path, per domain
};

/// Which factors the caller requests (Table I vs Table II).
enum class Outputs { kROnly, kQAndR };

/// ScaLAPACK QR2 (one allreduce per column for the normalization plus one
/// per column for the update):
///   #msg = 2 N log2(P)        (4 N log2(P) with Q)
///   vol  = log2(P) N^2 / 2    (2x with Q)
///   flop = (2 M N^2 - 2/3 N^3) / P            (2x with Q)
CostBreakdown scalapack_qr2_costs(double m, double n, double p, Outputs out);

/// TSQR (single allreduce over R factors):
///   #msg = log2(P)            (2 log2(P) with Q)
///   vol  = log2(P) N^2 / 2    (2x with Q)
///   flop = (2 M N^2 - 2/3 N^3)/P + 2/3 log2(P) N^3    (2x with Q)
CostBreakdown tsqr_costs(double m, double n, double p, Outputs out);

/// Network/compute constants for Equation (1).
struct MachineParams {
  double latency_s = 0.0;          ///< beta
  double inv_bandwidth_s_per_double = 0.0;  ///< alpha (per double)
  double domain_gflops = 1.0;      ///< 1/gamma, in Gflop/s
};

/// Equation (1): predicted factorization time in seconds.
double predict_time_s(const CostBreakdown& c, const MachineParams& mp);

/// Equation (1) applied to the TSQR breakdown in one call — the runtime
/// prediction the job service's shortest-predicted-job-first policy sorts
/// by (and EASY reports next to the exact replay).
double predict_tsqr_seconds(double m, double n, double domains,
                            const MachineParams& mp,
                            Outputs out = Outputs::kROnly);

/// The "useful" flop count the paper divides by to report Gflop/s
/// (Householder QR of an M x N matrix, R-factor only).
double useful_flops(double m, double n);

}  // namespace qrgrid::model

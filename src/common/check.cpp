#include "common/check.hpp"

namespace qrgrid::detail {

void check_failed(const char* expr, const std::string& msg,
                  std::source_location loc) {
  std::ostringstream oss;
  oss << "QRGRID_CHECK failed: (" << expr << ") at " << loc.file_name() << ':'
      << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace qrgrid::detail

// Minimal fixed-width text table printer used by the benchmark harness to
// emit paper-style rows (and gnuplot-ready "series:" lines).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qrgrid {

/// Collects rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  /// Sets the header row; resets any accumulated rows.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with two-space column separation, right-aligning numeric-looking
  /// cells.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with engineering-style trimming ("12.3", "0.071", "256").
std::string format_number(double v, int precision = 4);

}  // namespace qrgrid

// Deterministic pseudo-random number generation for reproducible
// experiments. All matrix generators and tests seed explicitly so a given
// (seed, shape) pair always produces the same matrix across platforms.
#pragma once

#include <cstdint>

namespace qrgrid {

/// xoshiro256** — fast, high-quality, splittable enough for our use.
/// We avoid std::mt19937 because its stream is implementation-pinned but
/// slow, and we draw billions of values when filling large test matrices.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method (cached spare value).
  double gaussian();

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Complete generator state, exposed so service snapshots can capture
  /// and resume a stream mid-sequence bit-for-bit (the cached gaussian
  /// spare is part of the stream: dropping it would shift every later
  /// draw by one).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double spare = 0.0;
    bool has_spare = false;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, spare_, has_spare_};
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    spare_ = st.spare;
    has_spare_ = st.has_spare;
  }

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace qrgrid

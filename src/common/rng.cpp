#include "common/rng.hpp"

#include <cmath>

namespace qrgrid {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = n * (~0ull / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

}  // namespace qrgrid

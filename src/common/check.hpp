// Error-handling primitives shared by every qrgrid module.
//
// The library follows a fail-fast policy for programmer errors (dimension
// mismatches, invalid arguments): QRGRID_CHECK throws qrgrid::Error with a
// formatted message including the failing expression and source location.
// Numerical conditions that a caller may want to handle (e.g. rank
// deficiency detection) are reported through return values instead.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace qrgrid {

/// Exception thrown on contract violations detected by QRGRID_CHECK.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* expr, const std::string& msg,
                               std::source_location loc);

}  // namespace detail

}  // namespace qrgrid

/// Verify a precondition; throws qrgrid::Error with context on failure.
/// Enabled in all build types: the cost is negligible next to the numerical
/// kernels and silent corruption is far worse than a branch.
#define QRGRID_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::qrgrid::detail::check_failed(#expr, "",                         \
                                     std::source_location::current()); \
    }                                                                   \
  } while (false)

/// QRGRID_CHECK with an extra streamed message, e.g.
///   QRGRID_CHECK_MSG(a.rows() == b.rows(), "a=" << a.rows());
#define QRGRID_CHECK_MSG(expr, stream_expr)                             \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream qrgrid_check_oss_;                             \
      qrgrid_check_oss_ << stream_expr;                                 \
      ::qrgrid::detail::check_failed(#expr, qrgrid_check_oss_.str(),    \
                                     std::source_location::current()); \
    }                                                                   \
  } while (false)

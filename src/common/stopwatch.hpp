// Wall-clock stopwatch for benchmark harnesses (real time, as opposed to
// the simulated virtual time tracked by simgrid::VirtualClock).
#pragma once

#include <chrono>

namespace qrgrid {

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset();

  /// Seconds elapsed since construction or the last reset().
  double seconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace qrgrid

#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

namespace qrgrid {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  rows_.clear();
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-' ||
         s[0] == '+' || s[0] == '.';
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      const std::size_t pad = width[c] - r[c].size();
      if (looks_numeric(r[c])) {
        os << std::string(pad, ' ') << r[c];
      } else {
        os << r[c] << std::string(pad, ' ');
      }
      if (c + 1 < r.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += width[c] + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string format_number(double v, int precision) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream oss;
    oss.precision(15);
    oss << v;
    return oss.str();
  }
  std::ostringstream oss;
  oss.precision(precision);
  oss << v;
  return oss.str();
}

}  // namespace qrgrid

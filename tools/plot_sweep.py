#!/usr/bin/env python3
"""Turn `qrgrid_cli serve --csv` sweeps into policy-vs-load curves.

Each input CSV is one load point: a single `serve` run with per-(policy,
job) rows. The script infers the offered load of each file from the job
arrival times (jobs per second over the submission window), aggregates
mean/max wait and the completed-job fraction per policy, and emits the
mean-wait-vs-load curve for every policy.

Output is a gnuplot/np-friendly .dat table (always) plus a PNG when
matplotlib is importable — the CI container does not ship it, so the
plot is strictly optional.

Usage:
    plot_sweep.py --out curves sweep_a.csv sweep_b.csv ...
      -> curves.dat (always), curves.png (if matplotlib is present)

Generate the inputs with, e.g.:
    for t in 0.1 0.2 0.4 0.8; do
        ./build/qrgrid_cli serve --jobs 500 --arrival-s $t \
            --csv sweep_$t.csv
    done
"""
import argparse
import collections
import csv
import sys


def read_points(paths):
    """-> {policy: [(load_jobs_per_s, mean_wait, max_wait, done_frac)]}"""
    series = collections.defaultdict(list)
    for path in paths:
        per_policy = collections.defaultdict(list)
        with open(path, newline="") as f:
            for row in csv.DictReader(f):
                per_policy[row["policy"]].append(row)
        if not per_policy:
            raise SystemExit(f"{path}: no rows")
        for policy, rows in sorted(per_policy.items()):
            arrivals = [float(r["arrival_s"]) for r in rows]
            span = max(arrivals) - min(arrivals)
            if span <= 0:
                print(f"{path}: {policy} has no arrival spread "
                      f"({len(rows)} row(s)) — skipping this load point",
                      file=sys.stderr)
                continue
            load = (len(rows) - 1) / span
            waits = [float(r["wait_s"]) for r in rows]
            done = sum(r["fate"] == "completed" for r in rows)
            series[policy].append(
                (load, sum(waits) / len(waits), max(waits),
                 done / len(rows)))
    for policy in series:
        series[policy].sort()
    return dict(series)


def write_dat(series, path):
    with open(path, "w") as f:
        f.write("# policy load_jobs_per_s mean_wait_s max_wait_s "
                "completed_frac\n")
        for policy, points in sorted(series.items()):
            for load, mean_wait, max_wait, done in points:
                f.write(f"{policy} {load:.6g} {mean_wait:.6g} "
                        f"{max_wait:.6g} {done:.6g}\n")
            f.write("\n\n")  # gnuplot dataset separator


def write_png(series, path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; wrote .dat only", file=sys.stderr)
        return False
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for policy, points in sorted(series.items()):
        loads = [p[0] for p in points]
        waits = [p[1] for p in points]
        ax.plot(loads, waits, marker="o", label=policy)
    ax.set_xlabel("offered load (jobs/s)")
    ax.set_ylabel("mean wait (s)")
    ax.set_title("Grid job service: mean wait vs load")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    return True


def main():
    parser = argparse.ArgumentParser(
        description="policy-vs-load curves from serve --csv sweeps")
    parser.add_argument("--out", default="sweep",
                        help="output basename (default: sweep)")
    parser.add_argument("csvs", nargs="+", help="serve --csv outputs, "
                        "one per load point")
    args = parser.parse_args()

    series = read_points(args.csvs)
    dat = args.out + ".dat"
    write_dat(series, dat)
    made_png = write_png(series, args.out + ".png")
    print(f"wrote {dat}" + (f" and {args.out}.png" if made_png else ""))
    for policy, points in sorted(series.items()):
        tail = ", ".join(f"{load:.3g}/s -> {wait:.4g}s"
                         for load, wait, _, _ in points)
        print(f"  {policy:6s} mean wait by load: {tail}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Turn `qrgrid_cli serve --csv` sweeps into policy-vs-load curves.

Each input CSV is one load point: a single `serve` run with per-(policy,
job) rows. The script infers the offered load of each file from the job
arrival times (jobs per second over the submission window), aggregates
mean/max wait, the completed-job fraction, and the per-user fairness of
each policy, and emits mean-wait-vs-load plus Jain-fairness-vs-load
curves for every policy.

Fairness is Jain's index over per-user mean waits,
J = (sum x_u)^2 / (U * sum x_u^2): 1.0 means every user waited the same
on average, 1/U means one user absorbed all the waiting. Single-user
sweeps (or CSVs predating the `user` column) report J = 1. Note the
`weight` column rides along in the CSV: weighted fair-share INTENDS
unequal waits, so read its Jain values against the configured weights
rather than against 1.0.

Output is a gnuplot/np-friendly .dat table (always) plus a PNG when
matplotlib is importable — the CI container does not ship it, so the
plot is strictly optional.

Usage:
    plot_sweep.py --out curves sweep_a.csv sweep_b.csv ...
      -> curves.dat (always), curves.png (if matplotlib is present)

Generate the inputs with, e.g.:
    for t in 0.1 0.2 0.4 0.8; do
        ./build/qrgrid_cli serve --jobs 500 --arrival-s $t \
            --users 2 --weights 2,1 --csv sweep_$t.csv
    done

Timeline mode renders ONE run's observability output instead: the
vtime-indexed series of a `serve --metrics-out` metrics JSON (queue
depth, running jobs, per-site WAN uplink load, backbone load) as
step curves.

    plot_sweep.py --timeline metrics.json --out timeline
      -> timeline.dat (always), timeline.png (if matplotlib is present)

Blame mode renders the wait-blame decomposition of ONE run (started
with `serve --blame --metrics-out`): for each user and each priority
class, the total seconds its jobs spent pending broken down by
BlameCategory (resource-busy, held-behind-reservation, ...), as a
stacked bar per group. The grand total equals the sum of every job's
reported wait — the service's validator enforces that partition — so
the bars answer "who waited, and on what" exactly.

    plot_sweep.py --blame metrics.json --out blame
      -> blame.dat (always), blame.png (if matplotlib is present)
"""
import argparse
import collections
import csv
import json
import re
import sys


def jain_index(values):
    """Jain's fairness index of a list of non-negative numbers."""
    if len(values) <= 1:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0:
        return 1.0  # everyone waited zero: perfectly fair
    return total * total / (len(values) * squares)


def read_points(paths):
    """-> {policy: [(load, mean_wait, max_wait, done_frac, jain)]}"""
    series = collections.defaultdict(list)
    for path in paths:
        per_policy = collections.defaultdict(list)
        with open(path, newline="") as f:
            for row in csv.DictReader(f):
                per_policy[row["policy"]].append(row)
        if not per_policy:
            raise SystemExit(f"{path}: no rows")
        for policy, rows in sorted(per_policy.items()):
            arrivals = [float(r["arrival_s"]) for r in rows]
            span = max(arrivals) - min(arrivals)
            if span <= 0:
                print(f"{path}: {policy} has no arrival spread "
                      f"({len(rows)} row(s)) — skipping this load point",
                      file=sys.stderr)
                continue
            load = (len(rows) - 1) / span
            waits = [float(r["wait_s"]) for r in rows]
            done = sum(r["fate"] == "completed" for r in rows)
            by_user = collections.defaultdict(list)
            for r in rows:
                by_user[r.get("user", "0")].append(float(r["wait_s"]))
            user_means = [sum(w) / len(w) for w in by_user.values()]
            series[policy].append(
                (load, sum(waits) / len(waits), max(waits),
                 done / len(rows), jain_index(user_means)))
    for policy in series:
        series[policy].sort()
    return dict(series)


def write_dat(series, path):
    with open(path, "w") as f:
        f.write("# policy load_jobs_per_s mean_wait_s max_wait_s "
                "completed_frac jain_fairness\n")
        for policy, points in sorted(series.items()):
            for load, mean_wait, max_wait, done, jain in points:
                f.write(f"{policy} {load:.6g} {mean_wait:.6g} "
                        f"{max_wait:.6g} {done:.6g} {jain:.6g}\n")
            f.write("\n\n")  # gnuplot dataset separator


def write_png(series, path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; wrote .dat only", file=sys.stderr)
        return False
    fig, (wait_ax, jain_ax) = plt.subplots(
        1, 2, figsize=(11, 4.5), sharex=True)
    for policy, points in sorted(series.items()):
        loads = [p[0] for p in points]
        wait_ax.plot(loads, [p[1] for p in points], marker="o",
                     label=policy)
        jain_ax.plot(loads, [p[4] for p in points], marker="s",
                     label=policy)
    wait_ax.set_xlabel("offered load (jobs/s)")
    wait_ax.set_ylabel("mean wait (s)")
    wait_ax.set_title("Mean wait vs load")
    wait_ax.legend()
    wait_ax.grid(True, alpha=0.3)
    jain_ax.set_xlabel("offered load (jobs/s)")
    jain_ax.set_ylabel("Jain index of per-user mean waits")
    jain_ax.set_title("Per-user fairness vs load")
    jain_ax.set_ylim(0.0, 1.05)
    jain_ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    return True


def read_timeline(path):
    """-> {series_name: [(t_s, value)]} from a --metrics-out JSON."""
    with open(path) as f:
        metrics = json.load(f)
    series = metrics.get("series", {})
    if not series:
        raise SystemExit(f"{path}: no vtime series (was the run started "
                         "with --metrics-out?)")
    return {name: [(float(t), float(v)) for t, v in points]
            for name, points in series.items()}


def write_timeline_dat(series, path):
    with open(path, "w") as f:
        f.write("# series t_s value   (step curves: each value holds "
                "until the next sample)\n")
        for name, points in sorted(series.items()):
            for t_s, value in points:
                f.write(f"{name} {t_s:.6g} {value:.6g}\n")
            f.write("\n\n")  # gnuplot dataset separator


def write_timeline_png(series, path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; wrote .dat only", file=sys.stderr)
        return False
    queue_names = [n for n in sorted(series)
                   if not n.startswith("wan.")]
    link_names = [n for n in sorted(series) if n.startswith("wan.")]
    rows = 2 if link_names else 1
    fig, axes = plt.subplots(rows, 1, figsize=(11, 4.0 * rows),
                             sharex=True, squeeze=False)
    queue_ax = axes[0][0]
    for name in queue_names:
        points = series[name]
        queue_ax.step([p[0] for p in points], [p[1] for p in points],
                      where="post", label=name)
    queue_ax.set_ylabel("jobs")
    queue_ax.set_title("Queue depth and running jobs over virtual time")
    queue_ax.legend()
    queue_ax.grid(True, alpha=0.3)
    if link_names:
        link_ax = axes[1][0]
        for name in link_names:
            points = series[name]
            link_ax.step([p[0] for p in points], [p[1] for p in points],
                         where="post", label=name)
        link_ax.set_ylabel("concurrent flows on link")
        link_ax.set_title("WAN link utilization over virtual time")
        link_ax.legend()
        link_ax.grid(True, alpha=0.3)
    axes[-1][0].set_xlabel("virtual time (s)")
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    return True


BLAME_GAUGE = re.compile(r"^blame\.(total|user\.(\d+)|prio\.(\d+))\."
                         r"(.+)_s$")


def read_blame(path):
    """-> (categories, {group_label: {category: seconds}}).

    Groups are "user <u>" and "prio <p>"; the "total" rollup is kept
    separately under the label "total" for the partition cross-check.
    Categories are ordered by their share of the total rollup, largest
    first, so stacked bars read top-contributor-first.
    """
    with open(path) as f:
        metrics = json.load(f)
    groups = collections.defaultdict(dict)
    for name, value in metrics.get("gauges", {}).items():
        m = BLAME_GAUGE.match(name)
        if not m:
            continue
        group = "total" if m.group(1) == "total" else \
            f"user {m.group(2)}" if m.group(2) is not None else \
            f"prio {m.group(3)}"
        groups[group][m.group(4)] = float(value)
    if "total" not in groups:
        raise SystemExit(
            f"{path}: no blame.* gauges (was the run started with "
            "--blame --metrics-out?)")
    categories = sorted(groups["total"],
                        key=lambda c: (-groups["total"][c], c))
    return categories, dict(groups)


def write_blame_dat(categories, groups, path):
    with open(path, "w") as f:
        f.write("# group " + " ".join(c.replace(" ", "-")
                                      for c in categories) + " sum_s\n")
        for group in sorted(groups):
            values = [groups[group].get(c, 0.0) for c in categories]
            f.write(f"{group.replace(' ', '')} "
                    + " ".join(f"{v:.6g}" for v in values)
                    + f" {sum(values):.6g}\n")


def write_blame_png(categories, groups, path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; wrote .dat only", file=sys.stderr)
        return False
    labels = [g for g in sorted(groups) if g != "total"] or ["total"]
    fig, ax = plt.subplots(figsize=(1.6 + 1.1 * len(labels), 5.0))
    bottom = [0.0] * len(labels)
    for cat in categories:
        heights = [groups[g].get(cat, 0.0) for g in labels]
        if not any(heights):
            continue
        ax.bar(labels, heights, bottom=bottom, label=cat)
        bottom = [b + h for b, h in zip(bottom, heights)]
    ax.set_ylabel("pending seconds, by blame category")
    ax.set_title("Why jobs waited (wait-blame decomposition)")
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    return True


def run_blame(metrics_path, out):
    categories, groups = read_blame(metrics_path)
    dat = out + ".dat"
    write_blame_dat(categories, groups, dat)
    made_png = write_blame_png(categories, groups, out + ".png")
    print(f"wrote {dat}" + (f" and {out}.png" if made_png else ""))
    total = sum(groups["total"].values())
    for group in sorted(groups):
        parts = ", ".join(
            f"{c} {groups[group][c]:.4g}s"
            for c in categories if groups[group].get(c, 0.0) > 0.0)
        print(f"  {group}: {sum(groups[group].values()):.6g}s total"
              + (f" ({parts})" if parts else " (never waited)"))
    # The user and prio rollups each partition the same total; a
    # mismatch would mean the exporter dropped a class.
    for prefix in ("user", "prio"):
        rolled = sum(sum(g.values()) for name, g in groups.items()
                     if name.startswith(prefix + " "))
        if rolled and abs(rolled - total) > 1e-6 + 1e-9 * abs(total):
            raise SystemExit(f"per-{prefix} blame sums to {rolled:.6g}s "
                             f"but blame.total.* sums to {total:.6g}s")


def run_timeline(metrics_path, out):
    series = read_timeline(metrics_path)
    dat = out + ".dat"
    write_timeline_dat(series, dat)
    made_png = write_timeline_png(series, out + ".png")
    print(f"wrote {dat}" + (f" and {out}.png" if made_png else ""))
    for name in sorted(series):
        points = series[name]
        peak_t, peak = max(points, key=lambda p: (p[1], -p[0]))
        print(f"  {name}: {len(points)} samples, "
              f"peak {peak:.6g} at t={peak_t:.6g}s")


def main():
    parser = argparse.ArgumentParser(
        description="policy-vs-load wait and fairness curves from "
                    "serve --csv sweeps, or --timeline curves from one "
                    "run's serve --metrics-out JSON")
    parser.add_argument("--out", default="sweep",
                        help="output basename (default: sweep)")
    parser.add_argument("--timeline", metavar="METRICS_JSON",
                        help="render one run's vtime series (queue depth, "
                        "WAN link load) from a serve --metrics-out file "
                        "instead of aggregating sweep CSVs")
    parser.add_argument("--blame", metavar="METRICS_JSON",
                        help="render one run's wait-blame decomposition "
                        "(stacked per-user / per-priority bars) from a "
                        "serve --blame --metrics-out file")
    parser.add_argument("csvs", nargs="*", help="serve --csv outputs, "
                        "one per load point")
    args = parser.parse_args()

    if args.timeline and args.blame:
        parser.error("--timeline and --blame are mutually exclusive")
    if args.timeline or args.blame:
        if args.csvs:
            parser.error("--timeline/--blame take the metrics JSON, "
                         "not CSVs")
        if args.timeline:
            run_timeline(args.timeline, args.out)
        else:
            run_blame(args.blame, args.out)
        return
    if not args.csvs:
        parser.error("pass sweep CSVs, --timeline metrics.json, or "
                     "--blame metrics.json")

    series = read_points(args.csvs)
    dat = args.out + ".dat"
    write_dat(series, dat)
    made_png = write_png(series, args.out + ".png")
    print(f"wrote {dat}" + (f" and {args.out}.png" if made_png else ""))
    for policy, points in sorted(series.items()):
        tail = ", ".join(f"{load:.3g}/s -> {wait:.4g}s (J={jain:.3g})"
                         for load, wait, _, _, jain in points)
        print(f"  {policy:9s} mean wait (Jain) by load: {tail}")


if __name__ == "__main__":
    main()

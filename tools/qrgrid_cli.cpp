// qrgrid_cli — command-line front end to the library.
//
//   qrgrid_cli topology  --sites S [--nodes N] [--procs-per-node P]
//       Print the simulated grid (clusters, ranks, link parameters).
//
//   qrgrid_cli simulate  --algo tsqr|scalapack --m M --n N --sites S
//                        [--domains D] [--tree grid|binary|flat]
//                        [--nb NB] [--form-q]
//       Replay one factorization schedule at grid scale (DES engine) and
//       report time, Gflop/s, and per-link-class message counts.
//
//   qrgrid_cli sweep     --algo tsqr|scalapack --n N --sites S
//                        [--domains D] [--tree ...]
//       Print a Gflop/s-vs-M series (the axes of the paper's Figs. 4/5).
//
//   qrgrid_cli factor    --procs P --rows-per-proc R --n N
//                        [--tree grid|binary|flat] [--seed X]
//       Run the real threaded TSQR on random data, verify the
//       factorization, and report accuracy plus the simulated grid time.
//
//   qrgrid_cli serve     [--jobs J]
//                        [--policy fcfs|spjf|easy|prio-easy|fair|all]
//                        [--backend des|msg] [--domains D]
//                        [--sites S] [--nodes N] [--procs-per-node P]
//                        [--arrival-s T] [--seed X] [--csv path]
//                        [--users U] [--weights W0,W1,...]
//                        [--priorities L]
//                        [--mtbf S] [--repair S] [--outage-seed X]
//                        [--walltime-factor F] [--retries K]
//                        [--backfill-depth D]
//                        [--restart-credit] [--panels K]
//                        [--checkpoint-cost S] [--wan-gbps G]
//                        [--backbone-gbps G] [--wan-contention]
//                        [--wan-aware] [--wan-fair equal|maxmin]
//                        [--tree grid|binary|flat]
//       Run the grid job service on a seeded Poisson workload of queued
//       TSQR factorizations and report per-policy makespan, waits,
//       throughput, utilization, and fault accounting. Policies are the
//       pluggable objects of sched/policy.hpp: fcfs, spjf, easy (classic
//       arrival-ordered backfilling), prio-easy (higher priority claims
//       the shadow reservation; WAN-priced shadows under contention),
//       and fair (weighted fair-share, deficit-round-robin per user).
//       --users draws each job's submitting user uniformly from [0, U);
//       --weights assigns fair-share weights per user (comma list,
//       cycled); --priorities draws priorities from [0, L). --mtbf turns
//       on seeded whole-cluster outages (mean up-time per site; --repair
//       is the mean down-time, default mtbf/10); killed jobs are
//       requeued up to --retries times, optionally restarting from their
//       last completed panel (--restart-credit, --panels;
//       --checkpoint-cost charges that many seconds of I/O per panel
//       checkpoint instead of granting the credit for free).
//       --walltime-factor F gives every job a user walltime = predicted
//       x U[1, F) — the classic over-ask — which EASY plans with and the
//       service enforces. --wan-gbps sets each site's aggregate WAN
//       uplink (wired through to DesEngine::set_wan_aggregate_Bps for
//       every replay); --wan-contention makes concurrent jobs SHARE
//       those uplinks plus a backbone (--backbone-gbps, default sites/2
//       x uplink), stretching finish times under load; --wan-fair picks
//       the WanAllocator (equal-split per link, the default, or
//       progressive-filling max-min); --wan-aware steers placements
//       toward currently-idle uplinks and REQUIRES --wan-contention
//       (network-aware placement is meaningless without the shared
//       model — the bare flag is rejected).
//       --backend selects how granted attempts run: des (cached DES
//       replay, the default — figure-scale jobs in milliseconds) or msg
//       (REAL threaded execution of every attempt on msg::Runtime with
//       per-job numerics in the summary's executed / max-resid columns;
//       small workloads only, so the default job shapes shrink).
//       --domains sets domains-per-cluster for every replay (0 = auto,
//       -1 = one single-rank domain per process — the layout the
//       engine-equivalence suite pins the msg backend against).
//       --csv writes one machine-readable row per (policy, job) for
//       bench sweeps (see tools/plot_sweep.py).
//       Observability (sched/telemetry.hpp): --trace-out FILE writes the
//       run's structured event stream as Chrome-trace JSON (load in
//       Perfetto / chrome://tracing — per-job lifecycle spans, cluster
//       occupancy, WAN flows, queue-depth counters); --metrics-out FILE
//       writes the metrics registry (counters, gauges, histograms,
//       virtual-time series — tools/plot_sweep.py --timeline plots it);
//       --gantt[=N] prints a per-cluster occupancy Gantt for the N
//       busiest clusters (default 8). --blame turns on wait-blame
//       attribution (ServiceOptions::wait_blame): every pending job's
//       wait is partitioned into the BlameCategory taxonomy, emitted as
//       kWaitBlame events (validator-enforced partition) and rolled up
//       as blame.* gauges in --metrics-out. --critpath-out FILE
//       reconstructs the run's makespan-critical chain from the trace
//       (sched/critpath.hpp) and writes it as JSON; the CLI self-checks
//       that the chain tiles [0, makespan] exactly. --profile arms the
//       scoped self-profiler (wall seconds per event-loop phase),
//       printed per policy and exported as profiler.* gauges when
//       --metrics-out is armed. Any of --trace-out / --gantt / --blame /
//       --critpath-out arms the tracer, and every traced run is checked
//       by the streaming invariant validator (non-zero exit on
//       violation). When --policy all runs several policies, output
//       filenames get a .<policy> suffix.
//       Checkpoint/restart (sched/snapshot.hpp): --checkpoint-out FILE
//       [--checkpoint-at T] snapshots the FULL mid-run service state the
//       first time the virtual clock reaches T (default 0) and keeps
//       running to completion; --resume FILE restores such a snapshot
//       into an identically-configured service (an embedded fingerprint
//       refuses mismatches) and runs it to completion — the resumed
//       run's trace, metrics, and summary are byte-identical to the
//       uninterrupted one's. Both require a single --policy.
//
//   qrgrid_cli explore   [--jobs J] [--policy ...|all] [--sites S]
//                        [--nodes N] [--procs-per-node P] [--seed X]
//                        [--arrival-s T] [--quantize-s Q] [--mtbf S]
//                        [--repair S] [--walltime-factor F]
//                        [--wan-contention] [--wan-fair equal|maxmin]
//                        [--backend des|msg] [--max-leaves L]
//       Exhaustively enumerate every legal same-instant tie ordering of
//       a BOUNDED workload (sched/explore.hpp): snapshot before every
//       event-loop step, branch each k-way completion / outage / arrival
//       tie through the tie oracle, and validate the full TraceValidator
//       invariant set plus report-level conservation on every leaf.
//       --quantize-s rounds arrivals onto a Q-second grid to manufacture
//       same-instant ties; --max-leaves (default 20000) bounds the
//       enumeration. The canonical leaf is byte-compared against a plain
//       oracle-free run. Non-zero exit on any violation, with the
//       choice-sequence reproduction recipe printed per finding.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/des_algos.hpp"
#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "model/costs.hpp"
#include "model/roofline.hpp"
#include "sched/critpath.hpp"
#include "sched/explore.hpp"
#include "sched/profiler.hpp"
#include "sched/service.hpp"
#include "sched/snapshot.hpp"
#include "sched/telemetry.hpp"
#include "sched/workload.hpp"
#include "simgrid/cost.hpp"

using namespace qrgrid;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const {
    return options.contains(name);
  }
  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  double num(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw Error("expected an --option, got '" + key + "'");
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // boolean flag
    }
  }
  return args;
}

core::TreeKind tree_of(const std::string& name) {
  if (name == "grid") return core::TreeKind::kGridHierarchical;
  if (name == "binary") return core::TreeKind::kBinary;
  if (name == "flat") return core::TreeKind::kFlat;
  throw Error("unknown tree '" + name + "' (grid|binary|flat)");
}

simgrid::GridTopology topo_of(const Args& args) {
  return simgrid::GridTopology::grid5000(
      static_cast<int>(args.num("sites", 4)),
      static_cast<int>(args.num("nodes", 32)),
      static_cast<int>(args.num("procs-per-node", 2)));
}

int cmd_topology(const Args& args) {
  simgrid::GridTopology topo = topo_of(args);
  std::cout << "Simulated grid: " << topo.num_clusters() << " sites, "
            << topo.total_procs() << " processes, theoretical peak "
            << format_number(topo.theoretical_peak_gflops(), 5)
            << " Gflop/s\n\n";
  TextTable t;
  t.set_header({"site", "nodes", "procs", "proc peak (Gflop/s)",
                "first rank"});
  for (int c = 0; c < topo.num_clusters(); ++c) {
    const auto& spec = topo.cluster(c);
    t.add_row({spec.name, std::to_string(spec.nodes),
               std::to_string(spec.procs()),
               format_number(spec.proc_peak_gflops, 3),
               std::to_string(topo.cluster_rank_base(c))});
  }
  t.print(std::cout);
  std::cout << "\nintra-node: "
            << format_number(topo.intra_node_link().latency_s * 1e6, 3)
            << " us / "
            << format_number(topo.intra_node_link().bandwidth_Bps * 8 / 1e9,
                             3)
            << " Gb/s; intra-cluster: "
            << format_number(topo.intra_cluster_link().latency_s * 1e3, 3)
            << " ms / "
            << format_number(
                   topo.intra_cluster_link().bandwidth_Bps * 8 / 1e6, 3)
            << " Mb/s\n";
  return 0;
}

core::DesRunResult run_sim(const Args& args,
                           const simgrid::GridTopology& topo, double m,
                           double n) {
  const std::string algo = args.get("algo", "tsqr");
  const model::Roofline roof = model::paper_calibration();
  if (algo == "tsqr") {
    return core::run_des_tsqr(topo, roof,
                              static_cast<int>(args.num("domains", 64)), m,
                              n, tree_of(args.get("tree", "grid")),
                              args.flag("form-q"));
  }
  if (algo == "scalapack") {
    return core::run_des_scalapack(topo, roof, m, n,
                                   static_cast<int>(args.num("nb", 64)),
                                   args.flag("form-q"));
  }
  throw Error("unknown --algo '" + algo + "' (tsqr|scalapack)");
}

int cmd_simulate(const Args& args) {
  simgrid::GridTopology topo = topo_of(args);
  const double m = args.num("m", 1 << 22);
  const double n = args.num("n", 64);
  core::DesRunResult r = run_sim(args, topo, m, n);
  std::cout << args.get("algo", "tsqr") << " on "
            << format_number(m) << " x " << format_number(n) << " over "
            << topo.num_clusters() << " site(s), " << topo.total_procs()
            << " processes:\n"
            << "  simulated time        " << format_number(r.seconds, 5)
            << " s\n"
            << "  useful performance    " << format_number(r.gflops, 5)
            << " Gflop/s\n"
            << "  messages              " << r.total_messages
            << " (inter-site: " << r.inter_cluster_messages << ")\n"
            << "  compute utilization   "
            << format_number(100.0 * r.compute_utilization, 3) << " %\n";

  if (args.flag("timeline")) {
    // Traced replay; render the first ranks (one row per rank).
    const model::Roofline roof = model::paper_calibration();
    simgrid::DesEngine engine(&topo, roof);
    simgrid::TraceLog log;
    engine.set_trace(&log);
    if (args.get("algo", "tsqr") == "tsqr") {
      core::DomainLayout layout = core::make_domain_layout(
          topo, static_cast<int>(args.num("domains", 64)));
      core::des_tsqr(engine, layout.groups, layout.domain_cluster, m, n,
                     tree_of(args.get("tree", "grid")), args.flag("form-q"));
    } else {
      std::vector<int> ranks(static_cast<std::size_t>(topo.total_procs()));
      for (int i = 0; i < topo.total_procs(); ++i) {
        ranks[static_cast<std::size_t>(i)] = i;
      }
      core::des_pdgeqrf(engine, ranks, m, n,
                        static_cast<int>(args.num("nb", 64)),
                        args.flag("form-q"));
    }
    const int rows = std::min(topo.total_procs(),
                              static_cast<int>(args.num("rows", 16)));
    std::cout << "\nTimeline (first " << rows << " ranks):\n"
              << simgrid::render_timeline(log, rows, engine.makespan(), 72);
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  simgrid::GridTopology topo = topo_of(args);
  const double n = args.num("n", 64);
  std::cout << "# M  Gflop/s (" << args.get("algo", "tsqr") << ", N="
            << format_number(n) << ", sites=" << topo.num_clusters()
            << ")\n";
  const double cap = n <= 128 ? (1 << 25) : (1 << 23);
  for (double m = 1 << 17; m <= cap; m *= 2) {
    core::DesRunResult r = run_sim(args, topo, m, n);
    std::cout << format_number(m) << ' ' << format_number(r.gflops, 5)
              << '\n';
  }
  return 0;
}

int cmd_factor(const Args& args) {
  const int procs = static_cast<int>(args.num("procs", 8));
  const Index m_loc = static_cast<Index>(args.num("rows-per-proc", 1024));
  const Index n = static_cast<Index>(args.num("n", 32));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 2026));

  // Build a small grid holding exactly `procs` ranks (2 sites when even).
  const int sites = procs % 2 == 0 && procs >= 4 ? 2 : 1;
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(
      sites, std::max(1, procs / (sites * 2)), 2);
  QRGRID_CHECK_MSG(topo.total_procs() == procs,
                   "procs must be 1, 2 or a multiple of 4");
  auto cost = std::make_shared<simgrid::TopologyCostModel>(
      topo, model::paper_calibration());

  msg::Runtime rt(procs, cost);
  std::vector<Matrix> q_blocks(static_cast<std::size_t>(procs));
  Matrix r;
  double sim_time = 0.0;
  core::TsqrOptions options;
  options.tree = tree_of(args.get("tree", "grid"));
  for (int rank = 0; rank < procs; ++rank) {
    options.rank_cluster.push_back(topo.location_of(rank).cluster);
  }
  msg::RunStats stats = rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, seed);
    core::TsqrFactors f = tsqr_factor(comm, local.view(), options);
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        tsqr_form_explicit_q(comm, f);
    if (comm.rank() == 0) {
      r = std::move(f.r);
      sim_time = comm.vtime();
    }
  });

  Matrix a(m_loc * procs, n), q(m_loc * procs, n);
  fill_gaussian_rows(a.view(), 0, seed);
  for (int rank = 0; rank < procs; ++rank) {
    copy(q_blocks[static_cast<std::size_t>(rank)].view(),
         q.block(rank * m_loc, 0, m_loc, n));
  }
  const double resid = factorization_residual(a.view(), q.view(), r.view());
  const double ortho = orthogonality_error(q.view());
  std::cout << "TSQR of " << m_loc * procs << " x " << n << " over "
            << procs << " ranks (" << sites << " site(s)):\n"
            << "  ||A - QR||/||A||   " << resid << '\n'
            << "  ||Q^T Q - I||      " << ortho << '\n'
            << "  messages           " << stats.messages << " (inter-site: "
            << stats.messages_by_class[3] << ")\n"
            << "  simulated time     " << format_number(sim_time, 5)
            << " s\n";
  // Non-zero exit when verification fails, so scripts can rely on it.
  return (resid < 1e-10 && ortho < 1e-10) ? 0 : 2;
}

int cmd_serve(const Args& args) {
  simgrid::GridTopology topo = topo_of(args);
  const model::Roofline roof = model::paper_calibration();

  // Backend validation before any work: an unknown name must fail fast.
  const sched::BackendKind backend =
      sched::backend_of(args.get("backend", "des"));
  const bool msg_backend = backend == sched::BackendKind::kMsgRuntime;

  sched::WorkloadSpec spec;
  spec.jobs = static_cast<int>(args.num("jobs", msg_backend ? 20 : 200));
  spec.mean_interarrival_s = args.num("arrival-s", msg_backend ? 0.004 : 0.25);
  spec.seed = static_cast<std::uint64_t>(args.num("seed", 2026));
  spec.users = static_cast<int>(args.num("users", 1));
  spec.priority_levels = static_cast<int>(args.num("priorities", 1));
  const std::string weights = args.get("weights", "");
  if (!weights.empty()) {
    std::string token;
    for (std::istringstream stream(weights); std::getline(stream, token, ',');) {
      std::size_t parsed = 0;
      double value = 0.0;
      try {
        value = std::stod(token, &parsed);
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed != token.size() || token.empty() || value <= 0.0) {
        throw Error("--weights expects comma-separated positive numbers "
                    "(got '" + weights + "')");
      }
      spec.user_weights.push_back(value);
    }
  }
  // Process counts scaled to the grid: quarter-cluster up to whole-grid
  // (degenerates to {total} on grids too small to halve).
  const int total = topo.total_procs();
  spec.procs_choices.clear();
  for (int p = std::min(total, std::max(2, total / 16)); p <= total;
       p *= 2) {
    spec.procs_choices.push_back(p);
  }
  if (msg_backend) {
    // Every attempt runs for REAL on threads: keep the matrices small
    // (the backend enforces a hard element cap on top of this), but
    // large enough that the WIDEST possible grant still gives every rank
    // at least n local rows — a whole-grid job is granted all `total`
    // processes plus up to one node's worth of round-up per group.
    const int max_n = 32;
    const int ppn = static_cast<int>(args.num("procs-per-node", 2));
    const double min_m =
        static_cast<double>(max_n) * (total + 8 * std::max(1, ppn - 1));
    double m = 512;
    while (m < min_m) m *= 2;
    spec.m_choices = {m, 2 * m, 4 * m};
    spec.n_choices = {16, max_n};
  }
  spec.tree_choices = {tree_of(args.get("tree", "grid"))};
  std::vector<sched::Job> jobs = sched::generate_workload(spec);

  // Fault and walltime knobs, shared by every policy below.
  const double mtbf_s = args.num("mtbf", 0.0);
  const double walltime_factor = args.num("walltime-factor", 0.0);
  sched::OutageSpec outage_spec;
  outage_spec.mtbf_s = mtbf_s;
  outage_spec.mean_outage_s = args.num("repair", mtbf_s / 10.0);
  outage_spec.seed =
      static_cast<std::uint64_t>(args.num("outage-seed", 1 + spec.seed));
  if (walltime_factor > 0.0) {
    const sched::GridJobService predictor(topo, roof);
    sched::assign_walltimes(
        jobs, walltime_factor, spec.seed,
        [&](const sched::Job& job) { return predictor.predicted_seconds(job); });
  }

  std::vector<sched::Policy> policies;
  const std::string which = args.get("policy", "all");
  if (which == "all") {
    policies = {sched::Policy::kFcfs, sched::Policy::kSpjf,
                sched::Policy::kEasyBackfill, sched::Policy::kPriorityEasy,
                sched::Policy::kFairShare};
  } else {
    policies = {sched::policy_of(which)};
  }

  // Observability knobs. Any of --trace-out / --metrics-out / --gantt
  // arms the tracer; --gantt's optional value is the cluster budget (a
  // bare flag parses as "", NOT a number — args.num would throw).
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const bool want_gantt = args.flag("gantt");
  int gantt_clusters = 8;
  {
    const std::string raw = args.get("gantt", "");
    if (!raw.empty()) gantt_clusters = std::stoi(raw);
  }
  const std::string critpath_out = args.get("critpath-out", "");
  const bool want_blame = args.flag("blame");
  const bool want_profile = args.flag("profile");
  // Checkpoint/restart: a snapshot embeds ONE service configuration, so
  // the multi-policy sweep cannot carry either flag.
  const std::string checkpoint_out = args.get("checkpoint-out", "");
  const double checkpoint_at = args.num("checkpoint-at", 0.0);
  const std::string resume_path = args.get("resume", "");
  if ((!checkpoint_out.empty() || !resume_path.empty()) &&
      policies.size() > 1) {
    throw Error(
        "--checkpoint-out/--resume require a single --policy (a snapshot "
        "embeds one service configuration)");
  }
  const bool want_trace = !trace_out.empty() || want_gantt ||
                          !critpath_out.empty() || want_blame;
  const bool want_metrics = !metrics_out.empty();
  // With several policies in one run, suffix output files per policy.
  const auto policy_path = [&](const std::string& path,
                               sched::Policy policy) {
    if (policies.size() < 2) return path;
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    const std::string tag = "." + std::string(policy_name(policy));
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
      return path + tag;
    }
    return path.substr(0, dot) + tag + path.substr(dot);
  };

  std::ofstream csv;
  const std::string csv_path = args.get("csv", "");
  if (!csv_path.empty()) {
    csv.open(csv_path);
    QRGRID_CHECK_MSG(csv.is_open(), "cannot open --csv " << csv_path);
    csv.precision(17);  // round-trip doubles; sweeps join rows on m/times
    csv << "policy,job_id,arrival_s,start_s,finish_s,wait_s,service_s,"
           "m,n,procs,nodes,sites,backfilled,gflops,fate,attempts,"
           "wasted_node_s,wan_slowdown,measured_s,residual,user,weight\n";
  }

  std::cout << "Serving " << spec.jobs << " queued TSQR jobs on "
            << topo.num_clusters() << " site(s), " << total
            << " processes (seed " << spec.seed << ", mean inter-arrival "
            << format_number(spec.mean_interarrival_s, 3) << " s)\n";
  if (mtbf_s > 0.0) {
    std::cout << "Outages: per-site MTBF "
              << format_number(outage_spec.mtbf_s, 4) << " s, mean repair "
              << format_number(outage_spec.mean_outage_s, 4) << " s (seed "
              << outage_spec.seed << "), "
              << static_cast<int>(args.num("retries", 3)) << " retries"
              << (args.flag("restart-credit") ? ", restart credit" : "")
              << '\n';
  }
  if (walltime_factor > 0.0) {
    std::cout << "Walltimes: predicted x U[1, "
              << format_number(walltime_factor, 3)
              << ") per job, enforced\n";
  }
  const bool wan_aware = args.flag("wan-aware");
  const bool wan_contention = args.flag("wan-contention");
  // Network-aware placement only means anything over a shared WAN.
  // Silently (or footnote-ly) enabling a second model from one flag bit
  // us before: reject the bare flag loudly instead (the CLI-validation
  // tests pin both spellings).
  if (wan_aware && !wan_contention) {
    throw Error(
        "--wan-aware requires --wan-contention (network-aware placement "
        "steers around the shared-WAN flows that flag models; pass both)");
  }
  const sched::WanFairness wan_fairness =
      sched::wan_fairness_of(args.get("wan-fair", "equal"));
  const double wan_gbps = args.num("wan-gbps", 10.0);
  if (wan_contention) {
    std::cout << "Shared WAN: " << format_number(wan_gbps, 4)
              << " Gb/s per site uplink, "
              << sched::wan_fairness_name(wan_fairness)
              << " contention on"
              << (wan_aware ? ", network-aware placement" : "") << '\n';
  }
  if (msg_backend) {
    std::cout << "Backend: " << sched::backend_name(backend)
              << " — every attempt executes for real on a threaded "
                 "msg::Runtime (numerics in the executed / max-resid "
                 "columns); workload shapes kept small\n";
  }
  std::cout << '\n';
  TextTable table;
  table.set_header(sched::summary_header());
  std::ostringstream gantts;
  for (sched::Policy policy : policies) {
    sched::ServiceTracer tracer;
    sched::MetricsRegistry metrics;
    sched::PhaseProfiler profiler;
    sched::ServiceOptions options;
    options.policy = policy;
    options.tracer = want_trace ? &tracer : nullptr;
    options.metrics = want_metrics ? &metrics : nullptr;
    options.wait_blame = want_blame;
    options.profiler = want_profile ? &profiler : nullptr;
    if (mtbf_s > 0.0) {
      options.outages = sched::OutageTrace(outage_spec, topo.num_clusters());
    }
    options.max_retries = static_cast<int>(args.num("retries", 3));
    options.backfill_depth =
        static_cast<int>(args.num("backfill-depth", 0));
    options.restart_credit = args.flag("restart-credit");
    options.checkpoint_panels = static_cast<int>(args.num("panels", 8));
    options.checkpoint_cost_s = args.num("checkpoint-cost", 0.0);
    options.wan_link_Bps = wan_gbps * 1e9 / 8.0;
    options.wan_backbone_Bps = args.num("backbone-gbps", 0.0) * 1e9 / 8.0;
    options.wan_contention = wan_contention;
    options.wan_aware = wan_aware;
    options.wan_fairness = wan_fairness;
    options.backend = backend;
    // The msg backend defaults to the one-domain-per-process layout the
    // equivalence suite validates the predictor under.
    options.domains_per_cluster = static_cast<int>(args.num(
        "domains", msg_backend ? core::kOneDomainPerProcess : 0));
    sched::GridJobService service(topo, roof, options);
    sched::ServiceReport report;
    if (!resume_path.empty()) {
      std::ifstream in(resume_path, std::ios::binary);
      QRGRID_CHECK_MSG(in.is_open(), "cannot open --resume " << resume_path);
      std::ostringstream buf;
      buf << in.rdbuf();
      service.restore(buf.str());
      std::cout << "resumed from " << resume_path << " at t="
                << format_number(service.now_s(), 5) << " s\n";
      while (service.active()) service.step();
      report = service.finish();
    } else if (!checkpoint_out.empty()) {
      service.start(jobs);
      bool written = false;
      const auto write_checkpoint = [&] {
        const std::string bytes = service.snapshot();
        std::ofstream out(checkpoint_out, std::ios::binary);
        QRGRID_CHECK_MSG(out.is_open(),
                         "cannot open --checkpoint-out " << checkpoint_out);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        std::cout << "checkpoint written to " << checkpoint_out << " ("
                  << bytes.size() << " bytes, t="
                  << format_number(service.now_s(), 5) << " s)\n";
        written = true;
      };
      while (service.active()) {
        if (!written && service.now_s() >= checkpoint_at) {
          write_checkpoint();
        }
        service.step();
      }
      // The run drained before the clock reached the mark: snapshot the
      // drained state anyway, so the artifact always exists (resuming it
      // just finishes immediately).
      if (!written) write_checkpoint();
      report = service.finish();
    } else {
      report = service.run(jobs);
    }
    table.add_row(sched::summary_row(report));
    if (want_trace) {
      // Every traced run must satisfy the pinned event invariants.
      sched::TraceValidator verdict;
      for (const sched::ServiceTraceEvent& ev : tracer.events()) {
        verdict.consume(ev);
      }
      verdict.finish();
      if (!verdict.ok()) {
        std::cerr << "trace validator: " << verdict.violations().size()
                  << " violation(s) under " << policy_name(policy) << ":\n";
        for (const std::string& v : verdict.violations()) {
          std::cerr << "  " << v << '\n';
        }
        return 1;
      }
      std::cout << "trace validator: OK (" << verdict.events_seen()
                << " events, " << policy_name(policy) << ")\n";
      if (!trace_out.empty()) {
        const std::string path = policy_path(trace_out, policy);
        std::ofstream out(path);
        QRGRID_CHECK_MSG(out.is_open(), "cannot open --trace-out " << path);
        sched::write_chrome_trace(tracer.events(), out);
        std::cout << "chrome trace written to " << path << '\n';
      }
      if (want_gantt) {
        gantts << '\n' << policy_name(policy) << " cluster occupancy:\n"
               << sched::render_cluster_gantt(tracer.events(), topo,
                                              gantt_clusters);
      }
      if (!critpath_out.empty()) {
        const sched::CriticalPathReport cp =
            sched::analyze_critical_path(tracer.events());
        // Self-gate before writing anything: the chain must tile
        // [0, makespan] with exactly-adjacent tiles, and the trace's
        // makespan must be the report's to the last bit.
        bool tiles = cp.chain.empty()
                         ? report.makespan_s == 0.0
                         : cp.chain.front().t0_s == 0.0 &&
                               cp.chain.back().t1_s == report.makespan_s;
        for (std::size_t i = 0; tiles && i + 1 < cp.chain.size(); ++i) {
          tiles = cp.chain[i].t1_s == cp.chain[i + 1].t0_s;
        }
        QRGRID_CHECK_MSG(
            tiles && cp.makespan_s == report.makespan_s,
            "critical path does not tile the reported makespan under "
                << policy_name(policy));
        const std::string path = policy_path(critpath_out, policy);
        std::ofstream out(path);
        QRGRID_CHECK_MSG(out.is_open(),
                         "cannot open --critpath-out " << path);
        sched::write_critpath_json(cp, out);
        std::cout << "critical path: " << cp.chain_attempts
                  << " attempt(s), length "
                  << format_number(cp.path_length_s(), 5)
                  << " s tiles the makespan; written to " << path << '\n';
      }
    }
    if (want_profile) {
      std::cout << "self-profile (" << policy_name(policy) << "):";
      for (int i = 0; i < sched::kProfilePhaseCount; ++i) {
        const auto phase = static_cast<sched::ProfilePhase>(i);
        std::cout << ' ' << sched::profile_phase_name(phase) << ' '
                  << format_number(profiler.total_s(phase) * 1e3, 4)
                  << " ms/" << profiler.calls(phase);
      }
      std::cout << '\n';
    }
    if (!metrics_out.empty()) {
      const std::string path = policy_path(metrics_out, policy);
      std::ofstream out(path);
      QRGRID_CHECK_MSG(out.is_open(), "cannot open --metrics-out " << path);
      metrics.write_json(out);
      std::cout << "metrics written to " << path << '\n';
    }
    if (csv.is_open()) {
      for (const sched::JobOutcome& o : report.outcomes) {
        csv << policy_name(policy) << ',' << o.job.id << ','
            << o.job.arrival_s << ',' << o.start_s << ',' << o.finish_s
            << ',' << o.wait_s() << ',' << o.service_s << ','
            << static_cast<long long>(o.job.m) << ',' << o.job.n << ','
            << o.job.procs << ',' << o.nodes << ',' << o.clusters.size()
            << ',' << (o.backfilled ? 1 : 0) << ',' << o.gflops << ','
            << sched::fate_name(o.fate) << ',' << o.attempts << ','
            << o.wasted_node_s << ',' << o.wan_slowdown << ','
            << o.measured_s << ',' << o.residual << ','
            << o.job.user << ',' << o.job.weight << '\n';
      }
    }
  }
  table.print(std::cout);
  const std::string gantt_text = gantts.str();
  if (!gantt_text.empty()) std::cout << gantt_text;
  if (csv.is_open()) {
    std::cout << "\nper-job rows written to " << csv_path << '\n';
  }
  return 0;
}

int cmd_explore(const Args& args) {
  simgrid::GridTopology topo = topo_of(args);
  const model::Roofline roof = model::paper_calibration();
  const sched::BackendKind backend =
      sched::backend_of(args.get("backend", "des"));
  const bool msg_backend = backend == sched::BackendKind::kMsgRuntime;

  sched::WorkloadSpec spec;
  spec.jobs = static_cast<int>(args.num("jobs", 6));
  QRGRID_CHECK_MSG(
      spec.jobs >= 1 && spec.jobs <= 16,
      "explore enumerates EVERY tie ordering (exponential): --jobs must "
      "be in [1, 16], got " << spec.jobs);
  spec.mean_interarrival_s = args.num("arrival-s", 0.05);
  spec.seed = static_cast<std::uint64_t>(args.num("seed", 2026));
  spec.users = static_cast<int>(args.num("users", 1));
  spec.priority_levels = static_cast<int>(args.num("priorities", 1));
  const int total = topo.total_procs();
  spec.procs_choices.clear();
  for (int p = std::min(total, std::max(2, total / 16)); p <= total;
       p *= 2) {
    spec.procs_choices.push_back(p);
  }
  if (msg_backend) {
    const int max_n = 32;
    const int ppn = static_cast<int>(args.num("procs-per-node", 2));
    const double min_m =
        static_cast<double>(max_n) * (total + 8 * std::max(1, ppn - 1));
    double m = 512;
    while (m < min_m) m *= 2;
    spec.m_choices = {m, 2 * m, 4 * m};
    spec.n_choices = {16, max_n};
  }
  spec.tree_choices = {tree_of(args.get("tree", "grid"))};
  std::vector<sched::Job> jobs = sched::generate_workload(spec);
  // Poisson arrivals almost never tie; snapping them onto a coarse grid
  // manufactures the same-instant arrival groups worth exploring.
  const double quantize = args.num("quantize-s", 0.0);
  if (quantize > 0.0) {
    for (sched::Job& job : jobs) {
      job.arrival_s = std::floor(job.arrival_s / quantize) * quantize;
    }
  }

  const double mtbf_s = args.num("mtbf", 0.0);
  sched::OutageSpec outage_spec;
  outage_spec.mtbf_s = mtbf_s;
  outage_spec.mean_outage_s = args.num("repair", mtbf_s / 10.0);
  outage_spec.seed =
      static_cast<std::uint64_t>(args.num("outage-seed", 1 + spec.seed));
  const double walltime_factor = args.num("walltime-factor", 0.0);
  if (walltime_factor > 0.0) {
    const sched::GridJobService predictor(topo, roof);
    sched::assign_walltimes(jobs, walltime_factor, spec.seed,
                            [&](const sched::Job& job) {
                              return predictor.predicted_seconds(job);
                            });
  }
  const sched::WanFairness wan_fairness =
      sched::wan_fairness_of(args.get("wan-fair", "equal"));

  std::vector<sched::Policy> policies;
  const std::string which = args.get("policy", "all");
  if (which == "all") {
    policies = {sched::Policy::kFcfs, sched::Policy::kSpjf,
                sched::Policy::kEasyBackfill, sched::Policy::kPriorityEasy,
                sched::Policy::kFairShare};
  } else {
    policies = {sched::policy_of(which)};
  }

  sched::ExploreLimits limits;
  limits.max_leaves = static_cast<long long>(args.num("max-leaves", 20000));

  std::cout << "Exploring " << spec.jobs << " jobs on "
            << topo.num_clusters() << " site(s) (seed " << spec.seed
            << (quantize > 0.0
                    ? ", arrivals quantized to " +
                          format_number(quantize, 3) + " s"
                    : std::string())
            << ")\n";
  bool failed = false;
  for (sched::Policy policy : policies) {
    const sched::ServiceFactory factory =
        [&, policy](sched::ServiceTracer* tracer,
                    sched::MetricsRegistry* metrics) {
          sched::ServiceOptions options;
          options.policy = policy;
          options.tracer = tracer;
          options.metrics = metrics;
          if (mtbf_s > 0.0) {
            options.outages =
                sched::OutageTrace(outage_spec, topo.num_clusters());
          }
          options.max_retries = static_cast<int>(args.num("retries", 3));
          options.restart_credit = args.flag("restart-credit");
          options.checkpoint_panels =
              static_cast<int>(args.num("panels", 8));
          options.checkpoint_cost_s = args.num("checkpoint-cost", 0.0);
          options.wan_contention = args.flag("wan-contention");
          options.wan_fairness = wan_fairness;
          options.wan_link_Bps = args.num("wan-gbps", 10.0) * 1e9 / 8.0;
          options.backend = backend;
          options.domains_per_cluster = static_cast<int>(args.num(
              "domains", msg_backend ? core::kOneDomainPerProcess : 0));
          return std::make_unique<sched::GridJobService>(topo, roof,
                                                         options);
        };
    const sched::ExploreResult result =
        sched::explore_interleavings(factory, jobs, limits);

    // The canonical (all-zeros) leaf must be byte-identical to a plain
    // oracle-free run: the explorer harness itself may not perturb the
    // service.
    sched::ServiceTracer plain_tracer;
    sched::MetricsRegistry plain_metrics;
    const std::unique_ptr<sched::GridJobService> plain =
        factory(&plain_tracer, &plain_metrics);
    plain->run(jobs);
    sched::SnapshotWriter plain_bytes;
    plain_tracer.save_state(plain_bytes);
    QRGRID_CHECK_MSG(plain_bytes.bytes() == result.canonical_trace_bytes,
                     "canonical leaf trace diverges from the plain run "
                     "under " << policy_name(policy));

    std::cout << policy_name(policy) << ": " << result.leaves
              << " interleaving(s), " << result.decision_points
              << " decision point(s), max fanout " << result.max_fanout
              << (result.truncated ? " (TRUNCATED at --max-leaves)" : "")
              << " — ";
    if (result.ok()) {
      std::cout << "all invariants hold\n";
    } else {
      failed = true;
      std::cout << result.violations.size() << " violation(s)\n";
      for (const sched::ExploreViolation& v : result.violations) {
        std::cout << "  " << v.what << "\n    reproduce with choices:";
        for (int c : v.prescription) std::cout << ' ' << c;
        std::cout << '\n';
      }
    }
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args = parse(argc, argv);
    if (args.command == "topology") return cmd_topology(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "factor") return cmd_factor(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "explore") return cmd_explore(args);
    std::cerr << "usage: qrgrid_cli topology|simulate|sweep|factor|serve"
                 "|explore "
                 "[--option value ...]\n"
                 "see the header of tools/qrgrid_cli.cpp for details\n";
    return args.command.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

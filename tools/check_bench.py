#!/usr/bin/env python3
"""Perf-regression gate over the bench's self-profiled trajectory.

Compares a fresh BENCH_job_service.json (written by bench_job_service)
against the committed bench/BENCH_baseline.json and fails loudly when
the run drifted. Two kinds of columns, two kinds of gates:

* Virtual-time results (makespan_s, mean_wait_s, crit_run_frac) and the
  profiler's per-phase call counts are byte-deterministic for a given
  job count, so they are gated EXACTLY (1e-9 relative): any drift means
  the scheduler's decisions changed, which is a correctness event, not a
  perf event.
* Wall time, peak RSS, and the per-phase wall-share are machine-
  dependent, so they are gated by ratio: total wall <= baseline x
  --wall-factor (default 3), peak RSS <= baseline x --rss-factor
  (default 2), and each phase's share of the summed phase wall within
  +/- --share-drift (default 0.25) absolute of the baseline share. The
  share gate is what catches "one phase quietly became the bottleneck"
  even when total wall still fits the (deliberately loose) factor.

A markdown diff report is always written (--report), pass or fail, so
CI can archive it as an artifact. Exit 0 on pass, 1 on any violation.
Stdlib only.

Usage:
  check_bench.py BENCH_job_service.json [--baseline bench/BENCH_baseline.json]
                 [--report report.md] [--wall-factor 3.0] [--rss-factor 2.0]
                 [--share-drift 0.25]
"""

import argparse
import json
import sys

EXACT_REL_TOL = 1e-9
EXACT_FIELDS = ("makespan_s", "mean_wait_s", "crit_run_frac")


def rel_drift(current, base):
    if base == current:
        return 0.0
    return abs(current - base) / max(abs(base), abs(current), 1e-300)


def phase_shares(profile):
    total = sum(p["wall_s"] for p in profile.values())
    if total <= 0.0:
        return {name: 0.0 for name in profile}
    return {name: p["wall_s"] / total for name, p in profile.items()}


def main():
    parser = argparse.ArgumentParser(
        description="Gate a bench run against the committed baseline.")
    parser.add_argument("current", help="fresh BENCH_job_service.json")
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json")
    parser.add_argument("--report", default="bench_regression_report.md",
                        help="markdown diff report (always written)")
    parser.add_argument("--wall-factor", type=float, default=3.0)
    parser.add_argument("--rss-factor", type=float, default=2.0)
    parser.add_argument("--share-drift", type=float, default=0.25)
    args = parser.parse_args()

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    failures = []
    lines = ["# Bench regression report", "",
             f"current: `{args.current}` vs baseline: `{args.baseline}`", ""]

    if cur.get("jobs") != base.get("jobs"):
        failures.append(
            f"job count mismatch: run has {cur.get('jobs')}, baseline was "
            f"seeded at {base.get('jobs')} — deterministic columns are only "
            "comparable at the same count")

    base_rows = {(r["scenario"], r["config"]): r
                 for r in base.get("scenarios", [])}
    cur_rows = {(r["scenario"], r["config"]): r
                for r in cur.get("scenarios", [])}
    missing = sorted(set(base_rows) - set(cur_rows))
    for key in missing:
        failures.append(f"scenario row missing from run: {key}")
    extra = sorted(set(cur_rows) - set(base_rows))
    for key in extra:
        lines.append(f"- note: new scenario row not in baseline: `{key}`")

    lines += ["", "## Deterministic virtual-time columns (exact)", "",
              "| scenario | config | field | baseline | current | drift |",
              "|---|---|---|---|---|---|"]
    for key in sorted(base_rows):
        if key not in cur_rows:
            continue
        b, c = base_rows[key], cur_rows[key]
        for field in EXACT_FIELDS:
            if field not in b:
                continue
            drift = rel_drift(c.get(field, float("nan")), b[field])
            mark = "" if drift <= EXACT_REL_TOL else " **FAIL**"
            lines.append(f"| {key[0]} | {key[1]} | {field} | {b[field]:.17g}"
                         f" | {c.get(field, float('nan')):.17g}"
                         f" | {drift:.3g}{mark} |")
            if drift > EXACT_REL_TOL:
                failures.append(
                    f"{key[0]}/{key[1]} {field} drifted {drift:.3g} "
                    f"relative ({b[field]:.17g} -> "
                    f"{c.get(field, float('nan')):.17g}); virtual-time "
                    "results must be bit-stable")

    lines += ["", "## Wall time and memory (ratio gates)", ""]
    b_tot, c_tot = base.get("totals", {}), cur.get("totals", {})
    b_wall, c_wall = b_tot.get("wall_s", 0.0), c_tot.get("wall_s", 0.0)
    wall_ratio = c_wall / b_wall if b_wall > 0 else float("inf")
    lines.append(f"- total wall: {b_wall:.3f} s -> {c_wall:.3f} s "
                 f"(x{wall_ratio:.2f}, budget x{args.wall_factor})")
    if wall_ratio > args.wall_factor:
        failures.append(f"total wall time x{wall_ratio:.2f} over baseline "
                        f"(budget x{args.wall_factor})")
    b_rss, c_rss = b_tot.get("peak_rss_kb", -1), c_tot.get("peak_rss_kb", -1)
    if b_rss > 0 and c_rss > 0:
        rss_ratio = c_rss / b_rss
        lines.append(f"- peak RSS: {b_rss} kB -> {c_rss} kB "
                     f"(x{rss_ratio:.2f}, budget x{args.rss_factor})")
        if rss_ratio > args.rss_factor:
            failures.append(f"peak RSS x{rss_ratio:.2f} over baseline "
                            f"(budget x{args.rss_factor})")

    lines += ["", "## Self-profiled phase breakdown", "",
              "| phase | base share | cur share | drift | base calls "
              "| cur calls |", "|---|---|---|---|---|---|"]
    b_prof, c_prof = base.get("profile", {}), cur.get("profile", {})
    if b_prof and not c_prof:
        failures.append("run carries no profile object but baseline does")
    if b_prof and c_prof:
        for name in sorted(set(b_prof) - set(c_prof)):
            failures.append(f"phase missing from run profile: {name}")
        # A phase the baseline has never seen (a freshly instrumented
        # subsystem, e.g. wan-rebalance) is reported, not failed: the
        # exact call-count and share gates pick it up once the baseline
        # is regenerated with the new phase in place.
        for name in sorted(set(c_prof) - set(b_prof)):
            lines.append(f"- note: new phase not in baseline profile: "
                         f"`{name}` ({c_prof[name]['calls']} calls)")
        b_share, c_share = phase_shares(b_prof), phase_shares(c_prof)
        for name in sorted(b_prof):
            if name not in c_prof:
                continue
            drift = abs(c_share[name] - b_share[name])
            bc, cc = b_prof[name]["calls"], c_prof[name]["calls"]
            mark = ""
            if drift > args.share_drift:
                failures.append(
                    f"phase '{name}' wall share drifted "
                    f"{b_share[name]:.3f} -> {c_share[name]:.3f} "
                    f"(> {args.share_drift} absolute)")
                mark = " **FAIL**"
            if bc != cc:
                failures.append(
                    f"phase '{name}' call count changed {bc} -> {cc}; "
                    "scope entries are deterministic for a fixed workload")
                mark = " **FAIL**"
            lines.append(f"| {name} | {b_share[name]:.4f} "
                         f"| {c_share[name]:.4f} | {drift:.4f} "
                         f"| {bc} | {cc}{mark} |")

    lines += ["", "## Verdict", ""]
    if failures:
        lines.append(f"**FAIL** — {len(failures)} violation(s):")
        lines += [f"1. {f}" for f in failures]
    else:
        lines.append("**PASS** — within all tolerances.")

    with open(args.report, "w") as f:
        f.write("\n".join(lines) + "\n")

    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    print(("FAIL" if failures else "PASS") +
          f": bench vs baseline ({len(base_rows)} rows checked, "
          f"report: {args.report})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

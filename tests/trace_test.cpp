#include "simgrid/trace.hpp"

#include <gtest/gtest.h>

#include "core/des_algos.hpp"
#include "model/roofline.hpp"
#include "simgrid/des.hpp"

namespace qrgrid::simgrid {
namespace {

GridTopology tiny_topology() {
  std::vector<ClusterSpec> clusters = {ClusterSpec{"A", 2, 1, 4.0}};
  const LinkParams l{1.0, 10.0};
  std::vector<std::vector<LinkParams>> inter(1,
                                             std::vector<LinkParams>(1, l));
  return GridTopology(std::move(clusters), l, l, std::move(inter));
}

model::Roofline unit_roofline() {
  model::Roofline r;
  r.dgemm_gflops = 1e-9;
  r.f_min = 1.0;
  r.f_max = 1.0;
  return r;
}

TEST(Trace, RecordsComputeEvents) {
  GridTopology topo = tiny_topology();
  DesEngine engine(&topo, unit_roofline());
  TraceLog log;
  engine.set_trace(&log);
  engine.compute(0, 5.0, 0);
  engine.compute(0, 3.0, 0);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].rank, 0);
  EXPECT_DOUBLE_EQ(log.events()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(log.events()[0].end, 5.0);
  EXPECT_DOUBLE_EQ(log.events()[1].start, 5.0);
  EXPECT_DOUBLE_EQ(log.events()[1].end, 8.0);
  EXPECT_DOUBLE_EQ(log.busy_seconds(0), 8.0);
  EXPECT_DOUBLE_EQ(log.busy_seconds(0, ActivityKind::kCompute), 8.0);
  EXPECT_DOUBLE_EQ(log.busy_seconds(0, ActivityKind::kTransfer), 0.0);
}

TEST(Trace, RecordsTransferOccupancyAtReceiver) {
  GridTopology topo = tiny_topology();
  DesEngine engine(&topo, unit_roofline());
  TraceLog log;
  engine.set_trace(&log);
  engine.p2p(0, 1, 20);  // latency 1, 20 bytes at 10 B/s => 2 s occupancy
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].rank, 1);
  EXPECT_EQ(log.events()[0].kind, ActivityKind::kTransfer);
  EXPECT_DOUBLE_EQ(log.events()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(log.events()[0].end, 3.0);
}

TEST(Trace, ZeroLengthEventsAreDropped) {
  TraceLog log;
  log.record(0, 1.0, 1.0, ActivityKind::kCompute);
  EXPECT_TRUE(log.empty());
}

TEST(Trace, TimelineRendersBusyAndIdleCells) {
  TraceLog log;
  log.record(0, 0.0, 5.0, ActivityKind::kCompute);
  log.record(1, 5.0, 10.0, ActivityKind::kTransfer);
  const std::string out = render_timeline(log, 2, 10.0, 10);
  // Rank 0 busy in the first half, rank 1 receiving in the second.
  EXPECT_NE(out.find("rank    0 |CCCCCC....|"), std::string::npos) << out;
  EXPECT_NE(out.find("rank    1 |.....RRRRR|"), std::string::npos) << out;
}

TEST(Trace, ComputePaintsOverTransfer) {
  TraceLog log;
  log.record(0, 0.0, 10.0, ActivityKind::kTransfer);
  log.record(0, 0.0, 10.0, ActivityKind::kCompute);
  const std::string out = render_timeline(log, 1, 10.0, 10);
  EXPECT_NE(out.find("|CCCCCCCCCC|"), std::string::npos) << out;
}

TEST(Trace, FullTsqrScheduleTracesEveryRank) {
  GridTopology topo = GridTopology::grid5000(2, 2, 2);
  DesEngine engine(&topo, model::paper_calibration());
  TraceLog log;
  engine.set_trace(&log);
  core::DomainLayout layout = core::make_domain_layout(topo, 4);
  core::des_tsqr(engine, layout.groups, layout.domain_cluster, 1 << 18, 64,
                 core::TreeKind::kGridHierarchical, false);
  // Every rank computed something (its leaf factorization at least).
  for (int r = 0; r < topo.total_procs(); ++r) {
    EXPECT_GT(log.busy_seconds(r, ActivityKind::kCompute), 0.0)
        << "rank " << r;
  }
  // Busy time never exceeds the makespan.
  for (int r = 0; r < topo.total_procs(); ++r) {
    EXPECT_LE(log.busy_seconds(r), engine.makespan() * (1.0 + 1e-12));
  }
  // The rendering covers all ranks and parses without throwing.
  const std::string out =
      render_timeline(log, topo.total_procs(), engine.makespan(), 60);
  EXPECT_NE(out.find("rank    7"), std::string::npos);
}

TEST(Trace, DisabledByDefault) {
  GridTopology topo = tiny_topology();
  DesEngine engine(&topo, unit_roofline());
  engine.compute(0, 5.0, 0);
  // No crash, nothing recorded anywhere (no log attached).
  SUCCEED();
}

}  // namespace
}  // namespace qrgrid::simgrid

#include "linalg/gram_schmidt.hpp"

#include <gtest/gtest.h>

#include "linalg/generators.hpp"
#include "linalg/norms.hpp"

namespace qrgrid {
namespace {

TEST(GramSchmidt, ClassicalFactorsWellConditionedMatrix) {
  Matrix a = random_gaussian(50, 8, 600);
  GramSchmidtResult res = classical_gram_schmidt(a.view());
  EXPECT_TRUE(is_upper_triangular(res.r.view()));
  EXPECT_LT(orthogonality_error(res.q.view()), 1e-12);
  EXPECT_LT(factorization_residual(a.view(), res.q.view(), res.r.view()),
            1e-13);
}

TEST(GramSchmidt, ModifiedFactorsWellConditionedMatrix) {
  Matrix a = random_gaussian(50, 8, 601);
  GramSchmidtResult res = modified_gram_schmidt(a.view());
  EXPECT_LT(orthogonality_error(res.q.view()), 1e-12);
  EXPECT_LT(factorization_residual(a.view(), res.q.view(), res.r.view()),
            1e-13);
}

TEST(GramSchmidt, RDiagonalIsPositive) {
  Matrix a = random_gaussian(30, 5, 602);
  GramSchmidtResult cgs = classical_gram_schmidt(a.view());
  GramSchmidtResult mgs = modified_gram_schmidt(a.view());
  for (Index i = 0; i < 5; ++i) {
    EXPECT_GT(cgs.r(i, i), 0.0);
    EXPECT_GT(mgs.r(i, i), 0.0);
  }
}

TEST(GramSchmidt, ModifiedBeatsClassicalOnIllConditionedInput) {
  // The textbook separation: CGS loses orthogonality like cond^2, MGS like
  // cond. At cond ~ 1e6 the gap is dramatic.
  Matrix a = random_with_condition(120, 12, 1e6, 603);
  const double loss_cgs =
      orthogonality_error(classical_gram_schmidt(a.view()).q.view());
  const double loss_mgs =
      orthogonality_error(modified_gram_schmidt(a.view()).q.view());
  EXPECT_GT(loss_cgs, 10.0 * loss_mgs);
}

TEST(CholeskyQr, FactorsWellConditionedMatrix) {
  Matrix a = random_gaussian(60, 10, 604);
  CholeskyQrResult res = cholesky_qr(a.view());
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(is_upper_triangular(res.r.view()));
  EXPECT_LT(orthogonality_error(res.q.view()), 1e-11);
  EXPECT_LT(factorization_residual(a.view(), res.q.view(), res.r.view()),
            1e-12);
}

TEST(CholeskyQr, BreaksWhenGramMatrixLosesDefiniteness) {
  // cond(A) ~ 1e9 => cond(A^T A) ~ 1e18 > 1/eps: Cholesky must fail (or
  // at minimum the Q must be badly non-orthogonal).
  Matrix a = random_with_condition(100, 10, 1e9, 605);
  CholeskyQrResult res = cholesky_qr(a.view());
  if (res.ok) {
    EXPECT_GT(orthogonality_error(res.q.view()), 1e-4);
  } else {
    SUCCEED();
  }
}

}  // namespace
}  // namespace qrgrid

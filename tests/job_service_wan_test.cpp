// Shared-WAN contention engine: fair-share draining of the GridWanModel
// horizons, conservation of WAN bytes under concurrency, monotonicity of
// contended runtimes against the isolated replays, byte-identical
// reproduction of the contention-free service when nothing overlaps, and
// the network-aware placement preference for idle uplinks.
#include "sched/wan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <random>
#include <vector>

#include "sched/service.hpp"
#include "sched/workload.hpp"

namespace qrgrid::sched {
namespace {

using Pool = GridWanModel::Pool;
using Link = GridWanModel::Pool::Link;

Pool make_pool(Link link, int cluster, double bytes, double activation_s) {
  Pool pool;
  pool.link = link;
  pool.cluster = cluster;
  pool.bytes = bytes;
  pool.activation_s = activation_s;
  return pool;
}

simgrid::GridTopology small_grid() {
  // 2 sites x 2 nodes x 2 procs = 8 processes, 4 nodes.
  return simgrid::GridTopology::grid5000(2, 2, 2);
}

Job make_job(int id, double arrival_s, double m, int n, int procs) {
  Job job;
  job.id = id;
  job.arrival_s = arrival_s;
  job.m = m;
  job.n = n;
  job.procs = procs;
  return job;
}

long long sum(const std::vector<long long>& v) {
  return std::accumulate(v.begin(), v.end(), 0LL);
}

// --- GridWanModel unit level -------------------------------------------

TEST(WanModel, SingleFlowDrainsAtFullCapacity) {
  // 100 B/s uplink: 1000 bytes activating at t=2 drain at t=12 exactly.
  GridWanModel wan(2, 100.0, 200.0);
  const int flow = wan.admit(0.0, {make_pool(Link::kUplink, 0, 1000.0, 2.0)});
  EXPECT_FALSE(wan.drained(flow));
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 2.0);  // the activation
  wan.advance(0.0, 2.0);
  EXPECT_DOUBLE_EQ(wan.next_event_s(2.0), 12.0);  // the drain
  wan.advance(2.0, 12.0);
  ASSERT_TRUE(wan.drained(flow));
  EXPECT_DOUBLE_EQ(wan.drained_at_s(flow), 12.0);
  // Busy time covers exactly the active interval, not the idle prefix.
  EXPECT_DOUBLE_EQ(wan.uplink_busy_s(0), 10.0);
  EXPECT_DOUBLE_EQ(wan.uplink_busy_s(1), 0.0);
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(flow, egress, ingress);
  EXPECT_EQ(egress[0], 1000);
  EXPECT_EQ(sum(ingress), 0);
}

TEST(WanModel, FairShareHalvesRateAndRecoversOnRetire) {
  // Two flows on the same uplink from t=0: each gets 50 B/s. Flow A's
  // 500 bytes would alone take 5 s; shared, its first event is at 10 s —
  // but flow B retires at t=4, after which A drains at full rate.
  GridWanModel wan(1, 100.0, 100.0);
  const int a = wan.admit(0.0, {make_pool(Link::kUplink, 0, 500.0, 0.0)});
  const int b = wan.admit(0.0, {make_pool(Link::kUplink, 0, 900.0, 0.0)});
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 10.0);
  wan.advance(0.0, 4.0);  // a: 500-200=300 left, b: 900-200=700 left
  std::vector<long long> egress(1, 0), ingress(1, 0);
  wan.retire(b, egress, ingress);
  EXPECT_EQ(egress[0], 200);  // what b actually moved before dying
  // Alone now: 300 bytes at 100 B/s -> drained at t=7.
  EXPECT_DOUBLE_EQ(wan.next_event_s(4.0), 7.0);
  wan.advance(4.0, 7.0);
  ASSERT_TRUE(wan.drained(a));
  EXPECT_DOUBLE_EQ(wan.drained_at_s(a), 7.0);
  wan.retire(a, egress, ingress);
  EXPECT_EQ(egress[0], 700);  // 200 from b + 500 from a
}

TEST(WanModel, BackboneCouplesDisjointUplinks) {
  // Two flows on DIFFERENT uplinks but one shared backbone sized below
  // their sum: the backbone pools halve, the uplink pools do not.
  GridWanModel wan(2, 100.0, 100.0);
  const int a = wan.admit(0.0, {make_pool(Link::kUplink, 0, 400.0, 0.0),
                                make_pool(Link::kBackbone, -1, 400.0, 0.0)});
  const int b = wan.admit(0.0, {make_pool(Link::kUplink, 1, 400.0, 0.0),
                                make_pool(Link::kBackbone, -1, 400.0, 0.0)});
  // Uplinks drain in 4 s; backbones shared at 50 B/s need 8 s.
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 4.0);
  wan.advance(0.0, 4.0);
  EXPECT_FALSE(wan.drained(a));
  EXPECT_DOUBLE_EQ(wan.next_event_s(4.0), 8.0);
  wan.advance(4.0, 8.0);
  EXPECT_TRUE(wan.drained(a));
  EXPECT_TRUE(wan.drained(b));
  EXPECT_DOUBLE_EQ(wan.backbone_busy_s(), 8.0);
  EXPECT_DOUBLE_EQ(wan.uplink_busy_s(0), 4.0);
}

TEST(WanModel, LoadScoreCountsPendingAndActiveFlows) {
  GridWanModel wan(2, 100.0, 100.0);
  // Pending activation still counts: it will contend before a job placed
  // now reaches its own WAN phase.
  const int flow = wan.admit(0.0, {make_pool(Link::kUplink, 0, 100.0, 50.0)});
  EXPECT_EQ(wan.load_score(0), 1);
  EXPECT_EQ(wan.load_score(1), 0);
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(flow, egress, ingress);
  EXPECT_EQ(wan.load_score(0), 0);
}

TEST(WanModel, SubEpsilonResidualRetiresAtRelativeTolerance) {
  // A 1e15-byte transfer at 100 B/s, advanced to 1 s short of its
  // nominal drain instant: the 100-byte residual is 1e-13 of the
  // transfer — floating-point noise at this scale, below the drain
  // kernel's relative tolerance (1e-12 of the initial demand). The pool
  // must retire HERE, not schedule another share change for the noise,
  // and retire() must credit the full demand, not demand minus noise.
  GridWanModel wan(2, 100.0, 200.0);
  const int flow = wan.admit(0.0, {make_pool(Link::kUplink, 0, 1e15, 0.0)});
  wan.advance(0.0, 1.0e13 - 1.0);
  EXPECT_TRUE(wan.drained(flow));
  EXPECT_DOUBLE_EQ(wan.drained_at_s(flow), 1.0e13 - 1.0);
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(flow, egress, ingress);
  EXPECT_EQ(egress[0], 1000000000000000LL);

  // A residual WELL above the tolerance (1e4 bytes, 1e-11 of the
  // transfer) is real remaining demand: it keeps draining and the flow
  // retires exactly at the true drain instant.
  GridWanModel wan2(2, 100.0, 200.0);
  const int flow2 = wan2.admit(0.0, {make_pool(Link::kUplink, 0, 1e15, 0.0)});
  wan2.advance(0.0, 1.0e13 - 100.0);
  EXPECT_FALSE(wan2.drained(flow2));
  EXPECT_DOUBLE_EQ(wan2.next_event_s(1.0e13 - 100.0), 1.0e13);
  wan2.advance(1.0e13 - 100.0, 1.0e13);
  EXPECT_TRUE(wan2.drained(flow2));
  EXPECT_DOUBLE_EQ(wan2.drained_at_s(flow2), 1.0e13);
}

// --- Incremental max-min maintenance ------------------------------------

/// Scripted random churn against a model: admissions with mixed
/// immediate/deferred activations, event-aligned and mid-interval
/// advances, mid-flight retirements, and planning-estimate queries — the
/// full structural-event vocabulary the incremental engine must absorb.
/// Drives `models` in lockstep (identical op stream) so a test can
/// compare a model that is consulted constantly against a twin that is
/// consulted once. Returns the surviving flow ids.
std::vector<int> churn_models(std::vector<GridWanModel*> models,
                              std::mt19937& rng, int ops, int num_clusters,
                              bool pair_peers, bool query_first_each_op) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<int> live;
  std::vector<long long> egress(num_clusters, 0), ingress(num_clusters, 0);
  std::vector<double> estimates;
  double now = 0.0;
  for (int op = 0; op < ops; ++op) {
    const double roll = unit(rng);
    if (roll < 0.4 || live.empty()) {
      std::vector<Pool> pools;
      const int count = 1 + static_cast<int>(unit(rng) * 3.0);
      for (int p = 0; p < count; ++p) {
        Pool pool;
        const double kind = unit(rng);
        if (kind < 0.5) {
          pool.link = Link::kUplink;
          pool.cluster = static_cast<int>(unit(rng) * num_clusters);
          if (pair_peers) {
            pool.peer = static_cast<int>(unit(rng) * num_clusters);
          }
        } else if (kind < 0.85) {
          pool.link = Link::kDownlink;
          pool.cluster = static_cast<int>(unit(rng) * num_clusters);
        } else {
          pool.link = Link::kBackbone;  // dropped under max-min: that
          pool.cluster = -1;            // code path must stay exact too
        }
        pool.bytes = 1.0 + std::floor(unit(rng) * 1e6);
        pool.activation_s =
            now + (unit(rng) < 0.5 ? 0.0 : unit(rng) * 3.0);
        pools.push_back(pool);
      }
      int id = -1;
      for (GridWanModel* wan : models) id = wan->admit(now, pools);
      live.push_back(id);  // lockstep models assign identical slot ids
    } else if (roll < 0.55) {
      const auto pick = static_cast<std::size_t>(unit(rng) * live.size());
      for (GridWanModel* wan : models) {
        wan->retire(live[pick], egress, ingress);
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 0.7) {
      for (GridWanModel* wan : models) {
        wan->drain_estimates_s(now, live, estimates);
      }
    } else {
      const double next = models.front()->next_event_s(now);
      const double to = std::isfinite(next)
                            ? (unit(rng) < 0.5
                                   ? next
                                   : now + (next - now) * unit(rng))
                            : now + 1.0;
      for (GridWanModel* wan : models) wan->advance(now, to);
      now = to;
    }
    if (query_first_each_op) {
      models.front()->drain_estimates_s(now, live, estimates);
    }
    // Shed drained flows occasionally so slot recycling gets exercised.
    if (!live.empty() && unit(rng) < 0.2) {
      const int flow = live.back();
      if (models.front()->drained(flow)) {
        for (GridWanModel* wan : models) wan->retire(flow, egress, ingress);
        live.pop_back();
      }
    }
  }
  return live;
}

TEST(WanModelIncremental, RandomChurnMatchesGlobalOracle) {
  // The differential acceptance gate: with the oracle armed, EVERY
  // component rebalance is shadowed by a global fill over the time-based
  // demand view and compared rate-by-rate. The incremental path is
  // bit-identical by construction (same allocator, same demand order,
  // same arithmetic), so the recorded divergence must be exactly zero —
  // the 1e-12 bound is the acceptance threshold, the zero is what
  // construction promises.
  for (const unsigned seed : {11u, 23u, 57u}) {
    GridWanModel wan(4, 100.0, 250.0, WanFairness::kMaxMin);
    wan.set_rate_oracle_check(true);
    std::mt19937 rng(seed);
    churn_models({&wan}, rng, 400, 4, /*pair_peers=*/false,
                 /*query_first_each_op=*/false);
    EXPECT_GT(wan.rebalance_recomputes(), 0u) << "seed " << seed;
    EXPECT_LE(wan.max_oracle_rate_error(), 1e-12) << "seed " << seed;
    EXPECT_EQ(wan.max_oracle_rate_error(), 0.0) << "seed " << seed;
  }
}

TEST(WanModelIncremental, RandomChurnMatchesOracleWithPairHorizons) {
  // Same gate on the pair-horizon configuration: per-(src,dst) links
  // multiply the graph (uplinks split per peer), so components are
  // richer and the closure has more ways to go wrong.
  std::vector<double> pair_Bps(3 * 3, 0.0);
  pair_Bps[0 * 3 + 1] = 40.0;  // tight horizon
  pair_Bps[1 * 3 + 2] = 60.0;
  pair_Bps[2 * 3 + 0] = 25.0;  // tighter than any uplink share
  for (const unsigned seed : {5u, 71u}) {
    GridWanModel wan(3, 100.0, 250.0, WanFairness::kMaxMin, pair_Bps);
    ASSERT_TRUE(wan.pair_aware());
    wan.set_rate_oracle_check(true);
    std::mt19937 rng(seed);
    churn_models({&wan}, rng, 400, 3, /*pair_peers=*/true,
                 /*query_first_each_op=*/false);
    EXPECT_GT(wan.rebalance_recomputes(), 0u) << "seed " << seed;
    EXPECT_EQ(wan.max_oracle_rate_error(), 0.0) << "seed " << seed;
  }
}

TEST(WanModelIncremental, UnconstrainedBackboneMatchesHugeFiniteTrunk) {
  // An infinite backbone drops out of the constraint graph entirely
  // (links_of never emits it), which must be allocation-equivalent to a
  // finite trunk too wide to ever bind: the progressive filling never
  // selects a non-binding link as bottleneck, so every rate is computed
  // through the identical freeze sequence. Twin models under lockstep
  // churn must agree bitwise — while the infinite-trunk twin touches
  // strictly fewer links (no shared trunk chaining every uplink flow
  // into one graph-wide component).
  GridWanModel finite(4, 100.0, 1e18, WanFairness::kMaxMin);
  GridWanModel infinite(4, 100.0,
                        std::numeric_limits<double>::infinity(),
                        WanFairness::kMaxMin);
  infinite.set_rate_oracle_check(true);
  std::mt19937 rng(37);
  const std::vector<int> live =
      churn_models({&finite, &infinite}, rng, 400, 4, /*pair_peers=*/false,
                   /*query_first_each_op=*/true);
  EXPECT_EQ(infinite.max_oracle_rate_error(), 0.0);
  std::vector<double> from_finite, from_infinite;
  const double now = 1e7;  // past every activation in the script
  finite.drain_estimates_s(now, live, from_finite);
  infinite.drain_estimates_s(now, live, from_infinite);
  ASSERT_EQ(from_finite.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(from_finite[i], from_infinite[i]) << "flow " << live[i];
  }
  EXPECT_GT(infinite.rebalance_recomputes(), 0u);
  EXPECT_LT(infinite.rebalance_links_touched(),
            finite.rebalance_links_touched());
  EXPECT_LE(infinite.rebalance_full_refills(),
            finite.rebalance_full_refills());
}

TEST(WanModelIncremental, UnconstrainedBackboneKeepsComponentsLocal) {
  // With the trunk out of the graph, flows on distinct site links are
  // distinct components: an event on one must not drag the other into
  // its repair, and a repair of one island is NOT a full refill.
  GridWanModel wan(2, 100.0, std::numeric_limits<double>::infinity(),
                   WanFairness::kMaxMin);
  const int a = wan.admit(0.0, {make_pool(Link::kUplink, 0, 1000.0, 0.0)});
  wan.admit(0.0, {make_pool(Link::kUplink, 1, 800.0, 0.0)});
  // First consultation repairs both freshly-dirtied islands in one pass:
  // two links (no trunk), and since that pass covers every busy link it
  // IS a full refill. Each flow fills to its full site rate.
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 8.0);
  EXPECT_EQ(wan.rebalance_recomputes(), 1u);
  EXPECT_EQ(wan.rebalance_links_touched(), 2u);
  EXPECT_EQ(wan.rebalance_full_refills(), 1u);
  // The trunk still carries the busy statistic via the load counter
  // even though no demand maps onto the backbone link.
  wan.advance(0.0, 2.0);
  EXPECT_DOUBLE_EQ(wan.backbone_busy_s(), 2.0);
  // Retiring island 0 mid-flight dirties only its own link: the repair
  // touches one link and leaves island 1 alone — not a full refill.
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(a, egress, ingress);
  wan.next_event_s(2.0);
  EXPECT_EQ(wan.rebalance_recomputes(), 2u);
  EXPECT_EQ(wan.rebalance_links_touched(), 3u);
  EXPECT_EQ(wan.rebalance_full_refills(), 1u);
}

TEST(WanModelIncremental, EstimateBasisCacheIsTransparent) {
  // Twin models run the identical op script; one is asked for planning
  // estimates after EVERY op (hot cache, reused basis), the twin only at
  // the very end (cold, basis computed fresh). The answers must match
  // bitwise in both fairness modes — the cache is an optimization, never
  // a semantic.
  for (const WanFairness fairness :
       {WanFairness::kEqualSplit, WanFairness::kMaxMin}) {
    GridWanModel hot(4, 100.0, 250.0, fairness);
    GridWanModel cold(4, 100.0, 250.0, fairness);
    std::mt19937 rng(2026);
    const std::vector<int> live =
        churn_models({&hot, &cold}, rng, 300, 4, /*pair_peers=*/false,
                     /*query_first_each_op=*/true);
    std::vector<double> from_hot, from_cold;
    const double now = 1e7;  // past every activation in the script
    hot.drain_estimates_s(now, live, from_hot);
    cold.drain_estimates_s(now, live, from_cold);
    ASSERT_EQ(from_hot.size(), live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(from_hot[i], from_cold[i])
          << "flow " << live[i] << " under "
          << wan_fairness_name(fairness);
    }
  }
}

TEST(WanModelIncremental, SameInstantEventsCoalesceIntoOneRebalance) {
  // Two admissions and one mid-flight retirement land at the same
  // instant with no consultation in between: three structural events,
  // ONE repair when the model is next asked a question.
  GridWanModel wan(2, 100.0, 200.0, WanFairness::kMaxMin);
  wan.admit(0.0, {make_pool(Link::kUplink, 0, 1000.0, 0.0)});
  const int b = wan.admit(0.0, {make_pool(Link::kUplink, 0, 900.0, 0.0)});
  const int c = wan.admit(0.0, {make_pool(Link::kUplink, 0, 600.0, 0.0)});
  EXPECT_EQ(wan.rebalance_events(), 3u);
  EXPECT_EQ(wan.rebalance_recomputes(), 0u);  // lazy: nothing consulted yet
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(c, egress, ingress);
  EXPECT_EQ(wan.rebalance_events(), 4u);  // undrained retirement counts
  EXPECT_EQ(wan.rebalance_recomputes(), 0u);
  // First consultation repairs once for all four events: two survivors
  // share 100 B/s, so the 900-byte flow dries at t=18.
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 18.0);
  EXPECT_EQ(wan.rebalance_recomputes(), 1u);
  EXPECT_LE(wan.rebalance_full_refills(), wan.rebalance_recomputes());
  wan.advance(0.0, 18.0);
  EXPECT_TRUE(wan.drained(b));
}

TEST(WanModelIncremental, EqualSplitReportsNoRebalanceCounters) {
  // The counters are the incremental engine's telemetry; the equal-split
  // baseline keeps its legacy time-based path and must stay silent.
  GridWanModel wan(2, 100.0, 200.0, WanFairness::kEqualSplit);
  const int flow = wan.admit(0.0, {make_pool(Link::kUplink, 0, 500.0, 0.0)});
  wan.advance(0.0, wan.next_event_s(0.0));
  EXPECT_TRUE(wan.drained(flow));
  EXPECT_EQ(wan.rebalance_events(), 0u);
  EXPECT_EQ(wan.rebalance_recomputes(), 0u);
  EXPECT_EQ(wan.rebalance_links_touched(), 0u);
  EXPECT_EQ(wan.rebalance_full_refills(), 0u);
  // The estimate-basis generation still advances (both modes share the
  // cached planning basis), so estimates stay fresh across drains.
  EXPECT_GT(wan.rebalance_generation(), 0u);
}

// --- Service level ------------------------------------------------------

/// Mixed wide/filler workload on the 4-site grid: 68- and 132-proc jobs
/// span 2-3 clusters (flat trees, so every remote domain ships its R
/// factor across the WAN), while single-cluster fillers fragment the
/// node pool — the state in which concurrent WAN phases genuinely
/// overlap on shared uplinks. Nodes-exclusive majorities make that
/// impossible on a 2-site grid, which is exactly why the contention
/// engine needs wide grids to bite.
simgrid::GridTopology wide_grid() {
  return simgrid::GridTopology::grid5000(4, 32, 2);
}

std::vector<Job> overlapping_wide_jobs() {
  WorkloadSpec spec;
  spec.jobs = 24;
  spec.mean_interarrival_s = 0.4;
  spec.m_choices = {1 << 17, 1 << 18};
  spec.n_choices = {256, 512};
  spec.procs_choices = {24, 48, 68, 132};
  spec.tree_choices = {core::TreeKind::kFlat};
  spec.seed = 53;
  return generate_workload(spec);
}

ServiceOptions thin_wan_options(bool contention) {
  ServiceOptions options;
  options.wan_contention = contention;
  options.wan_link_Bps = 0.02e9 / 8.0;  // 20 Mb/s: the WAN phase matters
  return options;
}

ServiceOptions thin_maxmin_options(bool contention) {
  ServiceOptions options = thin_wan_options(contention);
  options.wan_fairness = WanFairness::kMaxMin;
  return options;
}

TEST(WanService, ConservationUnderConcurrency) {
  GridJobService service(wide_grid(), model::paper_calibration(),
                         thin_wan_options(true));
  const ServiceReport report = service.run(overlapping_wide_jobs());
  ASSERT_EQ(report.completed_jobs, 24);
  EXPECT_GT(sum(report.wan_egress_bytes), 0);
  EXPECT_EQ(sum(report.wan_egress_bytes), sum(report.wan_ingress_bytes));

  // The contention-free service conserves too. (Cross-run byte identity
  // is NOT expected here: stretched finish times shift later dispatch
  // decisions, so the two runs legitimately choose different placements
  // with different WAN footprints — the serial-workload test below pins
  // the case where the schedules must coincide.)
  GridJobService isolated(wide_grid(), model::paper_calibration(),
                          thin_wan_options(false));
  const ServiceReport off = isolated.run(overlapping_wide_jobs());
  EXPECT_EQ(sum(off.wan_egress_bytes), sum(off.wan_ingress_bytes));
  EXPECT_GT(sum(off.wan_egress_bytes), 0);
}

TEST(WanService, ContendedRuntimesAreMonotoneAndStretchUnderLoad) {
  GridJobService service(wide_grid(), model::paper_calibration(),
                         thin_wan_options(true));
  const ServiceReport contended = service.run(overlapping_wide_jobs());
  GridJobService isolated(wide_grid(), model::paper_calibration(),
                          thin_wan_options(false));
  const ServiceReport alone = isolated.run(overlapping_wide_jobs());

  // The acceptance gate: a shared WAN can only ever stretch a job.
  for (const JobOutcome& o : contended.outcomes) {
    ASSERT_TRUE(o.completed());
    EXPECT_GE(o.wan_slowdown, 1.0 - 1e-9) << "job " << o.job.id;
  }
  EXPECT_GT(contended.max_wan_slowdown, 1.0);  // overlap really happened
  EXPECT_GE(contended.makespan_s, alone.makespan_s * (1.0 - 1e-12));
  EXPECT_GT(max_wan_busy_fraction(contended), 0.0);
  // The contention-free run reports neutral WAN columns.
  EXPECT_EQ(alone.mean_wan_slowdown, 1.0);
  EXPECT_EQ(max_wan_busy_fraction(alone), 0.0);
}

TEST(WanService, ZeroContentionReproducesCachedReplayTimes) {
  // Serial workload (gaps dwarf every runtime): with nothing overlapping,
  // the contention engine must reproduce the PR-2 service exactly — an
  // isolated flow drains no later than its replay end by construction.
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(i, 1e5 * i, 1 << 18, 128, 8));
  }
  for (const Policy policy :
       {Policy::kFcfs, Policy::kSpjf, Policy::kEasyBackfill}) {
    ServiceOptions on;
    on.policy = policy;
    on.wan_contention = true;
    ServiceOptions off = on;
    off.wan_contention = false;
    const ServiceReport a =
        GridJobService(small_grid(), model::paper_calibration(), on)
            .run(jobs);
    const ServiceReport b =
        GridJobService(small_grid(), model::paper_calibration(), off)
            .run(jobs);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s);
      EXPECT_EQ(a.outcomes[i].finish_s, b.outcomes[i].finish_s);
      EXPECT_EQ(a.outcomes[i].wan_slowdown, 1.0);
    }
    EXPECT_EQ(a.wan_egress_bytes, b.wan_egress_bytes);
    // Summary rows agree on every column except the busy fractions (the
    // links WERE occupied by the serial flows, one at a time) — located
    // by header name so appended columns never silently shift the skip.
    const std::vector<std::string> header = summary_header();
    const auto busy_at = static_cast<std::ptrdiff_t>(
        std::find(header.begin(), header.end(), "wan busy %") -
        header.begin());
    ASSERT_LT(busy_at, static_cast<std::ptrdiff_t>(header.size()));
    std::vector<std::string> row_on = summary_row(a);
    std::vector<std::string> row_off = summary_row(b);
    row_on.erase(row_on.begin() + busy_at);
    row_off.erase(row_off.begin() + busy_at);
    EXPECT_EQ(row_on, row_off) << policy_name(policy);
  }
}

TEST(WanService, DeterministicUnderContention) {
  WorkloadSpec spec;
  spec.jobs = 40;
  spec.procs_choices = {4, 8};
  spec.mean_interarrival_s = 0.1;
  spec.seed = 47;
  ServiceOptions options = thin_wan_options(true);
  options.policy = Policy::kEasyBackfill;
  options.wan_aware = true;
  GridJobService first(small_grid(), model::paper_calibration(), options);
  GridJobService second(small_grid(), model::paper_calibration(), options);
  const std::vector<std::string> a = summary_row(first.run(generate_workload(spec)));
  const std::vector<std::string> b =
      summary_row(second.run(generate_workload(spec)));
  EXPECT_EQ(a, b);
  // And the same service replaying the workload must not drift (the WAN
  // model is rebuilt per run, like the outage trace).
  const std::vector<std::string> c =
      summary_row(first.run(generate_workload(spec)));
  EXPECT_EQ(a, c);
}

// The PR-old acceptance gates re-run against the incremental max-min
// path: same physics, new maintenance. Conservation, monotonicity,
// zero-contention identity, and determinism must survive the rewrite.

TEST(WanServiceMaxMin, ConservationUnderConcurrency) {
  GridJobService service(wide_grid(), model::paper_calibration(),
                         thin_maxmin_options(true));
  const ServiceReport report = service.run(overlapping_wide_jobs());
  ASSERT_EQ(report.completed_jobs, 24);
  EXPECT_GT(sum(report.wan_egress_bytes), 0);
  EXPECT_EQ(sum(report.wan_egress_bytes), sum(report.wan_ingress_bytes));
}

TEST(WanServiceMaxMin, ContendedRuntimesAreMonotoneAndStretchUnderLoad) {
  GridJobService service(wide_grid(), model::paper_calibration(),
                         thin_maxmin_options(true));
  const ServiceReport contended = service.run(overlapping_wide_jobs());
  GridJobService isolated(wide_grid(), model::paper_calibration(),
                          thin_maxmin_options(false));
  const ServiceReport alone = isolated.run(overlapping_wide_jobs());
  for (const JobOutcome& o : contended.outcomes) {
    ASSERT_TRUE(o.completed());
    EXPECT_GE(o.wan_slowdown, 1.0 - 1e-9) << "job " << o.job.id;
  }
  EXPECT_GT(contended.max_wan_slowdown, 1.0);  // overlap really happened
  EXPECT_GE(contended.makespan_s, alone.makespan_s * (1.0 - 1e-12));
  EXPECT_GT(max_wan_busy_fraction(contended), 0.0);
}

TEST(WanServiceMaxMin, ZeroContentionReproducesCachedReplayTimes) {
  // Serial workload: with nothing overlapping, progressive filling gives
  // every lone flow its full link rate, so the incremental max-min
  // service must reproduce the contention-free times exactly.
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(i, 1e5 * i, 1 << 18, 128, 8));
  }
  ServiceOptions on;
  on.wan_contention = true;
  on.wan_fairness = WanFairness::kMaxMin;
  ServiceOptions off;
  off.wan_contention = false;
  const ServiceReport a =
      GridJobService(small_grid(), model::paper_calibration(), on).run(jobs);
  const ServiceReport b =
      GridJobService(small_grid(), model::paper_calibration(), off)
          .run(jobs);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s);
    EXPECT_EQ(a.outcomes[i].finish_s, b.outcomes[i].finish_s);
    EXPECT_EQ(a.outcomes[i].wan_slowdown, 1.0);
  }
  EXPECT_EQ(a.wan_egress_bytes, b.wan_egress_bytes);
}

TEST(WanServiceMaxMin, DeterministicUnderContention) {
  WorkloadSpec spec;
  spec.jobs = 40;
  spec.procs_choices = {4, 8};
  spec.mean_interarrival_s = 0.1;
  spec.seed = 47;
  ServiceOptions options = thin_maxmin_options(true);
  options.policy = Policy::kEasyBackfill;
  options.wan_aware = true;
  GridJobService first(small_grid(), model::paper_calibration(), options);
  GridJobService second(small_grid(), model::paper_calibration(), options);
  const std::vector<std::string> a =
      summary_row(first.run(generate_workload(spec)));
  const std::vector<std::string> b =
      summary_row(second.run(generate_workload(spec)));
  EXPECT_EQ(a, b);
  const std::vector<std::string> c =
      summary_row(first.run(generate_workload(spec)));
  EXPECT_EQ(a, c);
}

TEST(WanService, NetworkAwarePlacementPrefersIdleUplinks) {
  // 4 sites x 16 nodes x 2 procs. A wide job pins WAN flows on sites
  // {0,1}; two single-cluster fillers occupy sites 2 and 3 but move no
  // WAN bytes; a second wide job then fits either {0,1} (naive first-fit
  // from site 0) or {2,3} (idle uplinks). Network-aware dispatch must
  // pick the idle pair.
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(4, 16, 2);
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 1 << 22, 64, 34));   // wide, long: {0,1}
  jobs.push_back(make_job(1, 0.1, 1 << 20, 64, 18));   // filler: site 2
  jobs.push_back(make_job(2, 0.2, 1 << 20, 64, 18));   // filler: site 3
  jobs.push_back(make_job(3, 0.3, 1 << 17, 64, 26));   // wide: the choice

  ServiceOptions naive;
  naive.wan_contention = true;
  const ServiceReport plain =
      GridJobService(topo, model::paper_calibration(), naive).run(jobs);
  ServiceOptions aware = naive;
  aware.wan_aware = true;
  const ServiceReport steered =
      GridJobService(topo, model::paper_calibration(), aware).run(jobs);

  ASSERT_EQ(plain.outcomes[3].clusters, (std::vector<int>{0, 1}));
  ASSERT_EQ(steered.outcomes[3].clusters, (std::vector<int>{2, 3}));
  // Same feasibility, same grid: steering away from busy uplinks can
  // only help the makespan.
  EXPECT_LE(steered.makespan_s, plain.makespan_s * (1.0 + 1e-12));
}

}  // namespace
}  // namespace qrgrid::sched

// Shared-WAN contention engine: fair-share draining of the GridWanModel
// horizons, conservation of WAN bytes under concurrency, monotonicity of
// contended runtimes against the isolated replays, byte-identical
// reproduction of the contention-free service when nothing overlaps, and
// the network-aware placement preference for idle uplinks.
#include "sched/wan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "sched/service.hpp"
#include "sched/workload.hpp"

namespace qrgrid::sched {
namespace {

using Pool = GridWanModel::Pool;
using Link = GridWanModel::Pool::Link;

Pool make_pool(Link link, int cluster, double bytes, double activation_s) {
  Pool pool;
  pool.link = link;
  pool.cluster = cluster;
  pool.bytes = bytes;
  pool.activation_s = activation_s;
  return pool;
}

simgrid::GridTopology small_grid() {
  // 2 sites x 2 nodes x 2 procs = 8 processes, 4 nodes.
  return simgrid::GridTopology::grid5000(2, 2, 2);
}

Job make_job(int id, double arrival_s, double m, int n, int procs) {
  Job job;
  job.id = id;
  job.arrival_s = arrival_s;
  job.m = m;
  job.n = n;
  job.procs = procs;
  return job;
}

long long sum(const std::vector<long long>& v) {
  return std::accumulate(v.begin(), v.end(), 0LL);
}

// --- GridWanModel unit level -------------------------------------------

TEST(WanModel, SingleFlowDrainsAtFullCapacity) {
  // 100 B/s uplink: 1000 bytes activating at t=2 drain at t=12 exactly.
  GridWanModel wan(2, 100.0, 200.0);
  const int flow = wan.admit(0.0, {make_pool(Link::kUplink, 0, 1000.0, 2.0)});
  EXPECT_FALSE(wan.drained(flow));
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 2.0);  // the activation
  wan.advance(0.0, 2.0);
  EXPECT_DOUBLE_EQ(wan.next_event_s(2.0), 12.0);  // the drain
  wan.advance(2.0, 12.0);
  ASSERT_TRUE(wan.drained(flow));
  EXPECT_DOUBLE_EQ(wan.drained_at_s(flow), 12.0);
  // Busy time covers exactly the active interval, not the idle prefix.
  EXPECT_DOUBLE_EQ(wan.uplink_busy_s(0), 10.0);
  EXPECT_DOUBLE_EQ(wan.uplink_busy_s(1), 0.0);
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(flow, egress, ingress);
  EXPECT_EQ(egress[0], 1000);
  EXPECT_EQ(sum(ingress), 0);
}

TEST(WanModel, FairShareHalvesRateAndRecoversOnRetire) {
  // Two flows on the same uplink from t=0: each gets 50 B/s. Flow A's
  // 500 bytes would alone take 5 s; shared, its first event is at 10 s —
  // but flow B retires at t=4, after which A drains at full rate.
  GridWanModel wan(1, 100.0, 100.0);
  const int a = wan.admit(0.0, {make_pool(Link::kUplink, 0, 500.0, 0.0)});
  const int b = wan.admit(0.0, {make_pool(Link::kUplink, 0, 900.0, 0.0)});
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 10.0);
  wan.advance(0.0, 4.0);  // a: 500-200=300 left, b: 900-200=700 left
  std::vector<long long> egress(1, 0), ingress(1, 0);
  wan.retire(b, egress, ingress);
  EXPECT_EQ(egress[0], 200);  // what b actually moved before dying
  // Alone now: 300 bytes at 100 B/s -> drained at t=7.
  EXPECT_DOUBLE_EQ(wan.next_event_s(4.0), 7.0);
  wan.advance(4.0, 7.0);
  ASSERT_TRUE(wan.drained(a));
  EXPECT_DOUBLE_EQ(wan.drained_at_s(a), 7.0);
  wan.retire(a, egress, ingress);
  EXPECT_EQ(egress[0], 700);  // 200 from b + 500 from a
}

TEST(WanModel, BackboneCouplesDisjointUplinks) {
  // Two flows on DIFFERENT uplinks but one shared backbone sized below
  // their sum: the backbone pools halve, the uplink pools do not.
  GridWanModel wan(2, 100.0, 100.0);
  const int a = wan.admit(0.0, {make_pool(Link::kUplink, 0, 400.0, 0.0),
                                make_pool(Link::kBackbone, -1, 400.0, 0.0)});
  const int b = wan.admit(0.0, {make_pool(Link::kUplink, 1, 400.0, 0.0),
                                make_pool(Link::kBackbone, -1, 400.0, 0.0)});
  // Uplinks drain in 4 s; backbones shared at 50 B/s need 8 s.
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), 4.0);
  wan.advance(0.0, 4.0);
  EXPECT_FALSE(wan.drained(a));
  EXPECT_DOUBLE_EQ(wan.next_event_s(4.0), 8.0);
  wan.advance(4.0, 8.0);
  EXPECT_TRUE(wan.drained(a));
  EXPECT_TRUE(wan.drained(b));
  EXPECT_DOUBLE_EQ(wan.backbone_busy_s(), 8.0);
  EXPECT_DOUBLE_EQ(wan.uplink_busy_s(0), 4.0);
}

TEST(WanModel, LoadScoreCountsPendingAndActiveFlows) {
  GridWanModel wan(2, 100.0, 100.0);
  // Pending activation still counts: it will contend before a job placed
  // now reaches its own WAN phase.
  const int flow = wan.admit(0.0, {make_pool(Link::kUplink, 0, 100.0, 50.0)});
  EXPECT_EQ(wan.load_score(0), 1);
  EXPECT_EQ(wan.load_score(1), 0);
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(flow, egress, ingress);
  EXPECT_EQ(wan.load_score(0), 0);
}

TEST(WanModel, SubEpsilonResidualRetiresAtRelativeTolerance) {
  // A 1e15-byte transfer at 100 B/s, advanced to 1 s short of its
  // nominal drain instant: the 100-byte residual is 1e-13 of the
  // transfer — floating-point noise at this scale, below the drain
  // kernel's relative tolerance (1e-12 of the initial demand). The pool
  // must retire HERE, not schedule another share change for the noise,
  // and retire() must credit the full demand, not demand minus noise.
  GridWanModel wan(2, 100.0, 200.0);
  const int flow = wan.admit(0.0, {make_pool(Link::kUplink, 0, 1e15, 0.0)});
  wan.advance(0.0, 1.0e13 - 1.0);
  EXPECT_TRUE(wan.drained(flow));
  EXPECT_DOUBLE_EQ(wan.drained_at_s(flow), 1.0e13 - 1.0);
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(flow, egress, ingress);
  EXPECT_EQ(egress[0], 1000000000000000LL);

  // A residual WELL above the tolerance (1e4 bytes, 1e-11 of the
  // transfer) is real remaining demand: it keeps draining and the flow
  // retires exactly at the true drain instant.
  GridWanModel wan2(2, 100.0, 200.0);
  const int flow2 = wan2.admit(0.0, {make_pool(Link::kUplink, 0, 1e15, 0.0)});
  wan2.advance(0.0, 1.0e13 - 100.0);
  EXPECT_FALSE(wan2.drained(flow2));
  EXPECT_DOUBLE_EQ(wan2.next_event_s(1.0e13 - 100.0), 1.0e13);
  wan2.advance(1.0e13 - 100.0, 1.0e13);
  EXPECT_TRUE(wan2.drained(flow2));
  EXPECT_DOUBLE_EQ(wan2.drained_at_s(flow2), 1.0e13);
}

// --- Service level ------------------------------------------------------

/// Mixed wide/filler workload on the 4-site grid: 68- and 132-proc jobs
/// span 2-3 clusters (flat trees, so every remote domain ships its R
/// factor across the WAN), while single-cluster fillers fragment the
/// node pool — the state in which concurrent WAN phases genuinely
/// overlap on shared uplinks. Nodes-exclusive majorities make that
/// impossible on a 2-site grid, which is exactly why the contention
/// engine needs wide grids to bite.
simgrid::GridTopology wide_grid() {
  return simgrid::GridTopology::grid5000(4, 32, 2);
}

std::vector<Job> overlapping_wide_jobs() {
  WorkloadSpec spec;
  spec.jobs = 24;
  spec.mean_interarrival_s = 0.4;
  spec.m_choices = {1 << 17, 1 << 18};
  spec.n_choices = {256, 512};
  spec.procs_choices = {24, 48, 68, 132};
  spec.tree_choices = {core::TreeKind::kFlat};
  spec.seed = 53;
  return generate_workload(spec);
}

ServiceOptions thin_wan_options(bool contention) {
  ServiceOptions options;
  options.wan_contention = contention;
  options.wan_link_Bps = 0.02e9 / 8.0;  // 20 Mb/s: the WAN phase matters
  return options;
}

TEST(WanService, ConservationUnderConcurrency) {
  GridJobService service(wide_grid(), model::paper_calibration(),
                         thin_wan_options(true));
  const ServiceReport report = service.run(overlapping_wide_jobs());
  ASSERT_EQ(report.completed_jobs, 24);
  EXPECT_GT(sum(report.wan_egress_bytes), 0);
  EXPECT_EQ(sum(report.wan_egress_bytes), sum(report.wan_ingress_bytes));

  // The contention-free service conserves too. (Cross-run byte identity
  // is NOT expected here: stretched finish times shift later dispatch
  // decisions, so the two runs legitimately choose different placements
  // with different WAN footprints — the serial-workload test below pins
  // the case where the schedules must coincide.)
  GridJobService isolated(wide_grid(), model::paper_calibration(),
                          thin_wan_options(false));
  const ServiceReport off = isolated.run(overlapping_wide_jobs());
  EXPECT_EQ(sum(off.wan_egress_bytes), sum(off.wan_ingress_bytes));
  EXPECT_GT(sum(off.wan_egress_bytes), 0);
}

TEST(WanService, ContendedRuntimesAreMonotoneAndStretchUnderLoad) {
  GridJobService service(wide_grid(), model::paper_calibration(),
                         thin_wan_options(true));
  const ServiceReport contended = service.run(overlapping_wide_jobs());
  GridJobService isolated(wide_grid(), model::paper_calibration(),
                          thin_wan_options(false));
  const ServiceReport alone = isolated.run(overlapping_wide_jobs());

  // The acceptance gate: a shared WAN can only ever stretch a job.
  for (const JobOutcome& o : contended.outcomes) {
    ASSERT_TRUE(o.completed());
    EXPECT_GE(o.wan_slowdown, 1.0 - 1e-9) << "job " << o.job.id;
  }
  EXPECT_GT(contended.max_wan_slowdown, 1.0);  // overlap really happened
  EXPECT_GE(contended.makespan_s, alone.makespan_s * (1.0 - 1e-12));
  EXPECT_GT(max_wan_busy_fraction(contended), 0.0);
  // The contention-free run reports neutral WAN columns.
  EXPECT_EQ(alone.mean_wan_slowdown, 1.0);
  EXPECT_EQ(max_wan_busy_fraction(alone), 0.0);
}

TEST(WanService, ZeroContentionReproducesCachedReplayTimes) {
  // Serial workload (gaps dwarf every runtime): with nothing overlapping,
  // the contention engine must reproduce the PR-2 service exactly — an
  // isolated flow drains no later than its replay end by construction.
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(i, 1e5 * i, 1 << 18, 128, 8));
  }
  for (const Policy policy :
       {Policy::kFcfs, Policy::kSpjf, Policy::kEasyBackfill}) {
    ServiceOptions on;
    on.policy = policy;
    on.wan_contention = true;
    ServiceOptions off = on;
    off.wan_contention = false;
    const ServiceReport a =
        GridJobService(small_grid(), model::paper_calibration(), on)
            .run(jobs);
    const ServiceReport b =
        GridJobService(small_grid(), model::paper_calibration(), off)
            .run(jobs);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s);
      EXPECT_EQ(a.outcomes[i].finish_s, b.outcomes[i].finish_s);
      EXPECT_EQ(a.outcomes[i].wan_slowdown, 1.0);
    }
    EXPECT_EQ(a.wan_egress_bytes, b.wan_egress_bytes);
    // Summary rows agree on every column except the busy fractions (the
    // links WERE occupied by the serial flows, one at a time) — located
    // by header name so appended columns never silently shift the skip.
    const std::vector<std::string> header = summary_header();
    const auto busy_at = static_cast<std::ptrdiff_t>(
        std::find(header.begin(), header.end(), "wan busy %") -
        header.begin());
    ASSERT_LT(busy_at, static_cast<std::ptrdiff_t>(header.size()));
    std::vector<std::string> row_on = summary_row(a);
    std::vector<std::string> row_off = summary_row(b);
    row_on.erase(row_on.begin() + busy_at);
    row_off.erase(row_off.begin() + busy_at);
    EXPECT_EQ(row_on, row_off) << policy_name(policy);
  }
}

TEST(WanService, DeterministicUnderContention) {
  WorkloadSpec spec;
  spec.jobs = 40;
  spec.procs_choices = {4, 8};
  spec.mean_interarrival_s = 0.1;
  spec.seed = 47;
  ServiceOptions options = thin_wan_options(true);
  options.policy = Policy::kEasyBackfill;
  options.wan_aware = true;
  GridJobService first(small_grid(), model::paper_calibration(), options);
  GridJobService second(small_grid(), model::paper_calibration(), options);
  const std::vector<std::string> a = summary_row(first.run(generate_workload(spec)));
  const std::vector<std::string> b =
      summary_row(second.run(generate_workload(spec)));
  EXPECT_EQ(a, b);
  // And the same service replaying the workload must not drift (the WAN
  // model is rebuilt per run, like the outage trace).
  const std::vector<std::string> c =
      summary_row(first.run(generate_workload(spec)));
  EXPECT_EQ(a, c);
}

TEST(WanService, NetworkAwarePlacementPrefersIdleUplinks) {
  // 4 sites x 16 nodes x 2 procs. A wide job pins WAN flows on sites
  // {0,1}; two single-cluster fillers occupy sites 2 and 3 but move no
  // WAN bytes; a second wide job then fits either {0,1} (naive first-fit
  // from site 0) or {2,3} (idle uplinks). Network-aware dispatch must
  // pick the idle pair.
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(4, 16, 2);
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 1 << 22, 64, 34));   // wide, long: {0,1}
  jobs.push_back(make_job(1, 0.1, 1 << 20, 64, 18));   // filler: site 2
  jobs.push_back(make_job(2, 0.2, 1 << 20, 64, 18));   // filler: site 3
  jobs.push_back(make_job(3, 0.3, 1 << 17, 64, 26));   // wide: the choice

  ServiceOptions naive;
  naive.wan_contention = true;
  const ServiceReport plain =
      GridJobService(topo, model::paper_calibration(), naive).run(jobs);
  ServiceOptions aware = naive;
  aware.wan_aware = true;
  const ServiceReport steered =
      GridJobService(topo, model::paper_calibration(), aware).run(jobs);

  ASSERT_EQ(plain.outcomes[3].clusters, (std::vector<int>{0, 1}));
  ASSERT_EQ(steered.outcomes[3].clusters, (std::vector<int>{2, 3}));
  // Same feasibility, same grid: steering away from busy uplinks can
  // only help the makespan.
  EXPECT_LE(steered.makespan_s, plain.makespan_s * (1.0 + 1e-12));
}

}  // namespace
}  // namespace qrgrid::sched

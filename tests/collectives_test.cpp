#include <gtest/gtest.h>

#include <numeric>

#include "msg/comm.hpp"

namespace qrgrid::msg {
namespace {

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, BcastFromEveryRoot) {
  const int p = GetParam();
  Runtime rt(p);
  for (int root = 0; root < p; ++root) {
    rt.run([&](Comm& comm) {
      std::vector<double> data;
      if (comm.rank() == root) data = {1.0, 2.0, 3.0};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[1], 2.0);
    });
  }
}

TEST_P(CollectivesTest, ReduceSumsToRoot) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& comm) {
    std::vector<double> data = {static_cast<double>(comm.rank() + 1), 1.0};
    comm.reduce(data, 0, [](std::span<double> acc, std::span<const double> in) {
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
    });
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(data[0], static_cast<double>(p * (p + 1) / 2));
      EXPECT_DOUBLE_EQ(data[1], static_cast<double>(p));
    }
  });
}

TEST_P(CollectivesTest, AllreduceSumEveryRankGetsTotal) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& comm) {
    std::vector<double> data = {static_cast<double>(comm.rank()), -1.0};
    comm.allreduce_sum(data);
    EXPECT_DOUBLE_EQ(data[0], static_cast<double>(p * (p - 1) / 2));
    EXPECT_DOUBLE_EQ(data[1], static_cast<double>(-p));
  });
}

TEST_P(CollectivesTest, AllreduceMax) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& comm) {
    std::vector<double> data = {static_cast<double>(comm.rank())};
    comm.allreduce(data, [](std::span<double> acc, std::span<const double> in) {
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = std::max(acc[i], in[i]);
      }
    });
    EXPECT_DOUBLE_EQ(data[0], static_cast<double>(p - 1));
  });
}

TEST_P(CollectivesTest, GatherConcatenatesInRankOrder) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& comm) {
    std::vector<double> mine = {static_cast<double>(comm.rank() * 10),
                                static_cast<double>(comm.rank() * 10 + 1)};
    std::vector<double> all = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r * 10);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesTest, AllgatherDeliversEverywhere) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& comm) {
    std::vector<double> mine = {static_cast<double>(comm.rank())};
    std::vector<double> all = comm.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], static_cast<double>(r));
    }
  });
}

TEST_P(CollectivesTest, BarrierCompletes) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([](Comm& comm) { comm.barrier(); });
  SUCCEED();
}

TEST_P(CollectivesTest, BackToBackCollectivesDoNotInterfere) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& comm) {
    for (int round = 0; round < 4; ++round) {
      std::vector<double> data = {static_cast<double>(round)};
      comm.allreduce_sum(data);
      EXPECT_DOUBLE_EQ(data[0], static_cast<double>(round * p));
      std::vector<double> b;
      if (comm.rank() == round % p) b = {static_cast<double>(round)};
      comm.bcast(b, round % p);
      EXPECT_EQ(b[0], static_cast<double>(round));
    }
  });
}

// Power-of-two and odd process counts exercise the butterfly fold paths.
INSTANTIATE_TEST_SUITE_P(ProcessCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

}  // namespace
}  // namespace qrgrid::msg

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace qrgrid {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    any_diff |= a2.next_u64() != c.next_u64();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, Uniform01StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0, sumsq = 0.0;
  const int count = 200000;
  for (int i = 0; i < count; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / count, 0.0, 0.02);
  EXPECT_NEAR(sumsq / count, 1.0, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(10);
  std::vector<int> counts(7, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) {
    const auto idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    counts[static_cast<std::size_t>(idx)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, draws / 7.0 * 0.08);
  }
}

TEST(Check, ThrowsWithContext) {
  try {
    QRGRID_CHECK_MSG(1 == 2, "context " << 42);
    FAIL();
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  QRGRID_CHECK(2 + 2 == 4);
  QRGRID_CHECK_MSG(true, "never evaluated");
  SUCCEED();
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += std::sqrt(i);
  EXPECT_GT(w.seconds(), 0.0);
  const double before_reset = w.seconds();
  w.reset();
  EXPECT_LT(w.seconds(), before_reset + 1.0);
}

TEST(TextTable, AlignsColumnsAndRightAlignsNumbers) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "200"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric cells are right-aligned: "200" ends at the same column as
  // "1.5" — both lines have equal length.
  std::istringstream lines(out);
  std::string header, rule, r1, r2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, r1);
  std::getline(lines, r2);
  EXPECT_EQ(r1.size(), r2.size());
}

TEST(TextTable, SetHeaderResetsRows) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  t.set_header({"b"});
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(FormatNumber, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(format_number(256.0), "256");
  EXPECT_EQ(format_number(33554432.0), "33554432");
}

TEST(FormatNumber, FractionsKeepPrecision) {
  EXPECT_EQ(format_number(3.14159, 3), "3.14");
  EXPECT_EQ(format_number(0.25), "0.25");
}

}  // namespace
}  // namespace qrgrid

#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"

namespace qrgrid {
namespace {

/// Reconstructs P A from the factored form and the pivot sequence.
Matrix reconstruct_pa(ConstMatrixView lu, const std::vector<Index>& ipiv,
                      ConstMatrixView a) {
  const Index m = a.rows();
  std::vector<Index> perm(static_cast<std::size_t>(m));
  for (Index i = 0; i < m; ++i) perm[static_cast<std::size_t>(i)] = i;
  apply_pivots(ipiv, perm);
  Matrix pa(m, a.cols());
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      pa(i, j) = a(perm[static_cast<std::size_t>(i)], j);
    }
  }
  (void)lu;
  return pa;
}

class GetrfTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GetrfTest, ReconstructsPermutedInput) {
  const auto [m, n] = GetParam();
  Matrix a = random_gaussian(m, n, 300 + m);
  Matrix f = Matrix::copy_of(a.view());
  std::vector<Index> ipiv;
  ASSERT_TRUE(getrf(f.view(), ipiv));

  // L (m x n unit lower trapezoidal) * U (n x n upper) == P A.
  const Index k = std::min<Index>(m, n);
  Matrix l(m, k);
  for (Index j = 0; j < k; ++j) {
    l(j, j) = 1.0;
    for (Index i = j + 1; i < m; ++i) l(i, j) = f(i, j);
  }
  Matrix u(k, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= std::min(j, k - 1); ++i) u(i, j) = f(i, j);
  }
  Matrix prod(m, n);
  gemm(Trans::No, Trans::No, 1.0, l.view(), u.view(), 0.0, prod.view());
  Matrix pa = reconstruct_pa(f.view(), ipiv, a.view());
  EXPECT_LT(max_abs_diff(prod.view(), pa.view()), 1e-10 * m);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GetrfTest,
                         ::testing::Combine(::testing::Values(4, 20, 50),
                                            ::testing::Values(1, 4, 20)));

TEST(Getrf, PartialPivotingBoundsMultipliers) {
  Matrix a = random_gaussian(30, 10, 310);
  std::vector<Index> ipiv;
  ASSERT_TRUE(getrf(a.view(), ipiv));
  // With partial pivoting every L multiplier has magnitude <= 1.
  for (Index j = 0; j < 10; ++j) {
    for (Index i = j + 1; i < 30; ++i) {
      EXPECT_LE(std::fabs(a(i, j)), 1.0 + 1e-14);
    }
  }
}

TEST(Getrf, SingularMatrixReturnsFalse) {
  Matrix a(5, 3);  // an all-zero column forces a zero pivot
  for (Index i = 0; i < 5; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 2) = static_cast<double>(2 * i + 1);
  }
  std::vector<Index> ipiv;
  EXPECT_FALSE(getrf(a.view(), ipiv));
}

TEST(Getrf, PivotSwapTrackingMatchesManualPermutation) {
  std::vector<Index> ipiv = {2, 2, 3};
  std::vector<Index> rows = {0, 1, 2, 3};
  apply_pivots(ipiv, rows);
  // step 0: swap(0,2) -> {2,1,0,3}; step 1: swap(1,2) -> {2,0,1,3};
  // step 2: swap(2,3) -> {2,0,3,1}
  EXPECT_EQ(rows, (std::vector<Index>{2, 0, 3, 1}));
}

TEST(Getrf, IdentityNeedsNoPivoting) {
  Matrix a = Matrix::identity(6);
  std::vector<Index> ipiv;
  ASSERT_TRUE(getrf(a.view(), ipiv));
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    EXPECT_EQ(ipiv[k], static_cast<Index>(k));
  }
}

}  // namespace
}  // namespace qrgrid

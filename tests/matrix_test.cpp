#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace qrgrid {
namespace {

TEST(Matrix, ConstructionZeroInitializes) {
  Matrix a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), 0.0);
  }
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix a(2, 3);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(0, 1) = 3.0;
  EXPECT_EQ(a.data()[0], 1.0);
  EXPECT_EQ(a.data()[1], 2.0);
  EXPECT_EQ(a.data()[2], 3.0);
}

TEST(Matrix, IdentityFactory) {
  Matrix eye = Matrix::identity(3);
  for (Index j = 0; j < 3; ++j) {
    for (Index i = 0; i < 3; ++i) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, ViewSharesStorage) {
  Matrix a(4, 4);
  MatrixView v = a.view();
  v(2, 3) = 7.5;
  EXPECT_EQ(a(2, 3), 7.5);
}

TEST(Matrix, BlockViewAddressesSubmatrix) {
  Matrix a(5, 5);
  for (Index j = 0; j < 5; ++j) {
    for (Index i = 0; i < 5; ++i) a(i, j) = static_cast<double>(10 * i + j);
  }
  MatrixView b = a.block(1, 2, 3, 2);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_EQ(b(0, 0), a(1, 2));
  EXPECT_EQ(b(2, 1), a(3, 3));
  b(0, 0) = -1.0;
  EXPECT_EQ(a(1, 2), -1.0);
}

TEST(Matrix, NestedBlocksCompose) {
  Matrix a(6, 6);
  a(3, 4) = 42.0;
  MatrixView outer = a.block(1, 1, 5, 5);
  MatrixView inner = outer.block(2, 3, 2, 2);
  EXPECT_EQ(inner(0, 0), 42.0);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix a(3, 3);
  EXPECT_THROW(a.block(0, 0, 4, 1), Error);
  EXPECT_THROW(a.block(2, 2, 2, 2), Error);
  EXPECT_THROW(a.block(-1, 0, 1, 1), Error);
}

TEST(Matrix, CopyOfViewIsDeep) {
  Matrix a(3, 3);
  a(1, 1) = 5.0;
  Matrix b = Matrix::copy_of(a.view());
  a(1, 1) = 9.0;
  EXPECT_EQ(b(1, 1), 5.0);
}

TEST(Matrix, CopyRejectsShapeMismatch) {
  Matrix a(3, 3);
  Matrix b(3, 4);
  EXPECT_THROW(copy(a.view(), b.view()), Error);
}

TEST(Matrix, ZeroBelowDiagonal) {
  Matrix a(4, 3);
  a.fill(1.0);
  zero_below_diagonal(a.view());
  for (Index j = 0; j < 3; ++j) {
    for (Index i = 0; i < 4; ++i) {
      EXPECT_EQ(a(i, j), i > j ? 0.0 : 1.0);
    }
  }
}

TEST(Matrix, SetZeroOnStridedView) {
  Matrix a(4, 4);
  a.fill(3.0);
  set_zero(a.block(1, 1, 2, 2));
  EXPECT_EQ(a(0, 0), 3.0);
  EXPECT_EQ(a(1, 1), 0.0);
  EXPECT_EQ(a(2, 2), 0.0);
  EXPECT_EQ(a(3, 3), 3.0);
}

TEST(Matrix, EmptyMatrixIsUsable) {
  Matrix a(0, 0);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.view().empty());
}

TEST(Matrix, ColView) {
  Matrix a(3, 2);
  a(2, 1) = 8.0;
  MatrixView c = a.view().col(1);
  EXPECT_EQ(c.cols(), 1);
  EXPECT_EQ(c(2, 0), 8.0);
}

}  // namespace
}  // namespace qrgrid

#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/generators.hpp"
#include "linalg/norms.hpp"

namespace qrgrid {
namespace {

Matrix naive_gemm(Trans ta, Trans tb, ConstMatrixView a, ConstMatrixView b) {
  const Index m = ta == Trans::No ? a.rows() : a.cols();
  const Index k = ta == Trans::No ? a.cols() : a.rows();
  const Index n = tb == Trans::No ? b.cols() : b.rows();
  Matrix c(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      double acc = 0.0;
      for (Index kk = 0; kk < k; ++kk) {
        const double av = ta == Trans::No ? a(i, kk) : a(kk, i);
        const double bv = tb == Trans::No ? b(kk, j) : b(j, kk);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(Blas1, Nrm2Basic) {
  const double x[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(2, x), 5.0);
}

TEST(Blas1, Nrm2AvoidsOverflow) {
  const double big = 1e300;
  const double x[] = {big, big};
  EXPECT_NEAR(nrm2(2, x) / (big * std::sqrt(2.0)), 1.0, 1e-14);
}

TEST(Blas1, Nrm2AvoidsUnderflow) {
  const double tiny = 1e-300;
  const double x[] = {tiny, tiny, tiny, tiny};
  EXPECT_NEAR(nrm2(4, x) / (tiny * 2.0), 1.0, 1e-14);
}

TEST(Blas1, DotAxpyScal) {
  double x[] = {1.0, 2.0, 3.0};
  double y[] = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(3, x, y), 32.0);
  axpy(3, 2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  scal(3, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(Blas2, GemvNoTrans) {
  Matrix a = random_gaussian(5, 3, 1);
  double x[] = {1.0, -2.0, 0.5};
  double y[5] = {1, 1, 1, 1, 1};
  gemv(Trans::No, 2.0, a.view(), x, 3.0, y);
  for (Index i = 0; i < 5; ++i) {
    const double want =
        3.0 + 2.0 * (a(i, 0) * 1.0 + a(i, 1) * -2.0 + a(i, 2) * 0.5);
    EXPECT_NEAR(y[i], want, 1e-12);
  }
}

TEST(Blas2, GemvTrans) {
  Matrix a = random_gaussian(4, 3, 2);
  double x[] = {1.0, 2.0, 3.0, 4.0};
  double y[3] = {0, 0, 0};
  gemv(Trans::Yes, 1.0, a.view(), x, 0.0, y);
  for (Index j = 0; j < 3; ++j) {
    double want = 0.0;
    for (Index i = 0; i < 4; ++i) want += a(i, j) * x[i];
    EXPECT_NEAR(y[j], want, 1e-12);
  }
}

TEST(Blas2, GerRank1Update) {
  Matrix a(3, 2);
  double x[] = {1.0, 2.0, 3.0};
  double y[] = {4.0, 5.0};
  ger(2.0, x, y, a.view());
  EXPECT_DOUBLE_EQ(a(2, 1), 2.0 * 3.0 * 5.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0 * 1.0 * 4.0);
}

class TrsvTest : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrsvTest, SolvesAgainstMultiply) {
  const auto [uplo, trans, diag] = GetParam();
  const Index n = 6;
  Matrix t = random_gaussian(n, n, 7);
  // Make the triangle well conditioned and honor the structure.
  for (Index i = 0; i < n; ++i) t(i, i) = 4.0 + static_cast<double>(i);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      if (uplo == UpLo::Upper && i > j) t(i, j) = 0.0;
      if (uplo == UpLo::Lower && i < j) t(i, j) = 0.0;
    }
  }
  Matrix x_true = random_gaussian(n, 1, 8);
  // b = op(T) x
  double b[6];
  for (Index i = 0; i < n; ++i) {
    double acc = 0.0;
    for (Index j = 0; j < n; ++j) {
      double tij = trans == Trans::No ? t(i, j) : t(j, i);
      if (diag == Diag::Unit && i == j) tij = 1.0;
      acc += tij * x_true(j, 0);
    }
    b[i] = acc;
  }
  trsv(uplo, trans, diag, t.view(), b);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true(i, 0), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrientations, TrsvTest,
    ::testing::Combine(::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

class GemmTest
    : public ::testing::TestWithParam<std::tuple<Trans, Trans, int, int, int>> {
};

TEST_P(GemmTest, MatchesNaive) {
  const auto [ta, tb, m, n, k] = GetParam();
  Matrix a = ta == Trans::No ? random_gaussian(m, k, 11)
                             : random_gaussian(k, m, 11);
  Matrix b = tb == Trans::No ? random_gaussian(k, n, 12)
                             : random_gaussian(n, k, 12);
  Matrix want = naive_gemm(ta, tb, a.view(), b.view());
  Matrix c(m, n);
  c.fill(1.0);
  gemm(ta, tb, 2.0, a.view(), b.view(), -1.0, c.view());
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      EXPECT_NEAR(c(i, j), 2.0 * want(i, j) - 1.0, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransCombos, GemmTest,
    ::testing::Combine(::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(3, 17), ::testing::Values(2, 19),
                       ::testing::Values(1, 23)));

TEST(Gemm, LargeBlockedPathMatchesNaive) {
  // Exercise the kMC/kKC tiling with dimensions larger than one tile.
  Matrix a = random_gaussian(200, 150, 21);
  Matrix b = random_gaussian(150, 40, 22);
  Matrix want = naive_gemm(Trans::No, Trans::No, a.view(), b.view());
  Matrix c(200, 40);
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-9);
}

TEST(Trmm, LeftUpperMatchesGemm) {
  const Index n = 8, p = 5;
  Matrix t = random_gaussian(n, n, 31);
  zero_below_diagonal(t.view());
  Matrix b = random_gaussian(n, p, 32);
  Matrix want = naive_gemm(Trans::No, Trans::No, t.view(), b.view());
  trmm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, t.view(),
       b.view());
  EXPECT_LT(max_abs_diff(b.view(), want.view()), 1e-10);
}

TEST(Trmm, RightLowerTransUnitMatchesGemm) {
  const Index n = 7, m = 4;
  Matrix t = random_gaussian(n, n, 33);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) t(i, j) = 0.0;  // lower triangular
  }
  Matrix t_unit = Matrix::copy_of(t.view());
  for (Index i = 0; i < n; ++i) t_unit(i, i) = 1.0;
  Matrix b = random_gaussian(m, n, 34);
  Matrix want = naive_gemm(Trans::No, Trans::Yes, b.view(), t_unit.view());
  trmm(Side::Right, UpLo::Lower, Trans::Yes, Diag::Unit, 1.0, t.view(),
       b.view());
  EXPECT_LT(max_abs_diff(b.view(), want.view()), 1e-10);
}

TEST(Trsm, LeftSolveRoundTrips) {
  const Index n = 6, p = 3;
  Matrix t = random_gaussian(n, n, 41);
  zero_below_diagonal(t.view());
  for (Index i = 0; i < n; ++i) t(i, i) += 5.0;
  Matrix x = random_gaussian(n, p, 42);
  Matrix b = Matrix::copy_of(x.view());
  trmm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, t.view(),
       b.view());
  trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, t.view(),
       b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Trsm, RightSolveRoundTrips) {
  const Index n = 6, m = 4;
  Matrix t = random_gaussian(n, n, 43);
  zero_below_diagonal(t.view());
  for (Index i = 0; i < n; ++i) t(i, i) += 5.0;
  Matrix x = random_gaussian(m, n, 44);
  Matrix b = Matrix::copy_of(x.view());
  trmm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, t.view(),
       b.view());
  trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, t.view(),
       b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Syrk, UpperGramMatchesGemm) {
  Matrix a = random_gaussian(20, 6, 51);
  Matrix want = naive_gemm(Trans::Yes, Trans::No, a.view(), a.view());
  Matrix c(6, 6);
  syrk_upper_at_a(1.0, a.view(), 0.0, c.view());
  for (Index j = 0; j < 6; ++j) {
    for (Index i = 0; i <= j; ++i) EXPECT_NEAR(c(i, j), want(i, j), 1e-10);
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(3, 4);
  Matrix b(5, 2);
  Matrix c(3, 2);
  EXPECT_THROW(
      gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view()),
      Error);
}

}  // namespace
}  // namespace qrgrid

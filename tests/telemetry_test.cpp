// The observability layer: MetricsRegistry semantics (counters, gauges,
// fixed-bucket histograms, step-function series), the structured event
// stream end to end on real service runs (validator-clean across the
// policy x allocator x backend matrix), byte-determinism of the exported
// trace and metrics JSON under a fixed seed, the zero-perturbation
// contract (a traced run reports exactly what an untraced run reports),
// and the TraceValidator's teeth — each pinned invariant is broken by a
// synthetic stream and must be caught.
#include "sched/telemetry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/des_algos.hpp"
#include "model/roofline.hpp"
#include "sched/backend.hpp"
#include "sched/policy.hpp"
#include "sched/service.hpp"
#include "sched/workload.hpp"
#include "simgrid/topology.hpp"

namespace qrgrid::sched {
namespace {

simgrid::GridTopology small_grid() {
  // 2 sites x 2 nodes x 2 procs = 8 processes, 4 nodes.
  return simgrid::GridTopology::grid5000(2, 2, 2);
}

/// Seeded workload small enough that even the msg backend (REAL threaded
/// factorizations per attempt) keeps the matrix fast.
std::vector<Job> small_workload(int jobs, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.jobs = jobs;
  spec.mean_interarrival_s = 0.05;
  spec.seed = seed;
  spec.users = 2;
  spec.priority_levels = 2;
  spec.procs_choices = {2, 4, 8};
  spec.m_choices = {4096, 8192};
  spec.n_choices = {8, 16};
  return generate_workload(spec);
}

struct TelemetryRun {
  ServiceReport report;
  std::string trace_json;
  std::string metrics_json;
  std::vector<ServiceTraceEvent> events;
};

TelemetryRun run_with_telemetry(const simgrid::GridTopology& topo,
                                const std::vector<Job>& jobs,
                                ServiceOptions options) {
  ServiceTracer tracer;
  MetricsRegistry metrics;
  options.tracer = &tracer;
  options.metrics = &metrics;
  GridJobService service(topo, model::paper_calibration(), options);
  TelemetryRun run;
  run.report = service.run(jobs);
  std::ostringstream trace_out;
  write_chrome_trace(tracer.events(), trace_out);
  run.trace_json = trace_out.str();
  std::ostringstream metrics_out;
  metrics.write_json(metrics_out);
  run.metrics_json = metrics_out.str();
  run.events = tracer.events();
  return run;
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistry, CountersGaugesAndAccessors) {
  MetricsRegistry reg;
  reg.add("hits");
  reg.add("hits", 4);
  reg.set("level", 2.5);
  reg.set("level", 3.5);  // gauges overwrite
  EXPECT_EQ(reg.counter("hits"), 5);
  EXPECT_EQ(reg.counter("never-touched"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge("level"), 3.5);
  EXPECT_DOUBLE_EQ(reg.gauge("never-touched"), 0.0);
}

TEST(MetricsRegistry, HistogramBucketsSumAndOverflow) {
  MetricsRegistry reg;
  const std::vector<double> bounds = {1.0, 10.0};
  reg.observe("h", 0.5, bounds);   // bucket 0
  reg.observe("h", 1.0, bounds);   // bucket 0 (<= bound)
  reg.observe("h", 5.0, bounds);   // bucket 1
  reg.observe("h", 99.0, bounds);  // overflow bucket
  const HistogramSnapshot* snap = reg.histogram("h");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->counts.size(), bounds.size() + 1);
  EXPECT_EQ(snap->counts[0], 2);
  EXPECT_EQ(snap->counts[1], 1);
  EXPECT_EQ(snap->counts[2], 1);
  EXPECT_EQ(snap->count, 4);
  EXPECT_DOUBLE_EQ(snap->sum, 105.5);
  EXPECT_EQ(reg.histogram("missing"), nullptr);
  // Bounds are fixed at creation; a conflicting re-declaration throws.
  EXPECT_THROW(reg.observe("h", 1.0, {2.0, 20.0}), Error);
  // The one-argument overload uses the default log-spaced scale.
  reg.observe("d", 0.5);
  ASSERT_NE(reg.histogram("d"), nullptr);
  EXPECT_EQ(reg.histogram("d")->bounds, MetricsRegistry::default_bounds());
}

TEST(MetricsRegistry, SeriesDropsUnchangedAndOverwritesSameInstant) {
  MetricsRegistry reg;
  reg.sample("q", 0.0, 1.0);
  reg.sample("q", 1.0, 1.0);  // unchanged value: dropped (step curve)
  reg.sample("q", 2.0, 3.0);
  reg.sample("q", 2.0, 4.0);  // same instant: latest wins
  const auto* series = reg.series("q");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ((*series)[0].second, 1.0);
  EXPECT_DOUBLE_EQ((*series)[1].first, 2.0);
  EXPECT_DOUBLE_EQ((*series)[1].second, 4.0);
}

TEST(MetricsRegistry, WriteJsonIsStableAndStructured) {
  MetricsRegistry reg;
  reg.add("z.counter", 2);
  reg.add("a.counter");
  reg.set("gauge", 1.25);
  reg.observe("h", 2.0, {1.0, 10.0});
  reg.sample("s", 0.5, 2.0);
  std::ostringstream first, second;
  reg.write_json(first);
  reg.write_json(second);
  EXPECT_EQ(first.str(), second.str());
  const std::string json = first.str();
  // Ordered maps: keys appear sorted, all four sections present.
  EXPECT_LT(json.find("\"a.counter\""), json.find("\"z.counter\""));
  for (const char* section : {"counters", "gauges", "histograms", "series"}) {
    EXPECT_NE(json.find('"' + std::string(section) + '"'), std::string::npos)
        << section;
  }
}

// ------------------------------------------------- traced service runs

TEST(ServiceTrace, LifecycleEventsAndValidatorOnHealthyRun) {
  const simgrid::GridTopology topo = small_grid();
  const std::vector<Job> jobs = small_workload(25, 77);
  ServiceOptions options;
  options.policy = Policy::kEasyBackfill;
  const TelemetryRun run = run_with_telemetry(topo, jobs, options);
  EXPECT_TRUE(validate_trace(run.events).empty());
  ASSERT_FALSE(run.events.empty());
  // First event declares the run configuration: policy name + flags.
  EXPECT_EQ(run.events.front().kind, TraceKind::kRunConfig);
  EXPECT_EQ(run.events.front().note, "easy");
  EXPECT_EQ(static_cast<int>(run.events.front().value) &
                kTraceConfigBackfills,
            kTraceConfigBackfills);
  // Every job arrives exactly once and completes exactly once (healthy
  // scenario: no faults, no walltimes).
  int arrivals = 0, completions = 0, dispatches = 0;
  for (const ServiceTraceEvent& ev : run.events) {
    if (ev.kind == TraceKind::kArrival) ++arrivals;
    if (ev.kind == TraceKind::kCompletion) ++completions;
    if (ev.kind == TraceKind::kDispatch ||
        ev.kind == TraceKind::kBackfillStart) {
      ++dispatches;
      // Dispatch events carry the granted placement.
      EXPECT_FALSE(ev.clusters.empty());
      EXPECT_EQ(ev.clusters.size(), ev.nodes.size());
    }
  }
  EXPECT_EQ(arrivals, static_cast<int>(jobs.size()));
  EXPECT_EQ(completions, static_cast<int>(jobs.size()));
  EXPECT_EQ(dispatches, static_cast<int>(jobs.size()));
  // Attempt spans reconstruct one span per dispatch, all completed.
  const std::vector<AttemptSpan> spans = attempt_spans(run.events);
  ASSERT_EQ(spans.size(), jobs.size());
  for (const AttemptSpan& span : spans) {
    EXPECT_EQ(span.end_kind, TraceKind::kCompletion);
    EXPECT_GT(span.end_s, span.start_s);
  }
}

TEST(ServiceTrace, ValidatorPassesUnderChurnAndContention) {
  // Outages + over-asked walltimes + shared WAN: the hardest stream the
  // service emits. The validator must accept every one of them.
  // Figure-scale job shapes (the workload defaults), NOT the msg-sized
  // ones: attempts must be long enough for outages to land on them.
  const simgrid::GridTopology topo = small_grid();
  WorkloadSpec spec;
  spec.jobs = 30;
  spec.mean_interarrival_s = 0.1;
  spec.procs_choices = {2, 4, 8};
  spec.seed = 41;
  std::vector<Job> jobs = generate_workload(spec);
  {
    const GridJobService predictor(topo, model::paper_calibration());
    assign_walltimes(jobs, 3.0, 41, [&](const Job& j) {
      return predictor.predicted_seconds(j);
    });
  }
  OutageSpec outage_spec;
  outage_spec.mtbf_s = 10.0;
  outage_spec.mean_outage_s = 1.5;
  outage_spec.seed = 43;
  for (const Policy policy :
       {Policy::kEasyBackfill, Policy::kPriorityEasy, Policy::kFairShare}) {
    ServiceOptions options;
    options.policy = policy;
    options.outages = OutageTrace(outage_spec, topo.num_clusters());
    options.wan_contention = true;
    options.wan_aware = true;
    const TelemetryRun run = run_with_telemetry(topo, jobs, options);
    const std::vector<std::string> violations = validate_trace(run.events);
    EXPECT_TRUE(violations.empty())
        << policy_name(policy) << ": "
        << (violations.empty() ? "" : violations.front());
    // Churn actually happened — the stream must show it.
    int kills = 0, requeues = 0;
    for (const ServiceTraceEvent& ev : run.events) {
      if (ev.kind == TraceKind::kOutageKill) ++kills;
      if (ev.kind == TraceKind::kRequeue) ++requeues;
    }
    EXPECT_GT(kills, 0) << policy_name(policy);
    EXPECT_GT(requeues, 0) << policy_name(policy);
  }
}

TEST(ServiceTrace, TelemetryDoesNotPerturbTheService) {
  // The zero-cost contract's behavioral half: a fully instrumented run
  // reports exactly what the bare run reports, column for column.
  const simgrid::GridTopology topo = small_grid();
  const std::vector<Job> jobs = small_workload(20, 9);
  for (const Policy policy : {Policy::kEasyBackfill, Policy::kFairShare}) {
    ServiceOptions options;
    options.policy = policy;
    options.wan_contention = true;
    GridJobService bare(topo, model::paper_calibration(), options);
    const ServiceReport untraced = bare.run(jobs);
    const TelemetryRun traced = run_with_telemetry(topo, jobs, options);
    EXPECT_EQ(summary_row(untraced), summary_row(traced.report))
        << policy_name(policy);
  }
}

TEST(ServiceTrace, ByteDeterministicAcrossPolicyAllocatorBackendMatrix) {
  // Same seed, same configuration => byte-identical trace AND metrics
  // JSON. Sampled matrix: every policy on the des backend, both WAN
  // allocators, and the msg backend (real threaded executions) on two
  // policies — the combinations that exercise distinct emit paths.
  struct Config {
    Policy policy;
    WanFairness fairness;
    BackendKind backend;
  };
  const std::vector<Config> matrix = {
      {Policy::kFcfs, WanFairness::kEqualSplit, BackendKind::kDesReplay},
      {Policy::kSpjf, WanFairness::kEqualSplit, BackendKind::kDesReplay},
      {Policy::kEasyBackfill, WanFairness::kEqualSplit,
       BackendKind::kDesReplay},
      {Policy::kPriorityEasy, WanFairness::kMaxMin, BackendKind::kDesReplay},
      {Policy::kFairShare, WanFairness::kMaxMin, BackendKind::kDesReplay},
      {Policy::kEasyBackfill, WanFairness::kEqualSplit,
       BackendKind::kMsgRuntime},
      {Policy::kFairShare, WanFairness::kMaxMin, BackendKind::kMsgRuntime},
  };
  const simgrid::GridTopology topo = small_grid();
  const std::vector<Job> jobs = small_workload(12, 23);
  for (const Config& config : matrix) {
    ServiceOptions options;
    options.policy = config.policy;
    options.wan_contention = true;
    options.wan_fairness = config.fairness;
    options.backend = config.backend;
    if (config.backend == BackendKind::kMsgRuntime) {
      options.domains_per_cluster = core::kOneDomainPerProcess;
    }
    const TelemetryRun first = run_with_telemetry(topo, jobs, options);
    const TelemetryRun second = run_with_telemetry(topo, jobs, options);
    const std::string label = std::string(policy_name(config.policy)) + "/" +
                              wan_fairness_name(config.fairness) + "/" +
                              backend_name(config.backend);
    EXPECT_EQ(first.trace_json, second.trace_json) << label;
    EXPECT_EQ(first.metrics_json, second.metrics_json) << label;
    EXPECT_TRUE(validate_trace(first.events).empty()) << label;
  }
}

TEST(ServiceTrace, PolicyCostCountersAreRecorded) {
  const simgrid::GridTopology topo = small_grid();
  const std::vector<Job> jobs = small_workload(20, 13);
  ServiceTracer tracer;
  MetricsRegistry metrics;
  ServiceOptions options;
  options.policy = Policy::kFairShare;
  options.tracer = &tracer;
  options.metrics = &metrics;
  GridJobService service(topo, model::paper_calibration(), options);
  service.run(jobs);
  // Fair-share is a dynamic-order policy: every attempt accrues service
  // (the policy hook) and the queue resorts between dispatches.
  EXPECT_EQ(metrics.counter("policy.attempt_starts"),
            static_cast<long long>(jobs.size()));
  EXPECT_GT(metrics.counter("policy.resorts"), 0);
  EXPECT_GT(metrics.counter("dispatch.head_place_scans"), 0);
  EXPECT_GT(metrics.counter("backend.profile_misses"), 0);
  // End-of-run gauges and per-iteration series landed.
  EXPECT_GT(metrics.gauge("service.makespan_s"), 0.0);
  ASSERT_NE(metrics.series("queue_depth"), nullptr);
  EXPECT_FALSE(metrics.series("queue_depth")->empty());
  ASSERT_NE(metrics.histogram("wait_s.user.0"), nullptr);
}

// ----------------------------------------------------------- exporters

TEST(ChromeTrace, WellFormedWithLifecycleSpans) {
  // Figure-scale shapes so jobs actually queue — wait spans need a
  // non-zero wait to show up.
  const simgrid::GridTopology topo = small_grid();
  WorkloadSpec spec;
  spec.jobs = 10;
  spec.mean_interarrival_s = 0.1;
  spec.procs_choices = {2, 4, 8};
  spec.seed = 5;
  const std::vector<Job> jobs = generate_workload(spec);
  ServiceOptions options;
  options.policy = Policy::kEasyBackfill;
  const TelemetryRun run = run_with_telemetry(topo, jobs, options);
  const std::string& json = run.trace_json;
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_EQ(json.back(), '\n');
  // Process metadata for the three tracks, complete spans, counters.
  for (const char* needle :
       {"\"traceEvents\"", "\"jobs\"", "\"clusters\"", "\"ph\": \"X\"",
        "\"ph\": \"M\"", "\"ph\": \"C\"", "\"name\": \"run\"",
        "\"name\": \"wait\"", "pending_jobs", "running_jobs"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(ClusterGantt, RendersBusiestClustersWithLabels) {
  const simgrid::GridTopology topo = small_grid();
  const std::vector<Job> jobs = small_workload(15, 29);
  ServiceOptions options;
  options.policy = Policy::kFcfs;
  const TelemetryRun run = run_with_telemetry(topo, jobs, options);
  const std::string both = render_cluster_gantt(run.events, topo, 8);
  EXPECT_NE(both.find("(c0)"), std::string::npos);
  EXPECT_NE(both.find("completed-attempt occupancy"), std::string::npos);
  // The cluster budget truncates to the busiest sites.
  const std::string one = render_cluster_gantt(run.events, topo, 1);
  EXPECT_EQ(one.find("(c") != std::string::npos, true);
  EXPECT_LT(one.size(), both.size());
  // No attempts => nothing to draw.
  EXPECT_TRUE(render_cluster_gantt({}, topo, 8).empty());
}

// ----------------------------------------------------------- validator

/// Shorthand for synthetic streams: every stream opens with a
/// kRunConfig carrying `config_bits`.
ServiceTraceEvent ev(double t_s, TraceKind kind, int job = -1) {
  ServiceTraceEvent event;
  event.t_s = t_s;
  event.kind = kind;
  event.job = job;
  return event;
}

std::vector<ServiceTraceEvent> with_config(
    int config_bits, std::vector<ServiceTraceEvent> tail) {
  std::vector<ServiceTraceEvent> events;
  ServiceTraceEvent config = ev(0.0, TraceKind::kRunConfig);
  config.value = config_bits;
  events.push_back(config);
  events.insert(events.end(), tail.begin(), tail.end());
  return events;
}

TEST(TraceValidator, CatchesDecreasingTimestamps) {
  const auto violations = validate_trace(with_config(
      0, {ev(5.0, TraceKind::kArrival, 0), ev(3.0, TraceKind::kArrival, 1)}));
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("backwards"), std::string::npos);
}

TEST(TraceValidator, CatchesPrecedenceInversionAtOneInstant) {
  // Job 0 runs; at t=5 an arrival is recorded BEFORE job 0's completion
  // at the same instant — finishes must precede arrivals.
  const auto violations = validate_trace(with_config(
      0, {ev(1.0, TraceKind::kArrival, 0), ev(2.0, TraceKind::kDispatch, 0),
          ev(5.0, TraceKind::kArrival, 1),
          ev(5.0, TraceKind::kCompletion, 0)}));
  EXPECT_FALSE(violations.empty());
}

TEST(TraceValidator, CatchesDispatchWithoutArrival) {
  const auto violations =
      validate_trace(with_config(0, {ev(1.0, TraceKind::kDispatch, 7)}));
  EXPECT_FALSE(violations.empty());
}

TEST(TraceValidator, CatchesDoubleTerminal) {
  const auto violations = validate_trace(with_config(
      0, {ev(1.0, TraceKind::kArrival, 0), ev(2.0, TraceKind::kDispatch, 0),
          ev(3.0, TraceKind::kCompletion, 0),
          ev(4.0, TraceKind::kCompletion, 0)}));
  EXPECT_FALSE(violations.empty());
}

TEST(TraceValidator, CatchesJobLeftRunningAtEndOfStream) {
  const auto violations = validate_trace(with_config(
      0, {ev(1.0, TraceKind::kArrival, 0), ev(2.0, TraceKind::kDispatch, 0)}));
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("running"), std::string::npos);
}

TEST(TraceValidator, CatchesWanByteDeficit) {
  // A flow that claims full drain (value2 == 1) but moved a tenth of
  // what it admitted breaks byte conservation.
  ServiceTraceEvent open = ev(1.0, TraceKind::kWanFlowOpen);
  open.flow = 0;
  open.value = 1000.0;
  ServiceTraceEvent retire = ev(2.0, TraceKind::kWanFlowRetire);
  retire.flow = 0;
  retire.value = 100.0;
  retire.value2 = 1.0;
  const auto violations =
      validate_trace(with_config(kTraceConfigWanContention, {open, retire}));
  EXPECT_FALSE(violations.empty());
}

TEST(TraceValidator, CatchesBrokenNoDelayPromise) {
  // Contention-free, outage-free run (the configuration under which the
  // promise is provable): a claim at t=5 bounds job 0's start, and the
  // actual dispatch at t=7 breaks it.
  ServiceTraceEvent claim = ev(1.0, TraceKind::kReservationClaim, 0);
  claim.value = 5.0;
  const auto violations = validate_trace(with_config(
      kTraceConfigBackfills,
      {ev(0.5, TraceKind::kArrival, 0), claim,
       ev(7.0, TraceKind::kDispatch, 0), ev(8.0, TraceKind::kCompletion, 0)}));
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("promise"), std::string::npos);
  // A withdrawn claim binds nothing: the same stream with the withdrawal
  // recorded is clean.
  ServiceTraceEvent withdraw = ev(4.0, TraceKind::kReservationWithdraw, 0);
  EXPECT_TRUE(validate_trace(with_config(
                  kTraceConfigBackfills,
                  {ev(0.5, TraceKind::kArrival, 0), claim, withdraw,
                   ev(7.0, TraceKind::kDispatch, 0),
                   ev(8.0, TraceKind::kCompletion, 0)}))
                  .empty());
}

TEST(TraceValidator, AcceptsRequeueOnlyAfterOutageKill) {
  // Requeue without a preceding outage kill is illegal...
  const auto bad = validate_trace(with_config(
      kTraceConfigHasOutages,
      {ev(1.0, TraceKind::kArrival, 0), ev(2.0, TraceKind::kRequeue, 0)}));
  EXPECT_FALSE(bad.empty());
  // ...while the real kill -> requeue -> redispatch cycle is clean.
  ServiceTraceEvent kill = ev(3.0, TraceKind::kOutageKill, 0);
  kill.cluster = 0;
  EXPECT_TRUE(
      validate_trace(
          with_config(kTraceConfigHasOutages,
                      {ev(1.0, TraceKind::kArrival, 0),
                       ev(2.0, TraceKind::kDispatch, 0), kill,
                       ev(3.0, TraceKind::kRequeue, 0),
                       ev(4.0, TraceKind::kDispatch, 0),
                       ev(5.0, TraceKind::kCompletion, 0)}))
          .empty());
}

}  // namespace
}  // namespace qrgrid::sched

#include "linalg/tpqrt.hpp"

#include <gtest/gtest.h>

#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid {
namespace {

/// Reference: QR of the stacked [R1; R2] with the generic kernel, with R
/// sign-normalized for comparison.
Matrix reference_stacked_r(ConstMatrixView r1, ConstMatrixView r2) {
  const Index n = r1.cols();
  Matrix stacked(r1.rows() + r2.rows(), n);
  copy(r1, stacked.block(0, 0, r1.rows(), n));
  copy(r2, stacked.block(r1.rows(), 0, r2.rows(), n));
  std::vector<double> tau;
  geqr2(stacked.view(), tau);
  Matrix r = extract_r(stacked.view());
  normalize_r_sign(r.view());
  return r;
}

Matrix random_upper(Index n, std::uint64_t seed) {
  Matrix r = random_gaussian(n, n, seed);
  zero_below_diagonal(r.view());
  return r;
}

class TpqrtTtTest : public ::testing::TestWithParam<int> {};

TEST_P(TpqrtTtTest, MergedRMatchesReference) {
  const Index n = GetParam();
  Matrix r1 = random_upper(n, 60 + n);
  Matrix r2 = random_upper(n, 61 + n);
  Matrix want = reference_stacked_r(r1.view(), r2.view());

  std::vector<double> tau;
  Matrix v2 = Matrix::copy_of(r2.view());
  tpqrt_tt(r1.view(), v2.view(), tau);
  normalize_r_sign(r1.view());
  EXPECT_LT(max_abs_diff(r1.view(), want.view()), 1e-11 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TpqrtTtTest, ::testing::Values(1, 2, 3, 8, 33, 64));

TEST(TpqrtTt, V2StaysUpperTriangular) {
  const Index n = 12;
  Matrix r1 = random_upper(n, 71);
  Matrix v2 = random_upper(n, 72);
  std::vector<double> tau;
  tpqrt_tt(r1.view(), v2.view(), tau);
  EXPECT_TRUE(is_upper_triangular(v2.view()));
  EXPECT_TRUE(is_upper_triangular(r1.view()));
}

TEST(TpqrtTt, QIsOrthogonalViaApplication) {
  // Build the explicit 2n x 2n Q by applying Q to the identity columns and
  // verify orthogonality + reconstruction.
  const Index n = 10;
  Matrix r1_orig = random_upper(n, 81);
  Matrix r2_orig = random_upper(n, 82);
  Matrix r1 = Matrix::copy_of(r1_orig.view());
  Matrix v2 = Matrix::copy_of(r2_orig.view());
  std::vector<double> tau;
  tpqrt_tt(r1.view(), v2.view(), tau);

  // Q [R; 0] must reproduce the stacked input.
  Matrix c1 = Matrix::copy_of(r1.view());
  Matrix c2(n, n);
  tpmqrt_tt(Trans::No, v2.view(), tau, c1.view(), c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), r1_orig.view()), 1e-11 * n);
  EXPECT_LT(max_abs_diff(c2.view(), r2_orig.view()), 1e-11 * n);
}

TEST(TpqrtTt, QtThenQRoundTrips) {
  const Index n = 9, p = 5;
  Matrix r1 = random_upper(n, 91);
  Matrix v2 = random_upper(n, 92);
  std::vector<double> tau;
  tpqrt_tt(r1.view(), v2.view(), tau);

  Matrix c1 = random_gaussian(n, p, 93);
  Matrix c2 = random_gaussian(n, p, 94);
  Matrix c1_orig = Matrix::copy_of(c1.view());
  Matrix c2_orig = Matrix::copy_of(c2.view());
  tpmqrt_tt(Trans::Yes, v2.view(), tau, c1.view(), c2.view());
  tpmqrt_tt(Trans::No, v2.view(), tau, c1.view(), c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), c1_orig.view()), 1e-11);
  EXPECT_LT(max_abs_diff(c2.view(), c2_orig.view()), 1e-11);
}

TEST(TpqrtTt, ZeroBottomBlockIsNoOp) {
  const Index n = 6;
  Matrix r1 = random_upper(n, 95);
  Matrix r1_orig = Matrix::copy_of(r1.view());
  Matrix v2(n, n);  // zero
  std::vector<double> tau;
  tpqrt_tt(r1.view(), v2.view(), tau);
  for (double t : tau) EXPECT_EQ(t, 0.0);
  EXPECT_LT(max_abs_diff(r1.view(), r1_orig.view()), 1e-14);
}

class TpqrtTdTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TpqrtTdTest, DenseBottomMatchesReference) {
  const auto [m, n] = GetParam();
  Matrix r1 = random_upper(n, 160 + n);
  Matrix b = random_gaussian(m, n, 161 + m);
  Matrix want = reference_stacked_r(r1.view(), b.view());

  std::vector<double> tau;
  tpqrt_td(r1.view(), b.view(), tau);
  normalize_r_sign(r1.view());
  EXPECT_LT(max_abs_diff(r1.view(), want.view()), 1e-11 * (m + n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TpqrtTdTest,
                         ::testing::Combine(::testing::Values(1, 7, 40),
                                            ::testing::Values(1, 5, 16)));

TEST(TpqrtTd, ApplyReconstructsStackedInput) {
  const Index m = 14, n = 6;
  Matrix r1_orig = random_upper(n, 171);
  Matrix b_orig = random_gaussian(m, n, 172);
  Matrix r1 = Matrix::copy_of(r1_orig.view());
  Matrix v2 = Matrix::copy_of(b_orig.view());
  std::vector<double> tau;
  tpqrt_td(r1.view(), v2.view(), tau);

  Matrix c1 = Matrix::copy_of(r1.view());
  Matrix c2(m, n);
  tpmqrt_td(Trans::No, v2.view(), tau, c1.view(), c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), r1_orig.view()), 1e-11 * m);
  EXPECT_LT(max_abs_diff(c2.view(), b_orig.view()), 1e-11 * m);
}

TEST(TpqrtTt, AssociativityOfMerges) {
  // Merging ((R1,R2),R3) and ((R1,R3),R2) must give the same R after sign
  // normalization — the associativity/commutativity property that makes
  // the TSQR reduction tree shape a free choice (paper §II-C).
  const Index n = 8;
  Matrix r1 = random_upper(n, 201);
  Matrix r2 = random_upper(n, 202);
  Matrix r3 = random_upper(n, 203);

  auto merge = [&](Matrix top, Matrix bottom) {
    std::vector<double> tau;
    tpqrt_tt(top.view(), bottom.view(), tau);
    return top;
  };
  Matrix a = merge(merge(Matrix::copy_of(r1.view()), Matrix::copy_of(r2.view())),
                   Matrix::copy_of(r3.view()));
  Matrix b = merge(merge(Matrix::copy_of(r1.view()), Matrix::copy_of(r3.view())),
                   Matrix::copy_of(r2.view()));
  normalize_r_sign(a.view());
  normalize_r_sign(b.view());
  EXPECT_LT(max_abs_diff(a.view(), b.view()), 1e-10 * n);
}

}  // namespace
}  // namespace qrgrid

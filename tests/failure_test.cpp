// Failure injection: a production message-passing runtime must not hang
// when a rank dies — peers blocked in receives or collectives must be
// released with an error, whatever phase the failure hits.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "msg/comm.hpp"

namespace qrgrid::msg {
namespace {

TEST(FailureInjection, DeathDuringAllreduceReleasesEveryone) {
  const int p = 8;
  Runtime rt(p);
  EXPECT_THROW(rt.run([](Comm& comm) {
                 if (comm.rank() == 5) throw Error("rank 5 died");
                 std::vector<double> data = {1.0};
                 // Without abort propagation the butterfly would deadlock.
                 for (int i = 0; i < 100; ++i) comm.allreduce_sum(data);
               }),
               Error);
}

TEST(FailureInjection, DeathDuringBarrier) {
  Runtime rt(4);
  EXPECT_THROW(rt.run([](Comm& comm) {
                 if (comm.rank() == 0) throw Error("root died");
                 comm.barrier();
               }),
               Error);
}

TEST(FailureInjection, DeathDuringSplit) {
  Runtime rt(6);
  EXPECT_THROW(rt.run([](Comm& comm) {
                 if (comm.rank() == 3) throw Error("died before split");
                 (void)comm.split(comm.rank() % 2, comm.rank());
               }),
               Error);
}

TEST(FailureInjection, DeathMidTsqrReduction) {
  // A domain dying between the leaf factorization and the R reduction
  // must not wedge the tree.
  const int p = 4;
  Runtime rt(p);
  EXPECT_THROW(rt.run([&](Comm& comm) {
                 Matrix local(16, 8);
                 fill_gaussian_rows(local.view(), comm.rank() * 16, 1);
                 if (comm.rank() == 2) throw Error("domain 2 died");
                 (void)core::tsqr_factor(comm, local.view(),
                                         core::TsqrOptions{});
               }),
               Error);
}

TEST(FailureInjection, FirstThrownErrorWins) {
  // Whichever rank throws first, the caller sees exactly one exception
  // and the runtime is reusable afterwards.
  Runtime rt(4);
  for (int round = 0; round < 3; ++round) {
    try {
      rt.run([&](Comm& comm) {
        if (comm.rank() == round % 4) {
          throw Error("round " + std::to_string(round));
        }
        (void)comm.recv((comm.rank() + 1) % 4, 0);
      });
      FAIL() << "expected an exception";
    } catch (const Error&) {
      SUCCEED();
    }
  }
  // Healthy run afterwards.
  RunStats stats = rt.run([](Comm& comm) {
    std::vector<double> d = {1.0};
    comm.allreduce_sum(d);
    QRGRID_CHECK(d[0] == 4.0);
  });
  EXPECT_GT(stats.messages, 0);
}

TEST(FailureInjection, NonErrorExceptionsPropagateToo) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Comm& comm) {
                 if (comm.rank() == 1) {
                   throw std::runtime_error("std exception");
                 }
                 (void)comm.recv(1, 0);
               }),
               std::runtime_error);
}

}  // namespace
}  // namespace qrgrid::msg

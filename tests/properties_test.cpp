// Section IV's five properties, asserted over parameter sweeps of the
// closed-form model with Grid'5000-like constants.
#include "model/properties.hpp"

#include <gtest/gtest.h>

#include "model/roofline.hpp"

namespace qrgrid::model {
namespace {

MachineParams grid_params() {
  MachineParams mp;
  mp.latency_s = 7e-3;                        // inter-cluster latency
  mp.inv_bandwidth_s_per_double = 8.0 / 90e6; // ~90 Mb/s wide-area
  mp.domain_gflops = 0.8;                     // domanial QR rate
  return mp;
}

TEST(Property1, QAndRCostsTwiceROnly) {
  const MachineParams mp = grid_params();
  for (double m : {1e5, 1e6, 1e7}) {
    for (double n : {64.0, 128.0, 512.0}) {
      EXPECT_DOUBLE_EQ(property1_qr_over_r_ratio(m, n, 16, mp), 2.0);
    }
  }
}

TEST(Property2, PerformanceBoundedByDomanialKernel) {
  // Predicted Gflop/s never exceeds P x the domanial rate.
  const MachineParams mp = grid_params();
  for (double p : {4.0, 64.0, 256.0}) {
    for (double m : {1e5, 1e7}) {
      EXPECT_LE(predicted_tsqr_gflops(m, 64, p, mp),
                p * mp.domain_gflops + 1e-9);
    }
  }
}

TEST(Property3, PerformanceIncreasesWithM) {
  const MachineParams mp = grid_params();
  double prev = 0.0;
  for (double m = 1e5; m <= 1e8; m *= 2) {
    const double g = predicted_tsqr_gflops(m, 64, 256, mp);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(Property3, CommunicationTermIndependentOfM) {
  CostBreakdown a = tsqr_costs(1e5, 64, 16, Outputs::kROnly);
  CostBreakdown b = tsqr_costs(1e8, 64, 16, Outputs::kROnly);
  EXPECT_DOUBLE_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.volume_doubles, b.volume_doubles);
  EXPECT_LT(a.flops, b.flops);
}

TEST(Property4, PerformanceIncreasesWithN) {
  // With the latency term amortized over N^2 flops, wider matrices run
  // faster (until the TSQR flop overhead bites — see Property 5).
  const MachineParams mp = grid_params();
  const double m = 4e6;
  double prev = 0.0;
  for (double n : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    const double g = predicted_qr2_gflops(m, n, 256, mp);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(Property5, TsqrWinsMidRangeN) {
  const MachineParams mp = grid_params();
  const double m = 1e6, p = 256;
  // Mid-range N: TSQR strictly faster.
  for (double n : {16.0, 64.0, 256.0}) {
    EXPECT_GT(predicted_tsqr_gflops(m, n, p, mp),
              predicted_qr2_gflops(m, n, p, mp));
  }
}

TEST(Property5, CrossoverExistsForLargeN) {
  // "When N gets too large, the performance of TSQR deteriorates and
  // ScaLAPACK becomes better": the predicted times must cross at some
  // finite N, beyond which QR2 wins.
  const MachineParams mp = grid_params();
  const double m = 1e6, p = 256;
  const double n_star = property5_crossover_n(m, p, mp, 8.0, 1e6);
  ASSERT_GT(n_star, 0.0);
  EXPECT_GT(n_star, 100.0);  // crossover sits beyond the mid-range
  EXPECT_LT(predicted_tsqr_gflops(m, 2.0 * n_star, p, mp),
            predicted_qr2_gflops(m, 2.0 * n_star, p, mp));
}

TEST(Property5, CrossoverGrowsWithLatency) {
  // Higher latency favors TSQR longer: the crossover N must move right.
  MachineParams cheap = grid_params();
  cheap.latency_s = 1e-4;
  MachineParams pricey = grid_params();
  pricey.latency_s = 1e-2;
  const double m = 1e6, p = 256;
  const double n_cheap = property5_crossover_n(m, p, cheap, 2.0, 1e7);
  const double n_pricey = property5_crossover_n(m, p, pricey, 2.0, 1e7);
  ASSERT_GT(n_cheap, 0.0);
  ASSERT_GT(n_pricey, 0.0);
  EXPECT_GT(n_pricey, n_cheap);
}

}  // namespace
}  // namespace qrgrid::model

#include <gtest/gtest.h>

#include <set>

#include "core/extensions/tscholesky.hpp"
#include "core/extensions/tslu.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"

namespace qrgrid::core {
namespace {

// ---- Communication-avoiding CholeskyQR ---------------------------------

TEST(TsCholesky, FactorsWellConditionedDistributedMatrix) {
  const int procs = 4;
  const Index m_loc = 30, n = 8;
  Matrix global = random_gaussian(m_loc * procs, n, 1001);
  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(procs);
  Matrix r;
  rt.run([&](msg::Comm& comm) {
    TsCholeskyResult res = tscholesky_qr(
        comm, global.block(comm.rank() * m_loc, 0, m_loc, n), 1);
    ASSERT_TRUE(res.ok);
    q_blocks[static_cast<std::size_t>(comm.rank())] = std::move(res.q_local);
    if (comm.rank() == 0) r = std::move(res.r);
  });
  Matrix q(m_loc * procs, n);
  for (int i = 0; i < procs; ++i) {
    copy(q_blocks[static_cast<std::size_t>(i)].view(),
         q.block(i * m_loc, 0, m_loc, n));
  }
  EXPECT_TRUE(is_upper_triangular(r.view()));
  EXPECT_LT(orthogonality_error(q.view()), 1e-10);
  EXPECT_LT(factorization_residual(global.view(), q.view(), r.view()), 1e-12);
}

TEST(TsCholesky, RIsReplicatedOnAllRanks) {
  const int procs = 3;
  const Index m_loc = 20, n = 5;
  Matrix global = random_gaussian(m_loc * procs, n, 1002);
  msg::Runtime rt(procs);
  std::vector<Matrix> rs(procs);
  rt.run([&](msg::Comm& comm) {
    TsCholeskyResult res = tscholesky_qr(
        comm, global.block(comm.rank() * m_loc, 0, m_loc, n), 1);
    rs[static_cast<std::size_t>(comm.rank())] = std::move(res.r);
  });
  for (int i = 1; i < procs; ++i) {
    EXPECT_EQ(
        max_abs_diff(rs[0].view(), rs[static_cast<std::size_t>(i)].view()),
        0.0);
  }
}

TEST(TsCholesky, SecondIterationRestoresOrthogonality) {
  // CholeskyQR2: at cond ~ 1e5 one pass leaves visible orthogonality loss
  // (cond^2 ~ 1e10 amplification), the second pass cleans it up.
  const int procs = 4;
  const Index m_loc = 40, n = 8;
  Matrix global = random_with_condition(m_loc * procs, n, 1e5, 1003);
  msg::Runtime rt(procs);
  double loss1 = 0.0, loss2 = 0.0;
  std::vector<Matrix> q1(procs), q2(procs);
  rt.run([&](msg::Comm& comm) {
    auto block = global.block(comm.rank() * m_loc, 0, m_loc, n);
    TsCholeskyResult one = tscholesky_qr(comm, block, 1);
    TsCholeskyResult two = tscholesky_qr(comm, block, 2);
    ASSERT_TRUE(one.ok);
    ASSERT_TRUE(two.ok);
    q1[static_cast<std::size_t>(comm.rank())] = std::move(one.q_local);
    q2[static_cast<std::size_t>(comm.rank())] = std::move(two.q_local);
  });
  Matrix g1(m_loc * procs, n), g2(m_loc * procs, n);
  for (int i = 0; i < procs; ++i) {
    copy(q1[static_cast<std::size_t>(i)].view(),
         g1.block(i * m_loc, 0, m_loc, n));
    copy(q2[static_cast<std::size_t>(i)].view(),
         g2.block(i * m_loc, 0, m_loc, n));
  }
  loss1 = orthogonality_error(g1.view());
  loss2 = orthogonality_error(g2.view());
  EXPECT_LT(loss2, 1e-13);
  EXPECT_LT(loss2, loss1 * 1e-2);
}

TEST(TsCholesky, ReportsGramBreakdown) {
  // cond ~ 1e10 squares past double precision: the Gram matrix stops
  // being numerically SPD and the factorization must say so.
  const int procs = 2;
  const Index m_loc = 60, n = 10;
  Matrix global = random_with_condition(m_loc * procs, n, 1e10, 1004);
  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    TsCholeskyResult res = tscholesky_qr(
        comm, global.block(comm.rank() * m_loc, 0, m_loc, n), 1);
    if (res.ok) {
      // Allowed to "succeed" with garbage on the edge; then the loss must
      // be visible.
      Matrix q(m_loc, n);  // local orthogonality check is a lower bound
      EXPECT_GE(orthogonality_error(res.q_local.view()), 0.0);
    } else {
      SUCCEED();
    }
  });
}

// ---- TSLU tournament pivoting ------------------------------------------

TEST(Tslu, SelectsDistinctInRangePivotRows) {
  const int procs = 4;
  const Index m_loc = 16, n = 6;
  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 2001);
    TsluResult res =
        tslu_panel(comm, local.view(), comm.rank() * m_loc);
    if (comm.rank() == 0) {
      ASSERT_TRUE(res.ok);
      ASSERT_EQ(res.pivot_rows.size(), static_cast<std::size_t>(n));
      std::set<Index> distinct(res.pivot_rows.begin(), res.pivot_rows.end());
      EXPECT_EQ(distinct.size(), static_cast<std::size_t>(n));
      for (Index row : res.pivot_rows) {
        EXPECT_GE(row, 0);
        EXPECT_LT(row, static_cast<Index>(procs) * m_loc);
      }
    }
  });
}

TEST(Tslu, UFactorIsNonsingularUpperTriangular) {
  const int procs = 4;
  const Index m_loc = 20, n = 8;
  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 2002);
    TsluResult res = tslu_panel(comm, local.view(), comm.rank() * m_loc);
    if (comm.rank() == 0) {
      ASSERT_TRUE(res.ok);
      EXPECT_TRUE(is_upper_triangular(res.u.view()));
      for (Index i = 0; i < n; ++i) {
        EXPECT_GT(std::abs(res.u(i, i)), 1e-10);
      }
    }
  });
}

TEST(Tslu, TournamentFindsTheDominantRow) {
  // Plant one gigantic row far from the root; tournament pivoting must
  // surface it as the first pivot.
  const int procs = 4;
  const Index m_loc = 10, n = 4;
  const Index planted_global = 3 * m_loc + 7;  // on the last rank
  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 2003);
    if (comm.rank() == 3) {
      for (Index j = 0; j < n; ++j) {
        local(7, j) = (j == 0) ? 1e6 : static_cast<double>(j);
      }
    }
    TsluResult res = tslu_panel(comm, local.view(), comm.rank() * m_loc);
    if (comm.rank() == 0) {
      ASSERT_TRUE(res.ok);
      EXPECT_EQ(res.pivot_rows.front(), planted_global);
    }
  });
}

TEST(Tslu, WorksAcrossTreeShapes) {
  const int procs = 6;
  const Index m_loc = 12, n = 5;
  for (TreeKind tree : {TreeKind::kFlat, TreeKind::kBinary}) {
    msg::Runtime rt(procs);
    rt.run([&](msg::Comm& comm) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 2004);
      TsluResult res =
          tslu_panel(comm, local.view(), comm.rank() * m_loc, tree);
      if (comm.rank() == 0) {
        ASSERT_TRUE(res.ok);
        std::set<Index> distinct(res.pivot_rows.begin(),
                                 res.pivot_rows.end());
        EXPECT_EQ(distinct.size(), static_cast<std::size_t>(n));
      }
    });
  }
}

TEST(Tslu, GrowthBoundedOnRandomInput) {
  // |U(i,i)| should not explode relative to the input magnitude when
  // pivots are tournament-selected (CALU's stability argument in spirit).
  const int procs = 4;
  const Index m_loc = 25, n = 6;
  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 2005);
    TsluResult res = tslu_panel(comm, local.view(), comm.rank() * m_loc);
    if (comm.rank() == 0) {
      ASSERT_TRUE(res.ok);
      EXPECT_LT(max_abs(res.u.view()), 1e3);
    }
  });
}

}  // namespace
}  // namespace qrgrid::core

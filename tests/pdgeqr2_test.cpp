#include "core/pdgeqr2.hpp"

#include <gtest/gtest.h>

#include "core/tsqr.hpp"

#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid::core {
namespace {

Matrix reference_r(const Matrix& global) {
  Matrix f = Matrix::copy_of(global.view());
  std::vector<double> tau;
  geqr2(f.view(), tau);
  Matrix r = extract_r(f.view());
  normalize_r_sign(r.view());
  return r;
}

class Pdgeqr2Test : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(Pdgeqr2Test, RMatchesSequentialReference) {
  const auto [procs, n, m_loc] = GetParam();
  const Index m_global = static_cast<Index>(procs) * m_loc;
  Matrix global = random_gaussian(m_global, n, 4040);
  Matrix want = reference_r(global);

  msg::Runtime rt(procs);
  Matrix got;
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 4040);
    Pdgeqr2Factors f =
        pdgeqr2_factor(comm, local.view(), comm.rank() * m_loc);
    if (comm.rank() == 0) {
      normalize_r_sign(f.r.view());
      got = std::move(f.r);
    }
  });
  ASSERT_EQ(got.rows(), n);
  EXPECT_LT(max_abs_diff(got.view(), want.view()),
            1e-11 * frobenius_norm(want.view()));
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, Pdgeqr2Test,
    ::testing::Values(std::tuple{1, 6, 20}, std::tuple{2, 8, 16},
                      std::tuple{4, 8, 10}, std::tuple{8, 5, 5},
                      std::tuple{3, 7, 11}),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_mloc" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Pdgeqr2, TauIsReplicatedAcrossRanks) {
  const int procs = 4;
  const Index m_loc = 8, n = 5;
  msg::Runtime rt(procs);
  std::vector<std::vector<double>> taus(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 4141);
    Pdgeqr2Factors f =
        pdgeqr2_factor(comm, local.view(), comm.rank() * m_loc);
    taus[static_cast<std::size_t>(comm.rank())] = f.tau;
  });
  for (int r = 1; r < procs; ++r) {
    ASSERT_EQ(taus[0].size(), taus[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < taus[0].size(); ++i) {
      EXPECT_DOUBLE_EQ(taus[0][i], taus[static_cast<std::size_t>(r)][i]);
    }
  }
}

TEST(Pdgeqr2, ExplicitQIsOrthogonalAndReconstructs) {
  const int procs = 4;
  const Index m_loc = 12, n = 6;
  Matrix global = random_gaussian(m_loc * procs, n, 4242);
  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(procs);
  Matrix r_final;
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 4242);
    Pdgeqr2Factors f =
        pdgeqr2_factor(comm, local.view(), comm.rank() * m_loc);
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        pdgeqr2_form_explicit_q(comm, f);
    if (comm.rank() == 0) r_final = std::move(f.r);
  });
  Matrix q_global(m_loc * procs, n);
  for (int r = 0; r < procs; ++r) {
    copy(q_blocks[static_cast<std::size_t>(r)].view(),
         q_global.block(r * m_loc, 0, m_loc, n));
  }
  EXPECT_LT(orthogonality_error(q_global.view()), 1e-12);
  EXPECT_LT(factorization_residual(global.view(), q_global.view(),
                                   r_final.view()),
            1e-12);
}

TEST(Pdgeqr2, AgreesWithTsqrUpToSign) {
  // Both algorithms factor the same distributed matrix; their Rs must
  // agree after sign normalization (essential uniqueness of QR).
  const int procs = 4;
  const Index m_loc = 10, n = 6;
  msg::Runtime rt(procs);
  Matrix r_qr2, r_tsqr;
  rt.run([&](msg::Comm& comm) {
    Matrix a1(m_loc, n), a2(m_loc, n);
    fill_gaussian_rows(a1.view(), comm.rank() * m_loc, 4343);
    fill_gaussian_rows(a2.view(), comm.rank() * m_loc, 4343);
    Pdgeqr2Factors f1 = pdgeqr2_factor(comm, a1.view(), comm.rank() * m_loc);
    core::TsqrFactors f2;
    {
      // Fresh factorization of the identical data with TSQR.
      f2 = tsqr_factor(comm, a2.view(), TsqrOptions{});
    }
    if (comm.rank() == 0) {
      normalize_r_sign(f1.r.view());
      normalize_r_sign(f2.r.view());
      r_qr2 = std::move(f1.r);
      r_tsqr = std::move(f2.r);
    }
  });
  EXPECT_LT(max_abs_diff(r_qr2.view(), r_tsqr.view()),
            1e-11 * frobenius_norm(r_qr2.view()));
}

}  // namespace
}  // namespace qrgrid::core

#include "model/costs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/roofline.hpp"

namespace qrgrid::model {
namespace {

TEST(Costs, TableOneScalapackROnly) {
  // Table I line 1: 2N log2(P) messages, log2(P) N^2/2 volume,
  // (2MN^2 - 2/3 N^3)/P flops.
  const double m = 1e6, n = 64, p = 16;
  CostBreakdown c = scalapack_qr2_costs(m, n, p, Outputs::kROnly);
  EXPECT_DOUBLE_EQ(c.messages, 2 * 64 * 4);
  EXPECT_DOUBLE_EQ(c.volume_doubles, 4 * 64 * 64 / 2);
  EXPECT_DOUBLE_EQ(c.flops, (2 * m * n * n - 2.0 / 3.0 * n * n * n) / p);
}

TEST(Costs, TableOneTsqrROnly) {
  const double m = 1e6, n = 64, p = 16;
  CostBreakdown c = tsqr_costs(m, n, p, Outputs::kROnly);
  EXPECT_DOUBLE_EQ(c.messages, 4);
  EXPECT_DOUBLE_EQ(c.volume_doubles, 4 * 64 * 64 / 2);
  EXPECT_DOUBLE_EQ(c.flops, (2 * m * n * n - 2.0 / 3.0 * n * n * n) / p +
                                2.0 / 3.0 * 4 * n * n * n);
}

TEST(Costs, TableTwoIsExactlyTwiceTableOne) {
  // Section IV: "the cost to compute both the Q and the R factors is
  // exactly twice the cost for computing R only."
  const double m = 5e5, n = 128, p = 64;
  for (auto costs : {scalapack_qr2_costs, tsqr_costs}) {
    CostBreakdown r = costs(m, n, p, Outputs::kROnly);
    CostBreakdown qr = costs(m, n, p, Outputs::kQAndR);
    EXPECT_DOUBLE_EQ(qr.messages, 2.0 * r.messages);
    EXPECT_DOUBLE_EQ(qr.volume_doubles, 2.0 * r.volume_doubles);
    EXPECT_DOUBLE_EQ(qr.flops, 2.0 * r.flops);
  }
}

TEST(Costs, SingleDomainHasNoCommunication) {
  CostBreakdown c = tsqr_costs(1e6, 64, 1, Outputs::kROnly);
  EXPECT_DOUBLE_EQ(c.messages, 0.0);
  EXPECT_DOUBLE_EQ(c.volume_doubles, 0.0);
}

TEST(Costs, TsqrTradesMessagesForFlops) {
  // The central claim: TSQR sends a factor 2N fewer messages but does
  // 2/3 log2(P) N^3 more flops.
  const double m = 1e7, n = 256, p = 128;
  CostBreakdown qr2 = scalapack_qr2_costs(m, n, p, Outputs::kROnly);
  CostBreakdown tsqr = tsqr_costs(m, n, p, Outputs::kROnly);
  EXPECT_DOUBLE_EQ(qr2.messages / tsqr.messages, 2.0 * n);
  EXPECT_GT(tsqr.flops, qr2.flops);
  const double extra = 2.0 / 3.0 * std::log2(p) * n * n * n;
  EXPECT_NEAR((tsqr.flops - qr2.flops) / extra, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(tsqr.volume_doubles, qr2.volume_doubles);
}

TEST(Costs, Equation1CombinesThreeTerms) {
  CostBreakdown c;
  c.messages = 10;
  c.volume_doubles = 1000;
  c.flops = 2e9;
  MachineParams mp;
  mp.latency_s = 1e-3;
  mp.inv_bandwidth_s_per_double = 1e-7;
  mp.domain_gflops = 2.0;
  EXPECT_DOUBLE_EQ(predict_time_s(c, mp), 10e-3 + 1e-4 + 1.0);
}

TEST(Costs, UsefulFlopsMatchesHouseholderCount) {
  EXPECT_DOUBLE_EQ(useful_flops(100, 10),
                   2.0 * 100 * 100 - 2.0 / 3.0 * 1000);
}

TEST(Roofline, RateIncreasesWithColumnCount) {
  // Property 4's microscopic cause: wider panels run closer to DGEMM
  // speed.
  Roofline r = paper_calibration();
  EXPECT_LT(r.rate_gflops(1), r.rate_gflops(64));
  EXPECT_LT(r.rate_gflops(64), r.rate_gflops(512));
  EXPECT_LT(r.rate_gflops(512), r.dgemm_gflops);
}

TEST(Roofline, PeakRateForZeroColumns) {
  Roofline r = paper_calibration();
  EXPECT_DOUBLE_EQ(r.rate_gflops(0), r.dgemm_gflops);
  EXPECT_DOUBLE_EQ(r.rate_gflops(-1), r.dgemm_gflops);
}

TEST(Roofline, PaperCalibrationMagnitudes) {
  // The practical per-process peak of §V-B is 3.67 Gflop/s; QR kernels
  // must reach only a small fraction of it at N=64 (Property 2: single
  // site ScaLAPACK stays below ~70 of 235 practical Gflop/s).
  Roofline r = paper_calibration();
  EXPECT_NEAR(r.dgemm_gflops, 3.67, 1e-12);
  EXPECT_LT(r.rate_gflops(64) / r.dgemm_gflops, 0.35);
  EXPECT_GT(r.rate_gflops(512) / r.dgemm_gflops, 0.25);
}

}  // namespace
}  // namespace qrgrid::model

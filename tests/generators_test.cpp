#include "linalg/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid {
namespace {

TEST(Generators, GaussianIsDeterministicPerSeed) {
  Matrix a = random_gaussian(20, 5, 42);
  Matrix b = random_gaussian(20, 5, 42);
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.0);
  Matrix c = random_gaussian(20, 5, 43);
  EXPECT_GT(max_abs_diff(a.view(), c.view()), 0.0);
}

TEST(Generators, GaussianMomentsLookRight) {
  Matrix a = random_gaussian(4000, 4, 7);
  double mean = 0.0, var = 0.0;
  const double count = 4000.0 * 4.0;
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 4000; ++i) mean += a(i, j);
  }
  mean /= count;
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 4000; ++i) {
      var += (a(i, j) - mean) * (a(i, j) - mean);
    }
  }
  var /= count;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Generators, RowBlockFillMatchesGlobalMatrix) {
  // The property distributed ranks rely on: generating rows [r0, r0+k) of
  // the virtual global matrix gives exactly the global matrix's rows.
  const Index m = 30, n = 4;
  Matrix global = random_gaussian(m, n, 99);
  Matrix block(7, n);
  fill_gaussian_rows(block.view(), 11, 99);
  for (Index i = 0; i < 7; ++i) {
    for (Index j = 0; j < n; ++j) {
      EXPECT_EQ(block(i, j), global(11 + i, j));
    }
  }
}

TEST(Generators, RowBlocksTileWithoutSeams) {
  const Index n = 3;
  Matrix whole(24, n);
  fill_gaussian_rows(whole.view(), 0, 5);
  Matrix top(10, n), bottom(14, n);
  fill_gaussian_rows(top.view(), 0, 5);
  fill_gaussian_rows(bottom.view(), 10, 5);
  EXPECT_EQ(max_abs_diff(whole.block(0, 0, 10, n), top.view()), 0.0);
  EXPECT_EQ(max_abs_diff(whole.block(10, 0, 14, n), bottom.view()), 0.0);
}

TEST(Generators, ConditionedMatrixHasRequestedExtremeSingularValues) {
  const Index m = 80, n = 10;
  const double cond = 1e6;
  Matrix a = random_with_condition(m, n, cond, 123);
  // sigma_max(A) ~ 1 and sigma_min(A) ~ 1/cond: estimate through R of QR.
  Matrix f = Matrix::copy_of(a.view());
  std::vector<double> tau;
  geqrf(f.view(), tau);
  // ||A||_F = sqrt(sum sigma_i^2): between sigma_max = 1 and sqrt(n).
  EXPECT_GE(frobenius_norm(a.view()), 1.0 - 1e-10);
  EXPECT_LE(frobenius_norm(a.view()), std::sqrt(static_cast<double>(n)));
  // Gram matrix condition: power iteration on A^T A for sigma_max.
  Matrix g(n, n);
  syrk_upper_at_a(1.0, a.view(), 0.0, g.view());
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) g(j, i) = g(i, j);
  }
  double smax = 0.0;
  {
    std::vector<double> v(n, 1.0), w(n);
    for (int it = 0; it < 200; ++it) {
      gemv(Trans::No, 1.0, g.view(), v.data(), 0.0, w.data());
      const double norm = nrm2(n, w.data());
      for (Index i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = w[static_cast<std::size_t>(i)] / norm;
      smax = norm;
    }
  }
  EXPECT_NEAR(std::sqrt(smax), 1.0, 0.05);
}

TEST(Generators, NearParallelColumnsAreNearlyDependent) {
  const Index m = 60, n = 6;
  Matrix tight = near_parallel_columns(m, n, 1e-8, 9);
  Matrix loose = near_parallel_columns(m, n, 1.0, 9);
  // Column angle proxy: normalized dot of the first two columns.
  auto cosine = [&](const Matrix& a) {
    const double d = dot(m, &a(0, 0), &a(0, 1));
    return d / (nrm2(m, &a(0, 0)) * nrm2(m, &a(0, 1)));
  };
  EXPECT_GT(cosine(tight), 1.0 - 1e-12);
  EXPECT_LT(cosine(loose), 0.999);
}

TEST(Generators, RejectsBadArguments) {
  EXPECT_THROW(random_with_condition(5, 10, 100.0, 1), Error);
  EXPECT_THROW(random_with_condition(10, 5, 0.5, 1), Error);
}

}  // namespace
}  // namespace qrgrid

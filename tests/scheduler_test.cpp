#include "simgrid/jobprofile.hpp"

#include <gtest/gtest.h>

namespace qrgrid::simgrid {
namespace {

JobProfile four_site_profile(int procs_per_group) {
  JobProfile profile;
  profile.name = "tsqr-4-sites";
  for (int g = 0; g < 4; ++g) {
    GroupRequirement req;
    req.processes = procs_per_group;
    req.max_intra_latency_s = 1e-3;        // excludes wide-area links
    req.min_intra_bandwidth_Bps = 100e6 / 8;
    profile.groups.push_back(req);
  }
  return profile;
}

TEST(MetaScheduler, PlacesFourGroupsOnFourClusters) {
  MetaScheduler sched(GridTopology::grid5000());
  auto alloc = sched.allocate(four_site_profile(64));
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->size(), 256);
  // Each group must be confined to one cluster.
  const GridTopology& topo = sched.topology();
  for (int g = 0; g < 4; ++g) {
    int cluster = -1;
    for (int r = 0; r < alloc->size(); ++r) {
      if (alloc->group_of(r) != g) continue;
      const int c = topo.location_of(
          alloc->placement[static_cast<std::size_t>(r)]).cluster;
      if (cluster < 0) cluster = c;
      EXPECT_EQ(c, cluster);
    }
  }
}

TEST(MetaScheduler, DistinctGroupsLandOnDistinctClusters) {
  MetaScheduler sched(GridTopology::grid5000());
  auto alloc = sched.allocate(four_site_profile(64));
  ASSERT_TRUE(alloc.has_value());
  const GridTopology& topo = sched.topology();
  std::vector<int> cluster_of_group(4, -1);
  for (int r = 0; r < alloc->size(); ++r) {
    const int g = alloc->group_of(r);
    cluster_of_group[static_cast<std::size_t>(g)] = topo.location_of(
        alloc->placement[static_cast<std::size_t>(r)]).cluster;
  }
  std::sort(cluster_of_group.begin(), cluster_of_group.end());
  EXPECT_EQ(cluster_of_group, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MetaScheduler, OversizedRequestIsRejected) {
  MetaScheduler sched(GridTopology::grid5000(1));  // 64 procs total
  JobProfile profile;
  GroupRequirement req;
  req.processes = 65;
  profile.groups.push_back(req);
  EXPECT_FALSE(sched.allocate(profile).has_value());
}

TEST(MetaScheduler, TwoGroupsCanShareAClusterWhenNeeded) {
  MetaScheduler sched(GridTopology::grid5000(1));  // one 64-proc site
  JobProfile profile;
  for (int g = 0; g < 2; ++g) {
    GroupRequirement req;
    req.processes = 32;
    profile.groups.push_back(req);
  }
  auto alloc = sched.allocate(profile);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->size(), 64);
}

TEST(MetaScheduler, EqualPowerToleranceEnforced) {
  MetaScheduler sched(GridTopology::grid5000());
  JobProfile profile = four_site_profile(64);
  profile.equal_group_power = true;
  // Peaks 4.0 .. 5.2 per proc: imbalance (5.2-4.0)/5.2 ~ 23%.
  profile.power_tolerance = 0.30;
  EXPECT_TRUE(sched.allocate(profile).has_value());
  profile.power_tolerance = 0.10;
  EXPECT_FALSE(sched.allocate(profile).has_value());
}

TEST(MetaScheduler, LatencyBoundTooStrictIsRejected) {
  MetaScheduler sched(GridTopology::grid5000());
  JobProfile profile;
  GroupRequirement req;
  req.processes = 8;
  req.max_intra_latency_s = 1e-9;  // tighter than any real link
  profile.groups.push_back(req);
  EXPECT_FALSE(sched.allocate(profile).has_value());
}

TEST(MetaScheduler, AttributesExposeGroupIds) {
  MetaScheduler sched(GridTopology::grid5000());
  auto alloc = sched.allocate(four_site_profile(16));
  ASSERT_TRUE(alloc.has_value());
  ProcessGroupAttributes attrs = attributes_from(*alloc);
  ASSERT_EQ(attrs.group_of_rank.size(), 64u);
  EXPECT_EQ(attrs.group_of_rank.front(), 0);
  EXPECT_EQ(attrs.group_of_rank.back(), 3);
}

}  // namespace
}  // namespace qrgrid::simgrid

// Service-layer engine equivalence: the same queued workload driven
// through the cached-DES-replay backend and the threaded msg::Runtime
// backend must (1) produce IDENTICAL scheduling decisions — placement,
// start order, backfill choices — because both backends schedule with
// the same DES profile by construction, (2) agree on finish times within
// a stated tolerance when the replay layout matches the real execution
// (one domain per process), (3) pass real numerics gates on every
// msg-executed factorization, and (4) yield matching kill/requeue
// accounting under injected outages, with the msg backend's kills landing
// as REAL mid-factorization aborts through the communicator (the
// failure_test propagation machinery), not synthetic replay truncations.
//
// This is the test that turns the simulator into a validated predictor:
// the paper's DES replay claims are checked against actual multi-site
// TSQR/CAQR executions at the service layer.
#include "sched/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/des_algos.hpp"
#include "sched/workload.hpp"

namespace qrgrid::sched {
namespace {

/// Finish-time agreement gate between the measured msg-runtime makespan
/// and the DES replay of the same attempt, for one-domain-per-process
/// layouts with n <= 128 (where the two schedules are structurally
/// identical and even the combine-kernel roofline rates coincide). The
/// only modeled difference left is the replay's aggregate-WAN horizon
/// booking, which is microscopic at these byte counts.
constexpr double kFinishTimeTolerance = 0.02;
/// Real numerics gate per executed job (same bound as `qrgrid_cli
/// factor`): ||A - QR||/||A|| and ||Q^T Q - I||.
constexpr double kNumericsTolerance = 1e-10;

simgrid::GridTopology small_grid() {
  // 2 sites x 2 nodes x 2 procs = 8 processes, 4 nodes.
  return simgrid::GridTopology::grid5000(2, 2, 2);
}

/// Workload small enough to execute for real: the msg backend factors
/// every matrix on live threads, so shapes stay in the
/// hundreds-of-thousands-of-entries range, with arrivals tight enough
/// that queues (and EASY backfill holes) actually form.
std::vector<Job> small_workload(int jobs, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.jobs = jobs;
  spec.mean_interarrival_s = 0.004;
  spec.m_choices = {512, 1024, 2048};
  spec.n_choices = {16, 32};
  spec.procs_choices = {2, 4, 8};
  spec.seed = seed;
  return generate_workload(spec);
}

ServiceOptions backend_options(BackendKind kind, Policy policy) {
  ServiceOptions options;
  options.policy = policy;
  options.backend = kind;
  // One single-rank domain per process: the layout under which the DES
  // replay is structurally identical to the threaded tsqr_factor run.
  options.domains_per_cluster = core::kOneDomainPerProcess;
  return options;
}

ServiceReport run_backend(BackendKind kind, Policy policy,
                          const std::vector<Job>& jobs,
                          ServiceOptions options) {
  options.backend = kind;
  GridJobService service(small_grid(), model::paper_calibration(), options);
  return service.run(jobs);
}

/// Every field a scheduling decision shows up in. Finish times are
/// included on purpose: virtual time is driven by the shared profile, so
/// even THEY must match to the bit across backends.
void expect_identical_decisions(const ServiceReport& a,
                                const ServiceReport& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const JobOutcome& x = a.outcomes[i];
    const JobOutcome& y = b.outcomes[i];
    EXPECT_EQ(x.job.id, y.job.id);
    EXPECT_EQ(x.start_s, y.start_s) << "job " << x.job.id;
    EXPECT_EQ(x.finish_s, y.finish_s) << "job " << x.job.id;
    EXPECT_EQ(x.clusters, y.clusters) << "job " << x.job.id;
    EXPECT_EQ(x.nodes_per_cluster, y.nodes_per_cluster)
        << "job " << x.job.id;
    EXPECT_EQ(x.backfilled, y.backfilled) << "job " << x.job.id;
    EXPECT_EQ(x.fate, y.fate) << "job " << x.job.id;
    EXPECT_EQ(x.attempts, y.attempts) << "job " << x.job.id;
    EXPECT_EQ(x.wasted_node_s, y.wasted_node_s) << "job " << x.job.id;
    EXPECT_EQ(x.credited_s, y.credited_s) << "job " << x.job.id;
  }
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.backfilled_jobs, b.backfilled_jobs);
  EXPECT_EQ(a.killed_jobs, b.killed_jobs);
  EXPECT_EQ(a.requeued_jobs, b.requeued_jobs);
  EXPECT_EQ(a.walltime_kills, b.walltime_kills);
  EXPECT_EQ(a.outage_kills, b.outage_kills);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.wasted_node_seconds, b.wasted_node_seconds);
  EXPECT_EQ(a.wan_egress_bytes, b.wan_egress_bytes);
}

TEST(BackendEquivalence, IdenticalSchedulingDecisionsOn24Jobs) {
  const std::vector<Job> jobs = small_workload(24, 41);
  for (const Policy policy :
       {Policy::kFcfs, Policy::kSpjf, Policy::kEasyBackfill}) {
    const ServiceOptions options = backend_options(BackendKind::kDesReplay,
                                                   policy);
    const ServiceReport des =
        run_backend(BackendKind::kDesReplay, policy, jobs, options);
    const ServiceReport msg =
        run_backend(BackendKind::kMsgRuntime, policy, jobs, options);
    expect_identical_decisions(des, msg);
    // The workload genuinely exercises the scheduler, not just the
    // backends: queues form, and EASY finds backfill holes.
    if (policy == Policy::kEasyBackfill) {
      EXPECT_GT(msg.backfilled_jobs, 0);
    }
    // Replay backend executes nothing; msg backend executes everything.
    EXPECT_EQ(des.executed_attempts, 0);
    EXPECT_EQ(msg.executed_attempts, msg.completed_jobs);
    for (const JobOutcome& o : des.outcomes) EXPECT_FALSE(o.executed);
    for (const JobOutcome& o : msg.outcomes) {
      EXPECT_TRUE(o.executed) << "job " << o.job.id;
      EXPECT_FALSE(o.exec_aborted) << "job " << o.job.id;
    }
  }
}

TEST(BackendEquivalence, MeasuredFinishTimesMatchReplayWithinTolerance) {
  const std::vector<Job> jobs = small_workload(24, 43);
  const ServiceOptions options =
      backend_options(BackendKind::kMsgRuntime, Policy::kEasyBackfill);
  const ServiceReport report = run_backend(
      BackendKind::kMsgRuntime, Policy::kEasyBackfill, jobs, options);
  ASSERT_EQ(report.completed_jobs,
            static_cast<long long>(report.outcomes.size()));
  for (const JobOutcome& o : report.outcomes) {
    ASSERT_TRUE(o.executed);
    ASSERT_GT(o.measured_s, 0.0);
    // service_s of a fault-free, contention-free attempt IS the replay
    // makespan; the measured threaded run must land within tolerance.
    const double rel = std::abs(o.measured_s - o.service_s) / o.service_s;
    EXPECT_LE(rel, kFinishTimeTolerance)
        << "job " << o.job.id << ": measured " << o.measured_s
        << " s vs replay " << o.service_s << " s";
  }
}

TEST(BackendEquivalence, MsgExecutedJobsMeetNumericsGates) {
  const std::vector<Job> jobs = small_workload(20, 47);
  const ServiceOptions options =
      backend_options(BackendKind::kMsgRuntime, Policy::kFcfs);
  const ServiceReport report =
      run_backend(BackendKind::kMsgRuntime, Policy::kFcfs, jobs, options);
  for (const JobOutcome& o : report.outcomes) {
    ASSERT_TRUE(o.completed());
    EXPECT_TRUE(std::isfinite(o.residual)) << "job " << o.job.id;
    EXPECT_LT(o.residual, kNumericsTolerance) << "job " << o.job.id;
    EXPECT_LT(o.orthogonality, kNumericsTolerance) << "job " << o.job.id;
  }
  EXPECT_GT(report.max_residual, 0.0);  // a real factorization happened
  EXPECT_LT(report.max_residual, kNumericsTolerance);
  EXPECT_LT(report.max_orthogonality, kNumericsTolerance);
  // Distinct jobs factor distinct matrices: at least two different
  // residuals across the workload.
  bool distinct = false;
  for (const JobOutcome& o : report.outcomes) {
    distinct |= o.residual != report.outcomes[0].residual;
  }
  EXPECT_TRUE(distinct);
}

TEST(BackendEquivalence, InjectedOutageMatchesAcrossBackends) {
  const std::vector<Job> jobs = small_workload(20, 53);
  ServiceOptions options =
      backend_options(BackendKind::kDesReplay, Policy::kFcfs);

  // Probe run (replay backend, no faults): find a mid-run window of a
  // job holding nodes on cluster 0 and drop the cluster inside it.
  const ServiceReport probe =
      run_backend(BackendKind::kDesReplay, Policy::kFcfs, jobs, options);
  double down_s = -1.0, up_s = -1.0;
  for (const JobOutcome& o : probe.outcomes) {
    const bool on_cluster0 =
        std::find(o.clusters.begin(), o.clusters.end(), 0) !=
        o.clusters.end();
    if (on_cluster0 && o.service_s > 0.0) {
      down_s = o.start_s + 0.5 * o.service_s;
      up_s = down_s + 2.0 * o.service_s;
      break;
    }
  }
  ASSERT_GT(down_s, 0.0) << "probe found no cluster-0 job to kill";

  options.outages = OutageTrace({Outage{0, down_s, up_s}});
  options.max_retries = 3;
  const ServiceReport des =
      run_backend(BackendKind::kDesReplay, Policy::kFcfs, jobs, options);
  const ServiceReport msg =
      run_backend(BackendKind::kMsgRuntime, Policy::kFcfs, jobs, options);

  // The outage really killed (and requeued) at least one job, and the
  // fate/attempt/waste accounting agrees column for column.
  EXPECT_GT(des.outage_kills, 0);
  EXPECT_GT(des.requeued_jobs, 0);
  expect_identical_decisions(des, msg);

  // The msg backend's kills were REAL: the in-flight factorizations
  // aborted mid-run through the communicator (the kill interrupts the
  // operation in progress, so the furthest clock reads exactly the kill
  // point), proving the real runs genuinely had work in flight at the
  // injected truncation instants. A replay that overestimated the real
  // runtime would complete before its limit and fail the lower bound.
  EXPECT_EQ(msg.aborted_attempts, msg.killed_jobs);
  ASSERT_GT(msg.injected_abort_vtime_s, 0.0);
  EXPECT_GE(msg.measured_abort_vtime_s,
            msg.injected_abort_vtime_s * (1.0 - kFinishTimeTolerance));
  EXPECT_LE(msg.measured_abort_vtime_s,
            msg.injected_abort_vtime_s + 1e-9);
  EXPECT_EQ(des.aborted_attempts, 0);
  EXPECT_EQ(des.injected_abort_vtime_s, 0.0);
}

TEST(BackendEquivalence, WalltimeKillAbortsTheRealRunMidFactorization) {
  // One job, walltime pinned to 60% of its replay: both backends kill it
  // finally; on the msg backend the communicator aborts at 0.6 of the
  // virtual timeline for real.
  std::vector<Job> jobs = small_workload(1, 59);
  jobs[0].procs = 8;
  ServiceOptions options =
      backend_options(BackendKind::kDesReplay, Policy::kFcfs);
  const ServiceReport probe =
      run_backend(BackendKind::kDesReplay, Policy::kFcfs, jobs, options);
  ASSERT_EQ(probe.completed_jobs, 1);
  jobs[0].walltime_s = 0.6 * probe.outcomes[0].service_s;

  const ServiceReport des =
      run_backend(BackendKind::kDesReplay, Policy::kFcfs, jobs, options);
  const ServiceReport msg =
      run_backend(BackendKind::kMsgRuntime, Policy::kFcfs, jobs, options);
  expect_identical_decisions(des, msg);
  ASSERT_EQ(msg.walltime_kills, 1);
  EXPECT_EQ(msg.aborted_attempts, 1);
  EXPECT_TRUE(msg.outcomes[0].exec_aborted);
  // The aborted run reached exactly the injected kill point (the kill
  // interrupts the operation in progress) — and crucially not less: the
  // real factorization still had work in flight at 60% of the replay.
  EXPECT_DOUBLE_EQ(msg.outcomes[0].measured_s,
                   msg.injected_abort_vtime_s);
  // Killed before the factorization finished: no numerics to report.
  EXPECT_TRUE(std::isnan(msg.outcomes[0].residual));
}

TEST(BackendEquivalence, CaqrJobsExecuteForRealAndPassNumerics) {
  // Wide jobs run the full CAQR panel algorithm on the msg runtime
  // (panels of 8 columns, TSQR per panel, trailing updates applied
  // through the implicit Q). The DES profile is unchanged, so scheduling
  // stays identical; the numerics gate now covers caqr_factor too.
  std::vector<Job> jobs = small_workload(6, 61);
  ServiceOptions options =
      backend_options(BackendKind::kMsgRuntime, Policy::kFcfs);
  options.backend_caqr_panel_width = 8;  // every n in {16, 32} uses CAQR
  const ServiceReport des = run_backend(BackendKind::kDesReplay,
                                        Policy::kFcfs, jobs, options);
  const ServiceReport msg = run_backend(BackendKind::kMsgRuntime,
                                        Policy::kFcfs, jobs, options);
  expect_identical_decisions(des, msg);
  for (const JobOutcome& o : msg.outcomes) {
    ASSERT_TRUE(o.completed());
    ASSERT_TRUE(o.executed);
    EXPECT_LT(o.residual, kNumericsTolerance) << "job " << o.job.id;
    EXPECT_LT(o.orthogonality, kNumericsTolerance) << "job " << o.job.id;
  }
}

TEST(BackendEquivalence, MsgBackendIsDeterministicAcrossRuns) {
  // Threaded execution must not leak scheduling nondeterminism into the
  // report: virtual clocks are data-flow determined, so two runs agree
  // on every measured number, residuals included.
  const std::vector<Job> jobs = small_workload(10, 67);
  const ServiceOptions options =
      backend_options(BackendKind::kMsgRuntime, Policy::kEasyBackfill);
  const ServiceReport a = run_backend(BackendKind::kMsgRuntime,
                                      Policy::kEasyBackfill, jobs, options);
  const ServiceReport b = run_backend(BackendKind::kMsgRuntime,
                                      Policy::kEasyBackfill, jobs, options);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].measured_s, b.outcomes[i].measured_s);
    EXPECT_EQ(a.outcomes[i].residual, b.outcomes[i].residual);
    EXPECT_EQ(a.outcomes[i].orthogonality, b.outcomes[i].orthogonality);
  }
  EXPECT_EQ(summary_row(a), summary_row(b));
}

TEST(BackendEquivalence, MsgBackendRefusesFigureScaleJobs) {
  // The msg backend is for small workloads; a figure-scale matrix must
  // be rejected loudly, not silently executed for minutes.
  std::vector<Job> jobs = small_workload(1, 71);
  jobs[0].m = 1 << 22;
  jobs[0].n = 64;
  ServiceOptions options =
      backend_options(BackendKind::kMsgRuntime, Policy::kFcfs);
  GridJobService service(small_grid(), model::paper_calibration(), options);
  EXPECT_THROW(service.run(jobs), Error);
}

}  // namespace
}  // namespace qrgrid::sched

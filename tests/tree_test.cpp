#include "core/tree.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qrgrid::core {
namespace {

/// Structural invariants every reduction tree must satisfy: each non-root
/// domain is a child exactly once, never merges again afterwards, and the
/// root is never a child.
void check_valid_tree(const ReductionTree& t) {
  const int d = t.num_domains();
  std::set<int> retired;
  std::set<int> seen_child;
  for (const auto& level : t.levels()) {
    for (const auto& m : level.merges) {
      EXPECT_NE(m.parent, m.child);
      EXPECT_GE(m.child, 0);
      EXPECT_LT(m.child, d);
      EXPECT_GE(m.parent, 0);
      EXPECT_LT(m.parent, d);
      EXPECT_FALSE(retired.contains(m.parent))
          << "parent " << m.parent << " already sent its R";
      EXPECT_FALSE(retired.contains(m.child));
      EXPECT_TRUE(seen_child.insert(m.child).second)
          << "domain " << m.child << " is a child twice";
      retired.insert(m.child);
    }
  }
  EXPECT_EQ(static_cast<int>(seen_child.size()), d - 1)
      << "every non-root domain must be absorbed exactly once";
  EXPECT_FALSE(seen_child.contains(t.root()));
}

class TreeShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeShapeTest, FlatIsValidWithLinearDepth) {
  const int d = GetParam();
  ReductionTree t = ReductionTree::flat(d);
  check_valid_tree(t);
  EXPECT_EQ(t.depth(), d - 1);
}

TEST_P(TreeShapeTest, BinaryIsValidWithLogDepth) {
  const int d = GetParam();
  ReductionTree t = ReductionTree::binary(d);
  check_valid_tree(t);
  int expected_depth = 0;
  for (int s = 1; s < d; s *= 2) ++expected_depth;
  EXPECT_EQ(t.depth(), expected_depth);
}

INSTANTIATE_TEST_SUITE_P(DomainCounts, TreeShapeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 64, 256));

TEST(Tree, BinaryMergePartnersAtPowerOfTwoStrides) {
  ReductionTree t = ReductionTree::binary(8);
  ASSERT_EQ(t.depth(), 3);
  EXPECT_EQ(t.levels()[0].merges.size(), 4u);
  EXPECT_EQ(t.levels()[1].merges.size(), 2u);
  EXPECT_EQ(t.levels()[2].merges.size(), 1u);
  EXPECT_EQ(t.levels()[2].merges[0].parent, 0);
  EXPECT_EQ(t.levels()[2].merges[0].child, 4);
}

TEST(Tree, GridHierarchicalIsValid) {
  // 3 clusters x 4 domains.
  std::vector<int> cluster = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  ReductionTree t = ReductionTree::grid_hierarchical(cluster);
  check_valid_tree(t);
}

TEST(Tree, GridHierarchicalMinimizesInterClusterMessages) {
  // The paper's Fig. 2 argument: with domains spread over S clusters, the
  // tuned tree pays exactly S-1 inter-cluster messages; the topology-blind
  // binary tree generally pays more.
  for (int sites : {2, 3, 4}) {
    const int per_site = 8;
    std::vector<int> cluster;
    for (int s = 0; s < sites; ++s) {
      for (int d = 0; d < per_site; ++d) cluster.push_back(s);
    }
    ReductionTree tuned = ReductionTree::grid_hierarchical(cluster);
    EXPECT_EQ(tuned.inter_cluster_merges(cluster), sites - 1);
  }
}

TEST(Tree, InterleavedPlacementHurtsBlindBinaryTree) {
  // Round-robin domain placement (worst case the paper's Fig. 1 caption
  // warns about): the blind binary tree crosses clusters at every level,
  // the tuned tree still pays sites-1.
  const int sites = 4, per_site = 4;
  std::vector<int> cluster;
  for (int d = 0; d < sites * per_site; ++d) cluster.push_back(d % sites);
  // Tuned tree handles non-contiguous clusters.
  ReductionTree tuned = ReductionTree::grid_hierarchical(cluster);
  EXPECT_EQ(tuned.inter_cluster_merges(cluster), sites - 1);
  ReductionTree blind = ReductionTree::binary(sites * per_site);
  EXPECT_GT(blind.inter_cluster_merges(cluster), sites - 1);
}

TEST(Tree, MakeDispatchesAndDegenerates) {
  EXPECT_EQ(ReductionTree::make(TreeKind::kFlat, 5).depth(), 4);
  EXPECT_EQ(ReductionTree::make(TreeKind::kBinary, 8).depth(), 3);
  // Hierarchical without topology degenerates to binary.
  EXPECT_EQ(ReductionTree::make(TreeKind::kGridHierarchical, 8).depth(), 3);
  std::vector<int> cluster = {0, 0, 1, 1};
  ReductionTree t =
      ReductionTree::make(TreeKind::kGridHierarchical, 4, cluster);
  check_valid_tree(t);
  EXPECT_EQ(t.inter_cluster_merges(cluster), 1);
}

TEST(Tree, SingleDomainHasNoLevels) {
  EXPECT_EQ(ReductionTree::binary(1).depth(), 0);
  EXPECT_EQ(ReductionTree::flat(1).depth(), 0);
}

TEST(PartitionRows, EvenAndUnevenSplits) {
  auto even = partition_rows(100, 4);
  ASSERT_EQ(even.size(), 4u);
  for (const auto& blk : even) EXPECT_EQ(blk.count, 25);
  EXPECT_EQ(even[3].offset, 75);

  auto uneven = partition_rows(10, 3);
  EXPECT_EQ(uneven[0].count, 4);
  EXPECT_EQ(uneven[1].count, 3);
  EXPECT_EQ(uneven[2].count, 3);
  EXPECT_EQ(uneven[0].offset + uneven[0].count, uneven[1].offset);
  EXPECT_EQ(uneven[2].offset + uneven[2].count, 10);
}

TEST(PartitionRows, MoreParts) {
  auto blocks = partition_rows(5, 8);
  std::int64_t total = 0;
  for (const auto& blk : blocks) total += blk.count;
  EXPECT_EQ(total, 5);
}

}  // namespace
}  // namespace qrgrid::core

#include "core/caqr.hpp"

#include <gtest/gtest.h>

#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid::core {
namespace {

Matrix reference_r(const Matrix& global) {
  Matrix f = Matrix::copy_of(global.view());
  std::vector<double> tau;
  geqrf(f.view(), tau);
  Matrix r = extract_r(f.view());
  normalize_r_sign(r.view());
  return r;
}

struct CaqrCase {
  int procs;
  Index n;
  Index m_loc;
  Index panel;
};

class CaqrTest : public ::testing::TestWithParam<CaqrCase> {};

TEST_P(CaqrTest, RMatchesSequentialReference) {
  const CaqrCase c = GetParam();
  const Index m_global = c.m_loc * c.procs;
  Matrix global = random_gaussian(m_global, c.n, 5050);
  Matrix want = reference_r(global);

  msg::Runtime rt(c.procs);
  Matrix got;
  rt.run([&](msg::Comm& comm) {
    Matrix local(c.m_loc, c.n);
    fill_gaussian_rows(local.view(), comm.rank() * c.m_loc, 5050);
    CaqrOptions opts;
    opts.panel_width = c.panel;
    CaqrFactors f =
        caqr_factor(comm, local.view(), comm.rank() * c.m_loc, opts);
    if (comm.rank() == 0) {
      normalize_r_sign(f.r.view());
      got = std::move(f.r);
    }
  });
  ASSERT_EQ(got.rows(), c.n);
  EXPECT_LT(max_abs_diff(got.view(), want.view()),
            1e-10 * frobenius_norm(want.view()))
      << "procs=" << c.procs << " n=" << c.n << " panel=" << c.panel;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CaqrTest,
    ::testing::Values(CaqrCase{1, 12, 30, 4}, CaqrCase{2, 16, 20, 4},
                      CaqrCase{4, 12, 16, 3}, CaqrCase{4, 16, 20, 16},
                      CaqrCase{3, 10, 14, 4}, CaqrCase{4, 15, 18, 4}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.procs) + "_n" +
             std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.panel);
    });

TEST(Caqr, PanelWidthDoesNotChangeR) {
  const int procs = 2;
  const Index m_loc = 24, n = 12;
  msg::Runtime rt(procs);
  Matrix r_narrow, r_wide;
  rt.run([&](msg::Comm& comm) {
    for (Index panel : {3, 12}) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 5151);
      CaqrOptions opts;
      opts.panel_width = panel;
      CaqrFactors f =
          caqr_factor(comm, local.view(), comm.rank() * m_loc, opts);
      if (comm.rank() == 0) {
        normalize_r_sign(f.r.view());
        (panel == 3 ? r_narrow : r_wide) = std::move(f.r);
      }
    }
  });
  EXPECT_LT(max_abs_diff(r_narrow.view(), r_wide.view()),
            1e-10 * frobenius_norm(r_narrow.view()));
}

TEST(Caqr, ExplicitQIsOrthogonalAndReconstructs) {
  const int procs = 3;
  const Index m_loc = 20, n = 9;
  Matrix global = random_gaussian(m_loc * procs, n, 5252);
  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(procs);
  Matrix r_final;
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 5252);
    CaqrOptions opts;
    opts.panel_width = 4;
    CaqrFactors f =
        caqr_factor(comm, local.view(), comm.rank() * m_loc, opts);
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        caqr_form_explicit_q(comm, f);
    if (comm.rank() == 0) r_final = std::move(f.r);
  });
  Matrix q_global(m_loc * procs, n);
  for (int r = 0; r < procs; ++r) {
    copy(q_blocks[static_cast<std::size_t>(r)].view(),
         q_global.block(r * m_loc, 0, m_loc, n));
  }
  EXPECT_LT(orthogonality_error(q_global.view()), 1e-11);
  EXPECT_LT(factorization_residual(global.view(), q_global.view(),
                                   r_final.view()),
            1e-11);
}

TEST(Caqr, HierarchicalTreePanelsMatchBinary) {
  const int procs = 4;
  const Index m_loc = 18, n = 8;
  msg::Runtime rt(procs);
  Matrix r_binary, r_grid;
  rt.run([&](msg::Comm& comm) {
    for (int which : {0, 1}) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 5353);
      CaqrOptions opts;
      opts.panel_width = 4;
      if (which == 1) {
        opts.tsqr.tree = TreeKind::kGridHierarchical;
        opts.tsqr.rank_cluster = {0, 0, 1, 1};
      }
      CaqrFactors f =
          caqr_factor(comm, local.view(), comm.rank() * m_loc, opts);
      if (comm.rank() == 0) {
        normalize_r_sign(f.r.view());
        (which == 0 ? r_binary : r_grid) = std::move(f.r);
      }
    }
  });
  EXPECT_LT(max_abs_diff(r_binary.view(), r_grid.view()),
            1e-10 * frobenius_norm(r_binary.view()));
}

TEST(Caqr, RootWithoutAllPivotRowsIsRejected) {
  msg::Runtime rt(2);
  EXPECT_THROW(rt.run([](msg::Comm& comm) {
                 Matrix local(6, 10);  // rank 0 has fewer rows than N
                 fill_gaussian_rows(local.view(), comm.rank() * 6, 1);
                 CaqrOptions opts;
                 (void)caqr_factor(comm, local.view(), comm.rank() * 6, opts);
               }),
               Error);
}

}  // namespace
}  // namespace qrgrid::core

#include "core/tsqr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid::core {
namespace {

/// Reference R of the global matrix via sequential Householder QR,
/// sign-normalized.
Matrix reference_r(const Matrix& global) {
  Matrix f = Matrix::copy_of(global.view());
  std::vector<double> tau;
  geqrf(f.view(), tau);
  Matrix r = extract_r(f.view());
  normalize_r_sign(r.view());
  return r;
}

struct TsqrCase {
  int procs;
  Index n;
  Index rows_per_proc;
  TreeKind tree;
};

class TsqrTest : public ::testing::TestWithParam<TsqrCase> {};

TEST_P(TsqrTest, RMatchesSequentialReference) {
  const TsqrCase c = GetParam();
  const Index m_global = c.rows_per_proc * c.procs;
  Matrix global = random_gaussian(m_global, c.n, 777);
  Matrix want = reference_r(global);

  msg::Runtime rt(c.procs);
  Matrix got;
  rt.run([&](msg::Comm& comm) {
    Matrix local(c.rows_per_proc, c.n);
    fill_gaussian_rows(local.view(), comm.rank() * c.rows_per_proc, 777);
    TsqrOptions opts;
    opts.tree = c.tree;
    if (c.tree == TreeKind::kGridHierarchical) {
      // Pretend half the ranks sit on another cluster.
      for (int r = 0; r < comm.size(); ++r) {
        opts.rank_cluster.push_back(r < (comm.size() + 1) / 2 ? 0 : 1);
      }
    }
    TsqrFactors f = tsqr_factor(comm, local.view(), opts);
    if (comm.rank() == 0) {
      normalize_r_sign(f.r.view());
      got = std::move(f.r);
    }
  });
  ASSERT_EQ(got.rows(), c.n);
  EXPECT_LT(max_abs_diff(got.view(), want.view()),
            1e-11 * frobenius_norm(want.view()))
      << "procs=" << c.procs << " n=" << c.n;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, TsqrTest,
    ::testing::Values(TsqrCase{1, 8, 20, TreeKind::kBinary},
                      TsqrCase{2, 8, 16, TreeKind::kBinary},
                      TsqrCase{4, 16, 24, TreeKind::kBinary},
                      TsqrCase{8, 8, 8, TreeKind::kBinary},
                      TsqrCase{7, 6, 9, TreeKind::kBinary},
                      TsqrCase{4, 8, 12, TreeKind::kFlat},
                      TsqrCase{6, 10, 15, TreeKind::kFlat},
                      TsqrCase{8, 12, 16, TreeKind::kGridHierarchical},
                      TsqrCase{5, 4, 6, TreeKind::kGridHierarchical}),
    [](const auto& info) {
      const char* tree = info.param.tree == TreeKind::kFlat ? "flat"
                         : info.param.tree == TreeKind::kBinary
                             ? "binary"
                             : "grid";
      return std::string(tree) + "_p" + std::to_string(info.param.procs) +
             "_n" + std::to_string(info.param.n);
    });

TEST(Tsqr, ExplicitQIsOrthogonalAndReconstructs) {
  const int procs = 4;
  const Index m_loc = 25, n = 10;
  Matrix global = random_gaussian(m_loc * procs, n, 888);

  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(procs);
  Matrix r_final;
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 888);
    TsqrFactors f = tsqr_factor(comm, local.view(), TsqrOptions{});
    Matrix q = tsqr_form_explicit_q(comm, f);
    q_blocks[static_cast<std::size_t>(comm.rank())] = std::move(q);
    if (comm.rank() == 0) r_final = std::move(f.r);
  });

  // Assemble the global Q.
  Matrix q_global(m_loc * procs, n);
  for (int r = 0; r < procs; ++r) {
    copy(q_blocks[static_cast<std::size_t>(r)].view(),
         q_global.block(r * m_loc, 0, m_loc, n));
  }
  EXPECT_LT(orthogonality_error(q_global.view()), 1e-12);
  EXPECT_LT(factorization_residual(global.view(), q_global.view(),
                                   r_final.view()),
            1e-12);
}

TEST(Tsqr, ReplicateRDeliversEverywhere) {
  const int procs = 3;
  msg::Runtime rt(procs);
  std::vector<Matrix> rs(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix local(12, 5);
    fill_gaussian_rows(local.view(), comm.rank() * 12, 999);
    TsqrOptions opts;
    opts.replicate_r = true;
    TsqrFactors f = tsqr_factor(comm, local.view(), opts);
    rs[static_cast<std::size_t>(comm.rank())] = std::move(f.r);
  });
  for (int r = 1; r < procs; ++r) {
    EXPECT_EQ(max_abs_diff(rs[0].view(), rs[static_cast<std::size_t>(r)].view()),
              0.0);
  }
}

TEST(Tsqr, ApplyQtProjectsOntoBasis) {
  // Q^T A must equal [R; 0].
  const int procs = 4;
  const Index m_loc = 16, n = 6;
  msg::Runtime rt(procs);
  double max_err = 0.0;
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 1010);
    Matrix a_copy = Matrix::copy_of(local.view());
    TsqrFactors f = tsqr_factor(comm, local.view(), TsqrOptions{});
    tsqr_apply_qt(comm, f, a_copy.view());
    if (comm.rank() == 0) {
      // Top n rows == R (same sign conventions, no normalization needed).
      double err = max_abs_diff(a_copy.block(0, 0, n, n), f.r.view());
      // Remaining rows ~ 0.
      for (Index i = n; i < m_loc; ++i) {
        for (Index j = 0; j < n; ++j) {
          err = std::max(err, std::fabs(a_copy(i, j)));
        }
      }
      max_err = err;
    } else {
      double err = 0.0;
      for (Index i = 0; i < m_loc; ++i) {
        for (Index j = 0; j < n; ++j) {
          err = std::max(err, std::fabs(a_copy(i, j)));
        }
      }
      max_err = std::max(max_err, err);
    }
  });
  EXPECT_LT(max_err, 1e-11);
}

TEST(Tsqr, ApplyQtThenQRoundTrips) {
  const int procs = 3;
  const Index m_loc = 14, n = 5, p = 4;
  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 1111);
    TsqrFactors f = tsqr_factor(comm, local.view(), TsqrOptions{});
    Matrix c(m_loc, p);
    fill_gaussian_rows(c.view(), comm.rank() * m_loc, 1212);
    Matrix orig = Matrix::copy_of(c.view());
    tsqr_apply_qt(comm, f, c.view());
    tsqr_apply_q(comm, f, c.view());
    EXPECT_LT(max_abs_diff(c.view(), orig.view()), 1e-11);
  });
}

TEST(Tsqr, RejectsWideLocalBlocks) {
  msg::Runtime rt(2);
  EXPECT_THROW(rt.run([](msg::Comm& comm) {
                 Matrix local(4, 8);  // m_local < n
                 fill_gaussian_rows(local.view(), comm.rank() * 4, 1);
                 (void)tsqr_factor(comm, local.view(), TsqrOptions{});
               }),
               Error);
}

TEST(Tsqr, PackUnpackRoundTrips) {
  Matrix r = random_gaussian(6, 6, 2020);
  zero_below_diagonal(r.view());
  std::vector<double> packed = pack_upper_triangle(r.view());
  EXPECT_EQ(packed.size(), 21u);
  Matrix back(6, 6);
  unpack_upper_triangle(packed, back.view());
  EXPECT_EQ(max_abs_diff(r.view(), back.view()), 0.0);
}

TEST(Tsqr, PackUnpackEmptyTriangle) {
  Matrix r(0, 0);
  std::vector<double> packed = pack_upper_triangle(r.view());
  EXPECT_EQ(packed.size(), 0u);
  Matrix back(0, 0);
  unpack_upper_triangle(packed, back.view());  // must accept the empty wire
}

TEST(Tsqr, PackUnpackSingleElement) {
  Matrix r(1, 1);
  r(0, 0) = 42.0;
  std::vector<double> packed = pack_upper_triangle(r.view());
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 42.0);
  Matrix back(1, 1);
  back(0, 0) = -1.0;
  unpack_upper_triangle(packed, back.view());
  EXPECT_EQ(back(0, 0), 42.0);
}

TEST(Tsqr, PackUnpackLargeTriangleWireSize) {
  // The R-factor wire format carries exactly n(n+1)/2 doubles — the volume
  // the Section-IV cost model charges per reduction message.
  const Index n = 97;
  Matrix r = random_gaussian(n, n, 4040);
  zero_below_diagonal(r.view());
  std::vector<double> packed = pack_upper_triangle(r.view());
  EXPECT_EQ(packed.size(), static_cast<std::size_t>(n * (n + 1) / 2));
  Matrix back(n, n);
  fill_gaussian_rows(back.view(), 0, 5050);  // stale below-diagonal junk
  unpack_upper_triangle(packed, back.view());
  EXPECT_EQ(max_abs_diff(r.view(), back.view()), 0.0);
}

TEST(Tsqr, IllConditionedInputStaysStable) {
  // TSQR must track Householder stability (paper §II-C: "numerically as
  // stable as the Householder QR factorization").
  const int procs = 4;
  const Index m_loc = 30, n = 8;
  Matrix global = random_with_condition(m_loc * procs, n, 1e12, 3030);

  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(procs);
  Matrix r_final;
  rt.run([&](msg::Comm& comm) {
    Matrix local = Matrix::copy_of(
        global.block(comm.rank() * m_loc, 0, m_loc, n));
    TsqrFactors f = tsqr_factor(comm, local.view(), TsqrOptions{});
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        tsqr_form_explicit_q(comm, f);
    if (comm.rank() == 0) r_final = std::move(f.r);
  });
  Matrix q_global(m_loc * procs, n);
  for (int r = 0; r < procs; ++r) {
    copy(q_blocks[static_cast<std::size_t>(r)].view(),
         q_global.block(r * m_loc, 0, m_loc, n));
  }
  // Orthogonality independent of conditioning — the TSQR selling point.
  EXPECT_LT(orthogonality_error(q_global.view()), 1e-12);
  EXPECT_LT(factorization_residual(global.view(), q_global.view(),
                                   r_final.view()),
            1e-12);
}

}  // namespace
}  // namespace qrgrid::core

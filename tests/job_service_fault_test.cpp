// Fault model of the grid job service: whole-cluster outages kill exactly
// the jobs holding affected nodes, killed jobs are requeued (bounded
// retries, optional restart credit) and eventually complete, user
// walltimes are enforced, and the report's conservation invariants hold
// under churn. Also pins the event precedence contract: at one virtual
// instant, completions beat outages beat arrivals.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sched/outage.hpp"
#include "sched/service.hpp"
#include "sched/workload.hpp"

namespace qrgrid::sched {
namespace {

simgrid::GridTopology small_grid() {
  // 2 sites x 2 nodes x 2 procs = 8 processes, 4 nodes.
  return simgrid::GridTopology::grid5000(2, 2, 2);
}

simgrid::GridTopology one_site() {
  // 1 site x 2 nodes x 2 procs = 4 processes: outages here stop the world.
  return simgrid::GridTopology::grid5000(1, 2, 2);
}

Job make_job(int id, double arrival_s, double m, int n, int procs) {
  Job job;
  job.id = id;
  job.arrival_s = arrival_s;
  job.m = m;
  job.n = n;
  job.procs = procs;
  return job;
}

int grid_nodes(const simgrid::GridTopology& topo) {
  int nodes = 0;
  for (int c = 0; c < topo.num_clusters(); ++c) nodes += topo.cluster(c).nodes;
  return nodes;
}

/// The ServiceReport conservation contract, asserted after every faulty run.
void expect_conserved(const ServiceReport& report, int submitted,
                      const simgrid::GridTopology& topo) {
  EXPECT_EQ(report.completed_jobs + report.failed_jobs, submitted);
  EXPECT_EQ(report.killed_jobs, report.walltime_kills + report.outage_kills);
  ASSERT_EQ(report.outcomes.size(), static_cast<std::size_t>(submitted));
  for (int i = 0; i < submitted; ++i) {
    EXPECT_EQ(report.outcomes[static_cast<std::size_t>(i)].job.id, i);
  }
  // Every held node-second is either useful or wasted, and the grid can
  // not have supplied more than capacity x makespan of either.
  EXPECT_LE(report.useful_node_seconds + report.wasted_node_seconds,
            static_cast<double>(grid_nodes(topo)) * report.makespan_s *
                (1.0 + 1e-12));
  EXPECT_GE(report.wasted_node_seconds, 0.0);
}

TEST(OutageTrace, ExplicitListYieldsOrderedBoundaries) {
  OutageTrace trace(std::vector<Outage>{
      {1, 5.0, 7.0}, {0, 2.0, 4.0}, {0, 7.0, 9.0}});
  std::vector<OutageEvent> events;
  while (trace.peek_s() < 1e30) events.push_back(trace.pop());
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time_s, events[i].time_s);
  }
  // At t=7 cluster 1 recovers BEFORE cluster 0 fails (up before down).
  EXPECT_FALSE(events[3].down);
  EXPECT_EQ(events[3].cluster, 1);
  EXPECT_TRUE(events[4].down);
  EXPECT_EQ(events[4].cluster, 0);
}

TEST(OutageTrace, GeneratorIsDeterministicAndAlternating) {
  OutageSpec spec;
  spec.mtbf_s = 10.0;
  spec.mean_outage_s = 2.0;
  spec.seed = 5;
  OutageTrace a(spec, 3);
  OutageTrace b(spec, 3);
  std::vector<bool> down(3, false);
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    const OutageEvent ea = a.pop();
    const OutageEvent eb = b.pop();
    EXPECT_EQ(ea.time_s, eb.time_s);
    EXPECT_EQ(ea.cluster, eb.cluster);
    EXPECT_EQ(ea.down, eb.down);
    EXPECT_GE(ea.time_s, prev);
    prev = ea.time_s;
    // Per-cluster boundaries strictly alternate down/up.
    EXPECT_NE(down[static_cast<std::size_t>(ea.cluster)], ea.down);
    down[static_cast<std::size_t>(ea.cluster)] = ea.down;
  }
}

TEST(OutageTrace, RejectsMalformedIntervals) {
  EXPECT_THROW(OutageTrace(std::vector<Outage>{{0, 5.0, 5.0}}), Error);
  EXPECT_THROW(OutageTrace(std::vector<Outage>{{-1, 1.0, 2.0}}), Error);
}

TEST(FaultService, OutageKillsExactlyTheJobsHoldingAffectedNodes) {
  // Two single-cluster jobs running side by side; fail the first job's
  // cluster mid-flight. Only that job dies — and it completes on retry.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 20, 64, 4),
                           make_job(1, 0.0, 1 << 20, 64, 4)};
  const model::Roofline roof = model::paper_calibration();

  const ServiceReport clean = GridJobService(small_grid(), roof).run(jobs);
  ASSERT_EQ(clean.completed_jobs, 2);
  ASSERT_EQ(clean.outcomes[0].clusters.size(), 1u);
  ASSERT_EQ(clean.outcomes[1].clusters.size(), 1u);
  const int hit = clean.outcomes[0].clusters[0];
  ASSERT_NE(hit, clean.outcomes[1].clusters[0]);  // side by side, not stacked
  const double mid =
      0.5 * (clean.outcomes[0].start_s + clean.outcomes[0].finish_s);
  ASSERT_LT(mid, clean.outcomes[1].finish_s);  // job 1 still running at mid

  ServiceOptions options;
  options.outages = OutageTrace(std::vector<Outage>{{hit, mid, mid + 1.0}});
  const ServiceReport faulty =
      GridJobService(small_grid(), roof, options).run(jobs);
  expect_conserved(faulty, 2, small_grid());
  EXPECT_EQ(faulty.outage_kills, 1);
  EXPECT_EQ(faulty.requeued_jobs, 1);
  EXPECT_EQ(faulty.completed_jobs, 2);  // the victim eventually completes
  EXPECT_EQ(faulty.outcomes[0].attempts, 2);
  EXPECT_TRUE(faulty.outcomes[0].completed());
  EXPECT_GT(faulty.outcomes[0].wasted_node_s, 0.0);
  // The bystander on the other cluster is untouched.
  EXPECT_EQ(faulty.outcomes[1].attempts, 1);
  EXPECT_EQ(faulty.outcomes[1].finish_s, clean.outcomes[1].finish_s);
  EXPECT_EQ(faulty.outcomes[1].wasted_node_s, 0.0);
  EXPECT_GT(faulty.outcomes[0].finish_s, clean.outcomes[0].finish_s);
}

TEST(FaultService, FinishBeatsSimultaneousOutage) {
  // Event precedence: an outage landing exactly on a job's completion
  // instant must not kill it — finishes are processed first.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 20, 64, 4)};
  const model::Roofline roof = model::paper_calibration();
  const ServiceReport clean = GridJobService(small_grid(), roof).run(jobs);
  const double finish = clean.outcomes[0].finish_s;
  const int cluster = clean.outcomes[0].clusters[0];

  ServiceOptions at_finish;
  at_finish.outages =
      OutageTrace(std::vector<Outage>{{cluster, finish, finish + 5.0}});
  const ServiceReport spared =
      GridJobService(small_grid(), roof, at_finish).run(jobs);
  EXPECT_EQ(spared.outage_kills, 0);
  EXPECT_EQ(spared.outcomes[0].attempts, 1);
  EXPECT_EQ(spared.outcomes[0].finish_s, finish);

  // A hair earlier and the same outage kills it.
  ServiceOptions just_before;
  just_before.outages = OutageTrace(
      std::vector<Outage>{{cluster, finish * (1.0 - 1e-9), finish + 5.0}});
  const ServiceReport killed =
      GridJobService(small_grid(), roof, just_before).run(jobs);
  EXPECT_EQ(killed.outage_kills, 1);
  EXPECT_EQ(killed.outcomes[0].attempts, 2);
  EXPECT_TRUE(killed.outcomes[0].completed());
  expect_conserved(killed, 1, small_grid());
}

TEST(FaultService, WalltimeExceededJobsAreKilledAndCounted) {
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 20, 64, 4),
                           make_job(1, 0.0, 1 << 20, 64, 4)};
  const model::Roofline roof = model::paper_calibration();
  const ServiceReport clean = GridJobService(small_grid(), roof).run(jobs);
  const double service_s = clean.outcomes[0].service_s;

  jobs[0].walltime_s = 0.5 * service_s;  // under-asked: will be killed
  jobs[1].walltime_s = 2.0 * service_s;  // honest over-ask: completes
  const ServiceReport report = GridJobService(small_grid(), roof).run(jobs);
  expect_conserved(report, 2, small_grid());
  EXPECT_EQ(report.walltime_kills, 1);
  EXPECT_EQ(report.outage_kills, 0);
  EXPECT_EQ(report.requeued_jobs, 0);  // walltime kills are final
  EXPECT_EQ(report.failed_jobs, 1);
  EXPECT_EQ(report.outcomes[0].fate, JobFate::kWalltimeKilled);
  EXPECT_DOUBLE_EQ(report.outcomes[0].finish_s,
                   report.outcomes[0].start_s + jobs[0].walltime_s);
  EXPECT_GT(report.wasted_node_seconds, 0.0);
  EXPECT_TRUE(report.outcomes[1].completed());
  EXPECT_DOUBLE_EQ(report.outcomes[1].service_s, service_s);
}

TEST(FaultService, EasyPlansWithEstimatesNotExactReplays) {
  // The EasyBackfillsWithoutDelayingTheHead scenario — but the short
  // backfill candidate OVER-ASKS far past the hole. With honest exact
  // times it fits; planning with the estimate, EASY must refuse it.
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 1 << 21, 64, 4));   // fills cluster 0
  jobs.push_back(make_job(1, 1.0, 1 << 21, 64, 8));   // head, needs all
  jobs.push_back(make_job(2, 2.0, 1 << 17, 64, 2));   // backfill candidate
  const model::Roofline roof = model::paper_calibration();
  ServiceOptions easy;
  easy.policy = Policy::kEasyBackfill;

  const ServiceReport honest =
      GridJobService(small_grid(), roof, easy).run(jobs);
  ASSERT_EQ(honest.backfilled_jobs, 1);  // exact times: slides into the hole

  jobs[2].walltime_s = 10.0 * honest.makespan_s;  // wild over-ask
  const ServiceReport cautious =
      GridJobService(small_grid(), roof, easy).run(jobs);
  EXPECT_EQ(cautious.backfilled_jobs, 0);
  EXPECT_FALSE(cautious.outcomes[2].backfilled);
  // The head is still never delayed past its reservation.
  EXPECT_LE(cautious.outcomes[1].start_s,
            cautious.outcomes[1].reserved_start_s + 1e-9);
  expect_conserved(cautious, 3, small_grid());
}

TEST(FaultService, RestartCreditResumesFromLastCompletedPanel) {
  // One job alone on a one-site grid, killed at ~70% of its replay. With
  // restart credit (10 panels) the second attempt only re-runs the tail.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 21, 64, 4)};
  const model::Roofline roof = model::paper_calibration();
  const ServiceReport clean = GridJobService(one_site(), roof).run(jobs);
  const double full_s = clean.outcomes[0].service_s;
  const std::vector<Outage> outage = {{0, 0.7 * full_s, 0.7 * full_s + 1.0}};

  ServiceOptions scratch;
  scratch.outages = OutageTrace(outage);
  const ServiceReport restarted =
      GridJobService(one_site(), roof, scratch).run(jobs);
  EXPECT_NEAR(restarted.outcomes[0].service_s, full_s, 1e-9 * full_s);
  EXPECT_EQ(restarted.outcomes[0].credited_s, 0.0);

  ServiceOptions credit = scratch;
  credit.restart_credit = true;
  credit.checkpoint_panels = 10;
  const ServiceReport resumed =
      GridJobService(one_site(), roof, credit).run(jobs);
  expect_conserved(resumed, 1, one_site());
  // 7 of 10 panels bank: the final attempt re-runs only 30% of the replay.
  EXPECT_NEAR(resumed.outcomes[0].credited_s, 0.7 * full_s, 1e-9 * full_s);
  EXPECT_NEAR(resumed.outcomes[0].service_s, 0.3 * full_s, 1e-9 * full_s);
  EXPECT_LT(resumed.makespan_s, restarted.makespan_s);
  EXPECT_LT(resumed.outcomes[0].wasted_node_s,
            restarted.outcomes[0].wasted_node_s);
  EXPECT_EQ(resumed.outcomes[0].attempts, 2);
}

TEST(FaultService, RestartCreditDoesNotDoubleChargeWan) {
  // A two-site job killed mid-replay and resumed with credit must charge
  // WAN bytes for roughly ONE traversal of its reduction tree: the
  // pre-kill fraction plus the uncredited remainder (at most one extra
  // panel of slack), never the banked prefix twice.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 21, 64, 8)};
  const model::Roofline roof = model::paper_calibration();
  const ServiceReport clean = GridJobService(small_grid(), roof).run(jobs);
  ASSERT_EQ(clean.outcomes[0].clusters.size(), 2u);  // spans the WAN
  const double clean_wan = static_cast<double>(total_wan_bytes(clean));
  ASSERT_GT(clean_wan, 0.0);
  const double full_s = clean.outcomes[0].service_s;

  ServiceOptions credit;
  credit.outages = OutageTrace(
      std::vector<Outage>{{0, 0.6 * full_s, 0.6 * full_s + 1.0}});
  credit.restart_credit = true;
  credit.checkpoint_panels = 10;
  const ServiceReport resumed =
      GridJobService(small_grid(), roof, credit).run(jobs);
  expect_conserved(resumed, 1, small_grid());
  ASSERT_EQ(resumed.outcomes[0].attempts, 2);
  ASSERT_TRUE(resumed.outcomes[0].completed());
  const double faulty_wan = static_cast<double>(total_wan_bytes(resumed));
  // charged = elapsed/full + (1 - banked) in [1, 1 + 1/panels] of clean.
  EXPECT_GE(faulty_wan, 0.99 * clean_wan);
  EXPECT_LE(faulty_wan, 1.11 * clean_wan);
}

TEST(FaultService, CheckpointCostFlipsTheCreditTradeOff) {
  // Restart credit stops being free: every interior panel boundary an
  // attempt crosses writes checkpoint I/O over the intra-cluster link
  // (checkpoint_cost_s seconds). At zero cost, resuming from the last
  // panel beats restarting from scratch; at an absurd cost, the I/O tax
  // on every attempt swamps the credit and NOT checkpointing wins.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 21, 64, 4)};
  const model::Roofline roof = model::paper_calibration();
  const ServiceReport clean = GridJobService(one_site(), roof).run(jobs);
  const double full_s = clean.outcomes[0].service_s;
  const std::vector<Outage> outage = {{0, 0.6 * full_s, 0.6 * full_s + 1.0}};

  ServiceOptions scratch;  // no checkpointing at all
  scratch.outages = OutageTrace(outage);
  const double no_credit_finish =
      GridJobService(one_site(), roof, scratch).run(jobs).makespan_s;

  ServiceOptions free_credit = scratch;
  free_credit.restart_credit = true;
  free_credit.checkpoint_panels = 8;
  const double free_finish =
      GridJobService(one_site(), roof, free_credit).run(jobs).makespan_s;

  ServiceOptions costly = free_credit;
  costly.checkpoint_cost_s = full_s;  // each checkpoint costs a whole run
  const ServiceReport costly_report =
      GridJobService(one_site(), roof, costly).run(jobs);
  expect_conserved(costly_report, 1, one_site());

  // The trade-off flips: free credit < no credit < prohibitively costly.
  EXPECT_LT(free_finish, no_credit_finish);
  EXPECT_GT(costly_report.makespan_s, no_credit_finish);

  // At a realistic cost the overhead is visible but the credit still
  // pays: monotone between the two extremes.
  ServiceOptions mild = free_credit;
  mild.checkpoint_cost_s = 0.01 * full_s;
  const double mild_finish =
      GridJobService(one_site(), roof, mild).run(jobs).makespan_s;
  EXPECT_GT(mild_finish, free_finish);
  EXPECT_LT(mild_finish, no_credit_finish);
}

TEST(FaultService, RetriesAreBoundedThenTheJobFails) {
  // Kill every attempt halfway; with max_retries = 2 the third kill is
  // final and the job leaves as kOutageFailed.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 21, 64, 4)};
  const model::Roofline roof = model::paper_calibration();
  const ServiceReport clean = GridJobService(one_site(), roof).run(jobs);
  const double full_s = clean.outcomes[0].service_s;

  std::vector<Outage> outages;
  double start = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const double kill = start + 0.5 * full_s;
    outages.push_back({0, kill, kill + 0.25});
    start = kill + 0.25;  // next attempt begins at the recovery
  }
  ServiceOptions options;
  options.outages = OutageTrace(outages);
  options.max_retries = 2;
  const ServiceReport report =
      GridJobService(one_site(), roof, options).run(jobs);
  expect_conserved(report, 1, one_site());
  EXPECT_EQ(report.outage_kills, 3);
  EXPECT_EQ(report.requeued_jobs, 2);
  EXPECT_EQ(report.failed_jobs, 1);
  EXPECT_EQ(report.completed_jobs, 0);
  EXPECT_EQ(report.outcomes[0].fate, JobFate::kOutageFailed);
  EXPECT_EQ(report.outcomes[0].attempts, 3);
  // All three half-attempts were pure waste.
  EXPECT_NEAR(report.outcomes[0].wasted_node_s,
              report.outcomes[0].nodes * 1.5 * full_s, 1e-6 * full_s);
}

TEST(FaultService, RequeuedJobsEventuallyCompleteUnderChurn) {
  // Seeded workload + seeded outages + over-asked walltimes under every
  // policy: conservation invariants hold and churn is actually exercised.
  WorkloadSpec spec;
  spec.jobs = 40;
  spec.mean_interarrival_s = 0.1;
  spec.procs_choices = {2, 4, 8};
  spec.seed = 41;
  std::vector<Job> jobs = generate_workload(spec);
  const model::Roofline roof = model::paper_calibration();
  {
    GridJobService predictor(small_grid(), roof);
    assign_walltimes(jobs, 4.0, spec.seed, [&](const Job& j) {
      return predictor.predicted_seconds(j);
    });
  }
  OutageSpec outage_spec;
  outage_spec.mtbf_s = 10.0;
  outage_spec.mean_outage_s = 1.5;
  outage_spec.seed = 43;

  for (const Policy policy :
       {Policy::kFcfs, Policy::kSpjf, Policy::kEasyBackfill}) {
    ServiceOptions options;
    options.policy = policy;
    options.outages = OutageTrace(outage_spec, small_grid().num_clusters());
    options.max_retries = 3;
    options.restart_credit = true;
    GridJobService service(small_grid(), roof, options);
    const ServiceReport report = service.run(jobs);
    expect_conserved(report, spec.jobs, small_grid());
    EXPECT_GT(report.killed_jobs, 0) << policy_name(policy);
    EXPECT_GT(report.requeued_jobs, 0) << policy_name(policy);
    // Someone died AND someone survived a kill: requeues that completed.
    bool requeued_completed = false;
    for (const JobOutcome& o : report.outcomes) {
      if (o.completed() && o.attempts > 1) requeued_completed = true;
      if (!o.completed()) {
        EXPECT_TRUE(o.fate == JobFate::kWalltimeKilled ||
                    o.fate == JobFate::kOutageFailed);
      }
      EXPECT_GE(o.attempts, 1);
      EXPECT_LE(o.attempts, options.max_retries + 1);
    }
    EXPECT_TRUE(requeued_completed) << policy_name(policy);
  }
}

TEST(FaultService, CoveredSpanFractionNeverProducesNanOrInf) {
  // The guarded form of the kill paths' former raw elapsed / span.
  EXPECT_DOUBLE_EQ(covered_span_fraction(2.5, 10.0), 0.25);
  EXPECT_DOUBLE_EQ(covered_span_fraction(20.0, 10.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(covered_span_fraction(0.0, 10.0), 0.0);
  // The degenerate spans that used to divide by zero: floating-point
  // absorption can collapse start + tiny attempt back onto start, so a
  // zero-length span with positive elapsed is FULLY covered — and with
  // nothing elapsed, nothing is.
  EXPECT_DOUBLE_EQ(covered_span_fraction(1e-300, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(covered_span_fraction(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(covered_span_fraction(-1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(covered_span_fraction(1.0, -5.0), 1.0);
  EXPECT_TRUE(std::isfinite(
      covered_span_fraction(std::numeric_limits<double>::min(), 0.0)));
}

TEST(FaultService, KillLandingAHairAfterStartKeepsCreditFinite) {
  // An outage landing almost exactly ON the start instant: the covered
  // span is denormal-scale relative to the attempt. No panel banks, the
  // credit fractions stay finite and non-negative, and the retry
  // completes from scratch.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 21, 64, 4)};
  const model::Roofline roof = model::paper_calibration();
  ServiceOptions options;
  options.outages = OutageTrace(std::vector<Outage>{{0, 1e-12, 0.5}});
  options.restart_credit = true;
  options.checkpoint_panels = 10;
  const ServiceReport report =
      GridJobService(one_site(), roof, options).run(jobs);
  expect_conserved(report, 1, one_site());
  ASSERT_EQ(report.outcomes[0].attempts, 2);
  EXPECT_TRUE(report.outcomes[0].completed());
  EXPECT_DOUBLE_EQ(report.outcomes[0].credited_s, 0.0);
  EXPECT_TRUE(std::isfinite(report.outcomes[0].wasted_node_s));
  EXPECT_GE(report.outcomes[0].wasted_node_s, 0.0);
  EXPECT_TRUE(std::isfinite(report.wasted_node_seconds));
}

TEST(FaultService, ZeroCostCheckpointStillBanksCredit) {
  // Crediting is gated on restart_credit + checkpoint_panels alone: an
  // explicitly zero checkpoint_cost_s adds no I/O time but must NOT
  // disable banking — the cost knob is a tax, not a feature switch.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 21, 64, 4)};
  const model::Roofline roof = model::paper_calibration();
  const ServiceReport clean = GridJobService(one_site(), roof).run(jobs);
  const double full_s = clean.outcomes[0].service_s;

  ServiceOptions credit;
  credit.outages = OutageTrace(
      std::vector<Outage>{{0, 0.7 * full_s, 0.7 * full_s + 1.0}});
  credit.restart_credit = true;
  credit.checkpoint_panels = 10;
  credit.checkpoint_cost_s = 0.0;  // explicit: free checkpoints
  const ServiceReport resumed =
      GridJobService(one_site(), roof, credit).run(jobs);
  expect_conserved(resumed, 1, one_site());
  ASSERT_EQ(resumed.outcomes[0].attempts, 2);
  EXPECT_NEAR(resumed.outcomes[0].credited_s, 0.7 * full_s, 1e-9 * full_s);
  EXPECT_NEAR(resumed.outcomes[0].service_s, 0.3 * full_s, 1e-9 * full_s);
}

}  // namespace
}  // namespace qrgrid::sched

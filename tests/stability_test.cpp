// Numerical-stability scope of the paper (§II-E): block eigensolvers fall
// back on unstable orthogonalization schemes to save messages; TSQR gives
// the same message count as those schemes *and* Householder-level
// stability. These tests pin the stability ordering measured on matrices
// of increasing condition number.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/tsqr.hpp"
#include "linalg/generators.hpp"
#include "linalg/gram_schmidt.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid::core {
namespace {

struct OrthoLosses {
  double householder;
  double tsqr;
  double cgs;
  double mgs;
  double cholqr;  // +inf when Cholesky breaks down
};

OrthoLosses measure(const Matrix& a, int procs) {
  OrthoLosses out{};
  const Index m = a.rows(), n = a.cols();
  const Index m_loc = m / procs;

  {
    Matrix f = Matrix::copy_of(a.view());
    std::vector<double> tau;
    geqrf(f.view(), tau);
    out.householder = orthogonality_error(orgqr(f.view(), tau, n).view());
  }
  {
    msg::Runtime rt(procs);
    std::vector<Matrix> q_blocks(static_cast<std::size_t>(procs));
    rt.run([&](msg::Comm& comm) {
      Matrix local = Matrix::copy_of(
          a.block(comm.rank() * m_loc, 0, m_loc, n));
      TsqrFactors f = tsqr_factor(comm, local.view(), TsqrOptions{});
      q_blocks[static_cast<std::size_t>(comm.rank())] =
          tsqr_form_explicit_q(comm, f);
    });
    Matrix q(m, n);
    for (int r = 0; r < procs; ++r) {
      copy(q_blocks[static_cast<std::size_t>(r)].view(),
           q.block(r * m_loc, 0, m_loc, n));
    }
    out.tsqr = orthogonality_error(q.view());
  }
  out.cgs = orthogonality_error(classical_gram_schmidt(a.view()).q.view());
  out.mgs = orthogonality_error(modified_gram_schmidt(a.view()).q.view());
  {
    CholeskyQrResult c = cholesky_qr(a.view());
    out.cholqr = c.ok ? orthogonality_error(c.q.view())
                      : std::numeric_limits<double>::infinity();
  }
  return out;
}

class StabilityTest : public ::testing::TestWithParam<double> {};

TEST_P(StabilityTest, TsqrTracksHouseholderAcrossConditioning) {
  const double cond = GetParam();
  Matrix a = random_with_condition(240, 12, cond, 8080);
  OrthoLosses loss = measure(a, 4);
  // TSQR stays unconditionally orthogonal, like Householder.
  EXPECT_LT(loss.tsqr, 1e-12);
  EXPECT_LT(loss.householder, 1e-12);
  EXPECT_LT(loss.tsqr, 100 * loss.householder + 1e-14);
}

INSTANTIATE_TEST_SUITE_P(ConditionNumbers, StabilityTest,
                         ::testing::Values(1e2, 1e6, 1e10, 1e13));

TEST(Stability, OrderingAtHighCondition) {
  // cond ~ 1e10: CGS (cond^2 eps) is useless, MGS (cond eps) degraded,
  // CholeskyQR broken or useless, TSQR pristine.
  Matrix a = random_with_condition(240, 12, 1e10, 9090);
  OrthoLosses loss = measure(a, 4);
  EXPECT_LT(loss.tsqr, 1e-12);
  EXPECT_GT(loss.mgs, 1e-8);
  EXPECT_GT(loss.cgs, 1e-4);
  EXPECT_GE(loss.cgs, loss.mgs * 0.1);  // CGS never substantially better
  EXPECT_TRUE(loss.cholqr > 1e-4 || std::isinf(loss.cholqr));
}

TEST(Stability, AllSchemesAgreeOnWellConditionedInput) {
  Matrix a = random_gaussian(200, 10, 9191);
  OrthoLosses loss = measure(a, 4);
  EXPECT_LT(loss.tsqr, 1e-12);
  EXPECT_LT(loss.cgs, 1e-11);
  EXPECT_LT(loss.mgs, 1e-11);
  EXPECT_LT(loss.cholqr, 1e-10);
}

TEST(Stability, NearParallelColumnsStressCase) {
  Matrix a = near_parallel_columns(160, 8, 1e-7, 9292);
  OrthoLosses loss = measure(a, 4);
  EXPECT_LT(loss.tsqr, 1e-12);
  EXPECT_GT(loss.cgs, 1e-6);
}

TEST(Stability, TsqrResidualIsBackwardStable) {
  // Residual (not just orthogonality) stays at machine precision for the
  // nastiest conditioning we can represent.
  const int procs = 4;
  const Index m_loc = 50, n = 10;
  Matrix a = random_with_condition(m_loc * procs, n, 1e14, 9393);
  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(procs);
  Matrix r;
  rt.run([&](msg::Comm& comm) {
    Matrix local = Matrix::copy_of(
        a.block(comm.rank() * m_loc, 0, m_loc, n));
    TsqrFactors f = tsqr_factor(comm, local.view(), TsqrOptions{});
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        tsqr_form_explicit_q(comm, f);
    if (comm.rank() == 0) r = std::move(f.r);
  });
  Matrix q(m_loc * procs, n);
  for (int i = 0; i < procs; ++i) {
    copy(q_blocks[static_cast<std::size_t>(i)].view(),
         q.block(i * m_loc, 0, m_loc, n));
  }
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 1e-13);
}

}  // namespace
}  // namespace qrgrid::core

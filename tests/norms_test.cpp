#include "linalg/norms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/generators.hpp"
#include "linalg/qr.hpp"

namespace qrgrid {
namespace {

TEST(Norms, FrobeniusBasic) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm(a.view()), 5.0);
}

TEST(Norms, FrobeniusHandlesExtremeScales) {
  Matrix a(1, 2);
  a(0, 0) = 1e300;
  a(0, 1) = 1e300;
  EXPECT_NEAR(frobenius_norm(a.view()) / (1e300 * std::sqrt(2.0)), 1.0, 1e-14);
}

TEST(Norms, MaxAbs) {
  Matrix a(2, 3);
  a(1, 2) = -9.0;
  a(0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(max_abs(a.view()), 9.0);
}

TEST(Norms, OrthogonalityErrorOfExactQ) {
  Matrix a = random_gaussian(60, 12, 500);
  std::vector<double> tau;
  geqrf(a.view(), tau);
  Matrix q = orgqr(a.view(), tau, 12);
  EXPECT_LT(orthogonality_error(q.view()), 1e-13);
}

TEST(Norms, OrthogonalityErrorDetectsSkew) {
  Matrix q = Matrix::identity(3);
  q(0, 1) = 0.1;  // breaks orthogonality
  EXPECT_GT(orthogonality_error(q.view()), 0.09);
}

TEST(Norms, ResidualOfExactFactorizationIsTiny) {
  Matrix a = random_gaussian(40, 8, 510);
  Matrix f = Matrix::copy_of(a.view());
  std::vector<double> tau;
  geqrf(f.view(), tau);
  Matrix q = orgqr(f.view(), tau, 8);
  Matrix r = extract_r(f.view());
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 1e-13);
}

TEST(Norms, NormalizeRSignFlipsRowsAndQColumns) {
  Matrix r(2, 2);
  r(0, 0) = -2.0;
  r(0, 1) = 3.0;
  r(1, 1) = 4.0;
  Matrix q(3, 2);
  q(0, 0) = 1.0;
  q(1, 1) = 1.0;
  MatrixView qv = q.view();
  normalize_r_sign(r.view(), &qv);
  EXPECT_EQ(r(0, 0), 2.0);
  EXPECT_EQ(r(0, 1), -3.0);
  EXPECT_EQ(r(1, 1), 4.0);
  EXPECT_EQ(q(0, 0), -1.0);
  EXPECT_EQ(q(1, 1), 1.0);  // column 1 untouched
}

TEST(Norms, NormalizedFactorizationStillReconstructs) {
  Matrix a = random_gaussian(30, 6, 520);
  Matrix f = Matrix::copy_of(a.view());
  std::vector<double> tau;
  geqrf(f.view(), tau);
  Matrix q = orgqr(f.view(), tau, 6);
  Matrix r = extract_r(f.view());
  MatrixView qv = q.view();
  normalize_r_sign(r.view(), &qv);
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 1e-13);
}

TEST(Norms, IsUpperTriangular) {
  Matrix a(3, 3);
  a(0, 1) = 1.0;
  EXPECT_TRUE(is_upper_triangular(a.view()));
  a(2, 0) = 0.5;
  EXPECT_FALSE(is_upper_triangular(a.view()));
}

TEST(Norms, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  b(1, 0) = -0.25;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 0.25);
}

}  // namespace
}  // namespace qrgrid

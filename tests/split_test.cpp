#include <gtest/gtest.h>

#include "msg/comm.hpp"

namespace qrgrid::msg {
namespace {

TEST(Split, EvenOddGroups) {
  Runtime rt(6);
  rt.run([](Comm& world) {
    Comm half = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(half.size(), 3);
    // Ranks ordered by key == parent rank: world {0,2,4} -> {0,1,2}.
    EXPECT_EQ(half.rank(), world.rank() / 2);
    // Communication stays inside the child comm.
    std::vector<double> data = {static_cast<double>(world.rank())};
    half.allreduce_sum(data);
    const double want = world.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_DOUBLE_EQ(data[0], want);
  });
}

TEST(Split, KeyControlsOrdering) {
  Runtime rt(4);
  rt.run([](Comm& world) {
    // Reverse the ordering via descending keys.
    Comm rev = world.split(0, world.size() - world.rank());
    EXPECT_EQ(rev.rank(), world.size() - 1 - world.rank());
  });
}

TEST(Split, SingletonGroups) {
  Runtime rt(3);
  rt.run([](Comm& world) {
    Comm solo = world.split(world.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    std::vector<double> data = {42.0};
    solo.allreduce_sum(data);
    EXPECT_EQ(data[0], 42.0);
  });
}

TEST(Split, NestedSplits) {
  Runtime rt(8);
  rt.run([](Comm& world) {
    Comm quad = world.split(world.rank() / 4, world.rank());
    ASSERT_EQ(quad.size(), 4);
    Comm pair = quad.split(quad.rank() / 2, quad.rank());
    ASSERT_EQ(pair.size(), 2);
    std::vector<double> data = {static_cast<double>(world.rank())};
    pair.allreduce_sum(data);
    // Pairs are {0,1},{2,3},{4,5},{6,7} in world ranks.
    const int base = (world.rank() / 2) * 2;
    EXPECT_DOUBLE_EQ(data[0], static_cast<double>(base + base + 1));
  });
}

TEST(Split, SiblingCommsDoNotCrossTalk) {
  Runtime rt(4);
  rt.run([](Comm& world) {
    Comm child = world.split(world.rank() % 2, world.rank());
    // Same (src, dst, tag) in both children: contexts must separate them.
    if (child.rank() == 0) {
      child.send(1, 9, std::vector<double>{static_cast<double>(world.rank())});
    } else {
      std::vector<double> got = child.recv(0, 9);
      // Receiver in group g must see the sender from the same group.
      EXPECT_EQ(static_cast<int>(got[0]) % 2, world.rank() % 2);
    }
  });
}

TEST(Split, GlobalRankTranslation) {
  Runtime rt(6);
  rt.run([](Comm& world) {
    Comm child = world.split(world.rank() < 2 ? 0 : 1, world.rank());
    EXPECT_EQ(child.global_rank(), world.rank());
    if (world.rank() >= 2) {
      EXPECT_EQ(child.to_global(0), 2);
    }
  });
}

TEST(Split, ClusterOfClustersPattern) {
  // The paper's usage: one communicator per geographical site, used to
  // confine the intensive ScaLAPACK traffic inside the site.
  const int sites = 2, per_site = 3;
  Runtime rt(sites * per_site);
  rt.run([&](Comm& world) {
    const int my_site = world.rank() / per_site;
    Comm site = world.split(my_site, world.rank());
    EXPECT_EQ(site.size(), per_site);
    std::vector<double> data = {1.0};
    site.allreduce_sum(data);
    EXPECT_DOUBLE_EQ(data[0], static_cast<double>(per_site));
    // Site leaders form the inter-site communicator.
    if (site.rank() == 0) {
      Comm leaders = world.split(100, my_site);
      // Only leaders reach here: both with color 100.
      EXPECT_EQ(leaders.size(), sites);
      std::vector<double> v = {static_cast<double>(my_site)};
      leaders.allreduce_sum(v);
      EXPECT_DOUBLE_EQ(v[0], 1.0);
    } else {
      (void)world.split(200 + world.rank(), 0);  // everyone must call split
    }
  });
}

}  // namespace
}  // namespace qrgrid::msg

#include "simgrid/topology.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace qrgrid::simgrid {
using qrgrid::Error;
namespace {

TEST(Topology, Grid5000DefaultShape) {
  GridTopology topo = GridTopology::grid5000();
  EXPECT_EQ(topo.num_clusters(), 4);
  EXPECT_EQ(topo.total_procs(), 4 * 32 * 2);
  EXPECT_EQ(topo.cluster(0).name, "Orsay");
  EXPECT_EQ(topo.cluster(3).name, "Sophia");
}

TEST(Topology, SubsetSites) {
  GridTopology one = GridTopology::grid5000(1);
  EXPECT_EQ(one.total_procs(), 64);
  GridTopology two = GridTopology::grid5000(2);
  EXPECT_EQ(two.total_procs(), 128);
}

TEST(Topology, RankLayoutIsClusterMajor) {
  GridTopology topo = GridTopology::grid5000(4, 32, 2);
  ProcLocation loc0 = topo.location_of(0);
  EXPECT_EQ(loc0.cluster, 0);
  EXPECT_EQ(loc0.node, 0);
  EXPECT_EQ(loc0.proc, 0);
  ProcLocation loc1 = topo.location_of(1);
  EXPECT_EQ(loc1.node, 0);
  EXPECT_EQ(loc1.proc, 1);
  ProcLocation loc64 = topo.location_of(64);
  EXPECT_EQ(loc64.cluster, 1);
  EXPECT_EQ(loc64.node, 0);
  ProcLocation loc255 = topo.location_of(255);
  EXPECT_EQ(loc255.cluster, 3);
  EXPECT_EQ(loc255.node, 31);
  EXPECT_EQ(loc255.proc, 1);
}

TEST(Topology, LinkClassesFollowHierarchy) {
  GridTopology topo = GridTopology::grid5000();
  EXPECT_EQ(topo.link_class(5, 5), msg::LinkClass::kSelf);
  EXPECT_EQ(topo.link_class(0, 1), msg::LinkClass::kIntraNode);
  EXPECT_EQ(topo.link_class(0, 2), msg::LinkClass::kIntraCluster);
  EXPECT_EQ(topo.link_class(0, 64), msg::LinkClass::kInterCluster);
}

TEST(Topology, Fig3aLatenciesAreHonored) {
  GridTopology topo = GridTopology::grid5000();
  // Orsay <-> Toulouse: 7.97 ms (paper Fig. 3a).
  EXPECT_NEAR(topo.inter_cluster_link(0, 1).latency_s, 7.97e-3, 1e-12);
  // Bordeaux <-> Sophia: 7.18 ms.
  EXPECT_NEAR(topo.inter_cluster_link(2, 3).latency_s, 7.18e-3, 1e-12);
  // Symmetry.
  EXPECT_EQ(topo.inter_cluster_link(1, 0).latency_s,
            topo.inter_cluster_link(0, 1).latency_s);
}

TEST(Topology, Fig3aThroughputsAreHonored) {
  GridTopology topo = GridTopology::grid5000();
  // Intra-cluster GigE: 890 Mb/s.
  EXPECT_NEAR(topo.intra_cluster_link().bandwidth_Bps, 890e6 / 8.0, 1.0);
  // Orsay <-> Sophia: 102 Mb/s.
  EXPECT_NEAR(topo.inter_cluster_link(0, 3).bandwidth_Bps, 102e6 / 8.0, 1.0);
}

TEST(Topology, LatencyOrdering) {
  // Two orders of magnitude between intra- and inter-cluster latency
  // (paper §II-D), and intra-node is the cheapest.
  GridTopology topo = GridTopology::grid5000();
  const double intra_node = topo.intra_node_link().latency_s;
  const double intra_cluster = topo.intra_cluster_link().latency_s;
  const double inter = topo.inter_cluster_link(0, 1).latency_s;
  EXPECT_LT(intra_node, intra_cluster);
  EXPECT_GT(inter / intra_cluster, 50.0);
}

TEST(Topology, TransferTimeCombinesLatencyAndBandwidth) {
  GridTopology topo = GridTopology::grid5000();
  const LinkParams link = topo.link(0, 64);  // Orsay -> Toulouse
  const double t = link.transfer_seconds(1'000'000);
  EXPECT_NEAR(t, 7.97e-3 + 1e6 / (78e6 / 8.0), 1e-9);
}

TEST(Topology, TheoreticalPeakUsesSlowestProcessor) {
  GridTopology topo = GridTopology::grid5000();
  // 256 procs x 4.0 Gflop/s (slowest site's Opterons) = 1024; the paper
  // quotes 2,048 Gflop/s for dual-*processor* accounting — our model
  // counts per-process peaks, so the ratio to procs must be the min peak.
  EXPECT_DOUBLE_EQ(topo.theoretical_peak_gflops(), 256 * 4.0);
}

TEST(Topology, InvalidRankThrows) {
  GridTopology topo = GridTopology::grid5000(1);
  EXPECT_THROW(topo.location_of(64), Error);
  EXPECT_THROW(topo.location_of(-1), Error);
}

}  // namespace
}  // namespace qrgrid::simgrid

// OutageTrace edge cases: the boundaries the fault suite's scenario
// tests never reach — degenerate intervals, outages already in force at
// t = 0, and back-to-back / overlapping failures on one cluster (the
// depth-nesting path of the service's down counter).
#include "sched/outage.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "sched/service.hpp"
#include "sched/workload.hpp"

namespace qrgrid::sched {
namespace {

simgrid::GridTopology small_grid() {
  // 2 sites x 2 nodes x 2 procs = 8 processes, 4 nodes.
  return simgrid::GridTopology::grid5000(2, 2, 2);
}

Job make_job(int id, double arrival_s, double m, int n, int procs) {
  Job job;
  job.id = id;
  job.arrival_s = arrival_s;
  job.m = m;
  job.n = n;
  job.procs = procs;
  return job;
}

TEST(OutageTrace, RejectsZeroLengthAndBackwardIntervals) {
  // A cluster cannot be down for a zero-length instant: the down/up pair
  // would collapse onto one boundary and the up-before-down precedence
  // would flip the cluster's state for every later event.
  EXPECT_THROW(OutageTrace({Outage{0, 5.0, 5.0}}), Error);
  EXPECT_THROW(OutageTrace({Outage{0, 5.0, 4.0}}), Error);
  EXPECT_THROW(OutageTrace({Outage{-1, 1.0, 2.0}}), Error);
  EXPECT_THROW(OutageTrace({Outage{0, -1.0, 2.0}}), Error);
  // A vanishingly short repair window is legal — down and up remain two
  // ordered boundaries.
  OutageTrace tiny({Outage{0, 5.0, 5.0 + 1e-12}});
  EXPECT_EQ(tiny.pop().down, true);
  EXPECT_EQ(tiny.pop().down, false);
}

TEST(OutageTrace, OutageStartingAtTimeZero) {
  // The failure boundary at t = 0 must be consumable before any arrival:
  // the service processes outage events before arrivals at one instant.
  OutageTrace trace({Outage{1, 0.0, 3.0}});
  EXPECT_TRUE(trace.enabled());
  EXPECT_EQ(trace.peek_s(), 0.0);
  const OutageEvent down = trace.pop();
  EXPECT_EQ(down.time_s, 0.0);
  EXPECT_EQ(down.cluster, 1);
  EXPECT_TRUE(down.down);
  const OutageEvent up = trace.pop();
  EXPECT_EQ(up.time_s, 3.0);
  EXPECT_FALSE(up.down);
  EXPECT_EQ(trace.peek_s(), std::numeric_limits<double>::infinity());
}

TEST(OutageTrace, BackToBackFailuresOrderUpBeforeDown) {
  // [2, 4) immediately followed by [4, 6): at t = 4 the recovery must
  // sort before the new failure, so a consumer tracking a depth count
  // ends t = 4 with the cluster DOWN (depth 1), never at depth 2 with a
  // phantom recovery pending.
  OutageTrace trace({Outage{0, 4.0, 6.0}, Outage{0, 2.0, 4.0}});
  EXPECT_EQ(trace.pop().down, true);   // t=2 down
  const OutageEvent at4a = trace.pop();
  const OutageEvent at4b = trace.pop();
  EXPECT_EQ(at4a.time_s, 4.0);
  EXPECT_EQ(at4b.time_s, 4.0);
  EXPECT_FALSE(at4a.down);  // recovery first...
  EXPECT_TRUE(at4b.down);   // ...then the new failure
  const OutageEvent last = trace.pop();
  EXPECT_EQ(last.time_s, 6.0);
  EXPECT_FALSE(last.down);
}

TEST(OutageTrace, ServiceNestsOverlappingOutagesOnOneCluster) {
  // Overlapping intervals on cluster 0 — an outer outage spanning an
  // inner one: the inner recovery must NOT resurrect the cluster; a job
  // needing it waits for the OUTER recovery.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 19, 64, 8)};
  const ServiceReport probe =
      GridJobService(small_grid(), model::paper_calibration()).run(jobs);
  const double span = probe.outcomes[0].service_s;
  ASSERT_GT(span, 0.0);
  const double outer_up = 10.0 * span;
  ServiceOptions options;
  options.outages = OutageTrace({Outage{0, 0.3 * span, outer_up},
                                 Outage{0, 0.4 * span, 0.5 * span}});
  options.max_retries = 3;
  GridJobService service(small_grid(), model::paper_calibration(), options);
  const ServiceReport report = service.run(jobs);
  ASSERT_EQ(report.outcomes.size(), 1u);
  // The whole-grid job was killed by the outer failure and could only
  // restart once cluster 0 FULLY recovered (depth back to zero).
  EXPECT_EQ(report.outcomes[0].fate, JobFate::kCompleted);
  EXPECT_EQ(report.outcomes[0].attempts, 2);
  EXPECT_GE(report.outcomes[0].start_s, outer_up);
}

TEST(OutageTrace, ServiceSurvivesOutageAtTimeZero) {
  // Cluster 0 is down from the very first instant; a whole-grid job
  // arriving at t = 0 must simply wait (no kill — it never started).
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 17, 64, 8)};
  ServiceOptions options;
  options.outages = OutageTrace({Outage{0, 0.0, 5.0}});
  GridJobService service(small_grid(), model::paper_calibration(), options);
  const ServiceReport report = service.run(jobs);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].fate, JobFate::kCompleted);
  EXPECT_EQ(report.outcomes[0].attempts, 1);
  EXPECT_EQ(report.killed_jobs, 0);
  EXPECT_GE(report.outcomes[0].start_s, 5.0);
}

TEST(OutageTrace, ServiceHandlesBackToBackKillsOnOneCluster) {
  // The same job is killed twice by back-to-back failures and still
  // completes on its third attempt — bounded-retry bookkeeping across
  // consecutive outages of ONE cluster.
  std::vector<Job> jobs = {make_job(0, 0.0, 1 << 19, 64, 8)};
  // Probe: how long does one attempt take?
  const ServiceReport probe =
      GridJobService(small_grid(), model::paper_calibration()).run(jobs);
  const double span = probe.outcomes[0].service_s;
  ASSERT_GT(span, 0.0);
  ServiceOptions options;
  options.max_retries = 3;
  options.outages = OutageTrace({
      Outage{0, 0.3 * span, 0.3 * span + 1e-9},  // near-zero repair
      Outage{0, 0.3 * span + 0.4 * span, 0.3 * span + 0.4 * span + 1e-9},
  });
  GridJobService service(small_grid(), model::paper_calibration(), options);
  const ServiceReport report = service.run(jobs);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].fate, JobFate::kCompleted);
  EXPECT_EQ(report.outcomes[0].attempts, 3);
  EXPECT_EQ(report.outage_kills, 2);
  EXPECT_EQ(report.requeued_jobs, 2);
  EXPECT_GT(report.wasted_node_seconds, 0.0);
}

TEST(OutageTrace, GeneratorEventsAlternateAndAdvancePerCluster) {
  OutageSpec spec;
  spec.mtbf_s = 10.0;
  spec.mean_outage_s = 2.0;
  spec.seed = 123;
  OutageTrace trace(spec, 3);
  ASSERT_TRUE(trace.enabled());
  std::vector<bool> down(3, false);
  std::vector<double> last(3, -1.0);
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double peek = trace.peek_s();
    const OutageEvent ev = trace.pop();
    EXPECT_EQ(ev.time_s, peek);
    EXPECT_GE(ev.time_s, prev);  // globally ordered
    prev = ev.time_s;
    ASSERT_GE(ev.cluster, 0);
    ASSERT_LT(ev.cluster, 3);
    const auto c = static_cast<std::size_t>(ev.cluster);
    // Per cluster: strictly increasing times, strictly alternating
    // down/up starting with a failure.
    EXPECT_GT(ev.time_s, last[c]);
    last[c] = ev.time_s;
    EXPECT_NE(ev.down, down[c]) << "event " << i;
    down[c] = ev.down;
  }
}

TEST(OutageTrace, CopyPreservesCursorAndGeneratorState) {
  // Value semantics: the service replays a COPY of the options' trace per
  // run, so consuming the copy must leave the original untouched.
  OutageSpec spec;
  spec.mtbf_s = 5.0;
  spec.mean_outage_s = 1.0;
  spec.seed = 7;
  OutageTrace original(spec, 2);
  OutageTrace copy = original;
  std::vector<OutageEvent> from_copy, from_original;
  for (int i = 0; i < 50; ++i) from_copy.push_back(copy.pop());
  for (int i = 0; i < 50; ++i) from_original.push_back(original.pop());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(from_copy[static_cast<std::size_t>(i)].time_s,
              from_original[static_cast<std::size_t>(i)].time_s);
    EXPECT_EQ(from_copy[static_cast<std::size_t>(i)].cluster,
              from_original[static_cast<std::size_t>(i)].cluster);
    EXPECT_EQ(from_copy[static_cast<std::size_t>(i)].down,
              from_original[static_cast<std::size_t>(i)].down);
  }
}

}  // namespace
}  // namespace qrgrid::sched

#include "msg/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/check.hpp"

namespace qrgrid::msg {
namespace {

TEST(Comm, SingleRankRuns) {
  Runtime rt(1);
  std::atomic<int> calls{0};
  rt.run([&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Comm, PointToPointDeliversPayload) {
  Runtime rt(2);
  rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{1.5, 2.5, 3.5});
    } else {
      std::vector<double> got = comm.recv(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[0], 1.5);
      EXPECT_EQ(got[2], 3.5);
    }
  });
}

TEST(Comm, TagsMatchIndependently) {
  // Send two messages with different tags; receive in the opposite order.
  Runtime rt(2);
  rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.0});
      comm.send(1, 2, std::vector<double>{2.0});
    } else {
      std::vector<double> second = comm.recv(0, 2);
      std::vector<double> first = comm.recv(0, 1);
      EXPECT_EQ(second[0], 2.0);
      EXPECT_EQ(first[0], 1.0);
    }
  });
}

TEST(Comm, FifoOrderWithinSameKey) {
  Runtime rt(2);
  rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(1, 5, std::vector<double>{static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(0, 5)[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Comm, SourcesMatchIndependently) {
  Runtime rt(3);
  rt.run([](Comm& comm) {
    if (comm.rank() == 2) {
      // Receive from rank 1 first even though rank 0 likely sent earlier.
      EXPECT_EQ(comm.recv(1, 0)[0], 1.0);
      EXPECT_EQ(comm.recv(0, 0)[0], 0.0);
    } else {
      comm.send(2, 0, std::vector<double>{static_cast<double>(comm.rank())});
    }
  });
}

TEST(Comm, EmptyPayloadIsValid) {
  Runtime rt(2);
  rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>{});
    } else {
      EXPECT_TRUE(comm.recv(0, 0).empty());
    }
  });
}

TEST(Comm, StatsCountMessagesAndBytes) {
  Runtime rt(2);
  RunStats stats = rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>(10, 1.0));
    } else {
      (void)comm.recv(0, 0);
    }
  });
  EXPECT_EQ(stats.messages, 1);
  EXPECT_EQ(stats.bytes, 80);
}

TEST(Comm, ComputeAccruesFlops) {
  Runtime rt(3);
  RunStats stats = rt.run([](Comm& comm) {
    comm.compute(100.0 * (comm.rank() + 1));
  });
  EXPECT_DOUBLE_EQ(stats.total_flops, 600.0);
  EXPECT_DOUBLE_EQ(stats.max_rank_flops, 300.0);
}

TEST(Comm, ExceptionInOneRankPropagatesAndUnblocksPeers) {
  // Failure injection: rank 1 dies; rank 0 is blocked in recv and must be
  // released with an Error instead of deadlocking.
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Comm& comm) {
                 if (comm.rank() == 1) {
                   throw Error("injected failure");
                 }
                 (void)comm.recv(1, 0);  // never satisfied
               }),
               Error);
}

TEST(Comm, RuntimeIsReusableAcrossRuns) {
  Runtime rt(2);
  for (int round = 0; round < 3; ++round) {
    RunStats stats = rt.run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send(1, 0, std::vector<double>{1.0});
      } else {
        (void)comm.recv(0, 0);
      }
    });
    EXPECT_EQ(stats.messages, 1);  // counters reset between runs
  }
}

TEST(Comm, InvalidDestinationThrows) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   comm.send(5, 0, std::vector<double>{1.0});
                 }
               }),
               Error);
}

TEST(Comm, ManyRanksAllToOne) {
  const int p = 16;
  Runtime rt(p);
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      double sum = 0.0;
      for (int r = 1; r < p; ++r) sum += comm.recv(r, 3)[0];
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(p * (p - 1) / 2));
    } else {
      comm.send(0, 3, std::vector<double>{static_cast<double>(comm.rank())});
    }
  });
}

}  // namespace
}  // namespace qrgrid::msg

// The pluggable scheduling-policy engine: policy-object parity with the
// enum dispatch, tie-break determinism of the JobQueue across ALL
// policies, priority-aware EASY's reservation claim and no-delay
// invariant (WAN-priced shadows included), weighted fair-share's
// deficit-round-robin, the max-min WanAllocator (progressive filling,
// per-pair horizons, conservation, monotonicity), and the policy suite
// end to end on the msg execution backend (the TSan lane's target).
#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <vector>

#include "core/des_algos.hpp"

#include "sched/service.hpp"
#include "sched/wan.hpp"
#include "sched/workload.hpp"

namespace qrgrid::sched {
namespace {

constexpr Policy kAllPolicies[] = {Policy::kFcfs, Policy::kSpjf,
                                   Policy::kEasyBackfill,
                                   Policy::kPriorityEasy,
                                   Policy::kFairShare};

simgrid::GridTopology small_grid() {
  // 2 sites x 2 nodes x 2 procs = 8 processes, 4 nodes.
  return simgrid::GridTopology::grid5000(2, 2, 2);
}

Job make_job(int id, double arrival_s, double m, int n, int procs) {
  Job job;
  job.id = id;
  job.arrival_s = arrival_s;
  job.m = m;
  job.n = n;
  job.procs = procs;
  return job;
}

TEST(PolicyNames, RoundTripAndRejection) {
  for (const Policy policy : kAllPolicies) {
    EXPECT_EQ(policy_of(policy_name(policy)), policy);
    // The object reports the same name the enum spelling uses.
    EXPECT_EQ(make_policy(policy)->name(), policy_name(policy));
  }
  EXPECT_THROW(policy_of("bogus"), Error);
  EXPECT_THROW(wan_fairness_of("bogus"), Error);
  EXPECT_EQ(wan_fairness_of("equal"), WanFairness::kEqualSplit);
  EXPECT_EQ(wan_fairness_of("maxmin"), WanFairness::kMaxMin);
  EXPECT_EQ(wan_fairness_name(WanFairness::kMaxMin), "maxmin");
}

TEST(PolicyTraits, BackfillAndShadowFlags) {
  EXPECT_FALSE(make_policy(Policy::kFcfs)->backfills());
  EXPECT_FALSE(make_policy(Policy::kSpjf)->backfills());
  EXPECT_TRUE(make_policy(Policy::kEasyBackfill)->backfills());
  EXPECT_TRUE(make_policy(Policy::kPriorityEasy)->backfills());
  EXPECT_FALSE(make_policy(Policy::kFairShare)->backfills());
  EXPECT_FALSE(make_policy(Policy::kEasyBackfill)->wan_priced_shadow());
  EXPECT_TRUE(make_policy(Policy::kPriorityEasy)->wan_priced_shadow());
  EXPECT_TRUE(make_policy(Policy::kFairShare)->dynamic_order());
}

// Satellite gate: jobs tied on EVERY ordering key (equal priority, equal
// arrival, equal shape hence equal estimate) must leave the queue in
// id order under every policy, whatever order they were pushed in —
// the id tail of each comparator is what makes scheduling byte-stable.
TEST(JobQueue, TieBreakDeterminismAcrossAllPolicies) {
  for (const Policy policy : kAllPolicies) {
    JobQueue queue(policy);
    for (const int id : {3, 0, 4, 1, 2}) {  // scrambled push order
      queue.push(make_job(id, 1.0, 1 << 17, 64, 4), 10.0);
    }
    for (int expect = 0; expect < 5; ++expect) {
      EXPECT_EQ(queue.pop_front().id, expect) << policy_name(policy);
    }
  }
}

/// Tie-heavy stream: batches of identical jobs arriving at identical
/// instants, so every ordering key except the id collides.
std::vector<Job> tied_batches() {
  std::vector<Job> jobs;
  int id = 0;
  for (int batch = 0; batch < 8; ++batch) {
    for (int k = 0; k < 4; ++k) {
      Job job = make_job(id++, 5.0 * batch, 1 << 18, 64, 4);
      job.user = k % 2;
      jobs.push_back(job);
    }
  }
  return jobs;
}

TEST(GridJobService, TiedWorkloadByteIdenticalAcrossTwoRuns) {
  for (const Policy policy : kAllPolicies) {
    ServiceOptions options;
    options.policy = policy;
    GridJobService first(small_grid(), model::paper_calibration(), options);
    GridJobService second(small_grid(), model::paper_calibration(), options);
    const ServiceReport a = first.run(tied_batches());
    const ServiceReport b = second.run(tied_batches());
    EXPECT_EQ(summary_row(a), summary_row(b)) << policy_name(policy);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s)
          << policy_name(policy);
      EXPECT_EQ(a.outcomes[i].finish_s, b.outcomes[i].finish_s)
          << policy_name(policy);
      EXPECT_EQ(a.outcomes[i].clusters, b.outcomes[i].clusters)
          << policy_name(policy);
    }
    // Policy state (fair-share deficits) must reset per run: the SAME
    // service replaying the workload reports byte-identically.
    EXPECT_EQ(summary_row(first.run(tied_batches())), summary_row(a))
        << policy_name(policy) << " (service reuse)";
  }
}

// The custom-policy seam: a factory-built policy object must reproduce
// the enum-dispatched service decision for decision.
TEST(GridJobService, PolicyFactoryMatchesEnumDispatch) {
  WorkloadSpec spec;
  spec.jobs = 30;
  spec.mean_interarrival_s = 0.1;
  spec.procs_choices = {2, 4, 8};
  spec.seed = 41;
  ServiceOptions by_enum;
  by_enum.policy = Policy::kEasyBackfill;
  ServiceOptions by_factory = by_enum;
  by_factory.policy_factory = [] {
    return std::make_unique<EasyBackfillPolicy>();
  };
  const ServiceReport a =
      GridJobService(small_grid(), model::paper_calibration(), by_enum)
          .run(generate_workload(spec));
  const ServiceReport b =
      GridJobService(small_grid(), model::paper_calibration(), by_factory)
          .run(generate_workload(spec));
  EXPECT_EQ(summary_row(a), summary_row(b));
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s);
    EXPECT_EQ(a.outcomes[i].clusters, b.outcomes[i].clusters);
    EXPECT_EQ(a.outcomes[i].backfilled, b.outcomes[i].backfilled);
  }
}

// Plain EASY is classic (arrival-ordered, priority-blind); prio-easy
// lets a later, higher-priority job claim the head — and with it the
// shadow reservation.
TEST(PriorityEasy, HigherPriorityClaimsTheReservation) {
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 1 << 21, 64, 8));  // fills the grid
  jobs.push_back(make_job(1, 1.0, 1 << 20, 64, 8));  // head under easy
  Job urgent = make_job(2, 2.0, 1 << 20, 64, 8);     // arrives last...
  urgent.priority = 3;                               // ...but outranks
  jobs.push_back(urgent);
  model::Roofline roof = model::paper_calibration();

  ServiceOptions easy;
  easy.policy = Policy::kEasyBackfill;
  const ServiceReport classic =
      GridJobService(small_grid(), roof, easy).run(jobs);
  ServiceOptions prio;
  prio.policy = Policy::kPriorityEasy;
  const ServiceReport ranked =
      GridJobService(small_grid(), roof, prio).run(jobs);

  // Classic EASY honors arrival order; prio-easy flips jobs 1 and 2.
  EXPECT_LT(classic.outcomes[1].start_s, classic.outcomes[2].start_s);
  EXPECT_LT(ranked.outcomes[2].start_s, ranked.outcomes[1].start_s);
  // The claim is visible in the reservation record: under prio-easy the
  // urgent job held the head's shadow reservation (finite), and started
  // no later than it.
  ASSERT_TRUE(std::isfinite(ranked.outcomes[2].reserved_start_s));
  EXPECT_LE(ranked.outcomes[2].start_s,
            ranked.outcomes[2].reserved_start_s + 1e-9);
}

// The code-review repro: the reservation holder is overtaken by a
// higher-priority job that starts DIRECTLY from the head path (not as a
// backfill) — the displaced holder's stale promise must be withdrawn,
// or the no-delay record would show a violation that never was one.
TEST(PriorityEasy, OvertakenHeadPromiseIsWithdrawn) {
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 1 << 21, 64, 4));  // half the grid, long
  jobs.push_back(make_job(1, 1.0, 1 << 21, 64, 8));  // blocks as head
  Job urgent = make_job(2, 2.0, 1 << 21, 64, 4);     // fits the free half
  urgent.priority = 3;
  jobs.push_back(urgent);
  ServiceOptions options;
  options.policy = Policy::kPriorityEasy;
  const ServiceReport report =
      GridJobService(small_grid(), model::paper_calibration(), options)
          .run(jobs);
  // The urgent job claimed the head and started at once; job 1's stale
  // promise (job 0's finish) was withdrawn and replaced by a fresh one
  // that also waits on the urgent job — strictly later than the stale
  // promise, and honored. Without the withdrawal, reserved_start_s
  // would still read job 0's finish and the invariant would break.
  EXPECT_LT(report.outcomes[2].start_s, report.outcomes[1].start_s);
  ASSERT_FALSE(std::isinf(report.outcomes[1].reserved_start_s));
  EXPECT_GT(report.outcomes[1].reserved_start_s,
            report.outcomes[0].finish_s);
  for (const JobOutcome& o : report.outcomes) {
    if (std::isinf(o.reserved_start_s)) continue;
    EXPECT_LE(o.start_s, o.reserved_start_s + 1e-9) << "job " << o.job.id;
  }
}

// The no-delay invariant on fault-free runs: no job that ever blocked as
// head starts after its promised shadow time — under prio-easy this is
// checked both dry and under shared-WAN contention (where the shadow
// prices drain estimates; plain EASY's promise would be best-effort).
TEST(PriorityEasy, NeverDelaysReservedJobPastShadow) {
  for (const bool contended : {false, true}) {
    for (const std::uint64_t seed : {5u, 19u, 37u}) {
      WorkloadSpec spec;
      spec.jobs = 36;
      spec.mean_interarrival_s = 0.1;
      spec.procs_choices = {2, 4, 8};
      spec.priority_levels = 3;
      spec.tree_choices = {core::TreeKind::kFlat};
      spec.seed = seed;
      ServiceOptions options;
      options.policy = Policy::kPriorityEasy;
      if (contended) {
        options.wan_contention = true;
        options.wan_fairness = WanFairness::kMaxMin;
        options.wan_link_Bps = 0.05e9 / 8.0;
      }
      GridJobService service(small_grid(), model::paper_calibration(),
                             options);
      const ServiceReport report = service.run(generate_workload(spec));
      for (const JobOutcome& o : report.outcomes) {
        if (std::isinf(o.reserved_start_s)) continue;
        EXPECT_LE(o.start_s, o.reserved_start_s + 1e-9)
            << "job " << o.job.id << " seed " << seed
            << (contended ? " (contended)" : " (dry)");
      }
    }
  }
}

// Mixed-priority contention: prio-easy must serve the top priority class
// strictly better than priority-blind classic EASY.
TEST(PriorityEasy, TopPriorityClassWaitsLessThanUnderPlainEasy) {
  WorkloadSpec spec;
  spec.jobs = 60;
  spec.mean_interarrival_s = 0.05;
  spec.procs_choices = {2, 4, 8};
  spec.priority_levels = 2;
  spec.seed = 67;
  const std::vector<Job> jobs = generate_workload(spec);
  model::Roofline roof = model::paper_calibration();

  auto top_mean_wait = [&](Policy policy) {
    ServiceOptions options;
    options.policy = policy;
    const ServiceReport report =
        GridJobService(small_grid(), roof, options).run(jobs);
    double wait = 0.0;
    int count = 0;
    for (const JobOutcome& o : report.outcomes) {
      if (o.job.priority == 1) {
        wait += o.wait_s();
        ++count;
      }
    }
    EXPECT_GT(count, 0);
    return wait / count;
  };
  EXPECT_LT(top_mean_wait(Policy::kPriorityEasy),
            top_mean_wait(Policy::kEasyBackfill));
}

// Deficit-round-robin unit level: charging one user pushes its jobs
// behind an uncharged user's after resort, weights scaling the deficit.
TEST(FairShare, DeficitOrderingFollowsChargedService) {
  FairSharePolicy policy;
  JobQueue queue(&policy);
  Job a = make_job(0, 0.0, 1 << 17, 64, 4);
  a.user = 0;
  Job b = make_job(1, 1.0, 1 << 17, 64, 4);
  b.user = 1;
  queue.push(a, 10.0);
  queue.push(b, 10.0);
  EXPECT_EQ(queue.front().id, 0);  // equal deficits: arrival order
  policy.on_attempt_start(a, 100.0);
  queue.resort();
  EXPECT_EQ(queue.front().id, 1);  // user 0 now served: user 1 first
  EXPECT_DOUBLE_EQ(policy.normalized_service(0), 100.0);
  // A weight-4 job charges a quarter of the deficit.
  Job heavy = make_job(2, 2.0, 1 << 17, 64, 4);
  heavy.user = 2;
  heavy.weight = 4.0;
  policy.on_attempt_start(heavy, 100.0);
  EXPECT_DOUBLE_EQ(policy.normalized_service(2), 25.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.normalized_service(0), 0.0);
}

/// Two users flooding the queue at once with identical demands, weights
/// 2:1 — the scenario where weighted fair-share must give user 0 about
/// twice the service rate of user 1.
std::vector<Job> two_user_flood(double w0, double w1) {
  std::vector<Job> jobs;
  for (int i = 0; i < 32; ++i) {
    Job job = make_job(i, 0.01 * i, 1 << 19, 64, 4);
    job.user = i % 2;
    job.weight = job.user == 0 ? w0 : w1;
    jobs.push_back(job);
  }
  return jobs;
}

TEST(FairShare, WeightedUserGetsProportionallyEarlierService) {
  ServiceOptions options;
  options.policy = Policy::kFairShare;
  GridJobService service(small_grid(), model::paper_calibration(), options);
  const ServiceReport report = service.run(two_user_flood(2.0, 1.0));
  ASSERT_EQ(report.completed_jobs, 32);

  double wait[2] = {0.0, 0.0};
  double last_finish[2] = {0.0, 0.0};
  int count[2] = {0, 0};
  for (const JobOutcome& o : report.outcomes) {
    const int u = o.job.user;
    wait[u] += o.wait_s();
    last_finish[u] = std::max(last_finish[u], o.finish_s);
    ++count[u];
  }
  ASSERT_EQ(count[0], 16);
  ASSERT_EQ(count[1], 16);
  // The weight-2 user is served ahead: strictly lower mean wait and an
  // earlier personal makespan, with the ratio bounded by the weights
  // (ideal deficit-round-robin on equal demand lands light/heavy between
  // 1 and w0/w1).
  EXPECT_LT(wait[0] / count[0], wait[1] / count[1]);
  EXPECT_GT(last_finish[1], last_finish[0]);
  EXPECT_LE(last_finish[1] / last_finish[0], 2.0 + 0.25);

  // Equal weights: the flood degenerates to near-FCFS interleaving, so
  // neither user's personal makespan may run away.
  GridJobService even(small_grid(), model::paper_calibration(), options);
  const ServiceReport balanced = even.run(two_user_flood(1.0, 1.0));
  double even_finish[2] = {0.0, 0.0};
  for (const JobOutcome& o : balanced.outcomes) {
    even_finish[o.job.user] =
        std::max(even_finish[o.job.user], o.finish_s);
  }
  EXPECT_LE(std::abs(even_finish[0] - even_finish[1]),
            0.2 * balanced.makespan_s);
}

// --- The max-min WanAllocator ------------------------------------------

GridWanModel::Pool pool_of(GridWanModel::Pool::Link link, int cluster,
                           int peer, double bytes, double activation_s) {
  GridWanModel::Pool pool;
  pool.link = link;
  pool.cluster = cluster;
  pool.peer = peer;
  pool.bytes = bytes;
  pool.activation_s = activation_s;
  return pool;
}

using Link = GridWanModel::Pool::Link;

TEST(MaxMinAllocator, ProgressiveFillingReassignsBottleneckedShare) {
  // Demand A crosses a 25 B/s pair horizon; demand B shares only the
  // 100 B/s backbone with it. Equal split would hand both 50 on the
  // trunk; max-min freezes A at 25 and fills B to 75.
  std::vector<WanDemand> demands(2);
  demands[0].bytes = 400.0;
  demands[0].links[0] = 0;  // uplink
  demands[0].links[1] = 1;  // pair, 25 B/s
  demands[0].links[2] = 2;  // backbone
  demands[0].nlinks = 3;
  demands[1].bytes = 400.0;
  demands[1].links[0] = 3;  // its own uplink
  demands[1].links[1] = 2;  // shared backbone
  demands[1].nlinks = 2;
  const std::vector<double> capacity = {100.0, 25.0, 100.0, 100.0};
  std::vector<double> rates(2, 0.0);
  MaxMinAllocator().assign_rates(demands, capacity, rates);
  EXPECT_DOUBLE_EQ(rates[0], 25.0);
  EXPECT_DOUBLE_EQ(rates[1], 75.0);
  // Equal split on the same geometry: both trunk users get 50, A is
  // additionally capped at its pair link.
  EqualSplitAllocator().assign_rates(demands, capacity, rates);
  EXPECT_DOUBLE_EQ(rates[0], 25.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(Allocators, SplitFlowCountsAsOneUserPerLink) {
  // Flow 0 is split into two pools on link 0 (fracs 0.6/0.4); flow 1 is
  // one pool. Per-FLOW fairness: each flow gets C/2 = 50 in aggregate —
  // splitting must never multiply a flow's share.
  std::vector<WanDemand> demands(3);
  demands[0].bytes = 600.0;
  demands[0].flow = 0;
  demands[0].links[0] = 0;
  demands[0].frac[0] = 0.6;
  demands[0].nlinks = 1;
  demands[1].bytes = 400.0;
  demands[1].flow = 0;
  demands[1].links[0] = 0;
  demands[1].frac[0] = 0.4;
  demands[1].nlinks = 1;
  demands[2].bytes = 500.0;
  demands[2].flow = 1;
  demands[2].links[0] = 0;
  demands[2].nlinks = 1;  // frac defaults to 1.0
  const std::vector<double> capacity = {100.0};
  std::vector<double> rates(3, 0.0);
  EqualSplitAllocator().assign_rates(demands, capacity, rates);
  EXPECT_DOUBLE_EQ(rates[0] + rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 50.0);
  MaxMinAllocator().assign_rates(demands, capacity, rates);
  EXPECT_DOUBLE_EQ(rates[0] + rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 50.0);
}

TEST(MaxMinModel, PairHorizonBindsAndBottleneckFreesTheTrunk) {
  // 2 clusters, 100 B/s links, 100 B/s trunk; pair (0 -> 1) capped at
  // 25 B/s. Flow A ships 400 B over that pair; flow B ships 400 B from
  // cluster 1 (unconstrained pair). Max-min: A pinned at 25 the whole
  // way (drains at t=16); B fills the trunk remainder, 75 B/s (drains at
  // t=16/3). Backbone pools are dropped in this mode — the trunk
  // constraint lives on the uplink demands.
  std::vector<double> pair(4, 0.0);
  pair[0 * 2 + 1] = 25.0;
  GridWanModel wan(2, 100.0, 100.0, WanFairness::kMaxMin, pair);
  EXPECT_TRUE(wan.pair_aware());
  const int a =
      wan.admit(0.0, {pool_of(Link::kUplink, 0, 1, 400.0, 0.0),
                      pool_of(Link::kBackbone, -1, -1, 400.0, 0.0)});
  const int b =
      wan.admit(0.0, {pool_of(Link::kUplink, 1, 0, 400.0, 0.0),
                      pool_of(Link::kBackbone, -1, -1, 400.0, 0.0)});
  const double b_done = 400.0 / 75.0;
  EXPECT_DOUBLE_EQ(wan.next_event_s(0.0), b_done);
  wan.advance(0.0, b_done);
  ASSERT_TRUE(wan.drained(b));
  EXPECT_FALSE(wan.drained(a));
  // A alone stays pair-limited: 400 B at 25 B/s from t=0 -> t=16.
  EXPECT_NEAR(wan.next_event_s(b_done), 16.0, 1e-9);
  wan.advance(b_done, wan.next_event_s(b_done));
  ASSERT_TRUE(wan.drained(a));
  EXPECT_NEAR(wan.drained_at_s(a), 16.0, 1e-9);
  // Byte conservation through retire, backbone pools charging nothing.
  std::vector<long long> egress(2, 0), ingress(2, 0);
  wan.retire(a, egress, ingress);
  wan.retire(b, egress, ingress);
  EXPECT_EQ(egress[0], 400);
  EXPECT_EQ(egress[1], 400);
  EXPECT_EQ(std::accumulate(ingress.begin(), ingress.end(), 0LL), 0);
}

TEST(MaxMinModel, DrainEstimatePricesPendingActivations) {
  GridWanModel wan(2, 100.0, 100.0, WanFairness::kMaxMin);
  const int flow =
      wan.admit(0.0, {pool_of(Link::kUplink, 0, -1, 500.0, 4.0)});
  // Pessimistic planning: the pool is counted a user now even though it
  // activates at t=4; alone that is full capacity from activation.
  EXPECT_DOUBLE_EQ(wan.drain_estimate_s(flow, 0.0), 4.0 + 5.0);
  // A second flow halves the planned share (trunk: 100/2 = 50 B/s).
  wan.admit(0.0, {pool_of(Link::kUplink, 1, -1, 500.0, 0.0)});
  EXPECT_DOUBLE_EQ(wan.drain_estimate_s(flow, 0.0), 4.0 + 10.0);
}

/// Wide flat-tree workload on 4 sites (the WAN suite's geometry) under a
/// thin shared WAN — where the two allocators genuinely diverge.
std::vector<Job> wide_wan_jobs() {
  WorkloadSpec spec;
  spec.jobs = 24;
  spec.mean_interarrival_s = 0.4;
  spec.m_choices = {1 << 17, 1 << 18};
  spec.n_choices = {256, 512};
  spec.procs_choices = {24, 48, 68, 132};
  spec.tree_choices = {core::TreeKind::kFlat};
  spec.seed = 53;
  return generate_workload(spec);
}

TEST(MaxMinService, MonotoneConservedAndDeterministic) {
  simgrid::GridTopology topo = simgrid::GridTopology::grid5000(4, 32, 2);
  ServiceOptions options;
  options.policy = Policy::kEasyBackfill;
  options.wan_contention = true;
  options.wan_fairness = WanFairness::kMaxMin;
  options.wan_link_Bps = 0.02e9 / 8.0;
  GridJobService service(topo, model::paper_calibration(), options);
  const ServiceReport report = service.run(wide_wan_jobs());
  ASSERT_EQ(report.completed_jobs, 24);
  // The acceptance gates: contended >= isolated per job, bytes conserved.
  for (const JobOutcome& o : report.outcomes) {
    EXPECT_GE(o.wan_slowdown, 1.0 - 1e-9) << "job " << o.job.id;
  }
  EXPECT_GT(report.max_wan_slowdown, 1.0);  // contention really happened
  const long long egress =
      std::accumulate(report.wan_egress_bytes.begin(),
                      report.wan_egress_bytes.end(), 0LL);
  const long long ingress =
      std::accumulate(report.wan_ingress_bytes.begin(),
                      report.wan_ingress_bytes.end(), 0LL);
  EXPECT_GT(egress, 0);
  EXPECT_EQ(egress, ingress);
  // Byte-identical across a fresh service and a service reuse.
  GridJobService again(topo, model::paper_calibration(), options);
  EXPECT_EQ(summary_row(again.run(wide_wan_jobs())), summary_row(report));
  EXPECT_EQ(summary_row(service.run(wide_wan_jobs())),
            summary_row(report));
}

TEST(MaxMinService, ZeroContentionReproducesEqualSplitExactly) {
  // Serial workload: with nothing overlapping, allocator choice cannot
  // matter — isolated flows drain inside their replay under either.
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(make_job(i, 1e5 * i, 1 << 18, 128, 8));
  }
  ServiceOptions equal;
  equal.policy = Policy::kEasyBackfill;
  equal.wan_contention = true;
  ServiceOptions maxmin = equal;
  maxmin.wan_fairness = WanFairness::kMaxMin;
  const ServiceReport a =
      GridJobService(small_grid(), model::paper_calibration(), equal)
          .run(jobs);
  const ServiceReport b =
      GridJobService(small_grid(), model::paper_calibration(), maxmin)
          .run(jobs);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s);
    EXPECT_EQ(a.outcomes[i].finish_s, b.outcomes[i].finish_s);
    EXPECT_EQ(a.outcomes[i].wan_slowdown, 1.0);
  }
}

// The policy suite on the REAL execution backend (small shapes): every
// completed job factored on msg::Runtime with verified numerics. This is
// the test the TSan CI lane runs against the instrumented runtime.
TEST(MsgBackend, NewPoliciesExecuteRealFactorizations) {
  WorkloadSpec spec;
  spec.jobs = 10;
  spec.mean_interarrival_s = 0.004;
  spec.m_choices = {512, 1024};
  spec.n_choices = {16, 32};
  spec.procs_choices = {2, 4, 8};
  spec.priority_levels = 2;
  spec.users = 2;
  spec.user_weights = {2.0, 1.0};
  spec.seed = 73;
  const std::vector<Job> jobs = generate_workload(spec);
  for (const Policy policy : {Policy::kPriorityEasy, Policy::kFairShare}) {
    ServiceOptions options;
    options.policy = policy;
    options.backend = BackendKind::kMsgRuntime;
    options.domains_per_cluster = core::kOneDomainPerProcess;
    GridJobService service(small_grid(), model::paper_calibration(),
                           options);
    const ServiceReport report = service.run(jobs);
    EXPECT_EQ(report.completed_jobs, 10) << policy_name(policy);
    EXPECT_EQ(report.executed_attempts, 10) << policy_name(policy);
    EXPECT_GT(report.max_residual, 0.0) << policy_name(policy);
    EXPECT_LT(report.max_residual, 1e-10) << policy_name(policy);
    EXPECT_LT(report.max_orthogonality, 1e-10) << policy_name(policy);
  }
}

}  // namespace
}  // namespace qrgrid::sched

#include "core/pdgeqrf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pdgeqr2.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid::core {
namespace {

Matrix reference_r(const Matrix& global) {
  Matrix f = Matrix::copy_of(global.view());
  std::vector<double> tau;
  geqrf(f.view(), tau);
  Matrix r = extract_r(f.view());
  normalize_r_sign(r.view());
  return r;
}

struct Case {
  int procs;
  Index n;
  Index m_loc;
  Index nb;
};

class PdgeqrfTest : public ::testing::TestWithParam<Case> {};

TEST_P(PdgeqrfTest, RMatchesSequentialReference) {
  const Case c = GetParam();
  Matrix global = random_gaussian(c.m_loc * c.procs, c.n, 6060);
  Matrix want = reference_r(global);

  msg::Runtime rt(c.procs);
  Matrix got;
  rt.run([&](msg::Comm& comm) {
    Matrix local(c.m_loc, c.n);
    fill_gaussian_rows(local.view(), comm.rank() * c.m_loc, 6060);
    PdgeqrfFactors f =
        pdgeqrf_factor(comm, local.view(), comm.rank() * c.m_loc, c.nb);
    if (comm.rank() == 0) {
      normalize_r_sign(f.r.view());
      got = std::move(f.r);
    }
  });
  ASSERT_EQ(got.rows(), c.n);
  EXPECT_LT(max_abs_diff(got.view(), want.view()),
            1e-10 * frobenius_norm(want.view()))
      << "procs=" << c.procs << " n=" << c.n << " nb=" << c.nb;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, PdgeqrfTest,
    ::testing::Values(Case{1, 12, 30, 4}, Case{2, 16, 20, 4},
                      Case{4, 12, 16, 3}, Case{4, 16, 20, 16},
                      Case{3, 10, 14, 4}, Case{4, 24, 30, 8},
                      Case{8, 8, 8, 2}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.procs) + "_n" +
             std::to_string(info.param.n) + "_nb" +
             std::to_string(info.param.nb);
    });

TEST(Pdgeqrf, SinglePanelDegeneratesToPdgeqr2) {
  // With nb >= N the blocked algorithm must produce the exact same
  // factored matrix and taus as the unblocked kernel.
  const int procs = 4;
  const Index m_loc = 12, n = 8;
  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix a1(m_loc, n), a2(m_loc, n);
    fill_gaussian_rows(a1.view(), comm.rank() * m_loc, 6161);
    fill_gaussian_rows(a2.view(), comm.rank() * m_loc, 6161);
    Pdgeqr2Factors f1 = pdgeqr2_factor(comm, a1.view(), comm.rank() * m_loc);
    PdgeqrfFactors f2 =
        pdgeqrf_factor(comm, a2.view(), comm.rank() * m_loc, n);
    EXPECT_LT(max_abs_diff(a1.view(), a2.view()), 1e-13);
    for (std::size_t i = 0; i < f1.tau.size(); ++i) {
      EXPECT_DOUBLE_EQ(f1.tau[i], f2.tau[i]);
    }
  });
}

TEST(Pdgeqrf, BlockSizeDoesNotChangeR) {
  const int procs = 2;
  const Index m_loc = 24, n = 16;
  msg::Runtime rt(procs);
  Matrix r_small, r_large;
  rt.run([&](msg::Comm& comm) {
    for (Index nb : {2, 16}) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 6262);
      PdgeqrfFactors f =
          pdgeqrf_factor(comm, local.view(), comm.rank() * m_loc, nb);
      if (comm.rank() == 0) {
        normalize_r_sign(f.r.view());
        (nb == 2 ? r_small : r_large) = std::move(f.r);
      }
    }
  });
  EXPECT_LT(max_abs_diff(r_small.view(), r_large.view()),
            1e-10 * frobenius_norm(r_small.view()));
}

TEST(Pdgeqrf, ExplicitQIsOrthogonalAndReconstructs) {
  const int procs = 4;
  const Index m_loc = 15, n = 10, nb = 4;
  Matrix global = random_gaussian(m_loc * procs, n, 6363);
  msg::Runtime rt(procs);
  std::vector<Matrix> q_blocks(procs);
  Matrix r_final;
  rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 6363);
    PdgeqrfFactors f =
        pdgeqrf_factor(comm, local.view(), comm.rank() * m_loc, nb);
    q_blocks[static_cast<std::size_t>(comm.rank())] =
        pdgeqrf_form_explicit_q(comm, f);
    if (comm.rank() == 0) r_final = std::move(f.r);
  });
  Matrix q(m_loc * procs, n);
  for (int r = 0; r < procs; ++r) {
    copy(q_blocks[static_cast<std::size_t>(r)].view(),
         q.block(r * m_loc, 0, m_loc, n));
  }
  EXPECT_LT(orthogonality_error(q.view()), 1e-12);
  EXPECT_LT(
      factorization_residual(global.view(), q.view(), r_final.view()),
      1e-12);
}

TEST(Pdgeqrf, MessageCountMatchesClosedForm) {
  // Blocking trades flops for cache locality, NOT messages: PDGEQRF still
  // pays 2 allreduces per column inside panels (minus the last column of
  // each panel) plus 2 per panel for the block reflector (S and W; the
  // last panel has no trailing W). Allreduce count:
  //   sum_panels (2*jb - 1) + 2*(#panels) - 1 = 2N + N/NB - 1.
  const int procs = 4;  // power of two: butterfly sends P*log2(P) messages
  const Index m_loc = 24, n = 16, nb = 4;
  msg::Runtime rt(procs);
  msg::RunStats s = rt.run([&](msg::Comm& comm) {
    Matrix local(m_loc, n);
    fill_gaussian_rows(local.view(), comm.rank() * m_loc, 6464);
    (void)pdgeqrf_factor(comm, local.view(), comm.rank() * m_loc, nb);
  });
  const long long allreduces = 2 * n + n / nb - 1;
  const long long per_allreduce = procs * 2;  // P * log2(4)
  const long long gather = procs - 1;
  EXPECT_EQ(s.messages, allreduces * per_allreduce + gather);
}

TEST(Pdgeqrf, TallAndSkinnyGainsNothingFromBlocking) {
  // The paper's core observation: for a single skinny panel (N <= NB)
  // blocking cannot help — the panel factorization's 2N allreduces remain.
  const int procs = 4;
  const Index m_loc = 32, n = 8;
  msg::Runtime rt(procs);
  long long msgs_nb64 = 0, msgs_qr2 = 0;
  {
    msg::RunStats s = rt.run([&](msg::Comm& comm) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 6565);
      (void)pdgeqrf_factor(comm, local.view(), comm.rank() * m_loc, 64);
    });
    msgs_nb64 = s.messages;
  }
  {
    msg::RunStats s = rt.run([&](msg::Comm& comm) {
      Matrix local(m_loc, n);
      fill_gaussian_rows(local.view(), comm.rank() * m_loc, 6565);
      (void)pdgeqr2_factor(comm, local.view(), comm.rank() * m_loc);
    });
    msgs_qr2 = s.messages;
  }
  // One extra S-allreduce from the (single) panel is all that differs.
  EXPECT_NEAR(static_cast<double>(msgs_nb64),
              static_cast<double>(msgs_qr2), procs * std::log2(procs) + 1);
}

}  // namespace
}  // namespace qrgrid::core

#include "core/ooc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace qrgrid::core {
namespace {

Matrix reference_r(const Matrix& global) {
  Matrix f = Matrix::copy_of(global.view());
  std::vector<double> tau;
  geqrf(f.view(), tau);
  Matrix r = extract_r(f.view());
  normalize_r_sign(r.view());
  return r;
}

class OocTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(OocTest, StreamedRMatchesInMemoryReference) {
  const auto [m, n, panel_rows] = GetParam();
  Matrix global = random_gaussian(m, n, 9000 + m);
  Matrix want = reference_r(global);

  OocTsqr ooc(n);
  for (Index r0 = 0; r0 < m; r0 += panel_rows) {
    const Index rows = std::min<Index>(panel_rows, m - r0);
    ooc.absorb(global.block(r0, 0, rows, n));
  }
  EXPECT_EQ(ooc.rows_seen(), m);
  Matrix got = ooc.r();
  EXPECT_TRUE(is_upper_triangular(got.view()));
  normalize_r_sign(got.view());
  EXPECT_LT(max_abs_diff(got.view(), want.view()),
            1e-11 * frobenius_norm(want.view()));
}

INSTANTIATE_TEST_SUITE_P(
    PanelShapes, OocTest,
    ::testing::Values(std::tuple{100, 8, 25}, std::tuple{100, 8, 7},
                      std::tuple{64, 16, 16}, std::tuple{200, 4, 1},
                      std::tuple{90, 10, 90}, std::tuple{128, 12, 50}),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_panel" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Ooc, OrderIndependenceOfR) {
  // Associativity/commutativity of the combine (§II-C): absorbing the
  // panels in a different order yields the same sign-normalized R.
  const Index m = 120, n = 6, panel = 30;
  Matrix global = random_gaussian(m, n, 4321);
  OocTsqr fwd(n), rev(n);
  std::vector<Index> starts;
  for (Index r0 = 0; r0 < m; r0 += panel) starts.push_back(r0);
  for (Index r0 : starts) fwd.absorb(global.block(r0, 0, panel, n));
  for (auto it = starts.rbegin(); it != starts.rend(); ++it) {
    rev.absorb(global.block(*it, 0, panel, n));
  }
  Matrix a = fwd.r();
  Matrix b = rev.r();
  normalize_r_sign(a.view());
  normalize_r_sign(b.view());
  EXPECT_LT(max_abs_diff(a.view(), b.view()),
            1e-11 * frobenius_norm(a.view()));
}

TEST(Ooc, ConstantMemoryAccountingGrowsLinearly) {
  // Flop count ~ 2 * rows * n^2 regardless of panel shape (the streaming
  // variant trades nothing asymptotically).
  const Index n = 8;
  OocTsqr ooc(n);
  Rng rng(5);
  Index total_rows = 0;
  for (int p = 0; p < 20; ++p) {
    const Index rows = 4 + static_cast<Index>(rng.uniform_index(60));
    Matrix panel = random_gaussian(rows, n, 100 + p);
    ooc.absorb(panel.view());
    total_rows += rows;
  }
  EXPECT_EQ(ooc.panels_seen(), 20);
  const double expected = 2.0 * static_cast<double>(total_rows) * n * n;
  EXPECT_NEAR(ooc.flops() / expected, 1.0, 0.15);
}

TEST(Ooc, ShortFirstPanelStillWorks) {
  const Index m = 40, n = 10;
  Matrix global = random_gaussian(m, n, 555);
  Matrix want = reference_r(global);
  OocTsqr ooc(n);
  ooc.absorb(global.block(0, 0, 3, n));  // fewer rows than columns
  ooc.absorb(global.block(3, 0, m - 3, n));
  Matrix got = ooc.r();
  normalize_r_sign(got.view());
  EXPECT_LT(max_abs_diff(got.view(), want.view()),
            1e-11 * frobenius_norm(want.view()));
}

TEST(Ooc, RejectsWrongColumnCount) {
  OocTsqr ooc(8);
  Matrix panel(10, 4);
  EXPECT_THROW(ooc.absorb(panel.view()), Error);
}

TEST(Ooc, RBeforeEnoughRowsThrows) {
  OocTsqr ooc(8);
  Matrix panel = random_gaussian(3, 8, 1);
  ooc.absorb(panel.view());
  EXPECT_THROW((void)ooc.r(), Error);
}

}  // namespace
}  // namespace qrgrid::core

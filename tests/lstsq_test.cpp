#include "core/lstsq.hpp"

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/generators.hpp"
#include "linalg/norms.hpp"

namespace qrgrid::core {
namespace {

/// Builds b = A x_true + noise on each rank's block.
Matrix make_rhs(const Matrix& a_block, const Matrix& x_true,
                double noise_scale, Index row0, std::uint64_t seed) {
  Matrix b(a_block.rows(), x_true.cols());
  gemm(Trans::No, Trans::No, 1.0, a_block.view(), x_true.view(), 0.0,
       b.view());
  if (noise_scale > 0.0) {
    Matrix noise(a_block.rows(), x_true.cols());
    fill_gaussian_rows(noise.view(), row0, seed);
    for (Index j = 0; j < b.cols(); ++j) {
      for (Index i = 0; i < b.rows(); ++i) {
        b(i, j) += noise_scale * noise(i, j);
      }
    }
  }
  return b;
}

class LstsqTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(LstsqTest, ConsistentSystemRecoversExactSolution) {
  const auto [procs, n, nrhs] = GetParam();
  const Index m_loc = 3 * n;
  Matrix global = random_gaussian(m_loc * procs, n, 11000);
  Matrix x_true = random_gaussian(n, nrhs, 11001);

  msg::Runtime rt(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix a = Matrix::copy_of(global.block(comm.rank() * m_loc, 0, m_loc, n));
    Matrix b = make_rhs(a, x_true, 0.0, comm.rank() * m_loc, 0);
    LeastSquaresResult res =
        tsqr_least_squares(comm, a.view(), b.view());
    ASSERT_TRUE(res.ok);
    EXPECT_LT(max_abs_diff(res.x.view(), x_true.view()), 1e-10);
    for (double r : res.residual_norms) EXPECT_LT(r, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, LstsqTest,
                         ::testing::Values(std::tuple{1, 6, 1},
                                           std::tuple{2, 8, 2},
                                           std::tuple{4, 10, 3},
                                           std::tuple{5, 7, 1}),
                         [](const auto& info) {
                           return "p" + std::to_string(std::get<0>(info.param)) +
                                  "_n" + std::to_string(std::get<1>(info.param)) +
                                  "_rhs" + std::to_string(std::get<2>(info.param));
                         });

TEST(Lstsq, SolutionIsReplicatedOnAllRanks) {
  const int procs = 3;
  const Index m_loc = 20, n = 5;
  Matrix global = random_gaussian(m_loc * procs, n, 12000);
  Matrix x_true = random_gaussian(n, 1, 12001);
  msg::Runtime rt(procs);
  std::vector<Matrix> xs(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix a = Matrix::copy_of(global.block(comm.rank() * m_loc, 0, m_loc, n));
    Matrix b = make_rhs(a, x_true, 0.0, comm.rank() * m_loc, 0);
    xs[static_cast<std::size_t>(comm.rank())] =
        tsqr_least_squares(comm, a.view(), b.view()).x;
  });
  for (int r = 1; r < procs; ++r) {
    EXPECT_EQ(max_abs_diff(xs[0].view(),
                           xs[static_cast<std::size_t>(r)].view()),
              0.0);
  }
}

TEST(Lstsq, ResidualMatchesDirectEvaluation) {
  const int procs = 4;
  const Index m_loc = 25, n = 6;
  Matrix global = random_gaussian(m_loc * procs, n, 13000);
  Matrix x_true = random_gaussian(n, 1, 13001);
  msg::Runtime rt(procs);
  Matrix x;
  double reported = 0.0;
  std::vector<Matrix> bs(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix a = Matrix::copy_of(global.block(comm.rank() * m_loc, 0, m_loc, n));
    Matrix b = make_rhs(a, x_true, 0.3, comm.rank() * m_loc, 999);
    bs[static_cast<std::size_t>(comm.rank())] = Matrix::copy_of(b.view());
    LeastSquaresResult res = tsqr_least_squares(comm, a.view(), b.view());
    if (comm.rank() == 0) {
      x = std::move(res.x);
      reported = res.residual_norms[0];
    }
  });
  // Direct: ||A x - b|| with the assembled pieces.
  Matrix b_global(m_loc * procs, 1);
  for (int r = 0; r < procs; ++r) {
    copy(bs[static_cast<std::size_t>(r)].view(),
         b_global.block(r * m_loc, 0, m_loc, 1));
  }
  Matrix resid = Matrix::copy_of(b_global.view());
  gemm(Trans::No, Trans::No, -1.0, global.view(), x.view(), 1.0,
       resid.view());
  EXPECT_NEAR(reported, frobenius_norm(resid.view()),
              1e-10 * frobenius_norm(b_global.view()));
}

TEST(Lstsq, ResidualIsMinimal) {
  // Any perturbation of the solution must increase ||A x - b||.
  const int procs = 2;
  const Index m_loc = 30, n = 4;
  Matrix global = random_gaussian(m_loc * procs, n, 14000);
  Matrix x_true = random_gaussian(n, 1, 14001);
  msg::Runtime rt(procs);
  Matrix x;
  std::vector<Matrix> bs(procs);
  rt.run([&](msg::Comm& comm) {
    Matrix a = Matrix::copy_of(global.block(comm.rank() * m_loc, 0, m_loc, n));
    Matrix b = make_rhs(a, x_true, 0.5, comm.rank() * m_loc, 555);
    bs[static_cast<std::size_t>(comm.rank())] = Matrix::copy_of(b.view());
    LeastSquaresResult res = tsqr_least_squares(comm, a.view(), b.view());
    if (comm.rank() == 0) x = std::move(res.x);
  });
  Matrix b_global(m_loc * procs, 1);
  for (int r = 0; r < procs; ++r) {
    copy(bs[static_cast<std::size_t>(r)].view(),
         b_global.block(r * m_loc, 0, m_loc, 1));
  }
  auto residual_of = [&](const Matrix& cand) {
    Matrix resid = Matrix::copy_of(b_global.view());
    gemm(Trans::No, Trans::No, -1.0, global.view(), cand.view(), 1.0,
         resid.view());
    return frobenius_norm(resid.view());
  };
  const double best = residual_of(x);
  for (Index k = 0; k < n; ++k) {
    Matrix perturbed = Matrix::copy_of(x.view());
    perturbed(k, 0) += 1e-3;
    EXPECT_GT(residual_of(perturbed), best);
  }
}

TEST(Lstsq, BeatsNormalEquationsOnIllConditionedProblems) {
  // cond(A) ~ 1e9: the Gram matrix is numerically singular so the normal
  // equations collapse, while the QR route still recovers x accurately.
  const int procs = 2;
  const Index m_loc = 60, n = 8;
  Matrix global = random_with_condition(m_loc * procs, n, 1e9, 15000);
  Matrix x_true = random_gaussian(n, 1, 15001);

  msg::Runtime rt(procs);
  Matrix x_qr;
  rt.run([&](msg::Comm& comm) {
    Matrix a = Matrix::copy_of(global.block(comm.rank() * m_loc, 0, m_loc, n));
    Matrix b = make_rhs(a, x_true, 0.0, comm.rank() * m_loc, 0);
    LeastSquaresResult res = tsqr_least_squares(comm, a.view(), b.view());
    if (comm.rank() == 0) x_qr = std::move(res.x);
  });
  // QR solution: relative forward error bounded by ~cond * eps.
  const double err_qr = max_abs_diff(x_qr.view(), x_true.view()) /
                        frobenius_norm(x_true.view());
  EXPECT_LT(err_qr, 1e-4);

  // Normal equations on the same problem (sequential is enough).
  Matrix gram(n, n);
  syrk_upper_at_a(1.0, global.view(), 0.0, gram.view());
  const bool chol_ok = potrf_upper(gram.view());
  if (chol_ok) {
    Matrix rhs(n, 1);
    Matrix b_full(m_loc * procs, 1);
    gemm(Trans::No, Trans::No, 1.0, global.view(), x_true.view(), 0.0,
         b_full.view());
    gemm(Trans::Yes, Trans::No, 1.0, global.view(), b_full.view(), 0.0,
         rhs.view());
    trsm(Side::Left, UpLo::Upper, Trans::Yes, Diag::NonUnit, 1.0,
         gram.view(), rhs.view());
    trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0,
         gram.view(), rhs.view());
    const double err_ne = max_abs_diff(rhs.view(), x_true.view()) /
                          frobenius_norm(x_true.view());
    EXPECT_GT(err_ne, err_qr);
  } else {
    SUCCEED();  // Cholesky of the squared system already broke down
  }
}

}  // namespace
}  // namespace qrgrid::core
